// oltpgen builds the modeled application and kernel binaries and writes
// them to disk, the inputs of the cmd/pixie → cmd/spike → cmd/oltpbench
// pipeline.
//
// With -train-workload the app image is the union of both workloads'
// models, matching the image cmd/pixie builds when profiling one mix for
// evaluation under another — the offline transplant pipeline:
//
//	oltpgen -out ./images -seed 2001 -libscale 1.0 -workload ordere
//	oltpgen -out ./images -workload tpcb -train-workload ycsb
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"codelayout/internal/appmodel"
	"codelayout/internal/kernel"
	"codelayout/internal/workload"

	_ "codelayout/internal/ordere" // register the order-entry workload
	_ "codelayout/internal/tpcb"   // register the TPC-B workload
	_ "codelayout/internal/ycsb"   // register the key-value workload
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 2001, "image generation seed")
		libScale = flag.Float64("libscale", 1.0, "library size multiplier")
		cold     = flag.Int("cold", 6_400_000, "cold code words in the app image")
		kcold    = flag.Int("kcold", 1_400_000, "cold code words in the kernel image")
		wlName   = flag.String("workload", "tpcb", fmt.Sprintf("workload whose models root the app image %v", workload.Names()))
		trainWl  = flag.String("train-workload", "", "additional workload whose models join the image (the pixie -train-workload union)")
	)
	flag.Parse()

	wl, err := workload.New(*wlName)
	if err != nil {
		fatal(err)
	}
	var extra []workload.Workload
	if *trainWl != "" && *trainWl != *wlName {
		train, err := workload.New(*trainWl)
		if err != nil {
			fatal(err)
		}
		extra = append(extra, train)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	app, err := appmodel.Build(appmodel.Config{
		Seed: *seed, LibScale: *libScale, ColdWords: *cold, Workload: wl, ExtraWorkloads: extra,
	})
	if err != nil {
		fatal(err)
	}
	appPath := filepath.Join(*out, "app.prog")
	if err := app.Prog.SaveFile(appPath); err != nil {
		fatal(err)
	}
	st := app.Prog.ComputeStats()
	label := wl.Name()
	for _, w := range extra {
		label += "+" + w.Name()
	}
	fmt.Printf("wrote %s (%s workload): %d procs (%d cold), %d blocks, %.1f MB static\n",
		appPath, label, st.Procs, st.ColdProcs, st.Blocks, float64(st.BodyWords*4)/(1<<20))

	kern, err := kernel.Build(kernel.Config{Seed: *seed + 1, ColdWords: *kcold})
	if err != nil {
		fatal(err)
	}
	kernPath := filepath.Join(*out, "kernel.prog")
	if err := kern.Prog.SaveFile(kernPath); err != nil {
		fatal(err)
	}
	kst := kern.Prog.ComputeStats()
	fmt.Printf("wrote %s: %d procs (%d cold), %.1f MB static\n",
		kernPath, kst.Procs, kst.ColdProcs, float64(kst.BodyWords*4)/(1<<20))
	fmt.Println("note: emitter-driven runs rebuild images from the same seed;")
	fmt.Println("these files serve cmd/spike and cmd/icachesim offline analysis.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltpgen:", err)
	os.Exit(1)
}
