// icachesim replays a recorded trace (from oltpbench -trace) through
// instruction-cache configurations and prints the miss table, like the
// paper's trace-driven cache studies.
//
//	icachesim -trace run.trace -sizes 32,64,128,256,512 -lines 16,32,64,128,256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"codelayout/internal/cache"
	"codelayout/internal/stats"
	"codelayout/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file")
		sizesStr  = flag.String("sizes", "32,64,128,256,512", "cache sizes (KB)")
		linesStr  = flag.String("lines", "128", "line sizes (bytes)")
		assoc     = flag.Int("assoc", 1, "associativity")
		appOnly   = flag.Bool("app-only", false, "filter out kernel references")
		kernOnly  = flag.Bool("kernel-only", false, "keep only kernel references")
	)
	flag.Parse()
	if *tracePath == "" {
		fatal(fmt.Errorf("need -trace"))
	}
	sizes, err := parseInts(*sizesStr)
	if err != nil {
		fatal(err)
	}
	lines, err := parseInts(*linesStr)
	if err != nil {
		fatal(err)
	}

	type key struct{ size, line int }
	sims := make(map[key]*perCPU)
	var all trace.Tee
	for _, s := range sizes {
		for _, l := range lines {
			p := newPerCPU(cache.Config{SizeBytes: s << 10, LineBytes: l, Assoc: *assoc})
			sims[key{s, l}] = p
			all = append(all, p)
		}
	}
	var sink trace.Sink = all
	if *appOnly {
		sink = trace.AppOnly(sink)
	}
	if *kernOnly {
		sink = trace.KernelOnly(sink)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	if err := r.Replay(sink, nil); err != nil {
		fatal(err)
	}

	cols := []string{"line\\size"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("%dKB", s))
	}
	t := stats.NewTable(fmt.Sprintf("icache misses (%d-way)", *assoc), cols...)
	for _, l := range lines {
		row := []interface{}{fmt.Sprintf("%dB", l)}
		for _, s := range sizes {
			row = append(row, sims[key{s, l}].misses())
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}

// perCPU lazily instantiates one cache per CPU that actually appears in the
// trace.
type perCPU struct {
	cfg  cache.Config
	sims [trace.MaxCPUs]*cache.ICache
}

func newPerCPU(cfg cache.Config) *perCPU { return &perCPU{cfg: cfg} }

func (p *perCPU) Fetch(r trace.FetchRun) {
	if p.sims[r.CPU] == nil {
		p.sims[r.CPU] = cache.New(p.cfg)
	}
	p.sims[r.CPU].Fetch(r)
}

func (p *perCPU) misses() uint64 {
	var n uint64
	for _, c := range p.sims {
		if c != nil {
			n += c.Stats().Misses
		}
	}
	return n
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icachesim:", err)
	os.Exit(1)
}
