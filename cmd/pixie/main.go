// pixie collects a basic-block execution profile of an OLTP workload, the
// way the paper profiles the pixified Oracle server processes: the image is
// rebuilt from its seed, the workload runs under the baseline layout, and
// exact block/edge counts are written to a profile file.
//
// The profiled mix may differ from the image's evaluation workload: with
// -train-workload (and -train-shards) the image is built as a union of both
// workloads' models and the training mix is the one that runs, so the saved
// profile transplants onto an evaluation of -workload — the offline half of
// the robustness experiments.
//
//	pixie -workload tpcb -seed 2001 -txns 2000 -out oltp.prof
//	pixie -workload tpcb -train-workload ycsb -train-shards 4 -out drift.prof
package main

import (
	"flag"
	"fmt"
	"os"

	"codelayout/internal/appmodel"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/workload"

	_ "codelayout/internal/ordere" // register the order-entry workload
	_ "codelayout/internal/tpcb"   // register the TPC-B workload
	_ "codelayout/internal/ycsb"   // register the key-value workload
)

func main() {
	var (
		seed     = flag.Int64("seed", 2001, "image generation seed")
		runSeed  = flag.Int64("runseed", 1998, "workload seed for the profiling run")
		txns     = flag.Int("txns", 2000, "profiled transactions")
		warmup   = flag.Int("warmup", 100, "warmup transactions before profiling")
		cpus     = flag.Int("cpus", 4, "processors")
		shards   = flag.Int("shards", 1, "partitioned database engines behind the shard router")
		libScale = flag.Float64("libscale", 1.0, "library size multiplier")
		cold     = flag.Int("cold", 6_400_000, "app cold words")
		wlName   = flag.String("workload", "tpcb", fmt.Sprintf("image (evaluation) workload %v", workload.Names()))
		trainWl  = flag.String("train-workload", "", "workload whose transactions are profiled (default: -workload)")
		trainSh  = flag.Int("train-shards", 0, "shard count of the profiling run (default: -shards)")
		quick    = flag.Bool("quick", false, "use the workload's quick scale")
		out      = flag.String("out", "oltp.prof", "profile output file")
		kout     = flag.String("kout", "", "optional kernel profile output file")
	)
	flag.Parse()

	wl, err := workload.New(*wlName)
	if err != nil {
		fatal(err)
	}
	if *quick {
		wl = wl.QuickScale()
	}
	var extra []workload.Workload
	train := wl
	if *trainWl != "" && *trainWl != *wlName {
		train, err = workload.New(*trainWl)
		if err != nil {
			fatal(err)
		}
		if *quick {
			train = train.QuickScale()
		}
		extra = append(extra, train)
	}
	if *trainSh != 0 {
		*shards = *trainSh
	}

	app, err := appmodel.Build(appmodel.Config{
		Seed: *seed, LibScale: *libScale, ColdWords: *cold, Workload: wl, ExtraWorkloads: extra,
	})
	if err != nil {
		fatal(err)
	}
	appL, err := program.BaselineLayout(app.Prog)
	if err != nil {
		fatal(err)
	}
	kern, err := kernel.Build(kernel.DefaultConfig(*seed + 1))
	if err != nil {
		fatal(err)
	}
	kernL, err := program.BaselineLayout(kern.Prog)
	if err != nil {
		fatal(err)
	}

	px := profile.NewPixie(app.Prog, "pixie")
	kx := profile.NewPixie(kern.Prog, "kprofile")
	cfg := machine.Config{
		CPUs: *cpus, Seed: *runSeed, Shards: *shards,
		WarmupTxns: *warmup, Transactions: *txns,
		Workload: train,
		AppImage: app, AppLayout: appL, KernImage: kern, KernLayout: kernL,
		AppCollector: px, KernCollector: kx,
	}
	m, err := machine.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if err := px.Profile.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("profiled %d %s txns (%d app + %d kernel instructions) over image %s, wrote %s\n",
		res.Committed, train.Name(), res.AppInstrs, res.KernelInstrs, app.Prog.Name, *out)
	if *kout != "" {
		if err := kx.Profile.SaveFile(*kout); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote kernel profile %s\n", *kout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pixie:", err)
	os.Exit(1)
}
