// layoutlab regenerates the paper's tables and figures.
//
//	layoutlab -list
//	layoutlab -run fig05            # one experiment, quick configuration
//	layoutlab -run all -full        # everything at paper scale
//	layoutlab -run fig04 -csv out/  # also dump CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"codelayout/internal/expt"
	"codelayout/internal/stats"
	"codelayout/internal/workload"

	_ "codelayout/internal/ordere" // register the order-entry workload
	_ "codelayout/internal/tpcb"   // register the TPC-B workload
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiments and exit")
		full   = flag.Bool("full", false, "paper-scale run (default is the quick configuration)")
		seed   = flag.Int64("seed", 0, "override workload seed")
		txns   = flag.Int("txns", 0, "override measured transactions")
		cpus   = flag.Int("cpus", 0, "override processor count")
		shards = flag.Int("shards", 0, "override shard count (partitioned engines)")
		wlName = flag.String("workload", "tpcb", fmt.Sprintf("workload to evaluate %v", workload.Names()))
		csvDir = flag.String("csv", "", "directory to write CSV copies of each table")
	)
	flag.Parse()

	if *list {
		for _, line := range expt.Summary() {
			fmt.Println(line)
		}
		return
	}

	wl, err := workload.New(*wlName)
	if err != nil {
		fatal(err)
	}
	opts := expt.QuickOptions()
	if *full {
		opts = expt.DefaultOptions()
	} else {
		wl = wl.QuickScale()
	}
	opts.Workload = wl
	if *seed != 0 {
		opts.Seed = *seed
		opts.TrainSeed = *seed + 7
	}
	if *txns != 0 {
		opts.Transactions = *txns
	}
	if *cpus != 0 {
		opts.CPUs = *cpus
	}
	if *shards != 0 {
		opts.Shards = *shards
	}

	s, err := expt.NewSession(opts)
	if err != nil {
		fatal(err)
	}
	ids := []string{*run}
	if *run == "all" {
		ids = expt.IDs()
	}
	for _, id := range ids {
		e, err := expt.Get(id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Paper)
		tables, err := s.Run(id)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func writeCSV(dir string, t *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, t.Title)
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layoutlab:", err)
	os.Exit(1)
}
