// layoutlab regenerates the paper's tables and figures, plus the
// cross-workload/cross-shard extension tables.
//
//	layoutlab -list
//	layoutlab -run fig05            # one experiment, quick configuration
//	layoutlab -run all -full        # everything at paper scale
//	layoutlab -run fig04 -csv out/  # also dump CSV files
//	layoutlab -table robustness -matrix tpcb,ordere,ycsb -shardlist 1,4
//	layoutlab -table shardsweep -shards 1,2,4,8,16,32,64
//	layoutlab -table shardsweep -shards 1,4,16 -fastpath=false -gc off
//	layoutlab -table latency -matrix tpcb,ycsb -shardlist 1,2
//	layoutlab -table latency -matrix tpcb,ordere -layout fusion -stall 40
//	layoutlab -table blend -ratios 0,0.5,1
//	layoutlab -table datalayout                      # record layout: interleaved vs grouped
//	layoutlab -table datalayout -workload ycsb -zipf 0.9 -readpct 0
//	layoutlab -table search -population 16 -generations 8 -objective instr
//	layoutlab -table search -matrix tpcb,ordere,ycsb -search-seed 7
//	layoutlab -run fig04 -profile-store /var/cache/pgo   # second run skips training
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"codelayout/internal/expt"
	"codelayout/internal/machine"
	"codelayout/internal/ordere"
	"codelayout/internal/pstore"
	"codelayout/internal/search"
	"codelayout/internal/stats"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiments and exit")
		full   = flag.Bool("full", false, "paper-scale run (default is the quick configuration)")
		quick  = flag.Bool("quick", false, "force the quick configuration (the default; conflicts with -full)")
		seed   = flag.Int64("seed", 0, "override workload seed")
		txns   = flag.Int("txns", 0, "override measured transactions")
		cpus   = flag.Int("cpus", 0, "override processor count")
		shards = flag.String("shards", "", "shard count (partitioned engines); for -table shardsweep, a comma-separated list to sweep (default 1,2,4,8,16,32,64)")
		wlName = flag.String("workload", "tpcb", fmt.Sprintf("workload to evaluate %v", workload.Names()))
		csvDir = flag.String("csv", "", "directory to write CSV copies of each table")

		table     = flag.String("table", "", "extension table to emit: robustness (train×eval matrix), shardsweep, latency (percentiles), search (evolutionary pipeline search) or datalayout (record layout: interleaved vs grouped)")
		matrix    = flag.String("matrix", "tpcb,ordere,ycsb", "robustness/latency: comma-separated workloads to measure")
		shardlist = flag.String("shardlist", "1,4", "robustness/latency: comma-separated shard counts to measure")
		layout    = flag.String("layout", "all", "extension tables: pipeline combo to train and evaluate (latency with 'fusion' also measures ipchain and emits per-kind deltas)")
		stall     = flag.Uint64("stall", 0, "instruction-times of stall per L1 icache miss on the measurement clock (layout latency comparisons need a non-zero penalty, e.g. 40)")
		fastpath  = flag.Bool("fastpath", true, "shardsweep: measure the predictive single-shard fast path against the routed baseline (on/off delta columns)")
		gcMode    = flag.String("gc", "", "shardsweep: group-commit tuning mode (off, flushcount, p99; default p99)")
		crossPct  = flag.Int("cross", 0, "shardsweep: override the workload's cross-shard transaction percentage in [1, 100] (0 = workload default, negative disables)")
		readPct   = flag.Int("readpct", -1, "ycsb: point-read share of the mix in [0, 100]; 0 is a valid pure-update mix (negative = workload default)")
		zipfTheta = flag.Float64("zipf", 0, "ycsb: Zipfian key-skew theta in [0, 1); for -table datalayout, the skewed regime's theta (0 selects 0.9)")
		hotFrac   = flag.Float64("hotfrac", 0, "tpcb: hot-account fraction in [0, 1); for -table datalayout, the skewed regime's fraction (0 selects 0.1)")
		ratios    = flag.String("ratios", "", "blend: comma-separated new-mix weights to sweep (default 0,0.25,0.5,0.75,1)")
		storeDir  = flag.String("profile-store", "", "directory of the persistent profile store; training runs already in the store are loaded instead of re-run")

		population  = flag.Int("population", 0, "search: genomes per generation (default 16)")
		generations = flag.Int("generations", 0, "search: maximum generations (default 8)")
		objective   = flag.String("objective", "", "search: fitness metric to minimize (instr, miss, p50, p99; default instr)")
		searchSeed  = flag.Int64("search-seed", 0, "search: evolution rng seed (default 1); same seed reproduces the search bit for bit")
		workers     = flag.Int("workers", 0, "search: measurement worker-pool bound per evaluation wave (default GOMAXPROCS; never changes results)")
		memostats   = flag.Bool("memostats", false, "print the session memo counters (measure/layout/train hits, misses, entries) after the run")
	)
	flag.Parse()

	if *quick && *full {
		fatal(fmt.Errorf("-quick conflicts with -full"))
	}
	// Percentage and fraction knobs fail fast here, before any image builds
	// or training runs, instead of surfacing as a workload load error
	// minutes in.
	if *readPct > 100 {
		fatal(fmt.Errorf("-readpct = %d; must be in [0, 100] (negative selects the workload default)", *readPct))
	}
	if *zipfTheta < 0 || *zipfTheta >= 1 {
		fatal(fmt.Errorf("-zipf = %v; must be in [0, 1)", *zipfTheta))
	}
	if *hotFrac < 0 || *hotFrac >= 1 {
		fatal(fmt.Errorf("-hotfrac = %v; must be in [0, 1)", *hotFrac))
	}
	if *crossPct > 100 {
		fatal(fmt.Errorf("-cross = %d; must be in [1, 100] (0 = workload default, negative disables)", *crossPct))
	}

	if *list {
		for _, line := range expt.Summary() {
			fmt.Println(line)
		}
		return
	}

	opts := expt.QuickOptions()
	if *full {
		opts = expt.DefaultOptions()
	}
	opts.FetchStallPenaltyInstr = *stall
	var store *pstore.Store
	if *storeDir != "" {
		var err error
		if store, err = pstore.Open(*storeDir); err != nil {
			fatal(err)
		}
		opts.ProfileStore = store
	}
	if *seed != 0 {
		opts.Seed = *seed
		opts.Train.Seed = *seed + 7
	}
	if *txns != 0 {
		opts.Transactions = *txns
	}
	if *cpus != 0 {
		opts.CPUs = *cpus
	}
	var shardCounts []int
	if *shards != "" {
		var err error
		if shardCounts, err = parseInts(*shards); err != nil {
			fatal(err)
		}
		if len(shardCounts) == 1 {
			opts.Shards = shardCounts[0]
		} else if *table != "shardsweep" {
			fatal(fmt.Errorf("-shards accepts a list only with -table shardsweep"))
		}
	}

	if *table == "search" {
		res, err := searchTable(opts, *full, *matrix, search.Config{
			Population:  *population,
			Generations: *generations,
			Seed:        *searchSeed,
			Workers:     *workers,
		}, *objective)
		if err != nil {
			fatal(err)
		}
		emit([]*stats.Table{res.Table}, *csvDir)
		if *memostats {
			printMemoStats(res.Memo)
		}
		reportStore(store, nil)
		return
	}
	if *table != "" {
		tables, err := extensionTables(*table, opts, *full, *wlName, *matrix, *shardlist, *layout, *ratios, shardCounts, *fastpath, *gcMode, *crossPct, *readPct, *zipfTheta, *hotFrac)
		if err != nil {
			fatal(err)
		}
		emit(tables, *csvDir)
		reportStore(store, nil)
		return
	}

	wl, err := resolveWorkload(*wlName, *full)
	if err != nil {
		fatal(err)
	}
	if err := applyMixKnobs(wl, *readPct, *zipfTheta, *hotFrac); err != nil {
		fatal(err)
	}
	opts.Workload = wl

	s, err := expt.NewSession(opts)
	if err != nil {
		fatal(err)
	}
	ids := []string{*run}
	if *run == "all" {
		ids = expt.IDs()
	}
	for _, id := range ids {
		e, err := expt.Get(id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Paper)
		tables, err := s.Run(id)
		if err != nil {
			fatal(err)
		}
		emit(tables, *csvDir)
	}
	if *memostats {
		printMemoStats(s.MemoStats())
	}
	reportStore(store, s.Source())
}

// searchTable runs the evolutionary pipeline search over the -matrix
// workloads (the first is the training workload) and prints one progress
// line per generation.
func searchTable(opts expt.Options, full bool, matrix string, cfg search.Config, objective string) (*search.Result, error) {
	obj, err := search.ParseObjective(objective)
	if err != nil {
		return nil, err
	}
	cfg.Objective = obj
	for _, name := range splitList(matrix) {
		wl, err := resolveWorkload(name, full)
		if err != nil {
			return nil, err
		}
		cfg.Workloads = append(cfg.Workloads, search.WorkloadWeight{Workload: wl, Weight: 1})
	}
	cfg.Progress = func(g search.GenerationStat) {
		fmt.Printf("search gen %d: best %.4f (%s) unique=%d executed=%d\n",
			g.Gen, g.Best.Fitness, g.Best.Spec, g.Unique, g.Executed)
	}
	return search.Run(opts, cfg)
}

// printMemoStats prints the grep-able memo-counter debug line: every measure
// miss is a simulation this invocation executed, every hit one the memo (or
// its in-flight dedup) absorbed.
func printMemoStats(ms expt.MemoStats) {
	fmt.Printf("memo: measure hits=%d misses=%d entries=%d | layout hits=%d misses=%d entries=%d | train hits=%d misses=%d entries=%d\n",
		ms.Measure.Hits, ms.Measure.Misses, ms.Measure.Entries,
		ms.Layout.Hits, ms.Layout.Misses, ms.Layout.Entries,
		ms.Train.Hits, ms.Train.Misses, ms.Train.Entries)
}

// reportStore prints the grep-able profile-store summary: every store miss is
// a training run this invocation had to execute, every hit one it skipped.
func reportStore(store *pstore.Store, src *expt.ProfileSource) {
	if store == nil {
		return
	}
	st := store.Stats()
	line := fmt.Sprintf("profile store: hits=%d misses=%d evictions=%d trained=%d",
		st.Hits, st.Misses, st.Evictions, st.Misses)
	if src != nil {
		if e := src.LastStoreHit(); e != nil {
			line += fmt.Sprintf(" last-hit-age=%s", e.Age(time.Now()).Round(time.Second))
		}
	}
	fmt.Println(line)
}

// resolveWorkload looks a workload up by name at paper or quick scale.
func resolveWorkload(name string, full bool) (workload.Workload, error) {
	wl, err := workload.New(name)
	if err != nil {
		return nil, err
	}
	if !full {
		wl = wl.QuickScale()
	}
	return wl, nil
}

// validTables lists every -table value extensionTables accepts, sorted; the
// unknown-table error quotes it so a typo fails fast with the full menu.
var validTables = []string{"blend", "datalayout", "latency", "robustness", "search", "shardsweep"}

// extensionTables runs the cross-workload/cross-shard tables that need more
// configuration than one session carries.
func extensionTables(kind string, opts expt.Options, full bool, wlName, matrix, shardlist, layout, ratios string, sweep []int, fastpath bool, gcMode string, crossPct, readPct int, zipfTheta, hotFrac float64) ([]*stats.Table, error) {
	switch kind {
	case "datalayout":
		wl, err := resolveWorkload(wlName, full)
		if err != nil {
			return nil, err
		}
		// -zipf/-hotfrac parameterize the table's skewed regime; only the
		// mix knob applies to the base workload here.
		if err := applyMixKnobs(wl, readPct, 0, 0); err != nil {
			return nil, err
		}
		opts.Workload = wl
		t, err := expt.DataLayoutTable(opts, expt.DataLayoutSpec{
			ZipfTheta: zipfTheta, HotAccountFrac: hotFrac,
		})
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	case "blend":
		rs, err := parseFloats(ratios)
		if err != nil {
			return nil, err
		}
		res, err := expt.BlendTable(opts, expt.BlendSpec{Ratios: rs})
		if err != nil {
			return nil, err
		}
		return []*stats.Table{res.Table}, nil
	case "robustness":
		var wls []workload.Workload
		for _, name := range splitList(matrix) {
			wl, err := resolveWorkload(name, full)
			if err != nil {
				return nil, err
			}
			wls = append(wls, wl)
		}
		shards, err := parseInts(shardlist)
		if err != nil {
			return nil, err
		}
		res, err := expt.Robustness(opts, expt.RobustnessSpec{
			Workloads: wls, Shards: shards, Layout: layout,
		})
		if err != nil {
			return nil, err
		}
		return res.Tables, nil
	case "shardsweep":
		wl, err := resolveWorkload(wlName, full)
		if err != nil {
			return nil, err
		}
		if err := setCrossShardPct(wl, crossPct); err != nil {
			return nil, err
		}
		if err := applyMixKnobs(wl, readPct, zipfTheta, hotFrac); err != nil {
			return nil, err
		}
		opts.Workload = wl
		if len(sweep) == 0 {
			sweep = []int{1, 2, 4, 8, 16, 32, 64}
		}
		layouts := []string{"base"}
		if layout != "base" {
			layouts = append(layouts, layout)
		}
		spec := expt.ShardSweepSpec{
			Shards:   sweep,
			Layouts:  layouts,
			FastPath: fastpath,
		}
		switch gcMode {
		case "", "p99":
			// ShardSweepTable's default: the tail-aware p99 tuner.
		case "off":
			spec.NoAutoGC = true
		case "flushcount":
			spec.AutoGC = machine.AutoGCFlushCount
		default:
			return nil, fmt.Errorf("unknown -gc mode %q (have off, flushcount, p99)", gcMode)
		}
		t, err := expt.ShardSweepTable(opts, spec)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	case "latency":
		var wls []workload.Workload
		for _, name := range splitList(matrix) {
			wl, err := resolveWorkload(name, full)
			if err != nil {
				return nil, err
			}
			wls = append(wls, wl)
		}
		shards, err := parseInts(shardlist)
		if err != nil {
			return nil, err
		}
		return expt.LatencyTables(opts, expt.LatencySpec{
			Workloads: wls, Shards: shards, Layout: layout,
		})
	}
	sorted := append([]string(nil), validTables...)
	sort.Strings(sorted)
	return nil, fmt.Errorf("unknown table %q (valid tables: %s)", kind, strings.Join(sorted, ", "))
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad ratio %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// applyMixKnobs applies the workload-mix flags to the resolved workload,
// failing fast when a knob targets a workload that does not have it (range
// checks happen at flag parse; this is the type check).
func applyMixKnobs(wl workload.Workload, readPct int, zipfTheta, hotFrac float64) error {
	if readPct >= 0 {
		w, ok := wl.(*ycsb.Workload)
		if !ok {
			return fmt.Errorf("-readpct: workload %s has no read/update mix knob", wl.Name())
		}
		w.ReadPct = readPct
	}
	if zipfTheta > 0 {
		w, ok := wl.(*ycsb.Workload)
		if !ok {
			return fmt.Errorf("-zipf: workload %s has no Zipfian skew knob", wl.Name())
		}
		w.ZipfTheta = zipfTheta
	}
	if hotFrac > 0 {
		w, ok := wl.(*tpcb.Workload)
		if !ok {
			return fmt.Errorf("-hotfrac: workload %s has no hot-account knob", wl.Name())
		}
		w.HotAccountFrac = hotFrac
	}
	return nil
}

// setCrossShardPct overrides a workload's cross-shard transaction fraction
// (0 leaves the workload's own setting in place; the [1, 100] range is
// checked at flag parse).
func setCrossShardPct(wl workload.Workload, pct int) error {
	if pct == 0 {
		return nil
	}
	switch w := wl.(type) {
	case *tpcb.Workload:
		w.CrossShardPct = pct
	case *ordere.Workload:
		w.CrossShardPct = pct
	case *ycsb.Workload:
		w.CrossShardPct = pct
	default:
		return fmt.Errorf("-cross: workload %s has no cross-shard override", wl.Name())
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func emit(tables []*stats.Table, csvDir string) {
	for _, t := range tables {
		t.Render(os.Stdout)
		fmt.Println()
		if csvDir != "" {
			if err := writeCSV(csvDir, t); err != nil {
				fatal(err)
			}
		}
	}
}

func writeCSV(dir string, t *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, t.Title)
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layoutlab:", err)
	os.Exit(1)
}
