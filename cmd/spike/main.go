// spike applies the paper's code layout optimizations to a program given a
// profile, like the Spike executable optimizer: basic block chaining,
// fine-grain procedure splitting, and Pettis–Hansen procedure ordering.
//
// The optimizer is a pass pipeline; a combo name resolves to a pass list,
// and -passes runs an arbitrary pipeline spec instead:
//
//	spike -prog images/app.prog -profile oltp.prof -combo all -out app.layout
//	spike -prog images/app.prog -profile oltp.prof -passes chain,split:fine,porder:ph
//	spike -list-passes
//
// Standalone txfuse runs derive transaction roots from the profile's call
// graph (hot procedures nothing calls) and skip cloning — full fusion with
// kind roots and procedure cloning needs the image-aware drivers
// (oltpbench -opt fusion, layoutlab).
package main

import (
	"flag"
	"fmt"
	"os"

	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
)

func main() {
	var (
		progPath = flag.String("prog", "", "program file (from oltpgen)")
		profPath = flag.String("profile", "", "profile file (from pixie)")
		combo    = flag.String("combo", "all", "optimization combo: base|porder|chain|chain+split|chain+porder|all|hotcold|cfa|ipchain|fusion")
		passes   = flag.String("passes", "", "comma-separated pass pipeline (overrides -combo), e.g. chain,split:fine,porder:ph")
		list     = flag.Bool("list-passes", false, "list the registered passes with their descriptions and exit")
		out      = flag.String("out", "", "layout output file (optional)")
		dump     = flag.Bool("dump", false, "dump the laid-out program (small programs only)")
	)
	flag.Parse()
	if *list {
		for _, line := range core.PassListing() {
			fmt.Println(line)
		}
		return
	}
	if *progPath == "" || *profPath == "" {
		fatal(fmt.Errorf("need -prog and -profile"))
	}
	p, err := program.LoadFile(*progPath)
	if err != nil {
		fatal(err)
	}
	pf, err := profile.LoadFile(*profPath)
	if err != nil {
		fatal(err)
	}

	name := *combo
	var pl core.Pipeline
	if *passes != "" {
		name = "custom"
		pl, err = core.ParsePipeline(*passes)
		if err != nil {
			// The core error already lists the registered passes.
			fatal(fmt.Errorf("bad -passes spec %q: %w", *passes, err))
		}
	} else {
		pl, err = core.ComboPipeline(name)
		if err != nil {
			fatal(err)
		}
	}

	base, err := program.BaselineLayout(p)
	if err != nil {
		fatal(err)
	}
	l, rep, err := pl.Run(p, pf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: passes %s\n", name, pl)
	fmt.Printf("%s: %d chains, %d units (%d hot), hot text %.1f KB\n",
		name, rep.Chains, rep.Units, rep.HotUnits,
		float64(rep.HotWords*isa.WordBytes)/1024)
	if rep.FusedKinds > 0 {
		fmt.Printf("%s: fused %d transaction kinds (%d procedures cloned, %.1f KB growth)\n",
			name, rep.FusedKinds, rep.ClonedProcs,
			float64(rep.CloneWords*isa.WordBytes)/1024)
	}
	fmt.Printf("image: %.2f MB -> %.2f MB (padding %.1f KB, %d long branches)\n",
		float64(base.TotalBytes())/(1<<20), float64(l.TotalBytes())/(1<<20),
		float64(rep.PadWords*isa.WordBytes)/1024, rep.LongBranches)
	if *out != "" {
		if err := program.SaveLayoutFile(*out, l, 4); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dump {
		p.Dump(os.Stdout, l)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spike:", err)
	os.Exit(1)
}
