// oltpbench runs an OLTP workload on the simulated multiprocessor and
// reports throughput and memory-system behavior, optionally recording the
// instruction/data trace for offline replay with cmd/icachesim.
//
// With -opt it first trains in-process — profiling a (possibly different)
// workload at a (possibly different) shard count under the baseline layout,
// then optimizing with the named combo — and evaluates the resulting
// layout, so profile-transplant runs work standalone:
//
//	oltpbench -workload tpcb -txns 500 -cpus 4 -layout app.layout -trace run.trace
//	oltpbench -workload ordere -quick
//	oltpbench -workload ordere -shards 4 -gcwindow 60000
//	oltpbench -workload tpcb -shards 4 -gcauto
//	oltpbench -workload tpcb -shards 4 -gcp99 -percentiles
//	oltpbench -workload tpcb -opt all -train-workload ycsb -train-shards 4
//	oltpbench -workload tpcb -opt all -profile-store /var/cache/pgo   # warm store skips training
//	oltpbench -workload ycsb -opt all -reopt 200 -stall 40            # online drift re-optimization
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codelayout/internal/appmodel"
	"codelayout/internal/cache"
	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/pstore"
	"codelayout/internal/trace"
	"codelayout/internal/workload"

	"codelayout/internal/tpcb" // registers the TPC-B workload
	"codelayout/internal/ycsb" // registers the key-value workload

	_ "codelayout/internal/ordere" // register the order-entry workload
)

func main() {
	var (
		seed      = flag.Int64("seed", 2001, "image generation seed")
		runSeed   = flag.Int64("runseed", 2001, "workload seed")
		txns      = flag.Int("txns", 500, "measured transactions")
		warmup    = flag.Int("warmup", 100, "warmup transactions")
		cpus      = flag.Int("cpus", 4, "processors")
		procs     = flag.Int("procs", 8, "server processes per CPU")
		shards    = flag.Int("shards", 1, "partitioned database engines behind the shard router")
		gcWindow  = flag.Uint64("gcwindow", 0, "group-commit batching window in instruction-times (0 = flush as soon as a leader arrives)")
		gcAuto    = flag.Bool("gcauto", false, "pick each shard's group-commit window from the warmup commit arrival rate (fewest flushes)")
		gcP99     = flag.Bool("gcp99", false, "pick each shard's group-commit window to minimize modeled p99 latency from the warmup histogram")
		perCommit = flag.Bool("percommit", false, "disable group commit: every commit pays its own log write")
		fastPath  = flag.Bool("fastpath", false, "enable the predictive single-shard fast path (needs -shards > 1): predicted-local transactions skip the router and 2PC coordinator")
		pctiles   = flag.Bool("percentiles", false, "report per-transaction latency percentiles (overall and per shard × kind)")
		libScale  = flag.Float64("libscale", 1.0, "library size multiplier")
		cold      = flag.Int("cold", 6_400_000, "app cold words")
		wlName    = flag.String("workload", "tpcb", fmt.Sprintf("workload to run %v", workload.Names()))
		readPct   = flag.Int("readpct", -1, "ycsb: point-read share of the mix in [0, 100]; 0 is a valid pure-update mix (negative = workload default)")
		zipfTheta = flag.Float64("zipf", 0, "ycsb: Zipfian key-skew theta in [0, 1); 0 = uniform")
		hotFrac   = flag.Float64("hotfrac", 0, "tpcb: hot-account fraction in [0, 1); 0 = uniform")
		quick     = flag.Bool("quick", false, "use the workload's quick scale")
		layoutIn  = flag.String("layout", "", "optimized layout file (from spike); default baseline")
		optCombo  = flag.String("opt", "", "train in-process and optimize with this combo (e.g. all, ipchain, fusion) before measuring")
		stall     = flag.Uint64("stall", 0, "instruction-times of stall charged per L1 icache miss on the fetch clock (0 = pure fetch-bandwidth clock)")
		trainWl   = flag.String("train-workload", "", "workload to profile when -opt is set (default: the evaluated workload)")
		trainSh   = flag.Int("train-shards", 0, "shard count of the -opt training run (default: -shards)")
		trainTxns = flag.Int("train-txns", 2000, "profiled transactions of the -opt training run")
		tracePath = flag.String("trace", "", "write the measured trace to this file")
		storeDir  = flag.String("profile-store", "", "directory of the persistent profile store; an -opt training already in the store is loaded instead of re-run")
		reoptN    = flag.Int("reopt", 0, "re-optimize the app layout online every N committed transactions when the kind mix drifts from the training mix (needs -opt; not fusion)")
		driftT    = flag.Float64("drift", 0, "L1 kind-mix distance past which -reopt retrains (0 selects the default threshold)")
	)
	flag.Parse()

	if *optCombo != "" && *layoutIn != "" {
		fatal(fmt.Errorf("-opt and -layout conflict: one trains in-process, the other loads a layout file"))
	}
	if *reoptN > 0 && *optCombo == "" {
		fatal(fmt.Errorf("-reopt needs -opt: online re-optimization retrains with the same combo pipeline"))
	}
	if *reoptN > 0 && *optCombo == "fusion" {
		fatal(fmt.Errorf("-reopt cannot hot-swap fused layouts: fusion grows the program image, which is fixed once the run starts"))
	}
	if *gcAuto && *gcP99 {
		fatal(fmt.Errorf("-gcauto and -gcp99 conflict: pick one auto-tuning mode"))
	}
	if *fastPath && *shards <= 1 {
		fatal(fmt.Errorf("-fastpath needs -shards > 1 (a single engine has no router to skip)"))
	}
	// Percentage and fraction knobs fail fast before the image builds.
	if *readPct > 100 {
		fatal(fmt.Errorf("-readpct = %d; must be in [0, 100] (negative selects the workload default)", *readPct))
	}
	if *zipfTheta < 0 || *zipfTheta >= 1 {
		fatal(fmt.Errorf("-zipf = %v; must be in [0, 1)", *zipfTheta))
	}
	if *hotFrac < 0 || *hotFrac >= 1 {
		fatal(fmt.Errorf("-hotfrac = %v; must be in [0, 1)", *hotFrac))
	}
	gcMode := machine.AutoGCOff
	if *gcAuto {
		gcMode = machine.AutoGCFlushCount
	}
	if *gcP99 {
		gcMode = machine.AutoGCTargetP99
	}

	wl, err := workload.New(*wlName)
	if err != nil {
		fatal(err)
	}
	if *quick {
		wl = wl.QuickScale()
	}
	if *readPct >= 0 {
		w, ok := wl.(*ycsb.Workload)
		if !ok {
			fatal(fmt.Errorf("-readpct: workload %s has no read/update mix knob", wl.Name()))
		}
		w.ReadPct = *readPct
	}
	if *zipfTheta > 0 {
		w, ok := wl.(*ycsb.Workload)
		if !ok {
			fatal(fmt.Errorf("-zipf: workload %s has no Zipfian skew knob", wl.Name()))
		}
		w.ZipfTheta = *zipfTheta
	}
	if *hotFrac > 0 {
		w, ok := wl.(*tpcb.Workload)
		if !ok {
			fatal(fmt.Errorf("-hotfrac: workload %s has no hot-account knob", wl.Name()))
		}
		w.HotAccountFrac = *hotFrac
	}

	// The training workload (when it differs) joins the image, so the
	// trained profile maps onto the same program the evaluation runs.
	var extra []workload.Workload
	train := wl
	if *trainWl != "" && *trainWl != *wlName {
		train, err = workload.New(*trainWl)
		if err != nil {
			fatal(err)
		}
		if *quick {
			train = train.QuickScale()
		}
		extra = append(extra, train)
	}

	app, err := appmodel.Build(appmodel.Config{
		Seed: *seed, LibScale: *libScale, ColdWords: *cold, Workload: wl, ExtraWorkloads: extra,
		FastPath: *fastPath,
	})
	if err != nil {
		fatal(err)
	}
	appL, err := program.BaselineLayout(app.Prog)
	if err != nil {
		fatal(err)
	}
	if *layoutIn != "" {
		appL, err = program.LoadLayoutFile(*layoutIn, app.Prog)
		if err != nil {
			fatal(err)
		}
	}
	kern, err := kernel.Build(kernel.DefaultConfig(*seed + 1))
	if err != nil {
		fatal(err)
	}
	kernL, err := program.BaselineLayout(kern.Prog)
	if err != nil {
		fatal(err)
	}

	var store *pstore.Store
	if *storeDir != "" {
		if store, err = pstore.Open(*storeDir); err != nil {
			fatal(err)
		}
	}

	// reoptFn and trainFreq are set by the -opt path and wire -reopt into
	// the measurement config: the hook re-runs the same combo pipeline over
	// the online profile, and trainFreq anchors the drift detector.
	var reoptFn func(*profile.Profile) (*program.Layout, error)
	var trainFreq map[string]float64

	if *optCombo != "" {
		trainShards := *trainSh
		if trainShards == 0 {
			trainShards = *shards
		}
		// The store key resolves everything that shapes the training run:
		// spec parameters plus both image fingerprints, so a stored profile
		// can never be applied to a differently built program.
		key := pstore.Key{
			Spec: fmt.Sprintf("oltpbench|%s|sh%d|c%d/p%d|seed%d|w%d|t%d",
				train.Name(), trainShards, *cpus, *procs, *runSeed+7, *warmup, *trainTxns),
			Image: fmt.Sprintf("%016x-%016x", app.Prog.Fingerprint(), kern.Prog.Fingerprint()),
		}
		var prof *profile.Profile
		if store != nil {
			if e, ok := store.Get(key); ok {
				prof, trainFreq = e.App, e.KindFreq
				fmt.Printf("profile store:    hit (trained %s ago), training run skipped\n",
					e.Age(time.Now()).Round(time.Second))
			}
		}
		if prof == nil {
			px := profile.NewPixie(app.Prog, "pixie-train")
			kx := profile.NewPixie(kern.Prog, "pixie-train-kern")
			tcfg := machine.Config{
				CPUs: *cpus, ProcsPerCPU: *procs, Seed: *runSeed + 7,
				Shards:     trainShards,
				WarmupTxns: *warmup, Transactions: *trainTxns,
				Workload: train,
				AppImage: app, AppLayout: appL, KernImage: kern, KernLayout: kernL,
				AppCollector: px, KernCollector: kx,
			}
			tm, err := machine.New(tcfg)
			if err != nil {
				fatal(fmt.Errorf("training: %w", err))
			}
			tres, err := tm.Run()
			if err != nil {
				fatal(fmt.Errorf("training: %w", err))
			}
			prof = px.Profile
			trainFreq = tm.KindFrequencies()
			if store != nil {
				if err := store.Put(&pstore.Entry{
					Spec: key.Spec, Image: key.Image, CreatedAt: time.Now(),
					KindFreq: trainFreq, App: px.Profile, Kern: kx.Profile,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "oltpbench: warning:", err)
				}
			}
			fmt.Printf("trained on:       %d %s txns at %d shard(s)\n",
				tres.Committed, train.Name(), trainShards)
		}
		pl, err := core.ComboPipeline(*optCombo)
		if err != nil {
			fatal(err)
		}
		if *optCombo == "fusion" {
			// Fusion clones procedures, so it runs over a specialized copy
			// of the image; the grown image is what the measurement runs.
			simg := app.Specialize()
			roots, err := appmodel.FusionRoots(simg, wl, train)
			if err != nil {
				fatal(err)
			}
			if len(roots) == 0 {
				fatal(fmt.Errorf("-opt fusion: workload %q declares no transaction-kind roots", wl.Name()))
			}
			var rep *core.Report
			appL, rep, err = pl.RunFused(simg.Prog, prof, roots, simg)
			if err != nil {
				fatal(err)
			}
			if appL.TotalBytes() > isa.AppTextLimitBytes {
				fatal(fmt.Errorf("fused layout is %d bytes, past the %d-byte app text map", appL.TotalBytes(), isa.AppTextLimitBytes))
			}
			app = simg
			fmt.Printf("fused:            %d transaction kinds, %d procedures cloned (%.1f KB growth)\n",
				rep.FusedKinds, rep.ClonedProcs, float64(rep.CloneWords*isa.WordBytes)/1024)
		} else {
			appL, _, err = pl.Run(app.Prog, prof)
			if err != nil {
				fatal(err)
			}
			reoptFn = func(pf *profile.Profile) (*program.Layout, error) {
				l, _, err := pl.Run(app.Prog, pf)
				return l, err
			}
		}
		fmt.Printf("optimized with:   %q (%s)\n", *optCombo, pl.String())
	}

	ic := cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 4})
	seq := trace.NewSeqLen()
	sinks := []trace.Sink{ic, seq}
	var dataSinks []trace.DataSink
	var tw *trace.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw, err = trace.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, tw)
		dataSinks = append(dataSinks, tw)
	}

	cfg := machine.Config{
		CPUs: *cpus, ProcsPerCPU: *procs, Seed: *runSeed,
		Shards: *shards, GroupCommitWindowInstr: *gcWindow, PerCommitLogFlush: *perCommit,
		AutoGroupCommit: gcMode, PredictFastPath: *fastPath,
		FetchStallPenaltyInstr: *stall,
		WarmupTxns:             *warmup, Transactions: *txns,
		Workload: wl,
		AppImage: app, AppLayout: appL, KernImage: kern, KernLayout: kernL,
		Sinks: sinks, DataSinks: dataSinks,
	}
	if *reoptN > 0 {
		cfg.ReoptimizeEveryTxns = *reoptN
		cfg.DriftThreshold = *driftT
		cfg.TrainKindFreq = trainFreq
		cfg.Reoptimize = reoptFn
	}
	m, err := machine.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}

	fmt.Printf("workload:         %s\n", wl.Name())
	if *shards > 1 {
		part := wl.(workload.ShardedWorkload).Partitioning()
		fmt.Printf("shards:           %d engines by %s, %d%% cross-shard (%d cross-shard txns, %d aborts)\n",
			*shards, part.Key, part.CrossShardPct, res.CrossShard, res.Aborted)
	}
	if gcMode != machine.AutoGCOff {
		fmt.Printf("gc windows:       %v (auto-tuned, mode %s)\n", m.GroupCommitWindows(), gcMode)
	}
	if *fastPath {
		fmt.Printf("fast path:        %d predicted local, %d mispredicted (aborted and retried distributed)\n",
			res.Predicted, res.Mispredicted)
	}
	fmt.Printf("committed:        %d transactions\n", res.Committed)
	fmt.Printf("instructions:     %d app + %d kernel (%.1f%% kernel)\n",
		res.AppInstrs, res.KernelInstrs, res.KernelFrac()*100)
	fmt.Printf("per transaction:  %.0f instructions\n",
		float64(res.BusyInstrs)/float64(res.Committed))
	fmt.Printf("icache 64KB/128B/4-way: %d misses (%.3f%% of line accesses)\n",
		ic.Stats().Misses, ic.Stats().MissRate()*100)
	fmt.Printf("mean fetch sequence:    %.2f instructions\n", seq.Hist.Mean())
	if *stall > 0 {
		fmt.Printf("fetch stalls:     %d instr-times (%d per L1I miss)\n", res.FetchStallInstr, *stall)
	}
	fmt.Printf("log: %d flushes, %d grouped commits, %d blocked instr-time; %d lock conflicts; idle %d\n",
		res.LogFlushes, res.GroupedCommits, res.LogBlockedInstr, res.LockConflicts, res.IdleInstrs)
	if *reoptN > 0 {
		fmt.Printf("reopt:            %d layout swap(s), %d instr swap stall; pre-swap p99=%d post-swap p99=%d\n",
			res.Reopts, res.SwapStallInstr, res.PreSwapP99, res.PostSwapP99)
	}
	if store != nil {
		st := store.Stats()
		fmt.Printf("profile store:    hits=%d misses=%d evictions=%d trained=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Misses)
	}
	if *pctiles {
		l := res.Latency
		fmt.Printf("latency (instr-times): mean=%.0f p50=%d p95=%d p99=%d max=%d over %d txns\n",
			l.Mean, l.P50, l.P95, l.P99, l.Max, l.N)
		for _, c := range m.LatencyByKind() {
			s := c.Summary
			fmt.Printf("  shard %d %-14s n=%-6d p50=%-10d p95=%-10d p99=%-10d max=%d\n",
				c.Shard, c.Kind, s.N, s.P50, s.P95, s.P99, s.Max)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		fatal(err)
	}
	fmt.Println("invariants:       ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltpbench:", err)
	os.Exit(1)
}
