// oltpbench runs an OLTP workload on the simulated multiprocessor and
// reports throughput and memory-system behavior, optionally recording the
// instruction/data trace for offline replay with cmd/icachesim.
//
//	oltpbench -workload tpcb -txns 500 -cpus 4 -layout app.layout -trace run.trace
//	oltpbench -workload ordere -quick
//	oltpbench -workload ordere -shards 4 -gcwindow 60000
package main

import (
	"flag"
	"fmt"
	"os"

	"codelayout/internal/appmodel"
	"codelayout/internal/cache"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/program"
	"codelayout/internal/trace"
	"codelayout/internal/workload"

	_ "codelayout/internal/ordere" // register the order-entry workload
	_ "codelayout/internal/tpcb"   // register the TPC-B workload
)

func main() {
	var (
		seed      = flag.Int64("seed", 2001, "image generation seed")
		runSeed   = flag.Int64("runseed", 2001, "workload seed")
		txns      = flag.Int("txns", 500, "measured transactions")
		warmup    = flag.Int("warmup", 100, "warmup transactions")
		cpus      = flag.Int("cpus", 4, "processors")
		procs     = flag.Int("procs", 8, "server processes per CPU")
		shards    = flag.Int("shards", 1, "partitioned database engines behind the shard router")
		gcWindow  = flag.Uint64("gcwindow", 0, "group-commit batching window in instruction-times (0 = flush as soon as a leader arrives)")
		perCommit = flag.Bool("percommit", false, "disable group commit: every commit pays its own log write")
		libScale  = flag.Float64("libscale", 1.0, "library size multiplier")
		cold      = flag.Int("cold", 6_400_000, "app cold words")
		wlName    = flag.String("workload", "tpcb", fmt.Sprintf("workload to run %v", workload.Names()))
		quick     = flag.Bool("quick", false, "use the workload's quick scale")
		layoutIn  = flag.String("layout", "", "optimized layout file (from spike); default baseline")
		tracePath = flag.String("trace", "", "write the measured trace to this file")
	)
	flag.Parse()

	wl, err := workload.New(*wlName)
	if err != nil {
		fatal(err)
	}
	if *quick {
		wl = wl.QuickScale()
	}

	app, err := appmodel.Build(appmodel.Config{
		Seed: *seed, LibScale: *libScale, ColdWords: *cold, Workload: wl,
	})
	if err != nil {
		fatal(err)
	}
	appL, err := program.BaselineLayout(app.Prog)
	if err != nil {
		fatal(err)
	}
	if *layoutIn != "" {
		appL, err = program.LoadLayoutFile(*layoutIn, app.Prog)
		if err != nil {
			fatal(err)
		}
	}
	kern, err := kernel.Build(kernel.DefaultConfig(*seed + 1))
	if err != nil {
		fatal(err)
	}
	kernL, err := program.BaselineLayout(kern.Prog)
	if err != nil {
		fatal(err)
	}

	ic := cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 4})
	seq := trace.NewSeqLen()
	sinks := []trace.Sink{ic, seq}
	var dataSinks []trace.DataSink
	var tw *trace.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw, err = trace.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, tw)
		dataSinks = append(dataSinks, tw)
	}

	cfg := machine.Config{
		CPUs: *cpus, ProcsPerCPU: *procs, Seed: *runSeed,
		Shards: *shards, GroupCommitWindowInstr: *gcWindow, PerCommitLogFlush: *perCommit,
		WarmupTxns: *warmup, Transactions: *txns,
		Workload: wl,
		AppImage: app, AppLayout: appL, KernImage: kern, KernLayout: kernL,
		Sinks: sinks, DataSinks: dataSinks,
	}
	m, err := machine.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}

	fmt.Printf("workload:         %s\n", wl.Name())
	if *shards > 1 {
		part := wl.(workload.ShardedWorkload).Partitioning()
		fmt.Printf("shards:           %d engines by %s, %d%% cross-shard (%d cross-shard txns, %d deadlock aborts)\n",
			*shards, part.Key, part.CrossShardPct, res.CrossShard, res.Aborted)
	}
	fmt.Printf("committed:        %d transactions\n", res.Committed)
	fmt.Printf("instructions:     %d app + %d kernel (%.1f%% kernel)\n",
		res.AppInstrs, res.KernelInstrs, res.KernelFrac()*100)
	fmt.Printf("per transaction:  %.0f instructions\n",
		float64(res.BusyInstrs)/float64(res.Committed))
	fmt.Printf("icache 64KB/128B/4-way: %d misses (%.3f%% of line accesses)\n",
		ic.Stats().Misses, ic.Stats().MissRate()*100)
	fmt.Printf("mean fetch sequence:    %.2f instructions\n", seq.Hist.Mean())
	fmt.Printf("log: %d flushes, %d grouped commits, %d blocked instr-time; %d lock conflicts; idle %d\n",
		res.LogFlushes, res.GroupedCommits, res.LogBlockedInstr, res.LockConflicts, res.IdleInstrs)
	if err := m.CheckInvariants(); err != nil {
		fatal(err)
	}
	fmt.Println("invariants:       ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltpbench:", err)
	os.Exit(1)
}
