module codelayout

go 1.24
