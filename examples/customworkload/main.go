// Customworkload: plugging a user-defined transaction mix into the workload
// name registry through the facade — no internal imports. A 50/50
// read/update key-value variant registers itself as "ycsb50"; from then on
// it is addressable by name everywhere a workload name goes: NewWorkload,
// session options, the robustness matrix, and (if blank-imported by a
// command) every -workload flag.
//
// The program then asks the profile-drift question on the custom mix: how
// well does a layout trained on the stock 95/5 mix serve the 50/50 mix,
// compared to a self-trained layout?
package main

import (
	"flag"
	"fmt"
	"log"

	"codelayout"
)

func main() {
	quick := flag.Bool("quick", true, "use quick scales and a short run")
	flag.Parse()

	// 1. Define and register the custom mix. Registration is by name, like
	// layout passes; duplicates error instead of panicking.
	if err := codelayout.RegisterWorkload("ycsb50", func() codelayout.Workload {
		return codelayout.YCSBMix("ycsb50", 50)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered workloads: %v\n", codelayout.Workloads())

	// 2. Resolve it back by name, as any command would.
	mix, err := codelayout.NewWorkload("ycsb50")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate the custom mix with two layouts over one shared image:
	// one trained on the mix itself, one transplanted from the stock 95/5
	// workload.
	opts := codelayout.QuickSessionOptions()
	if *quick {
		mix = mix.QuickScale()
		opts.Transactions = 80
		opts.WarmupTxns = 20
		opts.Train.Txns = 200
	} else {
		opts = codelayout.DefaultSessionOptions()
	}
	opts.Workload = mix

	stock := codelayout.YCSB()
	if *quick {
		stock = stock.QuickScale()
	}
	src, err := codelayout.NewProfileSource(opts, stock)
	if err != nil {
		log.Fatal(err)
	}
	s, err := codelayout.NewSessionFrom(src, opts)
	if err != nil {
		log.Fatal(err)
	}

	base, err := s.Measure("base", opts.CPUs)
	if err != nil {
		log.Fatal(err)
	}
	self, err := s.Measure("all", opts.CPUs)
	if err != nil {
		log.Fatal(err)
	}
	transplant, err := s.MeasureFrom(codelayout.TrainConfig{Workload: stock}, "all", opts.CPUs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nycsb50 under three layouts (app icache, 64KB/128B/4-way):\n")
	fmt.Printf("  baseline:              %.3f%% miss ratio\n", 100*base.App4W[64].MissRate())
	fmt.Printf("  self-trained 'all':    %.3f%% miss ratio\n", 100*self.App4W[64].MissRate())
	fmt.Printf("  trained on stock ycsb: %.3f%% miss ratio\n", 100*transplant.App4W[64].MissRate())
	if d := transplant.App4W[64].MissRate() / self.App4W[64].MissRate(); d > 1 {
		fmt.Printf("  transplant drift:      +%.1f%% misses over self-trained\n", 100*(d-1))
	}
}
