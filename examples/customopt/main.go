// Customopt: plugging a custom procedure-ordering pass into the pipeline.
// The library's passes are composable: chaining and splitting produce
// placement units, and any ordering of those units can be materialized into
// a layout. Here a naive "sort units by hotness" ordering is compared with
// Pettis–Hansen, showing why call-graph affinity beats raw hotness.
package main

import (
	"fmt"
	"log"
	"sort"

	"codelayout"
	"codelayout/internal/appmodel"
	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/db"
	"codelayout/internal/program"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"

	"math/rand"
)

func main() {
	img, err := appmodel.Build(appmodel.Config{Seed: 3, LibScale: 0.5, ColdWords: 400_000})
	if err != nil {
		log.Fatal(err)
	}
	base, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		log.Fatal(err)
	}

	// Train on real transactions.
	px := codelayout.NewPixie(img.Prog, "train")
	train := newRun(img, base, 100)
	train.em.Collector = px
	train.txns(300)

	prof := px.Profile
	prof.EnsureEdges(img.Prog)

	// Shared front half of the pipeline: chain, then split fine.
	chains := make(map[program.ProcID][]core.Chain, len(img.Prog.Procs))
	for _, pr := range img.Prog.Procs {
		if pr.Cold {
			chains[pr.ID] = core.SourceChains(pr)
		} else {
			chains[pr.ID] = core.ChainProc(img.Prog, pr, prof)
		}
	}
	units := core.BuildUnits(img.Prog, prof, chains, core.SplitFine)

	materialize := func(order []int) *codelayout.Layout {
		var blocks []program.BlockID
		alignAt := make(map[program.BlockID]bool)
		seen := make(map[int]bool)
		place := func(i int) {
			if seen[i] || len(units[i].Blocks) == 0 {
				return
			}
			seen[i] = true
			alignAt[units[i].Blocks[0]] = true
			blocks = append(blocks, units[i].Blocks...)
		}
		for _, i := range order {
			place(i)
		}
		for i := range units {
			place(i)
		}
		l, err := program.Materialize(img.Prog, blocks, program.MaterializeOptions{
			AlignWords: 4, AlignAt: alignAt, Hotness: prof.Count,
		})
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	// Custom ordering 1: raw hotness.
	byHotness := make([]int, 0, len(units))
	for i, u := range units {
		if u.Hot {
			byHotness = append(byHotness, i)
		}
	}
	sort.SliceStable(byHotness, func(a, b int) bool {
		return units[byHotness[a]].Count > units[byHotness[b]].Count
	})
	hotnessLayout := materialize(byHotness)

	// Ordering 2: Pettis–Hansen (the paper's choice).
	phLayout := materialize(core.PettisHansen(img.Prog, prof, units))

	fmt.Println("custom ordering pass comparison (32KB direct-mapped, 128B lines):")
	for _, c := range []struct {
		name string
		l    *codelayout.Layout
	}{{"baseline", base}, {"hotness-sorted", hotnessLayout}, {"pettis-hansen", phLayout}} {
		run := newRun(img, c.l, 2024)
		ic := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 1})
		run.em.Sink = func(addr uint64, words int32) {
			ic.Fetch(trace.FetchRun{Addr: addr, Words: words})
		}
		run.txns(300)
		fmt.Printf("  %-15s %7d misses\n", c.name, ic.Stats().Misses)
	}
}

// run drives real TPC-B transactions through an emitter outside the full
// machine (single process, no kernel).
type run struct {
	em    *codegen.Emitter
	bench *tpcb.Bench
	sess  *db.Session
	rng   *rand.Rand
}

func newRun(img *codelayout.Image, l *codelayout.Layout, seed int64) *run {
	em := codegen.NewEmitter(img, l, seed)
	em.Sink = func(uint64, int32) {}
	eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
	bench, err := tpcb.Load(eng, tpcb.Scale{Branches: 5, TellersPerBranch: 5, AccountsPerBranch: 200})
	if err != nil {
		log.Fatal(err)
	}
	return &run{em: em, bench: bench, sess: eng.NewSession(1, em), rng: rand.New(rand.NewSource(seed))}
}

func (r *run) txns(n int) {
	for i := 0; i < n; i++ {
		r.bench.RunTxn(r.sess, r.bench.GenInput(r.rng))
	}
}
