// Customopt: plugging a custom procedure-ordering pass into the pipeline.
// The optimizer is a registry of named passes; RegisterPass adds a new one
// and ParsePipeline assembles any sequence by name. Here a naive "sort units
// by hotness" ordering pass is registered as "hotsort" and compared with
// Pettis–Hansen, showing why call-graph affinity beats raw hotness.
//
// Run with -passes to try any other pipeline spec, e.g.:
//
//	customopt -passes chain,split:none,ipchain,porder:ph
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"codelayout"
	"codelayout/internal/appmodel"
	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"

	"math/rand"
)

// hotSortPass orders hot units by raw execution count, cold units last in
// their original relative order — the strawman Pettis–Hansen improves on.
// Like the built-in ordering passes, it refuses to overwrite an ordering an
// earlier pass already produced.
type hotSortPass struct{}

func (hotSortPass) Name() string { return "hotsort" }

func (hotSortPass) Run(st *codelayout.LayoutState) error {
	if st.UnitOrder != nil {
		return fmt.Errorf("units already ordered")
	}
	st.EnsureUnits()
	var hot, cold []int
	for i, u := range st.Units {
		if u.Hot {
			hot = append(hot, i)
		} else {
			cold = append(cold, i)
		}
	}
	sort.SliceStable(hot, func(a, b int) bool {
		return st.Units[hot[a]].Count > st.Units[hot[b]].Count
	})
	st.UnitOrder = append(hot, cold...)
	return nil
}

func main() {
	custom := flag.String("passes", "", "extra pipeline spec to measure alongside the built-in comparison")
	flag.Parse()

	if err := codelayout.RegisterPass("hotsort", func(arg string) (codelayout.Pass, error) {
		return hotSortPass{}, nil
	}); err != nil {
		log.Fatal(err)
	}

	img, err := appmodel.Build(appmodel.Config{Seed: 3, LibScale: 0.5, ColdWords: 400_000, Workload: tpcb.New()})
	if err != nil {
		log.Fatal(err)
	}
	base, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		log.Fatal(err)
	}

	// Train on real transactions.
	px := codelayout.NewPixie(img.Prog, "train")
	train := newRun(img, base, 100)
	train.em.Collector = px
	train.txns(300)
	prof := px.Profile

	type candidate struct {
		name string
		l    *codelayout.Layout
	}
	candidates := []candidate{{"baseline", base}}
	specs := []struct{ name, spec string }{
		{"hotsort", "chain,split:fine,hotsort"},
		{"pettis-hansen", "chain,split:fine,porder:ph"},
	}
	if *custom != "" {
		specs = append(specs, struct{ name, spec string }{"custom", *custom})
	}
	for _, sp := range specs {
		pl, err := codelayout.ParsePipeline(sp.spec)
		if err != nil {
			log.Fatalf("bad pipeline %q: %v", sp.spec, err)
		}
		l, _, err := pl.Run(img.Prog, prof)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s -> %s\n", sp.name, pl)
		candidates = append(candidates, candidate{sp.name, l})
	}

	fmt.Println("\ncustom ordering pass comparison (32KB direct-mapped, 128B lines):")
	for _, c := range candidates {
		run := newRun(img, c.l, 2024)
		ic := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 1})
		run.em.Sink = func(addr uint64, words int32) {
			ic.Fetch(trace.FetchRun{Addr: addr, Words: words})
		}
		run.txns(300)
		fmt.Printf("  %-15s %7d misses\n", c.name, ic.Stats().Misses)
	}
}

// run drives real TPC-B transactions through an emitter outside the full
// machine (single process, no kernel).
type run struct {
	em    *codegen.Emitter
	bench *tpcb.Bench
	sess  *db.Session
	rng   *rand.Rand
}

func newRun(img *codelayout.Image, l *codelayout.Layout, seed int64) *run {
	em := codegen.NewEmitter(img, l, seed)
	em.Sink = func(uint64, int32) {}
	eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
	bench, err := tpcb.Load(eng, tpcb.Scale{Branches: 5, TellersPerBranch: 5, AccountsPerBranch: 200})
	if err != nil {
		log.Fatal(err)
	}
	return &run{em: em, bench: bench, sess: eng.NewSession(1, em), rng: rand.New(rand.NewSource(seed))}
}

func (r *run) txns(n int) {
	for i := 0; i < n; i++ {
		r.bench.RunTxn(r.sess, r.bench.GenInput(r.rng))
	}
}
