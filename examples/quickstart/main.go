// Quickstart: build a small modeled binary, profile it, optimize its layout
// with the paper's pipeline (chain + fine-grain split + Pettis–Hansen), and
// compare instruction-cache misses under both layouts.
package main

import (
	"fmt"
	"log"

	"codelayout"
	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/isa"
	"codelayout/internal/trace"
)

func main() {
	// A toy image: a dispatcher that calls three handlers through helper
	// layers; handler "hot" dominates.
	img, err := codegen.Build(codegen.ImageSpec{
		Name:     "quickstart",
		TextBase: isa.AppTextBase,
		Fns: []codegen.FnSpec{
			{Name: "memfmt", Auto: true, Body: []codegen.Frag{codegen.Seq(18)}},
			{Name: "check", Auto: true, Body: []codegen.Frag{
				codegen.Seq(6),
				codegen.AutoIf{Prob: 0.9, Then: []codegen.Frag{codegen.Seq(4)}, Else: []codegen.Frag{codegen.Seq(30)}},
			}},
			{Name: "hot", Auto: true, Body: []codegen.Frag{
				codegen.Seq(10), codegen.Call{Fn: "check"},
				codegen.AutoLoop{Prob: 0.7, Head: 2, Body: []codegen.Frag{codegen.Seq(8)}},
				codegen.Call{Fn: "memfmt"},
			}},
			{Name: "warm", Auto: true, Body: []codegen.Frag{
				codegen.Seq(40), codegen.Call{Fn: "check"},
			}},
			{Name: "cold_helper", Auto: true, Cold: true, Body: []codegen.Frag{codegen.Seq(900)}},
			{Name: "dispatch", Auto: true, Body: []codegen.Frag{
				codegen.Seq(5),
				codegen.AutoPick{Fns: []string{"hot", "warm"}, Weights: []uint32{9, 1}},
				codegen.Seq(3),
			}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	base, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		log.Fatal(err)
	}

	// Profile: run the dispatcher under the baseline layout with a Pixie
	// collector attached.
	px := codelayout.NewPixie(img.Prog, "train")
	em := codegen.NewEmitter(img, base, 1)
	em.Collector = px
	em.Sink = func(uint64, int32) {}
	for i := 0; i < 5000; i++ {
		em.RunAuto("dispatch")
	}

	// Optimize with the full pipeline.
	opt, rep, err := codelayout.Optimize(img.Prog, px.Profile, codelayout.OptAll())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: %d chains, %d units (%d hot)\n", rep.Chains, rep.Units, rep.HotUnits)

	// Measure both layouts on a tiny cache with a fresh workload seed.
	measure := func(l *codelayout.Layout) uint64 {
		ic := cache.New(cache.Config{SizeBytes: 1 << 10, LineBytes: 64, Assoc: 1})
		e := codegen.NewEmitter(img, l, 99)
		e.Sink = func(addr uint64, words int32) {
			ic.Fetch(trace.FetchRun{Addr: addr, Words: words})
		}
		for i := 0; i < 5000; i++ {
			e.RunAuto("dispatch")
		}
		return ic.Stats().Misses
	}
	b, o := measure(base), measure(opt)
	fmt.Printf("icache misses: baseline %d, optimized %d (%.1f%% reduction)\n",
		b, o, 100*(1-float64(o)/float64(b)))
}
