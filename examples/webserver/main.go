// Webserver: the paper's introduction motivates commercial workloads beyond
// databases — web servers in particular. This example models a web server's
// request path (accept, parse, route, cache lookup, handler, response) as a
// code image, drives it with a synthetic request mix, and applies the layout
// pipeline. Web serving has a smaller instruction footprint than OLTP, so
// the gains are real but smaller — matching the paper's observation that
// large-footprint workloads benefit most.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"codelayout"
	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/isa"
	"codelayout/internal/trace"
)

func buildServer(seed int64) (*codelayout.Image, error) {
	r := rand.New(rand.NewSource(seed))
	// Helper layers: string/header utilities, filesystem cache, TCP-ish IO.
	strSpecs, strNames := codegen.GenLayer(r, codegen.LibConfig{Prefix: "str", N: 40, MeanWords: 50}, nil)
	fsSpecs, fsNames := codegen.GenLayer(r, codegen.LibConfig{
		Prefix: "fscache", N: 30, MeanWords: 60, CallsPerFn: 1, PickWidth: 4}, strNames)
	ioSpecs, ioNames := codegen.GenLayer(r, codegen.LibConfig{
		Prefix: "sock", N: 20, MeanWords: 70, CallsPerFn: 1, PickWidth: 4}, strNames)
	handlers, handlerNames := codegen.GenLayer(r, codegen.LibConfig{
		Prefix: "handler", N: 24, MeanWords: 90, CallsPerFn: 2, PickWidth: 6}, append(fsNames, strNames...))

	fns := append(append(append(append([]codegen.FnSpec{}, strSpecs...), fsSpecs...), ioSpecs...), handlers...)
	fns = append(fns,
		codegen.FnSpec{Name: "parse_request", Auto: true, Body: []codegen.Frag{
			codegen.Seq(12),
			codegen.AutoLoop{Prob: 0.85, Head: 2, Body: []codegen.Frag{codegen.Seq(7)}}, // header lines
			codegen.AutoPick{Fns: strNames[:8]},
			codegen.ErrPath(r),
		}},
		codegen.FnSpec{Name: "route", Auto: true, Body: []codegen.Frag{
			codegen.Seq(8),
			codegen.AutoPick{Fns: handlerNames, Weights: zipf(len(handlerNames))},
			codegen.Seq(4),
		}},
		codegen.FnSpec{Name: "respond", Auto: true, Body: []codegen.Frag{
			codegen.Seq(10), codegen.AutoPick{Fns: ioNames[:6]},
			codegen.AutoLoop{Prob: 0.6, Head: 2, Body: []codegen.Frag{codegen.Seq(9)}},
		}},
		codegen.FnSpec{Name: "serve_request", Auto: true, Body: []codegen.Frag{
			codegen.Seq(6),
			codegen.Call{Fn: "parse_request"},
			codegen.Call{Fn: "route"},
			codegen.Call{Fn: "respond"},
			codegen.Seq(4),
		}},
	)
	fns = append(fns, codegen.GenCold(r, "cold", 600_000, 1000)...)
	return codegen.Build(codegen.ImageSpec{Name: "webserver", TextBase: isa.AppTextBase, Fns: fns})
}

func zipf(n int) []uint32 {
	w := make([]uint32, n)
	for i := range w {
		w[i] = uint32(1000 / (i + 1))
		if w[i] == 0 {
			w[i] = 1
		}
	}
	return w
}

func main() {
	img, err := buildServer(7)
	if err != nil {
		log.Fatal(err)
	}
	base, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		log.Fatal(err)
	}

	px := codelayout.NewPixie(img.Prog, "train")
	em := codegen.NewEmitter(img, base, 11)
	em.Collector = px
	em.Sink = func(uint64, int32) {}
	for i := 0; i < 3000; i++ {
		em.RunAuto("serve_request")
	}

	opt, _, err := codelayout.Optimize(img.Prog, px.Profile, codelayout.OptAll())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("web server request path, 3000 fresh requests per layout:")
	for _, size := range []int{8, 16, 32} {
		measure := func(l *codelayout.Layout) uint64 {
			ic := cache.New(cache.Config{SizeBytes: size << 10, LineBytes: 64, Assoc: 2})
			e := codegen.NewEmitter(img, l, 1234)
			e.Sink = func(addr uint64, words int32) {
				ic.Fetch(trace.FetchRun{Addr: addr, Words: words})
			}
			for i := 0; i < 3000; i++ {
				e.RunAuto("serve_request")
			}
			return ic.Stats().Misses
		}
		b, o := measure(base), measure(opt)
		fmt.Printf("  %2dKB 2-way icache: base %7d  opt %7d  (%.1f%% reduction)\n",
			size, b, o, 100*(1-float64(o)/float64(b)))
	}
}
