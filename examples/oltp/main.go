// OLTP: the paper's full pipeline end to end on the TPC-B workload —
// profile the database engine's modeled binary, optimize its layout, and
// reproduce the headline results (miss reduction, sequence lengths,
// speedup) through the experiment session.
package main

import (
	"fmt"
	"log"
	"os"

	"codelayout"
)

func main() {
	opts := codelayout.QuickSessionOptions()
	s, err := codelayout.NewSession(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Reproducing the paper's headline results (quick configuration)...")
	for _, id := range []string{"fig05", "fig08", "footprint", "speedup"} {
		tables, err := codelayout.RunExperiment(s, id)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
			fmt.Println()
		}
	}
	fmt.Println("Run `go run ./cmd/layoutlab -full -run all` for the paper-scale tables.")
}
