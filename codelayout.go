// Package codelayout reproduces "Code Layout Optimizations for Transaction
// Processing Workloads" (Ramírez et al., ISCA 2001) as a Go library: a
// Spike-style profile-driven layout optimizer (basic block chaining,
// fine-grain procedure splitting, Pettis–Hansen procedure ordering), the
// OLTP system it is evaluated on (a TPC-B storage engine, modeled
// application and kernel code images, a multiprocessor full-system
// simulator), and the measurement stack (instruction caches with the
// paper's word-usage/lifetime/interference metrics, iTLB, unified L2,
// timing model) that regenerates every figure of the paper's evaluation.
//
// The package is a facade: it re-exports the stable surface of the internal
// packages so downstream users interact with one import.
//
//	img, _ := codelayout.BuildOLTPImage(codelayout.DefaultImageConfig(1))
//	base, _ := codelayout.BaselineLayout(img.Prog)
//	... run a profiling workload ...
//	opt, rep, _ := codelayout.Optimize(img.Prog, prof, codelayout.OptAll())
//
// See examples/ for complete programs and cmd/layoutlab for the experiment
// harness.
package codelayout

import (
	"io"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/db"
	"codelayout/internal/expt"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/pstore"
	"codelayout/internal/reclayout"
	"codelayout/internal/search"
	"codelayout/internal/stats"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"

	_ "codelayout/internal/ordere" // register the order-entry workload
)

// Core program representation.
type (
	// Program is an executable image: procedures of basic blocks.
	Program = program.Program
	// Layout places a program's blocks at addresses.
	Layout = program.Layout
	// BlockID identifies a basic block.
	BlockID = program.BlockID
	// ProcID identifies a procedure.
	ProcID = program.ProcID
	// Profile carries basic-block and edge execution counts.
	Profile = profile.Profile
	// Image is a modeled binary with emitter annotations.
	Image = codegen.Image
	// Table is a rendered experiment result.
	Table = stats.Table
)

// Optimizer surface.
type (
	// OptimizeOptions selects the optimization combination.
	OptimizeOptions = core.Options
	// OptimizeReport summarizes what the optimizer did.
	OptimizeReport = core.Report
	// SplitMode selects procedure splitting (none, fine-grain, hot/cold).
	SplitMode = core.SplitMode
	// OrderMode selects procedure ordering (original or Pettis–Hansen).
	OrderMode = core.OrderMode
	// Pass is one stage of a layout pipeline.
	Pass = core.Pass
	// PassFactory builds a pass from its spec argument.
	PassFactory = core.PassFactory
	// Pipeline is an ordered list of layout passes.
	Pipeline = core.Pipeline
	// LayoutState is the shared state a pipeline threads through its passes.
	LayoutState = core.LayoutState
	// Unit is a placement unit: a run of blocks kept contiguous by ordering.
	Unit = core.Unit
)

// Splitting and ordering modes.
const (
	SplitNone         = core.SplitNone
	SplitFine         = core.SplitFine
	SplitHotCold      = core.SplitHotCold
	OrderOriginal     = core.OrderOriginal
	OrderPettisHansen = core.OrderPettisHansen
)

// Optimize lays out the program under the given options using the profile,
// exactly as Spike does: chaining, splitting, then ordering.
func Optimize(p *Program, prof *Profile, o OptimizeOptions) (*Layout, *OptimizeReport, error) {
	return core.Optimize(p, prof, o)
}

// OptAll returns the paper's full optimization combination
// (chain + fine-grain split + Pettis–Hansen ordering).
func OptAll() OptimizeOptions {
	return OptimizeOptions{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}
}

// Combos returns the paper's six optimization combinations in order
// (base, porder, chain, chain+split, chain+porder, all).
func Combos() []core.Combo { return core.Combos() }

// RegisterPass adds a custom layout pass to the pipeline registry under the
// given base name; pipeline specs may then reference it as "name" or
// "name:arg".
func RegisterPass(name string, f PassFactory) error { return core.RegisterPass(name, f) }

// RegisterPassDoc is RegisterPass with a one-line description shown by
// PassDocs and spike -list-passes.
func RegisterPassDoc(name, doc string, f PassFactory) error {
	return core.RegisterPassDoc(name, doc, f)
}

// RegisteredPasses lists the registered pass names, sorted.
func RegisteredPasses() []string { return core.RegisteredPasses() }

// PassDoc describes one registered pass for listings.
type PassDoc = core.PassDoc

// PassDocs returns every registered pass sorted by name with its one-line
// description.
func PassDocs() []PassDoc { return core.PassDocs() }

// ParsePipeline parses a comma-separated pass spec such as
// "chain,split:fine,porder:ph" into a runnable pipeline (materialization
// runs implicitly if the spec does not end in a materializing pass).
func ParsePipeline(spec string) (Pipeline, error) { return core.ParsePipeline(spec) }

// PipelineFor assembles the pass pipeline implementing the given options.
func PipelineFor(o OptimizeOptions) (Pipeline, error) { return core.PipelineFor(o) }

// ComboPipeline resolves a combo name (the paper's six plus "hotcold",
// "cfa", "ipchain" and "fusion") to its pass pipeline.
func ComboPipeline(name string) (Pipeline, error) { return core.ComboPipeline(name) }

// TxFuseSpec is the pipeline spec of the "fusion" combo: per-transaction-kind
// program fusion (the txfuse pass) between chaining and Pettis–Hansen
// ordering. Run it through Pipeline.RunFused with kind roots (FusionRoots)
// and a specialized image (Image.Specialize) to enable procedure cloning.
const TxFuseSpec = core.TxFuseSpec

// KindRoot seeds one fused placement unit: a transaction-kind label and the
// procedure of the kind's entry model.
type KindRoot = core.KindRoot

// FusionRoots resolves the transaction-kind roots the given workloads declare
// against an image, for Pipeline.RunFused.
func FusionRoots(img *Image, wls ...Workload) ([]KindRoot, error) {
	return appmodel.FusionRoots(img, wls...)
}

// BaselineLayout materializes the original (source-order) binary layout.
func BaselineLayout(p *Program) (*Layout, error) { return program.BaselineLayout(p) }

// Workload surface.
type (
	// Workload describes one OLTP benchmark at a specific scale.
	Workload = workload.Workload
	// WorkloadInstance is a workload loaded into an engine.
	WorkloadInstance = workload.Instance
	// ShardedWorkload is a workload that can partition across the shard
	// router's engines (set MachineConfig.Shards > 1 to use it).
	ShardedWorkload = workload.ShardedWorkload
	// Partitioning declares a workload's shard scheme and cross-shard
	// transaction fraction.
	Partitioning = workload.Partitioning
	// Predictor classifies transactions as single-shard or distributed for
	// the predictive fast path (MachineConfig.PredictFastPath); the default
	// is a per-class frequency/Markov model trained from warmup.
	Predictor = workload.Predictor
)

// Workloads lists the registered workload names ("tpcb", "ordere", "ycsb",
// ...).
func Workloads() []string { return workload.Names() }

// NewWorkload returns the named workload at its default (paper) scale.
func NewWorkload(name string) (Workload, error) { return workload.New(name) }

// RegisterWorkload adds a user-defined mix to the name registry, making it
// reachable by every -workload flag, session option and experiment table
// without importing internal packages. It errors on duplicate names. See
// examples/customworkload for a complete program.
func RegisterWorkload(name string, f func() Workload) error {
	return workload.RegisterUser(name, f)
}

// TPCB returns the paper's TPC-B workload at default scale.
func TPCB() Workload { return tpcb.New() }

// TPCBScaled returns the TPC-B workload at an explicit scale.
func TPCBScaled(sc Scale) Workload { return tpcb.NewScaled(sc) }

// YCSB returns the key-value point-read workload at default scale (95/5
// read/update).
func YCSB() Workload { return ycsb.New() }

// YCSBMix returns a key-value workload variant with its own registry label
// and read percentage — the building block for user-defined mixes (register
// it with RegisterWorkload to make it addressable by name).
func YCSBMix(label string, readPct int) Workload {
	w := ycsb.New()
	w.Label = label
	w.ReadPct = readPct
	return w
}

// ImageConfig shapes the OLTP application image.
type ImageConfig = appmodel.Config

// DefaultImageConfig returns the paper-calibrated image shape for the TPC-B
// workload; set ImageConfig.Workload to model a different mix.
func DefaultImageConfig(seed int64) ImageConfig { return appmodel.DefaultConfig(seed, tpcb.New()) }

// BuildOLTPImage assembles the modeled database-engine binary.
func BuildOLTPImage(cfg ImageConfig) (*Image, error) { return appmodel.Build(cfg) }

// KernelConfig shapes the modeled kernel image.
type KernelConfig = kernel.Config

// DefaultKernelConfig returns the standard kernel shape.
func DefaultKernelConfig(seed int64) KernelConfig { return kernel.DefaultConfig(seed) }

// BuildKernelImage assembles the modeled operating-system binary.
func BuildKernelImage(cfg KernelConfig) (*Image, error) { return kernel.Build(cfg) }

// Machine surface.
type (
	// MachineConfig configures a full-system simulation run.
	MachineConfig = machine.Config
	// MachineResult reports a run's outcome.
	MachineResult = machine.Result
	// Machine is one configured simulation.
	Machine = machine.Machine
	// Scale sizes the TPC-B database.
	Scale = tpcb.Scale
	// LatencySummary condenses a per-transaction latency distribution into
	// mean, p50/p95/p99 and max (MachineResult.Latency, latency tables).
	LatencySummary = machine.LatencySummary
	// TxnLatency is one (shard, transaction kind) cell of a run's latency
	// breakdown (Machine.LatencyByKind).
	TxnLatency = machine.TxnLatency
	// AutoGCMode selects how the group-commit windows are auto-tuned from
	// warmup observations (MachineConfig.AutoGroupCommit).
	AutoGCMode = machine.AutoGCMode
)

// Group-commit auto-tuning modes.
const (
	// AutoGCOff disables group-commit auto-tuning.
	AutoGCOff = machine.AutoGCOff
	// AutoGCFlushCount tunes each shard's window for fewest log flushes.
	AutoGCFlushCount = machine.AutoGCFlushCount
	// AutoGCTargetP99 tunes each shard's window to minimize modeled p99
	// transaction latency.
	AutoGCTargetP99 = machine.AutoGCTargetP99
)

// NewMachine builds a full-system simulation (engine, loaded workload
// database, server processes).
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// DefaultScale returns the paper's 40-branch TPC-B scaling.
func DefaultScale() Scale { return tpcb.DefaultScale() }

// Experiment harness surface.
type (
	// Session owns images, profiles and memoized measurement runs.
	Session = expt.Session
	// SessionOptions configures a session.
	SessionOptions = expt.Options
	// TrainConfig is the train-side half of a session's configuration:
	// the workload, seed, shard count and length of the profiling run a
	// layout is built from. Zero fields inherit from the evaluation side.
	TrainConfig = expt.TrainConfig
	// ProfileSource owns shared images and memoized training runs, so
	// several sessions (or several train configs in one session) evaluate
	// layouts over one program.
	ProfileSource = expt.ProfileSource
	// RobustnessSpec configures the train×eval robustness matrix.
	RobustnessSpec = expt.RobustnessSpec
	// RobustnessResult carries the matrix cells and rendered tables.
	RobustnessResult = expt.RobustnessResult
	// LatencySpec configures the latency percentile tables.
	LatencySpec = expt.LatencySpec
	// ShardSweepSpec configures the shard-count sweep table (shard list,
	// layouts, fast-path delta columns, group-commit tuning mode).
	ShardSweepSpec = expt.ShardSweepSpec
)

// DefaultSessionOptions is the paper-scale configuration.
func DefaultSessionOptions() SessionOptions { return expt.DefaultOptions() }

// QuickSessionOptions is a fast, shape-preserving configuration.
func QuickSessionOptions() SessionOptions { return expt.QuickOptions() }

// NewSession builds the images and baseline layouts for experiments.
func NewSession(o SessionOptions) (*Session, error) { return expt.NewSession(o) }

// NewProfileSource builds shared images covering o's workload plus any
// extras, so sessions created with NewSessionFrom can transplant layouts
// trained on any covered workload.
func NewProfileSource(o SessionOptions, extra ...Workload) (*ProfileSource, error) {
	return expt.NewProfileSource(o, extra...)
}

// NewSessionFrom builds a session over a shared profile source.
func NewSessionFrom(src *ProfileSource, o SessionOptions) (*Session, error) {
	return expt.NewSessionFrom(src, o)
}

// Robustness runs the train×eval robustness matrix: every listed workload ×
// shard count is both a training configuration and an evaluation cell, and
// the tables report self-trained vs transplanted miss ratios — the
// profile-drift cost of reusing stale layouts.
func Robustness(o SessionOptions, spec RobustnessSpec) (*RobustnessResult, error) {
	return expt.Robustness(o, spec)
}

// ShardSweep sweeps the shard count over o's workload, self-training at
// each count, and reports throughput, blocked-on-log time and miss ratios.
func ShardSweep(o SessionOptions, shardCounts []int, layouts []string) (*Table, error) {
	return expt.ShardSweep(o, shardCounts, layouts)
}

// ShardSweepTable is the configurable shard sweep: an explicit shard list
// (up to 64), a group-commit tuning mode, and optional predictive fast-path
// on/off delta columns (instr/txn, p99, predicted/mispredicted counts).
func ShardSweepTable(o SessionOptions, spec ShardSweepSpec) (*Table, error) {
	return expt.ShardSweepTable(o, spec)
}

// LatencyTables measures every workload × shard count cell under the
// original and the optimized layout and renders the per-transaction latency
// percentile tables (run-wide plus per shard × transaction kind).
func LatencyTables(o SessionOptions, spec LatencySpec) ([]*Table, error) {
	return expt.LatencyTables(o, spec)
}

// ExperimentIDs lists the reproducible figures and in-text results.
func ExperimentIDs() []string { return expt.IDs() }

// RunExperiment executes one experiment in the session.
func RunExperiment(s *Session, id string) ([]*Table, error) { return s.Run(id) }

// RunAllExperiments executes every experiment, rendering tables to w.
func RunAllExperiments(s *Session, w io.Writer) error { return s.RunAll(w) }

// NewPixie creates an exact (instrumentation) profile collector for the
// program; attach it as a machine's AppCollector.
func NewPixie(p *Program, name string) *profile.Pixie { return profile.NewPixie(p, name) }

// Continuous-PGO surface: the persistent profile store, aged-profile
// blending, and the online drift re-optimizer.
type (
	// ProfileStore is the persistent profile store: an in-memory LRU front
	// over content-hashed files, written atomically and tolerant of
	// corruption (a bad file is evicted and retrained, never fatal). Set
	// SessionOptions.ProfileStore to make repeated sessions skip training.
	ProfileStore = pstore.Store
	// ProfileStoreKey identifies one training run: the resolved train spec
	// plus the program-image fingerprints the profile's block IDs index.
	ProfileStoreKey = pstore.Key
	// ProfileStoreEntry is one stored training run (profiles plus the
	// observed transaction-kind mix the drift detector compares against).
	ProfileStoreEntry = pstore.Entry
	// ProfileStoreStats counts store traffic: every miss is a training run
	// executed, every hit one skipped.
	ProfileStoreStats = pstore.Stats
	// BlendSpec configures the aged-profile blending sweep.
	BlendSpec = expt.BlendSpec
	// BlendResult carries the sweep's measured cells and rendered table.
	BlendResult = expt.BlendResult
)

// ErrProfileStoreCorrupt is the sentinel wrapped by profile-store loads that
// find a damaged file (errors.Is-matchable; the store self-heals by evicting).
var ErrProfileStoreCorrupt = pstore.ErrCorrupt

// DefaultDriftThreshold is the L1 kind-mix distance past which the online
// re-optimizer retrains (MachineConfig.DriftThreshold = 0 selects it).
const DefaultDriftThreshold = machine.DefaultDriftThreshold

// OpenProfileStore opens the store rooted at dir, creating it if needed; an
// empty dir makes a memory-only store.
func OpenProfileStore(dir string) (*ProfileStore, error) { return pstore.Open(dir) }

// ReadProfileStoreEntry loads and verifies one store file; damaged files
// return an error wrapping ErrProfileStoreCorrupt.
func ReadProfileStoreEntry(path string) (*ProfileStoreEntry, error) { return pstore.ReadEntry(path) }

// BlendProfiles merges stored training runs under the given weights — the
// continuous-PGO answer to aging profiles: keep part of the stale mix while
// folding in the fresh one.
func BlendProfiles(entries []*ProfileStoreEntry, weights []float64) (*ProfileStoreEntry, error) {
	return pstore.Blend(entries, weights)
}

// BlendTable sweeps layouts built from stale/fresh profile blends across mix
// ratios and measures each under the drifted-to workload.
func BlendTable(o SessionOptions, spec BlendSpec) (*BlendResult, error) {
	return expt.BlendTable(o, spec)
}

// KindDistance is the L1 distance between two normalized transaction-kind
// mixes, in [0, 2]; the drift detector triggers when the live mix moves past
// MachineConfig.DriftThreshold from the training mix.
func KindDistance(a, b map[string]float64) float64 { return machine.KindDistance(a, b) }

// Evolutionary pipeline-search surface.
type (
	// SearchConfig parameterizes the evolutionary layout-pipeline search
	// (population, generations, seed, objective, weighted workloads).
	SearchConfig = search.Config
	// SearchResult carries the evolved winner, the hand-built baselines, the
	// per-generation trajectory, memo counters and the rendered transfer
	// table.
	SearchResult = search.Result
	// SearchObjective selects the minimized fitness metric (instr, miss,
	// p50, p99).
	SearchObjective = search.Objective
	// SearchWorkload is one weighted evaluation workload; the first entry of
	// SearchConfig.Workloads is the training workload.
	SearchWorkload = search.WorkloadWeight
	// PipelineGenome is a validated, parameterized pipeline spec — one point
	// of the search space.
	PipelineGenome = search.Genome
	// MemoStats reports a session's memoization counters (measure, layout,
	// train), via Session.MemoStats or SearchResult.Memo.
	MemoStats = expt.MemoStats
)

// SearchLayout evolves layout-pass pipelines against the measured simulator:
// genomes are pipeline specs validated against the pass registry, fitness is
// the weighted multi-workload objective normalized by the base layout, and
// every generation evaluates as one parallel memoized measurement wave. The
// hand-built combos seed the population, so the winner never scores worse
// than the best of them on the search objective.
func SearchLayout(o SessionOptions, cfg SearchConfig) (*SearchResult, error) {
	return search.Run(o, cfg)
}

// ParsePipelineGenome parses and validates a pipeline spec as a search
// genome (structural legality included, not just pass-name resolution).
func ParsePipelineGenome(spec string) (PipelineGenome, error) { return search.ParseGenome(spec) }

// ParseSearchObjective resolves an objective name ("instr", "miss", "p50",
// "p99"; empty selects instr).
func ParseSearchObjective(s string) (SearchObjective, error) { return search.ParseObjective(s) }

// Record-layout surface: profile-guided hot/cold field grouping of records
// on slotted pages — the data-cache analogue of the code-layout passes.
type (
	// FieldSchema declares one record field: its name, byte width, and
	// which transaction kinds read or write it (the static hot hint used
	// when no measured profile is available).
	FieldSchema = workload.FieldSchema
	// TableSchema declares one table's record fields in storage order.
	TableSchema = workload.TableSchema
	// FieldProfile is a measured field-access profile (table → field →
	// read/write tallies), harvested from a training run's engines.
	FieldProfile = reclayout.Profile
	// DataLayoutSpec configures the interleaved-vs-grouped record-layout
	// comparison table.
	DataLayoutSpec = expt.DataLayoutSpec
)

// GroupedRecordLayouts computes the grouped physical layout of every table
// the workload declares a schema for: hot fields (by measured profile, or
// the schema's static hints when prof is nil) packed contiguously at the
// record head. The result plugs into MachineConfig.RecordLayouts; set
// SessionOptions.RecordLayout = "grouped" to have sessions do this
// automatically from their training profile.
func GroupedRecordLayouts(wl Workload, prof FieldProfile) (map[string][]FieldDef, error) {
	return reclayout.GroupedDefs(wl, prof)
}

// FieldDef places one named field at a byte offset within a table's records.
type FieldDef = db.FieldDef

// DataLayoutTable measures interleaved vs grouped record layouts per
// key-distribution regime (uniform plus the workload's skew knob) with code
// layout held at base, so every delta is attributable to data layout alone.
func DataLayoutTable(o SessionOptions, spec DataLayoutSpec) (*Table, error) {
	return expt.DataLayoutTable(o, spec)
}
