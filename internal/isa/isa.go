// Package isa defines the minimal Alpha-like instruction set architecture
// constants shared by the program representation, the layout optimizer and
// the simulators.
//
// The reproduction does not interpret instruction semantics: the experiments
// in the paper observe only instruction *fetch addresses*. What matters is
// that instructions are fixed-width words, that control transfers come in the
// kinds Alpha has (conditional branch, unconditional branch, call, return,
// indirect jump), and that direct branches have a bounded displacement. Those
// are the properties this package pins down.
package isa

// WordBytes is the size of one instruction in bytes (Alpha instructions are
// fixed 32-bit words).
const WordBytes = 4

// PageBytes is the virtual-memory page size used for iTLB simulation
// (Alpha 21164/21264 use 8 KB pages).
const PageBytes = 8192

// BranchDisplacementWords is the maximum forward/backward reach of a direct
// branch in instruction words. Alpha BR/BSR encode a signed 21-bit word
// displacement.
const BranchDisplacementWords = 1 << 20

// BranchDisplacementBytes is the direct-branch reach in bytes (±4 MB).
const BranchDisplacementBytes = BranchDisplacementWords * WordBytes

// TermKind classifies how a basic block ends. The terminator kind determines
// how many instruction words the block needs under a given layout (for
// example, an unconditional branch to the physically next block is elided)
// and where control may go next.
type TermKind uint8

const (
	// TermFallThrough ends a block that simply continues to its single
	// successor. If the successor is not placed immediately after the block,
	// the layout must materialize an unconditional branch word.
	TermFallThrough TermKind = iota

	// TermCond ends a block with a conditional branch: two successors, the
	// taken target and the fall-through. Layout may flip the branch polarity
	// so that the hotter successor falls through; if neither successor is
	// adjacent a branch pair (conditional + unconditional) is required.
	TermCond

	// TermBranch ends a block with a direct unconditional branch. Elided when
	// the target is placed immediately after.
	TermBranch

	// TermCall ends a block with a subroutine call. Control transfers to the
	// callee's entry; on return execution continues at the block's
	// continuation successor, which the layout keeps adjacent when possible
	// (the return address is the word after the call).
	TermCall

	// TermRet ends a block with a subroutine return.
	TermRet

	// TermIndirect ends a block with an indirect jump (switch tables,
	// function-pointer dispatch). Successors are the recorded possible
	// targets.
	TermIndirect

	// TermHalt ends a block after which the modeled thread stops (program
	// exit paths). It occupies one word like a return.
	TermHalt
)

// String returns the assembler-style mnemonic for the terminator kind.
func (k TermKind) String() string {
	switch k {
	case TermFallThrough:
		return "fall"
	case TermCond:
		return "bcond"
	case TermBranch:
		return "br"
	case TermCall:
		return "bsr"
	case TermRet:
		return "ret"
	case TermIndirect:
		return "jmp"
	case TermHalt:
		return "halt"
	default:
		return "?"
	}
}

// IsUncond reports whether the terminator is an unconditional transfer of
// control that never falls through (the fine-grain procedure splitting rule:
// "a code segment is ended by an unconditional branch or return").
func (k TermKind) IsUncond() bool {
	switch k {
	case TermBranch, TermRet, TermIndirect, TermHalt:
		return true
	}
	return false
}

// Address spaces. The application text is shared by all server processes
// (they run the same binary, as Oracle's dedicated servers do), so its
// instruction addresses are process-independent. Kernel text lives in a
// disjoint high region, as on Alpha.
const (
	// AppTextBase is the base virtual address of application text.
	AppTextBase uint64 = 0x0001_2000_0000

	// KernelTextBase is the base virtual address of kernel text.
	KernelTextBase uint64 = 0xFFFF_FC00_0000
)

// AppTextLimitBytes bounds the application text segment: every layout,
// including the cloned code a fusion pass grows, must fit in
// [AppTextBase, AppTextBase+AppTextLimitBytes) for its addresses to stay
// inside the application's half of the address map.
const AppTextLimitBytes int64 = 64 << 20
