// Package kernel models the operating-system code image: syscall handlers
// for the engine's kernel crossings (log writes, data reads, lock sleeps),
// the scheduler/context-switch path, and the timer interrupt. Section 5 of
// the paper studies how this stream interferes with the application's in
// the instruction cache.
//
// Kernel services carry no engine instrumentation — they are auto functions
// walked to completion by a codegen.Emitter when the machine crosses into
// the kernel.
package kernel

import (
	"fmt"
	"math/rand"

	"codelayout/internal/codegen"
	"codelayout/internal/isa"
)

// Service names the machine can invoke, mapped from probe.Syscall arguments.
const (
	SvcLogWrite  = "svc_log_write"
	SvcLogWait   = "svc_log_wait"
	SvcPread     = "svc_pread"
	SvcLockSleep = "svc_lock_sleep"
	SvcTimer     = "svc_timer"
	SvcSwitch    = "svc_switch"
)

// ServiceFor maps a probe.Syscall name to the kernel service entry point.
func ServiceFor(syscall string) (string, error) {
	switch syscall {
	case "log_write":
		return SvcLogWrite, nil
	case "log_wait", "log_window":
		// The group-commit window is a timed sleep through the same
		// put-me-to-sleep path followers take.
		return SvcLogWait, nil
	case "pread":
		return SvcPread, nil
	case "lock_sleep":
		return SvcLockSleep, nil
	default:
		return "", fmt.Errorf("kernel: unknown syscall %q", syscall)
	}
}

// Config shapes the kernel image.
type Config struct {
	Seed int64
	// ColdWords is the unexercised kernel code (default ~6 MB image tail).
	ColdWords int
}

// DefaultConfig returns the standard kernel shape.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, ColdWords: 1_400_000}
}

// Build assembles the kernel image.
func Build(cfg Config) (*codegen.Image, error) {
	r := rand.New(rand.NewSource(cfg.Seed))

	// Library layers: low-level utilities, VM, filesystem, driver,
	// scheduler.
	fams := make(map[string][]string)
	var layers []codegen.FnSpec
	addLayer := func(prefix string, n, mean, calls, width int, pools ...string) {
		var pool []string
		for _, p := range pools {
			pool = append(pool, fams[p]...)
		}
		specs, names := codegen.GenLayer(r, codegen.LibConfig{
			Prefix: prefix, N: n, MeanWords: mean, CallsPerFn: calls, PickWidth: width,
		}, pool)
		layers = append(layers, specs...)
		fams[prefix] = names
	}
	addLayer("klib", 70, 60, 0, 0)
	addLayer("kvm", 40, 55, 1, 4, "klib")
	addLayer("kfs", 60, 70, 2, 6, "klib", "kvm")
	addLayer("kdrv", 40, 80, 1, 4, "klib")
	addLayer("ksch", 30, 50, 1, 4, "klib")
	addLayer("ktrap", 25, 40, 0, 0)

	pick := func(family string, width int) codegen.Frag {
		names := fams[family]
		if width > len(names) {
			width = len(names)
		}
		start := r.Intn(len(names) - width + 1)
		fns := make([]string, width)
		weights := make([]uint32, width)
		for i := 0; i < width; i++ {
			fns[i] = names[start+i]
			weights[i] = uint32(1 + r.Intn(900))
		}
		return codegen.AutoPick{Fns: fns, Weights: weights}
	}

	services := []codegen.FnSpec{
		{Name: SvcLogWrite, Auto: true, Body: []codegen.Frag{
			codegen.Seq(18), pick("ktrap", 3),
			pick("kfs", 5),
			codegen.AutoLoop{Prob: 0.82, Head: 2, Body: []codegen.Frag{codegen.Seq(9)}},
			pick("kdrv", 5),
			codegen.Seq(12), pick("ksch", 3),
		}},
		{Name: SvcLogWait, Auto: true, Body: []codegen.Frag{
			codegen.Seq(14), pick("ktrap", 3),
			pick("ksch", 4),
			codegen.Seq(8),
		}},
		{Name: SvcPread, Auto: true, Body: []codegen.Frag{
			codegen.Seq(18), pick("ktrap", 3),
			pick("kfs", 5),
			codegen.AutoLoop{Prob: 0.85, Head: 2, Body: []codegen.Frag{codegen.Seq(10)}},
			pick("kdrv", 4), pick("kvm", 4),
			codegen.Seq(10),
		}},
		{Name: SvcLockSleep, Auto: true, Body: []codegen.Frag{
			codegen.Seq(12), pick("ktrap", 3),
			pick("ksch", 4),
			codegen.Seq(6),
		}},
		{Name: SvcTimer, Auto: true, Body: []codegen.Frag{
			codegen.Seq(10), pick("ktrap", 3),
			codegen.AutoIf{Prob: 0.3, Then: []codegen.Frag{pick("ksch", 3)}},
			codegen.Seq(6),
		}},
		{Name: SvcSwitch, Auto: true, Body: []codegen.Frag{
			codegen.Seq(12), pick("ksch", 5),
			pick("kvm", 3),
			codegen.Seq(14),
		}},
	}

	var cold []codegen.FnSpec
	if cfg.ColdWords > 0 {
		cold = codegen.GenCold(r, "kcold", cfg.ColdWords, 1000)
	}

	// Module-clustered link order, like the application image: a few
	// related hot functions, then their module's cold complement.
	hot := append(append([]codegen.FnSpec{}, services...), layers...)
	var modules [][]codegen.FnSpec
	for len(hot) > 0 {
		n := 3 + r.Intn(6)
		if n > len(hot) {
			n = len(hot)
		}
		modules = append(modules, hot[:n])
		hot = hot[n:]
	}
	r.Shuffle(len(modules), func(i, j int) { modules[i], modules[j] = modules[j], modules[i] })
	var fns []codegen.FnSpec
	ci := 0
	for i, mod := range modules {
		fns = append(fns, mod...)
		want := (i + 1) * len(cold) / len(modules)
		for ci < want {
			fns = append(fns, cold[ci])
			ci++
		}
	}
	fns = append(fns, cold[ci:]...)

	return codegen.Build(codegen.ImageSpec{
		Name:     "tru64-like-kernel",
		TextBase: isa.KernelTextBase,
		Fns:      fns,
	})
}
