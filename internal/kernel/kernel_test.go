package kernel_test

import (
	"testing"

	"codelayout/internal/codegen"
	"codelayout/internal/kernel"
	"codelayout/internal/program"
)

func TestBuildAndRunAllServices(t *testing.T) {
	img, err := kernel.Build(kernel.Config{Seed: 9, ColdWords: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	em := codegen.NewEmitter(img, l, 1)
	em.Sink = func(uint64, int32) {}
	services := []string{
		kernel.SvcLogWrite, kernel.SvcLogWait, kernel.SvcPread,
		kernel.SvcLockSleep, kernel.SvcTimer, kernel.SvcSwitch,
	}
	for _, svc := range services {
		before := em.Instructions
		for i := 0; i < 10; i++ {
			em.RunAuto(svc)
		}
		if em.Instructions == before {
			t.Fatalf("service %s emitted nothing", svc)
		}
		if !em.Idle() {
			t.Fatalf("service %s left the walker busy", svc)
		}
	}
}

func TestServiceFor(t *testing.T) {
	for syscall, want := range map[string]string{
		"log_write":  kernel.SvcLogWrite,
		"log_wait":   kernel.SvcLogWait,
		"pread":      kernel.SvcPread,
		"lock_sleep": kernel.SvcLockSleep,
	} {
		got, err := kernel.ServiceFor(syscall)
		if err != nil || got != want {
			t.Fatalf("ServiceFor(%s) = %s, %v", syscall, got, err)
		}
	}
	if _, err := kernel.ServiceFor("open"); err == nil {
		t.Fatal("expected error for unmodeled syscall")
	}
}

func TestKernelFootprintModest(t *testing.T) {
	img, err := kernel.Build(kernel.DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	st := img.Prog.ComputeStats()
	hotKB := float64(st.HotWords*4) / 1024
	// The kernel's exercised code should be much smaller than the
	// application's (the paper's kernel footprint is modest).
	if hotKB < 20 || hotKB > 200 {
		t.Fatalf("kernel hot code = %.1f KB", hotKB)
	}
}
