// Package progtest generates random programs and profiles for property
// tests. Several packages (program, core, codegen, machine) use it to check
// invariants over arbitrary CFGs rather than hand-picked examples.
package progtest

import (
	"math/rand"

	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// RandProgram builds a random valid program with the given number of
// procedures. Control flow is arbitrary but always structurally valid:
// conditionals have distinct arms, calls have intra-procedure continuations,
// and every procedure ends with at least one return.
func RandProgram(r *rand.Rand, procs int) *program.Program {
	if procs < 1 {
		procs = 1
	}
	p := program.New("rand", isa.AppTextBase)
	owned := make([][]*program.Block, procs)
	for pi := 0; pi < procs; pi++ {
		pr := p.AddProc(randName(r, pi))
		n := 1 + r.Intn(8)
		blocks := make([]*program.Block, n)
		for i := 0; i < n; i++ {
			blocks[i] = p.AddBlock(pr, r.Intn(11))
		}
		owned[pi] = blocks
	}
	for pi, blocks := range owned {
		n := len(blocks)
		anyRet := false
		for i, b := range blocks {
			pick := func() program.BlockID { return blocks[r.Intn(n)].ID }
			if i == n-1 && !anyRet {
				b.Kind = isa.TermRet
				anyRet = true
				continue
			}
			switch r.Intn(10) {
			case 0, 1:
				b.Kind = isa.TermFallThrough
				b.Fall = pick()
			case 2, 3, 4:
				if n < 2 {
					b.Kind = isa.TermRet
					anyRet = true
					continue
				}
				b.Kind = isa.TermCond
				b.Taken = pick()
				for {
					b.Fall = pick()
					if b.Fall != b.Taken {
						break
					}
				}
			case 5:
				b.Kind = isa.TermBranch
				b.Taken = pick()
			case 6, 7:
				b.Kind = isa.TermCall
				b.Callee = program.ProcID(r.Intn(len(owned)))
				b.Fall = pick()
			case 8:
				if n < 2 {
					b.Kind = isa.TermRet
					anyRet = true
					continue
				}
				b.Kind = isa.TermIndirect
				k := 2 + r.Intn(2)
				for j := 0; j < k; j++ {
					b.Targets = append(b.Targets, pick())
				}
			default:
				b.Kind = isa.TermRet
				anyRet = true
			}
		}
		_ = pi
	}
	if err := p.Validate(); err != nil {
		panic("progtest: generated invalid program: " + err.Error())
	}
	return p
}

func randName(r *rand.Rand, i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 4)
	for j := range b {
		b[j] = letters[r.Intn(len(letters))]
	}
	return string(b) + "_" + string(rune('0'+i%10))
}

// Walk performs one random logical execution from the entry of proc 0,
// visiting at most steps blocks, and reports each (prev, block) transition.
// Call continuations are reported with the call block as predecessor,
// matching how the Pixie collector records edges. The walk is the reference
// semantics the emitter must agree with.
func Walk(r *rand.Rand, p *program.Program, steps int, visit func(prev, cur program.BlockID)) {
	type frame struct {
		cont program.BlockID
		call program.BlockID
	}
	var stack []frame
	cur := p.Entry(0)
	var prev program.BlockID = program.NoBlock
	for i := 0; i < steps && cur != program.NoBlock; i++ {
		visit(prev, cur)
		b := p.Block(cur)
		switch b.Kind {
		case isa.TermFallThrough:
			prev, cur = cur, b.Fall
		case isa.TermCond:
			if r.Intn(2) == 0 {
				prev, cur = cur, b.Taken
			} else {
				prev, cur = cur, b.Fall
			}
		case isa.TermBranch:
			prev, cur = cur, b.Taken
		case isa.TermCall:
			if len(stack) >= 64 {
				// Bound recursion: skip the call, treat as fall-through.
				prev, cur = cur, b.Fall
				continue
			}
			stack = append(stack, frame{cont: b.Fall, call: cur})
			prev, cur = cur, p.Entry(b.Callee)
		case isa.TermRet:
			if len(stack) == 0 {
				return
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			prev, cur = f.call, f.cont
		case isa.TermIndirect:
			prev, cur = cur, b.Targets[r.Intn(len(b.Targets))]
		case isa.TermHalt:
			return
		}
	}
}

// RandProfile collects an exact profile over the given number of random
// walks.
func RandProfile(r *rand.Rand, p *program.Program, walks, steps int) *profile.Profile {
	pf := profile.New("randwalk", p)
	for i := 0; i < walks; i++ {
		Walk(r, p, steps, func(prev, cur program.BlockID) {
			pf.AddBlock(cur, 1)
			if prev != program.NoBlock {
				pf.AddEdge(prev, cur, 1)
			}
		})
	}
	return pf
}
