package appmodel_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/ordere"
	"codelayout/internal/program"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
)

func TestBuildDefaultShape(t *testing.T) {
	img, err := appmodel.Build(appmodel.Config{Seed: 1, LibScale: 1.0, ColdWords: 6_400_000, Workload: tpcb.New()})
	if err != nil {
		t.Fatal(err)
	}
	st := img.Prog.ComputeStats()
	if st.ColdProcs == 0 || st.ColdProcs >= st.Procs {
		t.Fatalf("procs=%d cold=%d", st.Procs, st.ColdProcs)
	}
	// Static image should be in the tens of MB; hot code in the 100s of KB.
	mb := float64(st.BodyWords*4) / (1 << 20)
	if mb < 15 || mb > 40 {
		t.Fatalf("static size = %.1f MB", mb)
	}
	hotKB := float64(st.HotWords*4) / 1024
	if hotKB < 120 || hotKB > 500 {
		t.Fatalf("hot code = %.1f KB", hotKB)
	}
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRequiresWorkload(t *testing.T) {
	if _, err := appmodel.Build(appmodel.Config{Seed: 1, LibScale: 0.2, ColdWords: 50_000}); err == nil {
		t.Fatal("expected error for missing workload")
	}
}

// TestBuildPerWorkloadRoots checks that the image carries exactly the
// configured workload's transaction roots.
func TestBuildPerWorkloadRoots(t *testing.T) {
	tb, err := appmodel.Build(appmodel.Config{Seed: 1, LibScale: 0.2, ColdWords: 50_000, Workload: tpcb.New()})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Prog.FindProc("tpcb_txn") == nil {
		t.Fatal("tpcb image missing tpcb_txn")
	}
	if tb.Prog.FindProc("neworder_txn") != nil {
		t.Fatal("tpcb image contains order-entry models")
	}
	oe, err := appmodel.Build(appmodel.Config{Seed: 1, LibScale: 0.2, ColdWords: 50_000, Workload: ordere.New()})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"neworder_txn", "payment_txn", "bt_range", "no_total"} {
		if oe.Prog.FindProc(fn) == nil {
			t.Fatalf("ordere image missing %s", fn)
		}
	}
	if oe.Prog.FindProc("tpcb_txn") != nil {
		t.Fatal("ordere image contains TPC-B models")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := appmodel.Build(appmodel.Config{Seed: 5, LibScale: 0.2, ColdWords: 100_000, Workload: tpcb.New()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := appmodel.Build(appmodel.Config{Seed: 5, LibScale: 0.2, ColdWords: 100_000, Workload: tpcb.New()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog.NumBlocks() != b.Prog.NumBlocks() || len(a.Prog.Procs) != len(b.Prog.Procs) {
		t.Fatal("same seed produced different images")
	}
	for i, pr := range a.Prog.Procs {
		if b.Prog.Procs[i].Name != pr.Name {
			t.Fatalf("proc %d: %s vs %s", i, pr.Name, b.Prog.Procs[i].Name)
		}
	}
}

// conformanceWorkloads builds a tiny instance of each workload for emitter
// conformance runs.
func conformanceWorkloads() map[string]workload.Workload {
	return map[string]workload.Workload{
		"tpcb":   tpcb.NewScaled(tpcb.Scale{Branches: 3, TellersPerBranch: 3, AccountsPerBranch: 150}),
		"ordere": ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 2, CustomersPerDistrict: 50, Items: 100}),
	}
}

// TestEngineModelConformance drives real transactions through an emitter
// bound to the image, for every workload; any probe/model mismatch panics
// inside the emitter.
func TestEngineModelConformance(t *testing.T) {
	for name, wl := range conformanceWorkloads() {
		t.Run(name, func(t *testing.T) {
			img, err := appmodel.Build(appmodel.Config{Seed: 2, LibScale: 0.2, ColdWords: 50_000, Workload: wl})
			if err != nil {
				t.Fatal(err)
			}
			l, err := program.BaselineLayout(img.Prog)
			if err != nil {
				t.Fatal(err)
			}
			em := codegen.NewEmitter(img, l, 3)
			em.Sink = func(uint64, int32) {}

			eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
			inst, err := wl.Load(eng)
			if err != nil {
				t.Fatal(err)
			}
			s := eng.NewSession(1, em)
			r := rand.New(rand.NewSource(4))
			for i := 0; i < 100; i++ {
				inst.RunTxn(s, inst.GenInput(r))
				if !em.Idle() {
					t.Fatalf("txn %d: emitter not idle after transaction", i)
				}
			}
			if em.Instructions == 0 {
				t.Fatal("no instructions emitted")
			}
			// Instrumented per-transaction instruction cost should be
			// substantial (thousands of instructions), like a database
			// transaction.
			per := float64(em.Instructions) / 100
			if per < 2000 {
				t.Fatalf("only %.0f instructions per transaction", per)
			}
			if err := inst.Check(eng.NewSession(2, nil)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAbortPathConformance exercises the txn_abort model, which normal
// transactions never reach.
func TestAbortPathConformance(t *testing.T) {
	img, err := appmodel.Build(appmodel.Config{Seed: 2, LibScale: 0.2, ColdWords: 50_000, Workload: tpcb.New()})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := program.BaselineLayout(img.Prog)
	em := codegen.NewEmitter(img, l, 3)
	em.Sink = func(uint64, int32) {}
	eng := db.NewEngine(db.Config{BufferPoolPages: 1024})
	tb := eng.CreateTable("t")
	s0 := eng.NewSession(0, nil)
	rid := tb.Insert(s0, make([]byte, 64))

	s := eng.NewSession(1, em)
	s.Begin()
	tb.Update(s, rid, make([]byte, 64))
	s.Abort()
	if !em.Idle() {
		t.Fatal("emitter not idle after abort")
	}
}
