// Package appmodel assembles the modeled application binary: one code model
// per instrumented engine routine (the models mirror, site for site, the
// probe calls in internal/db), the configured workload's transaction models
// (contributed through the workload seam), a deep library of auto helper
// functions that gives the image its OLTP-sized flat footprint, and a
// cold-code complement that brings the static image to database-binary
// proportions (the paper's Oracle binary is 27 MB with a ~260 KB hot
// footprint).
//
// The conformance between these models and the engine's probe sequences is
// enforced at runtime — any drift panics inside codegen.Emitter — and
// covered by tests that execute full transactions against an emitter.
package appmodel

import (
	"fmt"
	"math/rand"

	"codelayout/internal/codegen"
	"codelayout/internal/isa"
	"codelayout/internal/predict"
	"codelayout/internal/shard"
	"codelayout/internal/workload"
)

// Config shapes the generated image.
type Config struct {
	// Seed drives all generation randomness.
	Seed int64
	// LibScale multiplies library function counts (1.0 = default sizing,
	// tuned so the hot footprint lands near the paper's ~260 KB).
	LibScale float64
	// ColdWords is the cold-code complement in instruction words.
	// The default models a 27 MB binary.
	ColdWords int
	// Workload contributes the transaction models rooted in the engine
	// models; required.
	Workload workload.Workload
	// ExtraWorkloads contributes additional workloads' transaction models
	// after Workload's, producing a union binary: one program covers every
	// listed mix, so a profile collected while running any of them maps
	// onto the same blocks — the portability the train/eval-mismatch
	// experiments need. Empty leaves the image bit-identical to the
	// single-workload build. Workloads duplicating Workload's name (or an
	// earlier extra's) are skipped.
	ExtraWorkloads []workload.Workload
	// FastPath adds the predictive fast-path decision models
	// (predict_check/predict_train) to the image, so machines running with
	// Config.PredictFastPath have modeled code to execute — and the layout
	// passes optimize the prediction path along with everything else. Off
	// leaves the image bit-identical to the pre-fast-path build.
	FastPath bool
}

// DefaultConfig returns the paper-calibrated image shape for a workload.
func DefaultConfig(seed int64, w workload.Workload) Config {
	return Config{Seed: seed, LibScale: 1.0, ColdWords: 6_400_000, Workload: w}
}

// families describes the library layers, bottom (leaf) first.
type familySpec struct {
	name  string
	n     int
	mean  int
	calls int
	width int
	pools []string // families the call sites dispatch into
}

func libraryPlan(scale float64) []familySpec {
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []familySpec{
		{name: "ut", n: s(150), mean: 80},
		{name: "lat", n: s(40), mean: 25},
		{name: "cmp", n: s(40), mean: 30},
		{name: "rt", n: s(150), mean: 70, calls: 2, width: 6, pools: []string{"ut"}},
		{name: "io", n: s(40), mean: 60, calls: 1, width: 4, pools: []string{"ut"}},
		{name: "row", n: s(80), mean: 55, calls: 1, width: 6, pools: []string{"ut", "cmp"}},
		{name: "sv", n: s(120), mean: 65, calls: 2, width: 6, pools: []string{"rt"}},
		{name: "sql", n: s(100), mean: 60, calls: 2, width: 8, pools: []string{"sv", "rt"}},
	}
}

// Build assembles the application image for the configured workload.
func Build(cfg Config) (*codegen.Image, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("appmodel: Config.Workload is required")
	}
	if cfg.LibScale == 0 {
		cfg.LibScale = 1.0
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// 1. Library layers.
	fams := make(map[string][]string)
	var libSpecs []codegen.FnSpec
	for _, f := range libraryPlan(cfg.LibScale) {
		var pool []string
		for _, p := range f.pools {
			pool = append(pool, fams[p]...)
		}
		specs, names := codegen.GenLayer(r, codegen.LibConfig{
			Prefix:     f.name,
			N:          f.n,
			MeanWords:  f.mean,
			CallsPerFn: f.calls,
			PickWidth:  f.width,
		}, pool)
		libSpecs = append(libSpecs, specs...)
		fams[f.name] = names
	}

	// pick builds an AutoPick call site into a family.
	pick := func(family string, width int) codegen.Frag {
		names := fams[family]
		if len(names) == 0 {
			panic(fmt.Sprintf("appmodel: empty family %q", family))
		}
		if width > len(names) {
			width = len(names)
		}
		start := r.Intn(len(names) - width + 1)
		fns := make([]string, width)
		weights := make([]uint32, width)
		for i := 0; i < width; i++ {
			fns[i] = names[start+i]
			weights[i] = uint32(1 + r.Intn(900))
		}
		return codegen.AutoPick{Fns: fns, Weights: weights}
	}

	errPath := func() codegen.Frag { return codegen.ErrPath(r) }

	// 2. Engine routine models. Each mirrors the probe sequence of the
	// matching internal/db routine.
	engine := []codegen.FnSpec{
		{Name: "buf_get", Body: []codegen.Frag{
			codegen.Seq(6), errPath(), pick("lat", 4),
			codegen.If{Site: "buf_hit",
				Then: []codegen.Frag{codegen.Seq(5), pick("ut", 4)},
				Else: []codegen.Frag{codegen.Seq(9), pick("io", 4), codegen.Seq(14)}},
			codegen.Seq(4),
		}},
		{Name: "lock_acquire", Body: []codegen.Frag{
			codegen.Seq(7), pick("lat", 4),
			codegen.Loop{Site: "lock_conflict", Head: 3,
				Body: []codegen.Frag{codegen.Seq(9), pick("sv", 4)}},
			codegen.Seq(3),
		}},
		{Name: "lock_release", Body: []codegen.Frag{
			codegen.Seq(5),
			codegen.Loop{Site: "lockrel_iter", Head: 2,
				Body: []codegen.Frag{codegen.Seq(6), pick("lat", 4)}},
			codegen.Seq(2),
		}},
		{Name: "log_append", Body: []codegen.Frag{
			codegen.Seq(6), errPath(), pick("rt", 4),
			codegen.If{Site: "logbuf_high", Then: []codegen.Frag{codegen.Seq(7)}},
			codegen.Seq(4),
		}},
		{Name: "log_flush", Body: []codegen.Frag{
			codegen.Seq(5),
			codegen.Loop{Site: "log_retry", Head: 3, Body: []codegen.Frag{
				codegen.If{Site: "log_leader",
					Then: []codegen.Frag{codegen.Seq(10), pick("io", 4)},
					Else: []codegen.Frag{codegen.Seq(6), pick("sv", 4)}},
			}},
			codegen.Seq(3),
		}},
		{Name: "txn_begin", Body: []codegen.Frag{
			codegen.Seq(8), pick("rt", 4), codegen.Seq(4),
		}},
		{Name: "txn_commit", Body: []codegen.Frag{
			codegen.Seq(6),
			codegen.Call{Fn: "log_append"},
			codegen.Call{Fn: "log_flush"},
			codegen.Call{Fn: "lock_release"},
			codegen.Seq(5),
		}},
		{Name: "txn_prepare", Body: []codegen.Frag{
			codegen.Seq(6), pick("rt", 4),
			codegen.Call{Fn: "log_append"},
			codegen.Call{Fn: "log_flush"},
			codegen.Seq(3),
		}},
		{Name: "txn_resolve", Body: []codegen.Frag{
			codegen.Seq(5), pick("rt", 4),
			codegen.Call{Fn: "log_append"},
			codegen.Call{Fn: "lock_release"},
			codegen.Seq(3),
		}},
		{Name: "txn_abort", Body: []codegen.Frag{
			codegen.Seq(6),
			codegen.Loop{Site: "undo_iter", Head: 2,
				Body: []codegen.Frag{codegen.Seq(8), pick("rt", 4)}},
			codegen.Call{Fn: "log_append"},
			codegen.Call{Fn: "lock_release"},
			codegen.Seq(3),
		}},
		{Name: "heap_insert", Body: []codegen.Frag{
			codegen.Seq(6),
			codegen.If{Site: "heap_newpage", Then: []codegen.Frag{codegen.Seq(9), pick("sv", 4)}},
			codegen.Call{Fn: "buf_get"},
			codegen.Seq(5),
			codegen.Call{Fn: "log_append"},
			codegen.Seq(6), pick("row", 5),
		}},
		{Name: "heap_fetch", Body: []codegen.Frag{
			codegen.Seq(5),
			codegen.Call{Fn: "buf_get"},
			codegen.Seq(4), pick("row", 5),
		}},
		{Name: "heap_update", Body: []codegen.Frag{
			codegen.Seq(5), errPath(),
			codegen.Call{Fn: "buf_get"},
			codegen.Seq(6),
			codegen.Call{Fn: "log_append"},
			codegen.Seq(7), pick("row", 5),
		}},
		{Name: "bt_search", Body: []codegen.Frag{
			codegen.Seq(6), errPath(), pick("cmp", 4),
			codegen.Loop{Site: "bt_descend", Head: 3, Body: []codegen.Frag{
				codegen.Call{Fn: "buf_get"},
				codegen.Seq(4),
				codegen.Loop{Site: "bt_scan", Head: 2, Body: []codegen.Frag{codegen.Seq(5)}},
				codegen.Seq(3),
			}},
			codegen.Call{Fn: "buf_get"},
			codegen.Seq(3),
			codegen.Loop{Site: "bt_leaf", Head: 2, Body: []codegen.Frag{codegen.Seq(5)}},
			codegen.If{Site: "bt_found",
				Then: []codegen.Frag{codegen.Seq(5)},
				Else: []codegen.Frag{codegen.Seq(3)}},
			codegen.Seq(2),
		}},
		{Name: "bt_insert", Body: []codegen.Frag{
			codegen.Seq(8), pick("cmp", 4),
			codegen.If{Site: "bt_grow", Then: []codegen.Frag{codegen.Seq(12)}},
			codegen.Seq(3),
		}},
		{Name: "bt_range", Body: []codegen.Frag{
			codegen.Seq(6), errPath(), pick("cmp", 4),
			codegen.Loop{Site: "btr_descend", Head: 3, Body: []codegen.Frag{
				codegen.Call{Fn: "buf_get"},
				codegen.Seq(4),
				codegen.Loop{Site: "bt_scan", Head: 2, Body: []codegen.Frag{codegen.Seq(5)}},
				codegen.Seq(3),
			}},
			codegen.Call{Fn: "buf_get"},
			codegen.Seq(3),
			codegen.Loop{Site: "bt_leaf", Head: 2, Body: []codegen.Frag{codegen.Seq(5)}},
			codegen.Loop{Site: "btr_iter", Head: 3, Body: []codegen.Frag{
				codegen.If{Site: "btr_hop",
					Then: []codegen.Frag{codegen.Call{Fn: "buf_get"}, codegen.Seq(4)},
					Else: []codegen.Frag{codegen.Seq(6)}},
			}},
			codegen.Seq(4),
		}},
	}

	// 3. Workload transaction models, rooted in the engine models, plus the
	// shard router/coordinator models (exercised only on sharded machines,
	// but always present so one image serves every shard count).
	env := &workload.ModelEnv{Pick: pick, ErrPath: errPath}
	wlSpecs := cfg.Workload.Models(env)
	imgName := "oracle-like-oltp-" + cfg.Workload.Name()
	seen := map[string]bool{cfg.Workload.Name(): true}
	seenFn := make(map[string]bool, len(wlSpecs))
	for _, fs := range wlSpecs {
		seenFn[fs.Name] = true
	}
	for _, w := range cfg.ExtraWorkloads {
		if seen[w.Name()] {
			continue
		}
		seen[w.Name()] = true
		// Variants of one implementation share model functions; the first
		// definition serves every workload that probes it by name.
		for _, fs := range w.Models(env) {
			if seenFn[fs.Name] {
				continue
			}
			seenFn[fs.Name] = true
			wlSpecs = append(wlSpecs, fs)
		}
		imgName += "+" + w.Name()
	}
	wlSpecs = append(wlSpecs, shard.Models(env)...)
	if cfg.FastPath {
		// Appended after everything the non-fast-path image contains, with
		// no library picks, so the shared generation RNG stream — and hence
		// the rest of the image — is untouched: FastPath=false stays
		// bit-identical to the historical build.
		wlSpecs = append(wlSpecs, predict.Models(env)...)
		imgName += "+fastpath"
	}

	// 4. Cold complement.
	var cold []codegen.FnSpec
	if cfg.ColdWords > 0 {
		cold = codegen.GenCold(r, "cold", cfg.ColdWords, 1200)
	}

	// 5. Link order. Real binaries are linked object file by object file: a
	// module's handful of exercised functions sit together, followed by
	// that module's unexercised code. The hot footprint therefore spreads
	// across the whole image (bad iTLB/page locality, as the paper's
	// baseline shows) while related hot functions still share lines and
	// pages (so whole-procedure reordering alone wins little, also as the
	// paper shows).
	hot := append(append(append([]codegen.FnSpec{}, engine...), wlSpecs...), libSpecs...)
	var modules [][]codegen.FnSpec
	for len(hot) > 0 {
		n := 3 + r.Intn(6)
		if n > len(hot) {
			n = len(hot)
		}
		modules = append(modules, hot[:n])
		hot = hot[n:]
	}
	r.Shuffle(len(modules), func(i, j int) { modules[i], modules[j] = modules[j], modules[i] })
	var fns []codegen.FnSpec
	ci := 0
	for i, mod := range modules {
		fns = append(fns, mod...)
		// The module's cold complement follows its hot code.
		want := (i + 1) * len(cold) / len(modules)
		for ci < want {
			fns = append(fns, cold[ci])
			ci++
		}
	}
	fns = append(fns, cold[ci:]...)

	return codegen.Build(codegen.ImageSpec{
		Name:     imgName,
		TextBase: isa.AppTextBase,
		Fns:      fns,
	})
}
