package appmodel

import (
	"fmt"

	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/program"
	"codelayout/internal/workload"
)

// FusionRoots resolves the transaction-kind roots the given workloads
// declare (workload.KindRoots) against an image, in argument order, for the
// txfuse pipeline's RunFused entry. Workloads that declare no roots
// contribute nothing; a declared root function missing from the image is an
// error. Two kinds naming one model resolve to a single root.
func FusionRoots(img *codegen.Image, wls ...workload.Workload) ([]core.KindRoot, error) {
	var roots []core.KindRoot
	seen := make(map[program.ProcID]bool)
	for _, w := range wls {
		kr, ok := w.(workload.KindRoots)
		if !ok {
			continue
		}
		for _, r := range kr.KindRoots() {
			fn, ok := img.Fns[r.Root]
			if !ok {
				return nil, fmt.Errorf("appmodel: fusion root %q (workload %s, kind %s) is not modeled in the image", r.Root, w.Name(), r.Kind)
			}
			if seen[fn.Proc.ID] {
				continue
			}
			seen[fn.Proc.ID] = true
			roots = append(roots, core.KindRoot{Kind: r.Kind, Proc: fn.Proc.ID})
		}
	}
	return roots, nil
}
