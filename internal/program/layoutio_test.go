package program_test

import (
	"bytes"
	"math/rand"
	"testing"

	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

func TestLayoutSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	p := progtest.RandProgram(r, 6)
	order := program.SourceOrder(p)
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	alignAt := map[program.BlockID]bool{order[0]: true, order[len(order)/2]: true}
	l, err := program.Materialize(p, order, program.MaterializeOptions{
		AlignWords: 4,
		AlignAt:    alignAt,
		GapBefore:  map[program.BlockID]uint64{order[len(order)/2]: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := program.SaveLayout(&buf, l, 4); err != nil {
		t.Fatal(err)
	}
	got, err := program.LoadLayout(&buf, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for id := range p.Blocks {
		if got.Addr[id] != l.Addr[id] || got.Occ[id] != l.Occ[id] {
			t.Fatalf("block %d: addr/occ differ after roundtrip", id)
		}
	}
	if got.TotalWords() != l.TotalWords() {
		t.Fatalf("total words %d != %d", got.TotalWords(), l.TotalWords())
	}
}

func TestLoadLayoutRejectsWrongProgram(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	p := progtest.RandProgram(r, 3)
	l, err := program.BaselineLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := program.SaveLayout(&buf, l, 4); err != nil {
		t.Fatal(err)
	}
	other := progtest.RandProgram(rand.New(rand.NewSource(14)), 3)
	other.Name = "different"
	if _, err := program.LoadLayout(&buf, other, nil); err == nil {
		t.Fatal("expected program-name mismatch error")
	}
}
