package program_test

import (
	"bytes"
	"math/rand"
	"testing"

	"codelayout/internal/isa"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

// buildDiamond creates one procedure shaped like:
//
//	e(4) --cond--> t(3) --br--> x(2) ret
//	          \--> f(5) --fall-> x
func buildDiamond(t *testing.T) (*program.Program, [4]*program.Block) {
	t.Helper()
	p := program.New("diamond", isa.AppTextBase)
	pr := p.AddProc("d")
	e := p.AddBlock(pr, 4)
	tb := p.AddBlock(pr, 3)
	fb := p.AddBlock(pr, 5)
	x := p.AddBlock(pr, 2)
	e.Kind = isa.TermCond
	e.Taken = tb.ID
	e.Fall = fb.ID
	tb.Kind = isa.TermBranch
	tb.Taken = x.ID
	fb.Kind = isa.TermFallThrough
	fb.Fall = x.ID
	x.Kind = isa.TermRet
	if err := p.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return p, [4]*program.Block{e, tb, fb, x}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	buildDiamond(t)
}

func TestValidateRejectsBadReferences(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*program.Program, [4]*program.Block)
	}{
		{"cond same arms", func(p *program.Program, b [4]*program.Block) { b[0].Fall = b[0].Taken }},
		{"fall out of range", func(p *program.Program, b [4]*program.Block) { b[2].Fall = 99 }},
		{"fall noblock", func(p *program.Program, b [4]*program.Block) { b[2].Fall = program.NoBlock }},
		{"bad callee", func(p *program.Program, b [4]*program.Block) {
			b[2].Kind = isa.TermCall
			b[2].Callee = 7
		}},
		{"indirect no targets", func(p *program.Program, b [4]*program.Block) {
			b[2].Kind = isa.TermIndirect
			b[2].Targets = nil
		}},
		{"negative body", func(p *program.Program, b [4]*program.Block) { b[1].Body = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, blocks := buildDiamond(t)
			tc.break_(p, blocks)
			if err := p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestValidateRejectsCrossProcContinuation(t *testing.T) {
	p := program.New("x", isa.AppTextBase)
	a := p.AddProc("a")
	b := p.AddProc("b")
	ab := p.AddBlock(a, 1)
	bb := p.AddBlock(b, 1)
	bb.Kind = isa.TermRet
	ab.Kind = isa.TermCall
	ab.Callee = b.ID
	ab.Fall = bb.ID // continuation in the wrong procedure
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error for cross-proc continuation")
	}
}

func TestComputeStats(t *testing.T) {
	p, _ := buildDiamond(t)
	cold := p.AddProc("cold")
	cold.Cold = true
	cb := p.AddBlock(cold, 100)
	cb.Kind = isa.TermRet
	s := p.ComputeStats()
	if s.Procs != 2 || s.ColdProcs != 1 {
		t.Fatalf("procs=%d cold=%d", s.Procs, s.ColdProcs)
	}
	if s.Blocks != 5 || s.HotBlocks != 4 {
		t.Fatalf("blocks=%d hot=%d", s.Blocks, s.HotBlocks)
	}
	if s.BodyWords != 114 || s.HotWords != 14 {
		t.Fatalf("body=%d hot=%d", s.BodyWords, s.HotWords)
	}
}

func TestSuccEdges(t *testing.T) {
	p, b := buildDiamond(t)
	var kinds []program.EdgeKind
	p.SuccEdges(b[0], func(e program.Edge) { kinds = append(kinds, e.Kind) })
	if len(kinds) != 2 || kinds[0] != program.EdgeTaken || kinds[1] != program.EdgeCondFall {
		t.Fatalf("cond edges = %v", kinds)
	}
	var n int
	p.SuccEdges(b[3], func(program.Edge) { n++ })
	if n != 0 {
		t.Fatalf("ret should have no successors, got %d", n)
	}
}

func TestCallEdges(t *testing.T) {
	p := program.New("c", isa.AppTextBase)
	a := p.AddProc("a")
	callee := p.AddProc("callee")
	ce := p.AddBlock(callee, 2)
	ce.Kind = isa.TermRet
	cb := p.AddBlock(a, 1)
	cont := p.AddBlock(a, 1)
	cont.Kind = isa.TermRet
	cb.Kind = isa.TermCall
	cb.Callee = callee.ID
	cb.Fall = cont.ID
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var edges []program.Edge
	p.SuccEdges(cb, func(e program.Edge) { edges = append(edges, e) })
	if len(edges) != 2 {
		t.Fatalf("call edges = %v", edges)
	}
	if edges[0].Kind != program.EdgeCall || edges[0].Dst != ce.ID {
		t.Fatalf("call edge = %+v", edges[0])
	}
	if edges[1].Kind != program.EdgeCont || edges[1].Dst != cont.ID {
		t.Fatalf("cont edge = %+v", edges[1])
	}
	// FlowEdges must exclude the call edge but keep the continuation.
	var flow []program.Edge
	p.FlowEdges(cb, func(e program.Edge) { flow = append(flow, e) })
	if len(flow) != 1 || flow[0].Kind != program.EdgeCont {
		t.Fatalf("flow edges = %v", flow)
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	for _, pair := range [][2]program.BlockID{{0, 0}, {1, 2}, {1 << 20, 3}, {7, 1 << 24}} {
		k := program.EdgeKey(pair[0], pair[1])
		s, d := program.SplitEdgeKey(k)
		if s != pair[0] || d != pair[1] {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", pair[0], pair[1], s, d)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := progtest.RandProgram(r, 6)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := program.ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumBlocks() != p.NumBlocks() || len(q.Procs) != len(p.Procs) {
		t.Fatalf("roundtrip size mismatch: %d/%d blocks, %d/%d procs",
			q.NumBlocks(), p.NumBlocks(), len(q.Procs), len(p.Procs))
	}
	for i, b := range p.Blocks {
		qb := q.Blocks[i]
		if qb.Kind != b.Kind || qb.Body != b.Body || qb.Fall != b.Fall || qb.Taken != b.Taken {
			t.Fatalf("block %d mismatch after roundtrip", i)
		}
	}
}

func TestPredsCountsIncomingEdges(t *testing.T) {
	p, b := buildDiamond(t)
	preds := p.Preds()
	if preds[b[0].ID] != 0 {
		t.Fatalf("entry preds = %d", preds[b[0].ID])
	}
	if preds[b[3].ID] != 2 {
		t.Fatalf("join preds = %d", preds[b[3].ID])
	}
}
