package program

import (
	"fmt"

	"codelayout/internal/isa"
)

// Layout is a placement of every block of a program at concrete addresses,
// together with the terminator materialization the placement implies:
//
//   - an unconditional branch (or fall-through continuation) to the
//     physically next block is elided;
//   - a conditional branch whose hot arm is adjacent flips polarity so the
//     adjacent arm falls through, costing one word;
//   - a conditional branch with neither arm adjacent needs a branch pair
//     (conditional + unconditional), costing two words;
//   - a call whose continuation is not adjacent needs a landing branch after
//     the call word, because the return address is the next word.
//
// These rules reproduce, at the address-stream level, what Spike's rewriter
// does to an Alpha executable.
type Layout struct {
	Prog *Program

	// Order is the placement order of every block.
	Order []BlockID

	// Addr[b] is the virtual address of block b's first word.
	Addr []uint64

	// Occ[b] is the number of words block b occupies, including materialized
	// terminator words but excluding alignment padding.
	Occ []int32

	// Adj[b] is the successor of b reached by pure fall-through under this
	// layout (the physically next block when the terminator allows the
	// transfer to be elided or flipped onto it), or NoBlock.
	Adj []BlockID

	// Landing[b] reports whether call block b needed a landing branch
	// because its continuation is not adjacent.
	Landing []bool

	// CondFirst[b], for a conditional block with no adjacent arm, names the
	// successor tested by the first branch of the branch pair (the cheaper
	// exit). NoBlock elsewhere.
	CondFirst []BlockID

	// AlignAt marks blocks that begin an alignment unit (procedure or
	// segment starts).
	AlignAt map[BlockID]bool

	// GapBefore records explicit gaps inserted before blocks (CFA).
	GapBefore map[BlockID]uint64

	// PadWords is the total alignment padding inserted.
	PadWords int64

	// LongBranches counts direct control transfers whose displacement
	// exceeds the ISA branch reach and would need a long-branch sequence.
	LongBranches int
}

// MaterializeOptions configures layout materialization.
type MaterializeOptions struct {
	// AlignWords pads the start of each alignment unit to a multiple of this
	// many words. Zero disables alignment.
	AlignWords int
	// AlignAt marks the blocks that begin alignment units. If nil, every
	// procedure's first block in placement order begins a unit.
	AlignAt map[BlockID]bool
	// Hotness, if non-nil, returns the execution count of a block; it is
	// used to pick the cheap exit of a branch pair. If nil the taken arm is
	// tested first.
	Hotness func(BlockID) uint64
	// GapBefore inserts an explicit gap of the given number of bytes before
	// a block, on top of any alignment. The CFA optimization uses gaps to
	// keep ordinary code out of the reserved conflict-free cache region.
	GapBefore map[BlockID]uint64
}

// Materialize derives a Layout from a placement order. The order must contain
// every block of the program exactly once.
func Materialize(p *Program, order []BlockID, opts MaterializeOptions) (*Layout, error) {
	if len(order) != len(p.Blocks) {
		return nil, fmt.Errorf("layout: order has %d blocks, program has %d", len(order), len(p.Blocks))
	}
	n := len(p.Blocks)
	l := &Layout{
		Prog:      p,
		Order:     order,
		Addr:      make([]uint64, n),
		Occ:       make([]int32, n),
		Adj:       make([]BlockID, n),
		Landing:   make([]bool, n),
		CondFirst: make([]BlockID, n),
	}
	for i := range l.Adj {
		l.Adj[i] = NoBlock
		l.CondFirst[i] = NoBlock
	}

	alignAt := opts.AlignAt
	if alignAt == nil {
		alignAt = make(map[BlockID]bool)
		seenProc := make([]bool, len(p.Procs))
		for _, id := range order {
			pr := p.Blocks[id].Proc
			if !seenProc[pr] {
				seenProc[pr] = true
				alignAt[id] = true
			}
		}
	}
	l.AlignAt = alignAt

	pos := make([]int, n) // placement index per block
	seen := make([]bool, n)
	for i, id := range order {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("layout: bad block id %d at position %d", id, i)
		}
		if seen[id] {
			return nil, fmt.Errorf("layout: block %d placed twice", id)
		}
		seen[id] = true
		pos[id] = i
	}

	// Decide terminator materialization from adjacency.
	for i, id := range order {
		b := p.Blocks[id]
		var next BlockID = NoBlock
		if i+1 < len(order) && !alignAt[order[i+1]] {
			// A block at an alignment boundary may still be a fall-through
			// target; padding would break contiguity, so treat unit starts
			// as non-adjacent. (Units begin procedures/segments, which are
			// entered by explicit transfers anyway.)
			next = order[i+1]
		}
		term := int32(0)
		switch b.Kind {
		case isa.TermFallThrough:
			if b.Fall == next {
				l.Adj[id] = next
			} else {
				term = 1
			}
		case isa.TermCond:
			term = 1
			switch {
			case b.Fall == next:
				l.Adj[id] = next
			case b.Taken == next:
				// Polarity flip: the original taken arm falls through.
				l.Adj[id] = next
			default:
				term = 2
				first := b.Taken
				if opts.Hotness != nil && opts.Hotness(b.Fall) > opts.Hotness(b.Taken) {
					first = b.Fall
				}
				l.CondFirst[id] = first
			}
		case isa.TermBranch:
			if b.Taken == next {
				l.Adj[id] = next
			} else {
				term = 1
			}
		case isa.TermCall:
			term = 1
			if b.Fall == next {
				l.Adj[id] = next
			} else {
				term = 2
				l.Landing[id] = true
			}
		case isa.TermRet, isa.TermIndirect, isa.TermHalt:
			term = 1
		}
		l.Occ[id] = b.Body + term
	}

	// Assign addresses.
	addr := p.TextBase
	align := uint64(opts.AlignWords) * isa.WordBytes
	l.GapBefore = opts.GapBefore
	for _, id := range order {
		if gap := opts.GapBefore[id]; gap > 0 {
			l.PadWords += int64(gap / isa.WordBytes)
			addr += gap
		}
		if align > 0 && alignAt[id] {
			if rem := addr % align; rem != 0 {
				pad := align - rem
				l.PadWords += int64(pad / isa.WordBytes)
				addr += pad
			}
		}
		l.Addr[id] = addr
		addr += uint64(l.Occ[id]) * isa.WordBytes
	}

	// Count long branches (direct transfers beyond ISA reach).
	for _, b := range p.Blocks {
		p.SuccEdges(b, func(e Edge) {
			if e.Kind == EdgeIndirect {
				return // indirect jumps have full reach
			}
			if l.Adj[b.ID] == e.Dst {
				return // elided or fall-through
			}
			src := int64(l.Addr[b.ID]) + int64(b.Body)*isa.WordBytes
			d := int64(l.Addr[e.Dst]) - src
			if d < 0 {
				d = -d
			}
			if d > isa.BranchDisplacementBytes {
				l.LongBranches++
			}
		})
	}
	return l, nil
}

// End returns the address one past the last word of block b.
func (l *Layout) End(b BlockID) uint64 {
	return l.Addr[b] + uint64(l.Occ[b])*isa.WordBytes
}

// TotalWords returns the total size of the laid-out text in words, including
// padding.
func (l *Layout) TotalWords() int64 {
	var w int64 = l.PadWords
	for _, occ := range l.Occ {
		w += int64(occ)
	}
	return w
}

// TotalBytes returns the total size of the laid-out text in bytes.
func (l *Layout) TotalBytes() int64 { return l.TotalWords() * isa.WordBytes }

// ExecWords returns the number of words fetched when block b executes and
// leaves via the edge to succ (NoBlock for Ret/Halt, the chosen target for
// indirect jumps). Landing-branch words of calls are not included here; the
// emitter accounts for them at return time via LandingRun.
func (l *Layout) ExecWords(b *Block, succ BlockID) int32 {
	switch b.Kind {
	case isa.TermFallThrough, isa.TermBranch:
		if l.Adj[b.ID] == succ {
			return b.Body
		}
		return b.Body + 1
	case isa.TermCond:
		if l.Adj[b.ID] != NoBlock {
			return b.Body + 1
		}
		if succ == l.CondFirst[b.ID] {
			return b.Body + 1
		}
		return b.Body + 2
	case isa.TermCall:
		return b.Body + 1
	default: // Ret, Indirect, Halt
		return b.Body + 1
	}
}

// LandingRun returns the address and length (in words) of the landing branch
// executed when control returns to call block b's continuation, or ok=false
// when the continuation is adjacent and no landing branch exists.
func (l *Layout) LandingRun(b BlockID) (addr uint64, words int32, ok bool) {
	if !l.Landing[b] {
		return 0, 0, false
	}
	// Block layout: [body][call][landing branch].
	return l.Addr[b] + uint64(l.Prog.Blocks[b].Body+1)*isa.WordBytes, 1, true
}

// Validate checks layout invariants: every block placed once, addresses
// consistent with occupancy and padding, adjacency claims physically true,
// and occupancy consistent with terminator rules. Intended for tests.
func (l *Layout) Validate() error {
	p := l.Prog
	if len(l.Order) != len(p.Blocks) {
		return fmt.Errorf("layout: order size %d != %d blocks", len(l.Order), len(p.Blocks))
	}
	seen := make([]bool, len(p.Blocks))
	var prev BlockID = NoBlock
	for _, id := range l.Order {
		if seen[id] {
			return fmt.Errorf("layout: block %d placed twice", id)
		}
		seen[id] = true
		if prev != NoBlock {
			gap := int64(l.Addr[id]) - int64(l.End(prev))
			if gap < 0 {
				return fmt.Errorf("layout: block %d overlaps predecessor %d", id, prev)
			}
			if gap > 0 && !l.AlignAt[id] && l.GapBefore[id] == 0 {
				return fmt.Errorf("layout: unexpected gap %d before block %d", gap, id)
			}
		}
		prev = id
	}
	for _, b := range p.Blocks {
		adj := l.Adj[b.ID]
		if adj != NoBlock {
			if l.Addr[adj] != l.End(b.ID) {
				return fmt.Errorf("layout: block %d claims adjacency to %d but addresses disagree", b.ID, adj)
			}
			switch b.Kind {
			case isa.TermFallThrough:
				if adj != b.Fall {
					return fmt.Errorf("layout: fall block %d adjacent to non-successor %d", b.ID, adj)
				}
			case isa.TermCond:
				if adj != b.Fall && adj != b.Taken {
					return fmt.Errorf("layout: cond block %d adjacent to non-successor %d", b.ID, adj)
				}
			case isa.TermBranch:
				if adj != b.Taken {
					return fmt.Errorf("layout: branch block %d adjacent to non-target %d", b.ID, adj)
				}
			case isa.TermCall:
				if adj != b.Fall {
					return fmt.Errorf("layout: call block %d adjacent to non-continuation %d", b.ID, adj)
				}
			default:
				return fmt.Errorf("layout: %v block %d cannot have adjacency", b.Kind, b.ID)
			}
		}
		want := b.Body
		switch b.Kind {
		case isa.TermFallThrough, isa.TermBranch:
			if adj == NoBlock {
				want++
			}
		case isa.TermCond:
			if adj == NoBlock {
				want += 2
			} else {
				want++
			}
		case isa.TermCall:
			want++
			if adj == NoBlock {
				want++
				if !l.Landing[b.ID] {
					return fmt.Errorf("layout: call block %d missing landing flag", b.ID)
				}
			} else if l.Landing[b.ID] {
				return fmt.Errorf("layout: call block %d has landing flag with adjacent continuation", b.ID)
			}
		case isa.TermRet, isa.TermIndirect, isa.TermHalt:
			want++
		}
		if l.Occ[b.ID] != want {
			return fmt.Errorf("layout: block %d occupancy %d, want %d", b.ID, l.Occ[b.ID], want)
		}
	}
	return nil
}

// SourceOrder returns the baseline placement: procedures in link order, each
// procedure's blocks in source order. This models the original unoptimized
// binary.
func SourceOrder(p *Program) []BlockID {
	order := make([]BlockID, 0, len(p.Blocks))
	for _, pr := range p.Procs {
		order = append(order, pr.Blocks...)
	}
	return order
}

// BaselineLayout materializes the source-order layout with standard
// procedure alignment.
func BaselineLayout(p *Program) (*Layout, error) {
	return Materialize(p, SourceOrder(p), MaterializeOptions{AlignWords: 4})
}
