package program

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// LayoutFile is the serializable form of a layout: the placement decisions,
// not the derived addresses (which Materialize recomputes). This is what
// cmd/spike writes and the simulators load.
type LayoutFile struct {
	ProgramName string
	Order       []BlockID
	AlignAt     []BlockID
	AlignWords  int
	GapBefore   map[BlockID]uint64
}

// ToFile extracts the serializable placement from a layout.
func (l *Layout) ToFile(alignWords int) *LayoutFile {
	f := &LayoutFile{
		ProgramName: l.Prog.Name,
		Order:       l.Order,
		AlignWords:  alignWords,
		GapBefore:   l.GapBefore,
	}
	for b, on := range l.AlignAt {
		if on {
			f.AlignAt = append(f.AlignAt, b)
		}
	}
	return f
}

// SaveLayout writes the placement with encoding/gob.
func SaveLayout(w io.Writer, l *Layout, alignWords int) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(l.ToFile(alignWords)); err != nil {
		return fmt.Errorf("layout: encode: %w", err)
	}
	return bw.Flush()
}

// LoadLayout reads a placement and re-materializes it over the program.
func LoadLayout(r io.Reader, p *Program, hotness func(BlockID) uint64) (*Layout, error) {
	var f LayoutFile
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&f); err != nil {
		return nil, fmt.Errorf("layout: decode: %w", err)
	}
	if f.ProgramName != p.Name {
		return nil, fmt.Errorf("layout: for program %q, not %q", f.ProgramName, p.Name)
	}
	alignAt := make(map[BlockID]bool, len(f.AlignAt))
	for _, b := range f.AlignAt {
		alignAt[b] = true
	}
	align := f.AlignWords
	if align == 0 {
		align = 4
	}
	return Materialize(p, f.Order, MaterializeOptions{
		AlignWords: align,
		AlignAt:    alignAt,
		GapBefore:  f.GapBefore,
		Hotness:    hotness,
	})
}

// SaveLayoutFile writes the placement to a file.
func SaveLayoutFile(path string, l *Layout, alignWords int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveLayout(f, l, alignWords); err != nil {
		return err
	}
	return f.Close()
}

// LoadLayoutFile reads a placement file and materializes it.
func LoadLayoutFile(path string, p *Program) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadLayout(f, p, nil)
}
