package program_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/isa"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

func mustMaterialize(t *testing.T, p *program.Program, order []program.BlockID, opts program.MaterializeOptions) *program.Layout {
	t.Helper()
	l, err := program.Materialize(p, order, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBaselineLayoutDiamond(t *testing.T) {
	p, b := buildDiamond(t)
	l, err := program.BaselineLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Source order: e, t, f, x.
	// e: cond with fall (f) NOT adjacent but taken (t) adjacent -> flip, 1 term word.
	if l.Occ[b[0].ID] != 4+1 {
		t.Fatalf("entry occ = %d", l.Occ[b[0].ID])
	}
	if l.Adj[b[0].ID] != b[1].ID {
		t.Fatalf("entry adj = %d", l.Adj[b[0].ID])
	}
	// t: branch to x, not adjacent (f in between) -> 1 word.
	if l.Occ[b[1].ID] != 3+1 {
		t.Fatalf("t occ = %d", l.Occ[b[1].ID])
	}
	// f: fall to x, adjacent -> elided.
	if l.Occ[b[2].ID] != 5 {
		t.Fatalf("f occ = %d", l.Occ[b[2].ID])
	}
	// x: ret -> 1 word.
	if l.Occ[b[3].ID] != 2+1 {
		t.Fatalf("x occ = %d", l.Occ[b[3].ID])
	}
	if l.TotalWords() != 5+4+5+3 {
		t.Fatalf("total words = %d", l.TotalWords())
	}
}

func TestMaterializeBranchPair(t *testing.T) {
	p, b := buildDiamond(t)
	// Place the conditional's arms both away from it: order e, x, t, f.
	order := []program.BlockID{b[0].ID, b[3].ID, b[1].ID, b[2].ID}
	hot := map[program.BlockID]uint64{b[2].ID: 100, b[1].ID: 1}
	l := mustMaterialize(t, p, order, program.MaterializeOptions{
		Hotness: func(id program.BlockID) uint64 { return hot[id] },
	})
	if l.Occ[b[0].ID] != 4+2 {
		t.Fatalf("branch pair occ = %d", l.Occ[b[0].ID])
	}
	if l.CondFirst[b[0].ID] != b[2].ID {
		t.Fatalf("cond first should favor hot fall arm, got %d", l.CondFirst[b[0].ID])
	}
	// Cheap exit through the first branch costs one terminator word; the
	// other exit falls through the first branch onto the second.
	if w := l.ExecWords(b[0], b[2].ID); w != 4+1 {
		t.Fatalf("cheap exit words = %d", w)
	}
	if w := l.ExecWords(b[0], b[1].ID); w != 4+2 {
		t.Fatalf("expensive exit words = %d", w)
	}
}

func TestMaterializeCallLanding(t *testing.T) {
	p := program.New("c", isa.AppTextBase)
	a := p.AddProc("a")
	callee := p.AddProc("callee")
	ce := p.AddBlock(callee, 2)
	ce.Kind = isa.TermRet
	cb := p.AddBlock(a, 3)
	cont := p.AddBlock(a, 1)
	other := p.AddBlock(a, 1)
	cb.Kind = isa.TermCall
	cb.Callee = callee.ID
	cb.Fall = cont.ID
	cont.Kind = isa.TermRet
	other.Kind = isa.TermRet
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Continuation adjacent: call takes 1 word, no landing.
	l := mustMaterialize(t, p, []program.BlockID{cb.ID, cont.ID, other.ID, ce.ID}, program.MaterializeOptions{})
	if l.Occ[cb.ID] != 3+1 || l.Landing[cb.ID] {
		t.Fatalf("adjacent continuation: occ=%d landing=%v", l.Occ[cb.ID], l.Landing[cb.ID])
	}
	if _, _, ok := l.LandingRun(cb.ID); ok {
		t.Fatal("unexpected landing run")
	}

	// Continuation moved away: call needs a landing branch.
	l = mustMaterialize(t, p, []program.BlockID{cb.ID, other.ID, cont.ID, ce.ID}, program.MaterializeOptions{})
	if l.Occ[cb.ID] != 3+2 || !l.Landing[cb.ID] {
		t.Fatalf("split continuation: occ=%d landing=%v", l.Occ[cb.ID], l.Landing[cb.ID])
	}
	addr, words, ok := l.LandingRun(cb.ID)
	if !ok || words != 1 {
		t.Fatalf("landing run: ok=%v words=%d", ok, words)
	}
	if want := l.Addr[cb.ID] + uint64(3+1)*isa.WordBytes; addr != want {
		t.Fatalf("landing addr = %#x, want %#x", addr, want)
	}
}

func TestMaterializeAlignmentAndGaps(t *testing.T) {
	p, b := buildDiamond(t)
	order := program.SourceOrder(p)
	l := mustMaterialize(t, p, order, program.MaterializeOptions{
		AlignWords: 4,
		AlignAt:    map[program.BlockID]bool{b[0].ID: true, b[3].ID: true},
		GapBefore:  map[program.BlockID]uint64{b[3].ID: 64},
	})
	if l.Addr[b[0].ID]%16 != 0 {
		t.Fatalf("unit start not aligned: %#x", l.Addr[b[0].ID])
	}
	if l.Addr[b[3].ID]%16 != 0 {
		t.Fatalf("gapped unit start not aligned: %#x", l.Addr[b[3].ID])
	}
	if gap := l.Addr[b[3].ID] - l.End(b[2].ID); gap < 64 {
		t.Fatalf("gap = %d, want >= 64", gap)
	}
	if l.PadWords < 16 {
		t.Fatalf("pad words = %d", l.PadWords)
	}
}

func TestMaterializeRejectsBadOrders(t *testing.T) {
	p, b := buildDiamond(t)
	if _, err := program.Materialize(p, []program.BlockID{b[0].ID}, program.MaterializeOptions{}); err == nil {
		t.Fatal("expected error for short order")
	}
	if _, err := program.Materialize(p, []program.BlockID{b[0].ID, b[0].ID, b[1].ID, b[2].ID}, program.MaterializeOptions{}); err == nil {
		t.Fatal("expected error for duplicate block")
	}
}

func TestExecWordsEliding(t *testing.T) {
	p, b := buildDiamond(t)
	l, err := program.BaselineLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	// f falls through to adjacent x: no terminator word executed.
	if w := l.ExecWords(b[2], b[3].ID); w != 5 {
		t.Fatalf("elided fall exec words = %d", w)
	}
	// t branches to x (not adjacent): branch word executed.
	if w := l.ExecWords(b[1], b[3].ID); w != 3+1 {
		t.Fatalf("branch exec words = %d", w)
	}
	// e conditional with adjacent arm: one word either way.
	if w := l.ExecWords(b[0], b[1].ID); w != 4+1 {
		t.Fatalf("cond exec words = %d", w)
	}
	if w := l.ExecWords(b[0], b[2].ID); w != 4+1 {
		t.Fatalf("cond exec words = %d", w)
	}
	// x returns: ret word executed.
	if w := l.ExecWords(b[3], program.NoBlock); w != 2+1 {
		t.Fatalf("ret exec words = %d", w)
	}
}

// Property: any permutation of any random program materializes into a layout
// that passes validation, covers every block exactly once, and has
// monotonically increasing addresses.
func TestMaterializeRandomPermutationsProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(5))
		order := program.SourceOrder(p)
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		l, err := program.Materialize(p, order, program.MaterializeOptions{AlignWords: 4})
		if err != nil {
			t.Logf("seed %d: materialize: %v", seed, err)
			return false
		}
		if err := l.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		// Total size ≥ sum of bodies + one word per block upper bounds.
		var body int64
		for _, b := range p.Blocks {
			body += int64(b.Body)
		}
		total := l.TotalWords()
		if total < body || total > body+2*int64(len(p.Blocks))+l.PadWords {
			t.Logf("seed %d: total words %d outside [%d, %d]", seed, total, body, body+2*int64(len(p.Blocks))+l.PadWords)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ExecWords never exceeds occupancy and never undercounts the
// body, for every block and every successor.
func TestExecWordsBoundsProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(4))
		order := program.SourceOrder(p)
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		l, err := program.Materialize(p, order, program.MaterializeOptions{})
		if err != nil {
			return false
		}
		ok := true
		for _, b := range p.Blocks {
			p.SuccEdges(b, func(e program.Edge) {
				if e.Kind == program.EdgeCall {
					return
				}
				w := l.ExecWords(b, e.Dst)
				if w < b.Body || w > l.Occ[b.ID] {
					t.Logf("seed %d: block %d exec %d outside [%d,%d]", seed, b.ID, w, b.Body, l.Occ[b.ID])
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
