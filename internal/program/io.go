package program

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// Encode serializes the program with encoding/gob.
func (p *Program) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(p); err != nil {
		return fmt.Errorf("program: encode: %w", err)
	}
	return bw.Flush()
}

// ReadProgram deserializes a program written by Encode.
func ReadProgram(r io.Reader) (*Program, error) {
	var p Program
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("program: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program: invalid after decode: %w", err)
	}
	return &p, nil
}

// SaveFile writes the program to a file.
func (p *Program) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a program from a file written by SaveFile.
func LoadFile(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProgram(f)
}

// Dump writes a human-readable listing of the program under the given layout
// (nil for structure only). Intended for debugging and golden tests on small
// programs.
func (p *Program) Dump(w io.Writer, l *Layout) {
	for _, pr := range p.Procs {
		cold := ""
		if pr.Cold {
			cold = " [cold]"
		}
		fmt.Fprintf(w, "proc %s%s\n", pr.Name, cold)
		blocks := pr.Blocks
		if l != nil {
			blocks = append([]BlockID(nil), pr.Blocks...)
			sort.Slice(blocks, func(i, j int) bool { return l.Addr[blocks[i]] < l.Addr[blocks[j]] })
		}
		for _, id := range blocks {
			b := p.Blocks[id]
			if l != nil {
				fmt.Fprintf(w, "  %#010x b%-5d body=%-3d %v", l.Addr[id], id, b.Body, b.Kind)
			} else {
				fmt.Fprintf(w, "  b%-5d body=%-3d %v", id, b.Body, b.Kind)
			}
			p.SuccEdges(b, func(e Edge) {
				fmt.Fprintf(w, " %s->b%d", e.Kind, e.Dst)
			})
			fmt.Fprintln(w)
		}
	}
}
