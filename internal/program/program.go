// Package program defines the executable image representation the whole
// study operates on: procedures made of basic blocks with typed terminators,
// and layouts that place those blocks at addresses.
//
// The representation deliberately separates the immutable control-flow
// structure (Program) from its placement in memory (Layout). A layout
// optimizer such as internal/core never rewrites the CFG; it only chooses a
// new block order, and Materialize derives from that order which branches can
// be elided, which conditional branches flip polarity, and where branch pairs
// must be inserted — exactly the degrees of freedom Spike has when it
// rewrites an Alpha executable.
package program

import (
	"fmt"

	"codelayout/internal/isa"
)

// ProcID identifies a procedure within a Program.
type ProcID int32

// BlockID identifies a basic block within a Program. Block IDs are global
// across the program so that profiles and layouts can be stored as flat
// slices.
type BlockID int32

// NoBlock is the null BlockID.
const NoBlock BlockID = -1

// NoProc is the null ProcID.
const NoProc ProcID = -1

// Block is one basic block: Body straight-line instruction words followed by
// a terminator. The successor fields used depend on Kind:
//
//	TermFallThrough: Fall (single successor)
//	TermCond:        Taken (branch target) and Fall (fall-through)
//	TermBranch:      Taken (branch target, possibly in another procedure)
//	TermCall:        Callee (procedure called) and Fall (continuation)
//	TermRet:         none
//	TermIndirect:    Targets (possible destinations)
//	TermHalt:        none
type Block struct {
	ID      BlockID
	Proc    ProcID
	Body    int32
	Kind    isa.TermKind
	Fall    BlockID
	Taken   BlockID
	Callee  ProcID
	Targets []BlockID
}

// Procedure is a named collection of blocks. Blocks[0] is the entry block.
// Source order of Blocks defines the baseline ("original binary") layout
// within the procedure.
type Procedure struct {
	ID     ProcID
	Name   string
	Blocks []BlockID
	// Cold marks procedures that belong to the static image but are not
	// exercised by the workload (the bulk of a 27 MB database binary). They
	// occupy address space — and in the baseline link order they interleave
	// with hot code — but contribute no dynamic instructions.
	Cold bool
}

// Entry returns the procedure's entry block.
func (pr *Procedure) Entry() BlockID {
	if len(pr.Blocks) == 0 {
		return NoBlock
	}
	return pr.Blocks[0]
}

// Program is an executable image: procedures in link order plus the flat
// block table. TextBase is the virtual address of the first word of text.
type Program struct {
	Name     string
	TextBase uint64
	Procs    []*Procedure
	Blocks   []*Block
}

// New creates an empty program with the given name and text base address.
func New(name string, textBase uint64) *Program {
	return &Program{Name: name, TextBase: textBase}
}

// AddProc appends a new empty procedure and returns it.
func (p *Program) AddProc(name string) *Procedure {
	pr := &Procedure{ID: ProcID(len(p.Procs)), Name: name}
	p.Procs = append(p.Procs, pr)
	return pr
}

// AddBlock appends a new block to the given procedure and returns it. The
// block is created with no successors (NoBlock everywhere); callers fill in
// Kind and successor fields.
func (p *Program) AddBlock(pr *Procedure, body int) *Block {
	b := &Block{
		ID:     BlockID(len(p.Blocks)),
		Proc:   pr.ID,
		Body:   int32(body),
		Fall:   NoBlock,
		Taken:  NoBlock,
		Callee: NoProc,
	}
	p.Blocks = append(p.Blocks, b)
	pr.Blocks = append(pr.Blocks, b.ID)
	return b
}

// Block returns the block with the given ID.
func (p *Program) Block(id BlockID) *Block { return p.Blocks[id] }

// Proc returns the procedure with the given ID.
func (p *Program) Proc(id ProcID) *Procedure { return p.Procs[id] }

// ProcOf returns the procedure containing block id.
func (p *Program) ProcOf(id BlockID) *Procedure { return p.Procs[p.Blocks[id].Proc] }

// Entry returns the entry block of procedure id.
func (p *Program) Entry(id ProcID) BlockID { return p.Procs[id].Entry() }

// NumBlocks returns the number of blocks in the program.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// FindProc returns the first procedure with the given name, or nil.
func (p *Program) FindProc(name string) *Procedure {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Validate checks structural invariants: every block belongs to exactly one
// procedure, successor references are in range and respect terminator kinds,
// and every procedure has an entry. It returns the first violation found.
func (p *Program) Validate() error {
	seen := make([]bool, len(p.Blocks))
	for _, pr := range p.Procs {
		if len(pr.Blocks) == 0 {
			return fmt.Errorf("proc %q: no blocks", pr.Name)
		}
		for _, id := range pr.Blocks {
			if id < 0 || int(id) >= len(p.Blocks) {
				return fmt.Errorf("proc %q: block id %d out of range", pr.Name, id)
			}
			if seen[id] {
				return fmt.Errorf("proc %q: block %d appears twice", pr.Name, id)
			}
			seen[id] = true
			if p.Blocks[id].Proc != pr.ID {
				return fmt.Errorf("proc %q: block %d has proc %d", pr.Name, id, p.Blocks[id].Proc)
			}
		}
	}
	for id, b := range p.Blocks {
		if !seen[id] {
			return fmt.Errorf("block %d not in any procedure", id)
		}
		if b.Body < 0 {
			return fmt.Errorf("block %d: negative body", id)
		}
		check := func(ref BlockID, what string) error {
			if ref == NoBlock || int(ref) >= len(p.Blocks) || ref < 0 {
				return fmt.Errorf("block %d (%s): bad %s successor %d", id, b.Kind, what, ref)
			}
			return nil
		}
		switch b.Kind {
		case isa.TermFallThrough:
			if err := check(b.Fall, "fall"); err != nil {
				return err
			}
		case isa.TermCond:
			if err := check(b.Fall, "fall"); err != nil {
				return err
			}
			if err := check(b.Taken, "taken"); err != nil {
				return err
			}
			if b.Taken == b.Fall {
				return fmt.Errorf("block %d: degenerate conditional (both arms %d)", id, b.Fall)
			}
		case isa.TermBranch:
			if err := check(b.Taken, "target"); err != nil {
				return err
			}
		case isa.TermCall:
			if b.Callee == NoProc || int(b.Callee) >= len(p.Procs) {
				return fmt.Errorf("block %d: bad callee %d", id, b.Callee)
			}
			if err := check(b.Fall, "continuation"); err != nil {
				return err
			}
			if p.Blocks[b.Fall].Proc != b.Proc {
				return fmt.Errorf("block %d: call continuation %d in different proc", id, b.Fall)
			}
		case isa.TermRet, isa.TermHalt:
			// no successors
		case isa.TermIndirect:
			if len(b.Targets) == 0 {
				return fmt.Errorf("block %d: indirect jump with no targets", id)
			}
			for _, t := range b.Targets {
				if err := check(t, "indirect"); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("block %d: unknown terminator %d", id, b.Kind)
		}
	}
	return nil
}

// Stats summarizes the static structure of a program.
type Stats struct {
	Procs     int
	ColdProcs int
	Blocks    int
	BodyWords int64 // straight-line words, excluding terminators and padding
	HotBlocks int   // blocks in non-cold procedures
	HotWords  int64 // body words in non-cold procedures
}

// ComputeStats tallies static structure statistics.
func (p *Program) ComputeStats() Stats {
	var s Stats
	s.Procs = len(p.Procs)
	s.Blocks = len(p.Blocks)
	cold := make([]bool, len(p.Procs))
	for _, pr := range p.Procs {
		if pr.Cold {
			s.ColdProcs++
			cold[pr.ID] = true
		}
	}
	for _, b := range p.Blocks {
		s.BodyWords += int64(b.Body)
		if !cold[b.Proc] {
			s.HotBlocks++
			s.HotWords += int64(b.Body)
		}
	}
	return s
}
