package program

import "codelayout/internal/isa"

// EdgeKind classifies a control-flow edge.
type EdgeKind uint8

const (
	// EdgeFall is the single successor of a fall-through block.
	EdgeFall EdgeKind = iota
	// EdgeTaken is the taken arm of a conditional branch.
	EdgeTaken
	// EdgeCondFall is the fall-through arm of a conditional branch.
	EdgeCondFall
	// EdgeBranch is a direct unconditional branch (possibly cross-procedure).
	EdgeBranch
	// EdgeCall is a subroutine call; Dst is the callee's entry block.
	EdgeCall
	// EdgeCont is the call-continuation edge (call block to the block control
	// returns to). Not a fetch-order transfer at call time, but the layout
	// wants the continuation adjacent because the return address is the word
	// after the call.
	EdgeCont
	// EdgeIndirect is one possible destination of an indirect jump.
	EdgeIndirect
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeTaken:
		return "taken"
	case EdgeCondFall:
		return "cfall"
	case EdgeBranch:
		return "br"
	case EdgeCall:
		return "call"
	case EdgeCont:
		return "cont"
	case EdgeIndirect:
		return "ind"
	default:
		return "?"
	}
}

// Edge is a control-flow edge between two blocks.
type Edge struct {
	Src, Dst BlockID
	Kind     EdgeKind
}

// EdgeKey packs an edge's endpoints into a map key. Edge kind is not part of
// the key: between a given (src,dst) pair at most one CFG edge exists in this
// representation except for the degenerate conditional with both arms equal,
// which Validate rejects.
func EdgeKey(src, dst BlockID) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// SplitEdgeKey is the inverse of EdgeKey.
func SplitEdgeKey(k uint64) (src, dst BlockID) {
	return BlockID(uint32(k >> 32)), BlockID(uint32(k))
}

// SuccEdges visits every outgoing control-flow edge of block b, including the
// call edge to the callee entry and the continuation edge.
func (p *Program) SuccEdges(b *Block, visit func(Edge)) {
	switch b.Kind {
	case isa.TermFallThrough:
		visit(Edge{b.ID, b.Fall, EdgeFall})
	case isa.TermCond:
		visit(Edge{b.ID, b.Taken, EdgeTaken})
		visit(Edge{b.ID, b.Fall, EdgeCondFall})
	case isa.TermBranch:
		visit(Edge{b.ID, b.Taken, EdgeBranch})
	case isa.TermCall:
		if entry := p.Entry(b.Callee); entry != NoBlock {
			visit(Edge{b.ID, entry, EdgeCall})
		}
		visit(Edge{b.ID, b.Fall, EdgeCont})
	case isa.TermIndirect:
		for _, t := range b.Targets {
			visit(Edge{b.ID, t, EdgeIndirect})
		}
	}
}

// FlowEdges visits the intra-procedure edges that the basic-block chaining
// pass may sequentialize: fall-throughs, both arms of conditionals, call
// continuations, and direct branches or indirect-jump arms whose destination
// is in the same procedure. Call edges are never flow edges.
func (p *Program) FlowEdges(b *Block, visit func(Edge)) {
	p.SuccEdges(b, func(e Edge) {
		if e.Kind == EdgeCall {
			return
		}
		if p.Blocks[e.Dst].Proc != b.Proc {
			return
		}
		visit(e)
	})
}

// Preds computes the predecessor count of every block (over all edge kinds
// except EdgeCall). Useful for structural checks and tests.
func (p *Program) Preds() []int {
	n := make([]int, len(p.Blocks))
	for _, b := range p.Blocks {
		p.SuccEdges(b, func(e Edge) {
			if e.Kind != EdgeCall {
				n[e.Dst]++
			}
		})
	}
	return n
}
