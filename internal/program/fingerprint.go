package program

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns a stable 64-bit hash of the program's structure: name,
// text base, procedures (name, cold flag, block membership) and every
// block's shape and successors. Profiles index blocks of one specific image,
// so the persistent profile store folds this into its key — a profile
// trained against a differently-built image must miss, not silently apply.
func (p *Program) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(p.Name))
	put(p.TextBase)
	put(uint64(len(p.Procs)))
	for _, pr := range p.Procs {
		h.Write([]byte(pr.Name))
		cold := uint64(0)
		if pr.Cold {
			cold = 1
		}
		put(cold)
		put(uint64(len(pr.Blocks)))
		for _, b := range pr.Blocks {
			put(uint64(uint32(b)))
		}
	}
	put(uint64(len(p.Blocks)))
	for _, b := range p.Blocks {
		put(uint64(uint32(b.Proc)))
		put(uint64(uint32(b.Body)))
		put(uint64(b.Kind))
		put(uint64(uint32(b.Fall)))
		put(uint64(uint32(b.Taken)))
		put(uint64(uint32(b.Callee)))
		put(uint64(len(b.Targets)))
		for _, t := range b.Targets {
			put(uint64(uint32(t)))
		}
	}
	return h.Sum64()
}
