// Package cache implements the instruction-cache simulator used for every
// miss study in the paper, including the specialized metrics of Section 4.2:
// unique-word usage before replacement (Fig 9), per-word reuse counts
// (Fig 10), cache line lifetimes in cache accesses (Fig 11), unique-line
// footprint, and the application/kernel interference attribution of Fig 13.
package cache

import (
	"fmt"
	"math/bits"

	"codelayout/internal/isa"
	"codelayout/internal/stats"
	"codelayout/internal/trace"
)

// Owner classifies who filled a cache line or issued a miss.
type Owner uint8

const (
	// OwnerApp marks application text.
	OwnerApp Owner = iota
	// OwnerKernel marks kernel text.
	OwnerKernel
	// OwnerNone marks a cold miss (no valid victim).
	OwnerNone
)

func (o Owner) String() string {
	switch o {
	case OwnerApp:
		return "application"
	case OwnerKernel:
		return "kernel"
	default:
		return "none"
	}
}

// Config describes an instruction cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int // 1 = direct-mapped
	// WordStats enables per-word usage tracking (Figs 9-11 and the
	// unused-fetched-instructions statistic). It costs time and memory, so
	// the big parameter sweeps leave it off.
	WordStats bool
}

// String renders the config like the paper's captions, e.g.
// "128KB/128B/4-way".
func (c Config) String() string {
	way := fmt.Sprintf("%d-way", c.Assoc)
	if c.Assoc == 1 {
		way = "direct"
	}
	return fmt.Sprintf("%dKB/%dB/%s", c.SizeBytes/1024, c.LineBytes, way)
}

// Stats accumulates simulation results. Merge combines per-CPU instances.
type Stats struct {
	Config   Config
	Accesses uint64 // line-granularity accesses
	Misses   uint64
	Fills    uint64
	// MissBy[m] counts misses issued by missing process m (OwnerApp or
	// OwnerKernel).
	MissBy [2]uint64
	// VictimBy[m][v] counts misses by missing process m that displaced a
	// line owned by v (OwnerApp, OwnerKernel, or OwnerNone for cold fills).
	VictimBy [2][3]uint64

	// Word-level metrics (valid when Config.WordStats).
	WordsUsed     *stats.Hist     // unique words used in a line before replacement
	WordReuse     *stats.Hist     // times an individual word is used before replacement
	Lifetime      *stats.Log2Hist // line lifetime in cache accesses
	FetchedWords  uint64          // words brought in by fills
	UsedWordSlots uint64          // word slots used at least once before replacement
}

// NewStats allocates a stats block for the given config.
func NewStats(cfg Config) *Stats {
	s := &Stats{Config: cfg}
	if cfg.WordStats {
		s.WordsUsed = stats.NewHist(0, cfg.LineBytes/isa.WordBytes)
		s.WordReuse = stats.NewHist(0, 15)
		s.Lifetime = &stats.Log2Hist{}
	}
	return s
}

// Merge folds other (same config) into s.
func (s *Stats) Merge(other *Stats) {
	s.Accesses += other.Accesses
	s.Misses += other.Misses
	s.Fills += other.Fills
	for i := range s.MissBy {
		s.MissBy[i] += other.MissBy[i]
		for j := range s.VictimBy[i] {
			s.VictimBy[i][j] += other.VictimBy[i][j]
		}
	}
	if s.Config.WordStats && other.Config.WordStats {
		s.WordsUsed.Merge(other.WordsUsed)
		s.WordReuse.Merge(other.WordReuse)
		s.Lifetime.Merge(other.Lifetime)
		s.FetchedWords += other.FetchedWords
		s.UsedWordSlots += other.UsedWordSlots
	}
}

// MissRate returns misses per access.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// UnusedFetchedFrac returns the fraction of fetched instruction words that
// were never executed before their line was replaced (the paper reports 46%
// baseline vs 21% optimized).
func (s *Stats) UnusedFetchedFrac() float64 {
	if s.FetchedWords == 0 {
		return 0
	}
	return 1 - float64(s.UsedWordSlots)/float64(s.FetchedWords)
}

// ICache simulates one instruction cache with LRU replacement.
type ICache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	lineWords int
	numSets   int

	// Frame state, flattened as set*assoc+way.
	tags    []uint64 // line number + 1; 0 = invalid
	lastUse []uint64
	fillAt  []uint64
	owner   []Owner
	wordCnt []uint8 // frames × lineWords saturating counters (WordStats)
	missCB  func(lineAddr uint64, kernel bool)

	clock uint64
	stats *Stats
}

// New creates an instruction cache simulator.
func New(cfg Config) *ICache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		panic("cache: bad config")
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible by line*assoc", cfg.SizeBytes))
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", numSets))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size not a power of two")
	}
	c := &ICache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(numSets - 1),
		assoc:     cfg.Assoc,
		lineWords: cfg.LineBytes / isa.WordBytes,
		numSets:   numSets,
		tags:      make([]uint64, numSets*cfg.Assoc),
		lastUse:   make([]uint64, numSets*cfg.Assoc),
		fillAt:    make([]uint64, numSets*cfg.Assoc),
		owner:     make([]Owner, numSets*cfg.Assoc),
		stats:     NewStats(cfg),
	}
	if cfg.WordStats {
		c.wordCnt = make([]uint8, numSets*cfg.Assoc*c.lineWords)
	}
	return c
}

// Config returns the cache configuration.
func (c *ICache) Config() Config { return c.cfg }

// OnMiss registers a callback invoked on every miss with the line-aligned
// address, used to feed a unified L2.
func (c *ICache) OnMiss(cb func(lineAddr uint64, kernel bool)) { c.missCB = cb }

// Fetch implements trace.Sink: it touches every line the run covers and, if
// word stats are enabled, marks each fetched word used.
func (c *ICache) Fetch(r trace.FetchRun) {
	first := r.Addr >> c.lineShift
	last := (r.End() - 1) >> c.lineShift
	for ln := first; ln <= last; ln++ {
		frame := c.access(ln, r.Kernel)
		if c.wordCnt != nil {
			lineStart := ln << c.lineShift
			w0 := 0
			if r.Addr > lineStart {
				w0 = int(r.Addr-lineStart) / isa.WordBytes
			}
			w1 := c.lineWords - 1
			if end := (ln + 1) << c.lineShift; r.End() < end {
				w1 = int(r.End()-lineStart)/isa.WordBytes - 1
			}
			base := frame * c.lineWords
			for w := w0; w <= w1; w++ {
				if c.wordCnt[base+w] != 255 {
					c.wordCnt[base+w]++
				}
			}
		}
	}
}

// FetchMisses is Fetch plus the number of misses this run took, for inline
// stall models that charge miss latency to a CPU clock as it fetches.
func (c *ICache) FetchMisses(r trace.FetchRun) int {
	before := c.stats.Misses
	c.Fetch(r)
	return int(c.stats.Misses - before)
}

// access looks up one line and returns the frame index holding it.
func (c *ICache) access(line uint64, kernel bool) int {
	c.clock++
	c.stats.Accesses++
	set := int(line & c.setMask)
	base := set * c.assoc
	tag := line + 1
	victim := base
	for w := 0; w < c.assoc; w++ {
		f := base + w
		switch {
		case c.tags[f] == tag:
			c.lastUse[f] = c.clock
			return f
		case c.tags[f] == 0:
			victim = f
		case c.tags[victim] != 0 && c.lastUse[f] < c.lastUse[victim]:
			victim = f
		}
	}
	// Miss.
	c.stats.Misses++
	miss := OwnerApp
	if kernel {
		miss = OwnerKernel
	}
	c.stats.MissBy[miss]++
	if c.tags[victim] == 0 {
		c.stats.VictimBy[miss][OwnerNone]++
	} else {
		c.stats.VictimBy[miss][c.owner[victim]]++
		c.retire(victim)
	}
	c.fill(victim, tag, miss)
	if c.missCB != nil {
		c.missCB(line<<c.lineShift, kernel)
	}
	return victim
}

func (c *ICache) fill(f int, tag uint64, owner Owner) {
	c.tags[f] = tag
	c.lastUse[f] = c.clock
	c.fillAt[f] = c.clock
	c.owner[f] = owner
	c.stats.Fills++
	if c.wordCnt != nil {
		base := f * c.lineWords
		for w := 0; w < c.lineWords; w++ {
			c.wordCnt[base+w] = 0
		}
		c.stats.FetchedWords += uint64(c.lineWords)
	}
}

// retire records replacement-time metrics for a valid frame.
func (c *ICache) retire(f int) {
	if c.wordCnt == nil {
		return
	}
	base := f * c.lineWords
	used := 0
	for w := 0; w < c.lineWords; w++ {
		n := c.wordCnt[base+w]
		c.stats.WordReuse.Add(int(n))
		if n > 0 {
			used++
		}
	}
	c.stats.WordsUsed.Add(used)
	c.stats.UsedWordSlots += uint64(used)
	c.stats.Lifetime.Add(c.clock - c.fillAt[f])
}

// Finalize folds still-resident lines into the replacement-time metrics so
// short runs are not biased toward early evictions. Safe to call once at the
// end of a simulation.
func (c *ICache) Finalize() {
	if c.wordCnt == nil {
		return
	}
	for f, tag := range c.tags {
		if tag != 0 {
			c.retire(f)
			c.tags[f] = 0
		}
	}
}

// Stats returns the accumulated statistics.
func (c *ICache) Stats() *Stats { return c.stats }
