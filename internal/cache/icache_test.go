package cache_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/cache"
	"codelayout/internal/trace"
)

func run(addr uint64, words int32, kernel bool) trace.FetchRun {
	return trace.FetchRun{Addr: addr, Words: words, Kernel: kernel}
}

func TestDirectMappedConflict(t *testing.T) {
	// 1KB direct-mapped, 64B lines -> 16 sets. Two addresses 1KB apart
	// conflict in set 0.
	c := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1})
	c.Fetch(run(0, 1, false))
	c.Fetch(run(1024, 1, false))
	c.Fetch(run(0, 1, false))
	c.Fetch(run(1024, 1, false))
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 (ping-pong)", got)
	}
	// Non-conflicting address hits.
	c.Fetch(run(64, 1, false))
	c.Fetch(run(64, 1, false))
	if got := c.Stats().Misses; got != 5 {
		t.Fatalf("misses = %d, want 5", got)
	}
}

func TestAssociativityRemovesConflict(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	for i := 0; i < 10; i++ {
		c.Fetch(run(0, 1, false))
		c.Fetch(run(1024, 1, false))
	}
	if got := c.Stats().Misses; got != 2 {
		t.Fatalf("misses = %d, want 2 (both lines fit one set)", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set: A, B fill; touching A then inserting C must evict B.
	c := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	A, B, C := uint64(0), uint64(1024), uint64(2048)
	c.Fetch(run(A, 1, false))
	c.Fetch(run(B, 1, false))
	c.Fetch(run(A, 1, false)) // A most recent
	c.Fetch(run(C, 1, false)) // evicts B
	m := c.Stats().Misses
	c.Fetch(run(A, 1, false)) // must still hit
	if c.Stats().Misses != m {
		t.Fatal("A was evicted, LRU broken")
	}
	c.Fetch(run(B, 1, false)) // must miss
	if c.Stats().Misses != m+1 {
		t.Fatal("B unexpectedly present")
	}
}

func TestRunSpanningLines(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1})
	// 32 words = 128 bytes starting mid-line: touches 3 lines.
	c.Fetch(run(32, 32, false))
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 3 {
		t.Fatalf("accesses=%d misses=%d, want 3/3", s.Accesses, s.Misses)
	}
}

func TestOwnerInterferenceAttribution(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1})
	c.Fetch(run(0, 1, false))   // app fills set 0: cold miss
	c.Fetch(run(1024, 1, true)) // kernel conflicts: displaces app line
	c.Fetch(run(0, 1, false))   // app displaces kernel line
	s := c.Stats()
	if s.VictimBy[cache.OwnerApp][cache.OwnerNone] != 1 {
		t.Fatalf("cold app miss = %d", s.VictimBy[cache.OwnerApp][cache.OwnerNone])
	}
	if s.VictimBy[cache.OwnerKernel][cache.OwnerApp] != 1 {
		t.Fatalf("kernel-on-app = %d", s.VictimBy[cache.OwnerKernel][cache.OwnerApp])
	}
	if s.VictimBy[cache.OwnerApp][cache.OwnerKernel] != 1 {
		t.Fatalf("app-on-kernel = %d", s.VictimBy[cache.OwnerApp][cache.OwnerKernel])
	}
	if s.MissBy[cache.OwnerApp] != 2 || s.MissBy[cache.OwnerKernel] != 1 {
		t.Fatalf("missBy = %v", s.MissBy)
	}
}

func TestWordUsageMetrics(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1, WordStats: true}
	c := cache.New(cfg)
	// Fill line 0, use 4 of its 16 words, then evict it with a conflict.
	c.Fetch(run(0, 4, false))
	c.Fetch(run(1024, 16, false))
	c.Finalize()
	s := c.Stats()
	if s.WordsUsed.N != 2 {
		t.Fatalf("wordsUsed N = %d", s.WordsUsed.N)
	}
	if got := s.WordsUsed.Counts[4-s.WordsUsed.Min]; got != 1 {
		t.Fatalf("lines with 4 used words = %d", got)
	}
	if got := s.WordsUsed.Counts[16-s.WordsUsed.Min]; got != 1 {
		t.Fatalf("lines with 16 used words = %d", got)
	}
	// 2 fills × 16 words = 32 fetched; 4+16 used.
	if s.FetchedWords != 32 || s.UsedWordSlots != 20 {
		t.Fatalf("fetched=%d used=%d", s.FetchedWords, s.UsedWordSlots)
	}
	if f := s.UnusedFetchedFrac(); f < 0.37 || f > 0.38 {
		t.Fatalf("unused frac = %f, want 12/32", f)
	}
}

func TestWordReuseCounts(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1, WordStats: true}
	c := cache.New(cfg)
	// Execute the same 2 words three times, then finalize.
	for i := 0; i < 3; i++ {
		c.Fetch(run(0, 2, false))
	}
	c.Finalize()
	s := c.Stats()
	// 2 words used 3 times, 14 words used 0 times.
	if got := s.WordReuse.Counts[3]; got != 2 {
		t.Fatalf("words used 3x = %d", got)
	}
	if got := s.WordReuse.Counts[0]; got != 14 {
		t.Fatalf("words used 0x = %d", got)
	}
}

func TestLifetimeHistogram(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1, WordStats: true}
	c := cache.New(cfg)
	c.Fetch(run(0, 1, false))
	for i := 0; i < 10; i++ {
		c.Fetch(run(64, 1, false)) // unrelated accesses age the clock
	}
	c.Fetch(run(1024, 1, false)) // evicts line 0 after ~11 accesses
	s := c.Stats()
	if s.Lifetime.N != 1 {
		t.Fatalf("lifetime N = %d", s.Lifetime.N)
	}
	// Lifetime ~11 accesses -> bucket 3 (8..15).
	if s.Lifetime.Counts[3] != 1 {
		t.Fatalf("lifetime buckets = %v", s.Lifetime.Counts)
	}
}

func TestStatsMerge(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1}
	a, b := cache.New(cfg), cache.New(cfg)
	a.Fetch(run(0, 1, false))
	b.Fetch(run(0, 1, true))
	b.Fetch(run(1024, 1, true))
	s := cache.NewStats(cfg)
	s.Merge(a.Stats())
	s.Merge(b.Stats())
	if s.Misses != 3 || s.MissBy[cache.OwnerKernel] != 2 {
		t.Fatalf("merged: misses=%d kernel=%d", s.Misses, s.MissBy[cache.OwnerKernel])
	}
}

// Property: miss count is monotonically non-increasing in associativity for
// the same size/line on a random access pattern... not true in general for
// LRU (Belady anomalies apply to capacity, not associativity — LRU stack
// property holds only for fully associative). Instead check two solid
// invariants: misses never exceed accesses, and a repeat of the same stream
// on a fresh cache reproduces identical counts (determinism).
func TestCacheDeterminismProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := cache.Config{SizeBytes: 4096, LineBytes: 64, Assoc: 1 << r.Intn(3), WordStats: true}
		runs := make([]trace.FetchRun, 300)
		for i := range runs {
			runs[i] = trace.FetchRun{
				Addr:   uint64(r.Intn(1<<14) &^ 3),
				Words:  int32(1 + r.Intn(20)),
				Kernel: r.Intn(4) == 0,
			}
		}
		replay := func() *cache.Stats {
			c := cache.New(cfg)
			for _, fr := range runs {
				c.Fetch(fr)
			}
			c.Finalize()
			return c.Stats()
		}
		s1, s2 := replay(), replay()
		if s1.Misses > s1.Accesses {
			t.Logf("seed %d: misses > accesses", seed)
			return false
		}
		if s1.Misses != s2.Misses || s1.Accesses != s2.Accesses ||
			s1.UsedWordSlots != s2.UsedWordSlots || s1.FetchedWords != s2.FetchedWords {
			t.Logf("seed %d: nondeterministic stats", seed)
			return false
		}
		// Victim attribution sums to misses.
		var va uint64
		for i := range s1.VictimBy {
			for _, v := range s1.VictimBy[i] {
				va += v
			}
		}
		if va != s1.Misses {
			t.Logf("seed %d: victim sum %d != misses %d", seed, va, s1.Misses)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFullyUsedLineCounts(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 64, Assoc: 1, WordStats: true}
	c := cache.New(cfg)
	c.Fetch(run(0, 16, false)) // full line used
	c.Fetch(run(1024, 8, false))
	c.Finalize()
	s := c.Stats()
	full := s.WordsUsed.Counts[16-s.WordsUsed.Min]
	if full != 1 {
		t.Fatalf("fully-used lines = %d", full)
	}
}
