package reclayout

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// randomSchema builds a schema with 1..12 fields of width 1..32, a random
// subset statically hot.
func randomSchema(r *rand.Rand, table string) workload.TableSchema {
	n := 1 + r.Intn(12)
	ts := workload.TableSchema{Table: table}
	for i := 0; i < n; i++ {
		f := workload.FieldSchema{
			Name:  fmt.Sprintf("f%02d", i),
			Width: 1 + r.Intn(32),
		}
		if r.Intn(3) == 0 {
			f.ReadBy = []string{"txn"}
		}
		if r.Intn(4) == 0 {
			f.WrittenBy = []string{"txn"}
		}
		ts.Fields = append(ts.Fields, f)
	}
	return ts
}

// randomCounts builds a tally covering a random subset of the schema's
// fields (empty maps exercise the static-hint fallback).
func randomCounts(r *rand.Rand, ts workload.TableSchema) map[string]db.FieldAccess {
	counts := make(map[string]db.FieldAccess)
	for _, f := range ts.Fields {
		if r.Intn(2) == 0 {
			counts[f.Name] = db.FieldAccess{Reads: uint64(r.Intn(1000)), Writes: uint64(r.Intn(100))}
		}
	}
	if r.Intn(5) == 0 {
		return nil
	}
	return counts
}

// TestDecideProperties: for random schemas and tallies, the grouped layout
// is always a valid permutation of the interleaved baseline — same field
// set, same widths, no overlap, contiguous from offset 0, record width
// preserved — and is deterministic for a given input.
func TestDecideProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		ts := randomSchema(r, fmt.Sprintf("t%d", iter))
		if err := ts.Validate(); err != nil {
			t.Fatalf("iter %d: random schema invalid: %v", iter, err)
		}
		counts := randomCounts(r, ts)
		defs := Decide(ts, counts)

		if err := db.ValidateFieldDefs(ts.Table, defs); err != nil {
			t.Fatalf("iter %d: grouped layout invalid: %v", iter, err)
		}
		if len(defs) != len(ts.Fields) {
			t.Fatalf("iter %d: %d fields in, %d out", iter, len(ts.Fields), len(defs))
		}
		width := make(map[string]int, len(ts.Fields))
		for _, f := range ts.Fields {
			width[f.Name] = f.Width
		}
		total := 0
		for _, d := range defs {
			w, ok := width[d.Name]
			if !ok {
				t.Fatalf("iter %d: layout invented field %q", iter, d.Name)
			}
			if d.Width != w {
				t.Fatalf("iter %d: field %q width %d != schema %d", iter, d.Name, d.Width, w)
			}
			if d.Off != total {
				t.Fatalf("iter %d: field %q at %d, want contiguous %d", iter, d.Name, d.Off, total)
			}
			total += d.Width
		}
		if total != ts.Width() {
			t.Fatalf("iter %d: record width %d != schema width %d", iter, total, ts.Width())
		}
		if !reflect.DeepEqual(defs, Decide(ts, counts)) {
			t.Fatalf("iter %d: Decide is not deterministic", iter)
		}
	}
}

// TestDecideHotFieldsLead: measured-hot fields come first in descending
// access order; untouched fields keep declared order behind them.
func TestDecideHotFieldsLead(t *testing.T) {
	ts := workload.TableSchema{Table: "t", Fields: []workload.FieldSchema{
		{Name: "a", Width: 8}, {Name: "b", Width: 8},
		{Name: "c", Width: 8}, {Name: "d", Width: 8},
	}}
	defs := Decide(ts, map[string]db.FieldAccess{
		"c": {Reads: 100},
		"a": {Reads: 10},
	})
	order := []string{defs[0].Name, defs[1].Name, defs[2].Name, defs[3].Name}
	want := []string{"c", "a", "b", "d"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestGroupedRoundTripOnPages: records encoded at grouped offsets and stored
// on real slotted pages decode every field back exactly, for random schemas
// and field values. This is the end-to-end fidelity contract: regrouping
// moves bytes, never loses them.
func TestGroupedRoundTripOnPages(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		ts := randomSchema(r, fmt.Sprintf("rt%d", iter))
		defs := Decide(ts, randomCounts(r, ts))

		eng := db.NewEngine(db.Config{BufferPoolPages: 64})
		s := eng.NewSession(1, nil)
		tb := eng.CreateTable(ts.Table)
		if err := tb.EnsureFields(defs); err != nil {
			t.Fatalf("iter %d: EnsureFields: %v", iter, err)
		}

		// Encode 20 records at the grouped offsets, remember expected bytes.
		type fieldVal struct {
			name string
			val  []byte
		}
		var rids []db.RID
		var want [][]fieldVal
		for rec := 0; rec < 20; rec++ {
			row := make([]byte, ts.Width())
			var vals []fieldVal
			for _, d := range defs {
				v := make([]byte, d.Width)
				r.Read(v)
				copy(row[tb.FieldOffset(d.Name):], v)
				vals = append(vals, fieldVal{d.Name, v})
			}
			s.Begin()
			rids = append(rids, tb.Insert(s, row))
			s.Commit()
			want = append(want, vals)
		}
		for i, rid := range rids {
			s.Begin()
			row := tb.Fetch(s, rid)
			s.Commit()
			if len(row) != ts.Width() {
				t.Fatalf("iter %d: record width %d, want %d", iter, len(row), ts.Width())
			}
			for _, fv := range want[i] {
				off := tb.FieldOffset(fv.name)
				got := row[off : off+len(fv.val)]
				if !reflect.DeepEqual(got, fv.val) {
					t.Fatalf("iter %d rec %d field %s: got %x want %x", iter, i, fv.name, got, fv.val)
				}
			}
		}
	}
}

// TestGroupedDefsEndToEnd: the workload-level entry point groups every
// declared table and the hint path installs the layout so a fresh engine's
// offsets differ from the declared order where the profile says so.
func TestGroupedDefsEndToEnd(t *testing.T) {
	ts := workload.TableSchema{Table: "acct", Fields: []workload.FieldSchema{
		{Name: "id", Width: 8},
		{Name: "pad", Width: 64},
		{Name: "bal", Width: 8, ReadBy: []string{"txn"}, WrittenBy: []string{"txn"}},
	}}
	wl := &schemaWorkload{schemas: []workload.TableSchema{ts}}
	defs, err := GroupedDefs(wl, Profile{"acct": {"bal": {Reads: 50, Writes: 50}}})
	if err != nil {
		t.Fatal(err)
	}
	eng := db.NewEngine(db.Config{BufferPoolPages: 16})
	if err := eng.SetFieldHints(defs); err != nil {
		t.Fatal(err)
	}
	tb := eng.CreateTable("acct")
	if got := tb.FieldOffset("bal"); got != 0 {
		t.Fatalf("hot field bal at offset %d, want 0", got)
	}
	// The loader's interleaved EnsureFields must yield to the installed hint.
	if err := tb.EnsureFields(ts.Interleaved()); err != nil {
		t.Fatalf("EnsureFields against hint: %v", err)
	}
	if got := tb.FieldOffset("bal"); got != 0 {
		t.Fatalf("hint lost to loader default: bal at %d", got)
	}
	// A record written through the offsets reads back through them.
	s := eng.NewSession(1, nil)
	row := make([]byte, ts.Width())
	binary.LittleEndian.PutUint64(row[tb.FieldOffset("bal"):], 777)
	s.Begin()
	rid := tb.Insert(s, row)
	got := tb.Fetch(s, rid)
	s.Commit()
	if v := binary.LittleEndian.Uint64(got[tb.FieldOffset("bal"):]); v != 777 {
		t.Fatalf("bal = %d, want 777", v)
	}
}

// schemaWorkload is a minimal workload.Workload + RecordSchemas for tests.
type schemaWorkload struct {
	schemas []workload.TableSchema
}

func (w *schemaWorkload) Name() string                               { return "schemawl" }
func (w *schemaWorkload) QuickScale() workload.Workload              { return w }
func (w *schemaWorkload) DataPages() int                             { return 1 }
func (w *schemaWorkload) Load(*db.Engine) (workload.Instance, error) { return nil, nil }
func (w *schemaWorkload) RecordSchemas() []workload.TableSchema      { return w.schemas }
func (w *schemaWorkload) Models(*workload.ModelEnv) []codegen.FnSpec { return nil }

// noSchemaWorkload implements workload.Workload but not RecordSchemas.
type noSchemaWorkload struct{}

func (w *noSchemaWorkload) Name() string                               { return "noschemas" }
func (w *noSchemaWorkload) QuickScale() workload.Workload              { return w }
func (w *noSchemaWorkload) DataPages() int                             { return 1 }
func (w *noSchemaWorkload) Load(*db.Engine) (workload.Instance, error) { return nil, nil }
func (w *noSchemaWorkload) Models(*workload.ModelEnv) []codegen.FnSpec { return nil }

// TestGroupedDefsRejectsSchemaless: a workload without RecordSchemas is an
// explicit error, not a silent no-op.
func TestGroupedDefsRejectsSchemaless(t *testing.T) {
	if _, err := GroupedDefs(&noSchemaWorkload{}, nil); err == nil {
		t.Fatal("workload without RecordSchemas must be rejected")
	}
}
