// Package reclayout decides profile-guided physical record layouts: given a
// workload's declared per-table field schemas (workload.TableSchema) and a
// measured field-access profile (per-field read/write tallies collected by
// the storage engine during training), it groups hot fields contiguously at
// the record head with cold fields packed behind — the data-cache analogue
// of the paper's hot/cold code splitting. The grouped layout changes only
// the byte offsets records encode and decode on slotted pages; record width,
// field set and instruction streams are preserved, so the L1D model sees
// fewer touched lines per transaction and nothing else moves.
package reclayout

import (
	"fmt"
	"sort"

	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// Profile is a field-access profile: table → field → access tally. It is
// what machine.Machine.FieldProfile harvests from a training run's engines.
type Profile map[string]map[string]db.FieldAccess

// Merge adds src's tallies into p (used when blending profiles from
// multiple runs).
func (p Profile) Merge(src Profile) {
	for table, fields := range src {
		dst, ok := p[table]
		if !ok {
			dst = make(map[string]db.FieldAccess, len(fields))
			p[table] = dst
		}
		for name, a := range fields {
			cur := dst[name]
			cur.Reads += a.Reads
			cur.Writes += a.Writes
			dst[name] = cur
		}
	}
}

// Total returns the total access count across every table and field.
func (p Profile) Total() uint64 {
	var n uint64
	for _, fields := range p {
		for _, a := range fields {
			n += a.Total()
		}
	}
	return n
}

// Interleaved returns the baseline layout of a schema: fields at their
// declared offsets (see workload.TableSchema.Interleaved).
func Interleaved(ts workload.TableSchema) []db.FieldDef { return ts.Interleaved() }

// Decide computes the grouped layout of one table: hot fields first, in
// descending access count, then cold fields in declared order, all packed
// contiguously so the record width is exactly the schema width. With
// measured counts, hotness is the field's read+write tally; with nil or
// empty counts it falls back to the schema's static hint (a field some
// transaction kind declares it reads or writes is hot). Ties keep declared
// order, so the decision is deterministic.
func Decide(ts workload.TableSchema, counts map[string]db.FieldAccess) []db.FieldDef {
	type scored struct {
		idx  int
		hot  bool
		heat uint64
	}
	rank := make([]scored, len(ts.Fields))
	for i, f := range ts.Fields {
		sc := scored{idx: i}
		if a, ok := counts[f.Name]; ok && a.Total() > 0 {
			sc.hot, sc.heat = true, a.Total()
		} else if len(counts) == 0 && f.Hot() {
			sc.hot = true
		}
		rank[i] = sc
	}
	sort.SliceStable(rank, func(i, j int) bool {
		if rank[i].hot != rank[j].hot {
			return rank[i].hot
		}
		return rank[i].heat > rank[j].heat
	})
	defs := make([]db.FieldDef, 0, len(ts.Fields))
	off := 0
	for _, sc := range rank {
		f := ts.Fields[sc.idx]
		defs = append(defs, db.FieldDef{Name: f.Name, Off: off, Width: f.Width})
		off += f.Width
	}
	return defs
}

// GroupedDefs computes the grouped layout of every table the workload
// declares a schema for, keyed by table name — the value of
// machine.Config.RecordLayouts. The workload must implement
// workload.RecordSchemas; prof may be nil (or missing tables), in which
// case the static schema hints decide.
func GroupedDefs(wl workload.Workload, prof Profile) (map[string][]db.FieldDef, error) {
	rs, ok := wl.(workload.RecordSchemas)
	if !ok {
		return nil, fmt.Errorf("reclayout: workload %q declares no record schemas (implement workload.RecordSchemas)", wl.Name())
	}
	schemas := rs.RecordSchemas()
	if len(schemas) == 0 {
		return nil, fmt.Errorf("reclayout: workload %q returned no table schemas", wl.Name())
	}
	out := make(map[string][]db.FieldDef, len(schemas))
	for _, ts := range schemas {
		if err := ts.Validate(); err != nil {
			return nil, err
		}
		defs := Decide(ts, prof[ts.Table])
		if err := db.ValidateFieldDefs(ts.Table, defs); err != nil {
			return nil, err
		}
		out[ts.Table] = defs
	}
	return out, nil
}
