package ycsb

import (
	"fmt"
	"math/rand"

	"codelayout/internal/db"
	"codelayout/internal/shard"
	"codelayout/internal/workload"
)

// Sharded is the key-value store hash-partitioned by record key across N
// engines. Point reads and single-row updates are always shard-local — the
// trivial sharding of a key-value store — so the default sharded mix has no
// distributed transactions at all. With CrossShardPct > 0, that fraction of
// reads becomes a two-key scatter read whose second key lives on another
// shard; scatter reads stay read-only, so even then the workload never
// two-phase commits.
type Sharded struct {
	Scale    Scale
	Map      shard.Map
	Shards   []*Bench
	crossPct int
}

// LoadSharded implements workload.ShardedWorkload.
func (w *Workload) LoadSharded(engs []*db.Engine) (workload.ShardedInstance, error) {
	if len(engs) < 2 {
		return nil, fmt.Errorf("ycsb: LoadSharded needs >= 2 engines (got %d); use Load", len(engs))
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	readPct := w.ReadPct
	if readPct < 0 {
		readPct = DefaultReadPct
	}
	sb := &Sharded{
		Scale:    w.Scale,
		Map:      shard.Map{Shards: len(engs)},
		crossPct: w.Partitioning().CrossShardPct,
	}
	for i, eng := range engs {
		sh := i
		b, err := loadOwned(eng, w.Scale, readPct, func(key uint64) bool { return sb.Map.Of(key) == sh })
		if err != nil {
			return nil, err
		}
		// Shards[0] is the shared generator; the others carry the knobs for
		// consistency.
		b.ShiftAfterGens, b.ShiftReadPct = w.ShiftAfterGens, w.ShiftReadPct
		b.SetZipfTheta(w.ZipfTheta)
		sb.Shards = append(sb.Shards, b)
	}
	return sb, nil
}

// GenInput implements workload.ShardedInstance: the plain generator, except
// that a CrossShardPct fraction of reads draws a second key from a remote
// shard (a scatter read).
func (sb *Sharded) GenInput(r *rand.Rand) workload.Input {
	in := sb.Shards[0].Gen(r) // generators share one Scale; any bench works
	if in.Kind == Read && sb.crossPct > 0 && r.Intn(100) < sb.crossPct {
		home := sb.Map.Of(in.Key)
		// Rejection-sample a key on a different shard; with >= 2 shards the
		// hash spreads keys, so this terminates fast and deterministically.
		for {
			k2 := uint64(r.Intn(sb.Scale.Records))
			if sb.Map.Of(k2) != home {
				in.Key2, in.MultiGet = k2, true
				break
			}
		}
	}
	return in
}

// Home implements workload.ShardedInstance.
func (sb *Sharded) Home(in workload.Input) int {
	return sb.Map.Of(in.(Input).Key)
}

// Remote implements workload.ShardedInstance.
func (sb *Sharded) Remote(in workload.Input) bool {
	req := in.(Input)
	return req.MultiGet && sb.Map.Of(req.Key2) != sb.Map.Of(req.Key)
}

// KindOf implements workload.Labeler: scatter reads touch two shards and
// get their own latency bucket next to plain reads and updates.
func (sb *Sharded) KindOf(in workload.Input) string {
	req := in.(Input)
	switch {
	case req.MultiGet:
		return "mget"
	case req.Kind == Read:
		return "read"
	}
	return "update"
}

// RunTxn implements workload.ShardedInstance: everything is shard-local
// except scatter reads, which fetch the second key on its own shard's
// engine — still without any transaction or 2PC.
func (sb *Sharded) RunTxn(ss []*db.Session, in workload.Input) {
	req := in.(Input)
	home := sb.Map.Of(req.Key)
	if !req.MultiGet {
		sb.Shards[home].RunTxn(ss[home], req)
		return
	}
	remote := sb.Map.Of(req.Key2)
	pb := ss[home].PB
	pb.Enter("ycsb_mget")
	defer pb.Leave("ycsb_mget")
	pb.Data(ss[home].ScratchAddr(1024), 192, true)
	sb.Shards[home].runRead(ss[home], req.Key)
	sb.Shards[remote].runRead(ss[remote], req.Key2)
}

// Class implements workload.FastPath. Scatter reads are declared in the
// client request itself (the second key is part of the input), so "mget" is
// an honestly separate class the predictor learns is never local; plain
// reads and updates are always local.
func (sb *Sharded) Class(in workload.Input) string { return sb.KindOf(in) }

// RunLocal implements workload.FastPath: point operations on the home
// engine. Scatter reads can never be predicted local — their class always
// observes remote — so reaching the mget arm means the predictor was driven
// by a stub; unwind rather than touch the remote shard.
func (sb *Sharded) RunLocal(s *db.Session, in workload.Input) {
	req := in.(Input)
	if req.MultiGet {
		workload.Mispredict(s.PB)
	}
	sb.Shards[sb.Map.Of(req.Key)].RunTxn(s, req)
}

// Check implements workload.ShardedInstance: the per-record invariant is
// shard-local (no operation ever writes across shards), so the union audit
// is each shard's own audit.
func (sb *Sharded) Check(ss []*db.Session) error {
	for i, b := range sb.Shards {
		if err := b.Check(ss[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
