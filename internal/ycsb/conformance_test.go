package ycsb_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/program"
	"codelayout/internal/ycsb"
)

// TestDefaultScaleConformance drives thousands of operations at the default
// (paper) scale through an emitter-bound session — a regression test for
// probe/model drift on the read, update and (via direct call) scatter
// paths.
func TestDefaultScaleConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("long conformance run in -short mode")
	}
	wl := ycsb.New()
	img, err := appmodel.Build(appmodel.Config{Seed: 2001, LibScale: 0.25, ColdWords: 100_000, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	em := codegen.NewEmitter(img, l, 3)
	em.Sink = func(uint64, int32) {}
	eng := db.NewEngine(db.Config{BufferPoolPages: wl.DataPages() + 4096})
	inst, err := wl.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession(1, em)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		inst.RunTxn(s, inst.GenInput(r))
		if !em.Idle() {
			t.Fatalf("op %d: emitter not idle", i)
		}
	}
	if err := inst.Check(eng.NewSession(2, nil)); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConformance drives the sharded instance, scatter reads
// included, through an emitter bound to a sharded-model image.
func TestShardedConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("long conformance run in -short mode")
	}
	wl := ycsb.NewScaled(ycsb.Scale{Records: 3000})
	wl.CrossShardPct = 25
	img, err := appmodel.Build(appmodel.Config{Seed: 2001, LibScale: 0.25, ColdWords: 100_000, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	em := codegen.NewEmitter(img, l, 3)
	em.Sink = func(uint64, int32) {}
	engs := []*db.Engine{
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 0}),
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 1}),
	}
	sinst, err := wl.LoadSharded(engs)
	if err != nil {
		t.Fatal(err)
	}
	ss := []*db.Session{engs[0].NewSession(1, em), engs[1].NewSession(1, em)}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		sinst.RunTxn(ss, sinst.GenInput(r))
		if !em.Idle() {
			t.Fatalf("op %d: emitter not idle", i)
		}
	}
	check := []*db.Session{engs[0].NewSession(2, nil), engs[1].NewSession(2, nil)}
	if err := sinst.Check(check); err != nil {
		t.Fatal(err)
	}
}
