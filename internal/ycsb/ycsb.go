// Package ycsb implements a YCSB-style point-read key-value workload over
// the internal/db storage engine: a 95/5 read/update mix over one user
// table. Reads run outside any transaction — a B-tree point search plus a
// heap fetch under page latches only — and updates touch a single row, so
// the workload presents the layout passes with an icache profile dominated
// by bt_search/buf_get with near-zero log and lock-manager pressure: the
// opposite corner of the profile space from the commit- and lock-heavy
// banking and order-entry mixes, which is exactly what the cross-workload
// robustness experiments need.
package ycsb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// Scale configures database size.
type Scale struct {
	// Records is the user-table row count.
	Records int
}

// DefaultScale sizes the key-value store in the same spirit as the paper's
// scaled TPC-B database: large enough that the B-tree has real height and
// the buffer pool behaves like a cached OLTP store.
func DefaultScale() Scale { return Scale{Records: 120_000} }

// lockSpaceUser keys user-row locks, disjoint from the other workloads'
// lock spaces.
const lockSpaceUser = 20

const rowBytes = 100

// DefaultReadPct is the point-read share of the mix (the YCSB-B shape).
const DefaultReadPct = 95

// Kind selects the operation type.
type Kind int

const (
	// Read fetches one record by key, outside any transaction.
	Read Kind = iota
	// Update rewrites one record's value field inside a transaction.
	Update
)

// Input is one request from a client.
type Input struct {
	Kind Kind
	Key  uint64
	// Key2 is the second key of a scatter read (sharded runs with a
	// cross-shard fraction configured); MultiGet reports whether it is set.
	Key2     uint64
	MultiGet bool
}

// Schemas returns the per-table field schemas: key, version and value are
// the live fields (version and value are what every operation actually
// touches), the filler models the wide cold payload a real user row carries.
func Schemas() []workload.TableSchema {
	readers := []string{"read", "update", "mget"}
	writers := []string{"update"}
	return []workload.TableSchema{{
		Table: "usertable",
		Fields: []workload.FieldSchema{
			{Name: "key", Width: 8},
			{Name: "version", Width: 8, ReadBy: readers, WrittenBy: writers},
			{Name: "value", Width: 8, ReadBy: readers, WrittenBy: writers},
			{Name: "filler", Width: rowBytes - 24},
		},
	}}
}

// rowOffsets caches the resolved byte offsets of the live fields under
// whatever layout (interleaved or grouped) the engine installed.
type rowOffsets struct{ key, version, value int }

func resolveOffsets(t *db.Table) rowOffsets {
	return rowOffsets{
		key:     t.FieldOffset("key"),
		version: t.FieldOffset("version"),
		value:   t.FieldOffset("value"),
	}
}

func encodeRow(o rowOffsets, key, version uint64, value int64) []byte {
	row := make([]byte, rowBytes)
	binary.LittleEndian.PutUint64(row[o.key:], key)
	binary.LittleEndian.PutUint64(row[o.version:], version)
	binary.LittleEndian.PutUint64(row[o.value:], uint64(value))
	return row
}

func (o rowOffsets) rowVersion(row []byte) uint64 { return binary.LittleEndian.Uint64(row[o.version:]) }
func (o rowOffsets) rowSetVersion(row []byte, v uint64) {
	binary.LittleEndian.PutUint64(row[o.version:], v)
}
func (o rowOffsets) rowValue(row []byte) int64 {
	return int64(binary.LittleEndian.Uint64(row[o.value:]))
}
func (o rowOffsets) rowSetValue(row []byte, v int64) {
	binary.LittleEndian.PutUint64(row[o.value:], uint64(v))
}

// delta is the deterministic increment the k-th update applies to a record:
// the invariant checker replays it, so a record's value is fully determined
// by its key and version — no cross-record coupling, hence no global lock
// traffic, but still a real consistency audit.
func delta(key, version uint64) int64 {
	return int64((key*0x9E3779B9 + version*40503) % 997)
}

// expectedValue replays every update a record has seen.
func expectedValue(key, version uint64) int64 {
	var total int64
	for k := uint64(1); k <= version; k++ {
		total += delta(key, k)
	}
	return total
}

// Bench is a loaded key-value store.
type Bench struct {
	Eng     *db.Engine
	Scale   Scale
	ReadPct int
	// ShiftAfterGens/ShiftReadPct force mid-run drift: after ShiftAfterGens
	// generated requests the read share becomes ShiftReadPct (see
	// Workload.ShiftAfterGens). gens counts requests drawn so far.
	ShiftAfterGens int
	ShiftReadPct   int
	gens           int

	UserTable *db.Table
	Users     *db.BTree

	off rowOffsets

	// Zipfian key-skew state (SetZipfTheta); zipfN == 0 means uniform keys.
	zipfN     int
	zipfTheta float64
	zipfAlpha float64
	zipfEta   float64
	zipfZetan float64
	zipfHalf  float64

	// owned lists the record keys resident in this engine, ascending (every
	// key for an unsharded load; one hash partition for a shard).
	owned []uint64
}

// Load creates and populates the store through an uninstrumented session and
// leaves it checkpointed, like tpcb.Load. A negative readPct selects
// DefaultReadPct (95); 0 is a valid pure-update mix.
func Load(eng *db.Engine, sc Scale, readPct int) (*Bench, error) {
	return loadOwned(eng, sc, readPct, nil)
}

// loadOwned loads the slice of the store whose keys satisfy own (nil =
// every key).
func loadOwned(eng *db.Engine, sc Scale, readPct int, own func(key uint64) bool) (*Bench, error) {
	if sc.Records <= 0 {
		return nil, fmt.Errorf("ycsb: bad scale %+v", sc)
	}
	if readPct < 0 {
		readPct = DefaultReadPct
	}
	if readPct > 100 {
		return nil, fmt.Errorf("ycsb: ReadPct = %d; must be in [0, 100] (negative selects the default %d)", readPct, DefaultReadPct)
	}
	b := &Bench{Eng: eng, Scale: sc, ReadPct: readPct}
	s := eng.NewSession(0, nil)
	b.UserTable = eng.CreateTable("usertable")
	b.Users = eng.CreateBTree("user_pk")
	if err := b.UserTable.EnsureFields(Schemas()[0].Interleaved()); err != nil {
		return nil, err
	}
	b.off = resolveOffsets(b.UserTable)
	for k := 0; k < sc.Records; k++ {
		key := uint64(k)
		if own != nil && !own(key) {
			continue
		}
		b.owned = append(b.owned, key)
		rid := b.UserTable.Insert(s, encodeRow(b.off, key, 0, 0))
		if err := b.Users.Insert(s, key, rid.Pack()); err != nil {
			return nil, err
		}
	}
	eng.Pool.FlushAll()
	eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())
	return b, nil
}

// SetZipfTheta switches key generation from uniform to the YCSB Zipfian
// generator with parameter theta in (0, 1): popular keys are drawn far more
// often, scattered over the key space by an FNV hash so the hot set does not
// cluster on adjacent pages. theta <= 0 keeps the classic uniform draw — and
// leaves runs bit-identical to a bench that never heard of skew.
func (b *Bench) SetZipfTheta(theta float64) {
	if theta <= 0 {
		b.zipfN = 0
		return
	}
	n := b.Scale.Records
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	b.zipfN = n
	b.zipfTheta = theta
	b.zipfZetan = zetan
	b.zipfAlpha = 1 / (1 - theta)
	b.zipfEta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	b.zipfHalf = math.Pow(0.5, theta)
}

// scatterKey spreads Zipfian ranks over the key space (FNV-1a), so the hot
// records land on unrelated pages the way popular rows do in a real store.
func scatterKey(rank, n int) uint64 {
	h := uint64(14695981039346656037)
	x := uint64(rank)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h % uint64(n)
}

// genKey draws one key: uniform by default, Zipfian-with-scatter after
// SetZipfTheta.
func (b *Bench) genKey(r *rand.Rand) uint64 {
	if b.zipfN == 0 {
		return uint64(r.Intn(b.Scale.Records))
	}
	u := r.Float64()
	uz := u * b.zipfZetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+b.zipfHalf:
		rank = 1
	default:
		rank = int(float64(b.zipfN) * math.Pow(b.zipfEta*u-b.zipfEta+1, b.zipfAlpha))
		if rank >= b.zipfN {
			rank = b.zipfN - 1
		}
	}
	return scatterKey(rank, b.zipfN)
}

// Gen draws one request: ReadPct% point reads, the rest single-row updates.
// Keys are uniform, or Zipfian after SetZipfTheta. With ShiftAfterGens set,
// requests past that count use ShiftReadPct instead — the forced-drift mode.
func (b *Bench) Gen(r *rand.Rand) Input {
	b.gens++
	pct := b.ReadPct
	if b.ShiftAfterGens > 0 && b.gens > b.ShiftAfterGens {
		pct = b.ShiftReadPct
	}
	in := Input{Key: b.genKey(r)}
	if r.Intn(100) >= pct {
		in.Kind = Update
	}
	return in
}

// GenInput implements workload.Instance.
func (b *Bench) GenInput(r *rand.Rand) workload.Input { return b.Gen(r) }

// RunTxn implements workload.Instance; in must come from GenInput.
func (b *Bench) RunTxn(s *db.Session, in workload.Input) {
	req := in.(Input)
	if req.Kind == Read {
		b.runRead(s, req.Key)
	} else {
		b.runUpdate(s, req.Key)
	}
}

// KindOf implements workload.Labeler: lock-free point reads and
// single-row update transactions have very different latency shapes.
func (b *Bench) KindOf(in workload.Input) string {
	if in.(Input).Kind == Read {
		return "read"
	}
	return "update"
}

// runRead executes one point read: a B-tree search and a heap fetch with no
// transaction, no locks and no log traffic — read-committed row reads under
// page latches, the way a key-value GET executes. The fetch touches only the
// live fields (version and value), so the data-cache cost depends on where
// the record layout put them.
func (b *Bench) runRead(s *db.Session, key uint64) {
	s.PB.Enter("ycsb_read")
	defer s.PB.Leave("ycsb_read")
	s.PB.Data(s.ScratchAddr(0), 128, true) // parsed request / reply buffer
	packed, ok := b.Users.Search(s, key)
	if !ok {
		panic(fmt.Sprintf("ycsb: record %d missing", key))
	}
	b.UserTable.FetchFields(s, db.UnpackRID(packed), "version", "value")
	s.PB.Data(s.ScratchAddr(256), 128, true) // materialized value
}

// runUpdate executes one read-modify-write transaction on a single record:
// the only lock acquired is the record's own, and the commit's log force is
// the mix's only log traffic.
func (b *Bench) runUpdate(s *db.Session, key uint64) {
	s.PB.Enter("ycsb_update")
	defer s.PB.Leave("ycsb_update")
	s.PB.Data(s.ScratchAddr(512), 128, true)
	s.Begin()
	packed, ok := b.Users.Search(s, key)
	if !ok {
		panic(fmt.Sprintf("ycsb: record %d missing", key))
	}
	rid := db.UnpackRID(packed)
	s.LockX(db.LockKey(lockSpaceUser, key))
	row := b.UserTable.FetchFields(s, rid, "version", "value")
	v := b.off.rowVersion(row) + 1
	b.off.rowSetVersion(row, v)
	b.off.rowSetValue(row, b.off.rowValue(row)+delta(key, v))
	s.PB.Data(s.ScratchAddr(768), 128, true)
	b.UserTable.UpdateFields(s, rid, row, "version", "value")
	s.Commit()
}

// ReadRecord fetches a record outside the instrumented path (tests and
// verification), returning its version and value.
func (b *Bench) ReadRecord(s *db.Session, key uint64) (version uint64, value int64) {
	packed, ok := b.Users.Search(s, key)
	if !ok {
		panic(fmt.Sprintf("ycsb: record %d missing", key))
	}
	row := b.UserTable.Fetch(s, db.UnpackRID(packed))
	return b.off.rowVersion(row), b.off.rowValue(row)
}

// Check implements workload.Instance: every resident record's value must
// equal the replayed sum of the deterministic per-version deltas — a
// record's state is a pure function of (key, version), so any lost or
// doubled update surfaces.
func (b *Bench) Check(s *db.Session) error {
	for _, key := range b.owned {
		v, got := b.ReadRecord(s, key)
		if want := expectedValue(key, v); got != want {
			return fmt.Errorf("ycsb: record %d at version %d has value %d, want %d", key, v, got, want)
		}
	}
	return nil
}
