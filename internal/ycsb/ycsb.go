// Package ycsb implements a YCSB-style point-read key-value workload over
// the internal/db storage engine: a 95/5 read/update mix over one user
// table. Reads run outside any transaction — a B-tree point search plus a
// heap fetch under page latches only — and updates touch a single row, so
// the workload presents the layout passes with an icache profile dominated
// by bt_search/buf_get with near-zero log and lock-manager pressure: the
// opposite corner of the profile space from the commit- and lock-heavy
// banking and order-entry mixes, which is exactly what the cross-workload
// robustness experiments need.
package ycsb

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// Scale configures database size.
type Scale struct {
	// Records is the user-table row count.
	Records int
}

// DefaultScale sizes the key-value store in the same spirit as the paper's
// scaled TPC-B database: large enough that the B-tree has real height and
// the buffer pool behaves like a cached OLTP store.
func DefaultScale() Scale { return Scale{Records: 120_000} }

// lockSpaceUser keys user-row locks, disjoint from the other workloads'
// lock spaces.
const lockSpaceUser = 20

const rowBytes = 100

// DefaultReadPct is the point-read share of the mix (the YCSB-B shape).
const DefaultReadPct = 95

// Kind selects the operation type.
type Kind int

const (
	// Read fetches one record by key, outside any transaction.
	Read Kind = iota
	// Update rewrites one record's value field inside a transaction.
	Update
)

// Input is one request from a client.
type Input struct {
	Kind Kind
	Key  uint64
	// Key2 is the second key of a scatter read (sharded runs with a
	// cross-shard fraction configured); MultiGet reports whether it is set.
	Key2     uint64
	MultiGet bool
}

// Row field helpers: fixed 100-byte rows (key, version, value, filler).
func encodeRow(key, version uint64, value int64) []byte {
	row := make([]byte, rowBytes)
	binary.LittleEndian.PutUint64(row[0:], key)
	binary.LittleEndian.PutUint64(row[8:], version)
	binary.LittleEndian.PutUint64(row[16:], uint64(value))
	return row
}

func rowVersion(row []byte) uint64       { return binary.LittleEndian.Uint64(row[8:]) }
func rowSetVersion(row []byte, v uint64) { binary.LittleEndian.PutUint64(row[8:], v) }
func rowValue(row []byte) int64          { return int64(binary.LittleEndian.Uint64(row[16:])) }
func rowSetValue(row []byte, v int64)    { binary.LittleEndian.PutUint64(row[16:], uint64(v)) }

// delta is the deterministic increment the k-th update applies to a record:
// the invariant checker replays it, so a record's value is fully determined
// by its key and version — no cross-record coupling, hence no global lock
// traffic, but still a real consistency audit.
func delta(key, version uint64) int64 {
	return int64((key*0x9E3779B9 + version*40503) % 997)
}

// expectedValue replays every update a record has seen.
func expectedValue(key, version uint64) int64 {
	var total int64
	for k := uint64(1); k <= version; k++ {
		total += delta(key, k)
	}
	return total
}

// Bench is a loaded key-value store.
type Bench struct {
	Eng     *db.Engine
	Scale   Scale
	ReadPct int
	// ShiftAfterGens/ShiftReadPct force mid-run drift: after ShiftAfterGens
	// generated requests the read share becomes ShiftReadPct (see
	// Workload.ShiftAfterGens). gens counts requests drawn so far.
	ShiftAfterGens int
	ShiftReadPct   int
	gens           int

	UserTable *db.Table
	Users     *db.BTree

	// owned lists the record keys resident in this engine, ascending (every
	// key for an unsharded load; one hash partition for a shard).
	owned []uint64
}

// Load creates and populates the store through an uninstrumented session and
// leaves it checkpointed, like tpcb.Load.
func Load(eng *db.Engine, sc Scale, readPct int) (*Bench, error) {
	return loadOwned(eng, sc, readPct, nil)
}

// loadOwned loads the slice of the store whose keys satisfy own (nil =
// every key).
func loadOwned(eng *db.Engine, sc Scale, readPct int, own func(key uint64) bool) (*Bench, error) {
	if sc.Records <= 0 {
		return nil, fmt.Errorf("ycsb: bad scale %+v", sc)
	}
	if readPct <= 0 {
		readPct = DefaultReadPct
	}
	b := &Bench{Eng: eng, Scale: sc, ReadPct: readPct}
	s := eng.NewSession(0, nil)
	b.UserTable = eng.CreateTable("usertable")
	b.Users = eng.CreateBTree("user_pk")
	for k := 0; k < sc.Records; k++ {
		key := uint64(k)
		if own != nil && !own(key) {
			continue
		}
		b.owned = append(b.owned, key)
		rid := b.UserTable.Insert(s, encodeRow(key, 0, 0))
		if err := b.Users.Insert(s, key, rid.Pack()); err != nil {
			return nil, err
		}
	}
	eng.Pool.FlushAll()
	eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())
	return b, nil
}

// Gen draws one request: ReadPct% point reads, the rest single-row updates,
// keys uniform. With ShiftAfterGens set, requests past that count use
// ShiftReadPct instead — the forced-drift mode.
func (b *Bench) Gen(r *rand.Rand) Input {
	b.gens++
	pct := b.ReadPct
	if b.ShiftAfterGens > 0 && b.gens > b.ShiftAfterGens {
		pct = b.ShiftReadPct
	}
	in := Input{Key: uint64(r.Intn(b.Scale.Records))}
	if r.Intn(100) >= pct {
		in.Kind = Update
	}
	return in
}

// GenInput implements workload.Instance.
func (b *Bench) GenInput(r *rand.Rand) workload.Input { return b.Gen(r) }

// RunTxn implements workload.Instance; in must come from GenInput.
func (b *Bench) RunTxn(s *db.Session, in workload.Input) {
	req := in.(Input)
	if req.Kind == Read {
		b.runRead(s, req.Key)
	} else {
		b.runUpdate(s, req.Key)
	}
}

// KindOf implements workload.Labeler: lock-free point reads and
// single-row update transactions have very different latency shapes.
func (b *Bench) KindOf(in workload.Input) string {
	if in.(Input).Kind == Read {
		return "read"
	}
	return "update"
}

// runRead executes one point read: a B-tree search and a heap fetch with no
// transaction, no locks and no log traffic — read-committed row reads under
// page latches, the way a key-value GET executes.
func (b *Bench) runRead(s *db.Session, key uint64) {
	s.PB.Enter("ycsb_read")
	defer s.PB.Leave("ycsb_read")
	s.PB.Data(s.ScratchAddr(0), 128, true) // parsed request / reply buffer
	packed, ok := b.Users.Search(s, key)
	if !ok {
		panic(fmt.Sprintf("ycsb: record %d missing", key))
	}
	b.UserTable.Fetch(s, db.UnpackRID(packed))
	s.PB.Data(s.ScratchAddr(256), 128, true) // materialized value
}

// runUpdate executes one read-modify-write transaction on a single record:
// the only lock acquired is the record's own, and the commit's log force is
// the mix's only log traffic.
func (b *Bench) runUpdate(s *db.Session, key uint64) {
	s.PB.Enter("ycsb_update")
	defer s.PB.Leave("ycsb_update")
	s.PB.Data(s.ScratchAddr(512), 128, true)
	s.Begin()
	packed, ok := b.Users.Search(s, key)
	if !ok {
		panic(fmt.Sprintf("ycsb: record %d missing", key))
	}
	rid := db.UnpackRID(packed)
	s.LockX(db.LockKey(lockSpaceUser, key))
	row := b.UserTable.Fetch(s, rid)
	v := rowVersion(row) + 1
	rowSetVersion(row, v)
	rowSetValue(row, rowValue(row)+delta(key, v))
	s.PB.Data(s.ScratchAddr(768), 128, true)
	b.UserTable.Update(s, rid, row)
	s.Commit()
}

// ReadRecord fetches a record outside the instrumented path (tests and
// verification), returning its version and value.
func (b *Bench) ReadRecord(s *db.Session, key uint64) (version uint64, value int64) {
	packed, ok := b.Users.Search(s, key)
	if !ok {
		panic(fmt.Sprintf("ycsb: record %d missing", key))
	}
	row := b.UserTable.Fetch(s, db.UnpackRID(packed))
	return rowVersion(row), rowValue(row)
}

// Check implements workload.Instance: every resident record's value must
// equal the replayed sum of the deterministic per-version deltas — a
// record's state is a pure function of (key, version), so any lost or
// doubled update surfaces.
func (b *Bench) Check(s *db.Session) error {
	for _, key := range b.owned {
		v, got := b.ReadRecord(s, key)
		if want := expectedValue(key, v); got != want {
			return fmt.Errorf("ycsb: record %d at version %d has value %d, want %d", key, v, got, want)
		}
	}
	return nil
}
