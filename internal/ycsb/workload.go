package ycsb

import (
	"fmt"

	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/workload"
)

func init() {
	workload.Register("ycsb", func() workload.Workload { return New() })
}

// Workload adapts the key-value bench to the workload seam.
type Workload struct {
	Scale Scale
	// ReadPct is the point-read share of the mix in [0, 100]; 0 is a valid
	// pure-update mix. Negative selects DefaultReadPct (95) — the
	// constructors set it explicitly, so only a hand-built literal ever sees
	// the sentinel.
	ReadPct int
	// ZipfTheta, in [0, 1), skews key picks with the YCSB Zipfian generator:
	// popular keys are drawn far more often, scattered over the key space by
	// a hash so the hot set does not cluster on adjacent pages. 0 keeps the
	// classic uniform draw — and leaves runs bit-identical to a workload
	// that never heard of skew.
	ZipfTheta float64
	// CrossShardPct sets the fraction of sharded-machine reads that become
	// two-shard scatter reads. Point operations shard trivially, so the
	// default is 0 — no cross-shard traffic, unlike the write workloads'
	// 15% 2PC fraction; scatter reads are read-only and never two-phase
	// commit.
	CrossShardPct int
	// Label overrides the registry name reported by Name, so variants of
	// the mix (a 50/50 read/update split, say) can register themselves
	// under their own names without a new implementation.
	Label string
	// ShiftAfterGens forces mid-run workload drift: after that many
	// generated requests the read share flips from ReadPct to
	// ShiftReadPct (0..100; 0 is a pure-update mix). 0 disables the
	// shift. The generator counts requests machine-wide — exactly one
	// process runs at a time — so the flip lands at a deterministic
	// point for a given seed, which the re-optimization tests rely on.
	ShiftAfterGens int
	ShiftReadPct   int
}

// New returns the YCSB-style workload at default scale (95/5 read/update).
func New() *Workload { return NewScaled(DefaultScale()) }

// NewScaled returns the workload at an explicit scale.
func NewScaled(sc Scale) *Workload { return &Workload{Scale: sc, ReadPct: DefaultReadPct} }

// Name implements workload.Workload. A Zipfian skew names a distinct
// workload — it draws a different request stream, so profiles, memo entries
// and persistent-store keys must never collide with the uniform mix.
func (w *Workload) Name() string {
	if w.Label != "" {
		return w.Label
	}
	if w.ZipfTheta > 0 {
		return fmt.Sprintf("ycsb-zipf%02d", int(w.ZipfTheta*100))
	}
	return "ycsb"
}

// validate fails fast on knob values that would silently produce a
// nonsensical mix.
func (w *Workload) validate() error {
	if w.ReadPct > 100 {
		return fmt.Errorf("ycsb: ReadPct = %d; must be in [0, 100] (negative selects the default %d)", w.ReadPct, DefaultReadPct)
	}
	if w.ZipfTheta < 0 || w.ZipfTheta >= 1 {
		return fmt.Errorf("ycsb: ZipfTheta = %v; must be in [0, 1) (0 = uniform)", w.ZipfTheta)
	}
	return nil
}

// QuickScale implements workload.Workload.
func (w *Workload) QuickScale() workload.Workload {
	q := *w
	q.Scale = Scale{Records: 4000}
	return &q
}

// Partitioning implements workload.ShardedWorkload: the store partitions on
// the record key; cross-shard traffic is off unless CrossShardPct opts in.
func (w *Workload) Partitioning() workload.Partitioning {
	pct := 0
	if w.CrossShardPct > 0 {
		pct = w.CrossShardPct
	}
	return workload.Partitioning{Key: "user", CrossShardPct: pct}
}

// DataPages implements workload.Workload (about 70 hundred-byte rows fit an
// 8 KB page after slot overhead; the index adds a small tail).
func (w *Workload) DataPages() int {
	return w.Scale.Records/70 + w.Scale.Records/500 + 8
}

// Load implements workload.Workload.
func (w *Workload) Load(eng *db.Engine) (workload.Instance, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	b, err := Load(eng, w.Scale, w.ReadPct)
	if err != nil {
		return nil, err
	}
	b.ShiftAfterGens, b.ShiftReadPct = w.ShiftAfterGens, w.ShiftReadPct
	b.SetZipfTheta(w.ZipfTheta)
	return b, nil
}

// RecordSchemas implements workload.RecordSchemas: the per-table field
// schemas the record-layout pass groups.
func (w *Workload) RecordSchemas() []workload.TableSchema { return Schemas() }

// KindRoots implements workload.KindRoots: point reads, read-modify-write
// updates, and the sharded scatter read each have their own entry model.
func (w *Workload) KindRoots() []workload.KindRoot {
	return []workload.KindRoot{
		{Kind: "read", Root: "ycsb_read"},
		{Kind: "update", Root: "ycsb_update"},
		{Kind: "mget", Root: "ycsb_mget"},
	}
}

// Models implements workload.Workload: the read, update and scatter-read
// models, mirroring site for site the probe calls RunTxn emits. The read
// root calls only bt_search and heap_fetch — no txn_begin, no lock_acquire,
// no commit — which is what tilts the trained profile toward the search
// paths.
func (w *Workload) Models(env *workload.ModelEnv) []codegen.FnSpec {
	pick := env.Pick
	return []codegen.FnSpec{
		{Name: "ycsb_read", Body: []codegen.Frag{
			codegen.Seq(7), env.ErrPath(), pick("sql", 6),
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(5), pick("rt", 4),
		}},
		{Name: "ycsb_update", Body: []codegen.Frag{
			codegen.Seq(8), env.ErrPath(), pick("sql", 7),
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(5), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Call{Fn: "txn_commit"},
			codegen.Seq(4), pick("rt", 4),
		}},
		// The scatter read (sharded machines with a cross-shard fraction):
		// the home-shard read plus a second read on a remote shard, no
		// two-phase commit — reads have nothing to prepare.
		{Name: "ycsb_mget", Body: []codegen.Frag{
			codegen.Seq(8), env.ErrPath(), pick("sql", 6),
			codegen.Call{Fn: "ycsb_read"},
			codegen.Call{Fn: "ycsb_read"},
			codegen.Seq(4), pick("rt", 4),
		}},
	}
}
