package ycsb_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/db"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

func smallScale() ycsb.Scale { return ycsb.Scale{Records: 800} }

func load(t *testing.T, sc ycsb.Scale, readPct int) (*ycsb.Bench, *db.Session) {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
	b, err := ycsb.Load(eng, sc, readPct)
	if err != nil {
		t.Fatal(err)
	}
	return b, eng.NewSession(1, nil)
}

func TestLoadPopulates(t *testing.T) {
	b, s := load(t, smallScale(), -1)
	if got := b.Users.Count(s); got != 800 {
		t.Fatalf("records = %d", got)
	}
	if b.ReadPct != ycsb.DefaultReadPct {
		t.Fatalf("readPct = %d, want default %d", b.ReadPct, ycsb.DefaultReadPct)
	}
	if err := b.Users.Validate(s); err != nil {
		t.Fatal(err)
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}
}

func TestMixKeepsInvariants(t *testing.T) {
	b, s := load(t, smallScale(), -1)
	r := rand.New(rand.NewSource(1))
	reads, updates := 0, 0
	for i := 0; i < 2000; i++ {
		in := b.Gen(r)
		b.RunTxn(s, in)
		if in.Kind == ycsb.Read {
			reads++
		} else {
			updates++
		}
	}
	if reads == 0 || updates == 0 {
		t.Fatalf("mix degenerate: %d reads, %d updates", reads, updates)
	}
	// The mix must actually be read-dominated with near-zero log traffic:
	// only updates commit (and therefore force the log).
	if frac := float64(reads) / 2000; frac < 0.90 || frac > 0.99 {
		t.Fatalf("read fraction %.3f outside the 95/5 band", frac)
	}
	if b.Eng.Committed != uint64(updates) {
		t.Fatalf("committed = %d, updates = %d (reads must not open transactions)", b.Eng.Committed, updates)
	}
	if b.Eng.WAL.Flushes > uint64(updates)+1 { // +1: the load checkpoint
		t.Fatalf("log flushes %d exceed update count %d", b.Eng.WAL.Flushes, updates)
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}
	if err := b.Users.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	b, s := load(t, smallScale(), 50)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		b.RunTxn(s, b.Gen(r))
	}
	// Corrupt one record's value behind the workload's back.
	var victim uint64
	for k := uint64(0); k < 800; k++ {
		if v, _ := b.ReadRecord(s, k); v > 0 {
			victim = k
			break
		}
	}
	packed, _ := b.Users.Search(s, victim)
	rid := db.UnpackRID(packed)
	row := b.UserTable.Fetch(s, rid)
	row[16] ^= 0xFF
	b.UserTable.Update(s, rid, row)
	if err := b.Check(s); err == nil {
		t.Fatal("Check missed a corrupted record")
	}
}

func TestWorkloadAdapter(t *testing.T) {
	wl, err := workload.New("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name() != "ycsb" {
		t.Fatalf("name = %q", wl.Name())
	}
	q := wl.QuickScale()
	if q.DataPages() >= wl.DataPages() {
		t.Fatalf("quick scale not smaller: %d vs %d", q.DataPages(), wl.DataPages())
	}
	if q.Name() != "ycsb" {
		t.Fatalf("quick name = %q", q.Name())
	}
	eng := db.NewEngine(db.Config{BufferPoolPages: q.DataPages() + 4096})
	inst, err := q.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession(1, nil)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		inst.RunTxn(s, inst.GenInput(r))
	}
	if err := inst.Check(s); err != nil {
		t.Fatal(err)
	}
}

func TestLabelOverridesName(t *testing.T) {
	w := ycsb.New()
	w.Label = "ycsb50"
	w.ReadPct = 50
	if w.Name() != "ycsb50" {
		t.Fatalf("name = %q", w.Name())
	}
	q := w.QuickScale()
	if q.Name() != "ycsb50" {
		t.Fatalf("quick scale dropped the label: %q", q.Name())
	}
}

// TestReadPctZeroIsPureUpdate is the regression test for the zero-value
// conflation bug: ReadPct: 0 used to silently become DefaultReadPct (95),
// making an explicit pure-update mix impossible. Now 0 is configurable and
// only a negative value selects the default, on both the plain and sharded
// paths.
func TestReadPctZeroIsPureUpdate(t *testing.T) {
	b, s := load(t, smallScale(), 0)
	if b.ReadPct != 0 {
		t.Fatalf("ReadPct = %d, want 0 (explicit zero must stick)", b.ReadPct)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		in := b.Gen(r)
		if in.Kind != ycsb.Update {
			t.Fatalf("gen %d produced a read under ReadPct=0", i)
		}
		b.RunTxn(s, in)
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}

	// The workload seam: an explicit 0 survives Load, a negative value means
	// "use the default", and out-of-range values fail fast.
	w := ycsb.NewScaled(smallScale())
	if w.ReadPct != ycsb.DefaultReadPct {
		t.Fatalf("NewScaled ReadPct = %d, want the explicit default %d", w.ReadPct, ycsb.DefaultReadPct)
	}
	w.ReadPct = 0
	eng := db.NewEngine(db.Config{BufferPoolPages: 4096})
	inst, err := w.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.(*ycsb.Bench).ReadPct; got != 0 {
		t.Fatalf("loaded ReadPct = %d, want 0", got)
	}
	w.ReadPct = 120
	if _, err := w.Load(db.NewEngine(db.Config{BufferPoolPages: 4096})); err == nil {
		t.Fatal("ReadPct = 120 must fail Load")
	}

	// Sharded path: same sentinel semantics.
	sw := ycsb.NewScaled(smallScale())
	sw.ReadPct = 0
	engs := []*db.Engine{
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 0}),
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 1}),
	}
	sinst, err := sw.LoadSharded(engs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sb := range sinst.(*ycsb.Sharded).Shards {
		if sb.ReadPct != 0 {
			t.Fatalf("shard %d ReadPct = %d, want 0", i, sb.ReadPct)
		}
	}
	sw.ReadPct = -1
	engs2 := []*db.Engine{
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 0}),
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 1}),
	}
	sinst2, err := sw.LoadSharded(engs2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sinst2.(*ycsb.Sharded).Shards[0].ReadPct; got != ycsb.DefaultReadPct {
		t.Fatalf("sharded ReadPct = %d, want default %d for negative sentinel", got, ycsb.DefaultReadPct)
	}
}

// TestZipfSkewConcentrates checks the Zipfian knob: theta > 0 draws a
// visibly skewed key stream (top key far above the uniform expectation),
// validation rejects out-of-range thetas, and the skewed variant names
// itself distinctly so memo and store keys cannot collide with uniform runs.
func TestZipfSkewConcentrates(t *testing.T) {
	w := ycsb.NewScaled(smallScale())
	w.ZipfTheta = 0.9
	if w.Name() != "ycsb-zipf90" {
		t.Fatalf("name = %q, want ycsb-zipf90", w.Name())
	}
	eng := db.NewEngine(db.Config{BufferPoolPages: 4096})
	inst, err := w.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	b := inst.(*ycsb.Bench)
	r := rand.New(rand.NewSource(11))
	counts := map[uint64]int{}
	const draws = 5000
	for i := 0; i < draws; i++ {
		counts[b.Gen(r).Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform expectation over 800 keys is ~6 draws; a 0.9-theta Zipfian's
	// top key should be an order of magnitude above that.
	if max < 60 {
		t.Fatalf("top key drawn %d times in %d draws; Zipfian skew missing", max, draws)
	}
	s := eng.NewSession(1, nil)
	for i := 0; i < 500; i++ {
		b.RunTxn(s, b.Gen(r))
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}

	w.ZipfTheta = 1.0
	if _, err := w.Load(db.NewEngine(db.Config{BufferPoolPages: 4096})); err == nil {
		t.Fatal("ZipfTheta = 1.0 must fail Load")
	}
}

func TestShardedPartitionAndScatter(t *testing.T) {
	w := ycsb.NewScaled(smallScale())
	w.CrossShardPct = 30
	engs := []*db.Engine{
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 0}),
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 1}),
	}
	sinst, err := w.LoadSharded(engs)
	if err != nil {
		t.Fatal(err)
	}
	sb := sinst.(*ycsb.Sharded)
	// Partition is exact and disjoint.
	total := 0
	for i, b := range sb.Shards {
		s := engs[i].NewSession(1, nil)
		n := b.Users.Count(s)
		if n == 0 {
			t.Fatalf("shard %d empty", i)
		}
		total += n
	}
	if total != smallScale().Records {
		t.Fatalf("union of shards holds %d records, want %d", total, smallScale().Records)
	}
	ss := []*db.Session{engs[0].NewSession(1, nil), engs[1].NewSession(1, nil)}
	r := rand.New(rand.NewSource(5))
	scatter := 0
	for i := 0; i < 1500; i++ {
		in := sinst.GenInput(r)
		if sinst.Remote(in) {
			scatter++
		}
		sinst.RunTxn(ss, in)
	}
	if scatter == 0 {
		t.Fatal("no scatter reads generated with CrossShardPct=30")
	}
	// Scatter reads are read-only: no engine ever saw a distributed commit.
	for i, e := range engs {
		for _, rec := range e.WAL.Records {
			if rec.Kind == db.LogPrepare {
				t.Fatalf("shard %d logged a prepare — ycsb must never 2PC", i)
			}
		}
	}
	check := []*db.Session{engs[0].NewSession(2, nil), engs[1].NewSession(2, nil)}
	if err := sinst.Check(check); err != nil {
		t.Fatal(err)
	}
}
