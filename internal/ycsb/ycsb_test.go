package ycsb_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/db"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

func smallScale() ycsb.Scale { return ycsb.Scale{Records: 800} }

func load(t *testing.T, sc ycsb.Scale, readPct int) (*ycsb.Bench, *db.Session) {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
	b, err := ycsb.Load(eng, sc, readPct)
	if err != nil {
		t.Fatal(err)
	}
	return b, eng.NewSession(1, nil)
}

func TestLoadPopulates(t *testing.T) {
	b, s := load(t, smallScale(), 0)
	if got := b.Users.Count(s); got != 800 {
		t.Fatalf("records = %d", got)
	}
	if b.ReadPct != ycsb.DefaultReadPct {
		t.Fatalf("readPct = %d, want default %d", b.ReadPct, ycsb.DefaultReadPct)
	}
	if err := b.Users.Validate(s); err != nil {
		t.Fatal(err)
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}
}

func TestMixKeepsInvariants(t *testing.T) {
	b, s := load(t, smallScale(), 0)
	r := rand.New(rand.NewSource(1))
	reads, updates := 0, 0
	for i := 0; i < 2000; i++ {
		in := b.Gen(r)
		b.RunTxn(s, in)
		if in.Kind == ycsb.Read {
			reads++
		} else {
			updates++
		}
	}
	if reads == 0 || updates == 0 {
		t.Fatalf("mix degenerate: %d reads, %d updates", reads, updates)
	}
	// The mix must actually be read-dominated with near-zero log traffic:
	// only updates commit (and therefore force the log).
	if frac := float64(reads) / 2000; frac < 0.90 || frac > 0.99 {
		t.Fatalf("read fraction %.3f outside the 95/5 band", frac)
	}
	if b.Eng.Committed != uint64(updates) {
		t.Fatalf("committed = %d, updates = %d (reads must not open transactions)", b.Eng.Committed, updates)
	}
	if b.Eng.WAL.Flushes > uint64(updates)+1 { // +1: the load checkpoint
		t.Fatalf("log flushes %d exceed update count %d", b.Eng.WAL.Flushes, updates)
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}
	if err := b.Users.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	b, s := load(t, smallScale(), 50)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		b.RunTxn(s, b.Gen(r))
	}
	// Corrupt one record's value behind the workload's back.
	var victim uint64
	for k := uint64(0); k < 800; k++ {
		if v, _ := b.ReadRecord(s, k); v > 0 {
			victim = k
			break
		}
	}
	packed, _ := b.Users.Search(s, victim)
	rid := db.UnpackRID(packed)
	row := b.UserTable.Fetch(s, rid)
	row[16] ^= 0xFF
	b.UserTable.Update(s, rid, row)
	if err := b.Check(s); err == nil {
		t.Fatal("Check missed a corrupted record")
	}
}

func TestWorkloadAdapter(t *testing.T) {
	wl, err := workload.New("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name() != "ycsb" {
		t.Fatalf("name = %q", wl.Name())
	}
	q := wl.QuickScale()
	if q.DataPages() >= wl.DataPages() {
		t.Fatalf("quick scale not smaller: %d vs %d", q.DataPages(), wl.DataPages())
	}
	if q.Name() != "ycsb" {
		t.Fatalf("quick name = %q", q.Name())
	}
	eng := db.NewEngine(db.Config{BufferPoolPages: q.DataPages() + 4096})
	inst, err := q.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession(1, nil)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		inst.RunTxn(s, inst.GenInput(r))
	}
	if err := inst.Check(s); err != nil {
		t.Fatal(err)
	}
}

func TestLabelOverridesName(t *testing.T) {
	w := ycsb.New()
	w.Label = "ycsb50"
	w.ReadPct = 50
	if w.Name() != "ycsb50" {
		t.Fatalf("name = %q", w.Name())
	}
	q := w.QuickScale()
	if q.Name() != "ycsb50" {
		t.Fatalf("quick scale dropped the label: %q", q.Name())
	}
}

func TestShardedPartitionAndScatter(t *testing.T) {
	w := ycsb.NewScaled(smallScale())
	w.CrossShardPct = 30
	engs := []*db.Engine{
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 0}),
		db.NewEngine(db.Config{BufferPoolPages: 4096, Shard: 1}),
	}
	sinst, err := w.LoadSharded(engs)
	if err != nil {
		t.Fatal(err)
	}
	sb := sinst.(*ycsb.Sharded)
	// Partition is exact and disjoint.
	total := 0
	for i, b := range sb.Shards {
		s := engs[i].NewSession(1, nil)
		n := b.Users.Count(s)
		if n == 0 {
			t.Fatalf("shard %d empty", i)
		}
		total += n
	}
	if total != smallScale().Records {
		t.Fatalf("union of shards holds %d records, want %d", total, smallScale().Records)
	}
	ss := []*db.Session{engs[0].NewSession(1, nil), engs[1].NewSession(1, nil)}
	r := rand.New(rand.NewSource(5))
	scatter := 0
	for i := 0; i < 1500; i++ {
		in := sinst.GenInput(r)
		if sinst.Remote(in) {
			scatter++
		}
		sinst.RunTxn(ss, in)
	}
	if scatter == 0 {
		t.Fatal("no scatter reads generated with CrossShardPct=30")
	}
	// Scatter reads are read-only: no engine ever saw a distributed commit.
	for i, e := range engs {
		for _, rec := range e.WAL.Records {
			if rec.Kind == db.LogPrepare {
				t.Fatalf("shard %d logged a prepare — ycsb must never 2PC", i)
			}
		}
	}
	check := []*db.Session{engs[0].NewSession(2, nil), engs[1].NewSession(2, nil)}
	if err := sinst.Check(check); err != nil {
		t.Fatal(err)
	}
}
