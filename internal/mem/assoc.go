// Package mem models the memory system below the L1 instruction cache: the
// per-CPU data cache, the unified second-level cache (instructions + data,
// the subject of Figure 14), and a minimal invalidation-based sharing model
// that produces the data communication misses which dilute code-layout gains
// on multiprocessor runs (Section 5).
package mem

import (
	"fmt"
	"math/bits"
)

// assoc is a set-associative LRU cache core at line granularity with a small
// per-frame metadata byte.
type assoc struct {
	lineShift uint
	setMask   uint64
	ways      int
	tags      []uint64 // line+1; 0 invalid
	lastUse   []uint64
	meta      []uint8
	clock     uint64
}

func newAssoc(sizeBytes, lineBytes, ways int) *assoc {
	if sizeBytes%(lineBytes*ways) != 0 {
		panic(fmt.Sprintf("mem: size %d not divisible by line*ways", sizeBytes))
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: set count %d not a power of two", sets))
	}
	return &assoc{
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		setMask:   uint64(sets - 1),
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		lastUse:   make([]uint64, sets*ways),
		meta:      make([]uint8, sets*ways),
	}
}

// access looks up a line; on a miss it fills with the given metadata and
// reports the victim's metadata (ok=false if the fill used an invalid way).
func (a *assoc) access(line uint64, fillMeta uint8) (hit bool, victimMeta uint8, hadVictim bool) {
	a.clock++
	set := int(line & a.setMask)
	base := set * a.ways
	tag := line + 1
	victim := base
	for w := 0; w < a.ways; w++ {
		f := base + w
		switch {
		case a.tags[f] == tag:
			a.lastUse[f] = a.clock
			return true, a.meta[f], false
		case a.tags[f] == 0:
			victim = f
		case a.tags[victim] != 0 && a.lastUse[f] < a.lastUse[victim]:
			victim = f
		}
	}
	hadVictim = a.tags[victim] != 0
	victimMeta = a.meta[victim]
	a.tags[victim] = tag
	a.lastUse[victim] = a.clock
	a.meta[victim] = fillMeta
	return false, victimMeta, hadVictim
}

// invalidate removes the line if present.
func (a *assoc) invalidate(line uint64) bool {
	set := int(line & a.setMask)
	base := set * a.ways
	tag := line + 1
	for w := 0; w < a.ways; w++ {
		if a.tags[base+w] == tag {
			a.tags[base+w] = 0
			return true
		}
	}
	return false
}

// lineOf maps an address to its line number.
func (a *assoc) lineOf(addr uint64) uint64 { return addr >> a.lineShift }
