package mem_test

import (
	"testing"

	"codelayout/internal/mem"
	"codelayout/internal/trace"
)

func dref(cpu uint8, addr uint64, bytes int32, write bool) trace.DataRef {
	return trace.DataRef{Addr: addr, Bytes: bytes, CPU: cpu, Write: write}
}

func smallConfig(cpus int) mem.Config {
	return mem.Config{
		CPUs:         cpus,
		L1DSizeBytes: 1024, L1DLineBytes: 64, L1DAssoc: 2,
		L2SizeBytes: 8192, L2LineBytes: 64, L2Assoc: 2,
	}
}

func TestL1DHitMiss(t *testing.T) {
	s := mem.NewSystem(smallConfig(1))
	s.Data(dref(0, 0x1000, 8, false))
	s.Data(dref(0, 0x1000, 8, false))
	if s.Stats.L1DMisses != 1 || s.Stats.L1DAccesses != 2 {
		t.Fatalf("l1d: misses=%d accesses=%d", s.Stats.L1DMisses, s.Stats.L1DAccesses)
	}
	if s.Stats.L2Accesses[mem.KindData] != 1 {
		t.Fatalf("l2 data accesses = %d", s.Stats.L2Accesses[mem.KindData])
	}
}

func TestInstrMissesFlowToL2(t *testing.T) {
	s := mem.NewSystem(smallConfig(1))
	s.FetchMiss(0x2000, 0)
	s.FetchMiss(0x2000, 0)
	if s.Stats.L2Accesses[mem.KindInstr] != 2 || s.Stats.L2Misses[mem.KindInstr] != 1 {
		t.Fatalf("l2 instr: acc=%d miss=%d",
			s.Stats.L2Accesses[mem.KindInstr], s.Stats.L2Misses[mem.KindInstr])
	}
}

func TestCrossKindEviction(t *testing.T) {
	// Fill one L2 set with data lines, then push an instruction line into
	// the same set and check the cross-kind eviction counter.
	cfg := smallConfig(1)
	s := mem.NewSystem(cfg)
	// 8KB 2-way 64B lines -> 64 sets; same set every 64*64 = 4096 bytes.
	s.Data(dref(0, 0, 4, false))
	s.Data(dref(0, 4096, 4, false))
	s.FetchMiss(8192, 0) // 3rd line in set 0, evicts a data line
	if s.Stats.L2EvictCross[mem.KindInstr][mem.KindData] != 1 {
		t.Fatalf("cross evictions = %v", s.Stats.L2EvictCross)
	}
}

func TestSharingInvalidation(t *testing.T) {
	s := mem.NewSystem(smallConfig(2))
	addr := uint64(0x4000)
	// CPU 0 reads and caches the line.
	s.Data(dref(0, addr, 8, false))
	if s.Stats.L1DMisses != 1 {
		t.Fatalf("misses = %d", s.Stats.L1DMisses)
	}
	s.Data(dref(0, addr, 8, false)) // warm hit
	if s.Stats.L1DMisses != 1 {
		t.Fatal("expected hit")
	}
	// CPU 1 writes the line: invalidates CPU 0's copies.
	s.Data(dref(1, addr, 8, true))
	if s.Stats.Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
	// CPU 0 re-reads: must miss again and count as a communication read.
	pre := s.Stats.CommRead
	s.Data(dref(0, addr, 8, false))
	if s.Stats.CommRead != pre+1 {
		t.Fatalf("comm reads = %d, want %d", s.Stats.CommRead, pre+1)
	}
}

func TestWriteBySameCPUDoesNotInvalidate(t *testing.T) {
	s := mem.NewSystem(smallConfig(2))
	addr := uint64(0x4000)
	s.Data(dref(0, addr, 8, true))
	s.Data(dref(0, addr, 8, true))
	if s.Stats.CommWrite != 0 || s.Stats.Invalidations != 0 {
		t.Fatalf("self writes caused coherence traffic: %+v", s.Stats)
	}
}

func TestMoreCPUsMoreCommunication(t *testing.T) {
	// The same logically-shared write pattern must produce more
	// communication misses with more CPUs touching the data — this is the
	// effect that dilutes layout gains in the paper's 4-processor runs.
	commFor := func(cpus int) uint64 {
		s := mem.NewSystem(smallConfig(cpus))
		for i := 0; i < 100; i++ {
			cpu := uint8(i % cpus)
			s.Data(dref(cpu, 0x8000, 8, true))
			s.Data(dref(cpu, 0x8000, 8, false))
		}
		return s.Stats.CommRead + s.Stats.CommWrite
	}
	if one, four := commFor(1), commFor(4); one != 0 || four == 0 {
		t.Fatalf("comm: 1cpu=%d 4cpu=%d", one, four)
	}
}
