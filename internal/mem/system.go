package mem

import (
	"codelayout/internal/trace"
)

// Kind classifies second-level cache lines.
type Kind uint8

const (
	// KindInstr marks instruction lines.
	KindInstr Kind = iota
	// KindData marks data lines.
	KindData
)

// Config describes the memory system below L1I.
type Config struct {
	CPUs int

	L1DSizeBytes int // per CPU
	L1DLineBytes int
	L1DAssoc     int

	L2SizeBytes int // per CPU (board cache)
	L2LineBytes int
	L2Assoc     int
}

// DefaultConfig is the paper's base SimOS configuration: 64KB 2-way L1D with
// 64-byte lines and a 1.5MB 6-way unified L2.
func DefaultConfig(cpus int) Config {
	return Config{
		CPUs:         cpus,
		L1DSizeBytes: 64 << 10,
		L1DLineBytes: 64,
		L1DAssoc:     2,
		L2SizeBytes:  1536 << 10,
		L2LineBytes:  64,
		L2Assoc:      6,
	}
}

// Stats accumulates memory-system results across all CPUs.
type Stats struct {
	L1DAccesses uint64
	L1DMisses   uint64

	L2Accesses   [2]uint64    // by Kind
	L2Misses     [2]uint64    // by Kind
	L2EvictCross [2][2]uint64 // [filler kind][victim kind]

	// CommRead/CommWrite count data-line transfers caused by sharing across
	// CPUs (the "communication misses" that grow with processor count).
	CommRead      uint64
	CommWrite     uint64
	Invalidations uint64
}

// System is the per-machine memory hierarchy below the instruction caches.
type System struct {
	cfg Config
	l1d []*assoc
	l2  []*assoc
	// writer tracks, per 64-byte data line, the CPU that last wrote it
	// (+1; 0 = never written); share tracks which CPUs have fetched it
	// since the last invalidation. Together they form a minimal
	// memory-side directory for classifying communication misses and for
	// invalidating remote copies on writes.
	writer map[uint64]uint8
	share  map[uint64]uint64
	Stats  Stats
}

// dirShift is the directory grain (64-byte lines).
const dirShift = 6

// NewSystem creates the memory system.
func NewSystem(cfg Config) *System {
	s := &System{
		cfg:    cfg,
		writer: make(map[uint64]uint8, 1<<16),
		share:  make(map[uint64]uint64, 1<<16),
	}
	for i := 0; i < cfg.CPUs; i++ {
		s.l1d = append(s.l1d, newAssoc(cfg.L1DSizeBytes, cfg.L1DLineBytes, cfg.L1DAssoc))
		s.l2 = append(s.l2, newAssoc(cfg.L2SizeBytes, cfg.L2LineBytes, cfg.L2Assoc))
	}
	return s
}

// FetchMiss feeds an L1 instruction-cache miss into the unified L2 of the
// given CPU. Wire it as the ICache miss callback.
func (s *System) FetchMiss(lineAddr uint64, cpu int) {
	s.l2Access(cpu, lineAddr, KindInstr)
}

// Data implements trace.DataSink: the reference walks L1D lines; L1D misses
// go to the unified L2; writes maintain the sharing directory.
func (s *System) Data(r trace.DataRef) {
	cpu := int(r.CPU)
	if cpu >= len(s.l1d) {
		cpu = len(s.l1d) - 1
	}
	l1 := s.l1d[cpu]
	first := l1.lineOf(r.Addr)
	last := l1.lineOf(r.Addr + uint64(r.Bytes) - 1)
	for ln := first; ln <= last; ln++ {
		addr := ln << l1.lineShift
		if r.Write {
			s.write(cpu, addr)
		}
		s.Stats.L1DAccesses++
		hit, _, _ := l1.access(ln, 0)
		if hit {
			continue
		}
		s.Stats.L1DMisses++
		s.share[addr>>dirShift] |= 1 << uint(cpu)
		s.l2Access(cpu, addr, KindData)
	}
}

// write updates the sharing directory: a store to a line cached by any other
// CPU invalidates the remote copies, forcing the communication misses a real
// invalidation protocol would produce.
func (s *System) write(cpu int, lineAddr uint64) {
	ln := lineAddr >> dirShift
	self := uint64(1) << uint(cpu)
	others := s.share[ln] &^ self
	prev := s.writer[ln]
	if others == 0 && prev == uint8(cpu)+1 {
		return // already exclusively owned
	}
	s.writer[ln] = uint8(cpu) + 1
	s.share[ln] = self
	if others == 0 {
		if prev != 0 && prev != uint8(cpu)+1 {
			s.Stats.CommWrite++ // ownership transfer of an uncached dirty line
		}
		return
	}
	s.Stats.CommWrite++
	for c := 0; c < s.cfg.CPUs; c++ {
		if c == cpu || others&(1<<uint(c)) == 0 {
			continue
		}
		inv := false
		if s.l1d[c].invalidate(s.l1d[c].lineOf(lineAddr)) {
			inv = true
		}
		if s.l2[c].invalidate(s.l2[c].lineOf(lineAddr)) {
			inv = true
		}
		if inv {
			s.Stats.Invalidations++
		}
	}
}

func (s *System) l2Access(cpu int, addr uint64, kind Kind) {
	l2 := s.l2[cpu]
	ln := l2.lineOf(addr)
	s.Stats.L2Accesses[kind]++
	hit, victimMeta, hadVictim := l2.access(ln, uint8(kind))
	if hit {
		return
	}
	s.Stats.L2Misses[kind]++
	if hadVictim {
		s.Stats.L2EvictCross[kind][victimMeta]++
	}
	if kind == KindData {
		if w := s.writer[addr>>6]; w != 0 && int(w-1) != cpu {
			s.Stats.CommRead++
		}
	}
}
