package search_test

import (
	"strings"
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/ordere"
	"codelayout/internal/search"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

// tinyOptions mirrors the expt test helper: the smallest session that still
// runs every pipeline meaningfully.
func tinyOptions(wl workload.Workload) expt.Options {
	o := expt.QuickOptions()
	o.Transactions = 60
	o.WarmupTxns = 15
	o.Train.Txns = 150
	o.CPUs = 2
	o.ProcsPerCPU = 4
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	o.Workload = wl
	return o
}

func tinyTPCB() workload.Workload {
	return tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 150})
}

func tinyOrdere() workload.Workload {
	return ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})
}

func tinyYCSB() workload.Workload {
	return ycsb.NewScaled(ycsb.Scale{Records: 4_000})
}

// TestSearchDeterminism pins the engine's reproducibility contract: the same
// seed, population and generations produce a bit-identical winner spec and
// fitness trajectory across runs — including across different evaluation
// worker-pool sizes, because the rng is only consumed serially and fitness
// comes from memoized deterministic simulations.
func TestSearchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	run := func(workers int) *search.Result {
		res, err := search.Run(tinyOptions(tinyTPCB()), search.Config{
			Population:  5,
			Generations: 3,
			Seed:        11,
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Winner.Spec != b.Winner.Spec || a.Winner.Fitness != b.Winner.Fitness {
		t.Fatalf("winners differ across worker pools:\n  1 worker:  %q %.6f\n  4 workers: %q %.6f",
			a.Winner.Spec, a.Winner.Fitness, b.Winner.Spec, b.Winner.Fitness)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		ga, gb := a.Trajectory[i], b.Trajectory[i]
		if ga.GenBest.Spec != gb.GenBest.Spec || ga.GenBest.Fitness != gb.GenBest.Fitness ||
			ga.Best.Spec != gb.Best.Spec || ga.Best.Fitness != gb.Best.Fitness {
			t.Fatalf("gen %d diverges across worker pools:\n  1 worker:  %q %.6f (best %q %.6f)\n  4 workers: %q %.6f (best %q %.6f)",
				ga.Gen, ga.GenBest.Spec, ga.GenBest.Fitness, ga.Best.Spec, ga.Best.Fitness,
				gb.GenBest.Spec, gb.GenBest.Fitness, gb.Best.Spec, gb.Best.Fitness)
		}
	}
	// Same engine, different seed: the breeding stream must actually change.
	c, err := search.Run(tinyOptions(tinyTPCB()), search.Config{
		Population: 5, Generations: 3, Seed: 12, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = c // winners may legitimately coincide; this run just proves a different seed completes
}

// TestSearchBeatsHandBuilt is the pinned acceptance test: at a fixed seed the
// evolved winner scores at least as well as the best hand-built combo on the
// training workload, the transfer table reports winner-vs-fusion deltas for
// all three workloads, and memo dedup keeps executed simulations strictly
// below the requested population x generations evaluations.
func TestSearchBeatsHandBuilt(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := tinyOptions(tinyTPCB())
	cfg := search.Config{
		Population:  8,
		Generations: 4,
		Seed:        7,
		Objective:   search.ObjectiveInstrPerTxn,
		Workloads: []search.WorkloadWeight{
			{Workload: tinyTPCB(), Weight: 2},
			{Workload: tinyOrdere(), Weight: 1},
			{Workload: tinyYCSB(), Weight: 1},
		},
	}
	res, err := search.Run(o, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The winner never loses to a hand-built combo: the combos seed the
	// initial population and elitism preserves the best genome.
	for _, b := range res.Baselines {
		if res.Winner.Fitness > b.Fitness {
			t.Errorf("winner %q (%.4f) is worse than hand-built %q (%.4f)",
				res.Winner.Spec, res.Winner.Fitness, b.Spec, b.Fitness)
		}
	}
	if res.Winner.Fitness >= 1 {
		t.Errorf("winner %q fitness %.4f does not improve on base (1.0)", res.Winner.Spec, res.Winner.Fitness)
	}

	// Transfer: the table carries a winner row and a fusion delta for every
	// workload, training and transplanted alike.
	rendered := res.Table.String()
	for _, wl := range []string{"tpcb", "ordere", "ycsb"} {
		if !strings.Contains(rendered, wl) {
			t.Errorf("transfer table is missing workload %q:\n%s", wl, rendered)
		}
		for _, layout := range []string{"base", "ipchain", "fusion", "winner"} {
			if _, ok := winnerRow(res, wl, layout); !ok {
				t.Errorf("no %s objective recorded for workload %q", layout, wl)
			}
		}
	}
	if !strings.Contains(rendered, res.Winner.Spec) {
		t.Errorf("table notes do not carry the winner spec %q:\n%s", res.Winner.Spec, rendered)
	}

	// Dedup accounting: per evaluation session, executed simulations stay
	// strictly below the requested population x generations evaluations —
	// elitism and convergence guarantee repeats, the memo collapses them.
	if res.Requested != cfg.Population*len(res.Trajectory) {
		t.Errorf("requested = %d, want population x generations = %d",
			res.Requested, cfg.Population*len(res.Trajectory))
	}
	perSession := res.Executed / uint64(len(cfg.Workloads))
	if perSession >= uint64(res.Requested) {
		t.Errorf("memo dedup failed: %d simulations per workload for %d requested evaluations",
			perSession, res.Requested)
	}
	if res.Unique >= res.Requested {
		t.Errorf("population converged nowhere: %d unique specs for %d requested", res.Unique, res.Requested)
	}
	if res.Memo.Measure.Hits == 0 {
		t.Error("expected measurement memo hits during the search")
	}
	t.Logf("winner %q fitness %.4f; %d requested, %d unique, %d executed (%d/session)",
		res.Winner.Spec, res.Winner.Fitness, res.Requested, res.Unique, res.Executed, perSession)
	for _, g := range res.Trajectory {
		t.Logf("gen %d: best %.4f (%s)", g.Gen, g.Best.Fitness, g.Best.Spec)
	}
}

// winnerRow extracts the per-workload objective recorded for a layout.
func winnerRow(res *search.Result, wl, layout string) (float64, bool) {
	if layout == "winner" {
		v, ok := res.Winner.PerWorkload[wl]
		return v, ok
	}
	for _, b := range res.Baselines {
		if b.Spec == layout {
			v, ok := b.PerWorkload[wl]
			return v, ok
		}
	}
	return 0, false
}

// TestRawSpecMatchesNamedCombo pins the expt bridge the search relies on: a
// raw pipeline spec measured through Session.Measure produces the same
// machine results as its named-combo equivalent.
func TestRawSpecMatchesNamedCombo(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s, err := expt.NewSession(tinyOptions(tinyTPCB()))
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[string]string{
		"ipchain": "chain,split:none,ipchain,porder:ph,materialize",
		"all":     "chain,split:fine,porder:ph,materialize",
	}
	for named, spec := range pairs {
		a, err := s.Measure(named, s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Measure(spec, s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		if a.Res != b.Res {
			t.Errorf("raw spec %q diverges from named combo %q:\n%+v\n%+v", spec, named, a.Res, b.Res)
		}
	}
}
