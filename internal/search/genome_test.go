package search

import (
	"math/rand"
	"strings"
	"testing"

	"codelayout/internal/core"
)

func TestGenomeValidation(t *testing.T) {
	good := []string{
		"materialize", // the do-nothing layout is a legal point
		"chain,materialize",
		"chain,split:fine,porder:ph,materialize",
		core.IPChainSpec,
		core.TxFuseSpec,
		"chain,split:hotcold@4,ipchain:8,porder:orig,cfa:65536/16384,align:8,materialize",
		"split:none,txfuse:15,porder:ph,materialize",
	}
	for _, spec := range good {
		g, err := ParseGenome(spec)
		if err != nil {
			t.Errorf("ParseGenome(%q): %v", spec, err)
			continue
		}
		if g.Spec() != spec {
			t.Errorf("ParseGenome(%q).Spec() = %q, want round-trip", spec, g.Spec())
		}
	}
	bad := map[string]string{
		"":                                       "empty",
		"chain":                                  "must end with materialize",
		"chain,materialize,porder:ph":            "must end with materialize",
		"chain,chain,materialize":                "repeats",
		"materialize,materialize":                "non-terminal",
		"porder:ph,chain,materialize":            "stage order",
		"porder:ph,split:fine,materialize":       "stage order",
		"chain,ipchain,txfuse,materialize":       "stage order",
		"chain,bogus,materialize":                "unknown pass",
		"chain,split:hotcold@0,materialize":      "split",
		"chain,ipchain:nope,materialize":         "ipchain",
		"chain,split:fine,porder:zz,materialize": "unknown order mode",
	}
	for spec, frag := range bad {
		if _, err := ParseGenome(spec); err == nil {
			t.Errorf("ParseGenome(%q) accepted an illegal spec", spec)
		} else if !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseGenome(%q) error %q does not mention %q", spec, err, frag)
		}
	}
}

// TestUnknownPassErrorSurfaces pins that genome validation surfaces core's
// typed unknown-pass error, registry listing included.
func TestUnknownPassErrorSurfaces(t *testing.T) {
	_, err := ParseGenome("chain,warp9,materialize")
	if err == nil {
		t.Fatal("expected an error for an unknown pass")
	}
	var upe *core.UnknownPassError
	if !errorsAs(err, &upe) {
		t.Fatalf("error %T is not *core.UnknownPassError: %v", err, err)
	}
	if upe.Pass != "warp9" || len(upe.Valid) == 0 {
		t.Fatalf("unexpected typed error contents: %+v", upe)
	}
	if !strings.Contains(err.Error(), "txfuse") {
		t.Fatalf("error should list valid passes: %v", err)
	}
}

// errorsAs avoids importing errors just for one call site.
func errorsAs(err error, target **core.UnknownPassError) bool {
	for err != nil {
		if e, ok := err.(*core.UnknownPassError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestCatalogsAreLegal cross-checks every mutation-catalog value against the
// pass registry, so a catalog typo fails in tests, not mid-search.
func TestCatalogsAreLegal(t *testing.T) {
	check := func(name, arg string) {
		t.Helper()
		spec := name
		if arg != "" {
			spec += ":" + arg
		}
		if _, err := core.NewPass(spec); err != nil {
			t.Errorf("catalog value %q is not a legal pass: %v", spec, err)
		}
	}
	for _, v := range splitModes {
		check("split", v)
	}
	for _, v := range ipchainMins {
		check("ipchain", v)
	}
	for _, v := range txfuseBudgets {
		check("txfuse", v)
	}
	for _, v := range porderModes {
		check("porder", v)
	}
	for _, v := range alignWords {
		check("align", v)
	}
	for _, v := range cfaAreas {
		check("cfa", v)
	}
}

// TestOperatorsPreserveLegality fuzzes the operators: every random genome,
// mutation, and crossover product must validate, and Mutate must actually
// change the spec.
func TestOperatorsPreserveLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := make([]Genome, 0, 64)
	for i := 0; i < 64; i++ {
		g := RandomGenome(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomGenome produced an illegal genome %q: %v", g.Spec(), err)
		}
		pool = append(pool, g)
	}
	for i := 0; i < 500; i++ {
		parent := pool[rng.Intn(len(pool))]
		child := Mutate(parent, rng)
		if err := child.Validate(); err != nil {
			t.Fatalf("Mutate(%q) -> illegal %q: %v", parent.Spec(), child.Spec(), err)
		}
		if child.Spec() == parent.Spec() {
			t.Fatalf("Mutate(%q) returned an identical spec", parent.Spec())
		}
		a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		cross := Crossover(a, b, rng)
		if err := cross.Validate(); err != nil {
			t.Fatalf("Crossover(%q, %q) -> illegal %q: %v", a.Spec(), b.Spec(), cross.Spec(), err)
		}
	}
}

// TestHandBuiltSeedsValidate keeps the seed list in sync with the registry.
func TestHandBuiltSeedsValidate(t *testing.T) {
	seeds, err := handBuiltSeeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) < 3 {
		t.Fatalf("want at least the three combo seeds, got %d", len(seeds))
	}
	specs := make(map[string]bool)
	for _, g := range seeds {
		specs[g.Spec()] = true
	}
	for _, want := range []string{core.IPChainSpec, core.TxFuseSpec} {
		if !specs[want] {
			t.Errorf("seed list is missing the hand-built combo %q", want)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, s := range []string{"", "instr", "miss", "p50", "p99"} {
		if _, err := ParseObjective(s); err != nil {
			t.Errorf("ParseObjective(%q): %v", s, err)
		}
	}
	if _, err := ParseObjective("tps"); err == nil {
		t.Error("ParseObjective accepted an unknown objective")
	}
}
