package search

import "math/rand"

// The parameter catalogs the operators draw from. Every value must be a
// legal argument of its pass factory — genome_test cross-checks each against
// the registry so a catalog typo fails fast, not mid-search.
var (
	splitModes = []string{"none", "fine", "hotcold", "hotcold@2", "hotcold@4", "hotcold@8"}
	// ipchainMins are ipchain's merge thresholds (minimum call-edge weight);
	// "" is the classic any-executed-edge merge.
	ipchainMins = []string{"", "2", "4", "8", "16", "32"}
	// txfuseBudgets are txfuse clone budgets in percent of pre-fusion hot words.
	txfuseBudgets = []string{"2", "5", "8", "10", "15", "20"}
	porderModes   = []string{"ph", "orig"}
	alignWords    = []string{"1", "2", "8", "16"}
	cfaAreas      = []string{"65536/8192", "65536/16384", "65536/32768"}
)

func pick(rng *rand.Rand, vals []string) string { return vals[rng.Intn(len(vals))] }

// randomFuse draws a unit-merging stage: absent, ipchain with a random merge
// threshold, or txfuse with a random clone budget.
func randomFuse(rng *rand.Rand) *Gene {
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		return &Gene{Name: "ipchain", Arg: pick(rng, ipchainMins)}
	default:
		return &Gene{Name: "txfuse", Arg: pick(rng, txfuseBudgets)}
	}
}

// RandomGenome draws a uniform-ish random point of the search space: each
// structural stage present or absent with a fixed probability, parameters
// drawn from the catalogs. The result is always a legal pipeline.
func RandomGenome(rng *rand.Rand) Genome {
	var st stages
	if rng.Float64() < 0.85 {
		st.chain = &Gene{Name: "chain"}
	}
	st.split = &Gene{Name: "split", Arg: pick(rng, splitModes)}
	st.fuse = randomFuse(rng)
	st.order = &Gene{Name: "porder", Arg: pick(rng, porderModes)}
	if rng.Float64() < 0.25 {
		st.cfa = &Gene{Name: "cfa", Arg: pick(rng, cfaAreas)}
	}
	if rng.Float64() < 0.25 {
		st.align = &Gene{Name: "align", Arg: pick(rng, alignWords)}
	}
	return st.genome()
}

// Mutate returns a mutated copy of the genome: one randomly chosen stage
// edit (toggle a stage, swap a fusion pass, or re-draw a parameter),
// retried until the spec actually changes. The result is always legal — the
// operators edit the stage decomposition and reassemble in canonical order,
// so no repair pass is needed.
func Mutate(g Genome, rng *rand.Rand) Genome {
	before := g.Spec()
	for attempt := 0; attempt < 32; attempt++ {
		st := g.stages()
		switch rng.Intn(6) {
		case 0: // toggle basic-block chaining
			if st.chain == nil {
				st.chain = &Gene{Name: "chain"}
			} else {
				st.chain = nil
			}
		case 1: // re-draw the split mode / hot threshold
			st.split = &Gene{Name: "split", Arg: pick(rng, splitModes)}
		case 2: // swap or reparameterize the unit-merging stage
			st.fuse = randomFuse(rng)
		case 3: // flip the ordering variant
			st.order = &Gene{Name: "porder", Arg: pick(rng, porderModes)}
		case 4: // toggle or reparameterize the conflict-free area
			if st.cfa == nil || rng.Intn(2) == 0 {
				st.cfa = &Gene{Name: "cfa", Arg: pick(rng, cfaAreas)}
			} else {
				st.cfa = nil
			}
		case 5: // toggle or reparameterize the unit alignment
			if st.align == nil || rng.Intn(2) == 0 {
				st.align = &Gene{Name: "align", Arg: pick(rng, alignWords)}
			} else {
				st.align = nil
			}
		}
		if out := st.genome(); out.Spec() != before {
			return out
		}
	}
	return g.Clone() // pathological rng stream; keep the parent
}

// Crossover mixes two parents stage-wise: each structural stage is inherited
// from one parent or the other (absence included), reassembled in canonical
// order — always legal, no repair needed.
func Crossover(a, b Genome, rng *rand.Rand) Genome {
	sa, sb := a.stages(), b.stages()
	var st stages
	choose := func(x, y *Gene) *Gene {
		src := x
		if rng.Intn(2) == 1 {
			src = y
		}
		if src == nil {
			return nil
		}
		return &Gene{Name: src.Name, Arg: src.Arg}
	}
	st.chain = choose(sa.chain, sb.chain)
	st.split = choose(sa.split, sb.split)
	st.fuse = choose(sa.fuse, sb.fuse)
	st.order = choose(sa.order, sb.order)
	st.cfa = choose(sa.cfa, sb.cfa)
	st.align = choose(sa.align, sb.align)
	return st.genome()
}
