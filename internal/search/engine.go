package search

import (
	"fmt"
	"math/rand"
	"sort"

	"codelayout/internal/core"
	"codelayout/internal/expt"
	"codelayout/internal/stats"
	"codelayout/internal/workload"
)

// Objective selects the fitness metric a genome is scored on. All
// objectives are minimized.
type Objective string

const (
	// ObjectiveInstrPerTxn scores busy (app+kernel) instructions plus modeled
	// fetch-stall instruction-times per committed transaction — the
	// time-per-transaction (throughput) view. Raw fetched-instruction counts
	// are nearly layout-invariant; the stall term is where locality pays.
	ObjectiveInstrPerTxn Objective = "instr"
	// ObjectiveMissRatio scores the 64KB/128B/4-way application L1I miss
	// ratio — the paper's primary locality metric.
	ObjectiveMissRatio Objective = "miss"
	// ObjectiveP50 and ObjectiveP99 score modeled per-transaction latency
	// percentiles on the fetch-stall clock.
	ObjectiveP50 Objective = "p50"
	ObjectiveP99 Objective = "p99"
)

// DefaultStallPenalty is the fetch-stall penalty (instruction-times per L1I
// miss) Run installs when a stall-sensitive objective (instr, p50, p99) is
// searched with Options.FetchStallPenaltyInstr zero — without a penalty,
// layout locality cannot move time at all.
const DefaultStallPenalty = 40

// ParseObjective resolves an -objective flag value.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case ObjectiveInstrPerTxn, ObjectiveMissRatio, ObjectiveP50, ObjectiveP99:
		return Objective(s), nil
	case "":
		return ObjectiveInstrPerTxn, nil
	}
	return "", fmt.Errorf("search: unknown objective %q (have instr, miss, p50, p99)", s)
}

// score extracts the objective's raw value from one measurement.
func (o Objective) score(m *expt.Measure) float64 {
	switch o {
	case ObjectiveMissRatio:
		return m.App4W[64].MissRate()
	case ObjectiveP50:
		return float64(m.Res.Latency.P50)
	case ObjectiveP99:
		return float64(m.Res.Latency.P99)
	default: // ObjectiveInstrPerTxn
		if m.Res.Committed == 0 {
			return 0
		}
		return float64(m.Res.BusyInstrs+m.Res.FetchStallInstr) / float64(m.Res.Committed)
	}
}

// Label is the objective's table-column label.
func (o Objective) Label() string {
	switch o {
	case ObjectiveMissRatio:
		return "L1I miss ratio"
	case ObjectiveP50:
		return "p50 (instr)"
	case ObjectiveP99:
		return "p99 (instr)"
	default:
		return "instr+stall/txn"
	}
}

// WorkloadWeight is one evaluation workload and its weight in the fitness
// sum. The first workload of Config.Workloads is also the training workload:
// every genome's layout is built from its profile and transplanted onto the
// others, so the weighted fitness measures transfer, not just fit.
type WorkloadWeight struct {
	Workload workload.Workload
	Weight   float64
}

// Config parameterizes a search run. Zero fields take the documented
// defaults, so Config{} is a small but sane smoke-scale search.
type Config struct {
	// Population is the genome count per generation (default 16).
	Population int
	// Generations is the maximum generation count (default 8).
	Generations int
	// Seed drives every stochastic choice — population init, selection,
	// crossover, mutation (default 1). Two runs with equal Config and
	// session options produce bit-identical trajectories regardless of
	// Workers.
	Seed int64
	// Objective is the minimized fitness metric (default instr/txn).
	Objective Objective
	// Workloads are the weighted evaluation mixes; the first is the
	// training workload. Empty defaults to the session options' workload
	// at weight 1.
	Workloads []WorkloadWeight
	// Elite genomes survive each generation unchanged (default 2).
	Elite int
	// Plateau stops the search after this many consecutive generations
	// without fitness improvement; 0 disables early stop.
	Plateau int
	// Tournament is the selection tournament size (default 3).
	Tournament int
	// CrossoverP is the probability a child is bred from two parents before
	// mutation rather than mutated from one (default 0.6).
	CrossoverP float64
	// Workers bounds each evaluation wave's measurement pool
	// (expt.Session.MeasureBatch); <= 0 keys off GOMAXPROCS. Worker count
	// never changes results, only wall time.
	Workers int
	// Progress, when non-nil, is called once per evaluated generation.
	Progress func(GenerationStat)
}

func (c Config) withDefaults() Config {
	if c.Population <= 0 {
		c.Population = 16
	}
	if c.Generations <= 0 {
		c.Generations = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Objective == "" {
		c.Objective = ObjectiveInstrPerTxn
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Elite > c.Population {
		c.Elite = c.Population
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.CrossoverP == 0 {
		c.CrossoverP = 0.6
	}
	return c
}

// Scored is one evaluated pipeline: its spec, weighted fitness (lower is
// better; 1.0 is the base layout by construction), and the raw per-workload
// objective values behind it.
type Scored struct {
	Spec        string
	Fitness     float64
	PerWorkload map[string]float64
}

// GenerationStat is one generation's progress snapshot.
type GenerationStat struct {
	// Gen is the 1-based generation index.
	Gen int
	// GenBest is the best genome of this generation's population.
	GenBest Scored
	// Best is the best genome seen so far (the hall-of-fame head).
	Best Scored
	// Requested is the cumulative genome evaluations requested
	// (population × generations so far, duplicates included).
	Requested int
	// Unique is the cumulative count of distinct specs evaluated.
	Unique int
	// Executed is the cumulative count of measurement simulations actually
	// run across all evaluation sessions (memo misses; everything else was
	// deduplicated).
	Executed uint64
}

// Result is a finished search.
type Result struct {
	// Winner is the best pipeline found (the hall-of-fame head).
	Winner Scored
	// Baselines are the hand-built reference combos (base, ipchain, fusion)
	// scored on the same fitness; base is 1.0 by construction.
	Baselines []Scored
	// HallOfFame holds the best distinct specs seen, fitness-ascending.
	HallOfFame []Scored
	// Trajectory is the per-generation progress (the README's
	// generations-vs-best-fitness table is a rendering of it).
	Trajectory []GenerationStat
	// Requested / Unique / Executed: requested genome evaluations
	// (population × generations run), distinct specs measured, and
	// simulations actually executed across sessions. Executed < Requested
	// is the dedup guarantee the acceptance test pins.
	Requested int
	Unique    int
	Executed  uint64
	// Memo aggregates the sessions' memo counters (measurement counters
	// summed; layout/train counters from the shared source).
	Memo expt.MemoStats
	// StoppedEarly reports a plateau stop before Generations ran.
	StoppedEarly bool
	// Objective echoes the scored objective.
	Objective Objective
	// Table compares the evolved winner against the hand-built combos per
	// workload on the objective.
	Table *stats.Table
}

// handBuiltSeeds are the hand-built pipelines the initial population starts
// from — the paper's strongest combo plus this repo's two extensions, then
// the splitting/CFA variants. Seeding them (with elitism) guarantees the
// winner is never worse than the best hand-built combo on the search
// objective.
func handBuiltSeeds() ([]Genome, error) {
	specs := []string{
		"chain,split:fine,porder:ph,materialize", // the paper's "all"
		core.IPChainSpec,
		core.TxFuseSpec,
		"chain,split:hotcold,porder:ph,materialize",
		"chain,split:fine,porder:ph,cfa:65536/16384,materialize",
	}
	out := make([]Genome, 0, len(specs))
	for _, s := range specs {
		g, err := ParseGenome(s)
		if err != nil {
			return nil, fmt.Errorf("search: hand-built seed %q: %w", s, err)
		}
		out = append(out, g)
	}
	return out, nil
}

// evaluator owns the per-workload sessions sharing one profile source and
// the fitness cache.
type evaluator struct {
	obj      Objective
	cases    []WorkloadWeight
	sessions []*expt.Session
	cpus     int
	workers  int

	baseScore map[string]float64 // workload name → base layout's objective
	cache     map[string]Scored  // spec → evaluated fitness
}

// measureWave measures every spec on every session as one parallel memoized
// wave and returns each spec's Scored. Duplicate specs and previously
// measured (spec × workload) cells cost nothing — the session memo and its
// in-flight dedup collapse them.
func (ev *evaluator) measureWave(specs []string) ([]Scored, error) {
	for _, s := range ev.sessions {
		if err := s.MeasureBatch(specs, ev.cpus, ev.workers); err != nil {
			return nil, err
		}
	}
	out := make([]Scored, 0, len(specs))
	for _, spec := range specs {
		sc := Scored{Spec: spec, PerWorkload: make(map[string]float64, len(ev.cases))}
		var sum, wsum float64
		for i, s := range ev.sessions {
			m, err := s.Measure(spec, ev.cpus) // memo hit: the wave ran it
			if err != nil {
				return nil, err
			}
			name := ev.cases[i].Workload.Name()
			raw := ev.obj.score(m)
			sc.PerWorkload[name] = raw
			base := ev.baseScore[name]
			if base > 0 {
				sum += ev.cases[i].Weight * raw / base
				wsum += ev.cases[i].Weight
			}
		}
		if wsum > 0 {
			sc.Fitness = sum / wsum
		}
		out = append(out, sc)
	}
	return out, nil
}

// executed sums the sessions' executed measurement counts (memo misses).
func (ev *evaluator) executed() uint64 {
	var n uint64
	for _, s := range ev.sessions {
		n += s.MemoStats().Measure.Misses
	}
	return n
}

// memoStats aggregates the sessions' memo counters: measurement counters
// summed per session, layout/train counters taken once from the shared
// source.
func (ev *evaluator) memoStats() expt.MemoStats {
	agg := ev.sessions[0].MemoStats()
	for _, s := range ev.sessions[1:] {
		ms := s.MemoStats()
		agg.Measure.Hits += ms.Measure.Hits
		agg.Measure.Misses += ms.Measure.Misses
		agg.Measure.Entries += ms.Measure.Entries
	}
	return agg
}

// Run executes the evolutionary search under the given session options.
// The options' train config (seed, transaction counts) shapes the single
// shared training run all genomes build from; cfg.Workloads[0] (or the
// options' workload) is the training mix.
func Run(o expt.Options, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workloads) == 0 {
		wl := o.Workload
		if wl == nil {
			return nil, fmt.Errorf("search: no workload configured")
		}
		cfg.Workloads = []WorkloadWeight{{Workload: wl, Weight: 1}}
	}
	for i := range cfg.Workloads {
		if cfg.Workloads[i].Weight <= 0 {
			cfg.Workloads[i].Weight = 1
		}
	}
	if cfg.Objective != ObjectiveMissRatio && o.FetchStallPenaltyInstr == 0 {
		o.FetchStallPenaltyInstr = DefaultStallPenalty
	}

	// One union image; every genome trains on the first workload's profile
	// and transplants onto the rest.
	o.Workload = cfg.Workloads[0].Workload
	o.Train.Workload = cfg.Workloads[0].Workload
	extra := make([]workload.Workload, 0, len(cfg.Workloads)-1)
	for _, ww := range cfg.Workloads[1:] {
		extra = append(extra, ww.Workload)
	}
	src, err := expt.NewProfileSource(o, extra...)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{
		obj: cfg.Objective, cases: cfg.Workloads, cpus: o.CPUs, workers: cfg.Workers,
		baseScore: make(map[string]float64, len(cfg.Workloads)),
		cache:     make(map[string]Scored),
	}
	for _, ww := range cfg.Workloads {
		eo := o
		eo.Workload = ww.Workload
		s, err := expt.NewSessionFrom(src, eo)
		if err != nil {
			return nil, err
		}
		ev.sessions = append(ev.sessions, s)
	}

	// Score the hand-built reference combos first: "base" anchors the
	// fitness normalization, ipchain/fusion are the bars to beat.
	baselineNames := []string{"base", "ipchain", "fusion"}
	for i, s := range ev.sessions {
		if err := s.MeasureBatch(baselineNames, ev.cpus, cfg.Workers); err != nil {
			return nil, err
		}
		m, err := s.Measure("base", ev.cpus)
		if err != nil {
			return nil, err
		}
		ev.baseScore[cfg.Workloads[i].Workload.Name()] = cfg.Objective.score(m)
	}
	baselines := make([]Scored, 0, len(baselineNames))
	for _, name := range baselineNames {
		sc, err := ev.measureWave([]string{name}) // all memo hits
		if err != nil {
			return nil, err
		}
		sc[0].Spec = name
		baselines = append(baselines, sc[0])
	}

	// Initial population: hand-built seeds, then random genomes.
	rng := rand.New(rand.NewSource(cfg.Seed))
	seeds, err := handBuiltSeeds()
	if err != nil {
		return nil, err
	}
	pop := make([]Genome, 0, cfg.Population)
	for _, g := range seeds {
		if len(pop) == cfg.Population {
			break
		}
		pop = append(pop, g)
	}
	for len(pop) < cfg.Population {
		pop = append(pop, RandomGenome(rng))
	}

	res := &Result{Baselines: baselines, Objective: cfg.Objective}
	hall := make(map[string]Scored)
	var best Scored
	bestSet := false
	plateau := 0

	for gen := 1; gen <= cfg.Generations; gen++ {
		// Deduplicate the population's specs (first-seen order) and measure
		// the unseen ones as one parallel wave per workload.
		specs := make([]string, 0, len(pop))
		seen := make(map[string]bool, len(pop))
		var fresh []string
		for _, g := range pop {
			spec := g.Spec()
			if !seen[spec] {
				seen[spec] = true
				specs = append(specs, spec)
				if _, ok := ev.cache[spec]; !ok {
					fresh = append(fresh, spec)
				}
			}
		}
		if len(fresh) > 0 {
			scored, err := ev.measureWave(fresh)
			if err != nil {
				return nil, err
			}
			for _, sc := range scored {
				ev.cache[sc.Spec] = sc
			}
		}

		// Rank the distinct specs, fitness ascending, spec as tie-break so
		// ordering never depends on map or goroutine scheduling.
		ranked := make([]Scored, 0, len(specs))
		for _, spec := range specs {
			ranked = append(ranked, ev.cache[spec])
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Fitness != ranked[j].Fitness {
				return ranked[i].Fitness < ranked[j].Fitness
			}
			return ranked[i].Spec < ranked[j].Spec
		})
		for _, sc := range ranked {
			hall[sc.Spec] = sc
		}

		genBest := ranked[0]
		improved := !bestSet || genBest.Fitness < best.Fitness
		if improved {
			best = genBest
			bestSet = true
			plateau = 0
		} else {
			plateau++
		}

		res.Requested += len(pop)
		stat := GenerationStat{
			Gen: gen, GenBest: genBest, Best: best,
			Requested: res.Requested, Unique: len(ev.cache), Executed: ev.executed(),
		}
		res.Trajectory = append(res.Trajectory, stat)
		if cfg.Progress != nil {
			cfg.Progress(stat)
		}
		if cfg.Plateau > 0 && plateau >= cfg.Plateau {
			res.StoppedEarly = true
			break
		}
		if gen == cfg.Generations {
			break
		}

		// Breed the next generation: elite genomes survive unchanged (and
		// re-evaluate for free off the cache), the rest are tournament-bred.
		next := make([]Genome, 0, len(pop))
		for i := 0; i < cfg.Elite && i < len(ranked); i++ {
			g, err := ParseGenome(ranked[i].Spec)
			if err != nil {
				return nil, err
			}
			next = append(next, g)
		}
		tournament := func() Genome {
			winner := -1
			for k := 0; k < cfg.Tournament; k++ {
				c := rng.Intn(len(ranked))
				if winner == -1 || c < winner {
					winner = c
				}
			}
			g, _ := ParseGenome(ranked[winner].Spec)
			return g
		}
		for len(next) < cfg.Population {
			var child Genome
			if rng.Float64() < cfg.CrossoverP {
				child = Crossover(tournament(), tournament(), rng)
				if rng.Float64() < 0.5 {
					child = Mutate(child, rng)
				}
			} else {
				child = Mutate(tournament(), rng)
			}
			next = append(next, child)
		}
		pop = next
	}

	res.Winner = best
	res.Unique = len(ev.cache)
	res.Executed = ev.executed()
	res.Memo = ev.memoStats()
	res.HallOfFame = make([]Scored, 0, len(hall))
	for _, sc := range hall {
		res.HallOfFame = append(res.HallOfFame, sc)
	}
	sort.Slice(res.HallOfFame, func(i, j int) bool {
		if res.HallOfFame[i].Fitness != res.HallOfFame[j].Fitness {
			return res.HallOfFame[i].Fitness < res.HallOfFame[j].Fitness
		}
		return res.HallOfFame[i].Spec < res.HallOfFame[j].Spec
	})
	if len(res.HallOfFame) > 10 {
		res.HallOfFame = res.HallOfFame[:10]
	}
	res.Table = transferTable(cfg, res)
	return res, nil
}

// transferTable renders the winner against the hand-built combos per
// workload: the raw objective value and the winner's delta against each row
// (negative = winner better).
func transferTable(cfg Config, res *Result) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Evolved pipeline vs hand-built combos (%s, trained on %s)",
			res.Objective.Label(), cfg.Workloads[0].Workload.Name()),
		"workload", "layout", res.Objective.Label(), "Δ winner")
	rows := append(append([]Scored(nil), res.Baselines...), Scored{
		Spec: "winner", Fitness: res.Winner.Fitness, PerWorkload: res.Winner.PerWorkload,
	})
	for _, ww := range cfg.Workloads {
		name := ww.Workload.Name()
		for _, sc := range rows {
			raw, ok := sc.PerWorkload[name]
			if !ok {
				continue
			}
			delta := "-"
			if win, ok := res.Winner.PerWorkload[name]; ok && raw > 0 && sc.Spec != "winner" {
				delta = fmt.Sprintf("%+.1f%%", 100*(win-raw)/raw)
			}
			t.AddRow(name, sc.Spec, formatObjective(res.Objective, raw), delta)
		}
	}
	t.Notef("winner spec: %s (fitness %.4f, base = 1.0)", res.Winner.Spec, res.Winner.Fitness)
	t.Notef("evaluations: %d requested, %d unique specs, %d simulations executed (memoized dedup)",
		res.Requested, res.Unique, res.Executed)
	return t
}

func formatObjective(obj Objective, v float64) string {
	if obj == ObjectiveMissRatio {
		return fmt.Sprintf("%.4f", v)
	}
	return fmt.Sprintf("%.0f", v)
}
