// Package search evolves layout-pass pipelines against the measured
// simulator, AI-PROPELLER style: genomes are parameterized pipeline specs
// validated against the core.Pass registry, fitness is a weighted
// multi-workload objective measured through expt.Session's memoized
// quick-scale runs, and the engine is a deterministic, seedable
// (mu + lambda)-ish evolutionary loop with elitism, tournament selection,
// stage-wise crossover and plateau early stop. The point of the exercise:
// report whether evolved pipelines beat the paper's hand-built combos and
// whether the winners transfer across workloads.
package search

import (
	"fmt"
	"strings"

	"codelayout/internal/core"
)

// Gene is one pass invocation in a pipeline genome: a registered base pass
// name plus its optional ":arg" parameter.
type Gene struct {
	Name string
	Arg  string
}

// Spec renders the gene as the "name" or "name:arg" form ParsePipeline
// accepts.
func (g Gene) Spec() string {
	if g.Arg == "" {
		return g.Name
	}
	return g.Name + ":" + g.Arg
}

// Genome is an ordered pass list — a parameterized pipeline spec. The zero
// value is invalid; build genomes with ParseGenome, RandomGenome, or the
// mutation/crossover operators, all of which emit legal pipelines.
type Genome []Gene

// Spec renders the genome as the canonical comma-separated pipeline spec —
// the genome's identity: two genomes with equal specs are the same point in
// the search space and share one measurement.
func (g Genome) Spec() string {
	parts := make([]string, len(g))
	for i, gene := range g {
		parts[i] = gene.Spec()
	}
	return strings.Join(parts, ",")
}

// Clone returns an independent copy of the genome.
func (g Genome) Clone() Genome {
	return append(Genome(nil), g...)
}

// ParseGenome parses a pipeline spec into a validated genome. Unknown pass
// names surface core's *UnknownPassError (listing the registry), bad
// arguments the pass factory's own error, and structural problems a
// legality error from Validate.
func ParseGenome(spec string) (Genome, error) {
	var g Genome
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, arg := field, ""
		if i := strings.IndexByte(field, ':'); i >= 0 {
			name, arg = field[:i], field[i+1:]
		}
		g = append(g, Gene{Name: strings.TrimSpace(name), Arg: strings.TrimSpace(arg)})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// stageRank orders the structural stages a legal pipeline must respect:
// chaining before splitting, splitting before unit merging (ipchain/txfuse),
// merging before ordering, ordering before CFA planning, materialize last.
// align floats (it only sets a materialization parameter); a pass not in the
// map is unknown to the legality model and rejected.
var stageRank = map[string]int{
	"chain":       0,
	"split":       1,
	"ipchain":     2,
	"txfuse":      2,
	"porder":      3,
	"cfa":         4,
	"materialize": 9,
}

// Validate checks the genome is a legal pipeline: every gene resolves
// against the core.Pass registry (names and arguments), materialize is the
// single terminal pass, no pass repeats, at most one unit-merging (fusion)
// pass runs, and the structural stages appear in an order the passes
// themselves would accept at run time.
func (g Genome) Validate() error {
	if len(g) == 0 {
		return fmt.Errorf("search: empty genome")
	}
	if last := g[len(g)-1]; last.Name != "materialize" {
		return fmt.Errorf("search: genome %q must end with materialize", g.Spec())
	}
	seen := make(map[string]bool, len(g))
	fusions := 0
	prevRank := -1
	for i, gene := range g {
		if _, err := core.NewPass(gene.Spec()); err != nil {
			return err
		}
		if seen[gene.Name] {
			return fmt.Errorf("search: genome %q repeats pass %q", g.Spec(), gene.Name)
		}
		seen[gene.Name] = true
		if gene.Name == "materialize" && i != len(g)-1 {
			return fmt.Errorf("search: genome %q has a non-terminal materialize", g.Spec())
		}
		if gene.Name == "ipchain" || gene.Name == "txfuse" {
			fusions++
		}
		if gene.Name == "align" {
			continue // align floats anywhere before materialize
		}
		rank, ok := stageRank[gene.Name]
		if !ok {
			return fmt.Errorf("search: pass %q has no legality rank; extend search.stageRank to make it evolvable", gene.Name)
		}
		if rank <= prevRank {
			return fmt.Errorf("search: genome %q runs %q out of stage order", g.Spec(), gene.Name)
		}
		prevRank = rank
	}
	if fusions > 1 {
		return fmt.Errorf("search: genome %q has %d unit-merging passes; at most one of ipchain/txfuse may run", g.Spec(), fusions)
	}
	return nil
}

// Fuses reports whether the genome contains the txfuse pass (its layouts
// clone procedures over a specialized image).
func (g Genome) Fuses() bool {
	for _, gene := range g {
		if gene.Name == "txfuse" {
			return true
		}
	}
	return false
}

// stages is the structural decomposition of a genome used by the mutation
// and crossover operators: one slot per stage, nil when the stage is absent.
// Reassembling slots in canonical order always yields a legal genome, which
// is what lets the operators compose freely without a repair step.
type stages struct {
	chain *Gene
	split *Gene
	fuse  *Gene // ipchain or txfuse — at most one
	order *Gene // porder
	cfa   *Gene
	align *Gene
}

func (g Genome) stages() stages {
	var st stages
	for i := range g {
		gene := &g[i]
		switch gene.Name {
		case "chain":
			st.chain = gene
		case "split":
			st.split = gene
		case "ipchain", "txfuse":
			st.fuse = gene
		case "porder":
			st.order = gene
		case "cfa":
			st.cfa = gene
		case "align":
			st.align = gene
		}
	}
	return st
}

// genome reassembles the stage slots into the canonical legal pass order.
func (st stages) genome() Genome {
	var g Genome
	for _, gene := range []*Gene{st.chain, st.split, st.fuse, st.order, st.cfa, st.align} {
		if gene != nil {
			g = append(g, Gene{Name: gene.Name, Arg: gene.Arg})
		}
	}
	return append(g, Gene{Name: "materialize"})
}
