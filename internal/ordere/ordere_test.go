package ordere_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/db"
	"codelayout/internal/ordere"
	"codelayout/internal/workload"
)

func smallScale() ordere.Scale {
	return ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 100}
}

func load(t *testing.T, sc ordere.Scale) (*ordere.Bench, *db.Session) {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
	m, err := ordere.Load(eng, sc)
	if err != nil {
		t.Fatal(err)
	}
	return m, eng.NewSession(1, nil)
}

func TestLoadPopulates(t *testing.T) {
	m, s := load(t, smallScale())
	if got := m.Customers.Count(s); got != 240 {
		t.Fatalf("customers = %d", got)
	}
	if got := m.StockIdx.Count(s); got != 200 {
		t.Fatalf("stock rows = %d", got)
	}
	if got := m.Orders.Count(s); got != 0 {
		t.Fatalf("orders preloaded: %d", got)
	}
	if err := m.Customers.Validate(s); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(s); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsKeepInvariants(t *testing.T) {
	m, s := load(t, smallScale())
	r := rand.New(rand.NewSource(1))
	var paid int64
	orders, payments := 0, 0
	for i := 0; i < 300; i++ {
		in := m.Gen(r)
		m.RunTxn(s, in)
		if in.Kind == ordere.Payment {
			paid += in.Amount
			payments++
		} else {
			orders++
		}
	}
	if orders == 0 || payments == 0 {
		t.Fatalf("mix degenerate: %d orders, %d payments", orders, payments)
	}
	if m.Eng.Committed != 300 {
		t.Fatalf("committed = %d", m.Eng.Committed)
	}
	// Conservation against externally tracked totals.
	var whTotal int64
	for w := 0; w < smallScale().Warehouses; w++ {
		whTotal += m.WarehouseYTD(s, uint64(w))
	}
	if whTotal != paid {
		t.Fatalf("warehouse YTD %d, payments total %d", whTotal, paid)
	}
	if got := m.Orders.Count(s); got != orders {
		t.Fatalf("order index has %d orders, ran %d", got, orders)
	}
	// The full invariant checker agrees.
	if err := m.Check(s); err != nil {
		t.Fatal(err)
	}
	// Indexes stay structurally valid under mid-run splits.
	for _, bt := range []*db.BTree{m.Orders, m.OrderLines, m.Customers, m.StockIdx} {
		if err := bt.Validate(s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	m, s := load(t, smallScale())
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		m.RunTxn(s, m.Gen(r))
	}
	// Corrupt one order-line amount behind the workload's back.
	var victim db.RID
	m.OrderLines.ScanRange(s, 0, ^uint64(0), func(_, val uint64) bool {
		victim = db.UnpackRID(val)
		return false
	})
	row := m.LineTable.Fetch(s, victim)
	row[16] ^= 0xFF
	m.LineTable.Update(s, victim, row)
	if err := m.Check(s); err == nil {
		t.Fatal("Check missed a corrupted order line")
	}
}

func TestGenInputRanges(t *testing.T) {
	m, _ := load(t, smallScale())
	sc := smallScale()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		in := m.Gen(r)
		if in.Warehouse >= uint64(sc.Warehouses) || in.District >= uint64(sc.DistrictsPerWarehouse) ||
			in.Customer >= uint64(sc.CustomersPerDistrict) {
			t.Fatalf("ids out of range: %+v", in)
		}
		if in.Kind == ordere.NewOrder {
			if len(in.Lines) == 0 || len(in.Lines) > ordere.MaxLines {
				t.Fatalf("line count %d", len(in.Lines))
			}
			for j, ln := range in.Lines {
				if ln.Item >= uint64(sc.Items) || ln.Qty < 1 || ln.Qty > 10 {
					t.Fatalf("bad line %+v", ln)
				}
				if j > 0 && in.Lines[j-1].Item >= ln.Item {
					t.Fatal("lines not sorted/deduplicated")
				}
			}
		} else if in.Amount < 1 || in.Amount > 5000 {
			t.Fatalf("amount %d out of range", in.Amount)
		}
	}
}

func TestWorkloadAdapter(t *testing.T) {
	wl, err := workload.New("ordere")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name() != "ordere" {
		t.Fatalf("name = %q", wl.Name())
	}
	q := wl.QuickScale()
	if q.DataPages() >= wl.DataPages() {
		t.Fatalf("quick scale not smaller: %d vs %d", q.DataPages(), wl.DataPages())
	}
	eng := db.NewEngine(db.Config{BufferPoolPages: q.DataPages() + 4096})
	inst, err := q.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession(1, nil)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		inst.RunTxn(s, inst.GenInput(r))
	}
	if err := inst.Check(s); err != nil {
		t.Fatal(err)
	}
}
