// Package ordere implements a TPC-C-inspired order-entry workload over the
// internal/db storage engine: a mix of New-Order transactions (multi-row
// inserts into order and order-line tables with a range scan summing the
// just-written lines) and Payment transactions (warehouse/district/customer
// cascading updates plus a history append).
//
// Its hot footprint is deliberately different from TPC-B's: B-tree inserts
// and leaf-chain range scans dominate over point updates, transactions touch
// 10-40 rows instead of 4, and the lock manager runs much hotter (every
// transaction serializes on one of Warehouses*Districts district rows or one
// of Warehouses warehouse rows). Layout passes trained on one workload can
// therefore be stress-tested on a genuinely different profile.
package ordere

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// Scale configures database size.
type Scale struct {
	Warehouses            int
	DistrictsPerWarehouse int
	CustomersPerDistrict  int
	Items                 int // stock rows = Warehouses * Items
}

// DefaultScale sizes the database in the same spirit as the paper's scaled
// 900 MB TPC-B setup: big enough that the engine's hot paths behave like a
// cached OLTP database, small enough to simulate.
func DefaultScale() Scale {
	return Scale{Warehouses: 8, DistrictsPerWarehouse: 10, CustomersPerDistrict: 300, Items: 2000}
}

// Lock key spaces, in global acquisition order (warehouse before district
// before customer before stock), which precludes deadlock cycles: every
// transaction acquires at most one lock per space except stock, whose keys
// are sorted ascending per transaction.
const (
	lockSpaceWarehouse = 10
	lockSpaceDistrict  = 11
	lockSpaceCustomer  = 12
	lockSpaceStock     = 13
)

const (
	rowBytes     = 100
	historyBytes = 50

	// MaxLines is the largest order-line count; line numbers 1..MaxLines
	// pack under one order key with a stride of lineStride.
	MaxLines   = 15
	lineStride = 16
)

// Schemas returns the per-table field schemas: every table is a fixed
// 100-byte row of four u64 fields plus a wide cold filler, but each table's
// hot fields differ — the district's order-id allocator and the stock
// quantities belong to New-Order, the YTD and balance columns to Payment —
// so a profile-guided layout groups a different head per table.
func Schemas() []workload.TableSchema {
	pay := []string{"payment", "payment_dist"}
	no := []string{"neworder"}
	filler := rowBytes - 32
	u := func(name string) workload.FieldSchema { return workload.FieldSchema{Name: name, Width: 8} }
	rw := func(name string, by []string) workload.FieldSchema {
		return workload.FieldSchema{Name: name, Width: 8, ReadBy: by, WrittenBy: by}
	}
	fill := workload.FieldSchema{Name: "filler", Width: filler}
	return []workload.TableSchema{
		{Table: "warehouse", Fields: []workload.FieldSchema{
			u("id"), u("tag"), rw("ytd", pay), u("reserved"), fill}},
		{Table: "district", Fields: []workload.FieldSchema{
			u("id"), u("warehouse"), rw("ytd", pay), rw("next_oid", no), fill}},
		{Table: "customer", Fields: []workload.FieldSchema{
			u("id"), u("district"), rw("balance", pay),
			{Name: "credit", Width: 8, ReadBy: no}, fill}},
		{Table: "stock", Fields: []workload.FieldSchema{
			u("id"), u("warehouse"), rw("qty", no), rw("ytd", no), fill}},
		{Table: "orders", Fields: []workload.FieldSchema{
			u("key"), u("customer"), rw("total", no), u("lines"), fill}},
		{Table: "order_line", Fields: []workload.FieldSchema{
			u("key"), u("item"), {Name: "amount", Width: 8, ReadBy: no}, u("qty"), fill}},
	}
}

// offsets caches the resolved byte offsets of every live field, per table,
// under whatever layout (interleaved or grouped) the engine installed.
type offsets struct {
	whID, whTag, whYTD, whReserved              int
	distID, distWh, distYTD, distNext           int
	custID, custDist, custBal, custCredit       int
	stockID, stockWh, stockQty, stockYTD        int
	orderKey, orderCust, orderTotal, orderLines int
	lineKey, lineItem, lineAmount, lineQty      int
}

func resolveOffsets(m *Bench) {
	o := &m.off
	o.whID, o.whTag, o.whYTD, o.whReserved =
		m.WhTable.FieldOffset("id"), m.WhTable.FieldOffset("tag"),
		m.WhTable.FieldOffset("ytd"), m.WhTable.FieldOffset("reserved")
	o.distID, o.distWh, o.distYTD, o.distNext =
		m.DistTable.FieldOffset("id"), m.DistTable.FieldOffset("warehouse"),
		m.DistTable.FieldOffset("ytd"), m.DistTable.FieldOffset("next_oid")
	o.custID, o.custDist, o.custBal, o.custCredit =
		m.CustTable.FieldOffset("id"), m.CustTable.FieldOffset("district"),
		m.CustTable.FieldOffset("balance"), m.CustTable.FieldOffset("credit")
	o.stockID, o.stockWh, o.stockQty, o.stockYTD =
		m.StockTable.FieldOffset("id"), m.StockTable.FieldOffset("warehouse"),
		m.StockTable.FieldOffset("qty"), m.StockTable.FieldOffset("ytd")
	o.orderKey, o.orderCust, o.orderTotal, o.orderLines =
		m.OrderTable.FieldOffset("key"), m.OrderTable.FieldOffset("customer"),
		m.OrderTable.FieldOffset("total"), m.OrderTable.FieldOffset("lines")
	o.lineKey, o.lineItem, o.lineAmount, o.lineQty =
		m.LineTable.FieldOffset("key"), m.LineTable.FieldOffset("item"),
		m.LineTable.FieldOffset("amount"), m.LineTable.FieldOffset("qty")
}

// Row field helpers: u64/i64 access at resolved offsets.
func rowU(row []byte, off int) uint64       { return binary.LittleEndian.Uint64(row[off:]) }
func rowPutU(row []byte, off int, v uint64) { binary.LittleEndian.PutUint64(row[off:], v) }
func rowI(row []byte, off int) int64        { return int64(rowU(row, off)) }
func rowPutI(row []byte, off int, v int64)  { rowPutU(row, off, uint64(v)) }

// encodeRow4 builds a 100-byte row with the four u64 fields at the given
// resolved offsets.
func encodeRow4(o0, o1, o2, o3 int, f0, f1 uint64, f2, f3 int64) []byte {
	row := make([]byte, rowBytes)
	rowPutU(row, o0, f0)
	rowPutU(row, o1, f1)
	rowPutI(row, o2, f2)
	rowPutI(row, o3, f3)
	return row
}

// Bench is a loaded order-entry database.
type Bench struct {
	Eng   *db.Engine
	Scale Scale

	WhTable    *db.Table
	DistTable  *db.Table
	CustTable  *db.Table
	StockTable *db.Table
	OrderTable *db.Table
	LineTable  *db.Table
	HistTable  *db.Table

	Customers  *db.BTree // customer global id -> RID
	StockIdx   *db.BTree // warehouse*Items + item -> RID
	Orders     *db.BTree // order key -> RID
	OrderLines *db.BTree // order key * lineStride + line -> RID

	whRID   []db.RID
	distRID []db.RID

	off offsets

	// owned lists the warehouses resident in this engine, ascending (every
	// warehouse for an unsharded load; one hash partition for a shard).
	owned []uint64
}

// Load creates and populates the database through an uninstrumented session
// and leaves it checkpointed, like tpcb.Load.
func Load(eng *db.Engine, sc Scale) (*Bench, error) {
	return loadOwned(eng, sc, nil)
}

// loadOwned loads the slice of the database whose warehouses satisfy own
// (nil = every warehouse): warehouse, district, customer and stock rows
// plus the per-engine indexes. Order, order-line and history tables start
// empty on every engine; New-Orders are always warehouse-local, so they
// fill only their home shard's tables.
func loadOwned(eng *db.Engine, sc Scale, own func(warehouse uint64) bool) (*Bench, error) {
	if sc.Warehouses <= 0 || sc.DistrictsPerWarehouse <= 0 ||
		sc.CustomersPerDistrict <= 0 || sc.Items <= 0 {
		return nil, fmt.Errorf("ordere: bad scale %+v", sc)
	}
	m := &Bench{Eng: eng, Scale: sc}
	s := eng.NewSession(0, nil)

	m.WhTable = eng.CreateTable("warehouse")
	m.DistTable = eng.CreateTable("district")
	m.CustTable = eng.CreateTable("customer")
	m.StockTable = eng.CreateTable("stock")
	m.OrderTable = eng.CreateTable("orders")
	m.LineTable = eng.CreateTable("order_line")
	m.HistTable = eng.CreateTable("oe_history")
	m.Customers = eng.CreateBTree("customer_pk")
	m.StockIdx = eng.CreateBTree("stock_pk")
	m.Orders = eng.CreateBTree("order_pk")
	m.OrderLines = eng.CreateBTree("order_line_pk")

	tables := map[string]*db.Table{
		"warehouse": m.WhTable, "district": m.DistTable, "customer": m.CustTable,
		"stock": m.StockTable, "orders": m.OrderTable, "order_line": m.LineTable,
	}
	for _, ts := range Schemas() {
		if err := tables[ts.Table].EnsureFields(ts.Interleaved()); err != nil {
			return nil, err
		}
	}
	resolveOffsets(m)

	m.whRID = make([]db.RID, sc.Warehouses)
	m.distRID = make([]db.RID, sc.Warehouses*sc.DistrictsPerWarehouse)
	for w := 0; w < sc.Warehouses; w++ {
		if own != nil && !own(uint64(w)) {
			continue
		}
		m.owned = append(m.owned, uint64(w))
		m.whRID[w] = m.WhTable.Insert(s, encodeRow4(m.off.whID, m.off.whTag, m.off.whYTD, m.off.whReserved,
			uint64(w), uint64(w), 0, 0))
	}
	for dg := 0; dg < sc.Warehouses*sc.DistrictsPerWarehouse; dg++ {
		wh := uint64(dg / sc.DistrictsPerWarehouse)
		if own != nil && !own(wh) {
			continue
		}
		// next_oid is d_next_o_id, starting at 1.
		m.distRID[dg] = m.DistTable.Insert(s, encodeRow4(m.off.distID, m.off.distWh, m.off.distYTD, m.off.distNext,
			uint64(dg), wh, 0, 1))
	}
	for cg := 0; cg < m.NumCustomers(); cg++ {
		dg := uint64(cg / sc.CustomersPerDistrict)
		wh := dg / uint64(sc.DistrictsPerWarehouse)
		if own != nil && !own(wh) {
			continue
		}
		rid := m.CustTable.Insert(s, encodeRow4(m.off.custID, m.off.custDist, m.off.custBal, m.off.custCredit,
			uint64(cg), dg, 0, 0))
		if err := m.Customers.Insert(s, uint64(cg), rid.Pack()); err != nil {
			return nil, err
		}
	}
	for sk := 0; sk < sc.Warehouses*sc.Items; sk++ {
		wh := uint64(sk / sc.Items)
		if own != nil && !own(wh) {
			continue
		}
		rid := m.StockTable.Insert(s, encodeRow4(m.off.stockID, m.off.stockWh, m.off.stockQty, m.off.stockYTD,
			uint64(sk), wh, 100, 0))
		if err := m.StockIdx.Insert(s, uint64(sk), rid.Pack()); err != nil {
			return nil, err
		}
	}
	eng.Pool.FlushAll()
	eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())
	return m, nil
}

// NumCustomers returns the total customer count.
func (m *Bench) NumCustomers() int {
	return m.Scale.Warehouses * m.Scale.DistrictsPerWarehouse * m.Scale.CustomersPerDistrict
}

// NumDistricts returns the total district count.
func (m *Bench) NumDistricts() int {
	return m.Scale.Warehouses * m.Scale.DistrictsPerWarehouse
}

// Kind selects the transaction type.
type Kind int

const (
	// NewOrder inserts an order with 5-15 lines and updates stock rows.
	NewOrder Kind = iota
	// Payment applies an amount to a warehouse, district and customer.
	Payment
)

// Line is one requested order line.
type Line struct {
	Item uint64
	Qty  int64
}

// Input is one transaction request from a client.
type Input struct {
	Kind      Kind
	Warehouse uint64
	District  uint64 // within the warehouse
	Customer  uint64 // within the district
	// CWarehouse is the warehouse the paying customer belongs to: equal to
	// Warehouse except for a sharded run's remote Payments, which draw the
	// customer from another shard's warehouse (the cross-shard fraction).
	CWarehouse uint64
	Lines      []Line // New-Order only; items sorted ascending, deduplicated
	Amount     int64  // Payment only
}

// newOrderPct is the New-Order share of the mix (the rest are Payments).
const newOrderPct = 60

// Gen draws one request: 60% New-Order / 40% Payment, uniform warehouse,
// district and customer, 5-15 uniformly drawn items per order.
func (m *Bench) Gen(r *rand.Rand) Input {
	sc := m.Scale
	in := Input{
		Warehouse: uint64(r.Intn(sc.Warehouses)),
		District:  uint64(r.Intn(sc.DistrictsPerWarehouse)),
		Customer:  uint64(r.Intn(sc.CustomersPerDistrict)),
	}
	in.CWarehouse = in.Warehouse
	if r.Intn(100) < newOrderPct {
		in.Kind = NewOrder
		n := 5 + r.Intn(MaxLines-4)
		seen := make(map[uint64]bool, n)
		for i := 0; i < n; i++ {
			item := uint64(r.Intn(sc.Items))
			if seen[item] {
				continue // dedupe: one stock row per item per order
			}
			seen[item] = true
			in.Lines = append(in.Lines, Line{Item: item, Qty: 1 + r.Int63n(10)})
		}
		// Ascending item order keeps stock lock acquisition deadlock-free.
		sort.Slice(in.Lines, func(i, j int) bool { return in.Lines[i].Item < in.Lines[j].Item })
	} else {
		in.Kind = Payment
		in.Amount = 1 + r.Int63n(5000)
	}
	return in
}

// GenInput implements workload.Instance.
func (m *Bench) GenInput(r *rand.Rand) workload.Input { return m.Gen(r) }

// RunTxn implements workload.Instance; in must come from GenInput.
func (m *Bench) RunTxn(s *db.Session, in workload.Input) {
	req := in.(Input)
	if req.Kind == NewOrder {
		m.runNewOrder(s, req)
	} else {
		m.runPayment(s, req)
	}
}

// KindOf implements workload.Labeler.
func (m *Bench) KindOf(in workload.Input) string {
	if in.(Input).Kind == NewOrder {
		return "neworder"
	}
	return "payment"
}

func (m *Bench) distGlobal(in Input) uint64 {
	return in.Warehouse*uint64(m.Scale.DistrictsPerWarehouse) + in.District
}

// custGlobal returns the paying customer's global id, in the customer's own
// warehouse (CWarehouse — the remote one for cross-shard Payments).
func (m *Bench) custGlobal(in Input) uint64 {
	dg := in.CWarehouse*uint64(m.Scale.DistrictsPerWarehouse) + in.District
	return dg*uint64(m.Scale.CustomersPerDistrict) + in.Customer
}

// orderKey packs (district, per-district order id) into one index key.
func orderKey(distGlobal, oid uint64) uint64 { return distGlobal<<24 | oid }

// linePrice is the unit price of an item (a fixed pseudo-catalog).
func linePrice(item uint64) int64 { return int64(1 + item%100) }

// ---- New-Order ----

func (m *Bench) runNewOrder(s *db.Session, in Input) {
	s.PB.Enter("neworder_txn")
	defer s.PB.Leave("neworder_txn")
	s.PB.Data(s.ScratchAddr(1024), 320, true) // parsed request / order build area
	s.Begin()
	oid := m.noDistrict(s, in)
	m.noCustomer(s, in)
	for _, ln := range in.Lines {
		s.PB.Branch("no_line", true)
		m.noStock(s, in.Warehouse, ln)
	}
	s.PB.Branch("no_line", false)
	okey := orderKey(m.distGlobal(in), oid)
	orid := m.noInsert(s, in, okey)
	m.noTotal(s, okey, orid)
	s.Commit()
}

// noDistrict locks the district row and allocates the order id from its
// d_next_o_id field — the hot serialization point of the workload.
func (m *Bench) noDistrict(s *db.Session, in Input) uint64 {
	s.PB.Enter("no_district")
	defer s.PB.Leave("no_district")
	s.PB.Data(s.ScratchAddr(0), 192, true)
	dg := m.distGlobal(in)
	s.LockX(db.LockKey(lockSpaceDistrict, dg))
	rid := m.distRID[dg]
	row := m.DistTable.FetchFields(s, rid, "next_oid")
	oid := rowU(row, m.off.distNext)
	rowPutU(row, m.off.distNext, oid+1)
	s.PB.Data(s.ScratchAddr(256), 128, true)
	m.DistTable.UpdateFields(s, rid, row, "next_oid")
	return oid
}

// noCustomer reads the ordering customer under a shared lock.
func (m *Bench) noCustomer(s *db.Session, in Input) {
	s.PB.Enter("no_customer")
	defer s.PB.Leave("no_customer")
	cg := m.custGlobal(in)
	packed, ok := m.Customers.Search(s, cg)
	if !ok {
		panic(fmt.Sprintf("ordere: customer %d missing", cg))
	}
	s.LockS(db.LockKey(lockSpaceCustomer, cg))
	m.CustTable.FetchFields(s, db.UnpackRID(packed), "credit")
	s.PB.Data(s.ScratchAddr(384), 128, true)
}

// noStock decrements one item's stock quantity, restocking TPC-C style when
// it runs low.
func (m *Bench) noStock(s *db.Session, warehouse uint64, ln Line) {
	s.PB.Enter("no_stock")
	defer s.PB.Leave("no_stock")
	skey := warehouse*uint64(m.Scale.Items) + ln.Item
	packed, ok := m.StockIdx.Search(s, skey)
	if !ok {
		panic(fmt.Sprintf("ordere: stock %d missing", skey))
	}
	s.LockX(db.LockKey(lockSpaceStock, skey))
	rid := db.UnpackRID(packed)
	row := m.StockTable.FetchFields(s, rid, "qty", "ytd")
	qty := rowI(row, m.off.stockQty) - ln.Qty
	if qty < 10 {
		qty += 91
	}
	rowPutI(row, m.off.stockQty, qty)
	rowPutI(row, m.off.stockYTD, rowI(row, m.off.stockYTD)+ln.Qty)
	s.PB.Data(s.ScratchAddr(512), 128, true)
	m.StockTable.UpdateFields(s, rid, row, "qty", "ytd")
}

// noInsert writes the order row and its order lines, maintaining both
// B-tree indexes, and returns the order row's RID.
func (m *Bench) noInsert(s *db.Session, in Input, okey uint64) db.RID {
	s.PB.Enter("no_order")
	defer s.PB.Leave("no_order")
	orid := m.OrderTable.Insert(s, encodeRow4(m.off.orderKey, m.off.orderCust, m.off.orderTotal, m.off.orderLines,
		okey, m.custGlobal(in), 0, int64(len(in.Lines))))
	if err := m.Orders.Insert(s, okey, orid.Pack()); err != nil {
		panic(err)
	}
	for i, ln := range in.Lines {
		s.PB.Branch("no_insline", true)
		lkey := okey*lineStride + uint64(i+1)
		amount := linePrice(ln.Item) * ln.Qty
		lrid := m.LineTable.Insert(s, encodeRow4(m.off.lineKey, m.off.lineItem, m.off.lineAmount, m.off.lineQty,
			lkey, ln.Item, amount, ln.Qty))
		s.PB.Data(s.ScratchAddr(640), 96, true)
		if err := m.OrderLines.Insert(s, lkey, lrid.Pack()); err != nil {
			panic(err)
		}
	}
	s.PB.Branch("no_insline", false)
	return orid
}

// noTotal range-scans the order's lines off the order-line index, sums their
// amounts and writes the total back to the order row.
func (m *Bench) noTotal(s *db.Session, okey uint64, orid db.RID) {
	s.PB.Enter("no_total")
	defer s.PB.Leave("no_total")
	var rids []db.RID
	m.OrderLines.ScanRange(s, okey*lineStride+1, okey*lineStride+MaxLines,
		func(_, val uint64) bool {
			rids = append(rids, db.UnpackRID(val))
			return true
		})
	var total int64
	for _, rid := range rids {
		s.PB.Branch("no_sum", true)
		total += rowI(m.LineTable.FetchFields(s, rid, "amount"), m.off.lineAmount)
	}
	s.PB.Branch("no_sum", false)
	row := m.OrderTable.FetchFields(s, orid, "total")
	rowPutI(row, m.off.orderTotal, total)
	s.PB.Data(s.ScratchAddr(768), 128, true)
	m.OrderTable.UpdateFields(s, orid, row, "total")
}

// ---- Payment ----

func (m *Bench) runPayment(s *db.Session, in Input) {
	s.PB.Enter("payment_txn")
	defer s.PB.Leave("payment_txn")
	s.PB.Data(s.ScratchAddr(1024), 256, true)
	s.Begin()
	m.payWarehouse(s, in)
	m.payDistrict(s, in)
	m.payCustomer(s, in)
	m.payHistory(s, in)
	s.Commit()
}

func (m *Bench) payWarehouse(s *db.Session, in Input) {
	s.PB.Enter("pay_warehouse")
	defer s.PB.Leave("pay_warehouse")
	s.LockX(db.LockKey(lockSpaceWarehouse, in.Warehouse))
	rid := m.whRID[in.Warehouse]
	row := m.WhTable.FetchFields(s, rid, "ytd")
	rowPutI(row, m.off.whYTD, rowI(row, m.off.whYTD)+in.Amount)
	s.PB.Data(s.ScratchAddr(0), 128, true)
	m.WhTable.UpdateFields(s, rid, row, "ytd")
}

func (m *Bench) payDistrict(s *db.Session, in Input) {
	s.PB.Enter("pay_district")
	defer s.PB.Leave("pay_district")
	dg := m.distGlobal(in)
	s.LockX(db.LockKey(lockSpaceDistrict, dg))
	rid := m.distRID[dg]
	row := m.DistTable.FetchFields(s, rid, "ytd")
	rowPutI(row, m.off.distYTD, rowI(row, m.off.distYTD)+in.Amount)
	s.PB.Data(s.ScratchAddr(256), 128, true)
	m.DistTable.UpdateFields(s, rid, row, "ytd")
}

func (m *Bench) payCustomer(s *db.Session, in Input) {
	s.PB.Enter("pay_customer")
	defer s.PB.Leave("pay_customer")
	cg := m.custGlobal(in)
	packed, ok := m.Customers.Search(s, cg)
	if !ok {
		panic(fmt.Sprintf("ordere: customer %d missing", cg))
	}
	s.LockX(db.LockKey(lockSpaceCustomer, cg))
	rid := db.UnpackRID(packed)
	row := m.CustTable.FetchFields(s, rid, "balance")
	rowPutI(row, m.off.custBal, rowI(row, m.off.custBal)+in.Amount)
	s.PB.Data(s.ScratchAddr(512), 128, true)
	m.CustTable.UpdateFields(s, rid, row, "balance")
}

func (m *Bench) payHistory(s *db.Session, in Input) {
	s.PB.Enter("pay_history")
	defer s.PB.Leave("pay_history")
	rec := make([]byte, historyBytes)
	binary.LittleEndian.PutUint64(rec[0:], m.custGlobal(in))
	binary.LittleEndian.PutUint64(rec[8:], uint64(in.Amount))
	binary.LittleEndian.PutUint64(rec[16:], s.Txn().ID)
	m.HistTable.Insert(s, rec)
}

// ---- Verification ----

// WarehouseYTD reads a warehouse's year-to-date total (verification).
func (m *Bench) WarehouseYTD(s *db.Session, w uint64) int64 {
	return rowI(m.WhTable.Fetch(s, m.whRID[w]), m.off.whYTD)
}

// DistrictYTD reads a district's year-to-date total (verification).
func (m *Bench) DistrictYTD(s *db.Session, dg uint64) int64 {
	return rowI(m.DistTable.Fetch(s, m.distRID[dg]), m.off.distYTD)
}

// CustomerBalance reads a customer balance (verification).
func (m *Bench) CustomerBalance(s *db.Session, cg uint64) int64 {
	packed, ok := m.Customers.Search(s, cg)
	if !ok {
		panic(fmt.Sprintf("ordere: customer %d missing", cg))
	}
	return rowI(m.CustTable.Fetch(s, db.UnpackRID(packed)), m.off.custBal)
}

// Check implements workload.Instance: every order's total equals the sum of
// its order-line amounts with the recorded line count, and payment flows are
// conserved (warehouse YTD = sum of district YTDs = sum of customer
// balances).
func (m *Bench) Check(s *db.Session) error {
	if err := m.checkOrders(s); err != nil {
		return err
	}
	whTotal, distTotal, custTotal := m.paymentSums(s)
	if whTotal != distTotal || custTotal != whTotal {
		return fmt.Errorf("ordere: payment flow diverged: warehouses=%d districts=%d customers=%d",
			whTotal, distTotal, custTotal)
	}
	return nil
}

// checkOrders verifies every resident order's total and line count against
// its order-line index entries.
func (m *Bench) checkOrders(s *db.Session) error {
	type ref struct {
		key uint64
		rid db.RID
	}
	var orders []ref
	m.Orders.ScanRange(s, 0, ^uint64(0), func(key, val uint64) bool {
		orders = append(orders, ref{key, db.UnpackRID(val)})
		return true
	})
	for _, o := range orders {
		row := m.OrderTable.Fetch(s, o.rid)
		var sum int64
		lines := 0
		m.OrderLines.ScanRange(s, o.key*lineStride+1, o.key*lineStride+MaxLines,
			func(_, val uint64) bool {
				sum += rowI(m.LineTable.Fetch(s, db.UnpackRID(val)), m.off.lineAmount)
				lines++
				return true
			})
		if total := rowI(row, m.off.orderTotal); sum != total {
			return fmt.Errorf("ordere: order %d total %d, lines sum to %d", o.key, total, sum)
		}
		if rec := rowI(row, m.off.orderLines); int64(lines) != rec {
			return fmt.Errorf("ordere: order %d records %d lines, index has %d", o.key, rec, lines)
		}
	}
	return nil
}

// paymentSums totals the resident warehouses' YTDs, their districts' YTDs
// and their customers' balances.
func (m *Bench) paymentSums(s *db.Session) (whTotal, distTotal, custTotal int64) {
	sc := m.Scale
	for _, w := range m.owned {
		whTotal += m.WarehouseYTD(s, w)
		for d := 0; d < sc.DistrictsPerWarehouse; d++ {
			dg := w*uint64(sc.DistrictsPerWarehouse) + uint64(d)
			distTotal += m.DistrictYTD(s, dg)
			for c := 0; c < sc.CustomersPerDistrict; c++ {
				custTotal += m.CustomerBalance(s, dg*uint64(sc.CustomersPerDistrict)+uint64(c))
			}
		}
	}
	return whTotal, distTotal, custTotal
}
