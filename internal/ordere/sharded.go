package ordere

import (
	"fmt"
	"math/rand"

	"codelayout/internal/db"
	"codelayout/internal/shard"
	"codelayout/internal/workload"
)

// Sharded is the order-entry database hash-partitioned by warehouse across
// N engines. New-Orders are always warehouse-local (TPC-C's home-warehouse
// stock simplification); a CrossShardPct fraction of Payments draw their
// customer from another shard's warehouse and commit through 2PC — the
// home shard takes the warehouse/district YTDs and the history row, the
// remote shard the customer balance.
//
// Lock order stays globally consistent (warehouse → district → customer,
// customer always last), so sharded order-entry remains deadlock-free; the
// TPC-B mix is the one that exercises distributed deadlock cycles.
type Sharded struct {
	Scale    Scale
	Map      shard.Map
	Shards   []*Bench
	crossPct int

	whShard  []int      // warehouse → owning shard
	remoteBy [][]uint64 // shard → warehouses on other shards
}

// LoadSharded implements workload.ShardedWorkload.
func (w *Workload) LoadSharded(engs []*db.Engine) (workload.ShardedInstance, error) {
	if len(engs) < 2 {
		return nil, fmt.Errorf("ordere: LoadSharded needs >= 2 engines (got %d); use Load", len(engs))
	}
	sc := w.Scale
	sb := &Sharded{
		Scale:    sc,
		Map:      shard.Map{Shards: len(engs)},
		crossPct: w.Partitioning().CrossShardPct,
		whShard:  make([]int, sc.Warehouses),
		remoteBy: make([][]uint64, len(engs)),
	}
	for wh := 0; wh < sc.Warehouses; wh++ {
		home := sb.Map.Of(uint64(wh))
		sb.whShard[wh] = home
		for i := range engs {
			if i != home {
				sb.remoteBy[i] = append(sb.remoteBy[i], uint64(wh))
			}
		}
	}
	for i, eng := range engs {
		sh := i
		b, err := loadOwned(eng, sc, func(warehouse uint64) bool { return sb.whShard[warehouse] == sh })
		if err != nil {
			return nil, err
		}
		sb.Shards = append(sb.Shards, b)
	}
	return sb, nil
}

// GenInput implements workload.ShardedInstance: the plain generator, except
// that a CrossShardPct fraction of Payments take their customer from a
// remote shard's warehouse.
func (sb *Sharded) GenInput(r *rand.Rand) workload.Input {
	home := sb.Shards[0] // generators share one Scale; any bench works
	in := home.Gen(r)
	if in.Kind == Payment {
		remotes := sb.remoteBy[sb.whShard[in.Warehouse]]
		if len(remotes) > 0 && r.Intn(100) < sb.crossPct {
			in.CWarehouse = remotes[r.Intn(len(remotes))]
		}
	}
	return in
}

// Home implements workload.ShardedInstance.
func (sb *Sharded) Home(in workload.Input) int {
	return sb.whShard[in.(Input).Warehouse]
}

// Remote implements workload.ShardedInstance.
func (sb *Sharded) Remote(in workload.Input) bool {
	req := in.(Input)
	return sb.whShard[req.CWarehouse] != sb.whShard[req.Warehouse]
}

// KindOf implements workload.Labeler: remote Payments run the distributed
// 2PC variant and get their own latency bucket.
func (sb *Sharded) KindOf(in workload.Input) string {
	req := in.(Input)
	if req.Kind == NewOrder {
		return "neworder"
	}
	if sb.whShard[req.CWarehouse] != sb.whShard[req.Warehouse] {
		return "payment_dist"
	}
	return "payment"
}

// RunTxn implements workload.ShardedInstance.
func (sb *Sharded) RunTxn(ss []*db.Session, in workload.Input) {
	req := in.(Input)
	home := sb.whShard[req.Warehouse]
	custShard := sb.whShard[req.CWarehouse]
	if req.Kind == NewOrder || custShard == home {
		sb.Shards[home].RunTxn(ss[home], req)
		return
	}
	hs, rs := ss[home], ss[custShard]
	hb, rb := sb.Shards[home], sb.Shards[custShard]
	pb := hs.PB
	pb.Enter("payment_dist")
	defer pb.Leave("payment_dist")
	pb.Data(hs.ScratchAddr(1024), 256, true)
	hs.Begin()
	rs.Begin()
	hb.payWarehouse(hs, req)
	hb.payDistrict(hs, req)
	rb.payCustomer(rs, req)
	hb.payHistory(hs, req)
	shard.Commit2PC(hs, rs)
}

// Class implements workload.FastPath: New-Orders and Payments predict
// separately (New-Orders are always local; Payments carry the cross-shard
// fraction), but the class must not leak the routing outcome, so local and
// remote Payments share one class.
func (sb *Sharded) Class(in workload.Input) string {
	if in.(Input).Kind == NewOrder {
		return "neworder"
	}
	return "payment"
}

// RunLocal implements workload.FastPath: the plain transaction on the home
// engine alone. A Payment whose customer turns out to live on another shard
// runs its home-side warehouse and district updates for real (the modeled
// txn_abort undo pays for them on misprediction), then discovers the miss
// honestly when the customer search comes up empty on the home shard's
// tree, and unwinds through workload.Mispredict before touching any foreign
// engine.
func (sb *Sharded) RunLocal(s *db.Session, in workload.Input) {
	req := in.(Input)
	home := sb.whShard[req.Warehouse]
	if req.Kind == NewOrder || sb.whShard[req.CWarehouse] == home {
		sb.Shards[home].RunTxn(s, req)
		return
	}
	b := sb.Shards[home]
	pb := s.PB
	pb.Enter("payment_txn")
	defer pb.Leave("payment_txn")
	pb.Data(s.ScratchAddr(1024), 256, true)
	s.Begin()
	b.payWarehouse(s, req)
	b.payDistrict(s, req)
	pb.Enter("pay_customer")
	defer pb.Leave("pay_customer")
	if _, ok := b.Customers.Search(s, b.custGlobal(req)); ok {
		panic(fmt.Sprintf("ordere: remote customer %d found on home shard %d", b.custGlobal(req), home))
	}
	workload.Mispredict(pb)
}

// Check implements workload.ShardedInstance: per-shard order/order-line
// consistency plus payment-flow conservation over the union of shards
// (remote Payments split warehouse/district YTDs and the customer balance
// across two engines, so only the global sums agree).
func (sb *Sharded) Check(ss []*db.Session) error {
	var whTotal, distTotal, custTotal int64
	for i, b := range sb.Shards {
		if err := b.checkOrders(ss[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		w, d, c := b.paymentSums(ss[i])
		whTotal += w
		distTotal += d
		custTotal += c
	}
	if whTotal != distTotal || custTotal != whTotal {
		return fmt.Errorf("ordere: sharded payment flow diverged: warehouses=%d districts=%d customers=%d",
			whTotal, distTotal, custTotal)
	}
	return nil
}
