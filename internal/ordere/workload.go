package ordere

import (
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/workload"
)

func init() {
	workload.Register("ordere", func() workload.Workload { return New() })
}

// Workload adapts the order-entry bench to the workload seam.
type Workload struct {
	Scale Scale
	// CrossShardPct overrides the remote-Payment percentage on sharded
	// machines; 0 uses workload.DefaultCrossShardPct, negative disables
	// it.
	CrossShardPct int
}

// New returns the order-entry workload at default scale.
func New() *Workload { return NewScaled(DefaultScale()) }

// NewScaled returns the order-entry workload at an explicit scale.
func NewScaled(sc Scale) *Workload { return &Workload{Scale: sc} }

// Name implements workload.Workload.
func (w *Workload) Name() string { return "ordere" }

// QuickScale implements workload.Workload.
func (w *Workload) QuickScale() workload.Workload {
	return &Workload{
		Scale:         Scale{Warehouses: 3, DistrictsPerWarehouse: 4, CustomersPerDistrict: 60, Items: 300},
		CrossShardPct: w.CrossShardPct,
	}
}

// Partitioning implements workload.ShardedWorkload: order-entry partitions
// on the warehouse, TPC-C's natural partition key.
func (w *Workload) Partitioning() workload.Partitioning {
	return workload.Partitioning{Key: "warehouse", CrossShardPct: workload.EffectiveCrossShardPct(w.CrossShardPct)}
}

// DataPages implements workload.Workload. Orders and lines grow during the
// run; callers add headroom on top of this loaded-table estimate.
func (w *Workload) DataPages() int {
	sc := w.Scale
	customers := sc.Warehouses * sc.DistrictsPerWarehouse * sc.CustomersPerDistrict
	stock := sc.Warehouses * sc.Items
	return customers/70 + stock/70 + sc.Warehouses*sc.DistrictsPerWarehouse + sc.Warehouses + 64
}

// Load implements workload.Workload.
func (w *Workload) Load(eng *db.Engine) (workload.Instance, error) {
	return Load(eng, w.Scale)
}

// RecordSchemas implements workload.RecordSchemas: the per-table field
// schemas the record-layout pass groups.
func (w *Workload) RecordSchemas() []workload.TableSchema { return Schemas() }

// KindRoots implements workload.KindRoots: one entry model per transaction
// kind in the mix, including the distributed Payment the sharded variant
// labels "payment_dist".
func (w *Workload) KindRoots() []workload.KindRoot {
	return []workload.KindRoot{
		{Kind: "neworder", Root: "neworder_txn"},
		{Kind: "payment", Root: "payment_txn"},
		{Kind: "payment_dist", Root: "payment_dist"},
	}
}

// Models implements workload.Workload: the New-Order and Payment transaction
// models, mirroring site for site the probe calls RunTxn emits.
func (w *Workload) Models(env *workload.ModelEnv) []codegen.FnSpec {
	pick := env.Pick
	return []codegen.FnSpec{
		{Name: "no_district", Body: []codegen.Frag{
			codegen.Seq(7), pick("sql", 6),
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(5), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "no_customer", Body: []codegen.Frag{
			codegen.Seq(6), pick("sql", 6),
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(4), pick("cmp", 4),
			codegen.Seq(2),
		}},
		{Name: "no_stock", Body: []codegen.Frag{
			codegen.Seq(7), pick("sql", 6),
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(5), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "no_order", Body: []codegen.Frag{
			codegen.Seq(6), env.ErrPath(), pick("sql", 5),
			codegen.Call{Fn: "heap_insert"},
			codegen.Call{Fn: "bt_insert"},
			codegen.Loop{Site: "no_insline", Head: 2, Body: []codegen.Frag{
				codegen.Seq(3), pick("row", 4),
				codegen.Call{Fn: "heap_insert"},
				codegen.Seq(2),
				codegen.Call{Fn: "bt_insert"},
			}},
			codegen.Seq(3),
		}},
		{Name: "no_total", Body: []codegen.Frag{
			codegen.Seq(6), pick("sql", 5),
			codegen.Call{Fn: "bt_range"},
			codegen.Loop{Site: "no_sum", Head: 2, Body: []codegen.Frag{
				codegen.Seq(2),
				codegen.Call{Fn: "heap_fetch"},
				codegen.Seq(3),
			}},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(4), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "neworder_txn", Body: []codegen.Frag{
			codegen.Seq(10), env.ErrPath(), pick("sql", 8),
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "no_district"},
			codegen.Call{Fn: "no_customer"},
			codegen.Loop{Site: "no_line", Head: 3, Body: []codegen.Frag{
				codegen.Seq(4),
				codegen.Call{Fn: "no_stock"},
			}},
			codegen.Call{Fn: "no_order"},
			codegen.Call{Fn: "no_total"},
			codegen.Call{Fn: "txn_commit"},
			codegen.Seq(6), pick("rt", 4),
		}},
		{Name: "pay_warehouse", Body: []codegen.Frag{
			codegen.Seq(6), pick("sql", 5),
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "pay_district", Body: []codegen.Frag{
			codegen.Seq(6), pick("sql", 5),
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(4), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "pay_customer", Body: []codegen.Frag{
			codegen.Seq(7), pick("sql", 6),
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(5), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "pay_history", Body: []codegen.Frag{
			codegen.Seq(5), pick("sql", 5),
			codegen.Call{Fn: "heap_insert"},
			codegen.Seq(3),
		}},
		{Name: "payment_txn", Body: []codegen.Frag{
			codegen.Seq(9), env.ErrPath(), pick("sql", 8),
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "pay_warehouse"},
			codegen.Call{Fn: "pay_district"},
			codegen.Call{Fn: "pay_customer"},
			codegen.Call{Fn: "pay_history"},
			codegen.Call{Fn: "txn_commit"},
			codegen.Seq(6), pick("rt", 4),
		}},
		// The distributed Payment (sharded machines): home warehouse,
		// district and history, the remote-shard customer, then two-phase
		// commit through the shard coordinator.
		{Name: "payment_dist", Body: []codegen.Frag{
			codegen.Seq(10), env.ErrPath(), pick("sql", 8),
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "pay_warehouse"},
			codegen.Call{Fn: "pay_district"},
			codegen.Call{Fn: "pay_customer"},
			codegen.Call{Fn: "pay_history"},
			codegen.Call{Fn: "dist_commit"},
			codegen.Seq(6), pick("rt", 4),
		}},
	}
}
