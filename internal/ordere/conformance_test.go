package ordere_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/ordere"
	"codelayout/internal/program"
)

// TestDefaultScaleConformance drives thousands of transactions at the
// default (paper) scale through an emitter-bound session, deep enough for
// every B-tree to split repeatedly mid-run — a regression test for
// probe/model drift that only appears past the quick scales.
func TestDefaultScaleConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("long conformance run in -short mode")
	}
	wl := ordere.New()
	img, err := appmodel.Build(appmodel.Config{Seed: 2001, LibScale: 0.25, ColdWords: 100_000, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	em := codegen.NewEmitter(img, l, 3)
	em.Sink = func(uint64, int32) {}
	eng := db.NewEngine(db.Config{BufferPoolPages: wl.DataPages() + 4096})
	inst, err := wl.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession(1, em)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		inst.RunTxn(s, inst.GenInput(r))
		if !em.Idle() {
			t.Fatalf("txn %d: emitter not idle", i)
		}
	}
	if err := inst.Check(eng.NewSession(2, nil)); err != nil {
		t.Fatal(err)
	}
}
