package trace

import (
	"codelayout/internal/isa"
	"codelayout/internal/stats"
)

// MaxCPUs bounds the number of processors per-CPU sinks track.
const MaxCPUs = 64

// SeqLen measures the number of sequentially executed instructions between
// control breaks (Figure 8 of the paper). A sequence continues as long as
// fetch runs on the same CPU are address-contiguous; any discontinuity —
// taken branch, call, return, or a transfer to kernel code — ends it.
type SeqLen struct {
	// Hist buckets sequence lengths; the paper plots 1..33 with overflow.
	Hist *stats.Hist
	// cur tracks the open sequence per CPU.
	curEnd [MaxCPUs]uint64
	curLen [MaxCPUs]int32
	open   [MaxCPUs]bool
}

// NewSeqLen creates a sequence-length sink with the paper's bucket range.
func NewSeqLen() *SeqLen {
	return &SeqLen{Hist: stats.NewHist(1, 33)}
}

// Fetch implements Sink.
func (s *SeqLen) Fetch(r FetchRun) {
	c := r.CPU
	if s.open[c] && r.Addr == s.curEnd[c] {
		s.curLen[c] += r.Words
		s.curEnd[c] = r.End()
		return
	}
	if s.open[c] {
		s.Hist.Add(int(s.curLen[c]))
	}
	s.open[c] = true
	s.curLen[c] = r.Words
	s.curEnd[c] = r.End()
}

// Flush closes all open sequences.
func (s *SeqLen) Flush() {
	for c := range s.open {
		if s.open[c] {
			s.Hist.Add(int(s.curLen[c]))
			s.open[c] = false
		}
	}
}

// Footprint counts unique cache lines (and pages) touched by the stream, the
// measure the paper uses for "footprint in number of unique cache lines
// touched during execution".
type Footprint struct {
	LineBytes int
	lines     map[uint64]struct{}
	pages     map[uint64]struct{}
}

// NewFootprint creates a footprint sink for the given line size.
func NewFootprint(lineBytes int) *Footprint {
	return &Footprint{
		LineBytes: lineBytes,
		lines:     make(map[uint64]struct{}, 1<<12),
		pages:     make(map[uint64]struct{}, 1<<8),
	}
}

// Fetch implements Sink.
func (f *Footprint) Fetch(r FetchRun) {
	lb := uint64(f.LineBytes)
	first := r.Addr / lb
	last := (r.End() - 1) / lb
	for ln := first; ln <= last; ln++ {
		f.lines[ln] = struct{}{}
	}
	pFirst := r.Addr / isa.PageBytes
	pLast := (r.End() - 1) / isa.PageBytes
	for pg := pFirst; pg <= pLast; pg++ {
		f.pages[pg] = struct{}{}
	}
}

// Lines returns the number of unique cache lines touched.
func (f *Footprint) Lines() int { return len(f.lines) }

// Bytes returns the touched footprint in bytes (lines × line size).
func (f *Footprint) Bytes() int64 { return int64(len(f.lines)) * int64(f.LineBytes) }

// Pages returns the number of unique pages touched.
func (f *Footprint) Pages() int { return len(f.pages) }

// DataTee fans a data-reference stream out to several sinks.
type DataTee []DataSink

// Data implements DataSink.
func (t DataTee) Data(r DataRef) {
	for _, s := range t {
		s.Data(r)
	}
}
