// Package trace defines the instruction-fetch event stream produced by the
// simulated machine and the sink plumbing the experiments consume it with.
//
// The unit event is a FetchRun: a maximal run of sequentially fetched
// instruction words (a basic block body plus whatever terminator words the
// layout materialized). Emitting runs instead of individual instructions
// keeps full-workload simulations fast while preserving everything the
// paper's metrics need — miss counts, word usage, sequence lengths — because
// within a run the fetch addresses are consecutive by construction.
package trace

import "codelayout/internal/isa"

// FetchRun is a maximal run of sequentially fetched instruction words.
type FetchRun struct {
	// Addr is the virtual address of the first word.
	Addr uint64
	// Words is the number of consecutive words fetched (>= 1).
	Words int32
	// CPU is the processor executing the run.
	CPU uint8
	// PID identifies the executing process (server process number).
	PID uint16
	// Kernel reports whether the run is kernel text.
	Kernel bool
}

// End returns the address one past the last fetched word.
func (r FetchRun) End() uint64 { return r.Addr + uint64(r.Words)*isa.WordBytes }

// DataRef is a data memory reference issued by the workload (buffer pool
// page touches, log writes, private working storage).
type DataRef struct {
	Addr   uint64
	Bytes  int32
	CPU    uint8
	PID    uint16
	Write  bool
	Kernel bool
}

// Sink consumes instruction fetch runs.
type Sink interface {
	Fetch(r FetchRun)
}

// DataSink consumes data references.
type DataSink interface {
	Data(r DataRef)
}

// Flusher is implemented by sinks that buffer state across runs (for example
// the sequence-length sink) and must be flushed before reading results.
type Flusher interface {
	Flush()
}

// Tee fans a fetch stream out to several sinks.
type Tee []Sink

// Fetch implements Sink.
func (t Tee) Fetch(r FetchRun) {
	for _, s := range t {
		s.Fetch(r)
	}
}

// Flush flushes every sink that implements Flusher.
func (t Tee) Flush() {
	for _, s := range t {
		if f, ok := s.(Flusher); ok {
			f.Flush()
		}
	}
}

// Filter passes through only runs matching Keep.
type Filter struct {
	Keep func(FetchRun) bool
	Next Sink
}

// Fetch implements Sink.
func (f *Filter) Fetch(r FetchRun) {
	if f.Keep(r) {
		f.Next.Fetch(r)
	}
}

// Flush implements Flusher.
func (f *Filter) Flush() {
	if fl, ok := f.Next.(Flusher); ok {
		fl.Flush()
	}
}

// AppOnly wraps next so it sees only application (non-kernel) runs. This is
// how Section 4 of the paper studies the database application in isolation:
// operating-system references are filtered out of the stream before cache
// simulation.
func AppOnly(next Sink) Sink {
	return &Filter{Keep: func(r FetchRun) bool { return !r.Kernel }, Next: next}
}

// KernelOnly wraps next so it sees only kernel runs.
func KernelOnly(next Sink) Sink {
	return &Filter{Keep: func(r FetchRun) bool { return r.Kernel }, Next: next}
}

// Counter tallies instructions and runs.
type Counter struct {
	Runs         uint64
	Instructions uint64
	AppInstrs    uint64
	KernelInstrs uint64
}

// Fetch implements Sink.
func (c *Counter) Fetch(r FetchRun) {
	c.Runs++
	c.Instructions += uint64(r.Words)
	if r.Kernel {
		c.KernelInstrs += uint64(r.Words)
	} else {
		c.AppInstrs += uint64(r.Words)
	}
}
