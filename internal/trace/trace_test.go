package trace_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/trace"
)

func TestFiltersSplitStreams(t *testing.T) {
	var app, kern trace.Counter
	tee := trace.Tee{trace.AppOnly(&app), trace.KernelOnly(&kern)}
	tee.Fetch(trace.FetchRun{Addr: 0, Words: 5})
	tee.Fetch(trace.FetchRun{Addr: 100, Words: 3, Kernel: true})
	tee.Fetch(trace.FetchRun{Addr: 200, Words: 2})
	if app.Instructions != 7 || kern.Instructions != 3 {
		t.Fatalf("app=%d kern=%d", app.Instructions, kern.Instructions)
	}
}

func TestCounterSplitsAppKernel(t *testing.T) {
	var c trace.Counter
	c.Fetch(trace.FetchRun{Words: 4})
	c.Fetch(trace.FetchRun{Words: 6, Kernel: true})
	if c.AppInstrs != 4 || c.KernelInstrs != 6 || c.Instructions != 10 || c.Runs != 2 {
		t.Fatalf("%+v", c)
	}
}

func TestSeqLenContiguity(t *testing.T) {
	s := trace.NewSeqLen()
	// Two contiguous runs (5 + 3 words) then a jump, then 4 words.
	s.Fetch(trace.FetchRun{Addr: 0, Words: 5})
	s.Fetch(trace.FetchRun{Addr: 20, Words: 3})
	s.Fetch(trace.FetchRun{Addr: 1000, Words: 4})
	s.Flush()
	if s.Hist.N != 2 {
		t.Fatalf("sequences = %d", s.Hist.N)
	}
	if s.Hist.Counts[8-s.Hist.Min] != 1 || s.Hist.Counts[4-s.Hist.Min] != 1 {
		t.Fatalf("sequence buckets wrong: %v", s.Hist.Counts)
	}
	if got := s.Hist.Mean(); got != 6 {
		t.Fatalf("mean = %f", got)
	}
}

func TestSeqLenPerCPU(t *testing.T) {
	s := trace.NewSeqLen()
	// Interleaved CPUs must not break each other's sequences.
	s.Fetch(trace.FetchRun{Addr: 0, Words: 2, CPU: 0})
	s.Fetch(trace.FetchRun{Addr: 500, Words: 3, CPU: 1})
	s.Fetch(trace.FetchRun{Addr: 8, Words: 2, CPU: 0})
	s.Fetch(trace.FetchRun{Addr: 512, Words: 3, CPU: 1})
	s.Flush()
	if s.Hist.N != 2 {
		t.Fatalf("sequences = %d", s.Hist.N)
	}
	if s.Hist.Counts[4-s.Hist.Min] != 1 || s.Hist.Counts[6-s.Hist.Min] != 1 {
		t.Fatalf("per-cpu sequences wrong: %v", s.Hist.Counts)
	}
}

func TestFootprint(t *testing.T) {
	f := trace.NewFootprint(128)
	f.Fetch(trace.FetchRun{Addr: 0, Words: 8})     // line 0
	f.Fetch(trace.FetchRun{Addr: 120, Words: 4})   // crosses into line 1
	f.Fetch(trace.FetchRun{Addr: 12800, Words: 1}) // line 100
	if f.Lines() != 3 {
		t.Fatalf("lines = %d", f.Lines())
	}
	if f.Bytes() != 3*128 {
		t.Fatalf("bytes = %d", f.Bytes())
	}
	if f.Pages() != 2 {
		t.Fatalf("pages = %d", f.Pages())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			return false
		}
		var fetches []trace.FetchRun
		var datas []trace.DataRef
		for i := 0; i < 200; i++ {
			if r.Intn(4) == 0 {
				d := trace.DataRef{
					Addr: uint64(r.Intn(1 << 20)), Bytes: int32(1 + r.Intn(64)),
					CPU: uint8(r.Intn(4)), PID: uint16(r.Intn(32)),
					Write: r.Intn(2) == 0, Kernel: r.Intn(5) == 0,
				}
				datas = append(datas, d)
				w.Data(d)
			} else {
				fr := trace.FetchRun{
					Addr: uint64(r.Intn(1<<20)) &^ 3, Words: int32(1 + r.Intn(30)),
					CPU: uint8(r.Intn(4)), PID: uint16(r.Intn(32)), Kernel: r.Intn(5) == 0,
				}
				fetches = append(fetches, fr)
				w.Fetch(fr)
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := trace.NewReader(&buf)
		if err != nil {
			return false
		}
		var gotF []trace.FetchRun
		var gotD []trace.DataRef
		err = rd.Replay(sinkFunc(func(fr trace.FetchRun) { gotF = append(gotF, fr) }),
			dataFunc(func(d trace.DataRef) { gotD = append(gotD, d) }))
		if err != nil {
			t.Logf("seed %d: replay: %v", seed, err)
			return false
		}
		if len(gotF) != len(fetches) || len(gotD) != len(datas) {
			t.Logf("seed %d: counts %d/%d %d/%d", seed, len(gotF), len(fetches), len(gotD), len(datas))
			return false
		}
		for i := range fetches {
			if gotF[i] != fetches[i] {
				t.Logf("seed %d: fetch %d: %+v != %+v", seed, i, gotF[i], fetches[i])
				return false
			}
		}
		for i := range datas {
			if gotD[i] != datas[i] {
				t.Logf("seed %d: data %d mismatch", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

type sinkFunc func(trace.FetchRun)

func (f sinkFunc) Fetch(r trace.FetchRun) { f(r) }

type dataFunc func(trace.DataRef)

func (f dataFunc) Data(r trace.DataRef) { f(r) }

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("expected magic error")
	}
}
