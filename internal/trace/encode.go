package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format: a magic header followed by varint-encoded
// records. Addresses are delta-encoded per CPU, which keeps OLTP traces
// compact (most transfers are short).
const traceMagic = "CLTRACE1"

const (
	recFetch = 0x01
	recData  = 0x02
)

// Writer streams fetch runs and data refs to a binary trace file, so traces
// recorded by cmd/oltpbench can be replayed by cmd/icachesim.
type Writer struct {
	w       *bufio.Writer
	lastEnd [MaxCPUs]uint64
	err     error
	buf     []byte
}

// NewWriter writes a trace header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw, buf: make([]byte, 0, 64)}, nil
}

// Fetch implements Sink.
func (tw *Writer) Fetch(r FetchRun) {
	if tw.err != nil {
		return
	}
	delta := int64(r.Addr) - int64(tw.lastEnd[r.CPU])
	tw.lastEnd[r.CPU] = r.End()
	flags := byte(0)
	if r.Kernel {
		flags = 1
	}
	tw.buf = tw.buf[:0]
	tw.buf = append(tw.buf, recFetch, r.CPU, flags)
	tw.buf = binary.AppendUvarint(tw.buf, uint64(r.PID))
	tw.buf = binary.AppendVarint(tw.buf, delta)
	tw.buf = binary.AppendUvarint(tw.buf, uint64(r.Words))
	_, tw.err = tw.w.Write(tw.buf)
}

// Data implements DataSink.
func (tw *Writer) Data(r DataRef) {
	if tw.err != nil {
		return
	}
	flags := byte(0)
	if r.Kernel {
		flags |= 1
	}
	if r.Write {
		flags |= 2
	}
	tw.buf = tw.buf[:0]
	tw.buf = append(tw.buf, recData, r.CPU, flags)
	tw.buf = binary.AppendUvarint(tw.buf, uint64(r.PID))
	tw.buf = binary.AppendUvarint(tw.buf, r.Addr)
	tw.buf = binary.AppendUvarint(tw.buf, uint64(r.Bytes))
	_, tw.err = tw.w.Write(tw.buf)
}

// Close flushes the trace.
func (tw *Writer) Close() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Reader replays a binary trace into a Sink and optional DataSink.
type Reader struct {
	r       *bufio.Reader
	lastEnd [MaxCPUs]uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != traceMagic {
		return nil, errors.New("trace: bad magic")
	}
	return &Reader{r: br}, nil
}

// Replay streams every record to the sinks until EOF. dataSink may be nil.
func (tr *Reader) Replay(sink Sink, dataSink DataSink) error {
	for {
		kind, err := tr.r.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		cpu, err := tr.r.ReadByte()
		if err != nil {
			return err
		}
		if cpu >= MaxCPUs {
			return fmt.Errorf("trace: cpu %d out of range", cpu)
		}
		flags, err := tr.r.ReadByte()
		if err != nil {
			return err
		}
		pid, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return err
		}
		switch kind {
		case recFetch:
			delta, err := binary.ReadVarint(tr.r)
			if err != nil {
				return err
			}
			words, err := binary.ReadUvarint(tr.r)
			if err != nil {
				return err
			}
			r := FetchRun{
				Addr:   uint64(int64(tr.lastEnd[cpu]) + delta),
				Words:  int32(words),
				CPU:    cpu,
				PID:    uint16(pid),
				Kernel: flags&1 != 0,
			}
			tr.lastEnd[cpu] = r.End()
			if sink != nil {
				sink.Fetch(r)
			}
		case recData:
			addr, err := binary.ReadUvarint(tr.r)
			if err != nil {
				return err
			}
			n, err := binary.ReadUvarint(tr.r)
			if err != nil {
				return err
			}
			if dataSink != nil {
				dataSink.Data(DataRef{
					Addr:   addr,
					Bytes:  int32(n),
					CPU:    cpu,
					PID:    uint16(pid),
					Kernel: flags&1 != 0,
					Write:  flags&2 != 0,
				})
			}
		default:
			return fmt.Errorf("trace: unknown record kind %#x", kind)
		}
	}
}
