// Package codegen models the machine-code image of the database engine (and
// any other modeled binary) and turns real engine execution into the
// instruction fetch stream that image would produce under a given layout.
//
// Each engine routine is described once, at build time, as a fragment tree —
// straight-line code, data-dependent branches and loops (identified by site
// IDs the engine reports through probe.Probe), calls to other modeled
// routines, and "auto" constructs whose outcomes are drawn from a seeded
// PRNG instead of engine events. Fragments are lowered to ordinary
// program.Blocks, so the resulting image is optimizable by internal/core
// like any binary; the Emitter then replays engine events over the CFG and
// emits address runs for whichever layout is installed.
package codegen

// Frag is one node of a function body model.
type Frag interface{ isFrag() }

// Seq is n words of straight-line code.
type Seq int

func (Seq) isFrag() {}

// If is a data-dependent two-way branch. The engine reports its outcome via
// probe.Branch(Site, takenThen); Then and Else may be empty.
type If struct {
	Site string
	Then []Frag
	Else []Frag
}

func (If) isFrag() {}

// Loop is a data-dependent pre-test loop. The engine reports
// probe.Branch(Site, true) before each iteration and probe.Branch(Site,
// false) to exit. Head is the number of words in the loop-test block.
type Loop struct {
	Site string
	Head int
	Body []Frag
}

func (Loop) isFrag() {}

// Call invokes another modeled function by name. If the callee is an auto
// function it executes without engine involvement; otherwise the engine must
// probe.Enter/Leave it at this point.
type Call struct{ Fn string }

func (Call) isFrag() {}

// Switch is a data-dependent multi-way dispatch (indirect jump); the engine
// reports probe.Case(Site, k).
type Switch struct {
	Site  string
	Cases [][]Frag
}

func (Switch) isFrag() {}

// Ret returns from the function early (a final return is added
// automatically).
type Ret struct{}

func (Ret) isFrag() {}

// AutoIf is a branch resolved by the emitter's PRNG: Then executes with
// probability Prob. It models data-dependent variability below the
// granularity the engine reports.
type AutoIf struct {
	Prob float64
	Then []Frag
	Else []Frag
}

func (AutoIf) isFrag() {}

// AutoLoop is a loop whose continuation is drawn per arrival with the given
// probability (geometric trip counts, mean Prob/(1-Prob)).
type AutoLoop struct {
	Prob float64
	Head int
	Body []Frag
}

func (AutoLoop) isFrag() {}

// AutoPick dispatches through an indirect call site to one of several auto
// functions, chosen by PRNG with the given relative weights (uniform when
// nil). It is how the image spreads execution across a wide library
// footprint, the way a database's helper layers do.
type AutoPick struct {
	Fns     []string
	Weights []uint32
}

func (AutoPick) isFrag() {}

// FnSpec declares one modeled function.
type FnSpec struct {
	Name string
	// Auto marks functions that execute without engine events; all their
	// decision points must be Auto* fragments and all their callees must be
	// auto functions.
	Auto bool
	// Cold marks never-executed static-image functions.
	Cold bool
	Body []Frag
}

// ImageSpec declares a whole binary: functions in link order.
type ImageSpec struct {
	Name     string
	TextBase uint64
	Fns      []FnSpec
}
