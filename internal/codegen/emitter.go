package codegen

import (
	"fmt"
	"math/rand"
	"sort"

	"codelayout/internal/isa"
	"codelayout/internal/program"
)

// Collector receives logical block transitions (the Pixie instrumentation
// hook). prev is NoBlock at top-level entries.
type Collector interface {
	Block(prev, cur program.BlockID)
}

// Emitter replays engine events over the image's CFG under a specific
// layout, producing the instruction address runs the modeled binary would
// fetch. It implements the event half of probe.Probe (Enter/Leave/Branch/
// Case); Data and Syscall are forwarded to machine hooks.
//
// The emitter is a resumable CFG walker: it auto-advances through
// straight-line code, PRNG-resolved branches and auto-function calls, and
// stops exactly at the blocks whose outcome the engine must report. A
// mismatch between the engine's events and the model's structure panics with
// a diagnostic, so model drift is caught immediately in tests.
type Emitter struct {
	Img *Image
	L   *program.Layout
	// Sink receives each fetched address run.
	Sink func(addr uint64, words int32)
	// Collector, if non-nil, receives exact block/edge counts (Pixie).
	Collector Collector
	// Rng resolves auto branches, loops and picks.
	Rng *rand.Rand
	// OnData and OnSyscall forward the corresponding probe events.
	OnData    func(addr uint64, bytes int, write bool)
	OnSyscall func(name string)

	stack []eframe
	cur   program.BlockID
	prev  program.BlockID

	// unwinding suppresses probe events while a transaction-abort longjmp
	// (db.ErrDeadlock) propagates through instrumented frames whose
	// deferred Leave calls would otherwise fire mid-model; Reset re-arms.
	unwinding bool

	// Instructions counts words emitted through Sink.
	Instructions uint64
}

type eframe struct {
	name      string
	auto      bool
	callBlock program.BlockID
	cont      program.BlockID
}

// maxAutoDepth bounds auto-call recursion; the generated libraries are DAGs,
// so hitting it means a model bug.
const maxAutoDepth = 512

// NewEmitter creates an emitter over the image and layout.
func NewEmitter(img *Image, l *program.Layout, seed int64) *Emitter {
	return &Emitter{
		Img:  img,
		L:    l,
		Rng:  rand.New(rand.NewSource(seed)),
		cur:  program.NoBlock,
		prev: program.NoBlock,
	}
}

// Idle reports whether the emitter has no in-flight function.
func (e *Emitter) Idle() bool { return e.cur == program.NoBlock && len(e.stack) == 0 }

// SetLayout swaps the emitter onto a new layout of the same program — the
// machine's epoch-fenced hot-swap point. Mid-function the walker's notion of
// "current address" would go stale, so the emitter must be idle (between
// transactions); swapping while busy is a scheduling bug and panics.
func (e *Emitter) SetLayout(l *program.Layout) {
	if !e.Idle() {
		panic("codegen: SetLayout while a function is in flight")
	}
	if l.Prog != e.Img.Prog {
		panic("codegen: SetLayout with a layout of a different program")
	}
	e.L = l
}

// AbortUnwind implements db.Aborter: it suppresses all probe events until
// Reset, modeling the engine's longjmp out of a deadlock victim — the
// deferred Leave calls that run while the panic propagates reflect Go stack
// unwinding, not modeled instruction fetch.
func (e *Emitter) AbortUnwind() { e.unwinding = true }

// Reset abandons any in-flight function and re-arms event delivery. The
// machine calls it after recovering a deadlock-victim panic, before
// replaying the abort path (txn_abort) from idle.
func (e *Emitter) Reset() {
	e.unwinding = false
	e.stack = e.stack[:0]
	e.cur = program.NoBlock
	e.prev = program.NoBlock
}

func (e *Emitter) emit(addr uint64, words int32) {
	if words <= 0 {
		return
	}
	e.Instructions += uint64(words)
	if e.Sink != nil {
		e.Sink(addr, words)
	}
}

// transition emits block b's run for an exit to succ and arrives at succ.
func (e *Emitter) transition(b *program.Block, succ program.BlockID) {
	e.emit(e.L.Addr[b.ID], e.L.ExecWords(b, succ))
	e.prev = b.ID
	e.cur = succ
	if succ != program.NoBlock && e.Collector != nil {
		e.Collector.Block(b.ID, succ)
	}
}

// enterCall emits the call block's run and pushes the callee frame.
func (e *Emitter) enterCall(b *program.Block, callee *Fn) {
	e.emit(e.L.Addr[b.ID], e.L.ExecWords(b, b.Fall))
	e.stack = append(e.stack, eframe{
		name:      callee.EventName(),
		auto:      callee.Auto,
		callBlock: b.ID,
		cont:      b.Fall,
	})
	entry := callee.Proc.Entry()
	e.prev = b.ID
	e.cur = entry
	if e.Collector != nil {
		e.Collector.Block(b.ID, entry) // call edge
	}
}

// popRet emits the return block's run, pops the frame, and resumes at the
// continuation (through the landing branch if the layout needed one).
func (e *Emitter) popRet(b *program.Block) {
	e.emit(e.L.Addr[b.ID], e.L.ExecWords(b, program.NoBlock))
	f := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	if f.cont == program.NoBlock {
		// Top-level return: go idle.
		e.prev = b.ID
		e.cur = program.NoBlock
		return
	}
	if addr, words, ok := e.L.LandingRun(f.callBlock); ok {
		e.emit(addr, words)
	}
	e.prev = f.callBlock
	e.cur = f.cont
	if e.Collector != nil {
		e.Collector.Block(f.callBlock, f.cont) // continuation edge
	}
}

// advance walks the CFG until it needs an engine event (or goes idle).
func (e *Emitter) advance() {
	for e.cur != program.NoBlock {
		b := e.Img.Prog.Block(e.cur)
		switch b.Kind {
		case isa.TermFallThrough:
			e.transition(b, b.Fall)
		case isa.TermBranch:
			e.transition(b, b.Taken)
		case isa.TermCond:
			p, auto := e.Img.AutoProb[b.ID]
			if !auto {
				return // wait for Branch
			}
			if e.Rng.Float64() < p {
				e.transition(b, b.Fall)
			} else {
				e.transition(b, b.Taken)
			}
		case isa.TermIndirect:
			cum, auto := e.Img.AutoCum[b.ID]
			if !auto {
				return // wait for Case
			}
			x := uint32(e.Rng.Int63n(int64(cum[len(cum)-1])))
			k := sort.Search(len(cum), func(i int) bool { return cum[i] > x })
			e.transition(b, b.Targets[k])
		case isa.TermCall:
			callee := e.Img.FnOf(b.Callee)
			if !callee.Auto {
				return // wait for Enter
			}
			if len(e.stack) >= maxAutoDepth {
				panic(fmt.Sprintf("codegen: auto call depth exceeded at %s", callee.Name))
			}
			e.enterCall(b, callee)
		case isa.TermRet:
			if len(e.stack) == 0 {
				e.transition(b, program.NoBlock)
				return
			}
			if !e.stack[len(e.stack)-1].auto {
				return // wait for Leave
			}
			e.popRet(b)
		case isa.TermHalt:
			e.transition(b, program.NoBlock)
			return
		}
	}
}

// Enter implements the probe event: the engine entered fn.
func (e *Emitter) Enter(fn string) {
	if e.unwinding {
		return
	}
	f, ok := e.Img.Fns[fn]
	if !ok {
		panic(fmt.Sprintf("codegen: Enter(%q): unknown function", fn))
	}
	if e.cur == program.NoBlock {
		// Top-level entry (transaction driver).
		e.stack = append(e.stack, eframe{name: fn, callBlock: program.NoBlock, cont: program.NoBlock})
		e.prev = program.NoBlock
		e.cur = f.Proc.Entry()
		if e.Collector != nil {
			e.Collector.Block(program.NoBlock, e.cur)
		}
		e.advance()
		return
	}
	b := e.Img.Prog.Block(e.cur)
	if b.Kind != isa.TermCall {
		panic(fmt.Sprintf("codegen: Enter(%q) but model at %s block b%d of %s",
			fn, b.Kind, b.ID, e.frameName()))
	}
	// A fused image may have rewired the call to a per-kind clone; the clone
	// replays the original's events, so entering it under the original name
	// is the expected path.
	callee := e.Img.FnOf(b.Callee)
	if callee != f && callee.EventName() != fn {
		panic(fmt.Sprintf("codegen: Enter(%q) but model expects call to %q", fn, callee.Name))
	}
	e.enterCall(b, callee)
	e.advance()
}

// Leave implements the probe event: the engine returned from fn.
func (e *Emitter) Leave(fn string) {
	if e.unwinding {
		return
	}
	if len(e.stack) == 0 {
		panic(fmt.Sprintf("codegen: Leave(%q) with empty stack", fn))
	}
	top := e.stack[len(e.stack)-1]
	if top.name != fn {
		panic(fmt.Sprintf("codegen: Leave(%q) but current frame is %q", fn, top.name))
	}
	b := e.Img.Prog.Block(e.cur)
	if b.Kind != isa.TermRet {
		panic(fmt.Sprintf("codegen: Leave(%q) but model at %s block b%d (missing events?)",
			fn, b.Kind, b.ID))
	}
	e.popRet(b)
	e.advance()
}

// Branch implements the probe event for If and Loop sites.
func (e *Emitter) Branch(site string, taken bool) {
	if e.unwinding {
		return
	}
	b := e.curSiteBlock(site, isa.TermCond)
	if taken {
		e.transition(b, b.Fall)
	} else {
		e.transition(b, b.Taken)
	}
	e.advance()
}

// Case implements the probe event for Switch sites.
func (e *Emitter) Case(site string, k int) {
	if e.unwinding {
		return
	}
	b := e.curSiteBlock(site, isa.TermIndirect)
	if k < 0 || k >= len(b.Targets) {
		panic(fmt.Sprintf("codegen: Case(%q, %d) out of range (%d cases)", site, k, len(b.Targets)))
	}
	e.transition(b, b.Targets[k])
	e.advance()
}

// Data forwards a data reference to the machine hook.
func (e *Emitter) Data(addr uint64, bytes int, write bool) {
	if e.unwinding {
		return
	}
	if e.OnData != nil {
		e.OnData(addr, bytes, write)
	}
}

// Syscall forwards a kernel crossing to the machine hook.
func (e *Emitter) Syscall(name string) {
	if e.unwinding {
		return
	}
	if e.OnSyscall != nil {
		e.OnSyscall(name)
	}
}

// RunAuto executes an auto function to completion from idle (used for the
// kernel image, whose services have no engine instrumentation).
func (e *Emitter) RunAuto(fn string) {
	f, ok := e.Img.Fns[fn]
	if !ok {
		panic(fmt.Sprintf("codegen: RunAuto(%q): unknown function", fn))
	}
	if !f.Auto {
		panic(fmt.Sprintf("codegen: RunAuto(%q): not an auto function", fn))
	}
	if e.cur != program.NoBlock {
		panic(fmt.Sprintf("codegen: RunAuto(%q) while busy", fn))
	}
	e.stack = append(e.stack, eframe{name: fn, auto: true, callBlock: program.NoBlock, cont: program.NoBlock})
	e.prev = program.NoBlock
	e.cur = f.Proc.Entry()
	if e.Collector != nil {
		e.Collector.Block(program.NoBlock, e.cur)
	}
	e.advance()
	if e.cur != program.NoBlock || len(e.stack) != 0 {
		panic(fmt.Sprintf("codegen: RunAuto(%q) did not run to completion", fn))
	}
}

func (e *Emitter) curSiteBlock(site string, kind isa.TermKind) *program.Block {
	if e.cur == program.NoBlock {
		panic(fmt.Sprintf("codegen: event at site %q while idle", site))
	}
	b := e.Img.Prog.Block(e.cur)
	if b.Kind != kind || e.Img.Site[b.ID] != site {
		panic(fmt.Sprintf("codegen: event for site %q but model at %s block b%d (site %q) in %s",
			site, b.Kind, b.ID, e.Img.Site[b.ID], e.frameName()))
	}
	return b
}

func (e *Emitter) frameName() string {
	if len(e.stack) == 0 {
		return "<no frame>"
	}
	return e.stack[len(e.stack)-1].name
}
