package codegen_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/trace"
)

// buildTestImage: an engine fn with a branch, a loop, a call to another
// engine fn, and calls into an auto helper.
func buildTestImage(t *testing.T) *codegen.Image {
	t.Helper()
	img, err := codegen.Build(codegen.ImageSpec{
		Name:     "t",
		TextBase: isa.AppTextBase,
		Fns: []codegen.FnSpec{
			{Name: "helper", Auto: true, Body: []codegen.Frag{
				codegen.Seq(4),
				codegen.AutoIf{Prob: 0.5, Then: []codegen.Frag{codegen.Seq(3)}},
				codegen.Seq(2),
			}},
			{Name: "inner", Body: []codegen.Frag{
				codegen.Seq(3),
				codegen.If{Site: "inner_cond", Then: []codegen.Frag{codegen.Seq(5)}, Else: []codegen.Frag{codegen.Seq(2)}},
				codegen.Call{Fn: "helper"},
				codegen.Seq(1),
			}},
			{Name: "outer", Body: []codegen.Frag{
				codegen.Seq(2),
				codegen.Loop{Site: "outer_loop", Head: 2, Body: []codegen.Frag{
					codegen.Call{Fn: "inner"},
					codegen.Seq(1),
				}},
				codegen.Switch{Site: "outer_sw", Cases: [][]codegen.Frag{
					{codegen.Seq(2)}, {codegen.Seq(4)}, {codegen.Seq(6)},
				}},
				codegen.Seq(3),
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// driveScript runs a fixed event script against the emitter.
func driveScript(e *codegen.Emitter, iters int, takeThen bool, swCase int) {
	e.Enter("outer")
	for i := 0; i < iters; i++ {
		e.Branch("outer_loop", true)
		e.Enter("inner")
		e.Branch("inner_cond", takeThen)
		e.Leave("inner")
	}
	e.Branch("outer_loop", false)
	e.Case("outer_sw", swCase)
	e.Leave("outer")
}

func TestEmitterRunsScript(t *testing.T) {
	img := buildTestImage(t)
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	e := codegen.NewEmitter(img, l, 1)
	var runs []trace.FetchRun
	e.Sink = func(addr uint64, words int32) {
		runs = append(runs, trace.FetchRun{Addr: addr, Words: words})
	}
	driveScript(e, 3, true, 1)
	if !e.Idle() {
		t.Fatal("emitter not idle after script")
	}
	if len(runs) == 0 || e.Instructions == 0 {
		t.Fatal("no instructions emitted")
	}
	// Every run must lie inside the text segment.
	end := l.Addr[l.Order[len(l.Order)-1]] + uint64(l.Occ[l.Order[len(l.Order)-1]])*isa.WordBytes
	for _, r := range runs {
		if r.Addr < img.Prog.TextBase || r.End() > end {
			t.Fatalf("run %#x+%d outside text", r.Addr, r.Words)
		}
	}
}

// TestEmitterLayoutInvariance is the central correctness property of the
// whole reproduction: the same engine events over different layouts must
// execute the same logical block sequence (identical Pixie profiles), while
// addresses differ.
func TestEmitterLayoutInvariance(t *testing.T) {
	img := buildTestImage(t)
	base, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Gather a profile under the baseline to feed the optimizer.
	px1 := profile.NewPixie(img.Prog, "p1")
	e1 := codegen.NewEmitter(img, base, 9)
	e1.Collector = px1
	driveScript(e1, 4, false, 2)

	opt, _, err := core.Optimize(img.Prog, px1.Profile, core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same script + same PRNG seed on both layouts.
	for _, seed := range []int64{9, 77} {
		pa := profile.NewPixie(img.Prog, "a")
		ea := codegen.NewEmitter(img, base, seed)
		ea.Collector = pa
		driveScript(ea, 4, false, 2)

		pb := profile.NewPixie(img.Prog, "b")
		eb := codegen.NewEmitter(img, opt, seed)
		eb.Collector = pb
		driveScript(eb, 4, false, 2)

		for b := range pa.Profile.BlockCount {
			if pa.Profile.BlockCount[b] != pb.Profile.BlockCount[b] {
				t.Fatalf("seed %d: block %d count %d != %d under optimized layout",
					seed, b, pa.Profile.BlockCount[b], pb.Profile.BlockCount[b])
			}
		}
		if len(pa.Profile.EdgeCount) != len(pb.Profile.EdgeCount) {
			t.Fatalf("seed %d: edge sets differ", seed)
		}
		for k, n := range pa.Profile.EdgeCount {
			if pb.Profile.EdgeCount[k] != n {
				t.Fatalf("seed %d: edge %d count differs", seed, k)
			}
		}
	}
}

func TestEmitterPanicsOnModelDrift(t *testing.T) {
	img := buildTestImage(t)
	l, _ := program.BaselineLayout(img.Prog)
	cases := []struct {
		name  string
		drive func(e *codegen.Emitter)
	}{
		{"wrong site", func(e *codegen.Emitter) {
			e.Enter("outer")
			e.Branch("inner_cond", true) // model is at outer_loop
		}},
		{"wrong callee", func(e *codegen.Emitter) {
			e.Enter("outer")
			e.Branch("outer_loop", true)
			e.Enter("outer") // model expects inner
		}},
		{"early leave", func(e *codegen.Emitter) {
			e.Enter("outer")
			e.Leave("outer") // pending loop decision
		}},
		{"leave wrong frame", func(e *codegen.Emitter) {
			e.Enter("outer")
			e.Branch("outer_loop", true)
			e.Enter("inner")
			e.Leave("outer")
		}},
		{"case out of range", func(e *codegen.Emitter) {
			e.Enter("outer")
			e.Branch("outer_loop", false)
			e.Case("outer_sw", 9)
		}},
		{"unknown fn", func(e *codegen.Emitter) { e.Enter("nope") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := codegen.NewEmitter(img, l, 1)
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.drive(e)
		})
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec codegen.ImageSpec
	}{
		{"dup fn", codegen.ImageSpec{Fns: []codegen.FnSpec{
			{Name: "a", Auto: true, Body: []codegen.Frag{codegen.Seq(1)}},
			{Name: "a", Auto: true, Body: []codegen.Frag{codegen.Seq(1)}},
		}}},
		{"unknown callee", codegen.ImageSpec{Fns: []codegen.FnSpec{
			{Name: "a", Body: []codegen.Frag{codegen.Call{Fn: "zzz"}}},
		}}},
		{"auto fn with site", codegen.ImageSpec{Fns: []codegen.FnSpec{
			{Name: "a", Auto: true, Body: []codegen.Frag{codegen.If{Site: "s", Then: []codegen.Frag{codegen.Seq(1)}}}},
		}}},
		{"auto calls engine", codegen.ImageSpec{Fns: []codegen.FnSpec{
			{Name: "eng", Body: []codegen.Frag{codegen.Seq(1)}},
			{Name: "a", Auto: true, Body: []codegen.Frag{codegen.Call{Fn: "eng"}}},
		}}},
		{"bad autoloop prob", codegen.ImageSpec{Fns: []codegen.FnSpec{
			{Name: "a", Auto: true, Body: []codegen.Frag{codegen.AutoLoop{Prob: 1.5}}},
		}}},
		{"empty autopick", codegen.ImageSpec{Fns: []codegen.FnSpec{
			{Name: "a", Auto: true, Body: []codegen.Frag{codegen.AutoPick{}}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.spec.TextBase = isa.AppTextBase
			if _, err := codegen.Build(tc.spec); err == nil {
				t.Fatal("expected build error")
			}
		})
	}
}

func TestGenLayerAndColdBuild(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	leafSpecs, leafNames := codegen.GenLayer(r, codegen.LibConfig{
		Prefix: "leaf", N: 20, MeanWords: 50,
	}, nil)
	topSpecs, _ := codegen.GenLayer(r, codegen.LibConfig{
		Prefix: "top", N: 10, MeanWords: 40, CallsPerFn: 2, PickWidth: 4,
	}, leafNames)
	cold := codegen.GenCold(r, "cold", 10_000, 500)
	fns := append(append(leafSpecs, topSpecs...), cold...)
	img, err := codegen.Build(codegen.ImageSpec{Name: "lib", TextBase: isa.AppTextBase, Fns: fns})
	if err != nil {
		t.Fatal(err)
	}
	st := img.Prog.ComputeStats()
	if st.ColdProcs == 0 {
		t.Fatal("no cold procs")
	}
	// Cold code should be close to the requested amount.
	coldWords := st.BodyWords - st.HotWords
	if coldWords < 9_000 || coldWords > 13_000 {
		t.Fatalf("cold words = %d", coldWords)
	}
	// Auto walk every top function to completion repeatedly.
	l, err := program.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	e := codegen.NewEmitter(img, l, 3)
	e.Sink = func(uint64, int32) {}
	for i := 0; i < 50; i++ {
		e.RunAuto("top_3")
	}
	if !e.Idle() {
		t.Fatal("walker stuck")
	}
	if e.Instructions == 0 {
		t.Fatal("no instructions")
	}
}

func TestAutoPickRespectsWeights(t *testing.T) {
	img, err := codegen.Build(codegen.ImageSpec{
		Name:     "w",
		TextBase: isa.AppTextBase,
		Fns: []codegen.FnSpec{
			{Name: "rare", Auto: true, Body: []codegen.Frag{codegen.Seq(1)}},
			{Name: "hot", Auto: true, Body: []codegen.Frag{codegen.Seq(2)}},
			{Name: "top", Auto: true, Body: []codegen.Frag{
				codegen.AutoPick{Fns: []string{"rare", "hot"}, Weights: []uint32{1, 99}},
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := program.BaselineLayout(img.Prog)
	e := codegen.NewEmitter(img, l, 11)
	e.Sink = func(uint64, int32) {}
	px := profile.NewPixie(img.Prog, "w")
	e.Collector = px
	for i := 0; i < 2000; i++ {
		e.RunAuto("top")
	}
	rareEntry := img.Prog.FindProc("rare").Entry()
	hotEntry := img.Prog.FindProc("hot").Entry()
	rareN := px.Profile.Count(rareEntry)
	hotN := px.Profile.Count(hotEntry)
	if rareN+hotN != 2000 {
		t.Fatalf("picks = %d", rareN+hotN)
	}
	if rareN > 100 || hotN < 1900 {
		t.Fatalf("weights ignored: rare=%d hot=%d", rareN, hotN)
	}
}
