package codegen

import (
	"fmt"

	"codelayout/internal/isa"
	"codelayout/internal/program"
)

// Fn is a modeled function inside a built image.
type Fn struct {
	Name string
	Auto bool
	Proc *program.Procedure
	// CloneOf names the original function this Fn was cloned from by the
	// fusion specializer (empty for functions built from a spec). Clones
	// replay the original's probe events under the original's name.
	CloneOf string
}

// EventName returns the probe-event name this function answers to: its own
// name, or — for a fusion clone — the name of the function it was cloned
// from.
func (fn *Fn) EventName() string {
	if fn.CloneOf != "" {
		return fn.CloneOf
	}
	return fn.Name
}

// Image is a modeled binary: the program plus the annotations the emitter
// needs to replay engine events over it.
type Image struct {
	Prog *program.Program
	Fns  map[string]*Fn
	// fnByProc maps ProcID to Fn.
	fnByProc []*Fn
	// Site names the engine decision site implemented by a block (Cond or
	// Indirect terminators).
	Site map[program.BlockID]string
	// AutoProb gives the PRNG probability of the Fall arm for auto Cond
	// blocks.
	AutoProb map[program.BlockID]float64
	// AutoCum gives cumulative PRNG weights for auto Indirect blocks,
	// parallel to Block.Targets.
	AutoCum map[program.BlockID][]uint32
}

// FnOf returns the modeled function owning the procedure.
func (img *Image) FnOf(id program.ProcID) *Fn { return img.fnByProc[id] }

// Entry returns the entry block of the named function.
func (img *Image) Entry(name string) (program.BlockID, error) {
	fn, ok := img.Fns[name]
	if !ok {
		return program.NoBlock, fmt.Errorf("codegen: unknown function %q", name)
	}
	return fn.Proc.Entry(), nil
}

// Build lowers an image spec into a program plus emitter annotations.
func Build(spec ImageSpec) (*Image, error) {
	img := &Image{
		Prog:     program.New(spec.Name, spec.TextBase),
		Fns:      make(map[string]*Fn, len(spec.Fns)),
		Site:     make(map[program.BlockID]string),
		AutoProb: make(map[program.BlockID]float64),
		AutoCum:  make(map[program.BlockID][]uint32),
	}
	// First pass: declare procedures so calls can resolve in any order.
	for _, fs := range spec.Fns {
		if _, dup := img.Fns[fs.Name]; dup {
			return nil, fmt.Errorf("codegen: duplicate function %q", fs.Name)
		}
		pr := img.Prog.AddProc(fs.Name)
		pr.Cold = fs.Cold
		fn := &Fn{Name: fs.Name, Auto: fs.Auto, Proc: pr}
		img.Fns[fs.Name] = fn
		img.fnByProc = append(img.fnByProc, fn)
	}
	// Second pass: lower bodies.
	for _, fs := range spec.Fns {
		lo := &lowerer{img: img, pr: img.Fns[fs.Name].Proc, auto: fs.Auto, fname: fs.Name}
		if err := lo.lowerFn(fs.Body); err != nil {
			return nil, err
		}
	}
	if err := img.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: lowered program invalid: %w", err)
	}
	if err := img.checkAutoClosure(); err != nil {
		return nil, err
	}
	return img, nil
}

// checkAutoClosure verifies auto functions only reach auto constructs.
func (img *Image) checkAutoClosure() error {
	for _, fn := range img.Fns {
		if !fn.Auto {
			continue
		}
		for _, bid := range fn.Proc.Blocks {
			b := img.Prog.Block(bid)
			switch b.Kind {
			case isa.TermCond, isa.TermIndirect:
				if site, ok := img.Site[bid]; ok {
					return fmt.Errorf("codegen: auto fn %q has engine site %q", fn.Name, site)
				}
			case isa.TermCall:
				callee := img.FnOf(b.Callee)
				if !callee.Auto {
					return fmt.Errorf("codegen: auto fn %q calls engine fn %q", fn.Name, callee.Name)
				}
			}
		}
	}
	return nil
}

// lowerer lowers one function body.
type lowerer struct {
	img   *Image
	pr    *program.Procedure
	auto  bool
	fname string
	err   error
}

// patch is a pending successor assignment.
type patch func(program.BlockID)

func (lo *lowerer) newBlock() *program.Block {
	return lo.img.Prog.AddBlock(lo.pr, 0)
}

func (lo *lowerer) fail(format string, args ...interface{}) {
	if lo.err == nil {
		lo.err = fmt.Errorf("codegen: fn %q: "+format, append([]interface{}{lo.fname}, args...)...)
	}
}

// lowerFn lowers the whole body and seals every exit with a return block.
func (lo *lowerer) lowerFn(body []Frag) error {
	entry, exits := lo.region(body)
	_ = entry // the first created block is the proc entry by construction
	if len(exits) > 0 {
		ret := lo.newBlock()
		ret.Kind = isa.TermRet
		for _, p := range exits {
			p(ret.ID)
		}
	}
	return lo.err
}

// region lowers a fragment list into fresh blocks. It returns the region's
// entry block and the patches for every exit that should continue at
// whatever follows the region.
func (lo *lowerer) region(frags []Frag) (program.BlockID, []patch) {
	open := lo.newBlock()
	entry := open.ID

	// seal closes the open block with the given terminator, returning it.
	// After sealing, callers must either set open to a new block or finish.
	for _, f := range frags {
		if lo.err != nil {
			return entry, nil
		}
		switch fr := f.(type) {
		case Seq:
			if fr < 0 {
				lo.fail("negative Seq")
				return entry, nil
			}
			open.Body += int32(fr)

		case Ret:
			open.Kind = isa.TermRet
			// Anything after Ret in the same region is unreachable.
			return entry, nil

		case If:
			open = lo.lowerIf(open, fr.Site, 0, fr.Then, fr.Else)

		case AutoIf:
			open = lo.lowerIf(open, "", fr.Prob, fr.Then, fr.Else)

		case Loop:
			open = lo.lowerLoop(open, fr.Site, 0, fr.Head, fr.Body)

		case AutoLoop:
			if fr.Prob < 0 || fr.Prob >= 1 {
				lo.fail("AutoLoop prob %v outside [0,1)", fr.Prob)
				return entry, nil
			}
			open = lo.lowerLoop(open, "", fr.Prob, fr.Head, fr.Body)

		case Call:
			open.Kind = isa.TermCall
			callee, ok := lo.img.Fns[fr.Fn]
			if !ok {
				lo.fail("call to unknown fn %q", fr.Fn)
				return entry, nil
			}
			open.Callee = callee.Proc.ID
			cont := lo.newBlock()
			open.Fall = cont.ID
			open = cont

		case Switch:
			open = lo.lowerSwitch(open, fr.Site, fr.Cases, nil, nil)

		case AutoPick:
			if len(fr.Fns) == 0 {
				lo.fail("empty AutoPick")
				return entry, nil
			}
			open = lo.lowerSwitch(open, "", nil, fr.Fns, fr.Weights)

		default:
			lo.fail("unknown fragment %T", f)
			return entry, nil
		}
	}
	// The open block is the region's exit.
	open.Kind = isa.TermFallThrough
	id := open.ID
	return entry, []patch{func(b program.BlockID) { lo.img.Prog.Block(id).Fall = b }}
}

func (lo *lowerer) lowerIf(open *program.Block, site string, prob float64, then, els []Frag) *program.Block {
	if site != "" && lo.auto {
		lo.fail("engine If %q inside auto fn", site)
		return open
	}
	open.Kind = isa.TermCond
	cond := open.ID
	thenE, thenX := lo.region(then)
	lo.img.Prog.Block(cond).Fall = thenE
	var elseX []patch
	var pending []patch
	if len(els) > 0 {
		elseE, x := lo.region(els)
		lo.img.Prog.Block(cond).Taken = elseE
		elseX = x
	} else {
		id := cond
		pending = append(pending, func(b program.BlockID) { lo.img.Prog.Block(id).Taken = b })
	}
	join := lo.newBlock()
	for _, p := range thenX {
		p(join.ID)
	}
	for _, p := range elseX {
		p(join.ID)
	}
	for _, p := range pending {
		p(join.ID)
	}
	// Degenerate conditional guard: with an empty Then region, the then
	// entry is an empty fall block, distinct from join, so Taken != Fall
	// always holds here by construction.
	if site != "" {
		lo.img.Site[cond] = site
	} else {
		lo.img.AutoProb[cond] = prob
	}
	return join
}

func (lo *lowerer) lowerLoop(open *program.Block, site string, prob float64, headWords int, body []Frag) *program.Block {
	if site != "" && lo.auto {
		lo.fail("engine Loop %q inside auto fn", site)
		return open
	}
	head := lo.newBlock()
	head.Body = int32(headWords)
	head.Kind = isa.TermCond
	open.Kind = isa.TermFallThrough
	open.Fall = head.ID
	headID := head.ID
	bodyE, bodyX := lo.region(body)
	lo.img.Prog.Block(headID).Fall = bodyE
	for _, p := range bodyX {
		p(headID) // back edge
	}
	join := lo.newBlock()
	lo.img.Prog.Block(headID).Taken = join.ID
	if site != "" {
		lo.img.Site[headID] = site
	} else {
		lo.img.AutoProb[headID] = prob
	}
	return join
}

func (lo *lowerer) lowerSwitch(open *program.Block, site string, cases [][]Frag, pickFns []string, weights []uint32) *program.Block {
	if site != "" && lo.auto {
		lo.fail("engine Switch %q inside auto fn", site)
		return open
	}
	open.Kind = isa.TermIndirect
	sw := open.ID
	join := lo.newBlock()
	if pickFns != nil {
		// Indirect call dispatch: one call stub per target function.
		if weights != nil && len(weights) != len(pickFns) {
			lo.fail("AutoPick weights/fns mismatch")
			return join
		}
		var cum []uint32
		var acc uint32
		for i, name := range pickFns {
			callee, ok := lo.img.Fns[name]
			if !ok {
				lo.fail("AutoPick of unknown fn %q", name)
				return join
			}
			stub := lo.newBlock()
			stub.Kind = isa.TermCall
			stub.Callee = callee.Proc.ID
			stub.Fall = join.ID
			lo.img.Prog.Block(sw).Targets = append(lo.img.Prog.Block(sw).Targets, stub.ID)
			w := uint32(1)
			if weights != nil {
				w = weights[i]
			}
			acc += w
			cum = append(cum, acc)
		}
		lo.img.AutoCum[sw] = cum
		return join
	}
	if len(cases) == 0 {
		lo.fail("Switch %q with no cases", site)
		return join
	}
	for _, c := range cases {
		ce, cx := lo.region(c)
		lo.img.Prog.Block(sw).Targets = append(lo.img.Prog.Block(sw).Targets, ce)
		for _, p := range cx {
			p(join.ID)
		}
	}
	lo.img.Site[sw] = site
	return join
}
