package codegen_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// randFrags generates a random auto-only fragment tree of bounded depth.
func randFrags(r *rand.Rand, depth int, pool []string) []codegen.Frag {
	n := 1 + r.Intn(4)
	out := make([]codegen.Frag, 0, n)
	for i := 0; i < n; i++ {
		switch k := r.Intn(10); {
		case k < 4 || depth <= 0:
			out = append(out, codegen.Seq(1+r.Intn(12)))
		case k < 6:
			f := codegen.AutoIf{Prob: r.Float64(), Then: randFrags(r, depth-1, pool)}
			if r.Intn(2) == 0 {
				f.Else = randFrags(r, depth-1, pool)
			}
			out = append(out, f)
		case k < 8:
			out = append(out, codegen.AutoLoop{
				Prob: 0.3 + 0.4*r.Float64(),
				Head: 1 + r.Intn(3),
				Body: randFrags(r, depth-1, pool),
			})
		case k < 9 && len(pool) > 0:
			out = append(out, codegen.Call{Fn: pool[r.Intn(len(pool))]})
		default:
			if len(pool) >= 2 {
				w := 2 + r.Intn(3)
				if w > len(pool) {
					w = len(pool)
				}
				start := r.Intn(len(pool) - w + 1)
				out = append(out, codegen.AutoPick{Fns: pool[start : start+w]})
			} else {
				out = append(out, codegen.Seq(2))
			}
		}
	}
	return out
}

// randImage builds a random layered auto image; functions only call earlier
// (deeper) functions, so auto walks always terminate.
func randImage(r *rand.Rand) (*codegen.Image, error) {
	var fns []codegen.FnSpec
	var pool []string
	nfns := 3 + r.Intn(8)
	for i := 0; i < nfns; i++ {
		name := string(rune('a'+i)) + "_fn"
		fns = append(fns, codegen.FnSpec{
			Name: name,
			Auto: true,
			Body: randFrags(r, 3, pool),
		})
		pool = append(pool, name)
	}
	return codegen.Build(codegen.ImageSpec{Name: "prop", TextBase: isa.AppTextBase, Fns: fns})
}

// TestRandomImagesWalkAndOptimizeProperty is the end-to-end property: any
// random image builds into a valid program; seeded auto walks terminate;
// the profile they produce drives every optimization combo into a valid
// layout; and re-walking with the same seed under the optimized layout
// executes the identical logical block sequence.
func TestRandomImagesWalkAndOptimizeProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img, err := randImage(r)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if err := img.Prog.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		base, err := program.BaselineLayout(img.Prog)
		if err != nil {
			return false
		}
		top := img.Prog.Procs[len(img.Prog.Procs)-1].Name

		walk := func(l *program.Layout, emitterSeed int64) *profile.Profile {
			px := profile.NewPixie(img.Prog, "w")
			e := codegen.NewEmitter(img, l, emitterSeed)
			e.Collector = px
			e.Sink = func(uint64, int32) {}
			for i := 0; i < 30; i++ {
				e.RunAuto(top)
			}
			if !e.Idle() {
				t.Fatalf("seed %d: walker stuck", seed)
			}
			return px.Profile
		}
		prof := walk(base, seed*3+1)
		for _, combo := range core.Combos() {
			opt, _, err := core.Optimize(img.Prog, prof, combo.Opts)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, combo.Name, err)
				return false
			}
			if err := opt.Validate(); err != nil {
				t.Logf("seed %d %s: %v", seed, combo.Name, err)
				return false
			}
			// Layout invariance: identical PRNG seed, identical logical
			// execution.
			again := walk(opt, seed*3+1)
			for b, n := range prof.BlockCount {
				if again.BlockCount[b] != n {
					t.Logf("seed %d %s: block %d count %d != %d",
						seed, combo.Name, b, again.BlockCount[b], n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
