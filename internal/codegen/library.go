package codegen

import (
	"fmt"
	"math"
	"math/rand"
)

// LibConfig shapes one generated layer of auto helper functions. These model
// the bulk of a commercial database binary — row formatters, comparators,
// latch and cursor utilities — that executes under the instrumented entry
// points and gives the image its large, flat instruction footprint.
type LibConfig struct {
	// Prefix names the layer's functions (prefix_0, prefix_1, ...).
	Prefix string
	// N is the number of functions in the layer.
	N int
	// MeanWords is the approximate straight-line size of each function.
	MeanWords int
	// CallsPerFn is how many call sites each function gets into the next
	// layer (0 for leaf layers).
	CallsPerFn int
	// PickWidth is the dispatch width of each call site: >1 uses an
	// indirect AutoPick over that many candidates, spreading execution
	// across the layer below.
	PickWidth int
}

// GenLayer generates one layer of auto functions that call into pool (the
// already-generated layer below). It returns the specs and the new layer's
// function names.
func GenLayer(r *rand.Rand, cfg LibConfig, pool []string) ([]FnSpec, []string) {
	specs := make([]FnSpec, 0, cfg.N)
	names := make([]string, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		name := fmt.Sprintf("%s_%d", cfg.Prefix, i)
		specs = append(specs, FnSpec{
			Name: name,
			Auto: true,
			Body: genAutoBody(r, cfg, pool),
		})
		names = append(names, name)
	}
	return specs, names
}

// genAutoBody builds a plausible helper-function body: short straight-line
// stretches separated by biased branches, an occasional short loop, and call
// sites into the layer below.
func genAutoBody(r *rand.Rand, cfg LibConfig, pool []string) []Frag {
	var body []Frag
	remaining := cfg.MeanWords/2 + r.Intn(cfg.MeanWords+1)
	calls := cfg.CallsPerFn
	if len(pool) == 0 {
		calls = 0
	}
	seq := func(max int) Seq {
		n := 2 + r.Intn(max)
		if n > remaining {
			n = remaining
		}
		if n < 1 {
			n = 1
		}
		remaining -= n
		return Seq(n)
	}
	for remaining > 0 {
		switch r.Intn(8) {
		case 0, 1, 2:
			body = append(body, seq(9))
		case 3:
			// Biased conditional: hot arm first with p in [0.65, 0.95].
			p := 0.65 + 0.3*r.Float64()
			frag := AutoIf{Prob: p, Then: []Frag{seq(7)}}
			if r.Intn(2) == 0 {
				frag.Else = []Frag{seq(7)}
			}
			body = append(body, frag)
		case 4:
			// Short loop, mean ~2 extra iterations.
			body = append(body, AutoLoop{Prob: 0.55 + 0.15*r.Float64(), Head: 2, Body: []Frag{seq(6)}})
		case 5:
			if calls > 0 {
				body = append(body, genCallSite(r, cfg, pool))
				calls--
			} else {
				body = append(body, seq(9))
			}
		case 6, 7:
			// Error/assertion path: in-line code that essentially never
			// executes, as real engine code carries everywhere. These
			// blocks inflate the baseline's fetched-but-unused words; the
			// fine-grain splitting pass is what gets rid of them.
			body = append(body, ErrPath(r))
		}
	}
	for calls > 0 {
		body = append(body, genCallSite(r, cfg, pool))
		calls--
	}
	return body
}

// ErrPath returns an inline error-handling branch that essentially never
// executes (probability ~1 of falling through past it). Real database code
// is dense with these; they are what makes nearly half the fetched words of
// an unoptimized binary useless.
func ErrPath(r *rand.Rand) Frag {
	return AutoIf{
		Prob: 0.9995,
		Else: []Frag{Seq(6 + r.Intn(28))},
	}
}

func genCallSite(r *rand.Rand, cfg LibConfig, pool []string) Frag {
	width := cfg.PickWidth
	if width <= 1 || len(pool) == 1 {
		return Call{Fn: pool[r.Intn(len(pool))]}
	}
	if width > len(pool) {
		width = len(pool)
	}
	// Pick a random window of candidates with Zipf-ish weights so that some
	// callees are much hotter than others (a flat-but-skewed profile, like
	// Figure 3's).
	start := r.Intn(len(pool) - width + 1)
	fns := make([]string, width)
	weights := make([]uint32, width)
	perm := r.Perm(width)
	for j := 0; j < width; j++ {
		fns[j] = pool[start+j]
		weights[j] = uint32(math.Max(1, 1000/math.Pow(float64(perm[j]+1), 0.9)))
	}
	return AutoPick{Fns: fns, Weights: weights}
}

// GenCold generates never-executed static-image functions totaling about
// totalWords of code, modeling the cold bulk of a large database binary.
func GenCold(r *rand.Rand, prefix string, totalWords int, meanFnWords int) []FnSpec {
	var specs []FnSpec
	i := 0
	for totalWords > 0 {
		n := meanFnWords/2 + r.Intn(meanFnWords+1)
		if n > totalWords {
			n = totalWords
		}
		if n < 4 {
			n = 4
		}
		totalWords -= n
		// A couple of blocks so cold procedures are not single blobs.
		third := n / 3
		specs = append(specs, FnSpec{
			Name: fmt.Sprintf("%s_%d", prefix, i),
			Auto: true,
			Cold: true,
			Body: []Frag{
				Seq(third + 1),
				AutoIf{Prob: 0.5, Then: []Frag{Seq(third + 1)}},
				Seq(n - 2*third),
			},
		})
		i++
	}
	return specs
}
