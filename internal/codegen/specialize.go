package codegen

import (
	"fmt"

	"codelayout/internal/program"
)

// Specialize returns a deep copy of the image whose program may grow
// per-transaction-kind procedure clones (CloneProc). Original ProcIDs and
// BlockIDs are preserved, so profiles trained on the base image map onto
// the specialized one unchanged, and the base image is never mutated.
func (img *Image) Specialize() *Image {
	src := img.Prog
	out := &Image{
		Prog:     program.New(src.Name, src.TextBase),
		Fns:      make(map[string]*Fn, len(img.Fns)),
		Site:     make(map[program.BlockID]string, len(img.Site)),
		AutoProb: make(map[program.BlockID]float64, len(img.AutoProb)),
		AutoCum:  make(map[program.BlockID][]uint32, len(img.AutoCum)),
	}
	for _, pr := range src.Procs {
		np := out.Prog.AddProc(pr.Name)
		np.Cold = pr.Cold
		fn := img.fnByProc[pr.ID]
		nf := &Fn{Name: fn.Name, Auto: fn.Auto, CloneOf: fn.CloneOf, Proc: np}
		out.Fns[nf.Name] = nf
		out.fnByProc = append(out.fnByProc, nf)
	}
	// Blocks are appended in program order (not proc order) so IDs match.
	for _, b := range src.Blocks {
		nb := out.Prog.AddBlock(out.Prog.Proc(b.Proc), int(b.Body))
		nb.Kind = b.Kind
		nb.Fall = b.Fall
		nb.Taken = b.Taken
		nb.Callee = b.Callee
		nb.Targets = append([]program.BlockID(nil), b.Targets...)
	}
	for id, site := range img.Site {
		out.Site[id] = site
	}
	for id, p := range img.AutoProb {
		out.AutoProb[id] = p
	}
	for id, cum := range img.AutoCum {
		out.AutoCum[id] = append([]uint32(nil), cum...)
	}
	return out
}

// CloneProc implements the layout pipeline's procedure-cloning seam
// (core.ProcCloner): it appends a copy of procedure id named "orig@tag",
// copying block bodies, terminators and emitter annotations, with
// intra-procedure successors remapped onto the clone's blocks. Calls out of
// the clone keep their original callees until the caller rewires them. The
// clone replays the original's engine events (Fn.CloneOf), so the emitter
// accepts it wherever the original was expected.
func (img *Image) CloneProc(id program.ProcID, tag string) (program.ProcID, error) {
	if int(id) >= len(img.Prog.Procs) {
		return program.NoProc, fmt.Errorf("codegen: clone of unknown proc %d", id)
	}
	orig := img.Prog.Proc(id)
	fnOrig := img.fnByProc[id]
	name := orig.Name + "@" + tag
	if _, dup := img.Fns[name]; dup {
		return program.NoProc, fmt.Errorf("codegen: duplicate clone %q", name)
	}
	pr := img.Prog.AddProc(name)
	pr.Cold = orig.Cold

	remap := make(map[program.BlockID]program.BlockID, len(orig.Blocks))
	for _, obid := range orig.Blocks {
		ob := img.Prog.Block(obid)
		nb := img.Prog.AddBlock(pr, int(ob.Body))
		nb.Kind = ob.Kind
		nb.Fall = ob.Fall
		nb.Taken = ob.Taken
		nb.Callee = ob.Callee
		nb.Targets = append([]program.BlockID(nil), ob.Targets...)
		remap[obid] = nb.ID
	}
	local := func(b program.BlockID) program.BlockID {
		if nb, ok := remap[b]; ok {
			return nb
		}
		return b // inter-procedure reference: keep the original target
	}
	for _, obid := range orig.Blocks {
		nb := img.Prog.Block(remap[obid])
		if nb.Fall != program.NoBlock {
			nb.Fall = local(nb.Fall)
		}
		if nb.Taken != program.NoBlock {
			nb.Taken = local(nb.Taken)
		}
		for i, t := range nb.Targets {
			nb.Targets[i] = local(t)
		}
		if site, ok := img.Site[obid]; ok {
			img.Site[nb.ID] = site
		}
		if p, ok := img.AutoProb[obid]; ok {
			img.AutoProb[nb.ID] = p
		}
		if cum, ok := img.AutoCum[obid]; ok {
			img.AutoCum[nb.ID] = append([]uint32(nil), cum...)
		}
	}

	fn := &Fn{Name: name, Auto: fnOrig.Auto, Proc: pr, CloneOf: fnOrig.EventName()}
	img.Fns[name] = fn
	img.fnByProc = append(img.fnByProc, fn)
	return pr.ID, nil
}
