package shard_test

import (
	"testing"

	"codelayout/internal/db"
	"codelayout/internal/probe"
	"codelayout/internal/shard"
)

func TestMapDeterministicAndInRange(t *testing.T) {
	m := shard.Map{Shards: 4}
	for key := uint64(0); key < 1000; key++ {
		s := m.Of(key)
		if s < 0 || s >= 4 {
			t.Fatalf("Of(%d) = %d out of range", key, s)
		}
		if s != m.Of(key) {
			t.Fatalf("Of(%d) not deterministic", key)
		}
	}
	if (shard.Map{Shards: 1}).Of(42) != 0 {
		t.Fatal("single shard must map everything to 0")
	}
	if (shard.Map{}).Of(42) != 0 {
		t.Fatal("zero-value map must map everything to 0")
	}
}

func TestMapSpreadsSmallKeySpaces(t *testing.T) {
	// The workloads partition over small key spaces (branches,
	// warehouses); the hash must not leave every key on one shard.
	for _, shards := range []int{2, 4} {
		m := shard.Map{Shards: shards}
		counts := make([]int, shards)
		for key := uint64(0); key < 10; key++ {
			counts[m.Of(key)]++
		}
		nonEmpty := 0
		for _, c := range counts {
			if c > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Fatalf("%d shards: 10 keys all landed on one shard (%v)", shards, counts)
		}
	}
}

// TestCommit2PCCommitsAllParticipants runs a two-engine distributed
// transaction through the coordinator: both branches must be durable, both
// transactions closed, and all locks released.
func TestCommit2PCCommitsAllParticipants(t *testing.T) {
	engA := db.NewEngine(db.Config{BufferPoolPages: 64, Shard: 0})
	engB := db.NewEngine(db.Config{BufferPoolPages: 64, Shard: 1})
	tbA := engA.CreateTable("a")
	tbB := engB.CreateTable("b")
	sa := engA.NewSession(1, nil)
	sb := engB.NewSession(1, nil)
	ridA := tbA.Insert(sa, make([]byte, 32))
	ridB := tbB.Insert(sb, make([]byte, 32))

	sa.Begin()
	sb.Begin()
	sa.LockX(db.LockKey(1, 1))
	sb.LockX(db.LockKey(1, 2))
	tbA.Update(sa, ridA, make([]byte, 32))
	tbB.Update(sb, ridB, make([]byte, 32))
	shard.Commit2PC(sa, sb)

	if sa.Txn() != nil || sb.Txn() != nil {
		t.Fatal("transactions still open after 2PC")
	}
	if engA.Committed != 1 || engB.Committed != 1 {
		t.Fatalf("committed: A=%d B=%d", engA.Committed, engB.Committed)
	}
	// The coordinator's commit is forced; the participant's prepare is
	// forced (its commit record may ride the next flush).
	if engA.WAL.FlushedLSN == 0 || engB.WAL.FlushedLSN == 0 {
		t.Fatalf("logs not forced: A=%d B=%d", engA.WAL.FlushedLSN, engB.WAL.FlushedLSN)
	}
	var prepares, commits int
	for _, rec := range engB.WAL.Records {
		switch rec.Kind {
		case db.LogPrepare:
			prepares++
		case db.LogCommit:
			commits++
		}
	}
	if prepares != 1 || commits != 1 {
		t.Fatalf("participant log: %d prepares, %d commits", prepares, commits)
	}
	if engB.WAL.FlushedLSN < engB.WAL.CurrentLSN()-1 {
		t.Fatalf("participant prepare not stable: flushed=%d current=%d",
			engB.WAL.FlushedLSN, engB.WAL.CurrentLSN())
	}
}

func TestRouteEmitsNothingWithoutProbe(t *testing.T) {
	// Route must be safe under the no-op probe (load paths, tests).
	shard.Route(probe.Nop{}, 3, true)
	shard.Route(probe.Nop{}, 0, false)
}
