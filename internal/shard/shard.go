// Package shard is the router layer that turns one simulated machine into N
// partitioned database engines: hash partitioning of workload partition
// keys, the instrumented request router that picks a transaction's home
// engine, and the two-phase-commit coordinator for transactions that touch
// more than one shard.
//
// The router and coordinator are part of the modeled application binary —
// Models contributes their code models to the image the same way workloads
// contribute transaction models — so sharded runs present the layout passes
// with a genuinely different hot footprint: the route/2PC code joins the
// profile, and the per-commit log force splits across per-shard group
// commits.
package shard

import (
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/probe"
	"codelayout/internal/workload"
)

// Map hash-partitions partition keys over a shard count.
type Map struct {
	Shards int
}

// Of returns the shard owning a partition key.
func (m Map) Of(key uint64) int {
	if m.Shards <= 1 {
		return 0
	}
	h := key * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(m.Shards))
}

// dirAddr places the shard directory (partition map) in the shared data
// segment; every routed request reads its home shard's entry.
func dirAddr(home int) uint64 {
	return db.DataBase + 0x7F00_0000 + uint64(home)*128
}

// Route emits the request router's instruction stream: the partition-key
// hash, the shard-directory lookup, and the extra coordinator-setup path
// for transactions that will touch a remote shard. It is called once per
// transaction on sharded machines, before the workload executes.
func Route(pb probe.Probe, home int, remote bool) {
	pb.Enter("shard_route")
	defer pb.Leave("shard_route")
	pb.Data(dirAddr(home), 64, false)
	pb.Branch("route_remote", remote)
}

// Commit2PC commits a distributed transaction: every remote participant
// force-logs a prepare record (making its locks and updates durable pending
// the decision), the coordinator commits — the commit point, forced through
// its shard's group commit — and the participants then resolve with
// unforced commit records. All sessions belong to one server process, so
// the probe stream interleaves exactly as the modeled coordinator would
// execute. The extra forced log wait per participant is why the machine's
// per-kind latency breakdown shows the distributed kinds ("tpcb_dist",
// "payment_dist") with a visibly heavier tail than their local twins.
func Commit2PC(coord *db.Session, parts ...*db.Session) {
	pb := coord.PB
	pb.Enter("dist_commit")
	defer pb.Leave("dist_commit")
	pb.Data(coord.ScratchAddr(1536), 192, true) // coordinator state record
	for _, p := range parts {
		pb.Branch("dc_prep", true)
		p.Prepare()
	}
	pb.Branch("dc_prep", false)
	coord.Commit()
	for _, p := range parts {
		pb.Branch("dc_ack", true)
		p.CommitPrepared()
	}
	pb.Branch("dc_ack", false)
}

// Models returns the router/coordinator code models contributed to the
// modeled application image, mirroring site for site the probe calls Route
// and Commit2PC emit.
func Models(env *workload.ModelEnv) []codegen.FnSpec {
	pick := env.Pick
	return []codegen.FnSpec{
		{Name: "shard_route", Body: []codegen.Frag{
			codegen.Seq(6), pick("rt", 4),
			codegen.If{Site: "route_remote",
				Then: []codegen.Frag{codegen.Seq(7), pick("rt", 4)}},
			codegen.Seq(3),
		}},
		{Name: "dist_commit", Body: []codegen.Frag{
			codegen.Seq(7), env.ErrPath(), pick("rt", 4),
			codegen.Loop{Site: "dc_prep", Head: 3, Body: []codegen.Frag{
				codegen.Seq(5), codegen.Call{Fn: "txn_prepare"}, codegen.Seq(2),
			}},
			codegen.Seq(3),
			codegen.Call{Fn: "txn_commit"},
			codegen.Loop{Site: "dc_ack", Head: 3, Body: []codegen.Frag{
				codegen.Seq(4), codegen.Call{Fn: "txn_resolve"}, codegen.Seq(2),
			}},
			codegen.Seq(3),
		}},
	}
}
