package predict

import (
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/probe"
	"codelayout/internal/workload"
)

// tableAddr places the per-shard prediction table in the shared data
// segment, above the shard directory: every fast-path decision reads its
// home shard's row, every finished transaction writes it back.
func tableAddr(home int) uint64 {
	return db.DataBase + 0x7F80_0000 + uint64(home)*64
}

// Check emits the fast-path decision's instruction stream: a prediction-
// table lookup and the predicted-local branch. It is called once per
// transaction attempt on fast-path machines, in place of (when predicted
// local) or in front of (when not) the shard router — so it must stay far
// cheaper than the ~hundreds of instructions shard_route costs.
func Check(pb probe.Probe, home int, local bool) {
	pb.Enter("predict_check")
	defer pb.Leave("predict_check")
	pb.Data(tableAddr(home), 48, false)
	pb.Branch("pred_local", local)
}

// Train emits the model-update stream: every finished transaction folds its
// observed cross-shard outcome back into its home shard's prediction table.
func Train(pb probe.Probe, home int, remote bool) {
	pb.Enter("predict_train")
	defer pb.Leave("predict_train")
	pb.Data(tableAddr(home), 48, true)
	pb.Branch("train_remote", remote)
}

// Models returns the predictor's code models for the modeled application
// image, mirroring site for site the probe calls Check and Train emit. Both
// are short straight-line table probes with no library dispatch: the whole
// point of the fast path is that deciding costs a dozen instructions where
// routing costs hundreds.
func Models(env *workload.ModelEnv) []codegen.FnSpec {
	_ = env // no library picks: the decision path must stay flat and tiny
	return []codegen.FnSpec{
		{Name: "predict_check", Body: []codegen.Frag{
			codegen.Seq(4),
			codegen.If{Site: "pred_local",
				Then: []codegen.Frag{codegen.Seq(3)},
				Else: []codegen.Frag{codegen.Seq(2)}},
			codegen.Seq(2),
		}},
		{Name: "predict_train", Body: []codegen.Frag{
			codegen.Seq(3),
			codegen.If{Site: "train_remote",
				Then: []codegen.Frag{codegen.Seq(2)},
				Else: []codegen.Frag{codegen.Seq(2)}},
			codegen.Seq(2),
		}},
	}
}
