// Package predict implements the per-transaction-kind locality model behind
// the machine's single-shard fast path, after Pavlo et al.'s predictive
// transaction modeling: a cheap frequency/Markov estimator, keyed by
// (transaction class, home shard), that answers "will this transaction stay
// on its home shard?" before the router runs. Transactions predicted local
// skip the instrumented shard_route and the 2PC coordinator entirely;
// mispredictions abort through the modeled txn_abort path and retry
// distributed, so a wrong answer costs latency but never correctness.
//
// The predictor's own decision code is part of the modeled application
// binary (see Models and appmodel.Config.FastPath), so the layout passes
// optimize the prediction path along with the transaction paths it guards —
// the source paper's loop, closed over the new code.
package predict

// cellKey identifies one prediction cell: a transaction class on one home
// shard. Cross-shard fractions can differ per shard (hash partitions are
// uneven at small scales), so the model keeps shards separate.
type cellKey struct {
	class string
	home  int
}

// outcome indexes of a cell's counters.
const (
	outLocal  = 0
	outRemote = 1
)

// cell accumulates one class×shard's observed outcomes: marginal counts for
// the frequency estimate and a 2×2 transition matrix for the first-order
// Markov refinement (consecutive remote transactions of one class cluster
// when clients walk partition-crossing key ranges).
type cell struct {
	n     [2]uint64    // marginal local/remote counts
	trans [2][2]uint64 // trans[prev][next] transition counts
	last  int          // most recent outcome
	seen  bool         // any observation yet
}

// Model is the trained predictor. It is deterministic — same observation
// sequence, same answers — and not safe for concurrent use; the machine
// owns one and runs one process at a time.
type Model struct {
	// MinObs is the observation floor: below it a cell answers "not local",
	// keeping cold classes on the always-correct distributed path.
	MinObs uint64
	// Threshold is the minimum estimated P(local) to take the fast path.
	Threshold float64

	cells map[cellKey]*cell
}

// Default model shape: three observations before the model trusts a cell,
// and a 0.9 confidence floor (a 10% misprediction rate roughly prices one
// abort+retry per ten saved coordinator trips).
const (
	DefaultMinObs    = 3
	DefaultThreshold = 0.9
)

// New returns an empty model with the default shape.
func New() *Model {
	return &Model{
		MinObs:    DefaultMinObs,
		Threshold: DefaultThreshold,
		cells:     make(map[cellKey]*cell),
	}
}

// Observe implements workload.Predictor: record one finished transaction's
// outcome.
func (m *Model) Observe(class string, home int, remote bool) {
	if m.cells == nil {
		m.cells = make(map[cellKey]*cell)
	}
	k := cellKey{class, home}
	c := m.cells[k]
	if c == nil {
		c = &cell{}
		m.cells[k] = c
	}
	out := outLocal
	if remote {
		out = outRemote
	}
	if c.seen {
		c.trans[c.last][out]++
	}
	c.n[out]++
	c.last = out
	c.seen = true
}

// Local implements workload.Predictor: predict whether the next transaction
// of this class on this home shard stays single-shard. The Markov row for
// the cell's most recent outcome is preferred once it has enough mass;
// otherwise the marginal frequency decides. Unknown or under-observed cells
// answer false — the distributed path is always correct.
func (m *Model) Local(class string, home int) bool {
	c := m.cells[cellKey{class, home}]
	if c == nil {
		return false
	}
	total := c.n[outLocal] + c.n[outRemote]
	if total < m.MinObs {
		return false
	}
	row := c.trans[c.last]
	if rowTotal := row[outLocal] + row[outRemote]; rowTotal >= m.MinObs {
		return float64(row[outLocal]) >= m.Threshold*float64(rowTotal)
	}
	return float64(c.n[outLocal]) >= m.Threshold*float64(total)
}

// Observations returns the total outcomes recorded for a class×shard cell
// (tests and reports).
func (m *Model) Observations(class string, home int) uint64 {
	c := m.cells[cellKey{class, home}]
	if c == nil {
		return 0
	}
	return c.n[outLocal] + c.n[outRemote]
}
