package predict_test

import (
	"testing"

	"codelayout/internal/predict"
	"codelayout/internal/probe"
)

func TestColdCellsStayDistributed(t *testing.T) {
	m := predict.New()
	if m.Local("tpcb", 0) {
		t.Fatal("empty model must not predict local")
	}
	m.Observe("tpcb", 0, false)
	m.Observe("tpcb", 0, false)
	if m.Local("tpcb", 0) {
		t.Fatalf("2 observations < MinObs %d must not predict local", m.MinObs)
	}
	if m.Local("tpcb", 1) {
		t.Fatal("other shards' cells must stay cold")
	}
	if m.Local("ycsb", 0) {
		t.Fatal("other classes' cells must stay cold")
	}
}

func TestFrequencyThreshold(t *testing.T) {
	m := predict.New()
	for i := 0; i < 20; i++ {
		m.Observe("tpcb", 2, false)
	}
	if !m.Local("tpcb", 2) {
		t.Fatal("20/20 local must predict local")
	}
	// Pull P(local) below the 0.9 threshold: 20 local / 5 remote = 0.8.
	// Interleave so the Markov transition rows stay mixed too.
	for i := 0; i < 5; i++ {
		m.Observe("tpcb", 2, true)
		for j := 0; j < 2; j++ {
			m.Observe("tpcb", 2, false)
		}
	}
	if got := m.Observations("tpcb", 2); got != 35 {
		t.Fatalf("Observations = %d, want 35", got)
	}
}

func TestMarkovRowOverridesMarginal(t *testing.T) {
	// A strict local,local,remote cycle: marginally P(local)=2/3 (below
	// threshold), but after a remote the next outcome is always local.
	m := predict.New()
	for i := 0; i < 12; i++ {
		m.Observe("order", 1, i%3 == 2)
	}
	// Last observation was remote (i=11, 11%3==2): trans[remote] row is
	// all-local, so the Markov refinement should predict local.
	if !m.Local("order", 1) {
		t.Fatal("after remote in a LLR cycle the Markov row must predict local")
	}
	m.Observe("order", 1, false)
	m.Observe("order", 1, false)
	// Now last=local and trans[local] = {local: ~50%, remote: ~50%}: the row
	// has mass and is well below threshold.
	if m.Local("order", 1) {
		t.Fatal("after local in a LLR cycle the Markov row must not predict local")
	}
}

func TestDeterministicReplay(t *testing.T) {
	outcomes := []bool{false, false, false, true, false, true, true, false, false, false}
	run := func() []bool {
		m := predict.New()
		var preds []bool
		for _, r := range outcomes {
			preds = append(preds, m.Local("w", 0))
			m.Observe("w", 0, r)
		}
		return preds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs across identical replays", i)
		}
	}
}

func TestZeroValueModelIsUsable(t *testing.T) {
	// A zero-value Model (MinObs 0, Threshold 0) must not crash; Observe
	// lazily allocates the cell map.
	var m predict.Model
	m.Observe("w", 0, false)
	if !m.Local("w", 0) {
		t.Fatal("zero thresholds with a local observation should predict local")
	}
}

func TestEmitSafeWithoutProbe(t *testing.T) {
	// The probe helpers must be safe under the no-op probe (load paths).
	predict.Check(probe.Nop{}, 3, true)
	predict.Check(probe.Nop{}, 0, false)
	predict.Train(probe.Nop{}, 1, true)
	predict.Train(probe.Nop{}, 1, false)
}
