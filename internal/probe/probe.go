// Package probe defines the instrumentation interface between the real Go
// database engine and the modeled code image. Engine routines report their
// control-flow decisions (which function they entered, which way a branch
// went, how a loop iterated) and their data references; an emitter bound to
// a layout turns those reports into the instruction fetch stream the
// workload would produce on the modeled binary.
//
// The package contains only the interface and a no-op implementation, so the
// engine can be used and tested standalone.
package probe

// Probe receives execution events from instrumented code. Implementations
// must tolerate being called from a single goroutine at a time (the machine
// schedules processes one at a time).
type Probe interface {
	// Enter reports entry to the named modeled function. Every Enter must
	// be paired with a Leave of the same name (defer Leave on entry).
	Enter(fn string)
	// Leave reports return from the named modeled function.
	Leave(fn string)
	// Branch reports the outcome of the decision site with the given ID.
	// Sites are declared in the function's code model; order of Branch
	// calls must match the model's control flow.
	Branch(site string, taken bool)
	// Case reports that the switch site took case k.
	Case(site string, k int)
	// Data reports a data memory reference.
	Data(addr uint64, bytes int, write bool)
	// Syscall reports a kernel crossing (log write, data file read, ...).
	// The argument selects the modeled kernel service.
	Syscall(name string)
}

// Nop is a Probe that does nothing; it lets the engine run at full speed
// outside simulations.
type Nop struct{}

// Enter implements Probe.
func (Nop) Enter(string) {}

// Leave implements Probe.
func (Nop) Leave(string) {}

// Branch implements Probe.
func (Nop) Branch(string, bool) {}

// Case implements Probe.
func (Nop) Case(string, int) {}

// Data implements Probe.
func (Nop) Data(uint64, int, bool) {}

// Syscall implements Probe.
func (Nop) Syscall(string) {}

var _ Probe = Nop{}
