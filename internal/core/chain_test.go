package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

// buildFigure1 builds a procedure shaped like the paper's Figure 1(a):
// an entry A1 conditional splitting 0.6/0.4 into two paths that re-join,
// plus a loop-free tail.
//
//	A1 -cond-> A2 (w=6)  and A5 (w=4)
//	A2 -fall-> A3 (6); A3 -fall-> A4 (6); A4 -br-> A8 (6)
//	A5 -fall-> A6 (4); A6 -cond-> A7 (2.4) / A8 (1.6)
//	A7 -fall-> A8; A8 ret
func buildFigure1(t *testing.T) (*program.Program, *profile.Profile, []*program.Block) {
	t.Helper()
	p := program.New("fig1", isa.AppTextBase)
	pr := p.AddProc("f")
	blocks := make([]*program.Block, 8)
	for i := range blocks {
		blocks[i] = p.AddBlock(pr, 4)
	}
	a := func(i int) *program.Block { return blocks[i-1] }
	a(1).Kind = isa.TermCond
	a(1).Taken = a(2).ID
	a(1).Fall = a(5).ID
	a(2).Kind = isa.TermFallThrough
	a(2).Fall = a(3).ID
	a(3).Kind = isa.TermFallThrough
	a(3).Fall = a(4).ID
	a(4).Kind = isa.TermBranch
	a(4).Taken = a(8).ID
	a(5).Kind = isa.TermFallThrough
	a(5).Fall = a(6).ID
	a(6).Kind = isa.TermCond
	a(6).Taken = a(7).ID
	a(6).Fall = a(8).ID
	a(7).Kind = isa.TermFallThrough
	a(7).Fall = a(8).ID
	a(8).Kind = isa.TermRet
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	pf := profile.New("fig1", p)
	counts := []uint64{100, 60, 60, 60, 40, 40, 24, 100}
	for i, c := range counts {
		pf.AddBlock(blocks[i].ID, c)
	}
	pf.AddEdge(a(1).ID, a(2).ID, 60)
	pf.AddEdge(a(1).ID, a(5).ID, 40)
	pf.AddEdge(a(2).ID, a(3).ID, 60)
	pf.AddEdge(a(3).ID, a(4).ID, 60)
	pf.AddEdge(a(4).ID, a(8).ID, 60)
	pf.AddEdge(a(5).ID, a(6).ID, 40)
	pf.AddEdge(a(6).ID, a(7).ID, 24)
	pf.AddEdge(a(6).ID, a(8).ID, 16)
	pf.AddEdge(a(7).ID, a(8).ID, 24)
	return p, pf, blocks
}

func TestChainProcFigure1(t *testing.T) {
	p, pf, blocks := buildFigure1(t)
	chains := core.ChainProc(p, p.Procs[0], pf)

	// The heaviest path A1-A2-A3-A4-A8 must form the entry chain: edges
	// sorted by weight chain 60-weight links first, then A4->A8 (60) claims
	// A8, leaving A6's arms blocked on one side.
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	first := chains[0]
	want := []program.BlockID{blocks[0].ID, blocks[1].ID, blocks[2].ID, blocks[3].ID, blocks[7].ID}
	if len(first) != len(want) {
		t.Fatalf("entry chain = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("entry chain = %v, want %v", first, want)
		}
	}
	// Remaining blocks form the secondary chain(s): A5-A6-A7.
	var rest []program.BlockID
	for _, c := range chains[1:] {
		rest = append(rest, c...)
	}
	if len(rest) != 3 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestChainEntryStaysHead(t *testing.T) {
	// A loop back-edge into the entry must not make the entry a chain tail.
	p := program.New("loop", isa.AppTextBase)
	pr := p.AddProc("l")
	e := p.AddBlock(pr, 2)
	b := p.AddBlock(pr, 2)
	e.Kind = isa.TermCond
	e.Taken = b.ID
	b.Kind = isa.TermCond
	b.Taken = e.ID
	x := p.AddBlock(pr, 1)
	x.Kind = isa.TermRet
	e.Fall = x.ID
	b.Fall = x.ID
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pf := profile.New("loop", p)
	pf.AddBlock(e.ID, 100)
	pf.AddBlock(b.ID, 99)
	pf.AddBlock(x.ID, 1)
	pf.AddEdge(e.ID, b.ID, 99)
	pf.AddEdge(b.ID, e.ID, 99) // hottest edge, but would demote the entry
	pf.AddEdge(e.ID, x.ID, 1)
	pf.AddEdge(b.ID, x.ID, 1)
	chains := core.ChainProc(p, pr, pf)
	if chains[0][0] != e.ID {
		t.Fatalf("entry chain starts with %d, want %d", chains[0][0], e.ID)
	}
}

func TestChainNoCycles(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(4))
		pf := progtest.RandProfile(r, p, 10, 200)
		for _, pr := range p.Procs {
			chains := core.ChainProc(p, pr, pf)
			seen := make(map[program.BlockID]bool)
			total := 0
			for _, c := range chains {
				for _, b := range c {
					if seen[b] {
						t.Logf("seed %d: block %d in two chains", seed, b)
						return false
					}
					seen[b] = true
					total++
				}
			}
			if total != len(pr.Blocks) {
				t.Logf("seed %d: proc %s chains cover %d of %d blocks", seed, pr.Name, total, len(pr.Blocks))
				return false
			}
			if len(chains) > 0 && chains[0][0] != pr.Entry() {
				t.Logf("seed %d: entry not first", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChainImprovesFallthrough(t *testing.T) {
	// Chaining must not decrease the profile-weighted number of elided
	// transitions relative to source order on the Figure 1 example.
	p, pf, _ := buildFigure1(t)
	weightAdj := func(l *program.Layout) uint64 {
		var w uint64
		for _, b := range p.Blocks {
			if l.Adj[b.ID] != program.NoBlock {
				w += pf.Edge(b.ID, l.Adj[b.ID])
			}
		}
		return w
	}
	base, err := program.BaselineLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := core.Optimize(p, pf, core.Options{Chain: true})
	if err != nil {
		t.Fatal(err)
	}
	if weightAdj(opt) < weightAdj(base) {
		t.Fatalf("chaining reduced fall-through weight: %d < %d", weightAdj(opt), weightAdj(base))
	}
}
