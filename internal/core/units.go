package core

import (
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// SplitMode selects how chained procedures are cut into placement units
// before procedure ordering.
type SplitMode int

const (
	// SplitNone keeps each procedure as a single placement unit.
	SplitNone SplitMode = iota
	// SplitFine is the paper's fine-grain splitting: every chain becomes a
	// separate segment/procedure, ending at an unconditional branch or
	// return, which gives the ordering pass freedom to separate hot from
	// cold code at basic-block granularity.
	SplitFine
	// SplitHotCold is the Spike-distribution variant: each procedure is
	// split into one hot part (executed blocks, in chain order) and one cold
	// part (never-executed blocks).
	SplitHotCold
)

func (m SplitMode) String() string {
	switch m {
	case SplitNone:
		return "none"
	case SplitFine:
		return "fine"
	case SplitHotCold:
		return "hotcold"
	default:
		return "?"
	}
}

// Unit is a placement unit: a run of blocks kept contiguous by the ordering
// pass. Depending on SplitMode a unit is a whole procedure, a chain/segment,
// or the hot or cold half of a procedure.
type Unit struct {
	Blocks []program.BlockID
	Proc   program.ProcID
	Seq    int // position among the proc's units in the pre-ordering layout
	// Count is the execution count of the unit's first block, the weight
	// used when ordering falls back to hotness.
	Count uint64
	// Hot reports whether any block in the unit executed.
	Hot bool
}

// BuildUnits converts per-procedure chains into placement units.
func BuildUnits(p *program.Program, pf *profile.Profile, chains map[program.ProcID][]Chain, mode SplitMode) []Unit {
	return BuildUnitsHot(p, pf, chains, mode, 1)
}

// BuildUnitsHot is BuildUnits with an explicit hot/cold partition threshold
// for SplitHotCold: a block lands in the hot half when its execution count is
// at least hotMin (1 reproduces the classic executed-at-all partition, the
// split:hotcold@N pass parameter raises the bar so lukewarm blocks join the
// cold half). Other split modes ignore the threshold.
func BuildUnitsHot(p *program.Program, pf *profile.Profile, chains map[program.ProcID][]Chain, mode SplitMode, hotMin uint64) []Unit {
	if hotMin == 0 {
		hotMin = 1
	}
	var units []Unit
	for _, pr := range p.Procs {
		ch := chains[pr.ID]
		switch mode {
		case SplitNone:
			var blocks []program.BlockID
			for _, c := range ch {
				blocks = append(blocks, c...)
			}
			units = append(units, makeUnit(pf, pr.ID, 0, blocks))
		case SplitFine:
			for i, c := range ch {
				units = append(units, makeUnit(pf, pr.ID, i, c))
			}
		case SplitHotCold:
			var hot, cold []program.BlockID
			for _, c := range ch {
				for _, b := range c {
					if pf.Count(b) >= hotMin {
						hot = append(hot, b)
					} else {
						cold = append(cold, b)
					}
				}
			}
			seq := 0
			if len(hot) > 0 {
				units = append(units, makeUnit(pf, pr.ID, seq, hot))
				seq++
			}
			if len(cold) > 0 {
				units = append(units, makeUnit(pf, pr.ID, seq, cold))
			}
		}
	}
	return units
}

func makeUnit(pf *profile.Profile, proc program.ProcID, seq int, blocks []program.BlockID) Unit {
	u := Unit{Blocks: blocks, Proc: proc, Seq: seq}
	if len(blocks) > 0 {
		u.Count = pf.Count(blocks[0])
	}
	for _, b := range blocks {
		if pf.Count(b) > 0 {
			u.Hot = true
			break
		}
	}
	return u
}

// unitWords estimates the words a unit occupies when its blocks are placed
// contiguously (intra-unit adjacency elides terminators exactly as
// Materialize will).
func unitWords(p *program.Program, u Unit) int64 {
	var w int64
	for i, id := range u.Blocks {
		b := p.Block(id)
		var next program.BlockID = program.NoBlock
		if i+1 < len(u.Blocks) {
			next = u.Blocks[i+1]
		}
		w += int64(b.Body) + int64(termWordsFor(b, next))
	}
	return w
}

func termWordsFor(b *program.Block, next program.BlockID) int32 {
	switch b.Kind {
	case isa.TermFallThrough:
		if b.Fall == next {
			return 0
		}
		return 1
	case isa.TermCond:
		if b.Fall == next || b.Taken == next {
			return 1
		}
		return 2
	case isa.TermBranch:
		if b.Taken == next {
			return 0
		}
		return 1
	case isa.TermCall:
		if b.Fall == next {
			return 1
		}
		return 2
	default: // Ret, Indirect, Halt
		return 1
	}
}
