package core_test

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"codelayout/internal/core"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

func TestUnknownPassListsRegistry(t *testing.T) {
	_, err := core.ParsePipeline("chain,bogus,porder:ph")
	if err == nil {
		t.Fatal("expected error for unknown pass")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown pass "bogus"`) {
		t.Fatalf("error does not name the pass: %v", err)
	}
	for _, want := range []string{"chain", "split", "porder", "cfa", "align", "materialize", "ipchain"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error does not list registered pass %q: %v", want, err)
		}
	}
}

// TestUnknownPassTypedError pins the error's type: callers (the search
// engine's genome validation, spike) match it with errors.As and read the
// registry listing off the Valid field.
func TestUnknownPassTypedError(t *testing.T) {
	_, err := core.NewPass("warp9:x")
	if err == nil {
		t.Fatal("expected error for unknown pass")
	}
	var upe *core.UnknownPassError
	if !errors.As(err, &upe) {
		t.Fatalf("error %T is not *core.UnknownPassError: %v", err, err)
	}
	if upe.Pass != "warp9" {
		t.Fatalf("Pass = %q, want the base name before the argument", upe.Pass)
	}
	if !reflect.DeepEqual(upe.Valid, core.RegisteredPasses()) {
		t.Fatalf("Valid = %v, want the full registry %v", upe.Valid, core.RegisteredPasses())
	}
}

// TestPassListingMatchesDocs keeps the shared listing (spike -list-passes,
// UnknownPassError) aligned with the registry docs.
func TestPassListingMatchesDocs(t *testing.T) {
	lines := core.PassListing()
	docs := core.PassDocs()
	if len(lines) != len(docs) {
		t.Fatalf("%d listing lines for %d registered passes", len(lines), len(docs))
	}
	for i, d := range docs {
		if !strings.HasPrefix(lines[i], d.Name) || !strings.Contains(lines[i], d.Doc) {
			t.Errorf("listing line %q does not render pass %q (%q)", lines[i], d.Name, d.Doc)
		}
	}
}

// TestParameterizedThresholds checks the new pass parameters actually bite:
// a high hotcold@N threshold marks fewer units hot, and a high ipchain:N
// merge threshold leaves more units unmerged than the classic
// any-executed-edge merge.
func TestParameterizedThresholds(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p := progtest.RandProgram(r, 24)
	pf := progtest.RandProfile(r, p, 40, 300)
	run := func(spec string) *core.Report {
		pl, err := core.ParsePipeline(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		_, rep, err := pl.Run(p, pf)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		return rep
	}
	chains := make(map[program.ProcID][]core.Chain, len(p.Procs))
	for _, pr := range p.Procs {
		chains[pr.ID] = core.ChainProc(p, pr, pf)
	}
	hotSide := func(hotMin uint64) int {
		units := core.BuildUnitsHot(p, pf, chains, core.SplitHotCold, hotMin)
		n := 0
		for _, u := range units {
			for i, b := range u.Blocks {
				// Each hot/cold half must be pure under the threshold.
				if (pf.Count(b) >= hotMin) != (pf.Count(u.Blocks[0]) >= hotMin) {
					t.Fatalf("hotcold@%d unit mixes hot and cold blocks (block %d of %v)", hotMin, i, u.Blocks)
				}
			}
			if len(u.Blocks) > 0 && pf.Count(u.Blocks[0]) >= hotMin {
				n += len(u.Blocks)
			}
		}
		return n
	}
	var maxCount uint64
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if c := pf.Count(b); c > maxCount {
				maxCount = c
			}
		}
	}
	if classic, none := hotSide(1), hotSide(maxCount+1); none != 0 || classic == 0 {
		t.Errorf("hotcold threshold does not bite: %d hot blocks at @1, %d at @max+1", classic, none)
	}
	hotSide(maxCount / 2) // purity check at a mid threshold

	li := run("chain,split:none,ipchain,porder:ph,materialize")
	ti := run("chain,split:none,ipchain:1000000,porder:ph,materialize")
	if ti.Units <= li.Units {
		t.Errorf("ipchain:1000000 leaves %d units, want more than ipchain's %d (fewer merges)",
			ti.Units, li.Units)
	}
}

func TestParsePipelineRoundTrip(t *testing.T) {
	canonical := []string{
		"split:none,porder:orig,materialize",
		"chain,split:fine,porder:ph,materialize",
		"chain,split:hotcold,porder:ph,align:8,materialize",
		"chain,split:hotcold@4,porder:ph,materialize",
		"chain,split:fine,porder:ph,cfa:4096/1024,materialize",
		"chain,split:none,ipchain:8,porder:ph,materialize",
		"chain,split:none,txfuse:15,porder:ph,materialize",
		core.IPChainSpec,
	}
	for _, spec := range canonical {
		pl, err := core.ParsePipeline(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := pl.String(); got != spec {
			t.Fatalf("round trip %q -> %q", spec, got)
		}
	}
	// Terse specs normalize to a canonical form that re-parses to itself.
	terse := map[string]string{
		"chain,porder":        "chain,porder:ph",
		"split":               "split:none",
		"chain , split:fine ": "chain,split:fine",
		"cfa":                 "cfa:65536/16384",
	}
	for spec, want := range terse {
		pl, err := core.ParsePipeline(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := pl.String(); got != want {
			t.Fatalf("normalize %q -> %q, want %q", spec, got, want)
		}
		again, err := core.ParsePipeline(pl.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", pl.String(), err)
		}
		if again.String() != pl.String() {
			t.Fatalf("canonical form not stable: %q -> %q", pl.String(), again.String())
		}
	}
}

func TestParsePipelineBadArgs(t *testing.T) {
	for _, spec := range []string{
		"", "split:coarse", "porder:random", "align:0", "align:x",
		"cfa:1024/4096", "chain:x", "materialize:x", "ipchain:x",
		"split:hotcold@0", "split:hotcold@x", "txfuse:101", "txfuse:x",
	} {
		if _, err := core.ParsePipeline(spec); err == nil {
			t.Fatalf("expected error for spec %q", spec)
		}
	}
}

func TestPipelineStageOrderEnforced(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := progtest.RandProgram(r, 4)
	pf := progtest.RandProfile(r, p, 10, 200)
	for _, spec := range []string{
		"split:fine,chain",          // chaining after splitting
		"porder:ph,split:fine",      // splitting after ordering
		"porder:ph,porder:orig",     // double ordering
		"split:fine,split:none",     // double splitting
		"porder:ph,ipchain",         // call chaining after ordering
		"materialize,materialize",   // double materialization
		"materialize,cfa:4096/1024", // CFA after materialization
		"materialize,align:8",       // alignment after materialization
	} {
		pl, err := core.ParsePipeline(spec)
		if err != nil {
			t.Fatalf("%s: parse: %v", spec, err)
		}
		if _, _, err := pl.Run(p, pf); err == nil {
			t.Fatalf("expected stage-order error running %q", spec)
		}
	}
}

func TestComboPipelinesMatchOptimize(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := progtest.RandProgram(r, 7)
	pf := progtest.RandProfile(r, p, 20, 300)
	for _, c := range core.Combos() {
		pl, err := core.ComboPipeline(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		want, wantRep, err := core.Optimize(p, pf, c.Opts)
		if err != nil {
			t.Fatal(err)
		}
		got, gotRep, err := pl.Run(p, pf)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !reflect.DeepEqual(got.Addr, want.Addr) || !reflect.DeepEqual(got.Order, want.Order) {
			t.Fatalf("%s: combo pipeline diverged from Optimize", c.Name)
		}
		if !reflect.DeepEqual(gotRep, wantRep) {
			t.Fatalf("%s: reports diverged: %+v != %+v", c.Name, *gotRep, *wantRep)
		}
	}
	if _, err := core.ComboPipeline("nope"); err == nil {
		t.Fatal("expected error for unknown combo")
	}
	for _, name := range []string{"hotcold", "cfa", "ipchain"} {
		pl, err := core.ComboPipeline(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		l, _, err := pl.Run(p, pf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// hotFirstPass is a custom ordering pass used to exercise registration.
type hotFirstPass struct{}

func (hotFirstPass) Name() string { return "test-hotfirst" }

func (hotFirstPass) Run(st *core.LayoutState) error {
	if st.UnitOrder != nil {
		return errors.New("units already ordered")
	}
	st.EnsureUnits()
	order := core.OriginalOrder(st.Units)
	var hot, cold []int
	for _, i := range order {
		if st.Units[i].Hot {
			hot = append(hot, i)
		} else {
			cold = append(cold, i)
		}
	}
	st.UnitOrder = append(hot, cold...)
	return nil
}

// baselineMatPass is a custom materializing pass: a pipeline ending in it
// must not have a second materialization forced on it.
type baselineMatPass struct{}

func (baselineMatPass) Name() string { return "test-basemat" }

func (baselineMatPass) Run(st *core.LayoutState) error {
	l, err := program.BaselineLayout(st.Prog)
	if err != nil {
		return err
	}
	st.Layout = l
	return nil
}

func TestCustomMaterializingPass(t *testing.T) {
	if err := core.RegisterPass("test-basemat", func(arg string) (core.Pass, error) {
		return baselineMatPass{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	p := progtest.RandProgram(r, 5)
	pf := progtest.RandProfile(r, p, 10, 200)
	pl, err := core.ParsePipeline("test-basemat")
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := pl.Run(p, pf)
	if err != nil {
		t.Fatalf("pipeline ending in a custom materializer failed: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterCustomPass(t *testing.T) {
	err := core.RegisterPass("test-hotfirst", func(arg string) (core.Pass, error) {
		return hotFirstPass{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RegisterPass("test-hotfirst", func(string) (core.Pass, error) { return nil, nil }); err == nil {
		t.Fatal("expected duplicate-registration error")
	}
	if err := core.RegisterPass("bad:name", func(string) (core.Pass, error) { return nil, nil }); err == nil {
		t.Fatal("expected invalid-name error")
	}
	pl, err := core.ParsePipeline("chain,split:fine,test-hotfirst")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	p := progtest.RandProgram(r, 6)
	pf := progtest.RandProfile(r, p, 20, 300)
	l, rep, err := pl.Run(p, pf)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Units == 0 {
		t.Fatal("empty report")
	}
	found := false
	for _, n := range core.RegisteredPasses() {
		if n == "test-hotfirst" {
			found = true
		}
	}
	if !found {
		t.Fatal("custom pass not listed in RegisteredPasses")
	}
}
