package core

import (
	"codelayout/internal/isa"
	"codelayout/internal/program"
)

// CFAOptions configures the conflict-free-area optimization: the hottest
// units are packed into a reserved prefix of the instruction cache's address
// mapping, and all other executed code is placed so it never maps into the
// reserved sets (by inserting address-space gaps). The paper implemented
// this software-trace-cache style optimization but found that OLTP's hot
// traces are too large to fit a reasonable reserved area, so it yielded no
// gains — a negative result this implementation reproduces.
type CFAOptions struct {
	// CacheBytes is the target instruction cache size. The program text
	// base must be a multiple of it for the set mapping to hold.
	CacheBytes int
	// ReservedBytes is the size of the conflict-free area (must be less
	// than CacheBytes).
	ReservedBytes int
}

// cfaAlign mirrors the pipeline's default unit alignment (4 words).
const cfaAlign = 4 * isa.WordBytes

// planCFA computes explicit gaps so that hot units beyond the reserved-area
// budget never map into the reserved cache sets. It mirrors Materialize's
// address arithmetic (gap first, then alignment) so the planned and final
// addresses agree. It returns the gap map and the number of reserved-area
// words actually used by hot traces.
func planCFA(p *program.Program, units []Unit, unitOrder []int, o CFAOptions) (map[program.BlockID]uint64, int64) {
	gaps := make(map[program.BlockID]uint64)
	if o.CacheBytes <= 0 || o.ReservedBytes <= 0 || o.ReservedBytes >= o.CacheBytes {
		return gaps, 0
	}
	cache := uint64(o.CacheBytes)
	reserved := roundUp(uint64(o.ReservedBytes), cfaAlign)

	addr := uint64(0) // offset from (cache-aligned) text base
	var reservedWords int64
	inReserved := true
	for _, ui := range unitOrder {
		u := units[ui]
		if len(u.Blocks) == 0 {
			continue
		}
		bytes := uint64(unitWords(p, u)) * isa.WordBytes
		aligned := roundUp(addr, cfaAlign)

		if inReserved {
			if u.Hot && aligned+bytes <= reserved {
				addr = aligned + bytes
				reservedWords += int64(bytes / isa.WordBytes)
				continue
			}
			inReserved = false
		}
		if !u.Hot {
			// Never-executed code cannot conflict with the reserved area.
			addr = aligned + bytes
			continue
		}
		target := aligned
		off := target % cache
		switch {
		case off < reserved:
			target += reserved - off
		case off+bytes > cache && bytes <= cache-reserved:
			// The unit would wrap into the next frame's reserved window;
			// start it just past that window instead.
			target += cache - off + reserved
		}
		// Units larger than cache-reserved inevitably overlap the reserved
		// sets; they are placed at the earliest legal start and simply
		// conflict, as the paper observed for OLTP's oversized traces.
		if target > aligned {
			gaps[u.Blocks[0]] = target - addr
		}
		addr = target + bytes
	}
	return gaps, reservedWords
}

func roundUp(x, to uint64) uint64 {
	if rem := x % to; rem != 0 {
		return x + to - rem
	}
	return x
}
