package core

import (
	"fmt"
	"sort"

	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// OrderMode selects the procedure-ordering pass.
type OrderMode int

const (
	// OrderOriginal keeps units in the original binary's link order.
	OrderOriginal OrderMode = iota
	// OrderPettisHansen applies Pettis–Hansen ordering to the hot units and
	// appends cold units afterwards.
	OrderPettisHansen
)

func (m OrderMode) String() string {
	if m == OrderPettisHansen {
		return "pettis-hansen"
	}
	return "original"
}

// Options selects the optimization combination, mirroring the combinations
// of Figure 7: base, porder, chain, chain+split, chain+porder, all.
type Options struct {
	// Chain enables basic block chaining within procedures.
	Chain bool
	// Split selects how procedures are cut into placement units.
	Split SplitMode
	// Order selects the unit ordering pass.
	Order OrderMode
	// AlignWords pads unit starts; 0 defaults to 4 (16-byte alignment).
	AlignWords int
	// CFA, if non-nil, reserves a conflict-free instruction-cache area for
	// the hottest units (the software-trace-cache style optimization the
	// paper found unprofitable for OLTP).
	CFA *CFAOptions
}

// Combo names a standard optimization combination from the paper.
type Combo struct {
	Name string
	Opts Options
}

// Combos returns the paper's Figure 7 / Figure 15 combinations in order.
func Combos() []Combo {
	return []Combo{
		{"base", Options{}},
		{"porder", Options{Order: OrderPettisHansen}},
		{"chain", Options{Chain: true}},
		{"chain+split", Options{Chain: true, Split: SplitFine}},
		{"chain+porder", Options{Chain: true, Order: OrderPettisHansen}},
		{"all", Options{Chain: true, Split: SplitFine, Order: OrderPettisHansen}},
	}
}

// ComboByName returns the named combination.
func ComboByName(name string) (Combo, error) {
	for _, c := range Combos() {
		if c.Name == name {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("core: unknown optimization combo %q", name)
}

// Report summarizes what the optimizer did.
type Report struct {
	Chains           int
	Units            int
	HotUnits         int
	HotWords         int64
	LongBranches     int
	PadWords         int64
	CFAReservedWords int64
}

// Optimize produces a layout of the program under the given options. The
// profile may be sampling-based (block counts only); edge weights are then
// estimated the way Spike does. The base combination (zero Options with no
// chaining) reproduces the original binary's layout modulo alignment.
func Optimize(p *program.Program, pf *profile.Profile, o Options) (*program.Layout, *Report, error) {
	pf.EnsureEdges(p)
	rep := &Report{}

	// 1. Chain blocks within each procedure.
	chains := make(map[program.ProcID][]Chain, len(p.Procs))
	for _, pr := range p.Procs {
		if o.Chain && !pr.Cold {
			chains[pr.ID] = ChainProc(p, pr, pf)
		} else {
			chains[pr.ID] = SourceChains(pr)
		}
		rep.Chains += len(chains[pr.ID])
	}

	// 2. Cut into placement units.
	units := BuildUnits(p, pf, chains, o.Split)
	rep.Units = len(units)
	for _, u := range units {
		if u.Hot {
			rep.HotUnits++
			rep.HotWords += unitWords(p, u)
		}
	}

	// 3. Order units.
	var unitOrder []int
	switch o.Order {
	case OrderOriginal:
		unitOrder = make([]int, len(units))
		for i := range units {
			unitOrder[i] = i
		}
		sort.SliceStable(unitOrder, func(a, b int) bool {
			ua, ub := units[unitOrder[a]], units[unitOrder[b]]
			if ua.Proc != ub.Proc {
				return ua.Proc < ub.Proc
			}
			return ua.Seq < ub.Seq
		})
	case OrderPettisHansen:
		hot := PettisHansen(p, pf, units)
		seen := make([]bool, len(units))
		for _, i := range hot {
			seen[i] = true
		}
		unitOrder = append(unitOrder, hot...)
		var cold []int
		for i := range units {
			if !seen[i] {
				cold = append(cold, i)
			}
		}
		sort.SliceStable(cold, func(a, b int) bool {
			ua, ub := units[cold[a]], units[cold[b]]
			if ua.Proc != ub.Proc {
				return ua.Proc < ub.Proc
			}
			return ua.Seq < ub.Seq
		})
		unitOrder = append(unitOrder, cold...)
	default:
		return nil, nil, fmt.Errorf("core: unknown order mode %d", o.Order)
	}

	// 4. Flatten and materialize.
	order := make([]program.BlockID, 0, p.NumBlocks())
	alignAt := make(map[program.BlockID]bool, len(units))
	for _, ui := range unitOrder {
		u := units[ui]
		if len(u.Blocks) == 0 {
			continue
		}
		alignAt[u.Blocks[0]] = true
		order = append(order, u.Blocks...)
	}
	align := o.AlignWords
	if align == 0 {
		align = 4
	}
	mopts := program.MaterializeOptions{
		AlignWords: align,
		AlignAt:    alignAt,
		Hotness:    pf.Count,
	}
	if o.CFA != nil {
		gaps, reserved := planCFA(p, units, unitOrder, *o.CFA)
		mopts.GapBefore = gaps
		rep.CFAReservedWords = reserved
	}
	l, err := program.Materialize(p, order, mopts)
	if err != nil {
		return nil, nil, err
	}
	rep.LongBranches = l.LongBranches
	rep.PadWords = l.PadWords
	return l, rep, nil
}
