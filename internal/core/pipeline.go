package core

import (
	"fmt"

	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// OrderMode selects the procedure-ordering pass.
type OrderMode int

const (
	// OrderOriginal keeps units in the original binary's link order.
	OrderOriginal OrderMode = iota
	// OrderPettisHansen applies Pettis–Hansen ordering to the hot units and
	// appends cold units afterwards.
	OrderPettisHansen
)

func (m OrderMode) String() string {
	if m == OrderPettisHansen {
		return "pettis-hansen"
	}
	return "original"
}

// Options selects the optimization combination, mirroring the combinations
// of Figure 7: base, porder, chain, chain+split, chain+porder, all.
type Options struct {
	// Chain enables basic block chaining within procedures.
	Chain bool
	// Split selects how procedures are cut into placement units.
	Split SplitMode
	// Order selects the unit ordering pass.
	Order OrderMode
	// AlignWords pads unit starts; 0 defaults to 4 (16-byte alignment).
	AlignWords int
	// CFA, if non-nil, reserves a conflict-free instruction-cache area for
	// the hottest units (the software-trace-cache style optimization the
	// paper found unprofitable for OLTP).
	CFA *CFAOptions
}

// Combo names a standard optimization combination from the paper.
type Combo struct {
	Name string
	Opts Options
}

// Combos returns the paper's Figure 7 / Figure 15 combinations in order.
func Combos() []Combo {
	return []Combo{
		{"base", Options{}},
		{"porder", Options{Order: OrderPettisHansen}},
		{"chain", Options{Chain: true}},
		{"chain+split", Options{Chain: true, Split: SplitFine}},
		{"chain+porder", Options{Chain: true, Order: OrderPettisHansen}},
		{"all", Options{Chain: true, Split: SplitFine, Order: OrderPettisHansen}},
	}
}

// ComboByName returns the named combination.
func ComboByName(name string) (Combo, error) {
	for _, c := range Combos() {
		if c.Name == name {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("core: unknown optimization combo %q", name)
}

// Report summarizes what the optimizer did.
type Report struct {
	Chains           int
	Units            int
	HotUnits         int
	HotWords         int64
	LongBranches     int
	PadWords         int64
	CFAReservedWords int64
	// FusedKinds counts the transaction kinds txfuse fused into single
	// straight-line placement units.
	FusedKinds int
	// ClonedProcs counts the shared procedures txfuse duplicated into
	// fused units, and CloneWords their total size — the code growth the
	// fusion budget caps.
	ClonedProcs int
	CloneWords  int64
}

// PipelineFor assembles the pass pipeline implementing the given options:
// chaining (if enabled), splitting, ordering, CFA planning (if configured),
// alignment and materialization, in the fixed Spike stage order.
func PipelineFor(o Options) (Pipeline, error) {
	var pl Pipeline
	if o.Chain {
		pl = append(pl, chainPass{})
	}
	pl = append(pl, splitPass{mode: o.Split})
	switch o.Order {
	case OrderOriginal, OrderPettisHansen:
		pl = append(pl, porderPass{o.Order})
	default:
		return nil, fmt.Errorf("core: unknown order mode %d", o.Order)
	}
	if o.CFA != nil {
		pl = append(pl, cfaPass{*o.CFA})
	}
	if o.AlignWords != 0 {
		pl = append(pl, alignPass{o.AlignWords})
	}
	return append(pl, materializePass{}), nil
}

// ComboPipeline resolves a combo name to its pass pipeline. It knows the
// paper's six combinations (ComboByName) plus the extensions measurable next
// to them: "hotcold" (Spike-distribution splitting), "cfa" (the reserved
// conflict-free area), "ipchain" (inter-procedural call chaining) and
// "fusion" (per-transaction-kind program fusion).
func ComboPipeline(name string) (Pipeline, error) {
	switch name {
	case "hotcold":
		return PipelineFor(Options{Chain: true, Split: SplitHotCold, Order: OrderPettisHansen})
	case "cfa":
		return PipelineFor(Options{Chain: true, Split: SplitFine, Order: OrderPettisHansen,
			CFA: &CFAOptions{CacheBytes: 64 << 10, ReservedBytes: 16 << 10}})
	case "ipchain":
		return ParsePipeline(IPChainSpec)
	case "fusion":
		return ParsePipeline(TxFuseSpec)
	}
	c, err := ComboByName(name)
	if err != nil {
		return nil, err
	}
	return PipelineFor(c.Opts)
}

// IPChainSpec is the pipeline spec of the "ipchain" combo: chain+porder with
// the inter-procedural call-chaining pass merging caller/callee units along
// hot call edges before Pettis–Hansen ordering.
const IPChainSpec = "chain,split:none,ipchain,porder:ph,materialize"

// TxFuseSpec is the pipeline spec of the "fusion" combo: chain+porder with
// the transaction-program fusion pass collapsing each kind's hot call chain
// into one straight-line placement unit before Pettis–Hansen ordering. Run
// it through Pipeline.RunFused to supply kind roots and a procedure cloner;
// plain Run derives roots from the profile and skips cloning.
const TxFuseSpec = "chain,split:none,txfuse,porder:ph,materialize"

// Optimize produces a layout of the program under the given options. The
// profile may be sampling-based (block counts only); edge weights are then
// estimated the way Spike does. The base combination (zero Options with no
// chaining) reproduces the original binary's layout modulo alignment.
//
// Optimize is a compatibility wrapper: it assembles the pass pipeline with
// PipelineFor and runs it. Custom stage sequences go through ParsePipeline
// or a hand-built Pipeline instead.
func Optimize(p *program.Program, pf *profile.Profile, o Options) (*program.Layout, *Report, error) {
	pl, err := PipelineFor(o)
	if err != nil {
		return nil, nil, err
	}
	return pl.Run(p, pf)
}
