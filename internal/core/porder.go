package core

import (
	"container/heap"
	"sort"

	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// PettisHansen orders the hot placement units with the Pettis and Hansen
// procedure ordering algorithm (Figure 2 of the paper): build a weighted
// (undirected) call graph over units — including branch edges between units,
// which fine-grain splitting introduces — then repeatedly collapse the
// heaviest edge, choosing among the four possible merge orientations using
// the weights of the original graph. Cold units keep their original relative
// order and are appended by the caller.
//
// The returned slice is a permutation of the indexes of the hot units in
// placement order.
func PettisHansen(p *program.Program, pf *profile.Profile, units []Unit) []int {
	// Map blocks to unit indexes.
	unitOf := make([]int32, p.NumBlocks())
	for i := range unitOf {
		unitOf[i] = -1
	}
	hotIdx := make([]int, 0, len(units))
	for i, u := range units {
		if !u.Hot {
			continue
		}
		hotIdx = append(hotIdx, i)
		for _, b := range u.Blocks {
			unitOf[b] = int32(i)
		}
	}
	if len(hotIdx) <= 1 {
		return hotIdx
	}

	// Original undirected inter-unit weights.
	type pair struct{ a, b int32 }
	norm := func(a, b int32) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	orig := make(map[pair]uint64)
	for _, i := range hotIdx {
		for _, bid := range units[i].Blocks {
			b := p.Block(bid)
			p.SuccEdges(b, func(e program.Edge) {
				w := pf.Edge(e.Src, e.Dst)
				if w == 0 {
					return
				}
				du := unitOf[e.Dst]
				if du < 0 || du == int32(i) {
					return
				}
				orig[norm(int32(i), du)] += w
			})
		}
	}

	// Group state: each hot unit starts as its own group.
	parent := make(map[int32]int32, len(hotIdx))
	lists := make(map[int32][]int32, len(hotIdx))
	adj := make(map[int32]map[int32]uint64, len(hotIdx))
	for _, i := range hotIdx {
		gi := int32(i)
		parent[gi] = gi
		lists[gi] = []int32{gi}
		adj[gi] = make(map[int32]uint64)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for pr, w := range orig {
		adj[pr.a][pr.b] += w
		adj[pr.b][pr.a] += w
	}

	// Max-heap of candidate merges with lazy invalidation.
	h := &edgeHeap{}
	for pr, w := range orig {
		heap.Push(h, heapEdge{w: w, a: pr.a, b: pr.b})
	}
	sort.Sort(h) // heap.Init equivalent but deterministic start
	heap.Init(h)

	originalWeight := func(a, b int32) uint64 { return orig[norm(a, b)] }

	for h.Len() > 0 {
		e := heap.Pop(h).(heapEdge)
		ga, gb := find(e.a), find(e.b)
		if ga == gb {
			continue
		}
		if w := adj[ga][gb]; w != e.w || w == 0 {
			continue // stale entry
		}
		// Merge gb into ga, choosing the best of the four orientations by
		// the original-graph weight between the junction endpoints.
		L, R := lists[ga], lists[gb]
		type combo struct {
			revL, revR bool
			score      uint64
		}
		combos := []combo{
			{false, false, originalWeight(L[len(L)-1], R[0])},
			{false, true, originalWeight(L[len(L)-1], R[len(R)-1])},
			{true, false, originalWeight(L[0], R[0])},
			{true, true, originalWeight(L[0], R[len(R)-1])},
		}
		best := combos[0]
		for _, c := range combos[1:] {
			if c.score > best.score {
				best = c
			}
		}
		if best.revL {
			reverse(L)
		}
		if best.revR {
			reverse(R)
		}
		lists[ga] = append(L, R...)
		delete(lists, gb)
		parent[gb] = ga

		// Fold gb's adjacency into ga's and refresh heap entries.
		for n, w := range adj[gb] {
			gn := find(n)
			if gn == ga || w == 0 {
				continue
			}
			adj[ga][gn] += w
			adj[gn][ga] = adj[ga][gn]
			delete(adj[gn], gb)
			heap.Push(h, heapEdge{w: adj[ga][gn], a: ga, b: gn})
		}
		delete(adj, gb)
		delete(adj[ga], gb)
	}

	// Collect surviving groups; order by total dynamic weight, then by the
	// smallest original unit index for determinism.
	type group struct {
		rep    int32
		weight uint64
		minIdx int32
	}
	var groups []group
	for rep, list := range lists {
		var w uint64
		min := list[0]
		for _, u := range list {
			w += units[u].Count
			if u < min {
				min = u
			}
		}
		groups = append(groups, group{rep, w, min})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].weight != groups[j].weight {
			return groups[i].weight > groups[j].weight
		}
		return groups[i].minIdx < groups[j].minIdx
	})
	var order []int
	for _, g := range groups {
		for _, u := range lists[g.rep] {
			order = append(order, int(u))
		}
	}
	return order
}

func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

type heapEdge struct {
	w    uint64
	a, b int32
}

type edgeHeap []heapEdge

func (h edgeHeap) Len() int { return len(h) }
func (h edgeHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w > h[j].w
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(heapEdge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
