package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

// buildCallGraph builds procs whose pairwise call weights form the paper's
// Figure 2 example: edges A-C:10, A-B:1 (via 1+? keep simple), B-D:8, B-E:4,
// C-D:3, D-E:7, C-B:1. PH first merges (A,C), then (B,D), then joins with E,
// ending with an order equivalent to E,D,B,A,C (or its reverse).
func buildCallGraph(t *testing.T) (*program.Program, *profile.Profile, map[string]program.ProcID) {
	t.Helper()
	p := program.New("fig2", isa.AppTextBase)
	names := []string{"A", "B", "C", "D", "E"}
	ids := make(map[string]program.ProcID)
	callBlocks := make(map[string][]*program.Block)
	for _, n := range names {
		pr := p.AddProc(n)
		ids[n] = pr.ID
		// Each proc: four call blocks then a return, so it can call up to
		// four distinct callees.
		var blocks []*program.Block
		for i := 0; i < 4; i++ {
			blocks = append(blocks, p.AddBlock(pr, 2))
		}
		ret := p.AddBlock(pr, 1)
		ret.Kind = isa.TermRet
		for i, b := range blocks {
			b.Kind = isa.TermFallThrough // rewired to call below if used
			if i+1 < len(blocks) {
				b.Fall = blocks[i+1].ID
			} else {
				b.Fall = ret.ID
			}
		}
		callBlocks[n] = blocks
	}
	pf := profile.New("fig2", p)
	slot := make(map[string]int)
	addCall := func(from, to string, w uint64) {
		b := callBlocks[from][slot[from]]
		slot[from]++
		b.Kind = isa.TermCall
		b.Callee = ids[to]
		pf.AddBlock(b.ID, w)
		pf.AddEdge(b.ID, p.Entry(ids[to]), w)
		pf.AddBlock(p.Entry(ids[to]), w)
	}
	addCall("A", "C", 10)
	addCall("A", "B", 1)
	addCall("B", "D", 8)
	addCall("B", "E", 4)
	addCall("C", "D", 3)
	addCall("D", "E", 7)
	// Make every proc's entry hot so all participate.
	for _, n := range names {
		pf.AddBlock(p.Entry(ids[n]), 1)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, pf, ids
}

func TestPettisHansenFigure2(t *testing.T) {
	p, pf, ids := buildCallGraph(t)
	units := core.BuildUnits(p, pf, sourceChainsAll(p), core.SplitNone)
	order := core.PettisHansen(p, pf, units)
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	name := func(u int) string { return p.Procs[units[u].Proc].Name }
	got := ""
	for _, u := range order {
		got += name(u)
	}
	// A and C must be adjacent (heaviest edge merged first); B and D must
	// be adjacent (second heaviest).
	if !adjacent(got, "A", "C") {
		t.Fatalf("A,C not adjacent in %q", got)
	}
	if !adjacent(got, "B", "D") {
		t.Fatalf("B,D not adjacent in %q", got)
	}
	_ = ids
}

func adjacent(s, a, b string) bool {
	for i := 0; i+1 < len(s); i++ {
		if (s[i] == a[0] && s[i+1] == b[0]) || (s[i] == b[0] && s[i+1] == a[0]) {
			return true
		}
	}
	return false
}

func sourceChainsAll(p *program.Program) map[program.ProcID][]core.Chain {
	chains := make(map[program.ProcID][]core.Chain, len(p.Procs))
	for _, pr := range p.Procs {
		chains[pr.ID] = core.SourceChains(pr)
	}
	return chains
}

func TestPettisHansenIsPermutation(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 2+r.Intn(6))
		pf := progtest.RandProfile(r, p, 20, 300)
		units := core.BuildUnits(p, pf, sourceChainsAll(p), core.SplitNone)
		order := core.PettisHansen(p, pf, units)
		seen := make(map[int]bool)
		hot := 0
		for i, u := range units {
			if u.Hot {
				hot++
			} else {
				continue
			}
			_ = i
		}
		for _, u := range order {
			if seen[u] {
				t.Logf("seed %d: unit %d twice", seed, u)
				return false
			}
			seen[u] = true
			if !units[u].Hot {
				t.Logf("seed %d: cold unit %d in hot order", seed, u)
				return false
			}
		}
		if len(order) != hot {
			t.Logf("seed %d: order %d != hot units %d", seed, len(order), hot)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPettisHansenDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := progtest.RandProgram(r, 8)
	pf := progtest.RandProfile(r, p, 30, 300)
	units := core.BuildUnits(p, pf, sourceChainsAll(p), core.SplitNone)
	a := core.PettisHansen(p, pf, units)
	for i := 0; i < 5; i++ {
		b := core.PettisHansen(p, pf, units)
		if len(a) != len(b) {
			t.Fatal("length mismatch")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d differs at %d: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestPettisHansenPlacesHeaviestPairAdjacent(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 3+r.Intn(5))
		pf := progtest.RandProfile(r, p, 25, 300)
		units := core.BuildUnits(p, pf, sourceChainsAll(p), core.SplitNone)
		order := core.PettisHansen(p, pf, units)
		if len(order) < 2 {
			return true
		}
		// Find the heaviest inter-unit pair in the original graph.
		unitOf := make(map[program.BlockID]int)
		for i, u := range units {
			for _, b := range u.Blocks {
				unitOf[b] = i
			}
		}
		type pair struct{ a, b int }
		w := make(map[pair]uint64)
		for _, b := range p.Blocks {
			p.SuccEdges(b, func(e program.Edge) {
				ua, ub := unitOf[e.Src], unitOf[e.Dst]
				if ua == ub {
					return
				}
				if ua > ub {
					ua, ub = ub, ua
				}
				w[pair{ua, ub}] += pf.Edge(e.Src, e.Dst)
			})
		}
		var best pair
		var bw uint64
		for pr, x := range w {
			if x > bw {
				best, bw = pr, x
			}
		}
		if bw == 0 {
			return true
		}
		posOf := make(map[int]int)
		for i, u := range order {
			posOf[u] = i
		}
		pa, oka := posOf[best.a]
		pb, okb := posOf[best.b]
		if !oka || !okb {
			return true // one side cold
		}
		d := pa - pb
		if d < 0 {
			d = -d
		}
		if d != 1 {
			t.Logf("seed %d: heaviest pair (%d,%d,w=%d) at distance %d in %v", seed, best.a, best.b, bw, d, order)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
