package core

import (
	"fmt"
	"sort"

	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// CallChainUnits merges placement units along hot call edges, Codestitcher
// style: when a unit contains a call whose callee's entry starts another hot
// unit, the two units are concatenated so the call chain lands on adjacent
// cache lines. Pettis–Hansen ordering keeps caller and callee *near* each
// other but still aligns every unit start and may orient a merge backwards;
// call chaining guarantees the callee entry is placed contiguously after the
// caller's unit, with no alignment padding in between.
//
// Candidate edges are processed heaviest first, and a merge is accepted when
// the caller unit is still a chain tail, the callee unit is still a chain
// head, and no cycle would form — the same greedy discipline basic-block
// chaining applies within a procedure, lifted to inter-procedural placement
// units. The returned slice preserves the original relative order of the
// surviving units; absorbed units disappear into their chain head.
//
// minWeight is the merge threshold: call edges executed fewer than minWeight
// times are not merge candidates (0 and 1 both mean any executed edge — the
// ipchain:N pass parameter raises the bar so rare call paths stay separate
// units).
func CallChainUnits(p *program.Program, pf *profile.Profile, units []Unit, minWeight uint64) []Unit {
	if minWeight == 0 {
		minWeight = 1
	}
	// headOf maps a unit's first block to the unit index, so a call edge to a
	// callee entry can find the unit that starts with that entry.
	headOf := make(map[program.BlockID]int, len(units))
	for i, u := range units {
		if len(u.Blocks) > 0 {
			headOf[u.Blocks[0]] = i
		}
	}

	type callEdge struct {
		w        uint64
		from, to int
	}
	var edges []callEdge
	for i, u := range units {
		if !u.Hot {
			continue
		}
		for _, bid := range u.Blocks {
			b := p.Block(bid)
			if b.Kind != isa.TermCall || b.Callee == program.NoProc {
				continue
			}
			entry := p.Entry(b.Callee)
			if entry == program.NoBlock {
				continue
			}
			w := pf.Edge(bid, entry)
			if w < minWeight {
				continue
			}
			j, ok := headOf[entry]
			if !ok || j == i || !units[j].Hot {
				continue
			}
			edges = append(edges, callEdge{w, i, j})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		x, y := edges[a], edges[b]
		if x.w != y.w {
			return x.w > y.w
		}
		if x.from != y.from {
			return x.from < y.from
		}
		return x.to < y.to
	})

	next := make([]int, len(units))
	prev := make([]int, len(units))
	parent := make([]int, len(units))
	for i := range units {
		next[i], prev[i], parent[i] = -1, -1, i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if next[e.from] != -1 || prev[e.to] != -1 {
			continue
		}
		rf, rt := find(e.from), find(e.to)
		if rf == rt {
			continue // would close a cycle of units
		}
		next[e.from] = e.to
		prev[e.to] = e.from
		parent[rf] = rt
	}

	merged := make([]Unit, 0, len(units))
	for i, u := range units {
		if prev[i] != -1 {
			continue // absorbed into an earlier chain
		}
		if next[i] == -1 {
			merged = append(merged, u)
			continue
		}
		blocks := append([]program.BlockID(nil), u.Blocks...)
		for cur := next[i]; cur != -1; cur = next[cur] {
			blocks = append(blocks, units[cur].Blocks...)
		}
		merged = append(merged, Unit{
			Blocks: blocks,
			Proc:   u.Proc,
			Seq:    u.Seq,
			Count:  u.Count,
			Hot:    true,
		})
	}
	return merged
}

// ipchainPass is the inter-procedural call-chaining pass: it rewrites the
// unit list in place, so it must run after splitting and before ordering.
// minWeight is the merge threshold (see CallChainUnits).
type ipchainPass struct{ minWeight uint64 }

func (p ipchainPass) Name() string {
	if p.minWeight > 1 {
		return fmt.Sprintf("ipchain:%d", p.minWeight)
	}
	return "ipchain"
}

func (p ipchainPass) Run(st *LayoutState) error {
	if st.UnitOrder != nil {
		return fmt.Errorf("ipchain must run before units are ordered")
	}
	st.EnsureUnits()
	st.Units = CallChainUnits(st.Prog, st.Prof, st.Units, p.minWeight)
	st.countUnits()
	return nil
}
