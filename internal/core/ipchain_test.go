package core_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

// callChainFixture builds a program with a hot loop in main calling f and g,
// plus cold procedures, and a profile where both call edges are hot. Block
// bodies are chosen so main's chained unit is not a multiple of the 4-word
// alignment, making unit-boundary padding observable.
func callChainFixture() (*program.Program, *profile.Profile, *program.Procedure, *program.Procedure, *program.Procedure) {
	p := program.New("ipchain-fixture", isa.AppTextBase)
	main := p.AddProc("main")
	f := p.AddProc("f")
	g := p.AddProc("g")

	b0 := p.AddBlock(main, 3) // entry, calls f
	b1 := p.AddBlock(main, 2) // calls g
	b2 := p.AddBlock(main, 2) // loop test
	b3 := p.AddBlock(main, 2) // exit
	f0 := p.AddBlock(f, 5)
	g0 := p.AddBlock(g, 7)

	b0.Kind, b0.Callee, b0.Fall = isa.TermCall, f.ID, b1.ID
	b1.Kind, b1.Callee, b1.Fall = isa.TermCall, g.ID, b2.ID
	b2.Kind, b2.Taken, b2.Fall = isa.TermCond, b0.ID, b3.ID
	b3.Kind = isa.TermRet
	f0.Kind = isa.TermRet
	g0.Kind = isa.TermRet

	for i := 0; i < 3; i++ {
		cold := p.AddProc("cold_" + string(rune('a'+i)))
		cold.Cold = true
		cb := p.AddBlock(cold, 6)
		cb.Kind = isa.TermRet
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}

	pf := profile.New("ipchain-train", p)
	for _, b := range []*program.Block{b0, b1, b2, f0, g0} {
		pf.AddBlock(b.ID, 100)
	}
	pf.AddBlock(b3.ID, 1)
	pf.AddEdge(b0.ID, f0.ID, 100) // call main -> f
	pf.AddEdge(b0.ID, b1.ID, 100) // continuation
	pf.AddEdge(b1.ID, g0.ID, 100) // call main -> g
	pf.AddEdge(b1.ID, b2.ID, 100) // continuation
	pf.AddEdge(b2.ID, b0.ID, 99)  // loop back
	pf.AddEdge(b2.ID, b3.ID, 1)   // exit
	return p, pf, main, f, g
}

func TestCallChainUnitsMergesHotCallEdges(t *testing.T) {
	p, pf, main, f, _ := callChainFixture()
	// Build the pre-ipchain units by hand to inspect the merge directly.
	chains := make(map[program.ProcID][]core.Chain, len(p.Procs))
	for _, pr := range p.Procs {
		if pr.Cold {
			chains[pr.ID] = core.SourceChains(pr)
		} else {
			chains[pr.ID] = core.ChainProc(p, pr, pf)
		}
	}
	units := core.BuildUnits(p, pf, chains, core.SplitNone)
	hotBefore := 0
	for _, u := range units {
		if u.Hot {
			hotBefore++
		}
	}
	merged := core.CallChainUnits(p, pf, units, 0)
	hotAfter := 0
	var mergedUnit *core.Unit
	for i, u := range merged {
		if u.Hot {
			hotAfter++
		}
		if u.Proc == main.ID && len(u.Blocks) > len(p.Proc(main.ID).Blocks) {
			mergedUnit = &merged[i]
		}
	}
	if hotAfter >= hotBefore {
		t.Fatalf("ipchain merged nothing: %d hot units before, %d after", hotBefore, hotAfter)
	}
	if mergedUnit == nil {
		t.Fatal("no merged caller/callee unit found")
	}
	// The callee's entry must be concatenated directly after main's blocks.
	fEntry := p.Entry(f.ID)
	mainLen := len(p.Proc(main.ID).Blocks)
	if mergedUnit.Blocks[mainLen] != fEntry {
		t.Fatalf("merged unit does not place f's entry after main: %v", mergedUnit.Blocks)
	}
	// Every block still appears exactly once across the merged units.
	seen := make(map[program.BlockID]bool)
	for _, u := range merged {
		for _, b := range u.Blocks {
			if seen[b] {
				t.Fatalf("block %d appears twice after merging", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != p.NumBlocks() {
		t.Fatalf("merged units cover %d blocks, program has %d", len(seen), p.NumBlocks())
	}
}

// TestIPChainChangesHotUnitAdjacency asserts the end-to-end property the pass
// exists for: under the ipchain combo, the hottest callee's entry is placed
// contiguously after the caller's unit (no alignment padding in between),
// which chain+porder does not do — it aligns every unit start.
func TestIPChainChangesHotUnitAdjacency(t *testing.T) {
	p, pf, main, f, _ := callChainFixture()

	adjacent := func(l *program.Layout) bool {
		fEntry := p.Entry(f.ID)
		mainTail := p.Proc(main.ID).Blocks[len(p.Proc(main.ID).Blocks)-1]
		return l.Addr[fEntry] == l.End(mainTail)
	}

	phPl, err := core.ComboPipeline("chain+porder")
	if err != nil {
		t.Fatal(err)
	}
	phLayout, phRep, err := phPl.Run(p, pf)
	if err != nil {
		t.Fatal(err)
	}
	ipPl, err := core.ComboPipeline("ipchain")
	if err != nil {
		t.Fatal(err)
	}
	ipLayout, ipRep, err := ipPl.Run(p, pf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*program.Layout{phLayout, ipLayout} {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !adjacent(ipLayout) {
		t.Fatal("ipchain did not place f's entry contiguously after main")
	}
	if adjacent(phLayout) {
		t.Fatal("fixture broken: chain+porder already places f contiguously (alignment should pad)")
	}
	if ipRep.HotUnits >= phRep.HotUnits {
		t.Fatalf("ipchain did not reduce hot units: %d vs %d", ipRep.HotUnits, phRep.HotUnits)
	}
}

// TestIPChainValidOnRandomPrograms checks structural safety over arbitrary
// CFGs: every block placed once, layouts validate.
func TestIPChainValidOnRandomPrograms(t *testing.T) {
	pl, err := core.ComboPipeline("ipchain")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(8))
		pf := progtest.RandProfile(r, p, 5+r.Intn(20), 300)
		l, rep, err := pl.Run(p, pf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Units <= 0 {
			t.Fatalf("seed %d: empty report", seed)
		}
	}
}
