package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// LayoutState is the shared state a pass pipeline threads through its passes.
// Each pass reads what earlier passes produced and fills in the next stage:
// chains feed unit splitting, units feed ordering, the order feeds
// materialization. Fields a pass needs that no earlier pass produced are
// filled with the baseline defaults (source chains, whole-procedure units,
// original link order), so short pipelines like "chain,porder:ph" work
// without spelling out every stage.
type LayoutState struct {
	Prog *program.Program
	Prof *profile.Profile

	// Chains are the per-procedure block chains (nil until a chaining pass or
	// a consumer's EnsureChains installs the source-order chains).
	Chains map[program.ProcID][]Chain

	// Units are the placement units cut from the chains (nil until a split
	// pass or EnsureUnits runs).
	Units []Unit

	// UnitOrder is the placement order of Units, as indexes into Units (nil
	// until an ordering pass or EnsureOrder runs).
	UnitOrder []int

	// AlignWords pads unit starts at materialization; 0 means the default
	// 4-word (16-byte) alignment.
	AlignWords int

	// GapBefore carries explicit address-space gaps for Materialize (the CFA
	// pass plans these).
	GapBefore map[program.BlockID]uint64

	// Report accumulates the optimizer report across passes.
	Report *Report

	// Layout is the materialized result; set by the materialize pass.
	Layout *program.Layout

	// KindRoots seed the txfuse pass with one fused unit per transaction
	// kind (nil lets txfuse derive roots from the profile's call graph).
	KindRoots []KindRoot

	// Cloner, if non-nil, lets txfuse clone shared procedures into fused
	// units (image-aware runs install the specialized image here); nil
	// disables cloning.
	Cloner ProcCloner

	// fused guards against running txfuse twice over one state.
	fused bool
}

// EnsureChains installs the source-order chains for every procedure if no
// chaining pass has run yet.
func (st *LayoutState) EnsureChains() {
	if st.Chains != nil {
		return
	}
	st.Chains = make(map[program.ProcID][]Chain, len(st.Prog.Procs))
	for _, pr := range st.Prog.Procs {
		st.Chains[pr.ID] = SourceChains(pr)
	}
}

// EnsureUnits cuts chains into whole-procedure units (SplitNone) if no split
// pass has run yet, and records the chain/unit tallies in the report.
func (st *LayoutState) EnsureUnits() {
	if st.Units != nil {
		return
	}
	st.buildUnits(SplitNone, 1)
}

func (st *LayoutState) buildUnits(mode SplitMode, hotMin uint64) {
	st.EnsureChains()
	for _, pr := range st.Prog.Procs {
		st.Report.Chains += len(st.Chains[pr.ID])
	}
	st.Units = BuildUnitsHot(st.Prog, st.Prof, st.Chains, mode, hotMin)
	st.countUnits()
}

// countUnits refreshes the unit tallies of the report from st.Units.
func (st *LayoutState) countUnits() {
	st.Report.Units = len(st.Units)
	st.Report.HotUnits = 0
	st.Report.HotWords = 0
	for _, u := range st.Units {
		if u.Hot {
			st.Report.HotUnits++
			st.Report.HotWords += unitWords(st.Prog, u)
		}
	}
}

// EnsureOrder installs the original link order (procedures in link order,
// units in pre-ordering sequence) if no ordering pass has run yet.
func (st *LayoutState) EnsureOrder() {
	if st.UnitOrder != nil {
		return
	}
	st.EnsureUnits()
	st.UnitOrder = OriginalOrder(st.Units)
}

// OriginalOrder returns the permutation placing units in the original
// binary's link order: by procedure, then by pre-ordering sequence.
func OriginalOrder(units []Unit) []int {
	order := make([]int, len(units))
	for i := range units {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := units[order[a]], units[order[b]]
		if ua.Proc != ub.Proc {
			return ua.Proc < ub.Proc
		}
		return ua.Seq < ub.Seq
	})
	return order
}

// Pass is one stage of a layout pipeline. Name returns the canonical
// "name" or "name:arg" spec that ParsePipeline maps back to this pass.
type Pass interface {
	Name() string
	Run(*LayoutState) error
}

// PassFactory builds a pass from the argument following "name:" in a
// pipeline spec (empty when the spec is the bare name).
type PassFactory func(arg string) (Pass, error)

// passEntry is one registry slot: the factory plus the one-line
// description PassDocs renders.
type passEntry struct {
	factory PassFactory
	doc     string
}

var (
	passMu       sync.RWMutex
	passRegistry = map[string]passEntry{}
)

// RegisterPass adds a pass factory to the registry under the given base name
// (the part of a spec before the optional ":arg"). Registering a name twice
// is an error, as is a name containing the spec separators.
func RegisterPass(name string, f PassFactory) error {
	return RegisterPassDoc(name, "", f)
}

// RegisterPassDoc registers a pass factory together with a one-line
// description, shown by PassDocs and the spike -list-passes listing.
func RegisterPassDoc(name, doc string, f PassFactory) error {
	if name == "" || strings.ContainsAny(name, ":,") || f == nil {
		return fmt.Errorf("core: invalid pass registration %q", name)
	}
	passMu.Lock()
	defer passMu.Unlock()
	if _, dup := passRegistry[name]; dup {
		return fmt.Errorf("core: pass %q already registered", name)
	}
	passRegistry[name] = passEntry{factory: f, doc: doc}
	return nil
}

// RegisteredPasses lists the registered base pass names, sorted.
func RegisteredPasses() []string {
	passMu.RLock()
	defer passMu.RUnlock()
	names := make([]string, 0, len(passRegistry))
	for n := range passRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PassDoc describes one registered pass for listings.
type PassDoc struct {
	Name string
	Doc  string
}

// PassDocs returns every registered pass sorted by name with its one-line
// description, so pipeline specs are discoverable (spike -list-passes).
// Passes registered without a description report "(no description)".
func PassDocs() []PassDoc {
	passMu.RLock()
	defer passMu.RUnlock()
	docs := make([]PassDoc, 0, len(passRegistry))
	for n, e := range passRegistry {
		doc := e.doc
		if doc == "" {
			doc = "(no description)"
		}
		docs = append(docs, PassDoc{Name: n, Doc: doc})
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	return docs
}

// PassListing renders one "name  description" line per registered pass,
// sorted by name — the menu spike -list-passes prints and UnknownPassError
// embeds, so the two listings can never drift apart.
func PassListing() []string {
	docs := PassDocs()
	lines := make([]string, len(docs))
	for i, d := range docs {
		lines[i] = fmt.Sprintf("%-12s %s", d.Name, d.Doc)
	}
	return lines
}

// UnknownPassError reports a pipeline spec naming a pass that is not in the
// registry, carrying the valid names so callers fail fast with the full menu
// (mirroring layoutlab's unknown -table error).
type UnknownPassError struct {
	Pass  string   // the unrecognized base pass name
	Valid []string // the registered base names, sorted
}

func (e *UnknownPassError) Error() string {
	return fmt.Sprintf("core: unknown pass %q (valid passes: %s)",
		e.Pass, strings.Join(e.Valid, ", "))
}

// NewPass builds one pass from a "name" or "name:arg" spec. An unrecognized
// base name yields an *UnknownPassError listing the registered passes.
func NewPass(spec string) (Pass, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	name = strings.TrimSpace(name)
	passMu.RLock()
	e, ok := passRegistry[name]
	passMu.RUnlock()
	if !ok {
		return nil, &UnknownPassError{Pass: name, Valid: RegisteredPasses()}
	}
	p, err := e.factory(strings.TrimSpace(arg))
	if err != nil {
		return nil, fmt.Errorf("core: pass %q: %w", spec, err)
	}
	return p, nil
}

// Pipeline is an ordered list of layout passes.
type Pipeline []Pass

// ParsePipeline parses a comma-separated pass spec such as
// "chain,split:fine,porder:ph" into a pipeline. A spec need not end in
// "materialize": Run materializes implicitly when the pipeline finishes
// without producing a layout, so terse specs and custom materializing
// passes both work.
func ParsePipeline(spec string) (Pipeline, error) {
	var pl Pipeline
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		p, err := NewPass(field)
		if err != nil {
			return nil, err
		}
		pl = append(pl, p)
	}
	if len(pl) == 0 {
		return nil, fmt.Errorf("core: empty pipeline spec %q", spec)
	}
	return pl, nil
}

// String renders the pipeline as a spec that ParsePipeline accepts.
func (pl Pipeline) String() string {
	names := make([]string, len(pl))
	for i, p := range pl {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}

// Run executes the pipeline over the program and profile and returns the
// materialized layout and report. A materialize pass is run implicitly if
// the pipeline ends without one. Edge weights are estimated first when the
// profile is sampling-based, exactly as Optimize always did.
func (pl Pipeline) Run(p *program.Program, pf *profile.Profile) (*program.Layout, *Report, error) {
	return pl.RunFused(p, pf, nil, nil)
}

// RunFused is the image-aware pipeline entry: it executes the pipeline with
// transaction-kind roots and an optional procedure cloner threaded through
// the state for the txfuse pass. The cloner must mutate the same program p
// (codegen's specialized images do); passes other than txfuse ignore both.
func (pl Pipeline) RunFused(p *program.Program, pf *profile.Profile, roots []KindRoot, cl ProcCloner) (*program.Layout, *Report, error) {
	pf.EnsureEdges(p)
	st := &LayoutState{Prog: p, Prof: pf, Report: &Report{}, KindRoots: roots, Cloner: cl}
	for _, pass := range pl {
		if err := pass.Run(st); err != nil {
			return nil, nil, fmt.Errorf("core: pass %s: %w", pass.Name(), err)
		}
	}
	if st.Layout == nil {
		if err := (materializePass{}).Run(st); err != nil {
			return nil, nil, fmt.Errorf("core: pass materialize: %w", err)
		}
	}
	return st.Layout, st.Report, nil
}

// --- built-in passes -------------------------------------------------------

// chainPass runs greedy basic-block chaining on every non-cold procedure.
type chainPass struct{}

func (chainPass) Name() string { return "chain" }

func (chainPass) Run(st *LayoutState) error {
	if st.Units != nil {
		return fmt.Errorf("chain must run before units are split")
	}
	st.EnsureChains()
	for _, pr := range st.Prog.Procs {
		if !pr.Cold {
			st.Chains[pr.ID] = ChainProc(st.Prog, pr, st.Prof)
		}
	}
	return nil
}

// splitPass cuts chains into placement units. hotMin is the hot/cold
// partition threshold of SplitHotCold (a block is hot when its execution
// count reaches hotMin); 1 is the classic executed-at-all partition.
type splitPass struct {
	mode   SplitMode
	hotMin uint64
}

func (p splitPass) Name() string {
	if p.mode == SplitHotCold && p.hotMin > 1 {
		return fmt.Sprintf("split:hotcold@%d", p.hotMin)
	}
	return "split:" + p.mode.String()
}

func (p splitPass) Run(st *LayoutState) error {
	if st.Units != nil {
		return fmt.Errorf("units already split")
	}
	hotMin := p.hotMin
	if hotMin == 0 {
		hotMin = 1
	}
	st.buildUnits(p.mode, hotMin)
	return nil
}

// porderPass orders the placement units.
type porderPass struct{ mode OrderMode }

func (p porderPass) Name() string {
	if p.mode == OrderPettisHansen {
		return "porder:ph"
	}
	return "porder:orig"
}

func (p porderPass) Run(st *LayoutState) error {
	if st.UnitOrder != nil {
		return fmt.Errorf("units already ordered")
	}
	st.EnsureUnits()
	switch p.mode {
	case OrderOriginal:
		st.UnitOrder = OriginalOrder(st.Units)
	case OrderPettisHansen:
		hot := PettisHansen(st.Prog, st.Prof, st.Units)
		seen := make([]bool, len(st.Units))
		for _, i := range hot {
			seen[i] = true
		}
		order := append([]int(nil), hot...)
		var cold []int
		for i := range st.Units {
			if !seen[i] {
				cold = append(cold, i)
			}
		}
		sort.SliceStable(cold, func(a, b int) bool {
			ua, ub := st.Units[cold[a]], st.Units[cold[b]]
			if ua.Proc != ub.Proc {
				return ua.Proc < ub.Proc
			}
			return ua.Seq < ub.Seq
		})
		st.UnitOrder = append(order, cold...)
	default:
		return fmt.Errorf("unknown order mode %d", p.mode)
	}
	return nil
}

// cfaPass plans the conflict-free-area gaps over the ordered units.
type cfaPass struct{ opts CFAOptions }

func (p cfaPass) Name() string {
	return fmt.Sprintf("cfa:%d/%d", p.opts.CacheBytes, p.opts.ReservedBytes)
}

func (p cfaPass) Run(st *LayoutState) error {
	if st.Layout != nil {
		return fmt.Errorf("cfa must run before materialize")
	}
	st.EnsureOrder()
	gaps, reserved := planCFA(st.Prog, st.Units, st.UnitOrder, p.opts)
	st.GapBefore = gaps
	st.Report.CFAReservedWords = reserved
	return nil
}

// alignPass sets the unit-start alignment used at materialization.
type alignPass struct{ words int }

func (p alignPass) Name() string { return "align:" + strconv.Itoa(p.words) }

func (p alignPass) Run(st *LayoutState) error {
	if st.Layout != nil {
		return fmt.Errorf("align must run before materialize")
	}
	if p.words <= 0 {
		return fmt.Errorf("alignment must be positive, got %d", p.words)
	}
	st.AlignWords = p.words
	return nil
}

// materializePass flattens the ordered units into a block order and derives
// addresses, branch materialization and padding.
type materializePass struct{}

func (materializePass) Name() string { return "materialize" }

func (materializePass) Run(st *LayoutState) error {
	if st.Layout != nil {
		return fmt.Errorf("layout already materialized")
	}
	st.EnsureOrder()
	order := make([]program.BlockID, 0, st.Prog.NumBlocks())
	alignAt := make(map[program.BlockID]bool, len(st.Units))
	for _, ui := range st.UnitOrder {
		u := st.Units[ui]
		if len(u.Blocks) == 0 {
			continue
		}
		alignAt[u.Blocks[0]] = true
		order = append(order, u.Blocks...)
	}
	align := st.AlignWords
	if align == 0 {
		align = 4
	}
	l, err := program.Materialize(st.Prog, order, program.MaterializeOptions{
		AlignWords: align,
		AlignAt:    alignAt,
		Hotness:    st.Prof.Count,
		GapBefore:  st.GapBefore,
	})
	if err != nil {
		return err
	}
	st.Layout = l
	st.Report.LongBranches = l.LongBranches
	st.Report.PadWords = l.PadWords
	return nil
}

func init() {
	mustRegister := func(name, doc string, f PassFactory) {
		if err := RegisterPassDoc(name, doc, f); err != nil {
			panic(err)
		}
	}
	mustRegister("chain", "greedy basic-block chaining within each procedure (falls through hot edges)", func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("takes no argument, got %q", arg)
		}
		return chainPass{}, nil
	})
	mustRegister("split", "cut chains into placement units: none (whole procedure), fine (per chain), hotcold (hot/cold halves; hotcold@N counts a block hot at N+ executions)", func(arg string) (Pass, error) {
		switch arg {
		case "", "none":
			return splitPass{mode: SplitNone}, nil
		case "fine":
			return splitPass{mode: SplitFine}, nil
		case "hotcold":
			return splitPass{mode: SplitHotCold}, nil
		}
		if rest, ok := strings.CutPrefix(arg, "hotcold@"); ok {
			n, err := strconv.ParseUint(rest, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("hotcold@N needs a positive execution-count threshold, got %q", arg)
			}
			return splitPass{mode: SplitHotCold, hotMin: n}, nil
		}
		return nil, fmt.Errorf("unknown split mode %q (none|fine|hotcold|hotcold@N)", arg)
	})
	mustRegister("porder", "order placement units: ph (Pettis\u2013Hansen call-graph ordering) or orig (link order)", func(arg string) (Pass, error) {
		switch arg {
		case "", "ph":
			return porderPass{OrderPettisHansen}, nil
		case "orig", "original":
			return porderPass{OrderOriginal}, nil
		}
		return nil, fmt.Errorf("unknown order mode %q (ph|orig)", arg)
	})
	mustRegister("cfa", "reserve a conflict-free instruction-cache area for the hottest units (cachebytes/reservedbytes)", func(arg string) (Pass, error) {
		o := CFAOptions{CacheBytes: 64 << 10, ReservedBytes: 16 << 10}
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d/%d", &o.CacheBytes, &o.ReservedBytes); err != nil {
				return nil, fmt.Errorf("want cachebytes/reservedbytes, got %q", arg)
			}
		}
		if o.CacheBytes <= 0 || o.ReservedBytes <= 0 || o.ReservedBytes >= o.CacheBytes {
			return nil, fmt.Errorf("reserved area %d must be positive and smaller than the cache %d",
				o.ReservedBytes, o.CacheBytes)
		}
		return cfaPass{o}, nil
	})
	mustRegister("align", "set the unit-start alignment in words used at materialization (default 4)", func(arg string) (Pass, error) {
		words := 4
		if arg != "" {
			var err error
			if words, err = strconv.Atoi(arg); err != nil {
				return nil, fmt.Errorf("want a word count, got %q", arg)
			}
		}
		if words <= 0 {
			return nil, fmt.Errorf("alignment must be positive, got %d", words)
		}
		return alignPass{words}, nil
	})
	mustRegister("materialize", "flatten the ordered units into block addresses, branch materialization and padding", func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("takes no argument, got %q", arg)
		}
		return materializePass{}, nil
	})
	mustRegister("ipchain", "inter-procedural call chaining: concatenate caller/callee units along hot call edges (:N merges only edges executed N+ times)", func(arg string) (Pass, error) {
		if arg == "" {
			return ipchainPass{}, nil
		}
		n, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("want a minimum call-edge weight, got %q", arg)
		}
		return ipchainPass{minWeight: n}, nil
	})
	mustRegister("txfuse", "transaction-program fusion: one straight-line unit per transaction kind, cloning shared code within a growth budget (:N percent, default 10)", func(arg string) (Pass, error) {
		pct := DefaultFuseBudgetPct
		if arg != "" {
			var err error
			if pct, err = strconv.Atoi(arg); err != nil {
				return nil, fmt.Errorf("want a growth budget percentage, got %q", arg)
			}
			if pct < 0 || pct > 100 {
				return nil, fmt.Errorf("growth budget %d%% outside [0,100]", pct)
			}
		}
		return txfusePass{budgetPct: pct}, nil
	})
}
