package core

import (
	"fmt"
	"sort"
	"strconv"

	"codelayout/internal/isa"
	"codelayout/internal/program"
)

// KindRoot seeds one fused placement unit: a transaction-kind label and the
// procedure of the kind's entry model. The image-aware pipeline entry
// (RunFused) resolves workload.KindRoots names to procedures and threads
// them here.
type KindRoot struct {
	Kind string
	Proc program.ProcID
}

// ProcCloner is the seam through which txfuse deduplicates shared engine
// code: cloning a procedure into a transaction kind's fused unit while the
// original keeps serving every other caller. codegen's specialized images
// implement it; a nil cloner disables cloning (shared procedures then stay
// with their heaviest claimant only).
type ProcCloner interface {
	// CloneProc appends a copy of procedure id tagged for a transaction
	// kind and returns the clone's procedure ID.
	CloneProc(id program.ProcID, tag string) (program.ProcID, error)
}

// DefaultFuseBudgetPct is the txfuse code-growth budget: cloned procedure
// words may not exceed this percentage of the pre-fusion *hot* code size.
// Hot words are what compete for instruction-cache capacity, so sizing the
// budget against them keeps duplication from inflating the working set (and
// a fortiori keeps the image inside the application text address map, which
// the total size could also bound but far too loosely to protect the cache).
const DefaultFuseBudgetPct = 10

// txfusePass fuses each transaction kind's hot call chain into one
// placement unit, laid out in straight-line execution order.
type txfusePass struct{ budgetPct int }

func (p txfusePass) Name() string {
	if p.budgetPct == DefaultFuseBudgetPct {
		return "txfuse"
	}
	return "txfuse:" + strconv.Itoa(p.budgetPct)
}

// fuseGroup is one transaction kind's fusion state during the pass.
type fuseGroup struct {
	kind     string
	rootUnit int
	// want lists the units the kind's hot call chain reaches, in DFS
	// first-call-site preorder (the straight-line execution order).
	want []int
	// claim sums the call-edge weight from the kind's group into each
	// wanted unit; the heaviest claimant keeps the original, the rest clone.
	claim map[int]uint64
}

func (p txfusePass) Run(st *LayoutState) error {
	if st.UnitOrder != nil {
		return fmt.Errorf("txfuse must run before units are ordered")
	}
	if st.fused {
		return fmt.Errorf("units already fused")
	}
	st.EnsureUnits()
	st.fused = true
	prog, pf := st.Prog, st.Prof

	headOf := make(map[program.BlockID]int, len(st.Units))
	for i, u := range st.Units {
		if len(u.Blocks) > 0 {
			headOf[u.Blocks[0]] = i
		}
	}
	roots := st.KindRoots
	if len(roots) == 0 {
		roots = deriveRoots(st, headOf)
	}

	// Resolve the root units; a kind whose root never executed fuses
	// nothing (the profile has no chain to follow).
	rootUnitOf := make(map[int]bool)
	var groups []*fuseGroup
	for _, r := range roots {
		if int(r.Proc) >= len(prog.Procs) {
			return fmt.Errorf("txfuse: kind %q root proc %d out of range", r.Kind, r.Proc)
		}
		entry := prog.Entry(r.Proc)
		ui, ok := headOf[entry]
		if !ok || pf.Count(entry) == 0 {
			continue
		}
		if rootUnitOf[ui] {
			continue // two kinds naming the same model fuse once
		}
		rootUnitOf[ui] = true
		groups = append(groups, &fuseGroup{kind: r.Kind, rootUnit: ui, claim: make(map[int]uint64)})
	}

	// Follow each kind's hottest call edges transitively from its root.
	for _, g := range groups {
		rootW := st.Units[g.rootUnit].Count
		threshold := rootW / 8
		if threshold == 0 {
			threshold = 1
		}
		inWant := map[int]bool{g.rootUnit: true}
		var walk func(ui int)
		walk = func(ui int) {
			for _, bid := range st.Units[ui].Blocks {
				b := prog.Block(bid)
				if b.Kind != isa.TermCall || b.Callee == program.NoProc {
					continue
				}
				entry := prog.Entry(b.Callee)
				w := pf.Edge(bid, entry)
				if w < threshold {
					continue
				}
				j, ok := headOf[entry]
				if !ok || !st.Units[j].Hot || inWant[j] {
					continue
				}
				inWant[j] = true
				g.want = append(g.want, j)
				walk(j)
			}
		}
		walk(g.rootUnit)
		// Claims: total call-edge weight into each wanted unit from the
		// whole group (root plus every wanted unit).
		scan := append([]int{g.rootUnit}, g.want...)
		for _, ui := range scan {
			for _, bid := range st.Units[ui].Blocks {
				b := prog.Block(bid)
				if b.Kind != isa.TermCall || b.Callee == program.NoProc {
					continue
				}
				entry := prog.Entry(b.Callee)
				if j, ok := headOf[entry]; ok && inWant[j] && j != g.rootUnit {
					g.claim[j] += pf.Edge(bid, entry)
				}
			}
		}
	}

	// Weighted assignment: the heaviest claimant of a shared unit keeps the
	// original; root units always keep themselves. Everyone else clones.
	owner := make(map[int]int) // unit index -> group index owning the original
	for gi, g := range groups {
		for _, j := range g.want {
			if rootUnitOf[j] {
				continue // another kind's root: clone-only
			}
			if cur, ok := owner[j]; !ok || g.claim[j] > groups[cur].claim[j] {
				owner[j] = gi
			}
		}
	}

	// Budgeted cloning, heaviest claims first, so the highest-traffic
	// duplicates land inside their kind's straight-line sweep and the tail
	// is cut when the code-growth budget runs out.
	type cloneCand struct {
		gi, unit int
		w        uint64
	}
	var cands []cloneCand
	for gi, g := range groups {
		for _, j := range g.want {
			if o, ok := owner[j]; ok && o == gi {
				continue
			}
			cands = append(cands, cloneCand{gi, j, g.claim[j]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		x, y := cands[a], cands[b]
		if x.w != y.w {
			return x.w > y.w
		}
		if x.gi != y.gi {
			return x.gi < y.gi
		}
		return x.unit < y.unit
	})
	var budget int64
	if st.Cloner != nil && p.budgetPct > 0 {
		var hot int64
		for _, u := range st.Units {
			if u.Hot {
				hot += unitWords(prog, u)
			}
		}
		budget = hot * int64(p.budgetPct) / 100
	}
	// cloneBlocks[gi][unit] is the clone's block list in the original
	// unit's chain order.
	cloneBlocks := make(map[int]map[int][]program.BlockID)
	cloneProcOf := make(map[int]map[program.ProcID]program.ProcID)
	var cloneWords int64
	for _, c := range cands {
		if st.Cloner == nil {
			break
		}
		est := unitWords(prog, st.Units[c.unit])
		if cloneWords+est > budget {
			continue
		}
		g := groups[c.gi]
		origProc := prog.Proc(st.Units[c.unit].Proc)
		newID, err := st.Cloner.CloneProc(origProc.ID, g.kind)
		if err != nil {
			return fmt.Errorf("txfuse: clone %s for %s: %w", origProc.Name, g.kind, err)
		}
		cloneWords += est
		newProc := prog.Proc(newID)
		remap := make(map[program.BlockID]program.BlockID, len(origProc.Blocks))
		for i, ob := range origProc.Blocks {
			remap[ob] = newProc.Blocks[i]
		}
		blocks := make([]program.BlockID, len(st.Units[c.unit].Blocks))
		for i, ob := range st.Units[c.unit].Blocks {
			blocks[i] = remap[ob]
		}
		if cloneBlocks[c.gi] == nil {
			cloneBlocks[c.gi] = make(map[int][]program.BlockID)
			cloneProcOf[c.gi] = make(map[program.ProcID]program.ProcID)
		}
		cloneBlocks[c.gi][c.unit] = blocks
		cloneProcOf[c.gi][origProc.ID] = newID
		transferProfile(st, origProc, remap, c.w)
	}

	// Assemble one fused unit per kind: the root's blocks followed by every
	// absorbed or cloned member in straight-line (DFS preorder) call order.
	fusedOf := make(map[int]Unit, len(groups))
	absorbed := make(map[int]bool)
	for gi, g := range groups {
		ru := st.Units[g.rootUnit]
		blocks := append([]program.BlockID(nil), ru.Blocks...)
		for _, j := range g.want {
			if o, ok := owner[j]; ok && o == gi {
				blocks = append(blocks, st.Units[j].Blocks...)
				absorbed[j] = true
			} else if cb, ok := cloneBlocks[gi][j]; ok {
				blocks = append(blocks, cb...)
			}
		}
		fusedOf[g.rootUnit] = Unit{Blocks: blocks, Proc: ru.Proc, Seq: ru.Seq, Count: ru.Count, Hot: true}
		// Rewire the group's calls onto its clones, moving the call-edge
		// weight with them so ordering sees the fused topology.
		for _, bid := range blocks {
			b := prog.Block(bid)
			if b.Kind != isa.TermCall || b.Callee == program.NoProc {
				continue
			}
			newP, ok := cloneProcOf[gi][b.Callee]
			if !ok {
				continue
			}
			oldEntry, newEntry := prog.Entry(b.Callee), prog.Entry(newP)
			if w := pf.Edge(bid, oldEntry); w > 0 {
				pf.AddEdge(bid, newEntry, w)
				pf.EdgeCount[program.EdgeKey(bid, oldEntry)] = 0
			}
			b.Callee = newP
		}
	}

	merged := make([]Unit, 0, len(st.Units))
	for i, u := range st.Units {
		switch {
		case absorbed[i]:
			// folded into its owner's fused unit
		case rootUnitOf[i]:
			merged = append(merged, fusedOf[i])
		default:
			merged = append(merged, u)
		}
	}
	st.Units = merged
	st.Report.FusedKinds = len(groups)
	st.Report.ClonedProcs = countClones(cloneProcOf)
	st.Report.CloneWords = cloneWords
	st.countUnits()
	return nil
}

func countClones(m map[int]map[program.ProcID]program.ProcID) int {
	n := 0
	for _, procs := range m {
		n += len(procs)
	}
	return n
}

// transferProfile moves a clone's share of the original procedure's block
// and intra-procedure edge counts onto the clone, proportional to the
// claim's share of the entry inflow, so ordering and hotness see the split
// traffic instead of double-counting it.
func transferProfile(st *LayoutState, orig *program.Procedure, remap map[program.BlockID]program.BlockID, claim uint64) {
	prog, pf := st.Prog, st.Prof
	inflow := pf.Count(orig.Entry())
	if inflow == 0 {
		return
	}
	if claim > inflow {
		claim = inflow
	}
	for _, ob := range orig.Blocks {
		c := pf.Count(ob)
		if c > 0 {
			m := c * claim / inflow
			if m > pf.BlockCount[ob] {
				m = pf.BlockCount[ob]
			}
			pf.AddBlock(remap[ob], m)
			pf.BlockCount[ob] -= m
		}
		b := prog.Block(ob)
		for _, succ := range blockSuccs(b) {
			w := pf.Edge(ob, succ)
			if w == 0 {
				continue
			}
			m := w * claim / inflow
			if m == 0 {
				continue
			}
			ns, ok := remap[succ]
			if !ok {
				ns = succ // call edge or cross-procedure branch
			}
			pf.AddEdge(remap[ob], ns, m)
			pf.EdgeCount[program.EdgeKey(ob, succ)] -= m
		}
	}
}

// blockSuccs lists a block's outgoing profile-edge destinations: flow
// successors plus, for calls, the callee entry (the edge the collector
// records at enterCall).
func blockSuccs(b *program.Block) []program.BlockID {
	var out []program.BlockID
	if b.Fall != program.NoBlock {
		out = append(out, b.Fall)
	}
	if b.Taken != program.NoBlock {
		out = append(out, b.Taken)
	}
	out = append(out, b.Targets...)
	return out
}

// deriveRoots guesses kind roots when the pipeline runs program-only (no
// workload in sight, e.g. spike over a dumped program): every hot unit whose
// entry executed but is never the target of a recorded call edge is a
// top-level transaction driver.
func deriveRoots(st *LayoutState, headOf map[program.BlockID]int) []KindRoot {
	prog, pf := st.Prog, st.Prof
	called := make(map[int]bool)
	for _, u := range st.Units {
		for _, bid := range u.Blocks {
			b := prog.Block(bid)
			if b.Kind != isa.TermCall || b.Callee == program.NoProc {
				continue
			}
			if j, ok := headOf[prog.Entry(b.Callee)]; ok && pf.Edge(bid, prog.Entry(b.Callee)) > 0 {
				called[j] = true
			}
		}
	}
	type cand struct {
		ui int
		w  uint64
	}
	var cands []cand
	for i, u := range st.Units {
		if !u.Hot || u.Count == 0 || called[i] {
			continue
		}
		cands = append(cands, cand{i, u.Count})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		return cands[a].ui < cands[b].ui
	})
	var roots []KindRoot
	for _, c := range cands {
		pr := prog.Proc(st.Units[c.ui].Proc)
		roots = append(roots, KindRoot{Kind: pr.Name, Proc: pr.ID})
	}
	return roots
}
