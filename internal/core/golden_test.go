package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

// legacyOptimize is a verbatim copy of the monolithic pre-pipeline Optimize.
// It is the golden reference: the pass-based path must reproduce its output
// bit for bit on every combination the paper measures.
func legacyOptimize(p *program.Program, pf *profile.Profile, o Options) (*program.Layout, *Report, error) {
	pf.EnsureEdges(p)
	rep := &Report{}

	// 1. Chain blocks within each procedure.
	chains := make(map[program.ProcID][]Chain, len(p.Procs))
	for _, pr := range p.Procs {
		if o.Chain && !pr.Cold {
			chains[pr.ID] = ChainProc(p, pr, pf)
		} else {
			chains[pr.ID] = SourceChains(pr)
		}
		rep.Chains += len(chains[pr.ID])
	}

	// 2. Cut into placement units.
	units := BuildUnits(p, pf, chains, o.Split)
	rep.Units = len(units)
	for _, u := range units {
		if u.Hot {
			rep.HotUnits++
			rep.HotWords += unitWords(p, u)
		}
	}

	// 3. Order units.
	var unitOrder []int
	switch o.Order {
	case OrderOriginal:
		unitOrder = make([]int, len(units))
		for i := range units {
			unitOrder[i] = i
		}
		sort.SliceStable(unitOrder, func(a, b int) bool {
			ua, ub := units[unitOrder[a]], units[unitOrder[b]]
			if ua.Proc != ub.Proc {
				return ua.Proc < ub.Proc
			}
			return ua.Seq < ub.Seq
		})
	case OrderPettisHansen:
		hot := PettisHansen(p, pf, units)
		seen := make([]bool, len(units))
		for _, i := range hot {
			seen[i] = true
		}
		unitOrder = append(unitOrder, hot...)
		var cold []int
		for i := range units {
			if !seen[i] {
				cold = append(cold, i)
			}
		}
		sort.SliceStable(cold, func(a, b int) bool {
			ua, ub := units[cold[a]], units[cold[b]]
			if ua.Proc != ub.Proc {
				return ua.Proc < ub.Proc
			}
			return ua.Seq < ub.Seq
		})
		unitOrder = append(unitOrder, cold...)
	default:
		return nil, nil, fmt.Errorf("core: unknown order mode %d", o.Order)
	}

	// 4. Flatten and materialize.
	order := make([]program.BlockID, 0, p.NumBlocks())
	alignAt := make(map[program.BlockID]bool, len(units))
	for _, ui := range unitOrder {
		u := units[ui]
		if len(u.Blocks) == 0 {
			continue
		}
		alignAt[u.Blocks[0]] = true
		order = append(order, u.Blocks...)
	}
	align := o.AlignWords
	if align == 0 {
		align = 4
	}
	mopts := program.MaterializeOptions{
		AlignWords: align,
		AlignAt:    alignAt,
		Hotness:    pf.Count,
	}
	if o.CFA != nil {
		gaps, reserved := planCFA(p, units, unitOrder, *o.CFA)
		mopts.GapBefore = gaps
		rep.CFAReservedWords = reserved
	}
	l, err := program.Materialize(p, order, mopts)
	if err != nil {
		return nil, nil, err
	}
	rep.LongBranches = l.LongBranches
	rep.PadWords = l.PadWords
	return l, rep, nil
}

// goldenVariants are the layouts whose pipeline output must be identical to
// the legacy path: the paper's six combos plus the hotcold and cfa
// extensions the experiment harness builds through the same options struct.
func goldenVariants() []Combo {
	out := append([]Combo(nil), Combos()...)
	out = append(out,
		Combo{"hotcold", Options{Chain: true, Split: SplitHotCold, Order: OrderPettisHansen}},
		Combo{"cfa", Options{Chain: true, Split: SplitFine, Order: OrderPettisHansen,
			CFA: &CFAOptions{CacheBytes: 4096, ReservedBytes: 1024}}},
	)
	return out
}

func TestPipelineMatchesLegacyOptimize(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(9))
		pf := progtest.RandProfile(r, p, 5+r.Intn(25), 400)
		for _, c := range goldenVariants() {
			want, wantRep, err := legacyOptimize(p, pf, c.Opts)
			if err != nil {
				t.Fatalf("seed %d %s: legacy: %v", seed, c.Name, err)
			}
			got, gotRep, err := Optimize(p, pf, c.Opts)
			if err != nil {
				t.Fatalf("seed %d %s: pipeline: %v", seed, c.Name, err)
			}
			if !reflect.DeepEqual(got.Order, want.Order) {
				t.Fatalf("seed %d %s: block order diverged", seed, c.Name)
			}
			if !reflect.DeepEqual(got.Addr, want.Addr) {
				t.Fatalf("seed %d %s: addresses diverged", seed, c.Name)
			}
			if !reflect.DeepEqual(got.Occ, want.Occ) {
				t.Fatalf("seed %d %s: occupancies diverged", seed, c.Name)
			}
			if got.PadWords != want.PadWords {
				t.Fatalf("seed %d %s: pad words %d != %d", seed, c.Name, got.PadWords, want.PadWords)
			}
			if got.LongBranches != want.LongBranches {
				t.Fatalf("seed %d %s: long branches %d != %d", seed, c.Name, got.LongBranches, want.LongBranches)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("seed %d %s: report %+v != %+v", seed, c.Name, *gotRep, *wantRep)
			}
		}
	}
}
