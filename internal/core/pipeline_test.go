package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/core"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

func TestCombosCoverPaper(t *testing.T) {
	names := []string{"base", "porder", "chain", "chain+split", "chain+porder", "all"}
	combos := core.Combos()
	if len(combos) != len(names) {
		t.Fatalf("combos = %d", len(combos))
	}
	for i, n := range names {
		if combos[i].Name != n {
			t.Fatalf("combo %d = %q, want %q", i, combos[i].Name, n)
		}
	}
	if _, err := core.ComboByName("all"); err != nil {
		t.Fatal(err)
	}
	if _, err := core.ComboByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestOptimizeAllCombosValid(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(6))
		pf := progtest.RandProfile(r, p, 15, 250)
		for _, combo := range core.Combos() {
			l, rep, err := core.Optimize(p, pf, combo.Opts)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, combo.Name, err)
				return false
			}
			if err := l.Validate(); err != nil {
				t.Logf("seed %d %s: %v", seed, combo.Name, err)
				return false
			}
			if rep.Units <= 0 || rep.Chains <= 0 {
				t.Logf("seed %d %s: empty report", seed, combo.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeBaseMatchesSourceOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := progtest.RandProgram(r, 5)
	pf := progtest.RandProfile(r, p, 10, 200)
	l, _, err := core.Optimize(p, pf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := program.SourceOrder(p)
	for i, id := range l.Order {
		if id != want[i] {
			t.Fatalf("base combo reordered blocks at %d: %d != %d", i, id, want[i])
		}
	}
}

func TestSplitModesPartitionBlocks(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 1+r.Intn(5))
		pf := progtest.RandProfile(r, p, 10, 200)
		for _, mode := range []core.SplitMode{core.SplitNone, core.SplitFine, core.SplitHotCold} {
			l, _, err := core.Optimize(p, pf, core.Options{Chain: true, Split: mode})
			if err != nil || l.Validate() != nil {
				t.Logf("seed %d mode %v: %v", seed, mode, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeAllPacksHotCodeFirst(t *testing.T) {
	// With "all", every hot block must be placed before every cold-proc
	// block (hot units first, cold appended).
	r := rand.New(rand.NewSource(3))
	p := progtest.RandProgram(r, 8)
	pf := progtest.RandProfile(r, p, 25, 400)
	l, _, err := core.Optimize(p, pf, core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen})
	if err != nil {
		t.Fatal(err)
	}
	var maxHot, minColdProcAddr uint64
	minColdProcAddr = ^uint64(0)
	sawHot, sawCold := false, false
	for _, b := range p.Blocks {
		if pf.Count(b.ID) > 0 {
			sawHot = true
			if l.Addr[b.ID] > maxHot {
				maxHot = l.Addr[b.ID]
			}
		}
	}
	// Blocks of procs with zero executed blocks are fully cold.
	for _, pr := range p.Procs {
		cold := true
		for _, bid := range pr.Blocks {
			if pf.Count(bid) > 0 {
				cold = false
				break
			}
		}
		if cold {
			sawCold = true
			for _, bid := range pr.Blocks {
				if l.Addr[bid] < minColdProcAddr {
					minColdProcAddr = l.Addr[bid]
				}
			}
		}
	}
	if sawHot && sawCold && maxHot > minColdProcAddr {
		t.Fatalf("hot block at %#x after cold proc block at %#x", maxHot, minColdProcAddr)
	}
}

func TestCFAPlanKeepsHotCodeOutOfReservedSets(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	p := progtest.RandProgram(r, 10)
	pf := progtest.RandProfile(r, p, 30, 400)
	const cacheBytes = 4096
	const reservedBytes = 1024
	opts := core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
		CFA: &core.CFAOptions{CacheBytes: cacheBytes, ReservedBytes: reservedBytes},
	}
	l, rep, err := core.Optimize(p, pf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.CFAReservedWords <= 0 {
		t.Fatal("no code placed in reserved area")
	}
	// Every hot block outside the reserved prefix must avoid the reserved
	// sets, unless its unit was itself too large to avoid them.
	reservedEnd := p.TextBase + uint64(reservedBytes)
	violations := 0
	for _, b := range p.Blocks {
		if pf.Count(b.ID) == 0 {
			continue
		}
		addr := l.Addr[b.ID]
		if addr < reservedEnd {
			continue // inside the conflict-free area itself
		}
		if off := addr % cacheBytes; off < reservedBytes {
			violations++
		}
	}
	// Oversized units may overlap; with small random procs none should.
	if violations > 0 {
		t.Fatalf("%d hot blocks map into reserved sets", violations)
	}
}
