// Package core implements the paper's primary contribution: the Spike-style
// profile-driven code layout optimizer. It provides the three algorithms of
// Section 2 — basic block chaining, fine-grain procedure splitting, and
// Pettis–Hansen procedure ordering — plus the hot/cold splitting variant
// shipped in the Spike distribution and the CFA (reserved conflict-free
// area) optimization the paper evaluated and discarded.
package core

import (
	"sort"

	"codelayout/internal/profile"
	"codelayout/internal/program"
)

// Chain is a sequence of blocks laid out consecutively so that every
// intra-chain transition is a fall-through (or an elided branch).
type Chain []program.BlockID

// ChainProc runs the paper's greedy basic-block chaining on one procedure:
// flow edges are sorted by weight and processed heaviest first; an edge
// joins two chains when its source is still a chain tail and its destination
// is still a chain head (and no cycle would form). The chain containing the
// procedure entry is placed first; the remaining chains follow in decreasing
// execution count of their first block.
func ChainProc(p *program.Program, pr *program.Procedure, pf *profile.Profile) []Chain {
	entry := pr.Entry()

	// Local indexes for the proc's blocks.
	local := make(map[program.BlockID]int, len(pr.Blocks))
	for i, b := range pr.Blocks {
		local[b] = i
	}

	type edgeW struct {
		e program.Edge
		w uint64
	}
	var edges []edgeW
	for _, bid := range pr.Blocks {
		b := p.Block(bid)
		p.FlowEdges(b, func(e program.Edge) {
			if e.Dst == e.Src {
				return // self-loop cannot be sequentialized
			}
			edges = append(edges, edgeW{e, pf.Edge(e.Src, e.Dst)})
		})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.w != b.w {
			return a.w > b.w
		}
		if a.e.Src != b.e.Src {
			return a.e.Src < b.e.Src
		}
		return a.e.Dst < b.e.Dst
	})

	next := make([]program.BlockID, len(pr.Blocks))
	prev := make([]program.BlockID, len(pr.Blocks))
	for i := range next {
		next[i] = program.NoBlock
		prev[i] = program.NoBlock
	}
	// Union-find over local indexes to reject cycles.
	parent := make([]int, len(pr.Blocks))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	for _, ew := range edges {
		src, dst := ew.e.Src, ew.e.Dst
		if dst == entry {
			continue // the entry must stay a chain head
		}
		ls, ok1 := local[src]
		ld, ok2 := local[dst]
		if !ok1 || !ok2 {
			continue
		}
		if next[ls] != program.NoBlock || prev[ld] != program.NoBlock {
			continue
		}
		rs, rd := find(ls), find(ld)
		if rs == rd {
			continue // would close a cycle
		}
		next[ls] = dst
		prev[ld] = src
		parent[rs] = rd
	}

	var chains []Chain
	for i, bid := range pr.Blocks {
		if prev[i] != program.NoBlock {
			continue
		}
		ch := Chain{bid}
		cur := i
		for next[cur] != program.NoBlock {
			nb := next[cur]
			ch = append(ch, nb)
			cur = local[nb]
		}
		chains = append(chains, ch)
	}

	sort.SliceStable(chains, func(i, j int) bool {
		a, b := chains[i], chains[j]
		ae, be := a[0] == entry, b[0] == entry
		if ae != be {
			return ae
		}
		ca, cb := pf.Count(a[0]), pf.Count(b[0])
		if ca != cb {
			return ca > cb
		}
		return a[0] < b[0]
	})
	return chains
}

// SourceChains returns the unchained block order of a procedure as a single
// chain (the layout the original binary has inside the procedure).
func SourceChains(pr *program.Procedure) []Chain {
	return []Chain{Chain(append([]program.BlockID(nil), pr.Blocks...))}
}
