package core_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
)

// testCloner implements core.ProcCloner over a bare program, the way
// codegen's specialized images do, and records every block it adds so the
// coverage property can be stated exactly: layout blocks = input blocks
// plus declared clone blocks, nothing else.
type testCloner struct {
	p      *program.Program
	clones int
	blocks []program.BlockID
}

func (c *testCloner) CloneProc(id program.ProcID, tag string) (program.ProcID, error) {
	orig := c.p.Proc(id)
	clone := c.p.AddProc(orig.Name + "@" + tag)
	remap := make(map[program.BlockID]program.BlockID, len(orig.Blocks))
	for _, ob := range orig.Blocks {
		b := c.p.Block(ob)
		nb := c.p.AddBlock(clone, int(b.Body))
		nb.Kind, nb.Fall, nb.Taken, nb.Callee = b.Kind, b.Fall, b.Taken, b.Callee
		nb.Targets = append([]program.BlockID(nil), b.Targets...)
		remap[ob] = nb.ID
		c.blocks = append(c.blocks, nb.ID)
	}
	for _, ob := range orig.Blocks {
		nb := c.p.Block(remap[ob])
		if t, ok := remap[nb.Fall]; ok {
			nb.Fall = t
		}
		if t, ok := remap[nb.Taken]; ok {
			nb.Taken = t
		}
		for i, tg := range nb.Targets {
			if t, ok := remap[tg]; ok {
				nb.Targets[i] = t
			}
		}
	}
	c.clones++
	return clone.ID, nil
}

// assertCovers checks the core output property every pass must preserve:
// the layout places every block of the (possibly clone-grown) program
// exactly once.
func assertCovers(t *testing.T, label string, l *program.Layout, p *program.Program) {
	t.Helper()
	if len(l.Order) != len(p.Blocks) {
		t.Fatalf("%s: layout places %d blocks, program has %d", label, len(l.Order), len(p.Blocks))
	}
	seen := make(map[program.BlockID]bool, len(l.Order))
	for _, id := range l.Order {
		if id < 0 || int(id) >= len(p.Blocks) {
			t.Fatalf("%s: layout places unknown block %d", label, id)
		}
		if seen[id] {
			t.Fatalf("%s: block %d placed twice", label, id)
		}
		seen[id] = true
	}
}

func blockCountSum(pf *profile.Profile) uint64 {
	var s uint64
	for _, n := range pf.BlockCount {
		s += n
	}
	return s
}

// TestPassCoverageProperty runs every registered combo plus the fusion
// pipeline over random programs and checks that each output layout covers
// exactly the input block set — and, when txfuse clones through a real
// cloner, exactly the input set plus the declared clone blocks, with the
// report's clone tallies matching what the cloner actually did and the
// profile's total block count conserved across the transfer.
func TestPassCoverageProperty(t *testing.T) {
	var specs []string
	for _, c := range core.Combos() {
		specs = append(specs, c.Name)
	}
	specs = append(specs, "hotcold", "cfa", "ipchain", "fusion")
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := progtest.RandProgram(r, 8)
		pf := progtest.RandProfile(r, p, 20, 300)
		inputBlocks := len(p.Blocks)
		for _, name := range specs {
			pl, err := core.ComboPipeline(name)
			if err != nil {
				t.Fatal(err)
			}
			l, _, err := pl.Run(p, pf)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			assertCovers(t, name, l, p)
			if err := l.Validate(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if len(p.Blocks) != inputBlocks {
				t.Fatalf("seed %d %s: pipeline without a cloner grew the program", seed, name)
			}
		}

		// The cloning run mutates program and profile, so it goes last: a
		// wide-open budget over derived roots, through a real cloner.
		cl := &testCloner{p: p}
		pl, err := core.ParsePipeline("chain,split:none,txfuse:100,porder:ph,materialize")
		if err != nil {
			t.Fatal(err)
		}
		countBefore := blockCountSum(pf)
		l, rep, err := pl.RunFused(p, pf, nil, cl)
		if err != nil {
			t.Fatalf("seed %d txfuse:100: %v", seed, err)
		}
		if got := len(p.Blocks); got != inputBlocks+len(cl.blocks) {
			t.Fatalf("seed %d: program has %d blocks, want %d input + %d cloned",
				seed, got, inputBlocks, len(cl.blocks))
		}
		assertCovers(t, "txfuse:100", l, p)
		if err := l.Validate(); err != nil {
			t.Fatalf("seed %d txfuse:100: %v", seed, err)
		}
		if rep.ClonedProcs != cl.clones {
			t.Fatalf("seed %d: report says %d cloned procs, cloner made %d", seed, rep.ClonedProcs, cl.clones)
		}
		if (rep.CloneWords > 0) != (cl.clones > 0) {
			t.Fatalf("seed %d: clone words %d inconsistent with %d clones", seed, rep.CloneWords, cl.clones)
		}
		if got := blockCountSum(pf); got != countBefore {
			t.Fatalf("seed %d: profile transfer changed total block count %d -> %d", seed, countBefore, got)
		}
	}
}

// fuseFixture builds the minimal sharing shape: two transaction roots both
// calling one shared procedure, the first twice as hot as the second.
func fuseFixture() (*program.Program, *profile.Profile, []core.KindRoot) {
	p := program.New("fusetest", isa.AppTextBase)
	rootA := p.AddProc("txn_a")
	a0 := p.AddBlock(rootA, 4)
	a1 := p.AddBlock(rootA, 2)
	rootB := p.AddProc("txn_b")
	b0 := p.AddBlock(rootB, 4)
	b1 := p.AddBlock(rootB, 2)
	shared := p.AddProc("engine_shared")
	s0 := p.AddBlock(shared, 6)
	a0.Kind, a0.Callee, a0.Fall = isa.TermCall, shared.ID, a1.ID
	a1.Kind = isa.TermRet
	b0.Kind, b0.Callee, b0.Fall = isa.TermCall, shared.ID, b1.ID
	b1.Kind = isa.TermRet
	s0.Kind = isa.TermRet

	pf := profile.New("fusetest", p)
	pf.AddBlock(a0.ID, 100)
	pf.AddBlock(a1.ID, 100)
	pf.AddEdge(a0.ID, s0.ID, 100)
	pf.AddEdge(a0.ID, a1.ID, 100)
	pf.AddBlock(b0.ID, 60)
	pf.AddBlock(b1.ID, 60)
	pf.AddEdge(b0.ID, s0.ID, 60)
	pf.AddEdge(b0.ID, b1.ID, 60)
	pf.AddBlock(s0.ID, 160)

	roots := []core.KindRoot{
		{Kind: "ka", Proc: rootA.ID},
		{Kind: "kb", Proc: rootB.ID},
	}
	return p, pf, roots
}

// TestTxFuseSharedCodeDedup pins the weighted-assignment semantics on the
// minimal fixture: the heavier kind keeps the shared original in its fused
// unit, the lighter kind gets a clone (under a wide budget) and its call is
// rewired onto it, with the shared procedure's counts split by claim.
func TestTxFuseSharedCodeDedup(t *testing.T) {
	p, pf, roots := fuseFixture()
	sharedID := p.FindProc("engine_shared").ID
	sharedEntry := p.Entry(sharedID)
	inputBlocks := len(p.Blocks)

	cl := &testCloner{p: p}
	pl, err := core.ParsePipeline("chain,split:none,txfuse:100,porder:ph,materialize")
	if err != nil {
		t.Fatal(err)
	}
	l, rep, err := pl.RunFused(p, pf, roots, cl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FusedKinds != 2 {
		t.Fatalf("fused %d kinds, want 2", rep.FusedKinds)
	}
	if cl.clones != 1 || rep.ClonedProcs != 1 {
		t.Fatalf("cloner made %d clones, report says %d, want 1 each", cl.clones, rep.ClonedProcs)
	}
	if rep.CloneWords == 0 {
		t.Fatal("clone words not accounted")
	}
	assertCovers(t, "txfuse:100", l, p)
	if got := len(p.Blocks); got != inputBlocks+1 {
		t.Fatalf("program has %d blocks, want %d + 1 clone block", got, inputBlocks)
	}
	// The lighter kind's call was rewired onto the clone; the heavier kind
	// keeps calling the original.
	b0 := p.Block(p.Entry(p.FindProc("txn_b").ID))
	if b0.Callee == sharedID {
		t.Fatal("lighter kind still calls the shared original")
	}
	cloneProc := p.Proc(b0.Callee)
	if cloneProc.Name != "engine_shared@kb" {
		t.Fatalf("clone named %q, want engine_shared@kb", cloneProc.Name)
	}
	a0 := p.Block(p.Entry(p.FindProc("txn_a").ID))
	if a0.Callee != sharedID {
		t.Fatal("heavier kind no longer calls the shared original")
	}
	// Claim-proportional profile transfer conserves the shared counts.
	orig, clone := pf.Count(sharedEntry), pf.Count(cloneProc.Entry())
	if orig+clone != 160 {
		t.Fatalf("shared counts not conserved: %d + %d != 160", orig, clone)
	}
	if clone != 60 {
		t.Fatalf("clone carries %d executions, want the 60-claim share", clone)
	}
}

// TestTxFuseBudgetCutsCloning pins the growth knob: on the same fixture the
// default 10%%-of-hot-words budget cannot afford the clone, so the shared
// procedure is only absorbed by its heaviest claimant and the program does
// not grow.
func TestTxFuseBudgetCutsCloning(t *testing.T) {
	p, pf, roots := fuseFixture()
	inputBlocks := len(p.Blocks)
	cl := &testCloner{p: p}
	pl, err := core.ParsePipeline(core.TxFuseSpec)
	if err != nil {
		t.Fatal(err)
	}
	l, rep, err := pl.RunFused(p, pf, roots, cl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FusedKinds != 2 {
		t.Fatalf("fused %d kinds, want 2", rep.FusedKinds)
	}
	if cl.clones != 0 || rep.ClonedProcs != 0 || rep.CloneWords != 0 {
		t.Fatalf("default budget cloned anyway: %d clones, report %d/%d words",
			cl.clones, rep.ClonedProcs, rep.CloneWords)
	}
	if len(p.Blocks) != inputBlocks {
		t.Fatal("program grew without clones")
	}
	assertCovers(t, "txfuse", l, p)
}

// TestPassDocsListing pins the deterministic pass listing: sorted by name,
// every registered pass present, txfuse documented.
func TestPassDocsListing(t *testing.T) {
	docs := core.PassDocs()
	if len(docs) == 0 {
		t.Fatal("no pass docs")
	}
	byName := make(map[string]string, len(docs))
	for i, d := range docs {
		if i > 0 && docs[i-1].Name >= d.Name {
			t.Fatalf("pass docs not sorted: %q before %q", docs[i-1].Name, d.Name)
		}
		if d.Doc == "" {
			t.Fatalf("pass %q has an empty description", d.Name)
		}
		byName[d.Name] = d.Doc
	}
	for _, want := range []string{"chain", "split", "porder", "cfa", "align", "materialize", "ipchain", "txfuse"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("pass %q missing from PassDocs", want)
		}
	}
	if len(core.RegisteredPasses()) < len(docs) {
		t.Fatal("RegisteredPasses shorter than PassDocs")
	}
}
