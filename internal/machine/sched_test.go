package machine_test

import (
	"testing"

	"codelayout/internal/machine"
	"codelayout/internal/trace"
)

func TestWarmupExcludedFromMeasurement(t *testing.T) {
	wl := smallWorkload(t, "tpcb")
	app, appL, kern, kernL := testImages(t, wl)
	run := func(warmup int) machine.Result {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.WarmupTxns = warmup
		cfg.Transactions = 30
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(20)
	without := run(0)
	// Measured committed counts are identical; measured instructions must
	// be in the same ballpark (warmup only shifts which txns are counted).
	if with.Committed != 30 || without.Committed != 30 {
		t.Fatalf("committed: %d/%d", with.Committed, without.Committed)
	}
	ratio := float64(with.AppInstrs) / float64(without.AppInstrs)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("warmup distorted measurement: %d vs %d", with.AppInstrs, without.AppInstrs)
	}
}

func TestTimerInterruptsInjectKernelCode(t *testing.T) {
	wl := smallWorkload(t, "tpcb")
	app, appL, kern, kernL := testImages(t, wl)
	cfg := configFor(wl, app, appL, kern, kernL)
	cfg.TimerIntervalInstr = 20_000 // very frequent timer
	var cnt trace.Counter
	cfg.Sinks = []trace.Sink{trace.KernelOnly(&cnt)}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := configFor(wl, app, appL, kern, kernL)
	cfg2.TimerIntervalInstr = 100_000_000 // effectively no timer
	var cnt2 trace.Counter
	cfg2.Sinks = []trace.Sink{trace.KernelOnly(&cnt2)}
	m2, err := machine.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelInstrs <= res2.KernelInstrs {
		t.Fatalf("frequent timer did not add kernel work: %d vs %d",
			res.KernelInstrs, res2.KernelInstrs)
	}
	if cnt.Instructions != res.KernelInstrs || cnt2.Instructions != res2.KernelInstrs {
		t.Fatal("kernel sink counts disagree with result")
	}
}

func TestQuantumForcesContextSwitches(t *testing.T) {
	wl := smallWorkload(t, "tpcb")
	app, appL, kern, kernL := testImages(t, wl)
	cfg := configFor(wl, app, appL, kern, kernL)
	cfg.QuantumInstr = 5_000 // tiny quantum: constant preemption
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 40 {
		t.Fatalf("committed = %d under heavy preemption", res.Committed)
	}
	// Preemption adds scheduler/context-switch kernel work.
	if res.KernelFrac() < 0.05 {
		t.Fatalf("kernel fraction %.3f too low under tiny quantum", res.KernelFrac())
	}
}

func TestMachineRequiresImages(t *testing.T) {
	if _, err := machine.New(machine.Config{}); err == nil {
		t.Fatal("expected error without images")
	}
}

func TestIdleAccountedWhenProcsBlock(t *testing.T) {
	wl := smallWorkload(t, "tpcb")
	app, appL, kern, kernL := testImages(t, wl)
	cfg := configFor(wl, app, appL, kern, kernL)
	cfg.ProcsPerCPU = 1 // a single process: every log write idles the CPU
	cfg.LogWriteDelayInstr = 500_000
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleInstrs == 0 {
		t.Fatal("expected idle time with one process and slow log writes")
	}
	// With 4 processes the same config should overlap I/O and idle less
	// per transaction.
	cfg2 := configFor(wl, app, appL, kern, kernL)
	cfg2.ProcsPerCPU = 6
	cfg2.LogWriteDelayInstr = 500_000
	m2, err := machine.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	perTxn1 := float64(res.IdleInstrs) / float64(res.Committed)
	perTxn6 := float64(res2.IdleInstrs) / float64(res2.Committed)
	if perTxn6 >= perTxn1 {
		t.Fatalf("more processes should hide I/O: idle/txn %f vs %f", perTxn6, perTxn1)
	}
}
