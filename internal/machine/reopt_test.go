package machine_test

import (
	"testing"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/ycsb"
)

// reoptWorkload is the forced-drift setup the re-optimization tests share: a
// read-only key-value mix that flips to pure updates mid-run. The update
// path (txn_begin, locks, heap update, commit, log) is code a read-trained
// layout scattered into the cold text, so the drift genuinely degrades
// fetch locality until a retrain.
func reoptWorkload(shiftAfter int) *ycsb.Workload {
	return &ycsb.Workload{
		Scale:          ycsb.Scale{Records: 4000},
		ReadPct:        100,
		ShiftAfterGens: shiftAfter,
		ShiftReadPct:   0,
	}
}

// reoptImages builds one app+kernel image pair shared by the training and
// serving runs (hot-swapped layouts must belong to the same program). Unlike
// the smaller testImages build, this one uses full-size library code so the
// hot working set pressures the 64 KB L1I — the conflict-miss regime where
// layout choice actually moves the tail, which the drift tests depend on.
func reoptImages(t *testing.T) (*codegen.Image, *program.Layout, *codegen.Image, *program.Layout) {
	t.Helper()
	app, err := appmodel.Build(appmodel.Config{Seed: 42, LibScale: 1.0, ColdWords: 400_000, Workload: reoptWorkload(0)})
	if err != nil {
		t.Fatal(err)
	}
	appL, err := program.BaselineLayout(app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernel.Build(kernel.Config{Seed: 43, ColdWords: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	kernL, err := program.BaselineLayout(kern.Prog)
	if err != nil {
		t.Fatal(err)
	}
	return app, appL, kern, kernL
}

// trainReadOnlyLayout runs the pre-drift (read-only) mix under a Pixie
// collector and optimizes a layout from it, returning the layout and the
// training kind mix — exactly what a profile-store entry would supply.
func trainReadOnlyLayout(t *testing.T, app *codegen.Image, appL *program.Layout, kern *codegen.Image, kernL *program.Layout) (*program.Layout, map[string]float64) {
	t.Helper()
	px := profile.NewPixie(app.Prog, "train")
	cfg := machine.Config{
		CPUs: 1, ProcsPerCPU: 4, Seed: 7,
		WarmupTxns: 10, Transactions: 120,
		Workload: reoptWorkload(0),
		AppImage: app, AppLayout: appL,
		KernImage: kern, KernLayout: kernL,
		AppCollector: px,
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	l, _, err := core.Optimize(app.Prog, px.Profile, core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, m.KindFrequencies()
}

// servingConfig is the drifting serving run: the read-trained layout, the
// inline fetch-stall clock so layout quality reaches latency, and a log
// write cheap enough that code locality (not the log) owns the tail.
func servingConfig(app *codegen.Image, trained *program.Layout, kern *codegen.Image, kernL *program.Layout) machine.Config {
	return machine.Config{
		CPUs: 1, ProcsPerCPU: 4, Seed: 7,
		WarmupTxns: 10, Transactions: 900,
		Workload:               reoptWorkload(180),
		AppImage:               app,
		AppLayout:              trained,
		KernImage:              kern,
		KernLayout:             kernL,
		FetchStallPenaltyInstr: 250,
		LogWriteDelayInstr:     4_000,
		PreadDelayInstr:        4_000,
	}
}

func reoptimizer(t *testing.T, app *codegen.Image, retrained *int) func(*profile.Profile) (*program.Layout, error) {
	return func(pf *profile.Profile) (*program.Layout, error) {
		*retrained++
		if pf.TotalBlocks() == 0 {
			t.Error("Reoptimize called with an empty online profile")
		}
		return coreOptimize(app, pf)
	}
}

// kindP99 pulls one transaction kind's p99 out of a finished run.
func kindP99(t *testing.T, m *machine.Machine, kind string) uint64 {
	t.Helper()
	for _, c := range m.LatencyByKind() {
		if c.Kind == kind {
			return c.Summary.P99
		}
	}
	t.Fatalf("no %q latency cell recorded", kind)
	return 0
}

func coreOptimize(app *codegen.Image, pf *profile.Profile) (*program.Layout, error) {
	l, _, err := core.Optimize(app.Prog, pf, core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
	})
	return l, err
}

// TestReoptRecoversP99AfterDrift is the pinned headline regression: under a
// forced read→update mix shift, the re-optimizing run's post-swap p99 must
// strictly beat the frozen-layout baseline's p99 at the same seed.
func TestReoptRecoversP99AfterDrift(t *testing.T) {
	app, appL, kern, kernL := reoptImages(t)
	trained, trainFreq := trainReadOnlyLayout(t, app, appL, kern, kernL)
	if trainFreq["read"] < 0.99 {
		t.Fatalf("training mix should be read-only, got %v", trainFreq)
	}

	base := servingConfig(app, trained, kern, kernL)
	mBase, err := machine.New(base)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := mBase.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := mBase.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The pre-shift mix is 100% reads, so every update the baseline observed
	// ran post-shift on the stale layout: its update-kind p99 is exactly the
	// drifted-traffic tail the re-optimizing run's post-swap window covers.
	baseUpdateP99 := kindP99(t, mBase, "update")

	retrained := 0
	reopt := servingConfig(app, trained, kern, kernL)
	reopt.ReoptimizeEveryTxns = 60
	reopt.TrainKindFreq = trainFreq
	reopt.Reoptimize = reoptimizer(t, app, &retrained)
	mRe, err := machine.New(reopt)
	if err != nil {
		t.Fatal(err)
	}
	reRes, err := mRe.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := mRe.CheckInvariants(); err != nil {
		t.Fatalf("invariants broken after hot-swap: %v", err)
	}

	if baseRes.Reopts != 0 || baseRes.SwapStallInstr != 0 || baseRes.PostSwapP99 != 0 {
		t.Fatalf("baseline reported reopt activity: %+v", baseRes)
	}
	if reRes.Reopts == 0 || retrained == 0 {
		t.Fatalf("drift never triggered a retrain (Reopts=%d, retrained=%d)", reRes.Reopts, retrained)
	}
	if reRes.SwapStallInstr == 0 {
		t.Error("hot-swap reported zero stall — the fence charged nothing")
	}
	if reRes.PreSwapP99 == 0 || reRes.PostSwapP99 == 0 {
		t.Fatalf("swap percentiles missing: pre=%d post=%d", reRes.PreSwapP99, reRes.PostSwapP99)
	}
	if reRes.PostSwapP99 >= baseUpdateP99 {
		t.Fatalf("post-swap p99 = %d, want strictly below the no-reopt baseline's post-shift (update) p99 = %d",
			reRes.PostSwapP99, baseUpdateP99)
	}
	t.Logf("baseline update p99 = %d (overall %d); reopt: pre-swap p99 = %d, post-swap p99 = %d, reopts = %d, swap stall = %d",
		baseUpdateP99, baseRes.Latency.P99, reRes.PreSwapP99, reRes.PostSwapP99, reRes.Reopts, reRes.SwapStallInstr)
}

// TestReoptDisabledBitIdentical: ReoptimizeEveryTxns = 0 must leave the run
// bit-identical to one that never heard of re-optimization, even with the
// other knobs populated.
func TestReoptDisabledBitIdentical(t *testing.T) {
	app, appL, kern, kernL := reoptImages(t)
	plain := servingConfig(app, appL, kern, kernL)
	mP, err := machine.New(plain)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := mP.Run()
	if err != nil {
		t.Fatal(err)
	}

	armed := servingConfig(app, appL, kern, kernL)
	armed.ReoptimizeEveryTxns = 0 // disabled
	armed.DriftThreshold = 0.5
	armed.TrainKindFreq = map[string]float64{"read": 1}
	armed.Reoptimize = func(pf *profile.Profile) (*program.Layout, error) {
		t.Error("Reoptimize called with ReoptimizeEveryTxns = 0")
		return nil, nil
	}
	mA, err := machine.New(armed)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := mA.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resP != resA {
		t.Fatalf("disabled re-optimization changed the run:\n plain: %+v\n armed: %+v", resP, resA)
	}
}

// TestReoptDeterministic: the whole drift-retrain-swap cycle replays
// bit-identically for a fixed seed.
func TestReoptDeterministic(t *testing.T) {
	app, appL, kern, kernL := reoptImages(t)
	trained, trainFreq := trainReadOnlyLayout(t, app, appL, kern, kernL)
	run := func() machine.Result {
		n := 0
		cfg := servingConfig(app, trained, kern, kernL)
		cfg.ReoptimizeEveryTxns = 60
		cfg.TrainKindFreq = trainFreq
		cfg.Reoptimize = reoptimizer(t, app, &n)
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("re-optimizing runs diverged:\n a: %+v\n b: %+v", a, b)
	}
	if a.Reopts == 0 {
		t.Fatal("determinism check exercised no swap")
	}
}

// TestReoptStableMixNoSwap: without drift the monitor must never fire.
func TestReoptStableMixNoSwap(t *testing.T) {
	app, appL, kern, kernL := reoptImages(t)
	cfg := servingConfig(app, appL, kern, kernL)
	cfg.Workload = reoptWorkload(0) // no shift
	cfg.Transactions = 300
	cfg.ReoptimizeEveryTxns = 60
	cfg.TrainKindFreq = map[string]float64{"read": 1}
	cfg.Reoptimize = func(pf *profile.Profile) (*program.Layout, error) {
		t.Error("Reoptimize called on a stable mix")
		return coreOptimize(app, pf)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 0 || res.SwapStallInstr != 0 {
		t.Fatalf("stable mix swapped: %+v", res)
	}
}

func TestReoptValidation(t *testing.T) {
	app, appL, kern, kernL := reoptImages(t)
	ok := servingConfig(app, appL, kern, kernL)

	bad := ok
	bad.ReoptimizeEveryTxns = 50 // no hook
	if _, err := machine.New(bad); err == nil {
		t.Error("ReoptimizeEveryTxns without Reoptimize: want error")
	}
	bad = ok
	bad.ReoptimizeEveryTxns = -1
	if _, err := machine.New(bad); err == nil {
		t.Error("negative ReoptimizeEveryTxns: want error")
	}
	bad = ok
	bad.DriftThreshold = 2.5
	if _, err := machine.New(bad); err == nil {
		t.Error("DriftThreshold > 2: want error")
	}
	bad = ok
	bad.DriftThreshold = -0.1
	if _, err := machine.New(bad); err == nil {
		t.Error("negative DriftThreshold: want error")
	}
	bad = ok
	bad.TrainKindFreq = map[string]float64{"read": -1}
	if _, err := machine.New(bad); err == nil {
		t.Error("negative TrainKindFreq: want error")
	}
}

func TestKindDistance(t *testing.T) {
	cases := []struct {
		a, b map[string]float64
		want float64
	}{
		{map[string]float64{"r": 1}, map[string]float64{"r": 1}, 0},
		{map[string]float64{"r": 1}, map[string]float64{"u": 1}, 2},
		{map[string]float64{"r": 0.5, "u": 0.5}, map[string]float64{"r": 1}, 1},
		{nil, nil, 0},
	}
	for _, tc := range cases {
		if got := machine.KindDistance(tc.a, tc.b); !approx(got, tc.want) {
			t.Errorf("KindDistance(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := machine.KindDistance(tc.b, tc.a); !approx(got, tc.want) {
			t.Errorf("KindDistance not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
