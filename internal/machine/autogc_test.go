package machine_test

import (
	"strings"
	"testing"

	"codelayout/internal/machine"
	"codelayout/internal/tpcb"
)

// TestAutoGroupCommitTunesWindows: under a commit-heavy sharded mix,
// AutoGroupCommit must pick nonzero per-shard windows from the warmup
// arrival rate, batch more commits per flush than the immediate-flush
// configuration, and stay deterministic.
func TestAutoGroupCommitTunesWindows(t *testing.T) {
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 48, TellersPerBranch: 4, AccountsPerBranch: 100})
	app, appL, kern, kernL := testImages(t, wl)
	run := func(auto machine.AutoGCMode) (machine.Result, []uint64) {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.Shards = 2
		cfg.CPUs = 4
		cfg.ProcsPerCPU = 16
		cfg.WarmupTxns = 40
		cfg.Transactions = 300
		cfg.AutoGroupCommit = auto
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res, m.GroupCommitWindows()
	}
	immediate, immWin := run(machine.AutoGCOff)
	auto, autoWin := run(machine.AutoGCFlushCount)
	for i, w := range immWin {
		if w != 0 {
			t.Fatalf("immediate-flush run left window %d on shard %d", w, i)
		}
	}
	tuned := 0
	for _, w := range autoWin {
		if w > 0 {
			tuned++
		}
	}
	if tuned == 0 {
		t.Fatalf("auto-tuning picked no window on any shard: %v", autoWin)
	}
	if auto.LogFlushes >= immediate.LogFlushes {
		t.Fatalf("auto-tuned windows did not batch beyond immediate group commit: auto=%d immediate=%d",
			auto.LogFlushes, immediate.LogFlushes)
	}
	t.Logf("windows=%v; flushes immediate=%d auto=%d; blocked-on-log immediate=%d auto=%d",
		autoWin, immediate.LogFlushes, auto.LogFlushes,
		immediate.LogBlockedInstr, auto.LogBlockedInstr)

	// Determinism: a second auto run reproduces the result and the windows.
	auto2, autoWin2 := run(machine.AutoGCFlushCount)
	if auto != auto2 {
		t.Fatalf("auto-tuned runs diverge:\n%+v\n%+v", auto, auto2)
	}
	for i := range autoWin {
		if autoWin[i] != autoWin2[i] {
			t.Fatalf("tuned windows diverge: %v vs %v", autoWin, autoWin2)
		}
	}
}

// TestAutoGroupCommitNoWarmup: with no warmup there is nothing to observe;
// the run must still work with immediate-flush windows.
func TestAutoGroupCommitNoWarmup(t *testing.T) {
	cfg := testSetup(t, "tpcb")
	cfg.WarmupTxns = 0
	cfg.AutoGroupCommit = machine.AutoGCFlushCount
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	for i, w := range m.GroupCommitWindows() {
		if w != 0 {
			t.Fatalf("shard %d window %d without any warmup to observe", i, w)
		}
	}
}

// TestAutoGroupCommitValidation: the auto-tuner conflicts with a fixed
// window and with per-commit flushing.
func TestAutoGroupCommitValidation(t *testing.T) {
	base := testSetup(t, "tpcb")
	cases := []struct {
		mutate func(*machine.Config)
		want   string
	}{
		{func(c *machine.Config) { c.AutoGroupCommit = machine.AutoGCFlushCount; c.PerCommitLogFlush = true }, "PerCommitLogFlush"},
		{func(c *machine.Config) {
			c.AutoGroupCommit = machine.AutoGCFlushCount
			c.GroupCommitWindowInstr = 50_000
		}, "GroupCommitWindowInstr"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := machine.New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("expected error mentioning %q, got %v", tc.want, err)
		}
	}
}
