package machine

import (
	"fmt"
	"math"
	"sort"

	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/stats"
)

// DefaultDriftThreshold is the L1 kind-mix distance past which the
// re-optimizer retrains (Config.DriftThreshold = 0 selects it). The L1
// distance between two normalized mixes ranges from 0 (identical) to 2
// (disjoint); 0.3 means roughly 15% of transactions changed kind.
const DefaultDriftThreshold = 0.3

// reoptPhase is the drift monitor's state.
type reoptPhase int

const (
	// roMonitor compares each window's kind mix against the reference.
	roMonitor reoptPhase = iota
	// roCollect accumulates one clean online-profile window after drift was
	// detected, then retrains on it. The window models the lag of a
	// background trainer: the swap lands one check period after detection,
	// and the profile it trains on contains only post-drift behavior.
	roCollect
)

// reoptState carries the continuous re-optimization loop: drift detection
// over the live kind mix, the online profile the background retrain
// consumes, and the epoch fence that parks every process at a transaction
// boundary so the app layout can be swapped under idle emitters.
type reoptState struct {
	every     int     // check period, in measured commits
	threshold float64 // L1 drift trigger

	// ref is the reference kind mix (the training mix, or the first
	// measured window when the training mix is unknown).
	ref map[string]float64
	// px observes every app block transition; its profile is reset when
	// drift is detected so retraining sees only post-drift behavior.
	px *profile.Pixie
	// windowKinds counts measured commits per kind since the last check.
	windowKinds map[string]uint64
	sinceCheck  int
	phase       reoptPhase

	// pendingLayout is the retrained layout awaiting the fence.
	pendingLayout *program.Layout
	// fencing parks processes as they reach yTxnDone; parked maps each to
	// its CPU clock at park time for the stall accounting.
	fencing bool
	parked  map[*proc]uint64

	// postSwap accumulates measured latencies recorded after the most
	// recent swap (Result.PostSwapP99).
	postSwap *latRec
}

// Block implements codegen.Collector: the online profile sees every app
// block transition (px.Profile is swapped for a fresh one at drift
// detection, which this indirection survives).
func (ro *reoptState) Block(prev, cur program.BlockID) { ro.px.Block(prev, cur) }

func newReoptState(cfg Config) *reoptState {
	th := cfg.DriftThreshold
	if th == 0 {
		th = DefaultDriftThreshold
	}
	ro := &reoptState{
		every:       cfg.ReoptimizeEveryTxns,
		threshold:   th,
		px:          profile.NewPixie(cfg.AppImage.Prog, "online"),
		windowKinds: make(map[string]uint64),
		parked:      make(map[*proc]uint64),
	}
	if len(cfg.TrainKindFreq) > 0 {
		ro.ref = normalizeFreq(cfg.TrainKindFreq)
	}
	return ro
}

// reoptTick runs after every measured commit; every `every` commits it
// closes the window and advances the drift monitor. Returning an error
// aborts the run (a retrainer that cannot produce a layout is a
// configuration bug, not drift).
func (m *Machine) reoptTick() error {
	ro := m.ro
	if ro.fencing {
		return nil // a swap is already in flight; the fence counts nothing
	}
	ro.sinceCheck++
	if ro.sinceCheck < ro.every {
		return nil
	}
	ro.sinceCheck = 0
	live := normalizeCounts(ro.windowKinds)
	ro.windowKinds = make(map[string]uint64)
	if len(live) == 0 {
		return nil
	}
	switch ro.phase {
	case roMonitor:
		if ro.ref == nil {
			// No training mix was supplied: the first measured window
			// becomes the reference.
			ro.ref = live
			return nil
		}
		if KindDistance(live, ro.ref) > ro.threshold {
			// Drift. Start a clean profile window; the retrain one period
			// from now sees only the new mix.
			ro.px.Profile = profile.New("online", m.cfg.AppImage.Prog)
			ro.phase = roCollect
		}
	case roCollect:
		l, err := m.cfg.Reoptimize(ro.px.Profile.Clone())
		if err != nil {
			return fmt.Errorf("machine: reoptimize: %w", err)
		}
		if l == nil {
			return fmt.Errorf("machine: reoptimize returned no layout")
		}
		if l.Prog != m.cfg.AppImage.Prog {
			return fmt.Errorf("machine: reoptimize returned a layout of a different program")
		}
		ro.pendingLayout = l
		ro.ref = live // the drifted-to mix is the new normal
		ro.phase = roMonitor
		ro.fencing = true
	}
	return nil
}

// reoptPark records a process arriving at the epoch fence. It runs at
// yTxnDone instead of the usual requeue, so the process stays off every run
// queue until the swap. Strict 2PL guarantees a parked process holds no
// locks, so the processes still in flight always make progress — the same
// argument that makes drain() safe.
func (m *Machine) reoptPark(p *proc) {
	p.state = stRunnable
	m.ro.parked[p] = p.cpu.clock
	if m.reoptAllParked() {
		m.reoptSwap()
	}
}

func (m *Machine) reoptAllParked() bool {
	for _, p := range m.procs {
		if p.state == stDead {
			continue
		}
		if _, ok := m.ro.parked[p]; !ok {
			return false
		}
	}
	return true
}

// reoptSwap is the epoch transition: every live process is parked at a
// transaction boundary, so all CPU clocks advance to the fence (the latest
// clock), each process is charged the time it sat parked, every app emitter
// hops to the retrained layout (they are all idle — SetLayout enforces it),
// and the processes requeue in deterministic id order.
func (m *Machine) reoptSwap() {
	ro := m.ro
	var fence uint64
	for _, c := range m.cpus {
		if c.clock > fence {
			fence = c.clock
		}
	}
	for _, c := range m.cpus {
		if c.clock < fence {
			gap := fence - c.clock
			c.idle += gap
			if m.measuring {
				m.res.IdleInstrs += gap
			}
			c.clock = fence
		}
	}
	order := make([]*proc, 0, len(ro.parked))
	for p, at := range ro.parked {
		m.res.SwapStallInstr += fence - at
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].id < order[j].id })

	m.res.PreSwapP99 = m.latencySummary().P99
	for _, p := range m.procs {
		if p.state == stDead {
			continue
		}
		p.emit.SetLayout(ro.pendingLayout)
	}
	for _, p := range order {
		p.cpu.runq = append(p.cpu.runq, p)
	}
	ro.parked = make(map[*proc]uint64)
	ro.pendingLayout = nil
	ro.fencing = false
	ro.postSwap = &latRec{hist: &stats.Log2Hist{}}
	m.res.Reopts++
}

// KindFrequencies returns the normalized measured-phase transaction-kind
// mix (from the latency cells, so it reflects transactions recorded start
// to finish inside the measured phase). Training runs store it so serving
// runs can detect drift against it.
func (m *Machine) KindFrequencies() map[string]float64 {
	counts := make(map[string]uint64)
	for k, r := range m.lat {
		counts[k.kind] += r.hist.N
	}
	return normalizeCounts(counts)
}

// KindDistance is the L1 distance between two normalized kind-frequency
// maps: 0 means identical mixes, 2 means fully disjoint.
func KindDistance(a, b map[string]float64) float64 {
	var d float64
	for kind, fa := range a {
		d += math.Abs(fa - b[kind])
	}
	for kind, fb := range b {
		if _, ok := a[kind]; !ok {
			d += fb
		}
	}
	return d
}

func normalizeCounts(counts map[string]uint64) map[string]float64 {
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return nil
	}
	out := make(map[string]float64, len(counts))
	for kind, n := range counts {
		out[kind] = float64(n) / float64(total)
	}
	return out
}

func normalizeFreq(freq map[string]float64) map[string]float64 {
	var total float64
	for _, f := range freq {
		total += f
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]float64, len(freq))
	for kind, f := range freq {
		out[kind] = f / total
	}
	return out
}
