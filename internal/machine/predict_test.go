package machine_test

import (
	"fmt"
	"strings"
	"testing"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/program"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

// fastImages builds an app+kernel image pair with the predictor's decision
// code in the app image, as PredictFastPath requires.
func fastImages(t *testing.T, wl workload.Workload) (*codegen.Image, *program.Layout, *codegen.Image, *program.Layout) {
	t.Helper()
	app, err := appmodel.Build(appmodel.Config{
		Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl, FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	appL, err := program.BaselineLayout(app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernel.Build(kernel.Config{Seed: 43, ColdWords: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	kernL, err := program.BaselineLayout(kern.Prog)
	if err != nil {
		t.Fatal(err)
	}
	return app, appL, kern, kernL
}

// alwaysLocal is the forced-mispredict stub: it claims every transaction is
// single-shard, so every cross-shard transaction takes the fast path and must
// discover its remote access, abort, and retry distributed.
type alwaysLocal struct{}

func (alwaysLocal) Observe(string, int, bool) {}
func (alwaysLocal) Local(string, int) bool    { return true }

// TestFastPathEndToEnd runs all three sharded workloads at 4 shards with the
// trained predictor: every transaction must commit, a nonzero fraction must
// take the fast path, the cross-shard invariants must hold, and a rerun must
// be bit-identical.
func TestFastPathEndToEnd(t *testing.T) {
	wls := map[string]workload.Workload{
		"tpcb":   shardWorkload(t, "tpcb"),
		"ordere": shardWorkload(t, "ordere"),
		"ycsb":   ycsb.NewScaled(ycsb.Scale{Records: 4000}),
	}
	for name, wl := range wls {
		wl := wl
		t.Run(name, func(t *testing.T) {
			app, appL, kern, kernL := fastImages(t, wl)
			run := func() machine.Result {
				cfg := configFor(wl, app, appL, kern, kernL)
				cfg.Shards = 4
				cfg.CPUs = 2
				cfg.ProcsPerCPU = 6
				cfg.WarmupTxns = 40
				cfg.Transactions = 120
				cfg.PredictFastPath = true
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("invariants with fast path: %v", err)
				}
				return res
			}
			r1 := run()
			if r1.Committed != 120 {
				t.Fatalf("committed = %d", r1.Committed)
			}
			if r1.Predicted == 0 {
				t.Fatal("trained predictor never took the fast path")
			}
			if r1.Mispredicted > r1.Predicted {
				t.Fatalf("mispredicted %d > predicted %d", r1.Mispredicted, r1.Predicted)
			}
			if r2 := run(); r1 != r2 {
				t.Fatalf("fast-path runs diverge:\n%+v\n%+v", r1, r2)
			}
			t.Logf("%s: predicted=%d mispredicted=%d cross=%d aborts=%d",
				name, r1.Predicted, r1.Mispredicted, r1.CrossShard, r1.Aborted)
		})
	}
}

// TestForcedMispredictRetriesDistributed is the misprediction-path audit: an
// always-local stub predictor forces every cross-shard transaction through
// the fast path, where it must discover the remote access, abort through the
// instrumented unwind, and deterministically retry distributed. Every
// transaction still commits, conservation holds, and results are
// bit-identical across repeated runs at each CPU count.
func TestForcedMispredictRetriesDistributed(t *testing.T) {
	wl := shardWorkload(t, "tpcb")
	app, appL, kern, kernL := fastImages(t, wl)
	for _, cpus := range []int{1, 2} {
		cpus := cpus
		t.Run(fmt.Sprintf("cpus%d", cpus), func(t *testing.T) {
			run := func() machine.Result {
				cfg := configFor(wl, app, appL, kern, kernL)
				cfg.Shards = 2
				cfg.CPUs = cpus
				cfg.ProcsPerCPU = 6
				cfg.WarmupTxns = 20
				cfg.Transactions = 150
				cfg.PredictFastPath = true
				cfg.Predictor = alwaysLocal{}
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("invariants after forced mispredicts: %v", err)
				}
				return res
			}
			r1 := run()
			if r1.Mispredicted == 0 {
				t.Fatal("always-local stub produced no mispredicts at the default cross-shard fraction")
			}
			if r1.Committed != 150 {
				t.Fatalf("committed = %d; mispredicted transactions must retry to completion", r1.Committed)
			}
			if r1.Aborted < r1.Mispredicted {
				t.Fatalf("aborts %d < mispredicts %d; every mispredict must abort before retrying",
					r1.Aborted, r1.Mispredicted)
			}
			if r1.CrossShard < r1.Mispredicted {
				t.Fatalf("cross-shard commits %d < mispredicts %d; retries must run distributed",
					r1.CrossShard, r1.Mispredicted)
			}
			if r2 := run(); r1 != r2 {
				t.Fatalf("forced-mispredict runs diverge at cpus=%d:\n%+v\n%+v", cpus, r1, r2)
			}
			t.Logf("cpus=%d: mispredicted=%d aborted=%d cross=%d", cpus, r1.Mispredicted, r1.Aborted, r1.CrossShard)
		})
	}
}

// TestFastPathValidation: the fast path must be rejected fast on
// misconfiguration — a single shard, or an app image built without the
// predictor models.
func TestFastPathValidation(t *testing.T) {
	wl := shardWorkload(t, "tpcb")
	app, appL, kern, kernL := fastImages(t, wl)
	cfg := configFor(wl, app, appL, kern, kernL)
	cfg.PredictFastPath = true
	if _, err := machine.New(cfg); err == nil || !strings.Contains(err.Error(), "Shards > 1") {
		t.Fatalf("single-shard fast path accepted (err = %v)", err)
	}
	plainApp, plainAppL, _, _ := testImages(t, wl)
	cfg = configFor(wl, plainApp, plainAppL, kern, kernL)
	cfg.Shards = 2
	cfg.PredictFastPath = true
	if _, err := machine.New(cfg); err == nil || !strings.Contains(err.Error(), "appmodel.Config.FastPath") {
		t.Fatalf("fast path accepted without predictor models in the image (err = %v)", err)
	}
}

// TestFastPathImageOffIsBitIdentical: building the app image with
// FastPath=false must stay bit-identical to the pre-fast-path image — the
// predictor models may not perturb image generation when disabled.
func TestFastPathImageOffIsBitIdentical(t *testing.T) {
	wl := shardWorkload(t, "tpcb")
	build := func(fast bool) *codegen.Image {
		app, err := appmodel.Build(appmodel.Config{
			Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl, FastPath: fast,
		})
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	off1, off2, on := build(false), build(false), build(true)
	s1, s2, sOn := off1.Prog.ComputeStats(), off2.Prog.ComputeStats(), on.Prog.ComputeStats()
	if s1 != s2 {
		t.Fatalf("FastPath=false builds diverge:\n%+v\n%+v", s1, s2)
	}
	if off1.Fns["predict_check"] != nil {
		t.Fatal("FastPath=false image contains predictor models")
	}
	if on.Fns["predict_check"] == nil || on.Fns["predict_train"] == nil {
		t.Fatal("FastPath=true image lacks predictor models")
	}
	if sOn.BodyWords <= s1.BodyWords {
		t.Fatalf("predictor models added no code: on=%d off=%d body words", sOn.BodyWords, s1.BodyWords)
	}
}

// TestFastPathBeatsRoutedAtLowCross is the pinned perf regression behind the
// PR: at 8 shards on a low-cross-shard TPC-B mix, the predictive fast path
// must beat the always-routed baseline on both instructions per transaction
// and p99 latency, with the invariants passing either way.
func TestFastPathBeatsRoutedAtLowCross(t *testing.T) {
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 24, TellersPerBranch: 3, AccountsPerBranch: 100})
	wl.CrossShardPct = 1
	app, appL, kern, kernL := fastImages(t, wl)
	run := func(fast bool) machine.Result {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.Shards = 8
		cfg.CPUs = 2
		cfg.ProcsPerCPU = 8
		cfg.WarmupTxns = 80
		cfg.Transactions = 400
		cfg.PredictFastPath = fast
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants (fast=%v): %v", fast, err)
		}
		return res
	}
	off := run(false)
	on := run(true)
	if on.Committed != 400 || off.Committed != 400 {
		t.Fatalf("committed: on=%d off=%d", on.Committed, off.Committed)
	}
	if on.Predicted == 0 {
		t.Fatal("fast path never taken at 1% cross-shard")
	}
	perTxnOn := float64(on.BusyInstrs) / float64(on.Committed)
	perTxnOff := float64(off.BusyInstrs) / float64(off.Committed)
	if perTxnOn >= perTxnOff {
		t.Fatalf("fast path did not cut instructions/txn: on=%.1f off=%.1f", perTxnOn, perTxnOff)
	}
	if on.Latency.P99 >= off.Latency.P99 {
		t.Fatalf("fast path did not cut p99: on=%d off=%d", on.Latency.P99, off.Latency.P99)
	}
	t.Logf("instr/txn %.1f -> %.1f, p99 %d -> %d, predicted=%d mispredicted=%d",
		perTxnOff, perTxnOn, off.Latency.P99, on.Latency.P99, on.Predicted, on.Mispredicted)
}
