package machine_test

import (
	"testing"

	"codelayout/internal/appmodel"
	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/ordere"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
)

// testWorkloads lists the workloads every machine-level test runs against.
var testWorkloads = []string{"tpcb", "ordere"}

// smallWorkload returns a tiny instance of the named workload.
func smallWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	switch name {
	case "tpcb":
		return tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 200})
	case "ordere":
		return ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

// testImages builds a small app+kernel image pair for a workload.
func testImages(t *testing.T, wl workload.Workload) (*codegen.Image, *program.Layout, *codegen.Image, *program.Layout) {
	t.Helper()
	app, err := appmodel.Build(appmodel.Config{Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	appL, err := program.BaselineLayout(app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernel.Build(kernel.Config{Seed: 43, ColdWords: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	kernL, err := program.BaselineLayout(kern.Prog)
	if err != nil {
		t.Fatal(err)
	}
	return app, appL, kern, kernL
}

func configFor(wl workload.Workload, app *codegen.Image, appL *program.Layout, kern *codegen.Image, kernL *program.Layout) machine.Config {
	return machine.Config{
		CPUs: 1, ProcsPerCPU: 4, Seed: 7,
		WarmupTxns: 5, Transactions: 40,
		Workload: wl,
		AppImage: app, AppLayout: appL,
		KernImage: kern, KernLayout: kernL,
	}
}

// testSetup builds images and a base config for the named workload.
func testSetup(t *testing.T, name string) machine.Config {
	t.Helper()
	wl := smallWorkload(t, name)
	app, appL, kern, kernL := testImages(t, wl)
	return configFor(wl, app, appL, kern, kernL)
}

func TestEndToEndRuns(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			cfg := testSetup(t, name)
			var cnt trace.Counter
			seq := trace.NewSeqLen()
			cfg.Sinks = []trace.Sink{&cnt, seq}
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != 40 {
				t.Fatalf("committed = %d", res.Committed)
			}
			if res.AppInstrs == 0 || res.KernelInstrs == 0 {
				t.Fatalf("instrs app=%d kern=%d", res.AppInstrs, res.KernelInstrs)
			}
			if cnt.Instructions != res.AppInstrs+res.KernelInstrs {
				t.Fatalf("sink saw %d, result says %d", cnt.Instructions, res.AppInstrs+res.KernelInstrs)
			}
			kf := res.KernelFrac()
			if kf <= 0.02 || kf >= 0.80 {
				t.Fatalf("kernel fraction = %f, implausible", kf)
			}
			if seq.Hist.N == 0 {
				t.Fatal("no sequences measured")
			}
			mean := seq.Hist.Mean()
			if mean < 3 || mean > 20 {
				t.Fatalf("baseline mean sequence length = %f, outside plausible band", mean)
			}
			if res.LogFlushes == 0 {
				t.Fatal("no log flushes")
			}
			t.Logf("app=%d kern=%d (%.1f%% kernel), seqlen=%.2f, flushes=%d grouped=%d conflicts=%d",
				res.AppInstrs, res.KernelInstrs, kf*100, mean, res.LogFlushes, res.GroupedCommits, res.LockConflicts)
		})
	}
}

// TestWorkloadInvariantsAfterRun checks each workload's own consistency
// invariants (TPC-B balance conservation; order-entry order/order-line
// totals and payment flows) after a full simulated multiprocessor run.
func TestWorkloadInvariantsAfterRun(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			cfg := testSetup(t, name)
			cfg.CPUs = 2
			cfg.ProcsPerCPU = 6
			cfg.Transactions = 120
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			wl := smallWorkload(t, name)
			app, appL, kern, kernL := testImages(t, wl)
			run := func() (machine.Result, *cache.Stats) {
				cfg := configFor(smallWorkload(t, name), app, appL, kern, kernL)
				ic := cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 2})
				cfg.Sinks = []trace.Sink{ic}
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, ic.Stats()
			}
			r1, s1 := run()
			r2, s2 := run()
			if r1 != r2 {
				t.Fatalf("results differ:\n%+v\n%+v", r1, r2)
			}
			if s1.Misses != s2.Misses || s1.Accesses != s2.Accesses {
				t.Fatalf("cache stats differ: %d/%d vs %d/%d", s1.Misses, s1.Accesses, s2.Misses, s2.Accesses)
			}
		})
	}
}

func TestMultiCPUGroupCommitAndConflicts(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			cfg := testSetup(t, name)
			cfg.CPUs = 2
			cfg.ProcsPerCPU = 8
			cfg.Transactions = 150
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != 150 {
				t.Fatalf("committed = %d", res.Committed)
			}
			if res.GroupedCommits == 0 {
				t.Fatal("no grouped commits with 16 processes — group commit broken")
			}
			if res.LogFlushes >= res.Committed {
				t.Fatalf("flushes %d >= commits %d: grouping ineffective", res.LogFlushes, res.Committed)
			}
			t.Logf("flushes=%d grouped=%d conflicts=%d idle=%d",
				res.LogFlushes, res.GroupedCommits, res.LockConflicts, res.IdleInstrs)
		})
	}
}

// TestOrderEntryRunsHotterLocks checks the design intent of the second
// workload: with the same process count, the order-entry mix produces more
// lock conflicts per committed transaction than TPC-B (it serializes on a
// handful of warehouse/district rows).
func TestOrderEntryRunsHotterLocks(t *testing.T) {
	conflictRate := func(name string) float64 {
		cfg := testSetup(t, name)
		cfg.CPUs = 2
		cfg.ProcsPerCPU = 8
		cfg.Transactions = 150
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.LockConflicts) / float64(res.Committed)
	}
	tb, oe := conflictRate("tpcb"), conflictRate("ordere")
	t.Logf("lock conflicts per txn: tpcb=%.3f ordere=%.3f", tb, oe)
	if oe <= tb {
		t.Fatalf("order-entry not hotter on locks: tpcb=%.3f ordere=%.3f", tb, oe)
	}
}

// TestOptimizedLayoutRunsAndReducesMisses is the pipeline's headline sanity
// check for both workloads: profile → optimize("all") → re-run → database
// results unchanged, instruction cache misses reduced.
func TestOptimizedLayoutRunsAndReducesMisses(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			wl := smallWorkload(t, name)
			app, appL, kern, kernL := testImages(t, wl)

			// Profile run.
			px := profile.NewPixie(app.Prog, "train")
			cfg := configFor(wl, app, appL, kern, kernL)
			cfg.Seed = 100 // training seed differs from evaluation seed
			cfg.AppCollector = px
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if px.Profile.TotalBlocks() == 0 {
				t.Fatal("empty profile")
			}

			// Optimize.
			optL, rep, err := core.Optimize(app.Prog, px.Profile, core.Options{
				Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := optL.Validate(); err != nil {
				t.Fatal(err)
			}
			if rep.HotUnits == 0 {
				t.Fatal("no hot units")
			}

			measure := func(l *program.Layout) (uint64, machine.Result) {
				cfg := configFor(wl, app, appL, kern, kernL)
				cfg.AppLayout = l
				ic := cache.New(cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 1})
				cfg.Sinks = []trace.Sink{trace.AppOnly(ic)}
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return ic.Stats().Misses, res
			}
			baseMisses, baseRes := measure(appL)
			optMisses, optRes := measure(optL)
			if baseRes.Committed != optRes.Committed {
				t.Fatalf("committed differ: %d vs %d", baseRes.Committed, optRes.Committed)
			}
			if optMisses >= baseMisses {
				t.Fatalf("optimized layout did not reduce misses: base=%d opt=%d", baseMisses, optMisses)
			}
			t.Logf("misses: base=%d opt=%d (%.1f%% reduction); instr base=%d opt=%d",
				baseMisses, optMisses, 100*(1-float64(optMisses)/float64(baseMisses)),
				baseRes.AppInstrs, optRes.AppInstrs)
			// Better packing also shortens the dynamic path (elided branches).
			if optRes.AppInstrs > baseRes.AppInstrs {
				t.Fatalf("optimized binary executed more instructions: %d > %d", optRes.AppInstrs, baseRes.AppInstrs)
			}
		})
	}
}

func TestSequenceLengthImprovesWithChaining(t *testing.T) {
	wl := smallWorkload(t, "tpcb")
	app, appL, kern, kernL := testImages(t, wl)
	px := profile.NewPixie(app.Prog, "train")
	cfg := configFor(wl, app, appL, kern, kernL)
	cfg.Seed = 100
	cfg.AppCollector = px
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	optL, _, err := core.Optimize(app.Prog, px.Profile, core.Options{Chain: true})
	if err != nil {
		t.Fatal(err)
	}
	seqFor := func(l *program.Layout) float64 {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.AppLayout = l
		seq := trace.NewSeqLen()
		cfg.Sinks = []trace.Sink{trace.AppOnly(seq)}
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return seq.Hist.Mean()
	}
	base := seqFor(appL)
	opt := seqFor(optL)
	if opt <= base {
		t.Fatalf("chaining did not lengthen sequences: base=%.2f opt=%.2f", base, opt)
	}
	t.Logf("mean sequence length: base=%.2f opt=%.2f", base, opt)
}
