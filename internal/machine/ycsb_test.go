package machine_test

import (
	"testing"

	"codelayout/internal/machine"
	"codelayout/internal/tpcb"
	"codelayout/internal/ycsb"
)

// TestYCSBRunsReadDominated pins the point-read workload's design intent at
// the machine level: against TPC-B under the same machine shape, the
// ycsb mix must produce a far smaller kernel share (almost no log-write
// crossings), fewer log flushes per transaction, and near-zero lock
// conflicts — the icache profile the cross-workload robustness experiments
// need from the third corner.
func TestYCSBRunsReadDominated(t *testing.T) {
	run := func(mk func() *machine.Config) machine.Result {
		cfg := mk()
		cfg.CPUs = 2
		cfg.ProcsPerCPU = 6
		cfg.Transactions = 200
		m, err := machine.New(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	kv := ycsb.NewScaled(ycsb.Scale{Records: 4000})
	kvApp, kvAppL, kvKern, kvKernL := testImages(t, kv)
	kvRes := run(func() *machine.Config {
		c := configFor(kv, kvApp, kvAppL, kvKern, kvKernL)
		return &c
	})
	tb := tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 200})
	tbApp, tbAppL, tbKern, tbKernL := testImages(t, tb)
	tbRes := run(func() *machine.Config {
		c := configFor(tb, tbApp, tbAppL, tbKern, tbKernL)
		return &c
	})
	if kvRes.Committed != 200 {
		t.Fatalf("committed = %d", kvRes.Committed)
	}
	if kvRes.KernelFrac() >= tbRes.KernelFrac() {
		t.Fatalf("ycsb kernel share %.3f not below tpcb's %.3f", kvRes.KernelFrac(), tbRes.KernelFrac())
	}
	kvFlush := float64(kvRes.LogFlushes) / float64(kvRes.Committed)
	tbFlush := float64(tbRes.LogFlushes) / float64(tbRes.Committed)
	if kvFlush >= tbFlush/2 {
		t.Fatalf("ycsb log pressure not low: %.3f flushes/txn vs tpcb %.3f", kvFlush, tbFlush)
	}
	if kvRes.LockConflicts > tbRes.LockConflicts {
		t.Fatalf("ycsb lock conflicts %d exceed tpcb's %d", kvRes.LockConflicts, tbRes.LockConflicts)
	}
	t.Logf("kernel share: ycsb=%.2f%% tpcb=%.2f%%; flushes/txn: ycsb=%.3f tpcb=%.3f; conflicts: ycsb=%d tpcb=%d",
		100*kvRes.KernelFrac(), 100*tbRes.KernelFrac(), kvFlush, tbFlush,
		kvRes.LockConflicts, tbRes.LockConflicts)
}

// TestYCSBShardedScatterReads: sharded ycsb routes every operation to its
// key's home shard; with a cross-shard fraction configured, scatter reads
// produce cross-shard traffic without a single two-phase commit, and runs
// stay deterministic.
func TestYCSBShardedScatterReads(t *testing.T) {
	wl := ycsb.NewScaled(ycsb.Scale{Records: 4000})
	wl.CrossShardPct = 25
	app, appL, kern, kernL := testImages(t, wl)
	run := func() machine.Result {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.Shards = 4
		cfg.CPUs = 2
		cfg.ProcsPerCPU = 6
		cfg.Transactions = 200
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run()
	if r1.Committed != 200 {
		t.Fatalf("committed = %d", r1.Committed)
	}
	if r1.CrossShard == 0 {
		t.Fatal("no scatter reads routed with CrossShardPct=25")
	}
	if r1.Deadlocks != 0 || r1.Aborted != 0 {
		t.Fatalf("read-only scatter traffic produced aborts: deadlocks=%d aborted=%d", r1.Deadlocks, r1.Aborted)
	}
	if r2 := run(); r1 != r2 {
		t.Fatalf("sharded ycsb runs diverge:\n%+v\n%+v", r1, r2)
	}
	t.Logf("cross-shard scatter reads: %d of %d", r1.CrossShard, r1.Committed)
}
