package machine

import (
	"fmt"
	"sort"

	"codelayout/internal/kernel"
	"codelayout/internal/trace"
)

// maxSchedulerSteps is a failsafe against livelock in buggy configurations.
const maxSchedulerSteps = 200_000_000

// Run executes the configured warmup and measured transactions and returns
// the result. It is single-use: create a new Machine per run.
func (m *Machine) Run() (Result, error) {
	for _, p := range m.procs {
		go p.run(m)
	}
	defer m.killAll()

	if m.cfg.WarmupTxns == 0 {
		m.measuring = true
	}
	steps := 0
	for m.committed < m.cfg.Transactions {
		steps++
		if steps > maxSchedulerSteps {
			return m.res, fmt.Errorf("machine: scheduler step limit exceeded")
		}
		c := m.pickCPU()
		if c == nil {
			return m.res, fmt.Errorf("machine: deadlock — no runnable or waking process")
		}
		m.wakeExpired(c)
		if len(c.runq) == 0 {
			// Idle until this CPU's next IO completion.
			next := c.earliestWake()
			if next <= c.clock {
				continue
			}
			if m.measuring {
				m.res.IdleInstrs += next - c.clock
			}
			c.idle += next - c.clock
			c.clock = next
			continue
		}
		p := c.runq[0]
		c.runq = c.runq[1:]
		p.state = stRunning
		p.budget = int64(m.cfg.QuantumInstr)
		c.current = p
		p.resume <- cmdRun
		msg := <-p.yield
		c.current = nil
		if msg.kind == yDead {
			p.state = stDead
			if msg.panicMsg != "" {
				return m.res, fmt.Errorf("machine: process %d panicked: %s", p.id, msg.panicMsg)
			}
			return m.res, fmt.Errorf("machine: process %d exited unexpectedly", p.id)
		}
		switch msg.kind {
		case yTxnDone:
			if m.measuring {
				m.committed++
			} else {
				m.warmCommitted++
				if m.warmCommitted >= m.cfg.WarmupTxns {
					m.measuring = true
				}
			}
			p.state = stRunnable
			// Processes continue until they block; front of queue keeps the
			// cache-warm process running, as a real scheduler would.
			c.runq = append([]*proc{p}, c.runq...)
		case yQuantum:
			c.kern.RunAuto(kernel.SvcSwitch)
			p.state = stRunnable
			c.runq = append(c.runq, p)
		case yBlockIO:
			p.state = stBlockedIO
			p.wakeAt = c.clock + msg.ioDelay
			c.blocked = append(c.blocked, p)
			c.kern.RunAuto(kernel.SvcSwitch)
		case yWait:
			p.state = stBlockedWait
			c.kern.RunAuto(kernel.SvcSwitch)
		}
	}

	m.res.Committed = uint64(m.committed)
	m.res.GroupedCommits = m.eng.WAL.GroupedCommits
	m.res.LogFlushes = m.eng.WAL.Flushes
	m.res.LockConflicts = m.eng.Locks.Conflicts
	m.res.BufMisses = m.eng.Pool.Misses
	m.res.BusyInstrs = m.res.AppInstrs + m.res.KernelInstrs
	for _, s := range m.cfg.Sinks {
		if f, ok := s.(trace.Flusher); ok {
			f.Flush()
		}
	}
	return m.res, nil
}

// pickCPU returns the CPU with the earliest next event (runnable process or
// IO completion); nil when nothing can ever run again.
func (m *Machine) pickCPU() *cpu {
	var best *cpu
	var bestAt uint64
	for _, c := range m.cpus {
		var at uint64
		switch {
		case len(c.runq) > 0:
			at = c.clock
		case len(c.blocked) > 0:
			at = c.earliestWake()
		default:
			continue
		}
		if best == nil || at < bestAt || (at == bestAt && c.id < best.id) {
			best, bestAt = c, at
		}
	}
	return best
}

func (c *cpu) earliestWake() uint64 {
	var at uint64 = ^uint64(0)
	for _, p := range c.blocked {
		if p.wakeAt < at {
			at = p.wakeAt
		}
	}
	return at
}

// wakeExpired moves IO-blocked processes whose deadline passed onto the run
// queue, in deterministic (wakeAt, pid) order.
func (m *Machine) wakeExpired(c *cpu) {
	if len(c.blocked) == 0 {
		return
	}
	var woken []*proc
	rest := c.blocked[:0]
	for _, p := range c.blocked {
		if p.wakeAt <= c.clock {
			woken = append(woken, p)
		} else {
			rest = append(rest, p)
		}
	}
	c.blocked = rest
	sort.Slice(woken, func(i, j int) bool {
		if woken[i].wakeAt != woken[j].wakeAt {
			return woken[i].wakeAt < woken[j].wakeAt
		}
		return woken[i].id < woken[j].id
	})
	for _, p := range woken {
		p.state = stRunnable
		c.runq = append(c.runq, p)
	}
}

// killAll terminates every surviving process goroutine.
func (m *Machine) killAll() {
	for _, p := range m.procs {
		if p.state == stDead {
			continue
		}
		// Every non-dead process is parked on resume.
		p.resume <- cmdKill
		<-p.yield
		p.state = stDead
	}
}
