package machine

import (
	"fmt"
	"sort"

	"codelayout/internal/kernel"
	"codelayout/internal/trace"
)

// maxSchedulerSteps is a failsafe against livelock in buggy configurations.
const maxSchedulerSteps = 200_000_000

// Run executes the configured warmup and measured transactions and returns
// the result. It is single-use: create a new Machine per run.
func (m *Machine) Run() (Result, error) {
	for _, p := range m.procs {
		go p.run(m)
	}
	defer m.killAll()

	if m.cfg.WarmupTxns == 0 {
		m.measuring = true
		m.warmupOver = true
	}
	steps := 0
	for m.committed < m.cfg.Transactions {
		steps++
		if steps > maxSchedulerSteps {
			return m.res, fmt.Errorf("machine: scheduler step limit exceeded")
		}
		c, p, msg, err := m.step(nil)
		if err != nil {
			return m.res, err
		}
		if p == nil {
			continue // clocks advanced past an idle gap
		}
		if msg.kind == yTxnDone {
			if m.measuring {
				m.committed++
				if m.ro != nil {
					if err := m.reoptTick(); err != nil {
						return m.res, err
					}
				}
			} else {
				m.warmCommitted++
				if m.warmCommitted >= m.cfg.WarmupTxns {
					m.measuring = true
					m.warmupOver = true
					if m.cfg.AutoGroupCommit != AutoGCOff {
						m.tuneGroupCommit()
					}
				}
			}
			if m.ro != nil && m.ro.fencing {
				// Epoch fence: park at the boundary instead of requeueing;
				// the swap fires once every live process is parked.
				m.reoptPark(p)
				continue
			}
			p.state = stRunnable
			// Processes continue until they block; front of queue keeps the
			// cache-warm process running, as a real scheduler would.
			c.runq = append([]*proc{p}, c.runq...)
		}
	}

	m.res.Committed = uint64(m.committed)
	for _, e := range m.engs {
		m.res.GroupedCommits += e.WAL.GroupedCommits
		m.res.LogFlushes += e.WAL.Flushes
		m.res.LockConflicts += e.Locks.Conflicts
		m.res.Deadlocks += e.Deadlocks
		m.res.BufMisses += e.Pool.Misses
	}
	m.res.BusyInstrs = m.res.AppInstrs + m.res.KernelInstrs
	m.res.Latency = m.latencySummary()
	if m.ro != nil && m.ro.postSwap != nil {
		m.res.PostSwapP99 = m.ro.postSwap.summary().P99
	}
	// Quiesce: run every surviving process to its next transaction boundary
	// outside the measured phase, so the database holds no in-flight
	// transactions (workload invariant checks audit a consistent state, the
	// way TPC consistency audits run against a quiesced system). Result
	// fields are captured above, so drained work does not perturb them.
	m.measuring = false
	if err := m.drain(); err != nil {
		return m.res, err
	}
	for _, s := range m.cfg.Sinks {
		if f, ok := s.(trace.Flusher); ok {
			f.Flush()
		}
	}
	return m.res, nil
}

// step performs one scheduler decision: it picks the CPU with the earliest
// event, wakes expired IO, advances clocks past idle gaps, and runs the next
// runnable process (not matched by skip) to its yield. Blocking yields
// (quantum, IO, waits) are handled here; yTxnDone is returned for the caller
// to place the process. A nil proc with nil error means only clocks moved or
// a skipped process was discarded — the caller should loop.
func (m *Machine) step(skip func(*proc) bool) (*cpu, *proc, yieldMsg, error) {
	var none yieldMsg
	c := m.pickCPU()
	if c == nil {
		return nil, nil, none, fmt.Errorf("machine: deadlock — no runnable or waking process")
	}
	m.wakeExpired(c)
	if len(c.runq) == 0 {
		// Idle until this CPU's next IO completion.
		next := c.earliestWake()
		if next > c.clock {
			if m.measuring {
				m.res.IdleInstrs += next - c.clock
			}
			c.idle += next - c.clock
			c.clock = next
		}
		return c, nil, none, nil
	}
	p := c.runq[0]
	c.runq = c.runq[1:]
	if skip != nil && skip(p) {
		return c, nil, none, nil
	}
	p.state = stRunning
	p.budget = int64(m.cfg.QuantumInstr)
	c.current = p
	p.resume <- cmdRun
	msg := <-p.yield
	c.current = nil
	switch msg.kind {
	case yDead:
		p.state = stDead
		if msg.panicMsg != "" {
			return c, nil, none, fmt.Errorf("machine: process %d panicked: %s", p.id, msg.panicMsg)
		}
		return c, nil, none, fmt.Errorf("machine: process %d exited unexpectedly", p.id)
	case yQuantum:
		c.kern.RunAuto(kernel.SvcSwitch)
		p.state = stRunnable
		c.runq = append(c.runq, p)
	case yBlockIO:
		p.state = stBlockedIO
		p.wakeAt = c.clock + msg.ioDelay
		c.blocked = append(c.blocked, p)
		c.kern.RunAuto(kernel.SvcSwitch)
	case yWait:
		p.state = stBlockedWait
		c.kern.RunAuto(kernel.SvcSwitch)
	}
	return c, p, msg, nil
}

// drain continues deterministic scheduling until every live process parks at
// a transaction boundary. Processes reaching the boundary are not requeued;
// strict 2PL guarantees they hold no locks there, so the rest keep making
// progress.
func (m *Machine) drain() error {
	parked := make(map[*proc]bool, len(m.procs))
	// Processes with no transaction in flight on any shard are already at a
	// boundary (strict 2PL: no locks, no undo); only mid-transaction
	// processes run.
	for _, p := range m.procs {
		if p.state != stDead && !p.inTxn() {
			parked[p] = true
		}
	}
	atBoundary := func() bool {
		for _, p := range m.procs {
			if p.state != stDead && !parked[p] {
				return false
			}
		}
		return true
	}
	steps := 0
	for !atBoundary() {
		steps++
		if steps > maxSchedulerSteps {
			return fmt.Errorf("machine: drain step limit exceeded")
		}
		// Processes woken after parking stay at their boundary.
		_, p, msg, err := m.step(func(p *proc) bool { return parked[p] })
		if err != nil {
			return fmt.Errorf("%w (while draining to quiescence)", err)
		}
		if p != nil && msg.kind == yTxnDone {
			p.state = stRunnable
			parked[p] = true
		}
	}
	return nil
}

// pickCPU returns the CPU with the earliest next event (runnable process or
// IO completion); nil when nothing can ever run again.
func (m *Machine) pickCPU() *cpu {
	var best *cpu
	var bestAt uint64
	for _, c := range m.cpus {
		var at uint64
		switch {
		case len(c.runq) > 0:
			at = c.clock
		case len(c.blocked) > 0:
			at = c.earliestWake()
		default:
			continue
		}
		if best == nil || at < bestAt || (at == bestAt && c.id < best.id) {
			best, bestAt = c, at
		}
	}
	return best
}

func (c *cpu) earliestWake() uint64 {
	var at uint64 = ^uint64(0)
	for _, p := range c.blocked {
		if p.wakeAt < at {
			at = p.wakeAt
		}
	}
	return at
}

// wakeExpired moves IO-blocked processes whose deadline passed onto the run
// queue, in deterministic (wakeAt, pid) order.
func (m *Machine) wakeExpired(c *cpu) {
	if len(c.blocked) == 0 {
		return
	}
	var woken []*proc
	rest := c.blocked[:0]
	for _, p := range c.blocked {
		if p.wakeAt <= c.clock {
			woken = append(woken, p)
		} else {
			rest = append(rest, p)
		}
	}
	c.blocked = rest
	sort.Slice(woken, func(i, j int) bool {
		if woken[i].wakeAt != woken[j].wakeAt {
			return woken[i].wakeAt < woken[j].wakeAt
		}
		return woken[i].id < woken[j].id
	})
	for _, p := range woken {
		p.state = stRunnable
		c.runq = append(c.runq, p)
	}
}

// killAll terminates every surviving process goroutine.
func (m *Machine) killAll() {
	for _, p := range m.procs {
		if p.state == stDead {
			continue
		}
		// Every non-dead process is parked on resume.
		p.resume <- cmdKill
		<-p.yield
		p.state = stDead
	}
}
