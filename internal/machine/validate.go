package machine

import (
	"fmt"

	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// MaxShards bounds the shard count. The shards' page-address windows share
// the 1 GB region below the log buffers: up to 16 shards keep the historical
// 64 MB (8192-page) stride — existing results stay bit-identical — and wider
// groups divide the region evenly (64 shards get 16 MB windows each).
const MaxShards = 64

// wideShardThreshold is the largest shard count that keeps the historical
// db.ShardPageStride windows; above it the region is divided evenly.
const wideShardThreshold = 16

// minBufferPoolPages is the smallest explicit pool that cannot wedge the
// run: pages pinned concurrently by a transaction (tree root-to-leaf path
// plus heap pages) must always find a free frame.
const minBufferPoolPages = 16

// Validate checks a configuration before any engine is built, so
// misconfigurations surface as errors here instead of panics (or wedged
// scheduler loops) deep inside a run. Zero values that withDefaults fills
// are accepted; explicitly negative or contradictory settings are not.
func (c Config) Validate() error {
	if c.Workload == nil {
		return fmt.Errorf("machine: Config.Workload is required")
	}
	if c.AppImage == nil || c.AppLayout == nil || c.KernImage == nil || c.KernLayout == nil {
		return fmt.Errorf("machine: images and layouts are required")
	}
	if c.CPUs < 0 {
		return fmt.Errorf("machine: CPUs = %d; must be >= 1 (0 selects the default)", c.CPUs)
	}
	if c.ProcsPerCPU < 0 {
		return fmt.Errorf("machine: ProcsPerCPU = %d; must be >= 1 (0 selects the default)", c.ProcsPerCPU)
	}
	if c.Transactions < 0 {
		return fmt.Errorf("machine: Transactions = %d; must be >= 0", c.Transactions)
	}
	if c.WarmupTxns < 0 {
		return fmt.Errorf("machine: WarmupTxns = %d; must be >= 0", c.WarmupTxns)
	}
	if c.Shards < 0 {
		return fmt.Errorf("machine: Shards = %d; must be >= 1 (0 selects the default of one shard)", c.Shards)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("machine: Shards = %d exceeds the maximum of %d", c.Shards, MaxShards)
	}
	if c.Shards > 1 {
		if _, ok := c.Workload.(workload.ShardedWorkload); !ok {
			return fmt.Errorf("machine: workload %q does not support sharding (Shards = %d needs workload.ShardedWorkload)",
				c.Workload.Name(), c.Shards)
		}
	}
	// Each shard owns a bounded page-address window; a database whose
	// loaded slice (plus growth headroom) cannot fit would silently alias
	// its neighbor's pages in the cache models.
	shards := c.Shards
	if shards <= 0 {
		shards = 1
	}
	if need := c.Workload.DataPages()/shards + growthHeadroom(shards); need > int(pageLimit(shards)) {
		return fmt.Errorf("machine: workload needs ~%d pages per shard but each of %d shards owns a %d-page window; use more shards, a smaller scale, or one shard",
			need, shards, pageLimit(shards))
	}
	if c.PredictFastPath {
		if shards <= 1 {
			return fmt.Errorf("machine: PredictFastPath needs Shards > 1 (a single engine has no router to skip)")
		}
		if c.AppImage.Fns["predict_check"] == nil || c.AppImage.Fns["predict_train"] == nil {
			return fmt.Errorf("machine: PredictFastPath needs the predictor models in the app image; build it with appmodel.Config.FastPath")
		}
	}
	if c.PerCommitLogFlush && c.GroupCommitWindowInstr > 0 {
		return fmt.Errorf("machine: PerCommitLogFlush conflicts with GroupCommitWindowInstr = %d (the window batches commits; per-commit flushing forbids batching)",
			c.GroupCommitWindowInstr)
	}
	if c.AutoGroupCommit < AutoGCOff || c.AutoGroupCommit > AutoGCTargetP99 {
		return fmt.Errorf("machine: AutoGroupCommit = %d is not a known AutoGCMode (have off, flushcount, p99)", int(c.AutoGroupCommit))
	}
	if c.AutoGroupCommit != AutoGCOff && c.PerCommitLogFlush {
		return fmt.Errorf("machine: AutoGroupCommit conflicts with PerCommitLogFlush (auto-tuning picks batching windows; per-commit flushing forbids batching)")
	}
	if c.AutoGroupCommit != AutoGCOff && c.GroupCommitWindowInstr > 0 {
		return fmt.Errorf("machine: AutoGroupCommit conflicts with GroupCommitWindowInstr = %d (the window is picked from warmup observations; set one or the other)",
			c.GroupCommitWindowInstr)
	}
	if c.ReoptimizeEveryTxns < 0 {
		return fmt.Errorf("machine: ReoptimizeEveryTxns = %d; must be >= 0 (0 disables re-optimization)", c.ReoptimizeEveryTxns)
	}
	if c.ReoptimizeEveryTxns > 0 && c.Reoptimize == nil {
		return fmt.Errorf("machine: ReoptimizeEveryTxns = %d needs a Reoptimize hook to retrain with", c.ReoptimizeEveryTxns)
	}
	if c.DriftThreshold < 0 || c.DriftThreshold > 2 {
		return fmt.Errorf("machine: DriftThreshold = %v; the L1 kind-mix distance lies in [0, 2] (0 selects the default %v)",
			c.DriftThreshold, DefaultDriftThreshold)
	}
	for kind, f := range c.TrainKindFreq {
		if f < 0 || f != f {
			return fmt.Errorf("machine: TrainKindFreq[%q] = %v; frequencies must be non-negative", kind, f)
		}
	}
	if c.BufferPoolPages < 0 {
		return fmt.Errorf("machine: BufferPoolPages = %d; must be >= 0 (0 sizes from the workload)", c.BufferPoolPages)
	}
	if c.BufferPoolPages > 0 && c.BufferPoolPages < minBufferPoolPages {
		return fmt.Errorf("machine: BufferPoolPages = %d conflicts with the engine's pin working set (need >= %d, or 0 to size from the workload)",
			c.BufferPoolPages, minBufferPoolPages)
	}
	return nil
}

// pageRegion is the whole page-address region below the shared log buffers.
func pageRegion() db.PageID { return db.PageID(0x4000_0000 / db.PageBytes) }

// pageStride is the page-ID distance between consecutive shards' allocation
// bases: the historical 64 MB stride up to wideShardThreshold shards (so
// existing sharded results stay bit-identical), an even division of the
// region above it.
func pageStride(shards int) db.PageID {
	if shards <= wideShardThreshold {
		return db.ShardPageStride
	}
	return pageRegion() / db.PageID(shards)
}

// pageLimit is the page-allocation cap per shard: the inter-shard stride
// when sharded, the whole region below the shared log buffer when single.
func pageLimit(shards int) db.PageID {
	if shards > 1 {
		return pageStride(shards)
	}
	return pageRegion()
}

// growthHeadroom is the per-shard page allowance, beyond the loaded data,
// for tables that grow during a run (history, orders) and index pages. Wide
// groups have narrow windows and proportionally less per-shard growth, so
// they budget less.
func growthHeadroom(shards int) int {
	if shards <= wideShardThreshold {
		return 4096
	}
	return 1024
}
