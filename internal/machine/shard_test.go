package machine_test

import (
	"fmt"
	"strings"
	"testing"

	"codelayout/internal/cache"
	"codelayout/internal/machine"
	"codelayout/internal/ordere"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
)

// shardWorkload returns a small instance of the named workload with enough
// partition-key values to spread across four shards.
func shardWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	switch name {
	case "tpcb":
		return tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 100})
	case "ordere":
		return ordere.NewScaled(ordere.Scale{Warehouses: 6, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

// TestShardedEndToEnd runs both workloads across 2 and 4 shards: the run
// must commit every transaction, produce cross-shard (2PC) traffic, and
// pass the cross-shard invariant audit over the union of shards.
func TestShardedEndToEnd(t *testing.T) {
	for _, name := range testWorkloads {
		wl := shardWorkload(t, name)
		app, appL, kern, kernL := testImages(t, wl)
		for _, shards := range []int{2, 4} {
			shards := shards
			t.Run(fmt.Sprintf("%s-shards%d", name, shards), func(t *testing.T) {
				cfg := configFor(wl, app, appL, kern, kernL)
				cfg.Shards = shards
				cfg.CPUs = 2
				cfg.ProcsPerCPU = 6
				cfg.Transactions = 120
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Committed != 120 {
					t.Fatalf("committed = %d", res.Committed)
				}
				if res.CrossShard == 0 {
					t.Fatal("no cross-shard transactions at the default cross-shard fraction")
				}
				if res.LogFlushes == 0 {
					t.Fatal("no log flushes")
				}
				if len(m.Engines()) != shards {
					t.Fatalf("engines = %d, want %d", len(m.Engines()), shards)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("cross-shard invariants: %v", err)
				}
				t.Logf("shards=%d: cross-shard=%d aborts=%d flushes=%d grouped=%d",
					shards, res.CrossShard, res.Aborted, res.LogFlushes, res.GroupedCommits)
			})
		}
	}
}

// TestShardedDeterminism: the same seed must produce bit-identical results
// and cache statistics at every shard count.
func TestShardedDeterminism(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			wl := shardWorkload(t, name)
			app, appL, kern, kernL := testImages(t, wl)
			run := func() (machine.Result, *cache.Stats) {
				cfg := configFor(shardWorkload(t, name), app, appL, kern, kernL)
				cfg.Shards = 4
				cfg.CPUs = 2
				cfg.ProcsPerCPU = 6
				cfg.Transactions = 100
				ic := cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 2})
				cfg.Sinks = []trace.Sink{ic}
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, ic.Stats()
			}
			r1, s1 := run()
			r2, s2 := run()
			if r1 != r2 {
				t.Fatalf("sharded results differ:\n%+v\n%+v", r1, r2)
			}
			if s1.Misses != s2.Misses || s1.Accesses != s2.Accesses {
				t.Fatalf("cache stats differ: %d/%d vs %d/%d", s1.Misses, s1.Accesses, s2.Misses, s2.Accesses)
			}
		})
	}
}

// TestShardsOneMatchesUnsharded: an explicit Shards=1 must be byte-identical
// to the default (unset) single-engine configuration — the pre-refactor
// path. The shard layer must add nothing at one shard: no router probes, no
// 2PC, the same instruction stream.
func TestShardsOneMatchesUnsharded(t *testing.T) {
	for _, name := range testWorkloads {
		t.Run(name, func(t *testing.T) {
			wl := smallWorkload(t, name)
			app, appL, kern, kernL := testImages(t, wl)
			run := func(shards int) (machine.Result, *cache.Stats) {
				cfg := configFor(smallWorkload(t, name), app, appL, kern, kernL)
				cfg.Shards = shards
				ic := cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 2})
				cfg.Sinks = []trace.Sink{ic}
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, ic.Stats()
			}
			rDefault, sDefault := run(0)
			rOne, sOne := run(1)
			if rDefault != rOne {
				t.Fatalf("Shards=1 diverges from the unsharded default:\n%+v\n%+v", rDefault, rOne)
			}
			if sDefault.Misses != sOne.Misses || sDefault.Accesses != sOne.Accesses {
				t.Fatalf("cache stats diverge: %d/%d vs %d/%d",
					sDefault.Misses, sDefault.Accesses, sOne.Misses, sOne.Accesses)
			}
			if rOne.CrossShard != 0 {
				t.Fatalf("cross-shard transactions on a single shard: %d", rOne.CrossShard)
			}
		})
	}
}

// TestDeadlockVictimAborts drives a contended cross-shard TPC-B mix whose
// opposing distributed transactions form genuine waits-for cycles spanning
// shards. The global deadlock detector must abort victims (exercising the
// txn_abort models under the machine), every retried transaction must still
// commit, and conservation must hold across the union of shards.
func TestDeadlockVictimAborts(t *testing.T) {
	// A roughly even local/remote mix maximizes cycle opportunities: local
	// transactions lock account-first while cross-shard ones lock their
	// home teller/branch first and the remote account last, so opposing
	// flows invert the order. (An all-remote mix is order-consistent and
	// deadlock-free.)
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 40})
	wl.CrossShardPct = 40
	app, appL, kern, kernL := testImages(t, wl)
	run := func() machine.Result {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.Shards = 2
		cfg.CPUs = 2
		cfg.ProcsPerCPU = 16
		cfg.WarmupTxns = 40
		cfg.Transactions = 800
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants after deadlock aborts: %v", err)
		}
		return res
	}
	r1 := run()
	if r1.Aborted == 0 || r1.Deadlocks == 0 {
		t.Fatalf("contended sharded mix produced no deadlock aborts: %+v", r1)
	}
	if r1.Committed != 800 {
		t.Fatalf("committed = %d; victims must retry to completion", r1.Committed)
	}
	// Victim selection and retry must be deterministic too.
	r2 := run()
	if r1 != r2 {
		t.Fatalf("deadlock-heavy runs diverge:\n%+v\n%+v", r1, r2)
	}
	t.Logf("aborts=%d deadlocks=%d cross-shard=%d conflicts=%d",
		r1.Aborted, r1.Deadlocks, r1.CrossShard, r1.LockConflicts)
}

// TestGroupCommitReducesLogBlocking pins the group-commit speed lever: under
// a commit-heavy mix at a fixed shard count, group commit must issue fewer
// physical log writes and spend less instruction-time blocked on the log
// than per-commit flushing; a batching window must also stay ahead of the
// per-commit baseline.
func TestGroupCommitReducesLogBlocking(t *testing.T) {
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 48, TellersPerBranch: 4, AccountsPerBranch: 100})
	app, appL, kern, kernL := testImages(t, wl)
	run := func(perCommit bool, window uint64) machine.Result {
		cfg := configFor(wl, app, appL, kern, kernL)
		cfg.Shards = 2
		cfg.CPUs = 4
		cfg.ProcsPerCPU = 16
		cfg.WarmupTxns = 40
		cfg.Transactions = 300
		cfg.PerCommitLogFlush = perCommit
		cfg.GroupCommitWindowInstr = window
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	perCommit := run(true, 0)
	group := run(false, 0)
	windowed := run(false, 40_000)
	if group.LogFlushes >= perCommit.LogFlushes {
		t.Fatalf("group commit did not reduce flushes: group=%d percommit=%d",
			group.LogFlushes, perCommit.LogFlushes)
	}
	if group.LogBlockedInstr >= perCommit.LogBlockedInstr {
		t.Fatalf("group commit did not reduce blocked-on-log time: group=%d percommit=%d",
			group.LogBlockedInstr, perCommit.LogBlockedInstr)
	}
	if windowed.LogBlockedInstr >= perCommit.LogBlockedInstr {
		t.Fatalf("windowed group commit fell behind per-commit flushing: windowed=%d percommit=%d",
			windowed.LogBlockedInstr, perCommit.LogBlockedInstr)
	}
	if windowed.LogFlushes >= group.LogFlushes {
		t.Fatalf("window did not batch beyond immediate group commit: windowed=%d group=%d",
			windowed.LogFlushes, group.LogFlushes)
	}
	t.Logf("flushes: percommit=%d group=%d windowed=%d; blocked instr: percommit=%d group=%d windowed=%d",
		perCommit.LogFlushes, group.LogFlushes, windowed.LogFlushes,
		perCommit.LogBlockedInstr, group.LogBlockedInstr, windowed.LogBlockedInstr)
}

// TestConfigValidation: misconfigurations must fail fast in New with clear
// errors, not panic mid-run.
func TestConfigValidation(t *testing.T) {
	wl := smallWorkload(t, "tpcb")
	app, appL, kern, kernL := testImages(t, wl)
	base := configFor(wl, app, appL, kern, kernL)
	cases := []struct {
		name string
		mut  func(*machine.Config)
		want string
	}{
		{"nil workload", func(c *machine.Config) { c.Workload = nil }, "Workload is required"},
		{"missing images", func(c *machine.Config) { c.AppImage = nil }, "images and layouts"},
		{"negative cpus", func(c *machine.Config) { c.CPUs = -1 }, "CPUs"},
		{"negative procs", func(c *machine.Config) { c.ProcsPerCPU = -2 }, "ProcsPerCPU"},
		{"negative shards", func(c *machine.Config) { c.Shards = -1 }, "Shards"},
		{"too many shards", func(c *machine.Config) { c.Shards = machine.MaxShards + 1 }, "exceeds the maximum"},
		{"unshardable workload", func(c *machine.Config) { c.Shards = 2; c.Workload = plainWorkload{wl} }, "does not support sharding"},
		{"negative transactions", func(c *machine.Config) { c.Transactions = -5 }, "Transactions"},
		{"negative warmup", func(c *machine.Config) { c.WarmupTxns = -5 }, "WarmupTxns"},
		{"negative pool", func(c *machine.Config) { c.BufferPoolPages = -1 }, "BufferPoolPages"},
		{"starved pool", func(c *machine.Config) { c.BufferPoolPages = 2 }, "pin working set"},
		{"window vs per-commit", func(c *machine.Config) {
			c.PerCommitLogFlush = true
			c.GroupCommitWindowInstr = 50_000
		}, "conflicts with GroupCommitWindowInstr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := machine.New(cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The base configuration itself must stay valid.
	if _, err := machine.New(base); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

// plainWorkload hides a workload's sharding support (validation test).
type plainWorkload struct{ workload.Workload }
