package machine

import (
	"math"
	"sort"

	"codelayout/internal/stats"
)

// LatencySummary condenses a per-transaction latency distribution into the
// percentiles a tail-latency SLO is written against. All values are
// simulated instruction-times (1 instruction-time ≈ 1 ns at the paper's
// 1 GHz clock). Percentiles are estimated from the log2-bucketed histogram
// (linear interpolation inside the bucket) and clamped to the exact observed
// maximum.
type LatencySummary struct {
	// N is the number of transactions observed (those that both started and
	// finished inside the measured phase; transactions straddling the
	// warmup/measured boundary are excluded, so N <= Result.Committed).
	N uint64
	// Mean is the average latency.
	Mean float64
	// P50, P95 and P99 are the latency percentiles.
	P50, P95, P99 uint64
	// Max is the exact slowest observed transaction.
	Max uint64
}

// TxnLatency is one (shard, transaction kind) cell of a run's latency
// breakdown.
type TxnLatency struct {
	// Shard is the home shard of the transactions in this cell.
	Shard int
	// Kind is the workload's transaction-kind label (workload.Labeler), or
	// the workload name for unlabeled instances.
	Kind string
	// Summary holds the cell's percentiles.
	Summary LatencySummary
	// Hist is the cell's log2-bucketed latency histogram.
	Hist *stats.Log2Hist
}

// latKey identifies one latency cell.
type latKey struct {
	shard int
	kind  string
}

// latRec accumulates one cell: the log2 histogram plus the exact sum and
// maximum the summary reports (the histogram alone would round them).
type latRec struct {
	hist *stats.Log2Hist
	sum  float64
	max  uint64
}

func (r *latRec) add(d uint64) {
	r.hist.Add(d)
	r.sum += float64(d)
	if d > r.max {
		r.max = d
	}
}

func (r *latRec) summary() LatencySummary {
	s := LatencySummary{
		N:   r.hist.N,
		P50: r.hist.Quantile(0.50),
		P95: r.hist.Quantile(0.95),
		P99: r.hist.Quantile(0.99),
		Max: r.max,
	}
	if s.N > 0 {
		s.Mean = r.sum / float64(s.N)
	}
	// Interpolated quantiles can overshoot the bucket's occupied range;
	// clamp to the exact observed maximum so P99 <= Max always holds.
	for _, p := range []*uint64{&s.P50, &s.P95, &s.P99} {
		if *p > s.Max {
			*p = s.Max
		}
	}
	return s
}

// recordLatency files one finished transaction's latency d (request
// generation through successful commit, deadlock retries and group-commit
// waits included) under its home shard and kind. Measured-phase
// transactions feed the result histograms; warmup transactions feed the
// per-shard histograms the tail-aware group-commit tuner reads. A
// transaction straddling the warmup/measured boundary (or finishing in the
// post-run drain) is recorded nowhere — its latency mixes phases.
func (m *Machine) recordLatency(shard int, kind string, startMeasured bool, d uint64) {
	switch {
	case m.measuring && startMeasured:
		k := latKey{shard: shard, kind: kind}
		r := m.lat[k]
		if r == nil {
			r = &latRec{hist: &stats.Log2Hist{}}
			m.lat[k] = r
		}
		r.add(d)
		if m.ro != nil {
			m.ro.windowKinds[kind]++
			if m.ro.postSwap != nil {
				m.ro.postSwap.add(d)
			}
		}
	case !m.warmupOver && !startMeasured:
		m.warmLat[shard].Add(d)
	}
}

// latencySummary merges every measured cell into the run-wide summary
// Result.Latency reports.
func (m *Machine) latencySummary() LatencySummary {
	all := latRec{hist: &stats.Log2Hist{}}
	for _, r := range m.lat {
		all.hist.Merge(r.hist)
		all.sum += r.sum
		if r.max > all.max {
			all.max = r.max
		}
	}
	return all.summary()
}

// LatencyByKind returns the measured-phase latency breakdown per home shard
// and transaction kind, ordered by (shard, kind). The histograms are copies;
// callers may keep them past the machine's lifetime.
func (m *Machine) LatencyByKind() []TxnLatency {
	keys := make([]latKey, 0, len(m.lat))
	for k := range m.lat {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].kind < keys[j].kind
	})
	out := make([]TxnLatency, 0, len(keys))
	for _, k := range keys {
		r := m.lat[k]
		out = append(out, TxnLatency{
			Shard:   k.shard,
			Kind:    k.kind,
			Summary: r.summary(),
			Hist:    r.hist.Clone(),
		})
	}
	return out
}

// ---- Tail-aware group-commit tuning (AutoGCTargetP99) ----

// p99WindowStep is the candidate-window granularity of the tail tuner, as a
// fraction of the log-write latency.
const p99WindowStep = 16

// modeledWait99 is the tuner's model of the 99th-percentile commit-path
// wait at batching window w, for a shard with mean inter-commit gap g and
// physical log-write latency L (all in instruction-times, as float64):
//
//	wait99(w) = 2·w + L + L·g/(g + 4·w)
//
// 2·w is the tail cost of the window itself: a 99th-percentile commit waits
// out its leader's full window, having already lost up to another window to
// the batch ahead. L is the physical write every commit ultimately waits
// on. The last term is batch chaining: with immediate flushes a commit that
// just misses a write parks through that write and then its own — an extra
// L at the tail — while a window spanning a few arrival gaps consolidates
// those arrivals into the open batch, a benefit that saturates once the
// window covers the gap (the 4·w). The minimum sits near
// (sqrt(2·L·g) − g)/4: a fraction of the arrival gap under load, and
// exactly 0 for lightly loaded shards (g >= 2·L), which keep immediate
// flushes rather than trading latency for batches that never form.
func modeledWait99(w, g, L float64) float64 {
	return 2*w + L + L*g/(g+4*w)
}

// tuneGroupCommitP99 sets each shard's batching window to the candidate
// minimizing the modeled p99 transaction latency: the shard's measured
// warmup latency histogram supplies the p99 baseline, the engine's observed
// inter-commit gaps supply the arrival process, and modeledWait99 supplies
// the commit-path delta of each candidate window. Candidates step in
// L/p99WindowStep increments from 0 up to min(2L, warmupP99/2) — the
// histogram caps the window so a shard never spends more than half its
// observed tail budget sleeping in the batcher. Ties keep the smaller
// window. A shard with no warmup commits (or no timed latencies) keeps the
// immediate-flush window.
func (m *Machine) tuneGroupCommitP99() {
	var elapsed uint64
	for _, c := range m.cpus {
		if c.clock > elapsed {
			elapsed = c.clock
		}
	}
	L := float64(m.cfg.LogWriteDelayInstr)
	step := m.cfg.LogWriteDelayInstr / p99WindowStep
	if step == 0 {
		step = 1
	}
	for i, e := range m.engs {
		e.GroupCommitWindow = 0
		warm := m.warmLat[i]
		if e.Committed == 0 || warm.N == 0 {
			continue
		}
		g := e.CommitGaps.Mean()
		if g <= 0 && elapsed > 0 {
			g = float64(elapsed) / float64(e.Committed)
		}
		if g <= 0 {
			continue
		}
		warmP99 := float64(warm.Quantile(0.99))
		maxW := 2 * m.cfg.LogWriteDelayInstr
		if cap99 := uint64(warmP99 / 2); cap99 < maxW {
			maxW = cap99
		}
		base := modeledWait99(0, g, L)
		best, bestP99 := uint64(0), math.Inf(1)
		for w := uint64(0); w <= maxW; w += step {
			p99 := warmP99 - base + modeledWait99(float64(w), g, L)
			if p99 < bestP99 {
				best, bestP99 = w, p99
			}
		}
		e.GroupCommitWindow = best
	}
}
