// Package machine is the full-system simulation layer (the SimOS-Alpha
// stand-in): it runs N server processes per CPU against one or more
// partitioned database engines, interleaves them deterministically (quantum
// expiry, blocking log writes, lock waits, timer interrupts), crosses into
// the modeled kernel at syscalls, and fans the resulting per-CPU
// instruction and data streams out to the attached cache simulators and
// collectors.
//
// With Shards > 1 the machine becomes a sharded multi-engine server: the
// workload's database is hash-partitioned across per-shard engines,
// transactions route through the instrumented shard router to their home
// engine, the configured cross-shard fraction commits through two-phase
// commit, and a shared waits-for graph detects distributed deadlocks,
// aborting victims through the modeled txn_abort path and retrying them.
//
// Processes are goroutines, but exactly one runs at a time: the scheduler
// and the running process hand control back and forth over unbuffered
// channels, so runs are fully deterministic for a given seed at every
// shard count.
package machine

import (
	"fmt"
	"math/rand"

	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/kernel"
	"codelayout/internal/predict"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/shard"
	"codelayout/internal/stats"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
)

// AutoGCMode selects how (and whether) the group-commit batching windows
// are auto-tuned from warmup observations.
type AutoGCMode int

const (
	// AutoGCOff disables auto-tuning: the windows come from
	// GroupCommitWindowInstr (or stay 0).
	AutoGCOff AutoGCMode = iota
	// AutoGCFlushCount sizes each shard's window from its warmup commit
	// arrival rate to batch autoGroupTarget commits per flush — the
	// throughput-oriented tuner (fewest physical log writes).
	AutoGCFlushCount
	// AutoGCTargetP99 sizes each shard's window to minimize the modeled
	// 99th-percentile transaction latency measured over the warmup latency
	// histogram — the tail-oriented tuner. Lightly loaded shards keep
	// immediate flushes; saturated shards widen the window to drain the
	// log queue.
	AutoGCTargetP99
)

// String implements fmt.Stringer (flags and reports).
func (m AutoGCMode) String() string {
	switch m {
	case AutoGCOff:
		return "off"
	case AutoGCFlushCount:
		return "flushcount"
	case AutoGCTargetP99:
		return "p99"
	}
	return fmt.Sprintf("AutoGCMode(%d)", int(m))
}

// Config describes one simulated run.
type Config struct {
	CPUs        int
	ProcsPerCPU int
	Seed        int64

	// Shards is the number of partitioned database engines behind the
	// router; 0 or 1 runs the single shared engine. Counts above 1 require
	// a workload implementing workload.ShardedWorkload.
	Shards int

	// WarmupTxns commit before measurement begins (caches and emitters
	// stay warm across the phase switch; only stat collection toggles).
	WarmupTxns int
	// Transactions is the measured committed-transaction count.
	Transactions int

	// Workload is the transaction mix to load and run; required.
	Workload workload.Workload
	// BufferPoolPages sizes each shard's cache; 0 = large enough for
	// everything.
	BufferPoolPages int

	// RecordLayouts, when set, installs a physical record layout per table
	// (table name → field definitions) on every engine before the workload
	// loads: the workload's loaders and accessors then encode and decode
	// records at these byte offsets instead of the schema's declared
	// (interleaved) ones. This is how the profile-guided record-layout pass
	// (internal/reclayout) applies a hot/cold field grouping — only data
	// addresses move; instruction streams are untouched. nil keeps each
	// workload's interleaved default.
	RecordLayouts map[string][]db.FieldDef

	// QuantumInstr is the scheduling timeslice in instructions.
	QuantumInstr uint64
	// TimerIntervalInstr is the clock-interrupt period in instructions.
	TimerIntervalInstr uint64
	// LogWriteDelayInstr is how long a log write keeps a process blocked,
	// in instruction-times (1 instruction ≈ 1 ns at the paper's 1 GHz).
	LogWriteDelayInstr uint64
	// PreadDelayInstr is the data-file read latency.
	PreadDelayInstr uint64
	// FetchStallPenaltyInstr, when nonzero, models instruction-fetch stalls
	// inline: each CPU tracks its own L1 instruction cache (64KB/64B/2-way,
	// shared between the app and kernel streams it actually fetches) and
	// every miss charges this many instruction-times to the CPU clock. That
	// makes code-layout quality visible in transaction latency — straight-
	// line fused layouts commit sooner, not just miss less — instead of only
	// in the passive cache sinks. 0 (the default) disables the inline cache;
	// runs are then bit-identical to builds without the model. The stall
	// advances the clock but not the scheduling quantum, and the per-CPU
	// cache is separate from Config.Sinks (which observe only the measured
	// phase, while the inline cache stays warm from load onward).
	FetchStallPenaltyInstr uint64
	// GroupCommitWindowInstr tunes group commit per shard: the flush
	// leader sleeps this long before writing, so commits arriving in the
	// window amortize into one flush. 0 makes leaders write as soon as
	// they arrive (followers still piggyback on the flush in flight).
	GroupCommitWindowInstr uint64
	// PerCommitLogFlush disables group commit entirely: every commit pays
	// its own blocking log write. The pre-group-commit baseline; conflicts
	// with GroupCommitWindowInstr.
	PerCommitLogFlush bool
	// AutoGroupCommit picks each shard's batching window from warmup
	// observations instead of a fixed GroupCommitWindowInstr. At the
	// warmup/measured switch, AutoGCFlushCount sets every shard's window to
	// (autoGroupTarget-1) mean inter-commit gaps capped at twice the
	// log-write latency (minimizing flush count), while AutoGCTargetP99
	// picks the window minimizing the modeled p99 transaction latency from
	// the shard's warmup latency histogram and commit arrival process (see
	// tuneGroupCommitP99). Warmup runs with an immediate-flush window; with
	// WarmupTxns = 0 there is nothing to observe and the windows stay 0.
	// Conflicts with PerCommitLogFlush and an explicit
	// GroupCommitWindowInstr.
	AutoGroupCommit AutoGCMode

	// PredictFastPath enables the predictive single-shard fast path on
	// sharded machines: transactions the predictor expects to stay local
	// skip the instrumented shard router and the 2PC coordinator and run on
	// their home engine's session alone. A misprediction aborts through the
	// modeled txn_abort path (like a deadlock victim) and retries on the
	// full distributed path. Requires Shards > 1, a workload implementing
	// workload.FastPath, and an app image built with
	// appmodel.Config.FastPath (the decision code is modeled too).
	PredictFastPath bool
	// Predictor overrides the fast path's model (tests inject stubs to
	// force mispredictions); nil uses predict.New(). The machine trains it
	// online from every finished transaction, warmup included, so by the
	// measured phase the model has seen the mix.
	Predictor workload.Predictor

	// ReoptimizeEveryTxns enables continuous re-optimization: every N
	// measured commits the machine compares the live transaction-kind mix
	// against the training mix (TrainKindFreq, or the first measured
	// window) and, once the L1 distance exceeds DriftThreshold, retrains
	// through the Reoptimize hook on a clean window of the online profile
	// and hot-swaps every app emitter to the new layout at an epoch fence —
	// all processes parked at a transaction boundary, where strict 2PL
	// guarantees no locks are held and every emitter is idle. 0 disables
	// the loop entirely; disabled runs are bit-identical to builds without
	// the feature.
	ReoptimizeEveryTxns int
	// DriftThreshold is the L1 kind-mix distance (0..2) that triggers a
	// retrain; 0 selects DefaultDriftThreshold.
	DriftThreshold float64
	// Reoptimize retrains the app layout from the accumulated online
	// profile (a private copy; the hook may keep it). It runs on the
	// scheduler's goroutine between transactions, modeling a background
	// trainer whose result lands one check period after drift detection.
	// Required when ReoptimizeEveryTxns > 0.
	Reoptimize func(*profile.Profile) (*program.Layout, error)
	// TrainKindFreq is the kind mix the current layout was trained on (the
	// drift reference). Unset, the first measured window stands in.
	TrainKindFreq map[string]float64

	// AppImage/AppLayout and KernImage/KernLayout are the binaries to run.
	AppImage   *codegen.Image
	AppLayout  *program.Layout
	KernImage  *codegen.Image
	KernLayout *program.Layout

	// Sinks receive measured-phase fetch runs; DataSinks receive measured
	// data references.
	Sinks     []trace.Sink
	DataSinks []trace.DataSink
	// AppCollector and KernCollector receive measured-phase block events
	// (profiling).
	AppCollector  codegen.Collector
	KernCollector codegen.Collector
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 1
	}
	if c.ProcsPerCPU <= 0 {
		c.ProcsPerCPU = 8
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Transactions <= 0 {
		c.Transactions = 100
	}
	if c.QuantumInstr == 0 {
		c.QuantumInstr = 200_000
	}
	if c.TimerIntervalInstr == 0 {
		c.TimerIntervalInstr = 1_000_000
	}
	if c.LogWriteDelayInstr == 0 {
		c.LogWriteDelayInstr = 120_000
	}
	if c.PreadDelayInstr == 0 {
		c.PreadDelayInstr = 250_000
	}
	if c.BufferPoolPages == 0 {
		// Hold every loaded table plus headroom for tables that grow during
		// the run (history, orders), reproducing the paper's cached setup.
		// Each shard holds roughly 1/Shards of the data.
		c.BufferPoolPages = c.Workload.DataPages()/c.Shards + 4096
	}
	return c
}

// Result reports a run's outcome.
type Result struct {
	Committed uint64
	// Aborted counts measured-phase deadlock-victim aborts (the aborted
	// transactions were retried and are also counted in Committed once
	// they succeeded).
	Aborted uint64
	// CrossShard counts measured-phase transactions that touched a remote
	// shard (committed through two-phase commit).
	CrossShard uint64
	// Predicted counts measured-phase transactions committed on the
	// predictive single-shard fast path (router and 2PC coordinator
	// skipped); Mispredicted counts fast-path attempts that discovered a
	// remote touch, aborted, and retried distributed (those retries are
	// also counted in Aborted, and in Committed once they succeeded).
	Predicted      uint64
	Mispredicted   uint64
	AppInstrs      uint64
	KernelInstrs   uint64
	IdleInstrs     uint64
	BusyInstrs     uint64 // app + kernel, summed over CPUs
	GroupedCommits uint64
	LogFlushes     uint64
	// LogBlockedInstr is the measured-phase instruction-time processes
	// spent blocked on the log: leaders' group-commit windows and physical
	// writes, plus followers parked waiting for a flush in flight.
	LogBlockedInstr uint64
	LockConflicts   uint64
	// Deadlocks counts deadlock victims across all shards from load
	// through the end of the measured phase (warmup included; the post-run
	// drain to quiescence is not, as the engine counters are captured
	// before draining — like LogFlushes and LockConflicts).
	Deadlocks uint64
	BufMisses uint64
	// FetchStallInstr is the measured-phase instruction-time the CPUs spent
	// stalled on L1 instruction-cache misses (zero unless
	// Config.FetchStallPenaltyInstr enables the inline fetch-stall model).
	FetchStallInstr uint64
	// Reopts counts completed layout hot-swaps (Config.ReoptimizeEveryTxns).
	Reopts uint64
	// SwapStallInstr is the instruction-time processes spent parked at
	// epoch fences waiting for the layout swap — the measured cost of the
	// transition.
	SwapStallInstr uint64
	// PreSwapP99 is the measured p99 at the moment of the most recent
	// hot-swap; PostSwapP99 is the p99 of transactions completed after it
	// (both 0 when no swap happened).
	PreSwapP99  uint64
	PostSwapP99 uint64
	// Latency summarizes measured-phase per-transaction latency in
	// instruction-times: request generation through successful commit,
	// deadlock-abort retries and time blocked on the group-commit window
	// included. Machine.LatencyByKind breaks it down per shard and
	// transaction kind.
	Latency LatencySummary
}

// KernelFrac returns the kernel share of busy instructions.
func (r Result) KernelFrac() float64 {
	if r.BusyInstrs == 0 {
		return 0
	}
	return float64(r.KernelInstrs) / float64(r.BusyInstrs)
}

type procState int

const (
	stRunnable procState = iota
	stRunning
	stBlockedIO
	stBlockedWait
	stDead
)

type cmd int

const (
	cmdRun cmd = iota
	cmdKill
)

type yieldKind int

const (
	yTxnDone yieldKind = iota
	yQuantum
	yBlockIO
	yWait
	yDead
)

type yieldMsg struct {
	kind     yieldKind
	ioDelay  uint64
	panicMsg string
}

type killSentinelType struct{}

type proc struct {
	id  int
	cpu *cpu
	// sessions holds one engine session per shard (all sharing the
	// process's emitter as probe); single-shard machines use sessions[0].
	sessions []*db.Session
	emit     *codegen.Emitter
	client   *rand.Rand
	state    procState
	wakeAt   uint64
	budget   int64
	resume   chan cmd
	yield    chan yieldMsg

	// logParked/logParkAt time waits on group-commit queues for the
	// blocked-on-log accounting; logParkMeasured records the phase at park
	// time, so waits straddling the warmup/measured (or measured/drain)
	// boundary never leak foreign time into the measured counter.
	logParked       bool
	logParkMeasured bool
	logParkAt       uint64

	// forceSlow pins the current transaction to the full distributed path
	// after a fast-path misprediction (reset per generated request), so the
	// deterministic retry cannot mispredict forever.
	forceSlow bool
}

// inCritical reports whether any of the process's sessions is inside a
// latch-style critical section (at most one can be — the process runs one
// transaction at a time, even a distributed one).
func (p *proc) inCritical() bool {
	for _, s := range p.sessions {
		if s.InCritical() {
			return true
		}
	}
	return false
}

// inTxn reports whether any session has a transaction in flight.
func (p *proc) inTxn() bool {
	for _, s := range p.sessions {
		if s.Txn() != nil {
			return true
		}
	}
	return false
}

type cpu struct {
	id        int
	clock     uint64
	idle      uint64
	runq      []*proc
	kern      *codegen.Emitter
	nextTimer uint64
	current   *proc
	// blocked-IO procs pinned here, for wake scanning.
	blocked []*proc
	// l1i is the inline per-CPU instruction cache of the fetch-stall model
	// (nil unless Config.FetchStallPenaltyInstr is set).
	l1i *cache.ICache
}

// Machine is one configured simulation.
type Machine struct {
	cfg   Config
	graph *db.WaitGraph
	engs  []*db.Engine
	inst  workload.Instance        // single-shard machines
	sinst workload.ShardedInstance // sharded machines (Shards > 1)
	// fastInst/pred drive the predictive single-shard fast path (nil
	// unless Config.PredictFastPath).
	fastInst workload.FastPath
	pred     workload.Predictor
	cpus     []*cpu
	procs    []*proc

	measuring bool
	// warmupOver flips (permanently) at the warmup/measured switch, so the
	// post-run drain cannot be mistaken for warmup by the latency recorder.
	warmupOver    bool
	warmCommitted int
	committed     int
	res           Result
	failure       error

	// ro carries the continuous re-optimization loop; nil unless
	// Config.ReoptimizeEveryTxns > 0, and every hook checks for nil first,
	// so disabled runs take exactly the historical paths.
	ro *reoptState

	// lat accumulates measured-phase latency per (home shard, txn kind);
	// warmLat accumulates warmup latency per home shard for the tail-aware
	// group-commit tuner. kindOf labels inputs (workload.Labeler, or the
	// workload name).
	lat     map[latKey]*latRec
	warmLat []*stats.Log2Hist
	kindOf  func(workload.Input) string
}

// New builds the machine: per-shard engines, the loaded (and, when sharded,
// partitioned) workload database, and processes bound to emitters over the
// configured layouts. The configuration is validated up front; see
// Config.Validate.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg, graph: db.NewWaitGraph(), lat: make(map[latKey]*latRec)}
	for i := 0; i < cfg.Shards; i++ {
		m.warmLat = append(m.warmLat, &stats.Log2Hist{})
	}
	graph := m.graph
	for i := 0; i < cfg.Shards; i++ {
		m.engs = append(m.engs, db.NewEngine(db.Config{
			BufferPoolPages:   cfg.BufferPoolPages,
			Env:               (*machineEnv)(m),
			Shard:             i,
			Graph:             graph,
			GroupCommitWindow: cfg.GroupCommitWindowInstr,
			PerCommitFlush:    cfg.PerCommitLogFlush,
			PageLimit:         pageLimit(cfg.Shards),
			PageStride:        pageStride(cfg.Shards),
		}))
	}
	for _, e := range m.engs {
		if err := e.SetFieldHints(cfg.RecordLayouts); err != nil {
			return nil, err
		}
	}
	if cfg.Shards > 1 {
		sw := cfg.Workload.(workload.ShardedWorkload) // checked by Validate
		sinst, err := sw.LoadSharded(m.engs)
		if err != nil {
			return nil, err
		}
		m.sinst = sinst
		if cfg.PredictFastPath {
			fp, ok := sinst.(workload.FastPath)
			if !ok {
				return nil, fmt.Errorf("machine: workload %q does not implement workload.FastPath (required by PredictFastPath)",
					cfg.Workload.Name())
			}
			m.fastInst = fp
			m.pred = cfg.Predictor
			if m.pred == nil {
				m.pred = predict.New()
			}
		}
	} else {
		inst, err := cfg.Workload.Load(m.engs[0])
		if err != nil {
			return nil, err
		}
		m.inst = inst
	}
	var lab workload.Labeler
	if m.sinst != nil {
		lab, _ = m.sinst.(workload.Labeler)
	} else {
		lab, _ = m.inst.(workload.Labeler)
	}
	name := cfg.Workload.Name()
	m.kindOf = func(in workload.Input) string {
		if lab != nil {
			return lab.KindOf(in)
		}
		return name
	}

	for c := 0; c < cfg.CPUs; c++ {
		cp := &cpu{id: c, nextTimer: cfg.TimerIntervalInstr}
		if cfg.FetchStallPenaltyInstr > 0 {
			cp.l1i = cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2})
		}
		cp.kern = codegen.NewEmitter(cfg.KernImage, cfg.KernLayout, cfg.Seed*7919+int64(c))
		kcpu := cp
		cp.kern.Sink = func(addr uint64, words int32) { m.kernelFetch(kcpu, addr, words) }
		if cfg.KernCollector != nil {
			cp.kern.Collector = &gatedCollector{m: m, next: cfg.KernCollector}
		}
		m.cpus = append(m.cpus, cp)
	}

	if cfg.ReoptimizeEveryTxns > 0 {
		m.ro = newReoptState(cfg)
	}

	pid := 0
	for c := 0; c < cfg.CPUs; c++ {
		for i := 0; i < cfg.ProcsPerCPU; i++ {
			pid++
			p := &proc{
				id:     pid,
				cpu:    m.cpus[c],
				client: rand.New(rand.NewSource(cfg.Seed*31 + int64(pid))),
				resume: make(chan cmd),
				yield:  make(chan yieldMsg),
				state:  stRunnable,
			}
			p.emit = codegen.NewEmitter(cfg.AppImage, cfg.AppLayout, cfg.Seed*17+int64(pid))
			pp := p
			p.emit.Sink = func(addr uint64, words int32) { m.appFetch(pp, addr, words) }
			p.emit.OnData = func(addr uint64, bytes int, write bool) { m.data(pp, addr, bytes, write) }
			p.emit.OnSyscall = func(name string) { m.syscall(pp, name) }
			var col codegen.Collector
			if cfg.AppCollector != nil {
				col = &gatedCollector{m: m, next: cfg.AppCollector}
			}
			if m.ro != nil {
				// The online profile observes every phase ungated; it is
				// reset to a clean window when drift is detected, so the
				// retrainer only ever sees post-drift behavior.
				if col != nil {
					col = multiCollector{m.ro, col}
				} else {
					col = m.ro
				}
			}
			if col != nil {
				p.emit.Collector = col
			}
			for s := 0; s < cfg.Shards; s++ {
				p.sessions = append(p.sessions, m.engs[s].NewSession(p.id, p.emit))
			}
			m.cpus[c].runq = append(m.cpus[c].runq, p)
			m.procs = append(m.procs, p)
		}
	}
	return m, nil
}

// autoGroupTarget is the commit-group size AutoGroupCommit aims to batch
// into one flush: the window is sized to span target-1 mean inter-commit
// gaps, so on average that many later commits join the leader's write.
const autoGroupTarget = 4

// tuneGroupCommit applies the configured auto-tuner at the warmup/measured
// switch (called exactly once).
func (m *Machine) tuneGroupCommit() {
	switch m.cfg.AutoGroupCommit {
	case AutoGCFlushCount:
		m.tuneGroupCommitFlush()
	case AutoGCTargetP99:
		m.tuneGroupCommitP99()
	}
}

// tuneGroupCommitFlush sets each shard's batching window from the commit
// arrival rate observed during warmup. A shard that committed nothing keeps
// the immediate-flush window — there is no arrival rate to amortize against.
func (m *Machine) tuneGroupCommitFlush() {
	var elapsed uint64
	for _, c := range m.cpus {
		if c.clock > elapsed {
			elapsed = c.clock
		}
	}
	maxWindow := 2 * m.cfg.LogWriteDelayInstr
	for _, e := range m.engs {
		var w uint64
		if e.Committed > 0 && elapsed > 0 {
			gap := elapsed / e.Committed
			w = (autoGroupTarget - 1) * gap
			if w > maxWindow {
				w = maxWindow
			}
		}
		e.GroupCommitWindow = w
	}
}

// GroupCommitWindows returns the per-shard batching windows currently in
// force (after a run with AutoGroupCommit, the tuned values).
func (m *Machine) GroupCommitWindows() []uint64 {
	ws := make([]uint64, len(m.engs))
	for i, e := range m.engs {
		ws[i] = e.GroupCommitWindow
	}
	return ws
}

// Instance exposes the loaded workload of a single-shard machine (tests and
// verification); nil when sharded.
func (m *Machine) Instance() workload.Instance { return m.inst }

// FieldProfile harvests the field-access profile the engines tallied during
// the run: table → field → read/write counts, merged across shards. Only
// field-instrumented accesses (db.Table.FetchFields/UpdateFields) tally, so
// loaders and verification readers never pollute the profile. The result is
// what reclayout.Decide consumes to group hot fields.
func (m *Machine) FieldProfile() map[string]map[string]db.FieldAccess {
	out := make(map[string]map[string]db.FieldAccess)
	for _, e := range m.engs {
		for name, fields := range e.FieldProfile() {
			dst, ok := out[name]
			if !ok {
				dst = make(map[string]db.FieldAccess, len(fields))
				out[name] = dst
			}
			for field, a := range fields {
				cur := dst[field]
				cur.Reads += a.Reads
				cur.Writes += a.Writes
				dst[field] = cur
			}
		}
	}
	return out
}

// Engines exposes the per-shard engines (tests and verification).
func (m *Machine) Engines() []*db.Engine { return m.engs }

// CheckInvariants verifies the workload's consistency invariants through
// uninstrumented sessions (tests, post-run verification). On sharded
// machines it audits the union of shards, so cross-shard conservation must
// hold globally.
func (m *Machine) CheckInvariants() error {
	if m.sinst != nil {
		ss := make([]*db.Session, len(m.engs))
		for i, e := range m.engs {
			ss[i] = e.NewSession(0, nil)
		}
		return m.sinst.Check(ss)
	}
	return m.inst.Check(m.engs[0].NewSession(0, nil))
}

// gatedCollector forwards block events only during the measured phase.
type gatedCollector struct {
	m    *Machine
	next codegen.Collector
}

func (g *gatedCollector) Block(prev, cur program.BlockID) {
	if g.m.measuring {
		g.next.Block(prev, cur)
	}
}

// multiCollector fans one emitter's block events out to several collectors
// (the online re-optimization profile alongside a configured AppCollector).
type multiCollector []codegen.Collector

func (mc multiCollector) Block(prev, cur program.BlockID) {
	for _, c := range mc {
		c.Block(prev, cur)
	}
}

// ---- Emitter hooks (run on the current process's goroutine) ----

func (m *Machine) appFetch(p *proc, addr uint64, words int32) {
	c := p.cpu
	c.clock += uint64(words)
	p.budget -= int64(words)
	if c.l1i != nil {
		r := trace.FetchRun{Addr: addr, Words: words, CPU: uint8(c.id), PID: uint16(p.id)}
		if miss := c.l1i.FetchMisses(r); miss > 0 {
			stall := uint64(miss) * m.cfg.FetchStallPenaltyInstr
			c.clock += stall
			if m.measuring {
				m.res.FetchStallInstr += stall
			}
		}
	}
	if m.measuring {
		m.res.AppInstrs += uint64(words)
		r := trace.FetchRun{Addr: addr, Words: words, CPU: uint8(c.id), PID: uint16(p.id)}
		for _, s := range m.cfg.Sinks {
			s.Fetch(r)
		}
	}
	if c.clock >= c.nextTimer {
		c.nextTimer += m.cfg.TimerIntervalInstr
		c.kern.RunAuto(kernel.SvcTimer)
	}
	// Preemption defers while the session holds an index latch (critical
	// section); the process yields at the next fetch after releasing it.
	if p.budget <= 0 && !p.inCritical() {
		p.doYield(yieldMsg{kind: yQuantum})
	}
}

func (m *Machine) kernelFetch(c *cpu, addr uint64, words int32) {
	c.clock += uint64(words)
	if c.l1i != nil {
		pid := uint16(0)
		if c.current != nil {
			pid = uint16(c.current.id)
		}
		r := trace.FetchRun{Addr: addr, Words: words, CPU: uint8(c.id), PID: pid, Kernel: true}
		if miss := c.l1i.FetchMisses(r); miss > 0 {
			stall := uint64(miss) * m.cfg.FetchStallPenaltyInstr
			c.clock += stall
			if m.measuring {
				m.res.FetchStallInstr += stall
			}
		}
	}
	if m.measuring {
		m.res.KernelInstrs += uint64(words)
		pid := uint16(0)
		if c.current != nil {
			pid = uint16(c.current.id)
		}
		r := trace.FetchRun{Addr: addr, Words: words, CPU: uint8(c.id), PID: pid, Kernel: true}
		for _, s := range m.cfg.Sinks {
			s.Fetch(r)
		}
	}
}

func (m *Machine) data(p *proc, addr uint64, bytes int, write bool) {
	if !m.measuring {
		return
	}
	d := trace.DataRef{Addr: addr, Bytes: int32(bytes), CPU: uint8(p.cpu.id), PID: uint16(p.id), Write: write}
	for _, s := range m.cfg.DataSinks {
		s.Data(d)
	}
}

func (m *Machine) syscall(p *proc, name string) {
	svc, err := kernel.ServiceFor(name)
	if err != nil {
		panic(err)
	}
	p.cpu.kern.RunAuto(svc)
	switch name {
	case "log_write":
		if m.measuring {
			m.res.LogBlockedInstr += m.cfg.LogWriteDelayInstr
		}
		p.doYield(yieldMsg{kind: yBlockIO, ioDelay: m.cfg.LogWriteDelayInstr})
	case "log_window":
		// The group-commit leader sleeps out the batching window so
		// concurrent commits join its flush. The window belongs to the
		// shard whose flush this is — with auto-tuning, shards differ.
		delay := m.cfg.GroupCommitWindowInstr
		for _, s := range p.sessions {
			if w, ok := s.Eng.TakeWindowPending(); ok {
				delay = w
				break
			}
		}
		if m.measuring {
			m.res.LogBlockedInstr += delay
		}
		p.doYield(yieldMsg{kind: yBlockIO, ioDelay: delay})
	case "pread":
		if p.inCritical() {
			// A read under an index latch completes synchronously: the
			// process keeps the CPU (and the latch) while the read's
			// latency is charged to the clock, so no other process can
			// observe a half-modified tree.
			p.cpu.clock += m.cfg.PreadDelayInstr
		} else {
			p.doYield(yieldMsg{kind: yBlockIO, ioDelay: m.cfg.PreadDelayInstr})
		}
		// log_wait and lock_sleep park via Env.Wait right after.
	}
}

// machineEnv implements db.Env on top of the scheduler.
type machineEnv Machine

type waitList struct {
	procs []*proc
}

// Wait implements db.Env.
func (e *machineEnv) Wait(q *db.WaitQueue) {
	m := (*Machine)(e)
	p := m.currentProc()
	if p == nil {
		panic("machine: Wait with no running process")
	}
	if q.Tag == nil {
		q.Tag = &waitList{}
	}
	wl := q.Tag.(*waitList)
	wl.procs = append(wl.procs, p)
	if q.Name == "log" {
		// Followers parked on a group commit count toward the
		// blocked-on-log time until the leader's flush releases them.
		p.logParked = true
		p.logParkMeasured = m.measuring
		p.logParkAt = p.cpu.clock
	}
	p.doYield(yieldMsg{kind: yWait})
}

// Now implements db.Clock: the running process's CPU clock, so the engines
// can timestamp commits. Outside a scheduled process (load, invariant
// checks) it returns 0, which the engine treats as "no clock".
func (e *machineEnv) Now() uint64 {
	if p := (*Machine)(e).currentProc(); p != nil {
		return p.cpu.clock
	}
	return 0
}

// Wake implements db.Env.
func (e *machineEnv) Wake(q *db.WaitQueue) {
	m := (*Machine)(e)
	if q.Tag == nil {
		return
	}
	wl := q.Tag.(*waitList)
	for _, p := range wl.procs {
		if p.state == stBlockedWait {
			p.state = stRunnable
			p.cpu.runq = append(p.cpu.runq, p)
		}
		// A runnable process is no longer blocked: drop its waits-for edge
		// now, not when it resumes, so the deadlock detector never walks a
		// stale edge into a phantom cycle.
		m.graph.ClearWait(p.id)
		if p.logParked {
			// Charged only for waits lying entirely inside the measured
			// phase (parked and woken while measuring).
			if m.measuring && p.logParkMeasured && p.cpu.clock > p.logParkAt {
				m.res.LogBlockedInstr += p.cpu.clock - p.logParkAt
			}
			p.logParked = false
		}
	}
	wl.procs = wl.procs[:0]
}

// currentProc returns the process currently on a CPU (nil when the
// scheduler itself holds control — load, between steps).
func (m *Machine) currentProc() *proc {
	for _, c := range m.cpus {
		if c.current != nil && c.current.state == stRunning {
			return c.current
		}
	}
	return nil
}

// ---- Process goroutine ----

func (p *proc) run(m *Machine) {
	defer func() {
		msg := yieldMsg{kind: yDead}
		if r := recover(); r != nil {
			if _, kill := r.(killSentinelType); !kill {
				msg.panicMsg = fmt.Sprint(r)
			}
		}
		p.yield <- msg
	}()
	p.waitRun()
	for {
		var in workload.Input
		if m.sinst != nil {
			in = m.sinst.GenInput(p.client)
		} else {
			in = m.inst.GenInput(p.client)
		}
		// Latency is stamped on the process's CPU clock from request
		// generation to successful commit, so deadlock-abort retries and
		// every block along the way (locks, group-commit windows, log
		// writes, CPU queueing) are part of the transaction's latency.
		home := 0
		if m.sinst != nil {
			home = m.sinst.Home(in)
		}
		start := p.cpu.clock
		startMeasured := m.measuring
		p.forceSlow = false
		// A deadlock victim aborts (its locks release, unblocking the
		// cycle) and retries the same request, as TP monitors resubmit
		// aborted transactions. The victim yields its CPU before each
		// retry: an immediate retry could re-acquire its first locks
		// before the wounded party ever resumes, re-forming the same
		// cycle indefinitely (victim back-off, deterministic).
		for !p.tryTxn(m, in) {
			p.doYield(yieldMsg{kind: yQuantum})
		}
		m.recordLatency(home, m.kindOf(in), startMeasured, p.cpu.clock-start)
		if m.fastInst != nil {
			// Online training: fold the committed transaction's observed
			// outcome back into the model (and emit the modeled table
			// update). Warmup transactions train too, so the model is warm
			// when measurement starts.
			remote := m.sinst.Remote(in)
			predict.Train(p.emit, home, remote)
			m.pred.Observe(m.fastInst.Class(in), home, remote)
		}
		p.doYield(yieldMsg{kind: yTxnDone})
	}
}

// tryTxn routes and executes one transaction. It reports false when the
// attempt must be retried: the process was chosen as a deadlock victim, or
// its fast-path attempt discovered a remote touch. Either way the engine's
// longjmp (db.ErrDeadlock or workload.ErrMispredict) is recovered here, the
// emitter reset, and every in-flight branch of the transaction aborted
// through the instrumented txn_abort path; a misprediction additionally
// pins the retry to the full distributed path.
func (p *proc) tryTxn(m *Machine, in workload.Input) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch r {
		case db.ErrDeadlock:
		case workload.ErrMispredict:
			p.forceSlow = true
			if m.measuring {
				m.res.Mispredicted++
			}
		default:
			panic(r)
		}
		p.emit.Reset()
		for _, s := range p.sessions {
			if s.Txn() != nil {
				s.Abort()
			}
		}
		if m.measuring {
			m.res.Aborted++
		}
	}()
	if m.sinst == nil {
		m.inst.RunTxn(p.sessions[0], in)
		return true
	}
	home := m.sinst.Home(in)
	if m.fastInst != nil && !p.forceSlow {
		// The fast-path decision replaces the router for predicted-local
		// transactions: a prediction-table probe costing a dozen modeled
		// instructions against the router's library-dispatching hundreds.
		local := m.pred.Local(m.fastInst.Class(in), home)
		predict.Check(p.emit, home, local)
		if local {
			m.fastInst.RunLocal(p.sessions[home], in)
			if m.measuring {
				m.res.Predicted++
			}
			return true
		}
	}
	remote := m.sinst.Remote(in)
	shard.Route(p.emit, home, remote)
	m.sinst.RunTxn(p.sessions, in)
	if remote && m.measuring {
		m.res.CrossShard++
	}
	return true
}

func (p *proc) waitRun() {
	if c := <-p.resume; c == cmdKill {
		panic(killSentinelType{})
	}
}

func (p *proc) doYield(msg yieldMsg) {
	p.yield <- msg
	p.waitRun()
}
