// Package machine is the full-system simulation layer (the SimOS-Alpha
// stand-in): it runs N server processes per CPU against the shared database
// engine, interleaves them deterministically (quantum expiry, blocking log
// writes, lock waits, timer interrupts), crosses into the modeled kernel at
// syscalls, and fans the resulting per-CPU instruction and data streams out
// to the attached cache simulators and collectors.
//
// Processes are goroutines, but exactly one runs at a time: the scheduler
// and the running process hand control back and forth over unbuffered
// channels, so runs are fully deterministic for a given seed.
package machine

import (
	"fmt"
	"math/rand"

	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/kernel"
	"codelayout/internal/program"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
)

// Config describes one simulated run.
type Config struct {
	CPUs        int
	ProcsPerCPU int
	Seed        int64

	// WarmupTxns commit before measurement begins (caches and emitters
	// stay warm across the phase switch; only stat collection toggles).
	WarmupTxns int
	// Transactions is the measured committed-transaction count.
	Transactions int

	// Workload is the transaction mix to load and run; required.
	Workload workload.Workload
	// BufferPoolPages sizes the cache; 0 = large enough for everything.
	BufferPoolPages int

	// QuantumInstr is the scheduling timeslice in instructions.
	QuantumInstr uint64
	// TimerIntervalInstr is the clock-interrupt period in instructions.
	TimerIntervalInstr uint64
	// LogWriteDelayInstr is how long a log write keeps a process blocked,
	// in instruction-times (1 instruction ≈ 1 ns at the paper's 1 GHz).
	LogWriteDelayInstr uint64
	// PreadDelayInstr is the data-file read latency.
	PreadDelayInstr uint64

	// AppImage/AppLayout and KernImage/KernLayout are the binaries to run.
	AppImage   *codegen.Image
	AppLayout  *program.Layout
	KernImage  *codegen.Image
	KernLayout *program.Layout

	// Sinks receive measured-phase fetch runs; DataSinks receive measured
	// data references.
	Sinks     []trace.Sink
	DataSinks []trace.DataSink
	// AppCollector and KernCollector receive measured-phase block events
	// (profiling).
	AppCollector  codegen.Collector
	KernCollector codegen.Collector
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 1
	}
	if c.ProcsPerCPU <= 0 {
		c.ProcsPerCPU = 8
	}
	if c.Transactions <= 0 {
		c.Transactions = 100
	}
	if c.QuantumInstr == 0 {
		c.QuantumInstr = 200_000
	}
	if c.TimerIntervalInstr == 0 {
		c.TimerIntervalInstr = 1_000_000
	}
	if c.LogWriteDelayInstr == 0 {
		c.LogWriteDelayInstr = 120_000
	}
	if c.PreadDelayInstr == 0 {
		c.PreadDelayInstr = 250_000
	}
	if c.BufferPoolPages == 0 {
		// Hold every loaded table plus headroom for tables that grow during
		// the run (history, orders), reproducing the paper's cached setup.
		c.BufferPoolPages = c.Workload.DataPages() + 4096
	}
	return c
}

// Result reports a run's outcome.
type Result struct {
	Committed      uint64
	AppInstrs      uint64
	KernelInstrs   uint64
	IdleInstrs     uint64
	BusyInstrs     uint64 // app + kernel, summed over CPUs
	GroupedCommits uint64
	LogFlushes     uint64
	LockConflicts  uint64
	BufMisses      uint64
}

// KernelFrac returns the kernel share of busy instructions.
func (r Result) KernelFrac() float64 {
	if r.BusyInstrs == 0 {
		return 0
	}
	return float64(r.KernelInstrs) / float64(r.BusyInstrs)
}

type procState int

const (
	stRunnable procState = iota
	stRunning
	stBlockedIO
	stBlockedWait
	stDead
)

type cmd int

const (
	cmdRun cmd = iota
	cmdKill
)

type yieldKind int

const (
	yTxnDone yieldKind = iota
	yQuantum
	yBlockIO
	yWait
	yDead
)

type yieldMsg struct {
	kind     yieldKind
	ioDelay  uint64
	panicMsg string
}

type killSentinelType struct{}

type proc struct {
	id     int
	cpu    *cpu
	sess   *db.Session
	emit   *codegen.Emitter
	client *rand.Rand
	state  procState
	wakeAt uint64
	budget int64
	resume chan cmd
	yield  chan yieldMsg
}

type cpu struct {
	id        int
	clock     uint64
	idle      uint64
	runq      []*proc
	kern      *codegen.Emitter
	nextTimer uint64
	current   *proc
	// blocked-IO procs pinned here, for wake scanning.
	blocked []*proc
}

// Machine is one configured simulation.
type Machine struct {
	cfg   Config
	eng   *db.Engine
	inst  workload.Instance
	cpus  []*cpu
	procs []*proc

	measuring     bool
	warmCommitted int
	committed     int
	res           Result
	failure       error
}

// New builds the machine: engine, loaded workload database, processes bound
// to emitters over the configured layouts.
func New(cfg Config) (*Machine, error) {
	if cfg.AppImage == nil || cfg.AppLayout == nil || cfg.KernImage == nil || cfg.KernLayout == nil {
		return nil, fmt.Errorf("machine: images and layouts are required")
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("machine: a workload is required")
	}
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg}
	m.eng = db.NewEngine(db.Config{BufferPoolPages: cfg.BufferPoolPages, Env: (*machineEnv)(m)})
	inst, err := cfg.Workload.Load(m.eng)
	if err != nil {
		return nil, err
	}
	m.inst = inst

	for c := 0; c < cfg.CPUs; c++ {
		cp := &cpu{id: c, nextTimer: cfg.TimerIntervalInstr}
		cp.kern = codegen.NewEmitter(cfg.KernImage, cfg.KernLayout, cfg.Seed*7919+int64(c))
		kcpu := cp
		cp.kern.Sink = func(addr uint64, words int32) { m.kernelFetch(kcpu, addr, words) }
		if cfg.KernCollector != nil {
			cp.kern.Collector = &gatedCollector{m: m, next: cfg.KernCollector}
		}
		m.cpus = append(m.cpus, cp)
	}

	pid := 0
	for c := 0; c < cfg.CPUs; c++ {
		for i := 0; i < cfg.ProcsPerCPU; i++ {
			pid++
			p := &proc{
				id:     pid,
				cpu:    m.cpus[c],
				client: rand.New(rand.NewSource(cfg.Seed*31 + int64(pid))),
				resume: make(chan cmd),
				yield:  make(chan yieldMsg),
				state:  stRunnable,
			}
			p.emit = codegen.NewEmitter(cfg.AppImage, cfg.AppLayout, cfg.Seed*17+int64(pid))
			pp := p
			p.emit.Sink = func(addr uint64, words int32) { m.appFetch(pp, addr, words) }
			p.emit.OnData = func(addr uint64, bytes int, write bool) { m.data(pp, addr, bytes, write) }
			p.emit.OnSyscall = func(name string) { m.syscall(pp, name) }
			if cfg.AppCollector != nil {
				p.emit.Collector = &gatedCollector{m: m, next: cfg.AppCollector}
			}
			p.sess = m.eng.NewSession(p.id, p.emit)
			m.cpus[c].runq = append(m.cpus[c].runq, p)
			m.procs = append(m.procs, p)
		}
	}
	return m, nil
}

// Instance exposes the loaded workload (tests and verification).
func (m *Machine) Instance() workload.Instance { return m.inst }

// CheckInvariants verifies the workload's consistency invariants over the
// engine through an uninstrumented session (tests, post-run verification).
func (m *Machine) CheckInvariants() error {
	return m.inst.Check(m.eng.NewSession(0, nil))
}

// gatedCollector forwards block events only during the measured phase.
type gatedCollector struct {
	m    *Machine
	next codegen.Collector
}

func (g *gatedCollector) Block(prev, cur program.BlockID) {
	if g.m.measuring {
		g.next.Block(prev, cur)
	}
}

// ---- Emitter hooks (run on the current process's goroutine) ----

func (m *Machine) appFetch(p *proc, addr uint64, words int32) {
	c := p.cpu
	c.clock += uint64(words)
	p.budget -= int64(words)
	if m.measuring {
		m.res.AppInstrs += uint64(words)
		r := trace.FetchRun{Addr: addr, Words: words, CPU: uint8(c.id), PID: uint16(p.id)}
		for _, s := range m.cfg.Sinks {
			s.Fetch(r)
		}
	}
	if c.clock >= c.nextTimer {
		c.nextTimer += m.cfg.TimerIntervalInstr
		c.kern.RunAuto(kernel.SvcTimer)
	}
	// Preemption defers while the session holds an index latch (critical
	// section); the process yields at the next fetch after releasing it.
	if p.budget <= 0 && !p.sess.InCritical() {
		p.doYield(yieldMsg{kind: yQuantum})
	}
}

func (m *Machine) kernelFetch(c *cpu, addr uint64, words int32) {
	c.clock += uint64(words)
	if m.measuring {
		m.res.KernelInstrs += uint64(words)
		pid := uint16(0)
		if c.current != nil {
			pid = uint16(c.current.id)
		}
		r := trace.FetchRun{Addr: addr, Words: words, CPU: uint8(c.id), PID: pid, Kernel: true}
		for _, s := range m.cfg.Sinks {
			s.Fetch(r)
		}
	}
}

func (m *Machine) data(p *proc, addr uint64, bytes int, write bool) {
	if !m.measuring {
		return
	}
	d := trace.DataRef{Addr: addr, Bytes: int32(bytes), CPU: uint8(p.cpu.id), PID: uint16(p.id), Write: write}
	for _, s := range m.cfg.DataSinks {
		s.Data(d)
	}
}

func (m *Machine) syscall(p *proc, name string) {
	svc, err := kernel.ServiceFor(name)
	if err != nil {
		panic(err)
	}
	p.cpu.kern.RunAuto(svc)
	switch name {
	case "log_write":
		p.doYield(yieldMsg{kind: yBlockIO, ioDelay: m.cfg.LogWriteDelayInstr})
	case "pread":
		if p.sess.InCritical() {
			// A read under an index latch completes synchronously: the
			// process keeps the CPU (and the latch) while the read's
			// latency is charged to the clock, so no other process can
			// observe a half-modified tree.
			p.cpu.clock += m.cfg.PreadDelayInstr
		} else {
			p.doYield(yieldMsg{kind: yBlockIO, ioDelay: m.cfg.PreadDelayInstr})
		}
		// log_wait and lock_sleep park via Env.Wait right after.
	}
}

// machineEnv implements db.Env on top of the scheduler.
type machineEnv Machine

type waitList struct {
	procs []*proc
}

// Wait implements db.Env.
func (e *machineEnv) Wait(q *db.WaitQueue) {
	m := (*Machine)(e)
	p := m.currentProc()
	if q.Tag == nil {
		q.Tag = &waitList{}
	}
	wl := q.Tag.(*waitList)
	wl.procs = append(wl.procs, p)
	p.doYield(yieldMsg{kind: yWait})
}

// Wake implements db.Env.
func (e *machineEnv) Wake(q *db.WaitQueue) {
	if q.Tag == nil {
		return
	}
	wl := q.Tag.(*waitList)
	for _, p := range wl.procs {
		if p.state == stBlockedWait {
			p.state = stRunnable
			p.cpu.runq = append(p.cpu.runq, p)
		}
	}
	wl.procs = wl.procs[:0]
}

func (m *Machine) currentProc() *proc {
	for _, c := range m.cpus {
		if c.current != nil && c.current.state == stRunning {
			return c.current
		}
	}
	panic("machine: no running process")
}

// ---- Process goroutine ----

func (p *proc) run(m *Machine) {
	defer func() {
		msg := yieldMsg{kind: yDead}
		if r := recover(); r != nil {
			if _, kill := r.(killSentinelType); !kill {
				msg.panicMsg = fmt.Sprint(r)
			}
		}
		p.yield <- msg
	}()
	p.waitRun()
	for {
		in := m.inst.GenInput(p.client)
		m.inst.RunTxn(p.sess, in)
		p.doYield(yieldMsg{kind: yTxnDone})
	}
}

func (p *proc) waitRun() {
	if c := <-p.resume; c == cmdKill {
		panic(killSentinelType{})
	}
}

func (p *proc) doYield(msg yieldMsg) {
	p.yield <- msg
	p.waitRun()
}
