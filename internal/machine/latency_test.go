package machine_test

import (
	"fmt"
	"reflect"
	"testing"

	"codelayout/internal/machine"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

// latencyWorkloads returns tiny instances of all three transaction mixes
// (the ycsb point-read store next to the machine-test standards).
func latencyWorkloads(t *testing.T) map[string]workload.Workload {
	t.Helper()
	return map[string]workload.Workload{
		"tpcb":   smallWorkload(t, "tpcb"),
		"ordere": smallWorkload(t, "ordere"),
		"ycsb":   ycsb.NewScaled(ycsb.Scale{Records: 4000}),
	}
}

// TestLatencySummaryBasics: every run produces a populated, internally
// consistent latency summary — percentiles ordered, mean inside the range,
// the per-kind cells summing to the run-wide count, and N never exceeding
// the committed count (boundary-straddling transactions are excluded).
func TestLatencySummaryBasics(t *testing.T) {
	for name, wl := range latencyWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			app, appL, kern, kernL := testImages(t, wl)
			cfg := configFor(wl, app, appL, kern, kernL)
			cfg.CPUs = 2
			cfg.ProcsPerCPU = 6
			cfg.Transactions = 120
			cfg.WarmupTxns = 20
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			l := res.Latency
			if l.N == 0 {
				t.Fatal("no latencies recorded")
			}
			if l.N > res.Committed {
				t.Fatalf("latency N = %d > committed %d", l.N, res.Committed)
			}
			if !(l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
				t.Fatalf("percentiles out of order: %+v", l)
			}
			if l.Mean <= 0 || l.Mean > float64(l.Max) {
				t.Fatalf("mean %f outside (0, max=%d]", l.Mean, l.Max)
			}
			var cellN uint64
			for _, c := range m.LatencyByKind() {
				s := c.Summary
				if s.N == 0 || s.N != c.Hist.N {
					t.Fatalf("cell %d/%s: summary N=%d hist N=%d", c.Shard, c.Kind, s.N, c.Hist.N)
				}
				if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
					t.Fatalf("cell %d/%s percentiles out of order: %+v", c.Shard, c.Kind, s)
				}
				if s.Max > l.Max {
					t.Fatalf("cell %d/%s max %d > run max %d", c.Shard, c.Kind, s.Max, l.Max)
				}
				cellN += s.N
			}
			if cellN != l.N {
				t.Fatalf("per-kind cells sum to %d, run-wide N = %d", cellN, l.N)
			}
		})
	}
}

// TestLatencyKindLabels: each workload's per-kind breakdown uses its
// Labeler labels, including the distributed kinds on sharded machines.
func TestLatencyKindLabels(t *testing.T) {
	wls := latencyWorkloads(t)
	// ycsb expects only "read": commits are counted at completion and point
	// reads finish orders of magnitude faster than update transactions, so
	// a short measured window may close before any update commits.
	want := map[string]map[int][]string{
		"tpcb":   {1: {"tpcb"}, 2: {"tpcb", "tpcb_dist"}},
		"ordere": {1: {"neworder", "payment"}, 2: {"neworder", "payment", "payment_dist"}},
		"ycsb":   {1: {"read"}, 2: {"read"}},
	}
	for name, wl := range wls {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/s%d", name, shards), func(t *testing.T) {
				app, appL, kern, kernL := testImages(t, wl)
				cfg := configFor(wl, app, appL, kern, kernL)
				cfg.CPUs = 2
				cfg.ProcsPerCPU = 6
				cfg.Shards = shards
				cfg.Transactions = 200
				cfg.WarmupTxns = 20
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
				seen := map[string]bool{}
				for _, c := range m.LatencyByKind() {
					seen[c.Kind] = true
					if shards == 1 && c.Shard != 0 {
						t.Fatalf("single-shard cell on shard %d", c.Shard)
					}
				}
				for _, kind := range want[name][shards] {
					if !seen[kind] {
						t.Fatalf("kind %q missing from breakdown %v", kind, seen)
					}
				}
			})
		}
	}
}

// TestLatencyDeterminism: identical seeds must produce bit-identical
// results and latency histograms across repeated runs, for every workload,
// at one and two shards, at every CPU count — the latency layer must not
// perturb the machine's determinism, and its own accumulation must be
// deterministic too.
func TestLatencyDeterminism(t *testing.T) {
	for name, wl := range latencyWorkloads(t) {
		for _, shards := range []int{1, 2} {
			for _, cpus := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/s%d/c%d", name, shards, cpus), func(t *testing.T) {
					app, appL, kern, kernL := testImages(t, wl)
					run := func() (machine.Result, []machine.TxnLatency) {
						cfg := configFor(wl, app, appL, kern, kernL)
						cfg.CPUs = cpus
						cfg.ProcsPerCPU = 5
						cfg.Shards = shards
						cfg.Transactions = 80
						cfg.WarmupTxns = 15
						m, err := machine.New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						res, err := m.Run()
						if err != nil {
							t.Fatal(err)
						}
						return res, m.LatencyByKind()
					}
					r1, l1 := run()
					r2, l2 := run()
					if r1 != r2 {
						t.Fatalf("results diverge:\n%+v\n%+v", r1, r2)
					}
					if !reflect.DeepEqual(l1, l2) {
						t.Fatalf("latency histograms diverge:\n%+v\n%+v", l1, l2)
					}
					if r1.Latency.N == 0 {
						t.Fatal("no latencies recorded")
					}
				})
			}
		}
	}
}

// tailGCConfig is the commit-heavy 2-shard TPC-B machine the tail-aware
// group-commit regression runs on (the same shape as the flush-count
// auto-tuner test).
func tailGCConfig(t *testing.T) (machine.Config, workload.Workload) {
	t.Helper()
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 48, TellersPerBranch: 4, AccountsPerBranch: 100})
	app, appL, kern, kernL := testImages(t, wl)
	cfg := configFor(wl, app, appL, kern, kernL)
	cfg.Shards = 2
	cfg.CPUs = 4
	cfg.ProcsPerCPU = 16
	cfg.WarmupTxns = 40
	cfg.Transactions = 300
	return cfg, wl
}

// TestAutoGCTargetP99BeatsPerCommit: on the commit-heavy 2-shard TPC-B mix,
// the tail-aware auto-tuner must deliver a measured p99 transaction latency
// no worse than the per-commit-flush baseline — the pre-group-commit
// configuration a tail SLO would otherwise force — while still batching
// (fewer flushes than commits). Deadlock-abort retries are inside the
// latency, so this holds under contention, not just on a quiet machine.
func TestAutoGCTargetP99BeatsPerCommit(t *testing.T) {
	run := func(mutate func(*machine.Config)) (machine.Result, []uint64) {
		cfg, _ := tailGCConfig(t)
		mutate(&cfg)
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res, m.GroupCommitWindows()
	}
	base, _ := run(func(c *machine.Config) { c.PerCommitLogFlush = true })
	tail, win := run(func(c *machine.Config) { c.AutoGroupCommit = machine.AutoGCTargetP99 })
	if base.Latency.N == 0 || tail.Latency.N == 0 {
		t.Fatal("no latencies recorded")
	}
	if tail.Latency.P99 > base.Latency.P99 {
		t.Fatalf("tail-aware auto-GC p99 = %d worse than per-commit baseline p99 = %d",
			tail.Latency.P99, base.Latency.P99)
	}
	if tail.LogFlushes >= tail.Committed {
		t.Fatalf("tail-aware windows did not batch: %d flushes for %d commits", tail.LogFlushes, tail.Committed)
	}
	t.Logf("windows=%v; p99 percommit=%d tail=%d; flushes percommit=%d tail=%d",
		win, base.Latency.P99, tail.Latency.P99, base.LogFlushes, tail.LogFlushes)
}

// TestAutoGCTargetP99PinnedWindows pins the tuner's chosen windows for a
// fixed seed: the model, the warmup histogram it reads and the candidate
// grid are all deterministic, so any drift here is a behavior change that
// must be reviewed (and this file updated) rather than noise.
func TestAutoGCTargetP99PinnedWindows(t *testing.T) {
	cfg, _ := tailGCConfig(t)
	cfg.AutoGroupCommit = machine.AutoGCTargetP99
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{7500, 7500}
	if got := m.GroupCommitWindows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tuned windows = %v, want pinned %v", got, want)
	}
}

// TestAutoGCTargetP99NoWarmup: with nothing observed the tuner must leave
// the immediate-flush windows in place.
func TestAutoGCTargetP99NoWarmup(t *testing.T) {
	cfg := testSetup(t, "tpcb")
	cfg.WarmupTxns = 0
	cfg.AutoGroupCommit = machine.AutoGCTargetP99
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	for i, w := range m.GroupCommitWindows() {
		if w != 0 {
			t.Fatalf("shard %d window %d without any warmup to observe", i, w)
		}
	}
}
