package perfmodel_test

import (
	"testing"

	"codelayout/internal/perfmodel"
)

func TestCyclesMonotonicInMisses(t *testing.T) {
	base := perfmodel.Counts{Instructions: 1_000_000, L1IMisses: 10_000}
	more := base
	more.L1IMisses *= 2
	p := perfmodel.Alpha21264
	if perfmodel.Cycles(p, more) <= perfmodel.Cycles(p, base) {
		t.Fatal("more misses must cost more cycles")
	}
}

func TestCPIFloorIsOne(t *testing.T) {
	c := perfmodel.Counts{Instructions: 5000}
	for _, p := range []perfmodel.Platform{perfmodel.Alpha21264, perfmodel.Alpha21164, perfmodel.Alpha21364Sim} {
		if got := perfmodel.CPI(p, c); got != 1.0 {
			t.Fatalf("%s: CPI with no misses = %f", p.Name, got)
		}
	}
}

func TestRelative(t *testing.T) {
	base := perfmodel.Counts{Instructions: 1_000_000, L1IMisses: 100_000}
	opt := perfmodel.Counts{Instructions: 950_000, L1IMisses: 40_000}
	rel := perfmodel.Relative(perfmodel.Alpha21364Sim, opt, base)
	if rel >= 1 {
		t.Fatalf("relative = %f, optimization should speed up", rel)
	}
	if rel <= 0.3 {
		t.Fatalf("relative = %f, implausibly fast", rel)
	}
	if perfmodel.Relative(perfmodel.Alpha21364Sim, base, base) != 1.0 {
		t.Fatal("self-relative must be 1")
	}
}

func TestZeroBase(t *testing.T) {
	if perfmodel.Relative(perfmodel.Alpha21164, perfmodel.Counts{}, perfmodel.Counts{}) != 0 {
		t.Fatal("zero base should yield 0")
	}
	if perfmodel.CPI(perfmodel.Alpha21164, perfmodel.Counts{}) != 0 {
		t.Fatal("zero instructions should yield 0 CPI")
	}
}
