// Package perfmodel converts instruction and miss counts into non-idle
// execution cycles for the paper's hardware platforms. The paper's metric
// is non-idle cycles (elapsed time comparisons are meaningless once the
// optimized workload becomes more I/O bound), and its result is *relative*
// execution time per optimization combination (Figure 15), which this model
// reproduces; absolute cycle counts are not meaningful.
package perfmodel

// Platform describes one machine's memory-system cost structure, all in CPU
// cycles.
type Platform struct {
	Name     string
	ClockMHz int

	// L1IMissCycles is charged per L1 instruction-cache miss that hits the
	// next level.
	L1IMissCycles uint64
	// L1DMissCycles is charged per L1 data-cache miss that hits the next
	// level.
	L1DMissCycles uint64
	// L2MissCycles is the additional charge when the unified cache misses
	// to memory.
	L2MissCycles uint64
	// CommMissCycles is the additional charge for dirty remote (2–3 hop)
	// transfers.
	CommMissCycles uint64
	// ITLBMissCycles is the software refill cost.
	ITLBMissCycles uint64
}

// The three platforms of the paper's evaluation.
var (
	// Alpha21264 models the AlphaServer DS20 (600 MHz, 64KB 2-way L1s,
	// board cache).
	Alpha21264 = Platform{
		Name: "21264 (64KB, 2-way)", ClockMHz: 600,
		L1IMissCycles: 14, L1DMissCycles: 14, L2MissCycles: 90,
		CommMissCycles: 110, ITLBMissCycles: 40,
	}
	// Alpha21164 models the AlphaServer 4100 (300 MHz, 8KB direct-mapped
	// L1s, 2MB board cache).
	Alpha21164 = Platform{
		Name: "21164 (8KB, 1-way)", ClockMHz: 300,
		L1IMissCycles: 8, L1DMissCycles: 8, L2MissCycles: 50,
		CommMissCycles: 60, ITLBMissCycles: 30,
	}
	// Alpha21364Sim models the SimOS configuration: 1 GHz single-issue,
	// 64KB 2-way L1s, 1.5MB 6-way L2, 12ns L2 hit, 80ns local memory.
	Alpha21364Sim = Platform{
		Name: "21364-sim (1GHz)", ClockMHz: 1000,
		L1IMissCycles: 12, L1DMissCycles: 12, L2MissCycles: 80,
		CommMissCycles: 175, ITLBMissCycles: 40,
	}
)

// Counts aggregates one run's events.
type Counts struct {
	Instructions uint64
	L1IMisses    uint64
	L1DMisses    uint64
	L2Misses     uint64 // unified cache misses (instruction + data)
	CommMisses   uint64 // remote dirty transfers
	ITLBMisses   uint64
}

// Cycles returns the modeled non-idle cycle count: single-issue base CPI of
// 1 plus stall components.
func Cycles(p Platform, c Counts) uint64 {
	return c.Instructions +
		c.L1IMisses*p.L1IMissCycles +
		c.L1DMisses*p.L1DMissCycles +
		c.L2Misses*p.L2MissCycles +
		c.CommMisses*p.CommMissCycles +
		c.ITLBMisses*p.ITLBMissCycles
}

// CPI returns cycles per instruction.
func CPI(p Platform, c Counts) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(Cycles(p, c)) / float64(c.Instructions)
}

// Relative returns cycles(c) / cycles(base) — the Figure 15 y-axis
// (relative execution time in non-idle cycles, as a fraction).
func Relative(p Platform, c, base Counts) float64 {
	b := Cycles(p, base)
	if b == 0 {
		return 0
	}
	return float64(Cycles(p, c)) / float64(b)
}
