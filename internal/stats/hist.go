// Package stats provides the small statistics toolkit the experiments use:
// integer histograms (linear and log2-bucketed), cumulative execution
// profiles, and aligned text/CSV table rendering matching the figures of the
// paper.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
)

// Hist is an integer-valued histogram with linear buckets. Values above Max
// are clamped into the overflow bucket.
type Hist struct {
	Min, Max int
	Counts   []uint64 // len = Max-Min+2; last bucket is overflow
	N        uint64
	Sum      float64
}

// NewHist creates a histogram covering [min, max] plus an overflow bucket.
func NewHist(min, max int) *Hist {
	if max < min {
		panic("stats: max < min")
	}
	return &Hist{Min: min, Max: max, Counts: make([]uint64, max-min+2)}
}

// Add records one observation of v.
func (h *Hist) Add(v int) { h.AddN(v, 1) }

// AddN records n observations of v.
func (h *Hist) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	i := v - h.Min
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i] += n
	h.N += n
	h.Sum += float64(v) * float64(n)
}

// Mean returns the average observed value.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Frac returns the fraction of observations with value v (overflow excluded
// unless v > Max, in which case the overflow bucket fraction is returned).
func (h *Hist) Frac(v int) float64 {
	if h.N == 0 {
		return 0
	}
	i := v - h.Min
	if i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Merge adds other into h. The histograms must have identical bounds.
func (h *Hist) Merge(other *Hist) {
	if h.Min != other.Min || h.Max != other.Max {
		panic("stats: merging histograms with different bounds")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
	h.Sum += other.Sum
}

// Quantile returns the q-quantile of the recorded (clamped) observations:
// the smallest bucket value v such that at least ceil(q*N) observations are
// <= v. Observations below Min were clamped to Min when added; observations
// above Max live in the overflow bucket, reported as Max+1. q is clamped to
// [0, 1]; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) int {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			return h.Min + i // the overflow bucket lands on Max+1
		}
	}
	return h.Max + 1 // unreachable while counts are consistent with N
}

// Log2Hist buckets observations by floor(log2(v)). Bucket i counts values in
// [2^i, 2^(i+1)). Values of zero land in bucket 0.
type Log2Hist struct {
	Counts []uint64
	N      uint64
	Sum    float64
}

// Add records one observation.
func (h *Log2Hist) Add(v uint64) { h.AddN(v, 1) }

// AddN records n observations of v.
func (h *Log2Hist) AddN(v uint64, n uint64) {
	b := 0
	if v > 0 {
		b = bits.Len64(v) - 1
	}
	for len(h.Counts) <= b {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[b] += n
	h.N += n
	h.Sum += float64(v) * float64(n)
}

// Mean returns the average observed value.
func (h *Log2Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Frac returns the fraction of observations in bucket b.
func (h *Log2Hist) Frac(b int) float64 {
	if h.N == 0 || b < 0 || b >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.N)
}

// Merge adds other into h.
func (h *Log2Hist) Merge(other *Log2Hist) {
	for len(h.Counts) < len(other.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
	h.Sum += other.Sum
}

// Clone returns an independent copy of the histogram.
func (h *Log2Hist) Clone() *Log2Hist {
	c := &Log2Hist{N: h.N, Sum: h.Sum}
	c.Counts = append(c.Counts, h.Counts...)
	return c
}

// Log2Bounds returns the value range [lo, hi] of bucket b: [2^b, 2^(b+1)-1],
// except bucket 0, which also holds zero and covers [0, 1].
func Log2Bounds(b int) (lo, hi uint64) {
	if b <= 0 {
		return 0, 1
	}
	return 1 << uint(b), 1<<uint(b+1) - 1
}

// Quantile estimates the q-quantile: it locates the bucket holding the
// ceil(q*N)-th observation and interpolates linearly inside the bucket's
// value range, so the estimate always lies within the bucket that contains
// the true sample quantile. q is clamped to [0, 1]; an empty histogram
// returns 0.
func (h *Log2Hist) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	if target < 1 {
		target = 1
	}
	var cum float64
	for b, c := range h.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= target {
			lo, hi := Log2Bounds(b)
			frac := (target - prev) / float64(c)
			return lo + uint64(frac*float64(hi-lo))
		}
	}
	_, hi := Log2Bounds(len(h.Counts) - 1)
	return hi // unreachable while counts are consistent with N
}

// CumulativePoint is one point of a cumulative execution profile: after
// including Bytes of the hottest code, Frac of all dynamic instructions are
// covered.
type CumulativePoint struct {
	Bytes int64
	Frac  float64
}

// CumulativeProfile computes the Figure-3-style execution profile: items are
// (staticBytes, dynamicCount) pairs; they are sorted by descending dynamic
// count and accumulated.
func CumulativeProfile(staticBytes []int64, dynCount []uint64) []CumulativePoint {
	if len(staticBytes) != len(dynCount) {
		panic("stats: mismatched profile inputs")
	}
	idx := make([]int, len(dynCount))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if dynCount[ia] != dynCount[ib] {
			return dynCount[ia] > dynCount[ib]
		}
		return ia < ib
	})
	var totalDyn float64
	for _, c := range dynCount {
		totalDyn += float64(c)
	}
	pts := make([]CumulativePoint, 0, len(idx))
	var bytes int64
	var dyn float64
	for _, i := range idx {
		if dynCount[i] == 0 {
			break
		}
		bytes += staticBytes[i]
		dyn += float64(dynCount[i])
		frac := 1.0
		if totalDyn > 0 {
			frac = dyn / totalDyn
		}
		pts = append(pts, CumulativePoint{Bytes: bytes, Frac: frac})
	}
	return pts
}

// CoverageAt returns the number of bytes of hottest code needed to cover the
// given fraction of dynamic instructions.
func CoverageAt(pts []CumulativePoint, frac float64) int64 {
	for _, p := range pts {
		if p.Frac >= frac {
			return p.Bytes
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Bytes
}

// FracAtBytes returns the covered fraction after including the given number
// of bytes of hottest code.
func FracAtBytes(pts []CumulativePoint, bytes int64) float64 {
	var f float64
	for _, p := range pts {
		if p.Bytes > bytes {
			break
		}
		f = p.Frac
	}
	return f
}

// Pct formats a ratio as a percentage string with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
