package stats_test

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"

	"codelayout/internal/stats"
)

// qGrid is the quantile grid every property below is checked on.
var qGrid = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// clampedOracle returns the exact q-quantile of the samples as a linear
// Hist records them: values clamped into [min, max+1] (overflow = max+1),
// quantile = the ceil(q*n)-th smallest.
func clampedOracle(samples []int, min, max int, q float64) int {
	cl := make([]int, len(samples))
	for i, v := range samples {
		switch {
		case v < min:
			cl[i] = min
		case v > max:
			cl[i] = max + 1
		default:
			cl[i] = v
		}
	}
	sort.Ints(cl)
	k := int(q * float64(len(cl)))
	if float64(k) < q*float64(len(cl)) {
		k++
	}
	if k < 1 {
		k = 1
	}
	return cl[k-1]
}

// TestHistQuantileMatchesOracle: over randomized seeded inputs, the linear
// histogram's quantile is exactly the brute-force sorted-sample quantile of
// the clamped observations, including overflow clamping, and is monotone in
// q.
func TestHistQuantileMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		min := r.Intn(50) - 25
		max := min + 1 + r.Intn(200)
		h := stats.NewHist(min, max)
		n := 1 + r.Intn(400)
		samples := make([]int, n)
		for i := range samples {
			// Deliberately overshoot both bounds to exercise clamping.
			samples[i] = min - 20 + r.Intn(max-min+60)
			h.Add(samples[i])
		}
		prev := 0
		for qi, q := range qGrid {
			got := h.Quantile(q)
			want := clampedOracle(samples, min, max, q)
			if got != want {
				t.Fatalf("trial %d [%d,%d] n=%d: Quantile(%g) = %d, oracle %d",
					trial, min, max, n, q, got, want)
			}
			if qi > 0 && got < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < Quantile(%g) = %d (not monotone)",
					trial, q, got, qGrid[qi-1], prev)
			}
			prev = got
		}
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	h := stats.NewHist(10, 20)
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %d, want 0", h.Quantile(0.5))
	}
	h.Add(5) // clamps to Min
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("below-min quantile = %d, want 10", got)
	}
	h.AddN(1000, 99) // overflow
	if got := h.Quantile(1); got != 21 {
		t.Fatalf("overflow quantile = %d, want Max+1 = 21", got)
	}
	if got := h.Quantile(-3); got != 10 {
		t.Fatalf("q<0 quantile = %d, want smallest = 10", got)
	}
}

// log2Bucket mirrors the histogram's bucketing rule for the oracle.
func log2Bucket(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) - 1
}

// TestLog2HistBucketBoundaries pins the bucket rule at the powers of two:
// 2^k-1 and 2^k must land in adjacent buckets, and Log2Bounds must bracket
// every value of its own bucket.
func TestLog2HistBucketBoundaries(t *testing.T) {
	for k := 1; k < 63; k++ {
		lo := uint64(1) << uint(k)
		h := &stats.Log2Hist{}
		h.Add(lo - 1)
		h.Add(lo)
		if h.Counts[k-1] != 1 || h.Counts[k] != 1 {
			t.Fatalf("k=%d: counts %v, want one in bucket %d and one in %d", k, h.Counts, k-1, k)
		}
		blo, bhi := stats.Log2Bounds(k)
		if blo != lo || bhi != 2*lo-1 {
			t.Fatalf("Log2Bounds(%d) = [%d,%d], want [%d,%d]", k, blo, bhi, lo, 2*lo-1)
		}
	}
	if lo, hi := stats.Log2Bounds(0); lo != 0 || hi != 1 {
		t.Fatalf("Log2Bounds(0) = [%d,%d], want [0,1]", lo, hi)
	}
}

// TestLog2HistQuantileProperty: over randomized seeded inputs, the
// log2-bucketed quantile must land in the same bucket as the true sample
// quantile (the histogram cannot do better than its bucket), lie within
// that bucket's bounds, and be monotone in q.
func TestLog2HistQuantileProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		h := &stats.Log2Hist{}
		n := 1 + r.Intn(300)
		samples := make([]uint64, n)
		for i := range samples {
			// Span many octaves, including 0 and 1.
			samples[i] = uint64(r.Int63n(1 << uint(1+r.Intn(40))))
			h.Add(samples[i])
		}
		sorted := append([]uint64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var prev uint64
		for qi, q := range qGrid {
			got := h.Quantile(q)
			k := int(q * float64(n))
			if float64(k) < q*float64(n) {
				k++
			}
			if k < 1 {
				k = 1
			}
			want := sorted[k-1]
			if log2Bucket(got) != log2Bucket(want) {
				t.Fatalf("trial %d n=%d: Quantile(%g) = %d (bucket %d), oracle %d (bucket %d)",
					trial, n, q, got, log2Bucket(got), want, log2Bucket(want))
			}
			lo, hi := stats.Log2Bounds(log2Bucket(got))
			if got < lo || got > hi {
				t.Fatalf("trial %d: Quantile(%g) = %d outside its bucket [%d,%d]", trial, q, got, lo, hi)
			}
			if qi > 0 && got < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < previous %d (not monotone)", trial, q, got, prev)
			}
			prev = got
		}
	}
}

func TestLog2HistMeanAndClone(t *testing.T) {
	h := &stats.Log2Hist{}
	h.Add(4)
	h.AddN(10, 3)
	if want := 34.0 / 4; h.Mean() != want {
		t.Fatalf("mean = %f, want %f", h.Mean(), want)
	}
	c := h.Clone()
	c.Add(1000)
	if h.N != 4 || c.N != 5 {
		t.Fatalf("clone not independent: h.N=%d c.N=%d", h.N, c.N)
	}
	var empty stats.Log2Hist
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty Log2Hist quantile/mean not zero")
	}
	// Merge must carry Sum so merged means stay exact.
	m := &stats.Log2Hist{}
	m.Merge(h)
	if m.Mean() != h.Mean() {
		t.Fatalf("merged mean = %f, want %f", m.Mean(), h.Mean())
	}
}
