package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table used to render each reproduced
// figure as text, in the spirit of the rows/series the paper plots.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; cells are formatted with %v, floats with %g-style
// compaction via Cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a verbatim free-form note rendered under the table.
func (t *Table) Note(note string) {
	t.Notes = append(t.Notes, note)
}

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Cell formats a single value.
func Cell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		switch {
		case v == 0:
			return "0"
		case v >= 1000:
			return fmt.Sprintf("%.0f", v)
		case v >= 10:
			return fmt.Sprintf("%.1f", v)
		default:
			return fmt.Sprintf("%.3f", v)
		}
	case string:
		return v
	default:
		return fmt.Sprint(c)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (header row first).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		cells[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		out := make([]string, len(row))
		for i, c := range row {
			out[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
