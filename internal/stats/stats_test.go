package stats_test

import (
	"strings"
	"testing"
	"testing/quick"

	"codelayout/internal/stats"
)

func TestHistBasics(t *testing.T) {
	h := stats.NewHist(1, 10)
	h.Add(1)
	h.AddN(5, 3)
	h.Add(100) // overflow bucket
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if got := h.Frac(5); got != 0.6 {
		t.Fatalf("frac(5) = %f", got)
	}
	if h.Mean() != (1+15+100)/5.0 {
		t.Fatalf("mean = %f", h.Mean())
	}
}

func TestHistClamping(t *testing.T) {
	h := stats.NewHist(1, 4)
	h.Add(0)  // below min clamps to first bucket
	h.Add(99) // above max clamps to overflow
	if h.Counts[0] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := stats.NewHist(0, 5), stats.NewHist(0, 5)
	a.Add(2)
	b.AddN(3, 4)
	a.Merge(b)
	if a.N != 5 || a.Counts[3] != 4 {
		t.Fatalf("merge: N=%d counts=%v", a.N, a.Counts)
	}
}

func TestLog2Hist(t *testing.T) {
	h := &stats.Log2Hist{}
	h.Add(0)  // bucket 0
	h.Add(1)  // bucket 0
	h.Add(2)  // bucket 1
	h.Add(3)  // bucket 1
	h.Add(16) // bucket 4
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[4] != 1 {
		t.Fatalf("buckets = %v", h.Counts)
	}
	if h.Frac(1) != 0.4 {
		t.Fatalf("frac = %f", h.Frac(1))
	}
}

func TestCumulativeProfile(t *testing.T) {
	static := []int64{100, 200, 50}
	dyn := []uint64{10, 80, 10}
	pts := stats.CumulativeProfile(static, dyn)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Hottest first: item 1 (80), then items 0 and 2 (tie broken by index).
	if pts[0].Bytes != 200 || pts[0].Frac != 0.8 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[2].Frac != 1.0 || pts[2].Bytes != 350 {
		t.Fatalf("pts[2] = %+v", pts[2])
	}
	if got := stats.CoverageAt(pts, 0.8); got != 200 {
		t.Fatalf("coverage(0.8) = %d", got)
	}
	if got := stats.FracAtBytes(pts, 300); got != 0.9 {
		t.Fatalf("fracAt(300) = %f", got)
	}
}

func TestCumulativeProfileSkipsColdCode(t *testing.T) {
	pts := stats.CumulativeProfile([]int64{10, 10}, []uint64{5, 0})
	if len(pts) != 1 {
		t.Fatalf("cold code included: %v", pts)
	}
}

func TestCumulativeProfileMonotonicProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		static := make([]int64, len(raw))
		dyn := make([]uint64, len(raw))
		for i, v := range raw {
			static[i] = int64(v%512) + 1
			dyn[i] = uint64(v) % 97
		}
		pts := stats.CumulativeProfile(static, dyn)
		for i := 1; i < len(pts); i++ {
			if pts[i].Bytes < pts[i-1].Bytes || pts[i].Frac < pts[i-1].Frac-1e-12 {
				return false
			}
		}
		if len(pts) > 0 && pts[len(pts)-1].Frac < 0.999999 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := stats.NewTable("Demo", "name", "misses")
	tb.AddRow("base", 12345.0)
	tb.AddRow("opt", 678.9)
	tb.Note("just a test")
	out := tb.String()
	for _, want := range []string{"== Demo ==", "name", "misses", "base", "12345", "678.9", "note: just a test"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := stats.NewTable("x", "a", "b")
	tb.AddRow("v,1", 2)
	var sb strings.Builder
	tb.CSV(&sb)
	if !strings.Contains(sb.String(), `"v,1",2`) {
		t.Fatalf("csv escaping: %q", sb.String())
	}
}

func TestPct(t *testing.T) {
	if got := stats.Pct(0.333); got != "33.3%" {
		t.Fatalf("pct = %q", got)
	}
}
