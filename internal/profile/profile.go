// Package profile holds basic-block execution profiles and the two
// collectors the paper uses: Pixie-style exact instrumentation counts and
// DCPI-style PC sampling. Spike consumes these profiles to weight flow and
// call edges.
package profile

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"codelayout/internal/program"
)

// Profile records how often each block executed and how often each
// control-flow edge was traversed. Edge counts may be absent (sampling
// profiles); EnsureEdges estimates them from block counts the way Spike
// estimates flow-edge weights.
type Profile struct {
	Name       string
	BlockCount []uint64
	EdgeCount  map[uint64]uint64
}

// New creates an empty profile sized for the program.
func New(name string, p *program.Program) *Profile {
	return &Profile{
		Name:       name,
		BlockCount: make([]uint64, p.NumBlocks()),
		EdgeCount:  make(map[uint64]uint64, p.NumBlocks()*2),
	}
}

// Count returns the execution count of block b.
func (pf *Profile) Count(b program.BlockID) uint64 {
	if int(b) >= len(pf.BlockCount) || b < 0 {
		return 0
	}
	return pf.BlockCount[b]
}

// Edge returns the traversal count of the edge src→dst.
func (pf *Profile) Edge(src, dst program.BlockID) uint64 {
	return pf.EdgeCount[program.EdgeKey(src, dst)]
}

// AddBlock records n executions of block b.
func (pf *Profile) AddBlock(b program.BlockID, n uint64) {
	for int(b) >= len(pf.BlockCount) {
		pf.BlockCount = append(pf.BlockCount, 0)
	}
	pf.BlockCount[b] += n
}

// AddEdge records n traversals of src→dst.
func (pf *Profile) AddEdge(src, dst program.BlockID, n uint64) {
	pf.EdgeCount[program.EdgeKey(src, dst)] += n
}

// Merge folds other into pf.
func (pf *Profile) Merge(other *Profile) {
	for b, n := range other.BlockCount {
		pf.AddBlock(program.BlockID(b), n)
	}
	for k, n := range other.EdgeCount {
		pf.EdgeCount[k] += n
	}
}

// Clone returns a deep copy of the profile.
func (pf *Profile) Clone() *Profile {
	cp := &Profile{
		Name:       pf.Name,
		BlockCount: append([]uint64(nil), pf.BlockCount...),
		EdgeCount:  make(map[uint64]uint64, len(pf.EdgeCount)),
	}
	for k, n := range pf.EdgeCount {
		cp.EdgeCount[k] = n
	}
	return cp
}

// TotalBlocks returns the total number of block executions.
func (pf *Profile) TotalBlocks() uint64 {
	var t uint64
	for _, n := range pf.BlockCount {
		t += n
	}
	return t
}

// DynWords estimates total executed instruction words under a layout (body
// plus materialized terminator words per execution, ignoring branch-pair
// asymmetry, which needs the per-edge exit).
func (pf *Profile) DynWords(l *program.Layout) uint64 {
	var t uint64
	for b, n := range pf.BlockCount {
		if n == 0 {
			continue
		}
		blk := l.Prog.Blocks[b]
		words := uint64(blk.Body)
		if l.Occ[b] > blk.Body {
			words++ // first terminator word; branch-pair second words are rare
		}
		t += n * words
	}
	return t
}

// HasEdges reports whether the profile carries measured edge counts.
func (pf *Profile) HasEdges() bool { return len(pf.EdgeCount) > 0 }

// EnsureEdges guarantees edge counts exist: when the profile was gathered by
// sampling (block counts only), flow-edge weights are estimated from the
// basic-block counts, as Spike does — each block's outflow is split across
// its successors in proportion to the successors' own execution counts.
func (pf *Profile) EnsureEdges(p *program.Program) {
	if pf.HasEdges() {
		return
	}
	if pf.EdgeCount == nil {
		pf.EdgeCount = make(map[uint64]uint64)
	}
	for _, b := range p.Blocks {
		n := pf.Count(b.ID)
		if n == 0 {
			continue
		}
		var succs []program.Edge
		var total uint64
		p.SuccEdges(b, func(e program.Edge) {
			succs = append(succs, e)
			total += pf.Count(e.Dst)
		})
		for _, e := range succs {
			var w uint64
			if total > 0 {
				w = n * pf.Count(e.Dst) / total
			} else if len(succs) > 0 {
				w = n / uint64(len(succs))
			}
			if w > 0 {
				pf.EdgeCount[program.EdgeKey(e.Src, e.Dst)] += w
			}
		}
	}
}

// HottestBlocks returns block IDs sorted by descending count (ties by ID),
// including only blocks with nonzero counts.
func (pf *Profile) HottestBlocks() []program.BlockID {
	var ids []program.BlockID
	for b, n := range pf.BlockCount {
		if n > 0 {
			ids = append(ids, program.BlockID(b))
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if pf.BlockCount[a] != pf.BlockCount[b] {
			return pf.BlockCount[a] > pf.BlockCount[b]
		}
		return a < b
	})
	return ids
}

// Encode serializes the profile with encoding/gob.
func (pf *Profile) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(pf); err != nil {
		return fmt.Errorf("profile: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a profile written by Encode.
func Read(r io.Reader) (*Profile, error) {
	var pf Profile
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&pf); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return &pf, nil
}

// SaveFile writes the profile to a file.
func (pf *Profile) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pf.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a profile from a file.
func LoadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
