package profile

import (
	"sort"

	"codelayout/internal/program"
	"codelayout/internal/trace"
)

// Pixie is the instrumentation-based collector: the emitter reports every
// block execution and edge traversal exactly, as a pixified binary would.
type Pixie struct {
	Profile *Profile
}

// NewPixie creates an exact collector for the program.
func NewPixie(p *program.Program, name string) *Pixie {
	return &Pixie{Profile: New(name, p)}
}

// Block records one execution of b preceded by src (NoBlock at procedure
// entries reached by call, where the call edge is recorded separately).
func (px *Pixie) Block(src, b program.BlockID) {
	px.Profile.BlockCount[b]++
	if src != program.NoBlock {
		px.Profile.EdgeCount[program.EdgeKey(src, b)]++
	}
}

// DCPI is the sampling collector: it watches the fetch stream and samples
// one PC every Period instructions, attributing the sample to the block
// containing that address under the layout the workload ran with. The
// resulting profile has block counts only (scaled by the period) and no edge
// counts, like a DCPI/PC-sampling profile.
type DCPI struct {
	Period  uint64
	layout  *program.Layout
	starts  []uint64          // sorted block start addresses
	blocks  []program.BlockID // parallel to starts
	skip    uint64
	Samples uint64
	counts  []uint64
}

// NewDCPI creates a sampling collector over the given layout.
func NewDCPI(l *program.Layout, period uint64) *DCPI {
	d := &DCPI{Period: period, layout: l, counts: make([]uint64, l.Prog.NumBlocks())}
	type ba struct {
		addr uint64
		id   program.BlockID
	}
	all := make([]ba, 0, l.Prog.NumBlocks())
	for id := range l.Prog.Blocks {
		all = append(all, ba{l.Addr[id], program.BlockID(id)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].addr < all[j].addr })
	for _, e := range all {
		d.starts = append(d.starts, e.addr)
		d.blocks = append(d.blocks, e.id)
	}
	d.skip = period
	return d
}

// Fetch implements trace.Sink.
func (d *DCPI) Fetch(r trace.FetchRun) {
	words := uint64(r.Words)
	for words >= d.skip {
		sampleAddr := r.End() - words*4 + (d.skip-1)*4
		d.sample(sampleAddr)
		words -= d.skip
		d.skip = d.Period
	}
	d.skip -= words
}

func (d *DCPI) sample(addr uint64) {
	d.Samples++
	i := sort.Search(len(d.starts), func(i int) bool { return d.starts[i] > addr }) - 1
	if i < 0 {
		return
	}
	d.counts[d.blocks[i]]++
}

// Finish scales samples by the period into a block-count profile.
func (d *DCPI) Finish(name string) *Profile {
	pf := &Profile{Name: name, BlockCount: make([]uint64, len(d.counts))}
	for b, n := range d.counts {
		blk := d.layout.Prog.Blocks[b]
		words := uint64(blk.Body) + 1
		// A block receives samples in proportion to its dynamic words;
		// dividing by its static length recovers an execution-count
		// estimate.
		pf.BlockCount[b] = n * d.Period / words
	}
	return pf
}
