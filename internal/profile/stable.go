package profile

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Scale multiplies every block and edge count by factor, rounding to the
// nearest integer. Blending aged profiles weights each one before merging,
// so the factor must be a sane non-negative real: negative, NaN and Inf
// factors are rejected.
func (pf *Profile) Scale(factor float64) error {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 {
		return fmt.Errorf("profile: scale factor %v: must be a non-negative finite number", factor)
	}
	for b, n := range pf.BlockCount {
		pf.BlockCount[b] = scaleCount(n, factor)
	}
	for k, n := range pf.EdgeCount {
		if s := scaleCount(n, factor); s > 0 {
			pf.EdgeCount[k] = s
		} else {
			delete(pf.EdgeCount, k)
		}
	}
	return nil
}

func scaleCount(n uint64, factor float64) uint64 {
	return uint64(math.Round(float64(n) * factor))
}

// Fingerprint returns a stable 64-bit hash of the profile's contents: name,
// block counts, and edge counts in sorted key order. Two profiles with the
// same counts hash identically regardless of map iteration order or how the
// counts were accumulated. The persistent store uses it to verify that a
// decoded entry matches what was written.
func (pf *Profile) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	h.Write([]byte(pf.Name))
	binary.LittleEndian.PutUint64(buf[:], uint64(len(pf.BlockCount)))
	h.Write(buf[:])
	for _, n := range pf.BlockCount {
		binary.LittleEndian.PutUint64(buf[:], n)
		h.Write(buf[:])
	}
	keys := pf.sortedEdgeKeys()
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], pf.EdgeCount[k])
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (pf *Profile) sortedEdgeKeys() []uint64 {
	keys := make([]uint64, 0, len(pf.EdgeCount))
	for k := range pf.EdgeCount {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// GobEncode implements gob.GobEncoder with a deterministic byte layout:
// gob encodes maps in random iteration order, so the edge map is flattened
// into key/count sequences sorted by key. This makes Encode byte-stable —
// decoding a stored profile and re-encoding it reproduces the file
// bit-identically, which the persistent store's content hashing relies on.
func (pf *Profile) GobEncode() ([]byte, error) {
	keys := pf.sortedEdgeKeys()
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = pf.EdgeCount[k]
	}
	var buf []byte
	buf = appendUvarintString(buf, pf.Name)
	buf = appendUvarintSlice(buf, pf.BlockCount)
	buf = appendUvarintSlice(buf, keys)
	buf = appendUvarintSlice(buf, vals)
	return buf, nil
}

// GobDecode implements gob.GobDecoder for the layout written by GobEncode.
func (pf *Profile) GobDecode(data []byte) error {
	name, data, err := readUvarintString(data)
	if err != nil {
		return fmt.Errorf("profile: decode name: %w", err)
	}
	blocks, data, err := readUvarintSlice(data)
	if err != nil {
		return fmt.Errorf("profile: decode block counts: %w", err)
	}
	keys, data, err := readUvarintSlice(data)
	if err != nil {
		return fmt.Errorf("profile: decode edge keys: %w", err)
	}
	vals, data, err := readUvarintSlice(data)
	if err != nil {
		return fmt.Errorf("profile: decode edge counts: %w", err)
	}
	if len(keys) != len(vals) {
		return fmt.Errorf("profile: decode: %d edge keys but %d counts", len(keys), len(vals))
	}
	if len(data) != 0 {
		return fmt.Errorf("profile: decode: %d trailing bytes", len(data))
	}
	pf.Name = name
	pf.BlockCount = blocks
	pf.EdgeCount = make(map[uint64]uint64, len(keys))
	for i, k := range keys {
		pf.EdgeCount[k] = vals[i]
	}
	return nil
}

func appendUvarintString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarintString(data []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)-sz) {
		return "", nil, fmt.Errorf("bad string length")
	}
	return string(data[sz : sz+int(n)]), data[sz+int(n):], nil
}

func appendUvarintSlice(buf []byte, s []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	for _, v := range s {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

func readUvarintSlice(data []byte) ([]uint64, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("bad slice length")
	}
	data = data[sz:]
	if n > uint64(len(data)) { // each element takes at least one byte
		return nil, nil, fmt.Errorf("slice length %d exceeds remaining input", n)
	}
	out := make([]uint64, n)
	for i := range out {
		v, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("bad slice element %d", i)
		}
		out[i] = v
		data = data[sz:]
	}
	return out, data, nil
}
