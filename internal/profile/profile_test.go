package profile_test

import (
	"bytes"
	"math/rand"
	"testing"

	"codelayout/internal/core"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
	"codelayout/internal/trace"
)

func TestPixieCountsBlocksAndEdges(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := progtest.RandProgram(r, 3)
	px := profile.NewPixie(p, "test")
	progtest.Walk(r, p, 500, func(prev, cur program.BlockID) { px.Block(prev, cur) })
	pf := px.Profile
	if pf.TotalBlocks() == 0 {
		t.Fatal("no blocks recorded")
	}
	if !pf.HasEdges() {
		t.Fatal("no edges recorded")
	}
	// Edge counts into a block cannot exceed its block count.
	into := make(map[program.BlockID]uint64)
	for k, n := range pf.EdgeCount {
		_, dst := program.SplitEdgeKey(k)
		into[dst] += n
	}
	for b, n := range into {
		if n > pf.Count(b) {
			t.Fatalf("block %d: inflow %d > count %d", b, n, pf.Count(b))
		}
	}
}

func TestMergeAndScale(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := progtest.RandProgram(r, 2)
	a := progtest.RandProfile(r, p, 5, 100)
	b := progtest.RandProfile(r, p, 5, 100)
	totA, totB := a.TotalBlocks(), b.TotalBlocks()
	a.Merge(b)
	if a.TotalBlocks() != totA+totB {
		t.Fatalf("merged total = %d, want %d", a.TotalBlocks(), totA+totB)
	}
}

func TestEnsureEdgesEstimates(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := progtest.RandProgram(r, 3)
	exact := progtest.RandProfile(r, p, 20, 300)
	// Strip the edges to simulate a sampling profile.
	sampled := &profile.Profile{Name: "sampled", BlockCount: exact.BlockCount}
	sampled.EnsureEdges(p)
	if !sampled.HasEdges() {
		t.Fatal("EnsureEdges produced nothing")
	}
	// Estimated out-flow of a conditional must not exceed its count.
	for _, b := range p.Blocks {
		var out uint64
		p.SuccEdges(b, func(e program.Edge) { out += sampled.Edge(e.Src, e.Dst) })
		if b.Kind == 1 /* cond */ && out > sampled.Count(b.ID) {
			t.Fatalf("block %d: estimated outflow %d > count %d", b.ID, out, sampled.Count(b.ID))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := progtest.RandProgram(r, 3)
	pf := progtest.RandProfile(r, p, 10, 200)
	var buf bytes.Buffer
	if err := pf.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := profile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBlocks() != pf.TotalBlocks() || len(got.EdgeCount) != len(pf.EdgeCount) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestHottestBlocksSorted(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := progtest.RandProgram(r, 4)
	pf := progtest.RandProfile(r, p, 20, 300)
	ids := pf.HottestBlocks()
	for i := 1; i < len(ids); i++ {
		if pf.Count(ids[i]) > pf.Count(ids[i-1]) {
			t.Fatal("not sorted by descending count")
		}
	}
	for _, id := range ids {
		if pf.Count(id) == 0 {
			t.Fatal("zero-count block included")
		}
	}
}

// TestDCPISamplingApproximatesPixie replays a synthetic fetch stream through
// the sampling collector and checks the recovered counts are within a factor
// of the exact ones for hot blocks.
func TestDCPISamplingApproximatesPixie(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	p := progtest.RandProgram(r, 4)
	exact := progtest.RandProfile(r, p, 50, 400)
	layout, err := program.BaselineLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	d := profile.NewDCPI(layout, 16)
	// Synthesize the fetch stream from the same walks the exact profile
	// counted (fresh rand with same construction is not identical; instead
	// drive runs straight from the exact profile's block counts).
	for b, n := range exact.BlockCount {
		blk := p.Blocks[b]
		for i := uint64(0); i < n; i++ {
			d.Fetch(trace.FetchRun{Addr: layout.Addr[b], Words: blk.Body + 1})
		}
	}
	got := d.Finish("sampled")
	if d.Samples == 0 {
		t.Fatal("no samples")
	}
	// Hot blocks (top decile) should be recovered within 3x.
	hot := exact.HottestBlocks()
	if len(hot) == 0 {
		t.Skip("degenerate profile")
	}
	checked := 0
	for _, b := range hot[:1+len(hot)/10] {
		e := exact.Count(b)
		g := got.Count(b)
		if e < 100 {
			continue
		}
		checked++
		if g < e/3 || g > e*3 {
			t.Fatalf("block %d: sampled %d vs exact %d", b, g, e)
		}
	}
	_ = checked
}

// TestOptimizeWithSamplingProfile checks the whole pipeline accepts a
// block-counts-only profile (edge estimation path).
func TestOptimizeWithSamplingProfile(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := progtest.RandProgram(r, 4)
	exact := progtest.RandProfile(r, p, 20, 300)
	sampled := &profile.Profile{Name: "s", BlockCount: exact.BlockCount}
	l, _, err := core.Optimize(p, sampled, core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeDisjoint: merging profiles whose hot blocks do not overlap (one
// image's blocks counted by each) must preserve every per-block and
// per-edge count exactly — nothing is dropped, nothing double-counted. This
// is the profile-aging/mixing building block: blended train profiles are
// built by merging.
func TestMergeDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := progtest.RandProgram(r, 3)
	n := p.NumBlocks()
	a := profile.New("a", p)
	b := profile.New("b", p)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a.AddBlock(program.BlockID(i), uint64(i+1))
		} else {
			b.AddBlock(program.BlockID(i), uint64(2*i+1))
		}
	}
	a.AddEdge(0, 2, 11)
	b.AddEdge(1, 3, 13)
	wantTotal := a.TotalBlocks() + b.TotalBlocks()
	a.Merge(b)
	if a.TotalBlocks() != wantTotal {
		t.Fatalf("merged total = %d, want %d", a.TotalBlocks(), wantTotal)
	}
	for i := 0; i < n; i++ {
		want := uint64(i + 1)
		if i%2 == 1 {
			want = uint64(2*i + 1)
		}
		if got := a.Count(program.BlockID(i)); got != want {
			t.Fatalf("block %d count = %d, want %d (disjoint merge dropped or mixed a block)", i, got, want)
		}
	}
	if a.Edge(0, 2) != 11 || a.Edge(1, 3) != 13 {
		t.Fatalf("edges after disjoint merge: %d, %d", a.Edge(0, 2), a.Edge(1, 3))
	}
}

// TestMergeOverlapping: merging profiles that counted the same blocks must
// sum per-block and per-edge counts, and merging a profile sized for a
// larger image into a smaller one must grow the block table rather than
// drop the tail blocks.
func TestMergeOverlapping(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	p := progtest.RandProgram(r, 2)
	a := progtest.RandProfile(r, p, 4, 80)
	b := progtest.RandProfile(r, p, 4, 80)
	perBlock := make([]uint64, p.NumBlocks())
	for i := range perBlock {
		perBlock[i] = a.Count(program.BlockID(i)) + b.Count(program.BlockID(i))
	}
	perEdge := make(map[uint64]uint64)
	for k, n := range a.EdgeCount {
		perEdge[k] += n
	}
	for k, n := range b.EdgeCount {
		perEdge[k] += n
	}
	a.Merge(b)
	for i, want := range perBlock {
		if got := a.Count(program.BlockID(i)); got != want {
			t.Fatalf("block %d count = %d, want %d (overlapping merge lost counts)", i, got, want)
		}
	}
	for k, want := range perEdge {
		if a.EdgeCount[k] != want {
			t.Fatalf("edge %d count = %d, want %d", k, a.EdgeCount[k], want)
		}
	}

	// A short profile (empty block table) must absorb a longer one whole.
	short := &profile.Profile{Name: "short", EdgeCount: map[uint64]uint64{}}
	short.Merge(a)
	if len(short.BlockCount) != len(a.BlockCount) {
		t.Fatalf("short merge: block table length %d, want %d", len(short.BlockCount), len(a.BlockCount))
	}
	if short.TotalBlocks() != a.TotalBlocks() {
		t.Fatalf("short merge: total = %d, want %d", short.TotalBlocks(), a.TotalBlocks())
	}
}
