package profile_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"codelayout/internal/profile"
	"codelayout/internal/progtest"
)

// goldenProfile builds the exact profile committed as
// testdata/golden.profile. Regenerate the fixture with
//
//	UPDATE_GOLDEN_PROFILE=1 go test ./internal/profile/ -run TestGoldenProfileFixture
//
// if the wire format ever changes intentionally.
func goldenProfile() *profile.Profile {
	pf := &profile.Profile{
		Name:       "golden",
		BlockCount: []uint64{12, 0, 7, 3, 190, 0, 0, 88, 1, 4096},
		EdgeCount:  map[uint64]uint64{},
	}
	pf.AddEdge(0, 2, 7)
	pf.AddEdge(2, 4, 5)
	pf.AddEdge(4, 4, 180)
	pf.AddEdge(4, 7, 9)
	pf.AddEdge(7, 9, 88)
	pf.AddEdge(9, 0, 11)
	return pf
}

var updateGolden = os.Getenv("UPDATE_GOLDEN_PROFILE") != ""

// TestGoldenProfileFixture pins the on-disk encoding: the committed fixture
// must decode to the known profile and re-encode bit-identically. This is
// what lets the persistent store content-hash files and trust that a
// load/store cycle is a no-op.
func TestGoldenProfileFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden.profile")
	want := goldenProfile()
	if updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := want.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (set UPDATE_GOLDEN_PROFILE=1 to regenerate): %v", err)
	}
	got, err := profile.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode golden fixture: %v", err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("golden fixture fingerprint = %#x, want %#x", got.Fingerprint(), want.Fingerprint())
	}
	var reenc bytes.Buffer
	if err := got.Encode(&reenc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc.Bytes(), raw) {
		t.Fatalf("decode+re-encode is not bit-identical: %d bytes vs %d on disk", reenc.Len(), len(raw))
	}
}

// TestEncodeDeterministic: the same logical profile, with its edge map
// populated in different insertion orders, must encode to identical bytes.
func TestEncodeDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := progtest.RandProgram(r, 3)
	a := progtest.RandProfile(r, p, 20, 400)
	b := &profile.Profile{Name: a.Name, BlockCount: append([]uint64(nil), a.BlockCount...), EdgeCount: map[uint64]uint64{}}
	keys := make([]uint64, 0, len(a.EdgeCount))
	for k := range a.EdgeCount {
		keys = append(keys, k)
	}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		b.EdgeCount[k] = a.EdgeCount[k]
	}
	var ba, bb bytes.Buffer
	if err := a.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("encoding depends on edge-map insertion order")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on edge-map insertion order")
	}
}

func TestCorruptProfileLoad(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenProfile().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cases := map[string][]byte{
		"truncated":  raw[:len(raw)/2],
		"garbage":    []byte("not a gob stream at all"),
		"bit-flip":   append(append([]byte(nil), raw[:len(raw)-3]...), raw[len(raw)-3]^0xff, raw[len(raw)-2], raw[len(raw)-1]),
		"empty":      {},
		"first-zero": append([]byte{0}, raw...),
	}
	for name, data := range cases {
		if _, err := profile.Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt input decoded without error", name)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	for _, bad := range []float64{-1, -0.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
		pf := goldenProfile()
		if err := pf.Scale(bad); err == nil {
			t.Errorf("Scale(%v): want error, got nil", bad)
		}
	}
	pf := goldenProfile()
	if err := pf.Scale(0.5); err != nil {
		t.Fatal(err)
	}
	if got := pf.Count(4); got != 95 {
		t.Fatalf("Count(4) after Scale(0.5) = %d, want 95", got)
	}
	if got := pf.Edge(4, 4); got != 90 {
		t.Fatalf("Edge(4,4) after Scale(0.5) = %d, want 90", got)
	}
	// Scaling to zero drops edges entirely rather than keeping zero entries.
	if err := pf.Scale(0); err != nil {
		t.Fatal(err)
	}
	if pf.HasEdges() {
		t.Fatal("Scale(0) left zero-count edges behind")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := goldenProfile().Fingerprint()
	mutations := map[string]func(*profile.Profile){
		"name":        func(pf *profile.Profile) { pf.Name = "golden2" },
		"block count": func(pf *profile.Profile) { pf.BlockCount[4]++ },
		"edge count":  func(pf *profile.Profile) { pf.AddEdge(4, 4, 1) },
		"new edge":    func(pf *profile.Profile) { pf.AddEdge(3, 4, 1) },
		"extra block": func(pf *profile.Profile) { pf.BlockCount = append(pf.BlockCount, 0) },
	}
	for name, mutate := range mutations {
		pf := goldenProfile()
		mutate(pf)
		if pf.Fingerprint() == base {
			t.Errorf("%s mutation did not change fingerprint", name)
		}
	}
	if goldenProfile().Fingerprint() != base {
		t.Fatal("fingerprint is not stable across identical rebuilds")
	}
}
