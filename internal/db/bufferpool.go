package db

import (
	"fmt"
)

// Disk is the stable storage behind the buffer pool. The simulated disk
// keeps page images in memory; reads and writes are instantaneous here —
// I/O latency is charged by the machine at the probe.Syscall crossings.
type Disk struct {
	pages map[PageID][]byte
}

// NewDisk creates an empty disk.
func NewDisk() *Disk { return &Disk{pages: make(map[PageID][]byte)} }

// Read copies the page image from disk, or returns a zero page for never-
// written pages.
func (d *Disk) Read(id PageID) []byte {
	img, ok := d.pages[id]
	if !ok {
		return make([]byte, PageBytes)
	}
	out := make([]byte, PageBytes)
	copy(out, img)
	return out
}

// Write stores a page image.
func (d *Disk) Write(id PageID, data []byte) {
	img := make([]byte, PageBytes)
	copy(img, data)
	d.pages[id] = img
}

// BufferPool caches pages in memory with LRU replacement and pinning. OLTP
// runs keep the whole database resident (the paper caches all tables in
// memory), so after warmup only log writes perform I/O.
type BufferPool struct {
	disk     *Disk
	capacity int
	frames   map[PageID]*Page
	// lru is an access counter per page for eviction; simple and
	// deterministic.
	lru    map[PageID]uint64
	clock  uint64
	Hits   uint64
	Misses uint64
	Evicts uint64
}

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*Page, capacity),
		lru:      make(map[PageID]uint64, capacity),
	}
}

// get fetches the page, reading from disk on a miss (possibly evicting).
// The returned page is pinned; callers must Unpin. The hit result lets the
// instrumented wrapper report the branch outcome.
func (bp *BufferPool) get(id PageID) (*Page, bool, error) {
	bp.clock++
	if pg, ok := bp.frames[id]; ok {
		bp.Hits++
		bp.lru[id] = bp.clock
		pg.pin++
		return pg, true, nil
	}
	bp.Misses++
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, false, err
		}
	}
	pg := &Page{ID: id, Data: bp.disk.Read(id)}
	bp.frames[id] = pg
	bp.lru[id] = bp.clock
	pg.pin++
	return pg, false, nil
}

// evictOne writes back and drops the least recently used unpinned page.
func (bp *BufferPool) evictOne() error {
	var victim PageID
	var vAt uint64 = ^uint64(0)
	found := false
	for id, at := range bp.lru {
		pg := bp.frames[id]
		if pg.pin > 0 {
			continue
		}
		if at < vAt || (at == vAt && (!found || id < victim)) {
			victim, vAt, found = id, at, true
		}
	}
	if !found {
		return fmt.Errorf("bufferpool: all %d frames pinned", len(bp.frames))
	}
	pg := bp.frames[victim]
	if pg.Dirty {
		bp.disk.Write(victim, pg.Data)
	}
	delete(bp.frames, victim)
	delete(bp.lru, victim)
	bp.Evicts++
	return nil
}

// Unpin releases a pin taken by get.
func (bp *BufferPool) Unpin(pg *Page) {
	if pg.pin <= 0 {
		panic(fmt.Sprintf("bufferpool: unpin of unpinned page %d", pg.ID))
	}
	pg.pin--
}

// FlushAll writes every dirty page back to disk (checkpoint).
func (bp *BufferPool) FlushAll() {
	for id, pg := range bp.frames {
		if pg.Dirty {
			bp.disk.Write(id, pg.Data)
			pg.Dirty = false
		}
	}
}

// Resident returns the number of cached pages.
func (bp *BufferPool) Resident() int { return len(bp.frames) }
