package db

import "errors"

// ErrDeadlock is the panic value a Session raises when its lock request
// would close a waits-for cycle: the requester is the victim and must abort.
// The machine recovers it at the transaction boundary (after resetting the
// emitter — the modeled engine aborts via longjmp, as real servers do),
// aborts the process's in-flight transactions, and retries the request.
var ErrDeadlock = errors.New("db: deadlock victim")

// Aborter is implemented by probes that support abort unwinding: the engine
// calls AbortUnwind immediately before panicking with ErrDeadlock so the
// probe suppresses events raised by deferred calls while the panic
// propagates (codegen.Emitter implements it).
type Aborter interface {
	AbortUnwind()
}

// LockRef names one lockable resource across a group of sharded engines.
type LockRef struct {
	Shard int
	Key   uint64
}

// WaitGraph is the global waits-for graph of a (possibly sharded) engine
// group: which process waits on which lock, and which processes hold each
// lock. One graph is shared by every shard of a machine, so distributed
// deadlocks — cycles whose edges span shards, which no per-shard lock
// manager can see — are detected before the victim ever parks.
//
// The graph is keyed by process ID, not transaction ID: a server process
// runs at most one transaction per shard, and a cross-shard transaction's
// branches all block the same process, which is exactly the node a
// deadlock cycle passes through. The machine runs one process at a time,
// so no internal locking is needed.
type WaitGraph struct {
	waits   map[int]LockRef
	holders map[LockRef][]int
}

// NewWaitGraph creates an empty graph.
func NewWaitGraph() *WaitGraph {
	return &WaitGraph{
		waits:   make(map[int]LockRef),
		holders: make(map[LockRef][]int, 1<<10),
	}
}

// hold records that pid holds ref (no-op if already recorded).
func (g *WaitGraph) hold(ref LockRef, pid int) {
	for _, h := range g.holders[ref] {
		if h == pid {
			return
		}
	}
	g.holders[ref] = append(g.holders[ref], pid)
}

// unhold drops pid's hold on ref.
func (g *WaitGraph) unhold(ref LockRef, pid int) {
	hs := g.holders[ref]
	for i, h := range hs {
		if h == pid {
			g.holders[ref] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
}

// setWait records that pid is about to park waiting for ref.
func (g *WaitGraph) setWait(pid int, ref LockRef) { g.waits[pid] = ref }

// clearWait removes pid's wait edge (called when the process wakes).
func (g *WaitGraph) clearWait(pid int) { delete(g.waits, pid) }

// ClearWait drops pid's wait edge the moment the process is made runnable.
// The environment calls it from Wake: between wake-up and actually resuming
// (when the process re-checks its lock and either acquires or re-parks),
// the recorded edge is stale — a runnable process is not blocked — and a
// cycle check crossing it would abort victims for phantom deadlocks.
func (g *WaitGraph) ClearWait(pid int) { g.clearWait(pid) }

// cycles reports whether pid waiting on ref would close a waits-for cycle:
// it walks from ref's holders along each holder's own wait edge, looking
// for a path back to pid. Holder slices keep insertion order, so the walk
// is deterministic.
//
// At the top level the requester's own hold on ref is not an edge: an S→X
// upgrader holds the lock it waits for and is blocked only by the other
// holders (two upgraders blocking each other still cycle through the
// recursive levels, where reaching pid means someone genuinely waits on a
// lock pid holds).
func (g *WaitGraph) cycles(pid int, ref LockRef) bool {
	seen := make(map[int]bool, 8)
	var dfs func(r LockRef, skipSelf bool) bool
	dfs = func(r LockRef, skipSelf bool) bool {
		for _, h := range g.holders[r] {
			if h == pid {
				if skipSelf {
					continue
				}
				return true
			}
			if seen[h] {
				continue
			}
			seen[h] = true
			if next, ok := g.waits[h]; ok && dfs(next, false) {
				return true
			}
		}
		return false
	}
	return dfs(ref, true)
}
