package db

import (
	"encoding/binary"
)

// LogRecKind classifies WAL records.
type LogRecKind uint8

const (
	// LogUpdate records a physical page update with before/after images.
	LogUpdate LogRecKind = iota
	// LogInsert records a record insertion.
	LogInsert
	// LogCommit marks a transaction committed.
	LogCommit
	// LogAbort marks a transaction aborted (after undo).
	LogAbort
	// LogPrepare marks a distributed-transaction participant prepared: its
	// updates and locks are durable pending the coordinator's decision.
	LogPrepare
)

// LogRec is one write-ahead log record.
type LogRec struct {
	LSN    uint64
	Txn    uint64
	Kind   LogRecKind
	Page   PageID
	Slot   uint16
	Before []byte
	After  []byte
}

// WAL is the write-ahead log with group commit. Appends go to an in-memory
// buffer; a commit forces the buffer to stable storage. While one process's
// flush is in flight, other committers join the group and are released
// together when the leader's write completes — the machine simulates the
// blocking at the probe.Syscall crossing.
type WAL struct {
	Records []LogRec // stable (flushed) prefix + buffered tail
	nextLSN uint64

	// FlushedLSN is the highest LSN known stable.
	FlushedLSN uint64
	// Flushing reports a group-commit write in flight.
	Flushing bool
	// Waiters is the queue of sessions blocked on group commit.
	Waiters *WaitQueue

	// Flushes counts physical log writes (group commits).
	Flushes uint64
	// GroupedCommits counts commits that piggybacked on another flush.
	GroupedCommits uint64
	// TotalAppended is the cumulative byte offset into the (circular) log
	// buffer; records from different processes pack contiguously, so
	// adjacent commits share cache lines — a real source of communication
	// misses on multiprocessors.
	TotalAppended int64
	bufBytes      int
}

// NewWAL creates an empty log.
func NewWAL() *WAL {
	return &WAL{nextLSN: 1, Waiters: NewWaitQueue("log")}
}

// Append adds a record to the log buffer and returns its LSN and the byte
// offset at which it was placed in the log buffer.
func (w *WAL) Append(rec LogRec) (lsn uint64, offset int64) {
	rec.LSN = w.nextLSN
	w.nextLSN++
	w.Records = append(w.Records, rec)
	n := 32 + len(rec.Before) + len(rec.After)
	offset = w.TotalAppended
	w.TotalAppended += int64(n)
	w.bufBytes += n
	return rec.LSN, offset
}

// BufferedBytes returns the size of the unflushed tail, used by the engine
// to model log-buffer pressure.
func (w *WAL) BufferedBytes() int { return w.bufBytes }

// MarkFlushed advances the stable LSN after a physical write of everything
// up to target.
func (w *WAL) MarkFlushed(target uint64) {
	if target > w.FlushedLSN {
		w.FlushedLSN = target
	}
	w.bufBytes = 0
	w.Flushes++
}

// CurrentLSN returns the highest assigned LSN.
func (w *WAL) CurrentLSN() uint64 { return w.nextLSN - 1 }

// EncodeRec serializes a record (used by the recovery tests and the log
// size accounting).
func EncodeRec(rec LogRec) []byte {
	buf := make([]byte, 0, 32+len(rec.Before)+len(rec.After))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], rec.LSN)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], rec.Txn)
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(rec.Kind))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(rec.Page))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint16(tmp[:2], rec.Slot)
	buf = append(buf, tmp[:2]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(rec.Before)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, rec.Before...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(rec.After)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, rec.After...)
	return buf
}

// Env abstracts process blocking for the engine: the simulated machine
// parks the calling process; the no-op environment runs everything
// synchronously (single-threaded tests).
type Env interface {
	// Wait parks the calling process on the queue until Wake.
	Wait(q *WaitQueue)
	// Wake releases processes parked on the queue (all of them; released
	// processes re-check their predicates).
	Wake(q *WaitQueue)
}

// Clock is optionally implemented by an Env that can tell simulated time
// (instruction-times). An engine whose environment has a clock records the
// inter-commit gap histogram the group-commit auto-tuner reads the arrival
// process from; environments without one (tests, loaders) simply record
// nothing. Now returning 0 means "no running process" and is ignored.
type Clock interface {
	Now() uint64
}

// WaitQueue identifies a blocking point (group commit, a lock, ...). The
// machine attaches its own bookkeeping via the Tag.
type WaitQueue struct {
	Name string
	// Tag is owned by the Env implementation.
	Tag interface{}
}

// NewWaitQueue creates a named queue.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{Name: name} }

// NopEnv is the synchronous environment: Wait panics if it would ever be
// reached with a predicate that cannot progress, so single-threaded tests
// use engines configured to avoid blocking (they never conflict).
type NopEnv struct{}

// Wait implements Env; with a single process nothing can wake us, so this
// panics to flag misuse.
func (NopEnv) Wait(q *WaitQueue) {
	panic("db: NopEnv.Wait on " + q.Name + " (single-process engine cannot block)")
}

// Wake implements Env.
func (NopEnv) Wake(*WaitQueue) {}
