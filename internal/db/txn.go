package db

import "fmt"

// Txn is an in-flight transaction.
type Txn struct {
	ID   uint64
	held []uint64 // lock keys, release order = acquisition order
	undo []LogRec // before-images for abort
}

// Begin starts a transaction on the session.
func (s *Session) Begin() *Txn {
	s.PB.Enter("txn_begin")
	defer s.PB.Leave("txn_begin")
	if s.txn != nil {
		panic("db: nested transaction")
	}
	t := &Txn{ID: s.Eng.nextTxn}
	s.Eng.nextTxn++
	s.txn = t
	return t
}

// Txn returns the session's current transaction (nil outside one).
func (s *Session) Txn() *Txn { return s.txn }

// Commit forces the log (group commit) and releases locks.
func (s *Session) Commit() {
	s.PB.Enter("txn_commit")
	defer s.PB.Leave("txn_commit")
	t := s.txn
	if t == nil {
		panic("db: commit outside transaction")
	}
	lsn := s.LogAppend(LogRec{Txn: t.ID, Kind: LogCommit})
	s.logForce(lsn)
	s.ReleaseLocks()
	s.txn = nil
	s.Eng.noteCommit()
}

// Abort undoes the transaction's updates from its before-images, logs the
// abort, and releases locks.
func (s *Session) Abort() {
	s.PB.Enter("txn_abort")
	defer s.PB.Leave("txn_abort")
	t := s.txn
	if t == nil {
		panic("db: abort outside transaction")
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		s.PB.Branch("undo_iter", true)
		rec := t.undo[i]
		pg := s.bufGetQuiet(rec.Page)
		switch rec.Kind {
		case LogUpdate:
			if err := pg.Update(int(rec.Slot), rec.Before); err != nil {
				panic(err)
			}
		case LogInsert:
			if err := pg.Delete(int(rec.Slot)); err != nil {
				panic(err)
			}
		}
		s.Unpin(pg)
	}
	s.PB.Branch("undo_iter", false)
	s.LogAppend(LogRec{Txn: t.ID, Kind: LogAbort})
	s.ReleaseLocks()
	s.txn = nil
	s.Eng.Aborted++
}

// Prepare force-logs a prepare record for a distributed-transaction
// participant: its updates and locks become durable pending the
// coordinator's commit decision. The transaction stays open (locks held)
// until CommitPrepared or Abort.
func (s *Session) Prepare() {
	s.PB.Enter("txn_prepare")
	defer s.PB.Leave("txn_prepare")
	t := s.txn
	if t == nil {
		panic("db: prepare outside transaction")
	}
	lsn := s.LogAppend(LogRec{Txn: t.ID, Kind: LogPrepare})
	s.logForce(lsn)
}

// CommitPrepared applies the coordinator's commit decision on a prepared
// participant: it logs the commit record and releases locks without forcing
// the log — the forced prepare record plus the coordinator's forced commit
// already make the outcome durable, so the participant's commit record can
// ride the shard's next group flush.
func (s *Session) CommitPrepared() {
	s.PB.Enter("txn_resolve")
	defer s.PB.Leave("txn_resolve")
	t := s.txn
	if t == nil {
		panic("db: resolve outside transaction")
	}
	s.LogAppend(LogRec{Txn: t.ID, Kind: LogCommit})
	s.ReleaseLocks()
	s.txn = nil
	s.Eng.noteCommit()
}

// logForce implements group commit: the first committer whose LSN is not yet
// stable becomes the leader and performs the log write (a blocking kernel
// crossing); committers arriving while a flush is in flight park and are
// released together when the leader finishes. With a group-commit window
// configured, the leader additionally sleeps the window before writing, so
// commits arriving in that window join the batch instead of queuing behind
// it — the per-shard log daemon's amortized flush.
func (s *Session) logForce(lsn uint64) {
	s.PB.Enter("log_flush")
	defer s.PB.Leave("log_flush")
	w := s.Eng.WAL
	waited := false // parked at least once
	led := false    // performed a physical write itself
	for {
		done := w.FlushedLSN >= lsn
		s.PB.Branch("log_retry", !done)
		if done {
			break
		}
		leader := !w.Flushing
		s.PB.Branch("log_leader", leader)
		if leader {
			led = true
			w.Flushing = true
			if !s.Eng.PerCommitFlush && s.Eng.GroupCommitWindow > 0 {
				// The leader stands in for the shard's log daemon: it
				// sleeps out the batching window while later commits
				// append behind it. The pending mark tells the
				// environment whose (per-shard) window this sleep is.
				s.Eng.windowPending = true
				s.PB.Syscall("log_window")
			}
			target := w.CurrentLSN()
			if s.Eng.PerCommitFlush {
				// Per-commit flushing: write only this commit's prefix,
				// so every committer pays its own physical write (the
				// pre-group-commit baseline the benches compare against).
				target = lsn
			}
			s.PB.Syscall("log_write")
			w.MarkFlushed(target)
			w.Flushing = false
			s.Eng.Env.Wake(w.Waiters)
		} else {
			waited = true
			s.PB.Syscall("log_wait")
			s.Eng.Env.Wait(w.Waiters)
		}
	}
	// A force that parked and was released by someone else's physical
	// write piggybacked on that flush.
	if waited && !led {
		w.GroupedCommits++
	}
}

// ---- Heap table operations ----

// Insert appends a record to the heap table, allocating a fresh page when
// the tail page is full. The free-space check, page fetch and slot write
// run under a latch (critical section): without it, a page read blocking
// mid-insert would let a concurrent process fill the checked tail page.
func (tb *Table) Insert(s *Session, rec []byte) RID {
	s.PB.Enter("heap_insert")
	defer s.PB.Leave("heap_insert")
	s.BeginCritical()
	needNew := len(tb.Pages) == 0
	if !needNew {
		tail := s.bufGetQuiet(tb.Pages[len(tb.Pages)-1])
		needNew = tail.FreeBytes() < len(rec)+2
		s.Unpin(tail)
	}
	s.PB.Branch("heap_newpage", needNew)
	if needNew {
		tb.Pages = append(tb.Pages, tb.eng.AllocPage())
	}
	pgID := tb.Pages[len(tb.Pages)-1]
	pg := s.BufGet(pgID)
	defer s.Unpin(pg)
	slot, err := pg.Insert(rec)
	s.EndCritical()
	if err != nil {
		panic(fmt.Sprintf("db: heap insert: %v", err))
	}
	rid := RID{Page: pgID, Slot: uint16(slot)}
	lr := LogRec{Txn: s.txnID(), Kind: LogInsert, Page: pgID, Slot: uint16(slot), After: clone(rec)}
	s.LogAppend(lr)
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, lr)
	}
	s.PB.Data(PageAddr(pgID), 16, true) // page header: slot count, LSN
	s.PB.Data(PageAddr(pgID)+uint64(pg.DataOffset(slot)), len(rec)+2, true)
	return rid
}

// Fetch copies the record at rid.
func (tb *Table) Fetch(s *Session, rid RID) []byte {
	s.PB.Enter("heap_fetch")
	defer s.PB.Leave("heap_fetch")
	pg := s.BufGet(rid.Page)
	defer s.Unpin(pg)
	rec, err := pg.Record(int(rid.Slot))
	if err != nil {
		panic(fmt.Sprintf("db: heap fetch %v: %v", rid, err))
	}
	s.PB.Data(recordAddr(pg, rid), len(rec)+2, false)
	return clone(rec)
}

// recordAddr returns the honest simulated address of a record's length
// prefix (its first stored byte) for the D-cache models.
func recordAddr(pg *Page, rid RID) uint64 {
	return PageAddr(rid.Page) + uint64(pg.DataOffset(int(rid.Slot)))
}

// FetchFields is Fetch for schema-aware callers: it copies the whole record
// but models only the named fields as read — one data reference for the
// record's length prefix plus one per field at its resolved offset — and
// tallies each into the table's field-access profile. The instruction
// stream is identical to Fetch (same probe enter/leave shape; data
// references cost no instructions), so interleaved and grouped layouts
// differ only in the addresses the D-cache models see.
func (tb *Table) FetchFields(s *Session, rid RID, names ...string) []byte {
	s.PB.Enter("heap_fetch")
	defer s.PB.Leave("heap_fetch")
	pg := s.BufGet(rid.Page)
	defer s.Unpin(pg)
	rec, err := pg.Record(int(rid.Slot))
	if err != nil {
		panic(fmt.Sprintf("db: heap fetch %v: %v", rid, err))
	}
	base := recordAddr(pg, rid)
	s.PB.Data(base, 2, false) // record header: length prefix
	for _, name := range names {
		f, ok := tb.fieldByName[name]
		if !ok {
			panic(fmt.Sprintf("db: table %q has no field %q", tb.Name, name))
		}
		s.PB.Data(base+2+uint64(f.Off), f.Width, false)
		tb.tally[name].Reads++
	}
	return clone(rec)
}

// Update rewrites the record at rid (same size), logging before/after
// images.
func (tb *Table) Update(s *Session, rid RID, rec []byte) {
	s.PB.Enter("heap_update")
	defer s.PB.Leave("heap_update")
	pg := s.BufGet(rid.Page)
	defer s.Unpin(pg)
	old, err := pg.Record(int(rid.Slot))
	if err != nil {
		panic(fmt.Sprintf("db: heap update %v: %v", rid, err))
	}
	lr := LogRec{Txn: s.txnID(), Kind: LogUpdate, Page: rid.Page, Slot: rid.Slot,
		Before: clone(old), After: clone(rec)}
	s.LogAppend(lr)
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, lr)
	}
	if err := pg.Update(int(rid.Slot), rec); err != nil {
		panic(err)
	}
	s.PB.Data(PageAddr(rid.Page), 16, true) // page header LSN
	s.PB.Data(recordAddr(pg, rid), len(rec)+2, true)
}

// UpdateFields is Update for schema-aware callers: the full record image is
// still logged and written (fixed-size in-place update), but the modeled
// dirty bytes are only the named fields — a header write plus one write per
// field at its resolved offset — since the unnamed bytes are unchanged.
// Each named field is tallied as written in the field-access profile.
func (tb *Table) UpdateFields(s *Session, rid RID, rec []byte, names ...string) {
	s.PB.Enter("heap_update")
	defer s.PB.Leave("heap_update")
	pg := s.BufGet(rid.Page)
	defer s.Unpin(pg)
	old, err := pg.Record(int(rid.Slot))
	if err != nil {
		panic(fmt.Sprintf("db: heap update %v: %v", rid, err))
	}
	lr := LogRec{Txn: s.txnID(), Kind: LogUpdate, Page: rid.Page, Slot: rid.Slot,
		Before: clone(old), After: clone(rec)}
	s.LogAppend(lr)
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, lr)
	}
	if err := pg.Update(int(rid.Slot), rec); err != nil {
		panic(err)
	}
	s.PB.Data(PageAddr(rid.Page), 16, true) // page header LSN
	base := recordAddr(pg, rid)
	s.PB.Data(base, 2, true)
	for _, name := range names {
		f, ok := tb.fieldByName[name]
		if !ok {
			panic(fmt.Sprintf("db: table %q has no field %q", tb.Name, name))
		}
		s.PB.Data(base+2+uint64(f.Off), f.Width, true)
		tb.tally[name].Writes++
	}
}

func (s *Session) txnID() uint64 {
	if s.txn == nil {
		return 0
	}
	return s.txn.ID
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ---- Recovery ----

// Recover rebuilds the database from the disk checkpoint plus the stable
// log: redo-only (the engine never steals dirty pages of uncommitted
// transactions to disk mid-transaction; checkpoints happen at quiescence).
// It returns the set of committed transaction IDs.
func Recover(disk *Disk, wal *WAL) (map[uint64]bool, error) {
	committed := make(map[uint64]bool)
	for _, rec := range wal.Records {
		if rec.LSN > wal.FlushedLSN {
			break // tail never reached stable storage
		}
		if rec.Kind == LogCommit {
			committed[rec.Txn] = true
		}
	}
	// Redo committed changes in log order.
	pages := make(map[PageID]*Page)
	getPage := func(id PageID) *Page {
		if pg, ok := pages[id]; ok {
			return pg
		}
		pg := &Page{ID: id, Data: disk.Read(id)}
		pages[id] = pg
		return pg
	}
	for _, rec := range wal.Records {
		if rec.LSN > wal.FlushedLSN {
			break
		}
		if !committed[rec.Txn] {
			continue
		}
		switch rec.Kind {
		case LogInsert:
			pg := getPage(rec.Page)
			slot, err := pg.Insert(rec.After)
			if err != nil {
				return nil, fmt.Errorf("recover: %w", err)
			}
			if uint16(slot) != rec.Slot {
				return nil, fmt.Errorf("recover: insert slot %d, log says %d", slot, rec.Slot)
			}
		case LogUpdate:
			pg := getPage(rec.Page)
			if err := pg.Update(int(rec.Slot), rec.After); err != nil {
				return nil, fmt.Errorf("recover: %w", err)
			}
		}
	}
	for id, pg := range pages {
		disk.Write(id, pg.Data)
	}
	return committed, nil
}
