package db

import (
	"fmt"
	"sort"
)

// FieldDef places one named record field at a byte offset within a table's
// fixed-size records. A table's field defs are its physical record layout:
// the workloads resolve their encode/decode offsets from them, and the
// per-field heap accessors (Table.FetchFields/UpdateFields) emit one modeled
// data reference per touched field at its resolved offset — which is what
// lets a record-layout pass change the D-cache lines a transaction touches
// without changing its instruction stream.
type FieldDef struct {
	Name  string
	Off   int
	Width int
}

// FieldAccess tallies how often a field was read and written through the
// per-field heap accessors — the record-layout subsystem's training signal.
type FieldAccess struct {
	Reads  uint64
	Writes uint64
}

// Total returns the combined access count.
func (a FieldAccess) Total() uint64 { return a.Reads + a.Writes }

// ValidateFieldDefs checks a physical layout: distinct names, positive
// widths, non-negative offsets, and no byte overlap between fields.
func ValidateFieldDefs(table string, defs []FieldDef) error {
	if len(defs) == 0 {
		return fmt.Errorf("db: table %q: empty field layout", table)
	}
	names := make(map[string]bool, len(defs))
	sorted := make([]FieldDef, len(defs))
	copy(sorted, defs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	for i, f := range sorted {
		if f.Name == "" {
			return fmt.Errorf("db: table %q: unnamed field at offset %d", table, f.Off)
		}
		if f.Width <= 0 {
			return fmt.Errorf("db: table %q field %q: width %d; must be > 0", table, f.Name, f.Width)
		}
		if f.Off < 0 {
			return fmt.Errorf("db: table %q field %q: negative offset %d", table, f.Name, f.Off)
		}
		if names[f.Name] {
			return fmt.Errorf("db: table %q: duplicate field %q", table, f.Name)
		}
		names[f.Name] = true
		if i > 0 {
			prev := sorted[i-1]
			if prev.Off+prev.Width > f.Off {
				return fmt.Errorf("db: table %q: fields %q [%d,%d) and %q [%d,%d) overlap",
					table, prev.Name, prev.Off, prev.Off+prev.Width, f.Name, f.Off, f.Off+f.Width)
			}
		}
	}
	return nil
}

// SetFieldHints installs per-table physical record layouts to be applied
// when the named tables are created (a record-layout pass's output). It must
// be called before the workload loads — CreateTable consults the hints — and
// validates every layout up front, so a malformed layout fails the machine
// build instead of corrupting rows mid-run. A nil map is a no-op; hints for
// tables the workload never creates are ignored.
func (e *Engine) SetFieldHints(hints map[string][]FieldDef) error {
	if len(hints) == 0 {
		return nil
	}
	for table, defs := range hints {
		if err := ValidateFieldDefs(table, defs); err != nil {
			return err
		}
	}
	if e.fieldHints == nil {
		e.fieldHints = make(map[string][]FieldDef, len(hints))
	}
	for table, defs := range hints {
		e.fieldHints[table] = defs
	}
	return nil
}

// setFields installs a validated layout on the table and resets its tally.
func (t *Table) setFields(defs []FieldDef) {
	t.fields = append([]FieldDef(nil), defs...)
	t.fieldByName = make(map[string]*FieldDef, len(defs))
	t.tally = make(map[string]*FieldAccess, len(defs))
	for i := range t.fields {
		f := &t.fields[i]
		t.fieldByName[f.Name] = f
		t.tally[f.Name] = &FieldAccess{}
	}
}

// EnsureFields installs the given layout unless the table already has one
// (an engine field hint, installed at CreateTable, wins — that is how a
// grouped layout overrides the loader's interleaved default). When a layout
// is already present it is checked for compatibility: the same field names
// with the same widths, since only offsets may differ between layouts of one
// schema.
func (t *Table) EnsureFields(defs []FieldDef) error {
	if err := ValidateFieldDefs(t.Name, defs); err != nil {
		return err
	}
	if t.fields == nil {
		t.setFields(defs)
		return nil
	}
	if len(t.fields) != len(defs) {
		return fmt.Errorf("db: table %q: installed layout has %d fields, schema declares %d",
			t.Name, len(t.fields), len(defs))
	}
	for _, d := range defs {
		f, ok := t.fieldByName[d.Name]
		if !ok {
			return fmt.Errorf("db: table %q: installed layout is missing field %q", t.Name, d.Name)
		}
		if f.Width != d.Width {
			return fmt.Errorf("db: table %q field %q: installed width %d != schema width %d",
				t.Name, d.Name, f.Width, d.Width)
		}
	}
	return nil
}

// Fields returns the table's physical layout (nil before EnsureFields or a
// field hint installed one).
func (t *Table) Fields() []FieldDef { return t.fields }

// FieldOffset resolves a field's byte offset within the record. Unknown
// fields are programming errors (a workload addressing a field its schema
// never declared), so it panics rather than returning a sentinel.
func (t *Table) FieldOffset(name string) int {
	f, ok := t.fieldByName[name]
	if !ok {
		panic(fmt.Sprintf("db: table %q has no field %q (layout installed: %t)", t.Name, name, t.fields != nil))
	}
	return f.Off
}

// FieldAccesses returns a copy of the table's per-field access tally.
func (t *Table) FieldAccesses() map[string]FieldAccess {
	if len(t.tally) == 0 {
		return nil
	}
	out := make(map[string]FieldAccess, len(t.tally))
	for name, a := range t.tally {
		out[name] = *a
	}
	return out
}

// FieldProfile returns every table's per-field access tally, keyed by table
// name; tables without any tallied access are omitted. The machine merges
// these across shards into the record-layout training profile.
func (e *Engine) FieldProfile() map[string]map[string]FieldAccess {
	out := make(map[string]map[string]FieldAccess)
	for name, t := range e.tables {
		fa := t.FieldAccesses()
		keep := false
		for _, a := range fa {
			if a.Total() > 0 {
				keep = true
				break
			}
		}
		if keep {
			out[name] = fa
		}
	}
	return out
}
