// Package db implements the transaction-processing storage engine the OLTP
// workload runs on: slotted heap pages, an LRU buffer pool, B+tree indexes,
// a write-ahead log with group commit, a two-phase row lock manager, and a
// transaction layer with undo and crash recovery.
//
// The engine is real, executable Go; its routines are additionally
// instrumented through probe.Probe so that a codegen.Emitter can reproduce
// the instruction stream the equivalent compiled binary would fetch. All
// probe calls are structural no-ops under probe.Nop, so the engine is fully
// usable (and tested) standalone.
package db

import (
	"encoding/binary"
	"fmt"
)

// PageBytes is the database page size (8 KB, matching the Alpha page size
// used by the iTLB model so page-level effects line up).
const PageBytes = 8192

// PageID identifies a page within the database.
type PageID uint32

// InvalidPage is the null page ID.
const InvalidPage PageID = 0xFFFFFFFF

// DataBase is the base virtual address of the shared buffer pool (the SGA):
// every server process maps database pages at the same address, as Oracle's
// dedicated servers do.
const DataBase uint64 = 0x0000_8000_0000

// PageAddr returns the simulated virtual address of a page's first byte.
func PageAddr(id PageID) uint64 { return DataBase + uint64(id)*PageBytes }

// Slotted page layout:
//
//	0   u16 nslots
//	2   u16 free offset (start of free space)
//	4   u16 flags
//	6   u16 reserved
//	8.. slot table: u16 record offset per slot (0xFFFF = dead)
//	... free space ...
//	... records grow down from the end
const (
	pageHdrBytes = 8
	slotBytes    = 2
	deadSlot     = 0xFFFF
	offNumSlots  = 0
	offFreeStart = 2
)

// Page is one slotted page image.
type Page struct {
	ID   PageID
	Data []byte
	// Dirty marks pages modified since last checkpoint write.
	Dirty bool
	// LSN is the log sequence number of the last change (for recovery).
	LSN uint64

	pin int
}

// NewPage allocates an initialized, empty slotted page.
func NewPage(id PageID) *Page {
	p := &Page{ID: id, Data: make([]byte, PageBytes)}
	p.setU16(offFreeStart, pageHdrBytes)
	return p
}

func (p *Page) u16(off int) uint16       { return binary.LittleEndian.Uint16(p.Data[off:]) }
func (p *Page) setU16(off int, v uint16) { binary.LittleEndian.PutUint16(p.Data[off:], v) }

// NumSlots returns the number of slots (live or dead) on the page.
func (p *Page) NumSlots() int { return int(p.u16(offNumSlots)) }

func (p *Page) slotOff(slot int) int { return pageHdrBytes + slot*slotBytes }

// recordEnd returns the lowest byte offset used by record storage.
func (p *Page) recordEnd() int {
	n := p.NumSlots()
	end := PageBytes
	for s := 0; s < n; s++ {
		off := int(p.u16(p.slotOff(s)))
		if off != deadSlot && off < end {
			end = off
		}
	}
	return end
}

// FreeBytes returns the usable free space for one more record of any size
// (slot table growth included).
func (p *Page) FreeBytes() int {
	top := p.slotOff(p.NumSlots()) // end of slot table
	return p.recordEnd() - top - slotBytes
}

// Insert adds a record and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	need := len(rec) + 2 // record prefixed by u16 length
	if p.FreeBytes() < need {
		return 0, fmt.Errorf("page %d: full (%d free, %d needed)", p.ID, p.FreeBytes(), need)
	}
	slot := p.NumSlots()
	off := p.recordEnd() - need
	binary.LittleEndian.PutUint16(p.Data[off:], uint16(len(rec)))
	copy(p.Data[off+2:], rec)
	p.setU16(p.slotOff(slot), uint16(off))
	p.setU16(offNumSlots, uint16(slot+1))
	p.Dirty = true
	return slot, nil
}

// Record returns the record stored in the slot. The returned slice aliases
// the page; callers must not hold it across page modifications.
func (p *Page) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, fmt.Errorf("page %d: slot %d out of range", p.ID, slot)
	}
	off := int(p.u16(p.slotOff(slot)))
	if off == deadSlot {
		return nil, fmt.Errorf("page %d: slot %d dead", p.ID, slot)
	}
	n := int(binary.LittleEndian.Uint16(p.Data[off:]))
	return p.Data[off+2 : off+2+n], nil
}

// DataOffset returns the page-relative byte offset of a slot's stored
// record: the u16 length prefix sits at the returned offset and the record
// bytes begin 2 past it. The slot must be live (callers have already
// resolved it through Record); combined with PageAddr it yields the honest
// simulated address of a record for the D-cache models.
func (p *Page) DataOffset(slot int) int {
	return int(p.u16(p.slotOff(slot)))
}

// Update overwrites the record in place; the new record must have the same
// length (fixed-size rows, as TPC-B uses).
func (p *Page) Update(slot int, rec []byte) error {
	old, err := p.Record(slot)
	if err != nil {
		return err
	}
	if len(old) != len(rec) {
		return fmt.Errorf("page %d: update size %d != %d", p.ID, len(rec), len(old))
	}
	copy(old, rec)
	p.Dirty = true
	return nil
}

// Delete marks a slot dead.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.NumSlots() {
		return fmt.Errorf("page %d: slot %d out of range", p.ID, slot)
	}
	p.setU16(p.slotOff(slot), deadSlot)
	p.Dirty = true
	return nil
}

// RID names a record: page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Pack encodes the RID as a uint64 (for index values).
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID { return RID{Page: PageID(v >> 16), Slot: uint16(v)} }
