package db_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codelayout/internal/db"
)

func newEngine(t *testing.T) (*db.Engine, *db.Session) {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPoolPages: 512})
	return eng, eng.NewSession(1, nil)
}

func TestPageInsertFetchUpdate(t *testing.T) {
	p := db.NewPage(1)
	slot, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(slot)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("rec=%q err=%v", rec, err)
	}
	if err := p.Update(slot, []byte("world")); err != nil {
		t.Fatal(err)
	}
	rec, _ = p.Record(slot)
	if string(rec) != "world" {
		t.Fatalf("after update: %q", rec)
	}
	if err := p.Update(slot, []byte("too long!")); err == nil {
		t.Fatal("size-changing update must fail")
	}
	if err := p.Delete(slot); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(slot); err == nil {
		t.Fatal("deleted slot should error")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := db.NewPage(1)
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		n++
	}
	// 8KB page, 102 bytes per record + 2 slot bytes: ~78 records.
	if n < 70 || n > 82 {
		t.Fatalf("records per page = %d", n)
	}
}

func TestPageRecordsSurviveManyInserts(t *testing.T) {
	p := db.NewPage(1)
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		if _, err := p.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	for i, w := range want {
		got, err := p.Record(i)
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("slot %d: %q vs %q (%v)", i, got, w, err)
		}
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	eng := db.NewEngine(db.Config{BufferPoolPages: 2})
	s := eng.NewSession(1, nil)
	ids := []db.PageID{eng.AllocPage(), eng.AllocPage(), eng.AllocPage()}
	// Dirty page 0, then touch two more to force eviction.
	pg := s.BufGet(ids[0])
	pg.Data[100] = 0xAB
	pg.Dirty = true
	s.Unpin(pg)
	for _, id := range ids[1:] {
		pg := s.BufGet(id)
		s.Unpin(pg)
	}
	if eng.Pool.Resident() != 2 {
		t.Fatalf("resident = %d", eng.Pool.Resident())
	}
	// Re-read page 0: must come back from disk with the modification.
	pg = s.BufGet(ids[0])
	if pg.Data[100] != 0xAB {
		t.Fatal("writeback lost data")
	}
	s.Unpin(pg)
	if eng.Pool.Misses < 4 {
		t.Fatalf("misses = %d", eng.Pool.Misses)
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	eng := db.NewEngine(db.Config{BufferPoolPages: 2})
	s := eng.NewSession(1, nil)
	a, b, c := eng.AllocPage(), eng.AllocPage(), eng.AllocPage()
	pa := s.BufGet(a) // keep pinned
	pb := s.BufGet(b)
	s.Unpin(pb)
	pc := s.BufGet(c) // must evict b, not pinned a
	s.Unpin(pc)
	pa2 := s.BufGet(a)
	if eng.Pool.Misses != 3 {
		t.Fatalf("misses = %d (pinned page was evicted?)", eng.Pool.Misses)
	}
	s.Unpin(pa2)
	s.Unpin(pa)
}

func TestBTreeInsertSearch(t *testing.T) {
	eng, s := newEngine(t)
	bt := eng.CreateBTree("t")
	for i := uint64(0); i < 2000; i++ {
		if err := bt.Insert(s, i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Validate(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		v, ok := bt.Search(s, i*3)
		if !ok || v != i {
			t.Fatalf("key %d: v=%d ok=%v", i*3, v, ok)
		}
		if _, ok := bt.Search(s, i*3+1); ok {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
	if bt.Height() < 2 {
		t.Fatalf("height = %d, expected splits", bt.Height())
	}
	if got := bt.Count(s); got != 2000 {
		t.Fatalf("count = %d", got)
	}
}

func TestBTreeOverwrite(t *testing.T) {
	eng, s := newEngine(t)
	bt := eng.CreateBTree("t")
	if err := bt.Insert(s, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := bt.Insert(s, 7, 2); err != nil {
		t.Fatal(err)
	}
	v, ok := bt.Search(s, 7)
	if !ok || v != 2 {
		t.Fatalf("v=%d ok=%v", v, ok)
	}
	if got := bt.Count(s); got != 1 {
		t.Fatalf("count = %d", got)
	}
}

// Property: after inserting any random key set, every key is found with its
// latest value, no other key is found, and the tree validates.
func TestBTreeRandomProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng := db.NewEngine(db.Config{BufferPoolPages: 2048})
		s := eng.NewSession(1, nil)
		bt := eng.CreateBTree("t")
		want := make(map[uint64]uint64)
		n := 200 + r.Intn(3000)
		for i := 0; i < n; i++ {
			k := uint64(r.Intn(10000))
			v := uint64(r.Intn(1 << 30))
			if err := bt.Insert(s, k, v); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			want[k] = v
		}
		if err := bt.Validate(s); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if bt.Count(s) != len(want) {
			t.Logf("seed %d: count %d != %d", seed, bt.Count(s), len(want))
			return false
		}
		for k, v := range want {
			got, ok := bt.Search(s, k)
			if !ok || got != v {
				t.Logf("seed %d: key %d: got %d,%v want %d", seed, k, got, ok, v)
				return false
			}
		}
		for i := 0; i < 100; i++ {
			k := uint64(10000 + r.Intn(10000))
			if _, ok := bt.Search(s, k); ok {
				t.Logf("seed %d: phantom %d", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLockManagerModes(t *testing.T) {
	lm := db.NewLockMgr()
	_ = lm
	eng, _ := newEngine(t)
	s1 := eng.NewSession(1, nil)
	t1 := s1.Begin()
	key := db.LockKey(1, 42)
	s1.LockX(key)
	if !eng.Locks.HeldBy(t1.ID, key, db.LockX) {
		t.Fatal("lock not held")
	}
	// Re-acquire by the same transaction must not deadlock or double-count.
	s1.LockX(key)
	s1.Commit()
	if eng.Locks.HeldBy(t1.ID, key, db.LockS) {
		t.Fatal("lock survived commit")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	eng, _ := newEngine(t)
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	key := db.LockKey(1, 7)
	t1 := s1.Begin()
	s1.LockS(key)
	t2 := s2.Begin()
	s2.LockS(key) // must not block
	if !eng.Locks.HeldBy(t1.ID, key, db.LockS) || !eng.Locks.HeldBy(t2.ID, key, db.LockS) {
		t.Fatal("shared locks should coexist")
	}
	s1.Commit()
	s2.Commit()
}

func TestTxnCommitPersistsAndAbortsUndo(t *testing.T) {
	eng, s := newEngine(t)
	tb := eng.CreateTable("t")
	rid := tb.Insert(s, []byte("aaaa")) // outside txn (load)
	s.Begin()
	tb.Update(s, rid, []byte("bbbb"))
	s.Commit()
	if string(tb.Fetch(s, rid)) != "bbbb" {
		t.Fatal("committed update lost")
	}
	s.Begin()
	tb.Update(s, rid, []byte("cccc"))
	rid2 := tb.Insert(s, []byte("dddd"))
	s.Abort()
	if string(tb.Fetch(s, rid)) != "bbbb" {
		t.Fatal("abort did not undo update")
	}
	pg := s.BufGet(rid2.Page)
	if _, err := pg.Record(int(rid2.Slot)); err == nil {
		t.Fatal("abort did not undo insert")
	}
	s.Unpin(pg)
	if eng.Committed != 1 || eng.Aborted != 1 {
		t.Fatalf("committed=%d aborted=%d", eng.Committed, eng.Aborted)
	}
}

func TestGroupCommitSingleProcess(t *testing.T) {
	eng, s := newEngine(t)
	tb := eng.CreateTable("t")
	rid := tb.Insert(s, []byte("aaaa"))
	flushes0 := eng.WAL.Flushes
	for i := 0; i < 5; i++ {
		s.Begin()
		tb.Update(s, rid, []byte{byte('a' + i), 'x', 'y', 'z'})
		s.Commit()
	}
	if eng.WAL.Flushes != flushes0+5 {
		t.Fatalf("flushes = %d, want %d (no grouping possible single-process)",
			eng.WAL.Flushes, flushes0+5)
	}
	if eng.WAL.FlushedLSN != eng.WAL.CurrentLSN() {
		t.Fatal("log not fully flushed after commits")
	}
}

func TestRecoveryRedoCommitted(t *testing.T) {
	eng, s := newEngine(t)
	tb := eng.CreateTable("t")
	rid := tb.Insert(s, []byte("orig"))
	eng.Pool.FlushAll() // checkpoint
	eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())

	s.Begin()
	tb.Update(s, rid, []byte("new1"))
	s.Commit()
	s.Begin()
	rid2 := tb.Insert(s, []byte("new2"))
	s.Commit()
	// A transaction that never committed before the crash: its records are
	// in the log buffer tail or flushed but without a commit record.
	s.Begin()
	tb.Update(s, rid, []byte("bad!"))
	// Crash now: do NOT flush the pool; recover from disk + stable log.
	committed, err := db.Recover(eng.Disk, eng.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if len(committed) != 2 {
		t.Fatalf("committed txns = %v", committed)
	}
	// Re-open: read pages straight from disk.
	img := eng.Disk.Read(rid.Page)
	pg := &db.Page{ID: rid.Page, Data: img}
	rec, err := pg.Record(int(rid.Slot))
	if err != nil || string(rec) != "new1" {
		t.Fatalf("recovered rec = %q (%v)", rec, err)
	}
	img2 := eng.Disk.Read(rid2.Page)
	pg2 := &db.Page{ID: rid2.Page, Data: img2}
	rec2, err := pg2.Record(int(rid2.Slot))
	if err != nil || string(rec2) != "new2" {
		t.Fatalf("recovered insert = %q (%v)", rec2, err)
	}
}

func TestRecoveryIgnoresUnflushedTail(t *testing.T) {
	eng, s := newEngine(t)
	tb := eng.CreateTable("t")
	rid := tb.Insert(s, []byte("orig"))
	eng.Pool.FlushAll()
	eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())
	// Commit record appended but pretend the flush never happened by
	// rolling FlushedLSN back is not possible through the API; instead
	// append updates without commit and verify they are not redone.
	s.Begin()
	tb.Update(s, rid, []byte("lost"))
	committed, err := db.Recover(eng.Disk, eng.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if len(committed) != 0 {
		t.Fatalf("committed = %v", committed)
	}
	img := eng.Disk.Read(rid.Page)
	pg := &db.Page{ID: rid.Page, Data: img}
	rec, _ := pg.Record(int(rid.Slot))
	if string(rec) != "orig" {
		t.Fatalf("uncommitted change leaked: %q", rec)
	}
}

func TestEncodeRecRoundtripsSizes(t *testing.T) {
	rec := db.LogRec{LSN: 9, Txn: 3, Kind: db.LogUpdate, Page: 7, Slot: 2,
		Before: []byte("aa"), After: []byte("bb")}
	buf := db.EncodeRec(rec)
	if len(buf) != 8+8+1+4+2+2+2+2+2 {
		t.Fatalf("encoded size = %d", len(buf))
	}
}
