package db

import (
	"encoding/binary"
	"fmt"
)

// B+tree node layout on a raw page:
//
//	0  u16 kind (1 = leaf, 2 = inner)
//	2  u16 nkeys
//	4  u32 right sibling (leaves; InvalidPage otherwise)
//	8  entries:
//	   leaf:  nkeys × (key u64, val u64)
//	   inner: child0 u32, then nkeys × (key u64, child u32)
//
// Inner key semantics: subtree child[i] holds keys < key[i]; child[nkeys]
// holds the rest.
const (
	nodeLeaf  = 1
	nodeInner = 2

	btHdr      = 8
	leafEntry  = 16
	innerEntry = 12
	// Conservative capacities leaving headroom for the header.
	leafCap  = (PageBytes - btHdr) / leafEntry
	innerCap = (PageBytes - btHdr - 4) / innerEntry
)

// BTree is a B+tree index over uint64 keys and values.
type BTree struct {
	Name   string
	eng    *Engine
	root   PageID
	height int // 1 = root is a leaf
}

func btKind(p *Page) int       { return int(binary.LittleEndian.Uint16(p.Data[0:])) }
func btSetKind(p *Page, k int) { binary.LittleEndian.PutUint16(p.Data[0:], uint16(k)) }
func btN(p *Page) int          { return int(binary.LittleEndian.Uint16(p.Data[2:])) }
func btSetN(p *Page, n int)    { binary.LittleEndian.PutUint16(p.Data[2:], uint16(n)) }

func leafKey(p *Page, i int) uint64 { return binary.LittleEndian.Uint64(p.Data[btHdr+i*leafEntry:]) }
func leafVal(p *Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Data[btHdr+i*leafEntry+8:])
}
func leafSet(p *Page, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(p.Data[btHdr+i*leafEntry:], k)
	binary.LittleEndian.PutUint64(p.Data[btHdr+i*leafEntry+8:], v)
}

func leafSib(p *Page) PageID { return PageID(binary.LittleEndian.Uint32(p.Data[4:])) }
func leafSetSib(p *Page, id PageID) {
	binary.LittleEndian.PutUint32(p.Data[4:], uint32(id))
}

func innerChild(p *Page, i int) PageID {
	if i == 0 {
		return PageID(binary.LittleEndian.Uint32(p.Data[btHdr:]))
	}
	return PageID(binary.LittleEndian.Uint32(p.Data[btHdr+4+(i-1)*innerEntry+8:]))
}
func innerKey(p *Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Data[btHdr+4+i*innerEntry:])
}
func innerSetChild0(p *Page, c PageID) {
	binary.LittleEndian.PutUint32(p.Data[btHdr:], uint32(c))
}
func innerSet(p *Page, i int, k uint64, child PageID) {
	binary.LittleEndian.PutUint64(p.Data[btHdr+4+i*innerEntry:], k)
	binary.LittleEndian.PutUint32(p.Data[btHdr+4+i*innerEntry+8:], uint32(child))
}

// CreateBTree allocates an empty index.
func (e *Engine) CreateBTree(name string) *BTree {
	root := e.AllocPage()
	pg, _, err := e.Pool.get(root)
	if err != nil {
		panic(err)
	}
	btSetKind(pg, nodeLeaf)
	btSetN(pg, 0)
	leafSetSib(pg, InvalidPage)
	pg.Dirty = true
	e.Pool.Unpin(pg)
	t := &BTree{Name: name, eng: e, root: root, height: 1}
	e.trees[name] = t
	return t
}

// Height returns the current tree height (1 = single leaf).
func (t *BTree) Height() int { return t.height }

// Search finds the value for key. Instrumented: the descent loop, the
// per-node binary search steps and the final hit/miss are all reported, so
// the emitted instruction stream tracks the real data-dependent work.
func (t *BTree) Search(s *Session, key uint64) (uint64, bool) {
	s.PB.Enter("bt_search")
	defer s.PB.Leave("bt_search")
	s.BeginCritical()
	defer s.EndCritical()
	pgID := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		s.PB.Branch("bt_descend", true)
		node := s.BufGet(pgID)
		idx := t.innerSearch(s, node, key)
		pgID = innerChild(node, idx)
		s.Unpin(node)
	}
	s.PB.Branch("bt_descend", false)
	leaf := s.BufGet(pgID)
	idx, found := t.leafSearch(s, leaf, key)
	var val uint64
	if found {
		val = leafVal(leaf, idx)
		s.PB.Data(PageAddr(pgID)+uint64(btHdr+idx*leafEntry), leafEntry, false)
	}
	s.Unpin(leaf)
	s.PB.Branch("bt_found", found)
	return val, found
}

// ScanRange visits every key in [lo, hi] in ascending order, following the
// leaf sibling chain, and calls fn for each entry; fn returning false stops
// the scan. It returns the number of entries visited. Instrumented: the
// descent, the per-leaf positioning and every iterate/leaf-hop step are
// reported, so range scans contribute their real data-dependent work to the
// emitted instruction stream.
func (t *BTree) ScanRange(s *Session, lo, hi uint64, fn func(key, val uint64) bool) int {
	s.PB.Enter("bt_range")
	defer s.PB.Leave("bt_range")
	s.BeginCritical()
	defer s.EndCritical()
	pgID := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		s.PB.Branch("btr_descend", true)
		node := s.BufGet(pgID)
		idx := t.innerSearch(s, node, lo)
		pgID = innerChild(node, idx)
		s.Unpin(node)
	}
	s.PB.Branch("btr_descend", false)
	leaf := s.BufGet(pgID)
	idx, _ := t.leafSearch(s, leaf, lo)
	n := 0
	for {
		if idx < btN(leaf) && leafKey(leaf, idx) <= hi {
			s.PB.Branch("btr_iter", true)
			s.PB.Branch("btr_hop", false)
			s.PB.Data(PageAddr(leaf.ID)+uint64(btHdr+idx*leafEntry), leafEntry, false)
			key, val := leafKey(leaf, idx), leafVal(leaf, idx)
			idx++
			n++
			if !fn(key, val) {
				break
			}
			continue
		}
		if idx >= btN(leaf) {
			if sib := leafSib(leaf); sib != InvalidPage {
				s.PB.Branch("btr_iter", true)
				s.PB.Branch("btr_hop", true)
				s.Unpin(leaf)
				leaf = s.BufGet(sib)
				idx = 0
				continue
			}
		}
		break
	}
	s.PB.Branch("btr_iter", false)
	s.Unpin(leaf)
	return n
}

// innerSearch returns the child index to descend into, reporting each
// binary-search step at site "bt_scan".
func (t *BTree) innerSearch(s *Session, node *Page, key uint64) int {
	n := btN(node)
	lo, hi := 0, n // child index in [0, n]
	for lo < hi {
		s.PB.Branch("bt_scan", true)
		mid := (lo + hi) / 2
		s.PB.Data(PageAddr(node.ID)+uint64(btHdr+4+mid*innerEntry), 8, false)
		if key < innerKey(node, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.PB.Branch("bt_scan", false)
	return lo
}

// leafSearch binary-searches the leaf, reporting steps at site "bt_leaf".
func (t *BTree) leafSearch(s *Session, leaf *Page, key uint64) (int, bool) {
	n := btN(leaf)
	lo, hi := 0, n
	for lo < hi {
		s.PB.Branch("bt_leaf", true)
		mid := (lo + hi) / 2
		s.PB.Data(PageAddr(leaf.ID)+uint64(btHdr+mid*leafEntry), 8, false)
		if leafKey(leaf, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.PB.Branch("bt_leaf", false)
	return lo, lo < n && leafKey(leaf, lo) == key
}

// Insert adds key→val, splitting as needed. Keys must be unique; inserting
// an existing key overwrites its value.
func (t *BTree) Insert(s *Session, key, val uint64) error {
	s.PB.Enter("bt_insert")
	defer s.PB.Leave("bt_insert")
	s.BeginCritical()
	defer s.EndCritical()
	promoted, newChild, err := t.insertAt(s, t.root, t.height, key, val)
	if err != nil {
		return err
	}
	s.PB.Branch("bt_grow", newChild != InvalidPage)
	if newChild != InvalidPage {
		// Root split: new root with two children.
		newRoot := t.eng.AllocPage()
		pg := s.bufGetQuiet(newRoot)
		btSetKind(pg, nodeInner)
		btSetN(pg, 1)
		innerSetChild0(pg, t.root)
		innerSet(pg, 0, promoted, newChild)
		pg.Dirty = true
		s.Unpin(pg)
		t.root = newRoot
		t.height++
	}
	return nil
}

// insertAt descends to the leaf, inserting and splitting bottom-up. It
// returns (promotedKey, newRightSibling) when the node at this level split.
func (t *BTree) insertAt(s *Session, pgID PageID, lvl int, key, val uint64) (uint64, PageID, error) {
	node := s.bufGetQuiet(pgID)
	defer s.Unpin(node)
	if lvl == 1 {
		return t.leafInsert(s, node, key, val)
	}
	idx := quietInnerSearch(node, key)
	child := innerChild(node, idx)
	promoted, newChild, err := t.insertAt(s, child, lvl-1, key, val)
	if err != nil || newChild == InvalidPage {
		return 0, InvalidPage, err
	}
	return t.innerInsert(s, node, idx, promoted, newChild)
}

func quietInnerSearch(node *Page, key uint64) int {
	n := btN(node)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if key < innerKey(node, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (t *BTree) leafInsert(s *Session, leaf *Page, key, val uint64) (uint64, PageID, error) {
	n := btN(leaf)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(leaf, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && leafKey(leaf, lo) == key {
		leafSet(leaf, lo, key, val)
		leaf.Dirty = true
		return 0, InvalidPage, nil
	}
	if n < leafCap {
		shiftLeaf(leaf, lo, n)
		leafSet(leaf, lo, key, val)
		btSetN(leaf, n+1)
		leaf.Dirty = true
		return 0, InvalidPage, nil
	}
	// Split: right half moves to a new leaf.
	rightID := t.eng.AllocPage()
	right := s.bufGetQuiet(rightID)
	defer s.Unpin(right)
	btSetKind(right, nodeLeaf)
	leafSetSib(right, leafSib(leaf))
	leafSetSib(leaf, rightID)
	mid := n / 2
	for i := mid; i < n; i++ {
		leafSet(right, i-mid, leafKey(leaf, i), leafVal(leaf, i))
	}
	btSetN(right, n-mid)
	btSetN(leaf, mid)
	leaf.Dirty = true
	right.Dirty = true
	// Insert into the proper half.
	target, tn := leaf, mid
	off := lo
	if lo > mid {
		target, tn = right, n-mid
		off = lo - mid
	}
	shiftLeaf(target, off, tn)
	leafSet(target, off, key, val)
	btSetN(target, tn+1)
	target.Dirty = true
	return leafKey(right, 0), rightID, nil
}

func shiftLeaf(leaf *Page, at, n int) {
	copy(leaf.Data[btHdr+(at+1)*leafEntry:btHdr+(n+1)*leafEntry],
		leaf.Data[btHdr+at*leafEntry:btHdr+n*leafEntry])
}

func (t *BTree) innerInsert(s *Session, node *Page, idx int, key uint64, child PageID) (uint64, PageID, error) {
	n := btN(node)
	if n < innerCap {
		// Shift entries right of idx.
		copy(node.Data[btHdr+4+(idx+1)*innerEntry:btHdr+4+(n+1)*innerEntry],
			node.Data[btHdr+4+idx*innerEntry:btHdr+4+n*innerEntry])
		innerSet(node, idx, key, child)
		btSetN(node, n+1)
		node.Dirty = true
		return 0, InvalidPage, nil
	}
	// Split the inner node. Collect entries including the new one, then
	// redistribute around the median.
	type entry struct {
		k uint64
		c PageID
	}
	entries := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		entries = append(entries, entry{innerKey(node, i), innerChild(node, i+1)})
	}
	entries = append(entries[:idx], append([]entry{{key, child}}, entries[idx:]...)...)
	midIdx := len(entries) / 2
	promote := entries[midIdx]

	rightID := t.eng.AllocPage()
	right := s.bufGetQuiet(rightID)
	defer s.Unpin(right)
	btSetKind(right, nodeInner)
	innerSetChild0(right, promote.c)
	rn := 0
	for _, e := range entries[midIdx+1:] {
		innerSet(right, rn, e.k, e.c)
		rn++
	}
	btSetN(right, rn)
	right.Dirty = true

	btSetN(node, midIdx)
	ln := 0
	for _, e := range entries[:midIdx] {
		innerSet(node, ln, e.k, e.c)
		ln++
	}
	node.Dirty = true
	return promote.k, rightID, nil
}

// Validate checks B+tree invariants (sorted keys, consistent heights,
// children key ranges, an intact leaf sibling chain). Used by tests.
func (t *BTree) Validate(s *Session) error {
	var minKey, maxKey uint64 = 0, ^uint64(0)
	total, err := t.validateNode(s, t.root, t.height, minKey, maxKey)
	if err != nil {
		return err
	}
	return t.validateChain(s, total)
}

// validateChain walks the leaf sibling chain from the leftmost leaf and
// checks that it visits every key, in ascending order.
func (t *BTree) validateChain(s *Session, want int) error {
	pgID := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		node := s.bufGetQuiet(pgID)
		pgID = innerChild(node, 0)
		s.Unpin(node)
	}
	seen := 0
	last, any := uint64(0), false
	for pgID != InvalidPage {
		leaf := s.bufGetQuiet(pgID)
		for i := 0; i < btN(leaf); i++ {
			k := leafKey(leaf, i)
			if any && k <= last {
				s.Unpin(leaf)
				return fmt.Errorf("btree %s: sibling chain out of order at key %d", t.Name, k)
			}
			last, any = k, true
			seen++
		}
		pgID = leafSib(leaf)
		s.Unpin(leaf)
	}
	if seen != want {
		return fmt.Errorf("btree %s: sibling chain sees %d keys, tree holds %d", t.Name, seen, want)
	}
	return nil
}

func (t *BTree) validateNode(s *Session, pgID PageID, lvl int, lo, hi uint64) (int, error) {
	node := s.bufGetQuiet(pgID)
	defer s.Unpin(node)
	n := btN(node)
	if lvl == 1 {
		if btKind(node) != nodeLeaf {
			return 0, fmt.Errorf("btree %s: page %d should be leaf", t.Name, pgID)
		}
		for i := 0; i < n; i++ {
			k := leafKey(node, i)
			if i > 0 && leafKey(node, i-1) >= k {
				return 0, fmt.Errorf("btree %s: leaf %d keys out of order", t.Name, pgID)
			}
			if k < lo || k > hi {
				return 0, fmt.Errorf("btree %s: leaf %d key %d outside [%d,%d]", t.Name, pgID, k, lo, hi)
			}
		}
		return n, nil
	}
	if btKind(node) != nodeInner {
		return 0, fmt.Errorf("btree %s: page %d should be inner", t.Name, pgID)
	}
	total := 0
	for i := 0; i <= n; i++ {
		clo, chi := lo, hi
		if i > 0 {
			clo = innerKey(node, i-1)
		}
		if i < n {
			k := innerKey(node, i)
			if k == 0 {
				return 0, fmt.Errorf("btree %s: inner %d zero key", t.Name, pgID)
			}
			chi = k - 1
		}
		cnt, err := t.validateNode(s, innerChild(node, i), lvl-1, clo, chi)
		if err != nil {
			return 0, err
		}
		total += cnt
	}
	return total, nil
}

// Count returns the number of keys (tests).
func (t *BTree) Count(s *Session) int {
	n, _ := t.validateNode(s, t.root, t.height, 0, ^uint64(0))
	return n
}
