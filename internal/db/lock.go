package db

import "fmt"

// LockMode is the requested lock strength.
type LockMode uint8

const (
	// LockS is a shared (read) lock.
	LockS LockMode = iota
	// LockX is an exclusive (write) lock.
	LockX
)

func (m LockMode) String() string {
	if m == LockX {
		return "X"
	}
	return "S"
}

// lockState tracks one lockable resource.
type lockState struct {
	holders map[uint64]LockMode // txn ID → strongest held mode
	queue   *WaitQueue
	waiting int
}

// LockMgr is a strict two-phase row lock manager. Conflicting requests park
// the calling process on the resource's wait queue; releases wake the queue
// and woken processes re-check compatibility (no lock conversions beyond
// S→X upgrade by a sole holder).
//
// Deadlock note: the TPC-B transaction acquires its locks in a globally
// consistent order (account, teller, branch — distinct key spaces in
// ascending space order), which precludes cycles. A DetectOrder helper is
// exposed so tests can assert the ordering discipline.
type LockMgr struct {
	locks map[uint64]*lockState

	Acquires  uint64
	Conflicts uint64
	Upgrades  uint64
}

// NewLockMgr creates an empty lock manager.
func NewLockMgr() *LockMgr {
	return &LockMgr{locks: make(map[uint64]*lockState, 1<<12)}
}

// LockKey composes a lockable key from a key space and a row identifier.
func LockKey(space uint8, id uint64) uint64 {
	return uint64(space)<<56 | (id & (1<<56 - 1))
}

// try attempts to acquire without blocking. It reports whether the lock was
// granted and whether the grant is a new hold (false for re-acquisitions
// and upgrades, which must not be released twice).
func (lm *LockMgr) try(txn uint64, key uint64, mode LockMode) (granted, isNew bool) {
	st, ok := lm.locks[key]
	if !ok {
		st = &lockState{holders: make(map[uint64]LockMode, 2), queue: NewWaitQueue("lock")}
		lm.locks[key] = st
	}
	if held, mine := st.holders[txn]; mine {
		if held >= mode {
			return true, false
		}
		// S→X upgrade permitted only as sole holder.
		if len(st.holders) == 1 {
			st.holders[txn] = mode
			lm.Upgrades++
			return true, false
		}
		return false, false
	}
	if len(st.holders) == 0 {
		st.holders[txn] = mode
		lm.Acquires++
		return true, true
	}
	if mode == LockS {
		for _, m := range st.holders {
			if m == LockX {
				return false, false
			}
		}
		st.holders[txn] = mode
		lm.Acquires++
		return true, true
	}
	return false, false
}

// queueFor returns the wait queue of a key (creating state as needed).
func (lm *LockMgr) queueFor(key uint64) *WaitQueue {
	st, ok := lm.locks[key]
	if !ok {
		st = &lockState{holders: make(map[uint64]LockMode, 2), queue: NewWaitQueue("lock")}
		lm.locks[key] = st
	}
	return st.queue
}

// release drops txn's hold on key and reports whether waiters should be
// woken.
func (lm *LockMgr) release(txn uint64, key uint64) (bool, error) {
	st, ok := lm.locks[key]
	if !ok {
		return false, fmt.Errorf("lock: release of unknown key %#x", key)
	}
	if _, mine := st.holders[txn]; !mine {
		return false, fmt.Errorf("lock: txn %d releasing unheld key %#x", txn, key)
	}
	delete(st.holders, txn)
	return st.waiting > 0, nil
}

// HeldBy reports whether txn holds key at least at the given mode (tests).
func (lm *LockMgr) HeldBy(txn uint64, key uint64, mode LockMode) bool {
	st, ok := lm.locks[key]
	if !ok {
		return false
	}
	m, mine := st.holders[txn]
	return mine && m >= mode
}
