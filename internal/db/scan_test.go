package db_test

import (
	"math/rand"
	"testing"
)

// TestScanRange checks the leaf-chain range scan against a brute-force
// reference across random key sets and ranges, including scans that span
// many leaf splits.
func TestScanRange(t *testing.T) {
	eng, s := newEngine(t)
	bt := eng.CreateBTree("scan")
	r := rand.New(rand.NewSource(7))
	keys := make(map[uint64]uint64)
	for i := 0; i < 3000; i++ {
		k := uint64(r.Intn(10_000))
		keys[k] = k * 3
		if err := bt.Insert(s, k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Validate(s); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := uint64(r.Intn(10_000))
		hi := lo + uint64(r.Intn(4_000))
		var want []uint64
		for k := lo; k <= hi; k++ {
			if _, ok := keys[k]; ok {
				want = append(want, k)
			}
		}
		var got []uint64
		n := bt.ScanRange(s, lo, hi, func(k, v uint64) bool {
			if v != k*3 {
				t.Fatalf("key %d has value %d", k, v)
			}
			got = append(got, k)
			return true
		})
		if n != len(want) || len(got) != len(want) {
			t.Fatalf("[%d,%d]: scanned %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d]: got[%d]=%d want %d", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Early stop.
	count := 0
	n := bt.ScanRange(s, 0, ^uint64(0), func(k, v uint64) bool {
		count++
		return count < 10
	})
	if n != 10 || count != 10 {
		t.Fatalf("early stop visited %d/%d", count, n)
	}
	// Empty range.
	if n := bt.ScanRange(s, 20_001, 30_000, func(uint64, uint64) bool { return true }); n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
}
