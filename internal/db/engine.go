package db

import (
	"fmt"

	"codelayout/internal/probe"
	"codelayout/internal/stats"
)

// Engine is the shared database instance (the SGA): buffer pool, WAL, lock
// manager, catalogs. Server processes share one Engine through per-process
// Sessions; the simulated machine runs exactly one process at a time, so no
// internal locking is needed (as with real dedicated-server processes
// synchronizing through latches, which the models charge as library code).
type Engine struct {
	Disk  *Disk
	Pool  *BufferPool
	WAL   *WAL
	Locks *LockMgr
	Env   Env

	// Shard is this engine's index within a sharded group (0 standalone).
	// Page IDs and shared-structure addresses are offset per shard, so the
	// shards' buffer pools, log buffers and lock tables occupy disjoint
	// regions of the modeled address space.
	Shard int
	// GroupCommitWindow > 0 makes the flush leader sleep that many
	// instruction-times before writing, so concurrent commits batch into
	// one flush; 0 flushes as soon as a leader arrives.
	GroupCommitWindow uint64
	// PerCommitFlush disables group commit: every committer performs (or
	// queues for) its own physical log write. The baseline the group-commit
	// benches compare against.
	PerCommitFlush bool

	// windowPending marks that this engine's flush leader just requested a
	// log_window sleep, so the environment can attribute the sleep to this
	// engine's (possibly per-shard auto-tuned) window. See
	// TakeWindowPending.
	windowPending bool

	graph *WaitGraph

	trees     map[string]*BTree
	tables    map[string]*Table
	pageBase  PageID
	nextPage  PageID
	pageLimit PageID
	nextTxn   uint64

	// fieldHints holds per-table physical record layouts installed before
	// the workload loads (SetFieldHints); CreateTable applies them.
	fieldHints map[string][]FieldDef

	// Committed counts committed transactions.
	Committed uint64
	// Aborted counts aborted transactions.
	Aborted uint64
	// Deadlocks counts victim aborts forced by deadlock detection.
	Deadlocks uint64

	// CommitGaps histograms the inter-commit gaps observed on this engine
	// (instruction-times), recorded whenever the environment implements
	// Clock. The group-commit auto-tuner reads the shard's commit arrival
	// process from it instead of assuming a uniform rate.
	CommitGaps stats.Log2Hist
	// lastCommitAt is the clock reading of the most recent commit (0 before
	// the first timed commit).
	lastCommitAt uint64
}

// ShardPageStride is the default page-ID distance between consecutive
// shards' allocation ranges (64 MB of page addresses per shard; see
// Config.PageStride for groups that pack more shards into the region).
const ShardPageStride PageID = 1 << 13

// Config sizes the engine.
type Config struct {
	// BufferPoolPages caps resident pages. Size it to hold the whole
	// database to reproduce the paper's cached-tables setup.
	BufferPoolPages int
	// Env provides process blocking; nil means NopEnv (single process).
	Env Env
	// Shard is the engine's index within a sharded group.
	Shard int
	// Graph is the waits-for graph shared by every shard of a machine for
	// global deadlock detection; nil creates a private graph.
	Graph *WaitGraph
	// GroupCommitWindow is the group-commit batching window in
	// instruction-times (0 = flush as soon as a leader arrives).
	GroupCommitWindow uint64
	// PerCommitFlush disables group commit (see Engine.PerCommitFlush).
	PerCommitFlush bool
	// PageLimit caps the engine's page allocations (0 = unlimited). A
	// sharded group sets it to its stride so a growing shard cannot
	// silently spill page addresses into its neighbor's modeled window.
	PageLimit PageID
	// PageStride is the page-ID distance between consecutive shards'
	// allocation bases (0 = ShardPageStride). Wide sharded groups shrink it
	// so every shard's window still fits below the shared log buffers.
	PageStride PageID
}

// NewEngine creates an empty database.
func NewEngine(cfg Config) *Engine {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 4096
	}
	env := cfg.Env
	if env == nil {
		env = NopEnv{}
	}
	graph := cfg.Graph
	if graph == nil {
		graph = NewWaitGraph()
	}
	stride := cfg.PageStride
	if stride == 0 {
		stride = ShardPageStride
	}
	disk := NewDisk()
	return &Engine{
		Disk:              disk,
		Pool:              NewBufferPool(disk, cfg.BufferPoolPages),
		WAL:               NewWAL(),
		Locks:             NewLockMgr(),
		Env:               env,
		Shard:             cfg.Shard,
		GroupCommitWindow: cfg.GroupCommitWindow,
		PerCommitFlush:    cfg.PerCommitFlush,
		graph:             graph,
		trees:             make(map[string]*BTree),
		tables:            make(map[string]*Table),
		pageBase:          PageID(cfg.Shard) * stride,
		nextPage:          PageID(cfg.Shard) * stride,
		pageLimit:         cfg.PageLimit,
		nextTxn:           1,
	}
}

// noteCommit counts a committed transaction and, when the environment can
// tell time, records the gap since the engine's previous commit.
func (e *Engine) noteCommit() {
	e.Committed++
	c, ok := e.Env.(Clock)
	if !ok {
		return
	}
	now := c.Now()
	if now == 0 {
		return
	}
	if e.lastCommitAt > 0 && now >= e.lastCommitAt {
		e.CommitGaps.Add(now - e.lastCommitAt)
	}
	// Clocks are per-CPU and can diverge; a commit timestamped behind the
	// engine's high-water mark is skipped rather than allowed to rewind it,
	// so cross-CPU skew cannot fabricate a giant gap on the next commit.
	if now > e.lastCommitAt {
		e.lastCommitAt = now
	}
}

// TakeWindowPending reports whether this engine's flush leader just emitted
// a log_window syscall and, if so, returns the engine's batching window and
// clears the mark. The machine uses it to charge the correct per-shard
// window when shards are tuned independently; exactly one engine of the
// running process can be pending, since a process commits one log force at a
// time.
func (e *Engine) TakeWindowPending() (uint64, bool) {
	if !e.windowPending {
		return 0, false
	}
	e.windowPending = false
	return e.GroupCommitWindow, true
}

// AllocPage reserves a fresh page ID.
func (e *Engine) AllocPage() PageID {
	if e.pageLimit > 0 && e.nextPage >= e.pageBase+e.pageLimit {
		panic(fmt.Sprintf("db: shard %d exhausted its %d-page address window (database grew past the per-shard region; use fewer shards or a smaller scale)",
			e.Shard, e.pageLimit))
	}
	id := e.nextPage
	e.nextPage++
	return id
}

// Tree returns a named index.
func (e *Engine) Tree(name string) *BTree { return e.trees[name] }

// Table is a heap table: pages filled append-only, with in-place updates.
type Table struct {
	Name  string
	Pages []PageID
	eng   *Engine

	// fields is the physical record layout (nil until EnsureFields or a
	// field hint installs one); fieldByName indexes it and tally counts
	// per-field accesses through FetchFields/UpdateFields.
	fields      []FieldDef
	fieldByName map[string]*FieldDef
	tally       map[string]*FieldAccess
}

// CreateTable registers an empty heap table. A field hint installed for the
// name (SetFieldHints) becomes the table's physical record layout, winning
// over the loader's interleaved default.
func (e *Engine) CreateTable(name string) *Table {
	t := &Table{Name: name, eng: e}
	if defs, ok := e.fieldHints[name]; ok {
		t.setFields(defs)
	}
	e.tables[name] = t
	return t
}

// Table returns a named heap table.
func (e *Engine) Table(name string) *Table { return e.tables[name] }

// Session is one server process's handle on the engine. PB receives the
// instrumentation events that drive the modeled instruction stream.
type Session struct {
	Eng *Engine
	PB  probe.Probe
	// PID identifies the server process (for diagnostics).
	PID int

	txn  *Txn
	crit int
}

// NewSession creates a session; pb may be probe.Nop{}.
func (e *Engine) NewSession(pid int, pb probe.Probe) *Session {
	if pb == nil {
		pb = probe.Nop{}
	}
	return &Session{Eng: e, PB: pb, PID: pid}
}

// BeginCritical brackets (with EndCritical) a short physical-structure
// operation — a B-tree descent or structure modification — during which the
// process must not lose the CPU, the stand-in for index latching (whose
// instruction cost the code models charge as library code). The machine
// defers preemption and performs page reads synchronously while a session
// is critical, so concurrent processes never observe a half-modified tree.
func (s *Session) BeginCritical() { s.crit++ }

// EndCritical leaves the innermost critical section.
func (s *Session) EndCritical() { s.crit-- }

// InCritical reports whether the session is inside a critical section.
func (s *Session) InCritical() bool { return s.crit > 0 }

// BufGet pins a page through the instrumented buffer-manager path: the
// hit/miss outcome is reported, and a miss crosses into the kernel for the
// read.
func (s *Session) BufGet(id PageID) *Page {
	s.PB.Enter("buf_get")
	defer s.PB.Leave("buf_get")
	pg, hit, err := s.Eng.Pool.get(id)
	if err != nil {
		panic(fmt.Sprintf("db: bufget %d: %v", id, err))
	}
	s.PB.Branch("buf_hit", hit)
	if hit {
		s.PB.Data(PageAddr(id), 32, false)
	} else {
		s.PB.Syscall("pread")
		s.PB.Data(PageAddr(id), 256, true)
	}
	return pg
}

// bufGetQuiet pins a page without instrumentation (load/recovery paths and
// B+tree structure modification, which the models charge as library code).
func (s *Session) bufGetQuiet(id PageID) *Page {
	pg, _, err := s.Eng.Pool.get(id)
	if err != nil {
		panic(fmt.Sprintf("db: bufget %d: %v", id, err))
	}
	return pg
}

// Unpin releases a page pin.
func (s *Session) Unpin(pg *Page) { s.Eng.Pool.Unpin(pg) }

// LockX acquires an exclusive row lock, parking the process on conflict
// until the holder releases. If waiting would close a waits-for cycle the
// session becomes the deadlock victim: it panics with ErrDeadlock (the
// modeled engine's longjmp) for the machine to abort and retry.
func (s *Session) LockX(key uint64) {
	s.lock(key, LockX)
}

// LockS acquires a shared row lock.
func (s *Session) LockS(key uint64) {
	s.lock(key, LockS)
}

func (s *Session) lock(key uint64, mode LockMode) {
	s.PB.Enter("lock_acquire")
	defer s.PB.Leave("lock_acquire")
	if s.txn == nil {
		panic("db: lock outside transaction")
	}
	ref := LockRef{Shard: s.Eng.Shard, Key: key}
	g := s.Eng.graph
	for {
		ok, isNew := s.Eng.Locks.try(s.txn.ID, key, mode)
		s.PB.Data(s.Eng.lockTableAddr(key), 64, true)
		s.PB.Branch("lock_conflict", !ok)
		if ok {
			if isNew {
				s.txn.held = append(s.txn.held, key)
				g.hold(ref, s.PID)
			}
			return
		}
		s.Eng.Locks.Conflicts++
		if g.cycles(s.PID, ref) {
			s.Eng.Deadlocks++
			if a, ok := s.PB.(Aborter); ok {
				a.AbortUnwind()
			}
			panic(ErrDeadlock)
		}
		st := s.Eng.Locks.locks[key]
		st.waiting++
		g.setWait(s.PID, ref)
		s.PB.Syscall("lock_sleep")
		s.Eng.Env.Wait(st.queue)
		g.clearWait(s.PID)
		st.waiting--
	}
}

// ReleaseLocks drops every lock held by the current transaction (strict
// 2PL: called at commit/abort).
func (s *Session) ReleaseLocks() {
	s.PB.Enter("lock_release")
	defer s.PB.Leave("lock_release")
	t := s.txn
	for _, key := range t.held {
		s.PB.Branch("lockrel_iter", true)
		s.PB.Data(s.Eng.lockTableAddr(key), 64, true)
		wake, err := s.Eng.Locks.release(t.ID, key)
		if err != nil {
			panic(err)
		}
		s.Eng.graph.unhold(LockRef{Shard: s.Eng.Shard, Key: key}, s.PID)
		if wake {
			s.Eng.Env.Wake(s.Eng.Locks.queueFor(key))
		}
	}
	s.PB.Branch("lockrel_iter", false)
	t.held = t.held[:0]
}

// LogAppend writes a WAL record through the instrumented path.
func (s *Session) LogAppend(rec LogRec) uint64 {
	s.PB.Enter("log_append")
	defer s.PB.Leave("log_append")
	lsn, off := s.Eng.WAL.Append(rec)
	s.PB.Data(s.Eng.logBufAddr(off), 32+len(rec.Before)+len(rec.After), true)
	s.PB.Branch("logbuf_high", s.Eng.WAL.BufferedBytes() > logBufHighWater)
	return lsn
}

// logBufHighWater models log-buffer pressure (purely an observable branch;
// flushing happens at commit).
const logBufHighWater = 1 << 16

// logBufAddr places the shard's (1 MB circular) log buffer in the shared
// data segment; records pack contiguously, so commits from different CPUs
// share lines. Shards keep disjoint 1 MB regions.
func (e *Engine) logBufAddr(offset int64) uint64 {
	return DataBase + 0x4000_0000 + uint64(e.Shard)<<20 + uint64(offset)%(1<<20)
}

// lockTableAddr places the shard's lock table: every acquire and release
// writes the resource's bucket, the way SGA-resident lock structures behave.
// Shards keep disjoint 1 MB regions.
func (e *Engine) lockTableAddr(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return DataBase + 0x6000_0000 + uint64(e.Shard)<<20 + (h%16384)*64
}

// ScratchAddr returns per-process private working storage (sort areas,
// cursor state); private data pressures the D-cache without producing
// sharing traffic.
func (s *Session) ScratchAddr(off uint64) uint64 {
	return DataBase + 0x7000_0000 + uint64(s.PID)<<20 + off%(1<<18)
}
