package db

import (
	"fmt"

	"codelayout/internal/probe"
)

// Engine is the shared database instance (the SGA): buffer pool, WAL, lock
// manager, catalogs. Server processes share one Engine through per-process
// Sessions; the simulated machine runs exactly one process at a time, so no
// internal locking is needed (as with real dedicated-server processes
// synchronizing through latches, which the models charge as library code).
type Engine struct {
	Disk  *Disk
	Pool  *BufferPool
	WAL   *WAL
	Locks *LockMgr
	Env   Env

	trees    map[string]*BTree
	tables   map[string]*Table
	nextPage PageID
	nextTxn  uint64

	// Committed counts committed transactions.
	Committed uint64
	// Aborted counts aborted transactions.
	Aborted uint64
}

// Config sizes the engine.
type Config struct {
	// BufferPoolPages caps resident pages. Size it to hold the whole
	// database to reproduce the paper's cached-tables setup.
	BufferPoolPages int
	// Env provides process blocking; nil means NopEnv (single process).
	Env Env
}

// NewEngine creates an empty database.
func NewEngine(cfg Config) *Engine {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 4096
	}
	env := cfg.Env
	if env == nil {
		env = NopEnv{}
	}
	disk := NewDisk()
	return &Engine{
		Disk:    disk,
		Pool:    NewBufferPool(disk, cfg.BufferPoolPages),
		WAL:     NewWAL(),
		Locks:   NewLockMgr(),
		Env:     env,
		trees:   make(map[string]*BTree),
		tables:  make(map[string]*Table),
		nextTxn: 1,
	}
}

// AllocPage reserves a fresh page ID.
func (e *Engine) AllocPage() PageID {
	id := e.nextPage
	e.nextPage++
	return id
}

// Tree returns a named index.
func (e *Engine) Tree(name string) *BTree { return e.trees[name] }

// Table is a heap table: pages filled append-only, with in-place updates.
type Table struct {
	Name  string
	Pages []PageID
	eng   *Engine
}

// CreateTable registers an empty heap table.
func (e *Engine) CreateTable(name string) *Table {
	t := &Table{Name: name, eng: e}
	e.tables[name] = t
	return t
}

// Table returns a named heap table.
func (e *Engine) Table(name string) *Table { return e.tables[name] }

// Session is one server process's handle on the engine. PB receives the
// instrumentation events that drive the modeled instruction stream.
type Session struct {
	Eng *Engine
	PB  probe.Probe
	// PID identifies the server process (for diagnostics).
	PID int

	txn  *Txn
	crit int
}

// NewSession creates a session; pb may be probe.Nop{}.
func (e *Engine) NewSession(pid int, pb probe.Probe) *Session {
	if pb == nil {
		pb = probe.Nop{}
	}
	return &Session{Eng: e, PB: pb, PID: pid}
}

// BeginCritical brackets (with EndCritical) a short physical-structure
// operation — a B-tree descent or structure modification — during which the
// process must not lose the CPU, the stand-in for index latching (whose
// instruction cost the code models charge as library code). The machine
// defers preemption and performs page reads synchronously while a session
// is critical, so concurrent processes never observe a half-modified tree.
func (s *Session) BeginCritical() { s.crit++ }

// EndCritical leaves the innermost critical section.
func (s *Session) EndCritical() { s.crit-- }

// InCritical reports whether the session is inside a critical section.
func (s *Session) InCritical() bool { return s.crit > 0 }

// BufGet pins a page through the instrumented buffer-manager path: the
// hit/miss outcome is reported, and a miss crosses into the kernel for the
// read.
func (s *Session) BufGet(id PageID) *Page {
	s.PB.Enter("buf_get")
	defer s.PB.Leave("buf_get")
	pg, hit, err := s.Eng.Pool.get(id)
	if err != nil {
		panic(fmt.Sprintf("db: bufget %d: %v", id, err))
	}
	s.PB.Branch("buf_hit", hit)
	if hit {
		s.PB.Data(PageAddr(id), 32, false)
	} else {
		s.PB.Syscall("pread")
		s.PB.Data(PageAddr(id), 256, true)
	}
	return pg
}

// bufGetQuiet pins a page without instrumentation (load/recovery paths and
// B+tree structure modification, which the models charge as library code).
func (s *Session) bufGetQuiet(id PageID) *Page {
	pg, _, err := s.Eng.Pool.get(id)
	if err != nil {
		panic(fmt.Sprintf("db: bufget %d: %v", id, err))
	}
	return pg
}

// Unpin releases a page pin.
func (s *Session) Unpin(pg *Page) { s.Eng.Pool.Unpin(pg) }

// LockX acquires an exclusive row lock, parking the process on conflict
// until the holder releases.
func (s *Session) LockX(key uint64) {
	s.lock(key, LockX)
}

// LockS acquires a shared row lock.
func (s *Session) LockS(key uint64) {
	s.lock(key, LockS)
}

func (s *Session) lock(key uint64, mode LockMode) {
	s.PB.Enter("lock_acquire")
	defer s.PB.Leave("lock_acquire")
	if s.txn == nil {
		panic("db: lock outside transaction")
	}
	for {
		ok, isNew := s.Eng.Locks.try(s.txn.ID, key, mode)
		s.PB.Data(lockTableAddr(key), 64, true)
		s.PB.Branch("lock_conflict", !ok)
		if ok {
			if isNew {
				s.txn.held = append(s.txn.held, key)
			}
			return
		}
		s.Eng.Locks.Conflicts++
		st := s.Eng.Locks.locks[key]
		st.waiting++
		s.PB.Syscall("lock_sleep")
		s.Eng.Env.Wait(st.queue)
		st.waiting--
	}
}

// ReleaseLocks drops every lock held by the current transaction (strict
// 2PL: called at commit/abort).
func (s *Session) ReleaseLocks() {
	s.PB.Enter("lock_release")
	defer s.PB.Leave("lock_release")
	t := s.txn
	for _, key := range t.held {
		s.PB.Branch("lockrel_iter", true)
		s.PB.Data(lockTableAddr(key), 64, true)
		wake, err := s.Eng.Locks.release(t.ID, key)
		if err != nil {
			panic(err)
		}
		if wake {
			s.Eng.Env.Wake(s.Eng.Locks.queueFor(key))
		}
	}
	s.PB.Branch("lockrel_iter", false)
	t.held = t.held[:0]
}

// LogAppend writes a WAL record through the instrumented path.
func (s *Session) LogAppend(rec LogRec) uint64 {
	s.PB.Enter("log_append")
	defer s.PB.Leave("log_append")
	lsn, off := s.Eng.WAL.Append(rec)
	s.PB.Data(logBufAddr(off), 32+len(rec.Before)+len(rec.After), true)
	s.PB.Branch("logbuf_high", s.Eng.WAL.BufferedBytes() > logBufHighWater)
	return lsn
}

// logBufHighWater models log-buffer pressure (purely an observable branch;
// flushing happens at commit).
const logBufHighWater = 1 << 16

// logBufAddr places the (1 MB circular) log buffer in the shared data
// segment; records pack contiguously, so commits from different CPUs share
// lines.
func logBufAddr(offset int64) uint64 {
	return DataBase + 0x4000_0000 + uint64(offset)%(1<<20)
}

// lockTableAddr places the shared lock table: every acquire and release
// writes the resource's bucket, the way SGA-resident lock structures behave.
func lockTableAddr(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return DataBase + 0x6000_0000 + (h%16384)*64
}

// ScratchAddr returns per-process private working storage (sort areas,
// cursor state); private data pressures the D-cache without producing
// sharing traffic.
func (s *Session) ScratchAddr(off uint64) uint64 {
	return DataBase + 0x7000_0000 + uint64(s.PID)<<20 + off%(1<<18)
}
