package db_test

import (
	"testing"

	"codelayout/internal/db"
)

// fakeEnv records Wait/Wake calls and executes queued wakeups inline, so
// lock-conflict paths can be exercised without the full machine.
type fakeEnv struct {
	waits  int
	wakes  int
	onWait func(q *db.WaitQueue)
}

func (f *fakeEnv) Wait(q *db.WaitQueue) {
	f.waits++
	if f.onWait != nil {
		f.onWait(q)
	}
}

func (f *fakeEnv) Wake(q *db.WaitQueue) { f.wakes++ }

func TestLockConflictBlocksAndWakes(t *testing.T) {
	env := &fakeEnv{}
	eng := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env})
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	key := db.LockKey(3, 7)

	t1 := s1.Begin()
	s1.LockX(key)
	_ = t1

	// Session 2 conflicts; the fake env releases the lock from inside Wait
	// (as the machine would after scheduling session 1's commit).
	s2.Begin()
	released := false
	env.onWait = func(q *db.WaitQueue) {
		if !released {
			released = true
			s1.Commit() // releases the lock, wakes the queue
		}
	}
	s2.LockX(key) // retries after the "wake" and succeeds
	if env.waits == 0 {
		t.Fatal("no wait recorded on conflict")
	}
	if env.wakes == 0 {
		t.Fatal("release did not wake the queue")
	}
	if !eng.Locks.HeldBy(s2.Txn().ID, key, db.LockX) {
		t.Fatal("lock not transferred to waiter")
	}
	s2.Commit()
	if eng.Locks.Conflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

func TestGroupCommitFollowersWait(t *testing.T) {
	env := &fakeEnv{}
	eng := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env})
	tb := eng.CreateTable("t")
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	rid := tb.Insert(s1, []byte("xxxx"))

	// Simulate a flush in flight: session 2 commits while WAL.Flushing is
	// held by a phantom leader, then the env "completes" the leader's write
	// from inside Wait.
	s2.Begin()
	tb.Update(s2, rid, []byte("yyyy"))
	eng.WAL.Flushing = true
	env.onWait = func(q *db.WaitQueue) {
		// Leader finishes: everything appended so far becomes stable.
		eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())
		eng.WAL.Flushing = false
	}
	s2.Commit()
	if env.waits == 0 {
		t.Fatal("follower did not wait on group commit")
	}
	if eng.WAL.GroupedCommits != 1 {
		t.Fatalf("grouped commits = %d", eng.WAL.GroupedCommits)
	}
	if eng.WAL.FlushedLSN != eng.WAL.CurrentLSN() {
		t.Fatal("commit record not stable")
	}
	_ = s1
}

func TestScratchAddrIsPerProcess(t *testing.T) {
	eng := db.NewEngine(db.Config{BufferPoolPages: 16})
	a := eng.NewSession(1, nil)
	b := eng.NewSession(2, nil)
	if a.ScratchAddr(0) == b.ScratchAddr(0) {
		t.Fatal("scratch regions must differ per process")
	}
	if a.ScratchAddr(0) == a.ScratchAddr(64) {
		t.Fatal("offsets must differentiate addresses")
	}
}

func TestWALOffsetsPackContiguously(t *testing.T) {
	w := db.NewWAL()
	_, off1 := w.Append(db.LogRec{Txn: 1, Kind: db.LogUpdate, Before: make([]byte, 10), After: make([]byte, 10)})
	_, off2 := w.Append(db.LogRec{Txn: 2, Kind: db.LogCommit})
	if off1 != 0 {
		t.Fatalf("first offset = %d", off1)
	}
	if off2 != 32+20 {
		t.Fatalf("second offset = %d, want %d", off2, 32+20)
	}
}
