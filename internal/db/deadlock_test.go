package db_test

import (
	"testing"

	"codelayout/internal/db"
)

// TestDeadlockVictimPanics builds a two-session cycle by hand: s1 holds k1
// and parks for k2 while s2 holds k2 and then requests k1. The second
// request closes the waits-for cycle, so s2 must become the victim —
// panicking with ErrDeadlock — and after its abort releases k2, s1's
// parked request must complete.
func TestDeadlockVictimPanics(t *testing.T) {
	env := &fakeEnv{}
	eng := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env})
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	k1 := db.LockKey(1, 100)
	k2 := db.LockKey(1, 200)

	s1.Begin()
	s1.LockX(k1)
	s2.Begin()
	s2.LockX(k2)

	sawDeadlock := false
	env.onWait = func(q *db.WaitQueue) {
		if sawDeadlock {
			return
		}
		// s1 is parked waiting for k2; now s2 closes the cycle.
		func() {
			defer func() {
				if r := recover(); r != db.ErrDeadlock {
					t.Fatalf("expected ErrDeadlock panic, got %v", r)
				}
				sawDeadlock = true
			}()
			s2.LockX(k1)
			t.Fatal("cycle-closing lock request returned")
		}()
		s2.Abort() // victim releases k2, unblocking s1
	}
	s1.LockX(k2) // parks, then succeeds after the victim aborts
	if !sawDeadlock {
		t.Fatal("deadlock never detected")
	}
	if eng.Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d, want 1", eng.Deadlocks)
	}
	if eng.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", eng.Aborted)
	}
	if !eng.Locks.HeldBy(s1.Txn().ID, k2, db.LockX) {
		t.Fatal("survivor did not acquire the contested lock")
	}
	s1.Commit()
}

// TestNoFalseDeadlock: a plain conflict chain without a cycle must park,
// not abort.
func TestNoFalseDeadlock(t *testing.T) {
	env := &fakeEnv{}
	eng := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env})
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	key := db.LockKey(1, 7)

	s1.Begin()
	s1.LockX(key)
	s2.Begin()
	released := false
	env.onWait = func(q *db.WaitQueue) {
		if !released {
			released = true
			s1.Commit()
		}
	}
	s2.LockX(key) // waits, then acquires; must not panic
	if eng.Deadlocks != 0 {
		t.Fatalf("Deadlocks = %d on a cycle-free conflict", eng.Deadlocks)
	}
	s2.Commit()
}

// TestUpgradeNoFalseDeadlock: an S→X upgrader holds the lock it waits for;
// its own hold must not register as a cycle while the other S holder is
// still running.
func TestUpgradeNoFalseDeadlock(t *testing.T) {
	env := &fakeEnv{}
	eng := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env})
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	key := db.LockKey(1, 5)

	s1.Begin()
	s1.LockS(key)
	s2.Begin()
	s2.LockS(key)
	released := false
	env.onWait = func(q *db.WaitQueue) {
		if !released {
			released = true
			s1.Commit() // drops the other S hold; s2 becomes sole holder
		}
	}
	s2.LockX(key) // upgrade waits for s1, then succeeds — must not abort
	if eng.Deadlocks != 0 {
		t.Fatalf("Deadlocks = %d on a cycle-free upgrade", eng.Deadlocks)
	}
	s2.Commit()
}

// TestMutualUpgradeDeadlock: two S holders both upgrading to X block each
// other — a genuine cycle through the same lock, which the detector must
// still catch.
func TestMutualUpgradeDeadlock(t *testing.T) {
	env := &fakeEnv{}
	eng := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env})
	s1 := eng.NewSession(1, nil)
	s2 := eng.NewSession(2, nil)
	key := db.LockKey(1, 9)

	s1.Begin()
	s1.LockS(key)
	s2.Begin()
	s2.LockS(key)

	sawDeadlock := false
	env.onWait = func(q *db.WaitQueue) {
		if sawDeadlock {
			return
		}
		func() {
			defer func() {
				if r := recover(); r != db.ErrDeadlock {
					t.Fatalf("expected ErrDeadlock, got %v", r)
				}
				sawDeadlock = true
			}()
			s2.LockX(key) // second upgrader closes the cycle
		}()
		s2.Abort() // drops s2's S hold; s1 becomes sole holder
	}
	s1.LockX(key) // parks on the upgrade, then succeeds after the abort
	if !sawDeadlock {
		t.Fatal("mutual upgrade deadlock never detected")
	}
	if eng.Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d, want 1", eng.Deadlocks)
	}
	s1.Commit()
}

// TestCrossEngineDeadlock: the shared waits-for graph must see cycles whose
// edges span two engines (shards), which neither per-engine lock manager
// can observe alone.
func TestCrossEngineDeadlock(t *testing.T) {
	graph := db.NewWaitGraph()
	env := &fakeEnv{}
	engA := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env, Shard: 0, Graph: graph})
	engB := db.NewEngine(db.Config{BufferPoolPages: 64, Env: env, Shard: 1, Graph: graph})

	// Process 1 holds a lock on engine A and parks for one on engine B;
	// process 2 holds that lock on B and then requests process 1's on A.
	p1a, p1b := engA.NewSession(1, nil), engB.NewSession(1, nil)
	p2a, p2b := engA.NewSession(2, nil), engB.NewSession(2, nil)
	kA := db.LockKey(1, 10)
	kB := db.LockKey(1, 20)

	p1a.Begin()
	p1a.LockX(kA)
	p1b.Begin()
	p2b.Begin()
	p2b.LockX(kB)
	p2a.Begin()

	sawDeadlock := false
	env.onWait = func(q *db.WaitQueue) {
		if sawDeadlock {
			return
		}
		func() {
			defer func() {
				if r := recover(); r != db.ErrDeadlock {
					t.Fatalf("expected ErrDeadlock, got %v", r)
				}
				sawDeadlock = true
			}()
			p2a.LockX(kA) // closes the cross-engine cycle
		}()
		p2a.Abort()
		p2b.Abort() // releases kB, unblocking process 1
	}
	p1b.LockX(kB)
	if !sawDeadlock {
		t.Fatal("cross-engine deadlock never detected")
	}
	if engA.Deadlocks != 1 {
		t.Fatalf("engine A Deadlocks = %d, want 1 (detection fires at the closing request)", engA.Deadlocks)
	}
	p1b.Commit()
	p1a.Commit()
}
