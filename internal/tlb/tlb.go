// Package tlb simulates the instruction TLB. The paper's base configuration
// is a 64-entry fully associative iTLB with 8 KB pages (Figure 14); the
// 21164 hardware results use a 48-entry iTLB.
package tlb

import (
	"codelayout/internal/isa"
	"codelayout/internal/trace"
)

// TLB is a fully associative, LRU translation buffer at page granularity.
type TLB struct {
	Entries int

	slots    map[uint64]*node
	head     *node // most recent
	tail     *node // least recent
	free     []*node
	lastPg   [trace.MaxCPUs]uint64
	lastOK   [trace.MaxCPUs]bool
	Accesses uint64
	Misses   uint64
}

type node struct {
	page       uint64
	prev, next *node
}

// New creates a TLB with the given number of entries.
func New(entries int) *TLB {
	t := &TLB{Entries: entries, slots: make(map[uint64]*node, entries)}
	return t
}

// Fetch implements trace.Sink: every page the run touches is translated.
// A per-CPU last-page fast path keeps the common case cheap without
// affecting miss counts (a repeat access to the most recent page is always a
// hit and already most recent in LRU order only if no other CPU intervened —
// the TLB is per-CPU in practice, so machines instantiate one per CPU and
// the fast path is exact).
func (t *TLB) Fetch(r trace.FetchRun) {
	first := r.Addr / isa.PageBytes
	last := (r.End() - 1) / isa.PageBytes
	for pg := first; pg <= last; pg++ {
		t.Accesses++
		if t.lastOK[r.CPU] && t.lastPg[r.CPU] == pg {
			continue
		}
		t.translate(pg)
		t.lastPg[r.CPU] = pg
		t.lastOK[r.CPU] = true
	}
}

// Translate records a translation of the page containing addr.
func (t *TLB) Translate(addr uint64) bool {
	t.Accesses++
	return t.translate(addr / isa.PageBytes)
}

func (t *TLB) translate(pg uint64) bool {
	if n, ok := t.slots[pg]; ok {
		t.touch(n)
		return true
	}
	t.Misses++
	var n *node
	if len(t.slots) >= t.Entries {
		n = t.tail
		t.unlink(n)
		delete(t.slots, n.page)
		// Invalidate fast paths that may point at the evicted page.
		for i := range t.lastOK {
			if t.lastOK[i] && t.lastPg[i] == n.page {
				t.lastOK[i] = false
			}
		}
	} else if len(t.free) > 0 {
		n = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	} else {
		n = &node{}
	}
	n.page = pg
	t.slots[pg] = n
	t.pushFront(n)
	return false
}

func (t *TLB) touch(n *node) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}

func (t *TLB) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *TLB) pushFront(n *node) {
	n.next = t.head
	n.prev = nil
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

// MissRate returns misses per translation.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
