package tlb_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/isa"
	"codelayout/internal/tlb"
	"codelayout/internal/trace"
)

func pageRun(page uint64, cpu uint8) trace.FetchRun {
	return trace.FetchRun{Addr: page * isa.PageBytes, Words: 4, CPU: cpu}
}

func TestTLBHitsAndMisses(t *testing.T) {
	tb := tlb.New(4)
	for p := uint64(0); p < 4; p++ {
		tb.Fetch(pageRun(p, 0))
	}
	if tb.Misses != 4 {
		t.Fatalf("cold misses = %d", tb.Misses)
	}
	for p := uint64(0); p < 4; p++ {
		tb.Fetch(pageRun(p, 0))
	}
	if tb.Misses != 4 {
		t.Fatalf("warm misses = %d", tb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tb := tlb.New(2)
	tb.Fetch(pageRun(1, 0))
	tb.Fetch(pageRun(2, 0))
	tb.Fetch(pageRun(1, 0)) // 1 most recent
	tb.Fetch(pageRun(3, 0)) // evicts 2
	m := tb.Misses
	tb.Fetch(pageRun(1, 0))
	if tb.Misses != m {
		t.Fatal("page 1 evicted, LRU broken")
	}
	tb.Fetch(pageRun(2, 0))
	if tb.Misses != m+1 {
		t.Fatal("page 2 should have been evicted")
	}
}

func TestTLBRunCrossingPages(t *testing.T) {
	tb := tlb.New(8)
	r := trace.FetchRun{Addr: isa.PageBytes - 8, Words: 4, CPU: 0}
	tb.Fetch(r) // crosses from page 0 into page 1
	if tb.Misses != 2 {
		t.Fatalf("misses = %d, want 2", tb.Misses)
	}
}

func TestTLBFastPathExactness(t *testing.T) {
	// The per-CPU last-page fast path must not change miss counts compared
	// to a reference simulation without it. Compare against a simple map
	// LRU reimplementation.
	r := rand.New(rand.NewSource(5))
	tb := tlb.New(8)

	type ref struct {
		pages map[uint64]int
		tick  int
	}
	rf := ref{pages: make(map[uint64]int)}
	refMisses := 0
	translate := func(pg uint64) {
		rf.tick++
		if _, ok := rf.pages[pg]; ok {
			rf.pages[pg] = rf.tick
			return
		}
		refMisses++
		if len(rf.pages) >= 8 {
			var lruPg uint64
			lru := 1 << 60
			for p, at := range rf.pages {
				if at < lru {
					lru = at
					lruPg = p
				}
			}
			delete(rf.pages, lruPg)
		}
		rf.pages[pg] = rf.tick
	}

	for i := 0; i < 5000; i++ {
		pg := uint64(r.Intn(12))
		words := int32(1 + r.Intn(8))
		fr := trace.FetchRun{Addr: pg*isa.PageBytes + uint64(r.Intn(1024)*4), Words: words, CPU: 0}
		tb.Fetch(fr)
		first := fr.Addr / isa.PageBytes
		last := (fr.End() - 1) / isa.PageBytes
		for p := first; p <= last; p++ {
			translate(p)
		}
	}
	if int(tb.Misses) != refMisses {
		t.Fatalf("tlb misses %d != reference %d", tb.Misses, refMisses)
	}
}

func TestTLBMissRate(t *testing.T) {
	tb := tlb.New(2)
	tb.Fetch(pageRun(0, 0))
	tb.Fetch(pageRun(0, 0))
	if got := tb.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %f", got)
	}
}
