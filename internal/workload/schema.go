package workload

import (
	"fmt"

	"codelayout/internal/db"
)

// FieldSchema declares one record field of a table: its name, byte width,
// and which transaction kinds read or write it at runtime. The declaration
// order of fields in a TableSchema is the interleaved (storage-order)
// baseline layout; a record-layout pass may permute it, so code must address
// fields through the resolved offsets (db.Table.FieldOffset), never by
// hard-coded byte positions.
type FieldSchema struct {
	Name  string
	Width int
	// ReadBy and WrittenBy list the transaction kinds that touch the field
	// on their instrumented run paths. They are the static hotness hint the
	// record-layout decision falls back to when no measured field-access
	// profile is available (a field touched by no kind is cold padding).
	ReadBy    []string
	WrittenBy []string
}

// TableSchema declares a table's record shape. Fields tile the record in
// declaration order with no gaps; Width() is the fixed record size.
type TableSchema struct {
	Table  string
	Fields []FieldSchema
}

// Width returns the record byte width: the sum of the field widths.
func (ts TableSchema) Width() int {
	w := 0
	for _, f := range ts.Fields {
		w += f.Width
	}
	return w
}

// Validate checks the schema is well-formed: a table name, at least one
// field, positive widths, distinct field names.
func (ts TableSchema) Validate() error {
	if ts.Table == "" {
		return fmt.Errorf("workload: table schema with empty table name")
	}
	if len(ts.Fields) == 0 {
		return fmt.Errorf("workload: table %q schema has no fields", ts.Table)
	}
	seen := make(map[string]bool, len(ts.Fields))
	for _, f := range ts.Fields {
		if f.Name == "" {
			return fmt.Errorf("workload: table %q has an unnamed field", ts.Table)
		}
		if f.Width <= 0 {
			return fmt.Errorf("workload: table %q field %q has width %d; must be > 0", ts.Table, f.Name, f.Width)
		}
		if seen[f.Name] {
			return fmt.Errorf("workload: table %q declares field %q twice", ts.Table, f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// Interleaved returns the baseline field layout: fields at their declared
// offsets, tiling the record in declaration order. This is the layout every
// engine uses when no record-layout hints are installed, and it reproduces
// the historical hard-coded byte offsets of the workloads.
func (ts TableSchema) Interleaved() []db.FieldDef {
	defs := make([]db.FieldDef, 0, len(ts.Fields))
	off := 0
	for _, f := range ts.Fields {
		defs = append(defs, db.FieldDef{Name: f.Name, Off: off, Width: f.Width})
		off += f.Width
	}
	return defs
}

// Hot reports whether any transaction kind reads or writes the field — the
// static hotness signal used when no measured profile exists.
func (f FieldSchema) Hot() bool { return len(f.ReadBy)+len(f.WrittenBy) > 0 }

// RecordSchemas is implemented by workloads that declare per-table field
// schemas, making them eligible for profile-guided record layout
// (internal/reclayout). The returned schemas must cover every table whose
// encode/decode paths resolve field offsets through db.Table.FieldOffset.
type RecordSchemas interface {
	RecordSchemas() []TableSchema
}
