// Package workload defines the seam between the OLTP harness and the
// transaction mixes it runs. A Workload knows how to size itself (paper
// scale and a shrunken quick scale), how to load its tables into a
// db.Engine, how to generate and execute transactions against a Session,
// how to check its own consistency invariants, and which code models it
// contributes to the modeled application binary (appmodel assembles the
// image from the engine models plus the workload's models).
//
// Everything above the storage engine — internal/machine, internal/appmodel,
// internal/expt, and the commands — programs against this interface, so new
// transaction mixes drop in without touching the simulator or the image
// builder. Implementations register themselves by name (see Register), the
// way layout passes register with internal/core.
package workload

import (
	"errors"
	"math/rand"

	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/probe"
)

// Input is one transaction request drawn by GenInput and consumed by
// RunTxn. Its concrete type is private to the workload.
type Input any

// Instance is a workload loaded into an engine: the handle server processes
// use to generate and run transactions.
type Instance interface {
	// GenInput draws one transaction request from the client's RNG.
	GenInput(r *rand.Rand) Input

	// RunTxn executes one transaction on the session. It is the
	// instrumented top-level entry whose model roots the application call
	// graph; in must be a value produced by GenInput.
	RunTxn(s *db.Session, in Input)

	// Check verifies the workload's consistency invariants (e.g. TPC-B
	// balance conservation) over the loaded database. It is called with an
	// uninstrumented session after runs and must not mutate data.
	Check(s *db.Session) error
}

// Labeler is optionally implemented by workload instances (plain and
// sharded) that classify requests into transaction kinds. The machine keys
// its per-transaction latency histograms by (shard, kind), so a workload
// that labels its inputs gets a per-kind latency breakdown ("neworder" vs
// "payment", "read" vs "update", local vs distributed); an instance without
// labels is tracked under its workload's registry name. Labels must be a
// pure function of the input, drawn from a small fixed set.
type Labeler interface {
	// KindOf returns the transaction-kind label of an input produced by the
	// instance's own GenInput.
	KindOf(in Input) string
}

// Workload describes one OLTP benchmark at a specific scale.
type Workload interface {
	// Name is the registry name ("tpcb", "ordere", ...).
	Name() string

	// QuickScale returns a shrunken copy of the workload for fast CI and
	// bench runs, preserving every qualitative shape.
	QuickScale() Workload

	// DataPages estimates the resident data pages of the loaded database,
	// used to size buffer pools that should cache every table.
	DataPages() int

	// Load creates and populates the database through an uninstrumented
	// session and returns the runnable instance.
	Load(eng *db.Engine) (Instance, error)

	// Models returns the workload's contribution to the modeled application
	// binary: the FnSpecs of its transaction roots and helpers, mirroring
	// site for site the probe calls RunTxn emits. env supplies call-site
	// builders into the image's library layers.
	Models(env *ModelEnv) []codegen.FnSpec
}

// Partitioning declares how a workload splits across sharded engines.
type Partitioning struct {
	// Key names the partition key ("branch", "warehouse", ...).
	Key string
	// CrossShardPct is the percentage of generated transactions that touch
	// a second shard (and therefore commit through two-phase commit) when
	// more than one shard is configured.
	CrossShardPct int
}

// DefaultCrossShardPct is the cross-shard transaction fraction sharded
// workloads use unless overridden — the spirit of TPC-C's 15% remote
// Payment rate.
const DefaultCrossShardPct = 15

// EffectiveCrossShardPct normalizes a workload's cross-shard override: 0
// selects DefaultCrossShardPct, negative disables cross-shard traffic.
func EffectiveCrossShardPct(override int) int {
	switch {
	case override < 0:
		return 0
	case override == 0:
		return DefaultCrossShardPct
	default:
		return override
	}
}

// ShardedWorkload is implemented by workloads that can partition their
// database across multiple engines behind the shard router.
type ShardedWorkload interface {
	Workload

	// Partitioning describes the workload's partition scheme and
	// cross-shard transaction fraction.
	Partitioning() Partitioning

	// LoadSharded hash-partitions the database across the engines — engine
	// i receives the rows whose partition key maps to shard i — and
	// returns the routed instance. len(engs) must be at least 2; a single
	// engine uses the plain Load path.
	LoadSharded(engs []*db.Engine) (ShardedInstance, error)
}

// ShardedInstance is a workload loaded across sharded engines: the handle
// server processes use to generate, route and run transactions.
type ShardedInstance interface {
	// GenInput draws one transaction request from the client's RNG; a
	// CrossShardPct fraction of requests touch a remote shard.
	GenInput(r *rand.Rand) Input

	// Home returns the shard owning in's partition key.
	Home(in Input) int

	// Remote reports whether in also touches a shard other than Home(in).
	Remote(in Input) bool

	// RunTxn executes in over the per-shard sessions (ss[i] bound to
	// engine i; all sessions of one process share one probe), committing
	// through two-phase commit when the transaction touched two shards.
	RunTxn(ss []*db.Session, in Input)

	// Check verifies the workload's consistency invariants over the union
	// of shards (uninstrumented sessions, ss[i] on engine i); cross-shard
	// conservation must hold globally even though no single shard balances.
	Check(ss []*db.Session) error
}

// KindRoot names the entry model of one transaction kind: the fn whose
// model roots the kind's hot call chain in the application image. Kind
// matches the labels Labeler.KindOf produces; Root is the model fn name.
type KindRoot struct {
	Kind string
	Root string
}

// KindRoots is implemented by workloads whose transaction kinds map to
// named entry models. The txfuse layout pass seeds one fused placement
// unit per kind at the named root and follows the profile's hottest call
// edges from there, so each kind's code approaches a straight-line sweep.
type KindRoots interface {
	// KindRoots returns one (kind, entry model) pair per transaction kind,
	// in a fixed deterministic order.
	KindRoots() []KindRoot
}

// Predictor decides whether a transaction class is safe to run on the
// single-shard fast path (skipping the router and the 2PC coordinator). The
// machine trains it online from every finished transaction's observed
// cross-shard outcome and consults it before each new transaction.
// Implementations must be deterministic: given the same observation
// sequence, Local must return the same answers.
type Predictor interface {
	// Observe records one finished transaction's outcome: its class label,
	// home shard, and whether it actually touched a remote shard.
	Observe(class string, home int, remote bool)

	// Local predicts whether the next transaction of this class on this
	// home shard will stay single-shard. False routes the transaction down
	// the full distributed path, so false is always safe.
	Local(class string, home int) bool
}

// ErrMispredict is the longjmp value of the predictive fast path: a
// transaction predicted single-shard discovered mid-run that it needs a
// remote shard. The machine recovers it exactly like db.ErrDeadlock — abort
// every open branch through the modeled txn_abort path, then retry — except
// the retry is forced onto the slow distributed path.
var ErrMispredict = errors.New("workload: fast-path misprediction (transaction touches a remote shard)")

// Mispredict unwinds a fast-path transaction that turned out to need a
// remote shard: the probe suppresses the panic's deferred Leave events (the
// modeled engine longjmps, it does not return through every frame) and the
// machine recovers ErrMispredict to abort and re-route.
func Mispredict(pb probe.Probe) {
	if a, ok := pb.(db.Aborter); ok {
		a.AbortUnwind()
	}
	panic(ErrMispredict)
}

// FastPath is implemented by sharded instances that can run
// predicted-single-shard transactions on their home engine alone, without
// the router or the 2PC coordinator. A transaction that turns out to touch
// a remote shard after all must call Mispredict the moment it discovers
// this — before reading or writing anything on the foreign shard's engine —
// so the machine can abort the home branch and rerun it distributed.
type FastPath interface {
	ShardedInstance

	// Class labels an input with its prediction class. Classes are coarser
	// than or equal to Labeler kinds: they must be computable from the
	// client request alone, without peeking at the routing outcome (a
	// "tpcb" request's class is "tpcb" whether or not it crosses shards).
	Class(in Input) string

	// RunLocal executes in on its home engine's session assuming it stays
	// single-shard, calling Mispredict on discovery of a remote touch.
	RunLocal(s *db.Session, in Input)
}

// ModelEnv gives workload model builders access to the image's generated
// library layers, so workload code models dispatch into the same helper
// families the engine models use.
type ModelEnv struct {
	// Pick builds an indirect call site into a named library family
	// ("sql", "rt", "row", "cmp", ...) with the given dispatch width.
	Pick func(family string, width int) codegen.Frag
	// ErrPath builds an inline never-taken error-handling branch.
	ErrPath func() codegen.Frag
}
