// Package workload defines the seam between the OLTP harness and the
// transaction mixes it runs. A Workload knows how to size itself (paper
// scale and a shrunken quick scale), how to load its tables into a
// db.Engine, how to generate and execute transactions against a Session,
// how to check its own consistency invariants, and which code models it
// contributes to the modeled application binary (appmodel assembles the
// image from the engine models plus the workload's models).
//
// Everything above the storage engine — internal/machine, internal/appmodel,
// internal/expt, and the commands — programs against this interface, so new
// transaction mixes drop in without touching the simulator or the image
// builder. Implementations register themselves by name (see Register), the
// way layout passes register with internal/core.
package workload

import (
	"math/rand"

	"codelayout/internal/codegen"
	"codelayout/internal/db"
)

// Input is one transaction request drawn by GenInput and consumed by
// RunTxn. Its concrete type is private to the workload.
type Input any

// Instance is a workload loaded into an engine: the handle server processes
// use to generate and run transactions.
type Instance interface {
	// GenInput draws one transaction request from the client's RNG.
	GenInput(r *rand.Rand) Input

	// RunTxn executes one transaction on the session. It is the
	// instrumented top-level entry whose model roots the application call
	// graph; in must be a value produced by GenInput.
	RunTxn(s *db.Session, in Input)

	// Check verifies the workload's consistency invariants (e.g. TPC-B
	// balance conservation) over the loaded database. It is called with an
	// uninstrumented session after runs and must not mutate data.
	Check(s *db.Session) error
}

// Workload describes one OLTP benchmark at a specific scale.
type Workload interface {
	// Name is the registry name ("tpcb", "ordere", ...).
	Name() string

	// QuickScale returns a shrunken copy of the workload for fast CI and
	// bench runs, preserving every qualitative shape.
	QuickScale() Workload

	// DataPages estimates the resident data pages of the loaded database,
	// used to size buffer pools that should cache every table.
	DataPages() int

	// Load creates and populates the database through an uninstrumented
	// session and returns the runnable instance.
	Load(eng *db.Engine) (Instance, error)

	// Models returns the workload's contribution to the modeled application
	// binary: the FnSpecs of its transaction roots and helpers, mirroring
	// site for site the probe calls RunTxn emits. env supplies call-site
	// builders into the image's library layers.
	Models(env *ModelEnv) []codegen.FnSpec
}

// ModelEnv gives workload model builders access to the image's generated
// library layers, so workload code models dispatch into the same helper
// families the engine models use.
type ModelEnv struct {
	// Pick builds an indirect call site into a named library family
	// ("sql", "rt", "row", "cmp", ...) with the given dispatch width.
	Pick func(family string, width int) codegen.Frag
	// ErrPath builds an inline never-taken error-handling branch.
	ErrPath func() codegen.Frag
}
