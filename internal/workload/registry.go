package workload

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps workload names to constructors returning the workload at
// its default (paper) scale. Implementations register themselves from init,
// so importing a workload package makes it available to every -workload
// flag.
var (
	regMu    sync.Mutex
	registry = make(map[string]func() Workload)
)

// Register adds a workload constructor under name. It panics on duplicate
// registration, which indicates a wiring bug.
func Register(name string, f func() Workload) {
	if err := RegisterUser(name, f); err != nil {
		panic(err.Error())
	}
}

// RegisterUser is Register for user-defined mixes reached through the
// facade: duplicate names return an error instead of panicking, so
// applications can surface registration conflicts gracefully.
func RegisterUser(name string, f func() Workload) error {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		return fmt.Errorf("workload: registration needs a name and a constructor")
	}
	if _, dup := registry[name]; dup {
		return fmt.Errorf("workload: duplicate registration of %q", name)
	}
	registry[name] = f
	return nil
}

// New returns a fresh instance of the named workload at default scale.
func New(name string) (Workload, error) {
	regMu.Lock()
	f, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered workload names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
