// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation from the simulated system. A
// ProfileSource owns the built images and the memoized training runs; a
// Session evaluates layouts built from those profiles under its own
// measurement configuration. Training and evaluation are decoupled: a
// session can measure layouts trained under a different workload or shard
// count (Session.TrainFrom / the *From methods), and every memo is keyed by
// (train spec × eval spec), so mismatched pairs coexist in one session.
package expt

import (
	"fmt"
	"runtime"
	"sync"

	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/pstore"
	"codelayout/internal/reclayout"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
)

// Options configures a session: the measurement (evaluation) half of the
// configuration, plus the default TrainConfig the session's profiles come
// from. Train fields left zero inherit the matching evaluation fields, so a
// plain Options trains and evaluates under one configuration, as the paper
// does.
type Options struct {
	Seed int64

	// Train is the default training configuration: the profile every
	// layout is built from unless a *From method (or TrainFrom) overrides
	// it. Zero fields inherit from the evaluation side — Workload,
	// Shards, CPUs, WarmupTxns from the same-named fields here, Seed from
	// Seed, Txns from Transactions.
	Train TrainConfig

	CPUs        int
	ProcsPerCPU int

	// Shards is the partitioned-engine count behind the shard router; 0 or
	// 1 runs the single shared engine (see machine.Config.Shards).
	Shards int
	// GroupCommitWindowInstr is the per-shard group-commit batching window
	// (0 = flush as soon as a leader arrives; see machine.Config).
	GroupCommitWindowInstr uint64
	// PerCommitLogFlush disables group commit (the baseline the
	// group-commit comparisons run against).
	PerCommitLogFlush bool
	// AutoGroupCommit auto-tunes the per-shard windows from warmup
	// observations (machine.AutoGCFlushCount or machine.AutoGCTargetP99);
	// it keys the measurement memos, so runs under different tuning modes
	// never collide.
	AutoGroupCommit machine.AutoGCMode
	// PredictFastPath enables the predictive single-shard fast path (see
	// machine.Config.PredictFastPath) on the session's sharded measurement
	// runs, adds the predictor models to the source's app image, and keys
	// the measurement memos, so fast-path-on and -off runs never collide.
	// Single-shard measurements ignore it (there is no router to skip).
	PredictFastPath bool

	Transactions int
	WarmupTxns   int

	// RecordLayout selects the physical record layout the measured machine
	// installs before the workload loads: "" or "interleaved" keeps each
	// table's declared schema order; "grouped" asks reclayout to regroup
	// each table's hot fields contiguously at the record head, driven by
	// the field-access profile of the session's training run (falling back
	// to the schema's static hot hints when the profile predates field
	// tallying). Training itself always runs interleaved — the baseline —
	// so the two regimes share one training memo; the setting keys the
	// measurement memos, so interleaved and grouped runs never collide.
	RecordLayout string

	// FetchStallPenaltyInstr charges each L1 instruction-cache miss this
	// many instruction-times of stall on the fetching CPU's clock (see
	// machine.Config.FetchStallPenaltyInstr). 0 keeps the pure
	// fetch-bandwidth clock. It keys the measurement memos: latency
	// comparisons between layouts (fusion vs ipchain) need a non-zero
	// penalty for locality to show up in per-transaction latency at all.
	FetchStallPenaltyInstr uint64

	// Workload is the transaction mix every measured run in the session
	// uses; nil defaults to TPC-B at paper scale. Callers replacing the
	// workload choose its scale: QuickOptions quick-scales only its own
	// default, so pass w.QuickScale() (or a custom small scale) for quick
	// sessions.
	Workload      workload.Workload
	LibScale      float64
	ColdWords     int
	KernColdWords int

	// DCPIPeriod is the sampling period for the DCPI-profile ablation.
	DCPIPeriod uint64

	// ProfileStore, when non-nil, backs the source's training memo with a
	// persistent profile store: training runs whose key (resolved train
	// spec, training-relevant options, and the content fingerprints of both
	// program images) is already in the store are loaded instead of re-run,
	// and fresh runs are written back. Profiles are exact, so a store hit
	// yields bit-identical layouts and measurements to retraining.
	ProfileStore *pstore.Store

	// Quick shrinks the workload and image for fast CI/bench runs while
	// keeping every shape qualitatively intact.
	Quick bool
}

func defaultWorkload() workload.Workload { return tpcb.New() }

// DefaultOptions returns the paper-scale configuration: 4 processors, 8
// server processes each, 40 branches, 500 measured transactions, profiles
// trained on a separate 2000-transaction run with a different seed.
func DefaultOptions() Options {
	return Options{
		Seed:  2001,
		Train: TrainConfig{Seed: 1998, Txns: 2000},
		CPUs:  4, ProcsPerCPU: 8,
		Transactions: 500, WarmupTxns: 100,
		Workload: tpcb.New(),
		LibScale: 1.0, ColdWords: 6_400_000, KernColdWords: 1_400_000,
		DCPIPeriod: 256,
	}
}

// QuickOptions returns a shrunken configuration for tests and default
// bench runs. The workload shrinks through its own QuickScale, so Quick
// works for any workload.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Quick = true
	o.CPUs = 2
	o.ProcsPerCPU = 6
	o.Transactions = 150
	o.WarmupTxns = 40
	o.Train.Txns = 400
	o.Workload = o.Workload.QuickScale()
	o.LibScale = 0.4
	o.ColdWords = 900_000
	o.KernColdWords = 250_000
	return o
}

// resolveTrain fills tc's zero fields: first from the options' default
// train config, then from the evaluation side. The result is fully
// resolved — its Spec() is a stable memo key.
func (o Options) resolveTrain(tc TrainConfig) TrainConfig {
	d := o.Train
	if tc.Workload == nil {
		tc.Workload = d.Workload
	}
	if tc.Workload == nil {
		tc.Workload = o.Workload
	}
	if tc.Seed == 0 {
		tc.Seed = d.Seed
	}
	if tc.Seed == 0 {
		tc.Seed = o.Seed
	}
	if tc.Shards == 0 {
		tc.Shards = d.Shards
	}
	if tc.Shards == 0 {
		tc.Shards = o.Shards
	}
	if tc.Txns == 0 {
		tc.Txns = d.Txns
	}
	if tc.Txns == 0 {
		tc.Txns = o.Transactions
	}
	if tc.CPUs == 0 {
		tc.CPUs = d.CPUs
	}
	if tc.CPUs == 0 {
		tc.CPUs = o.CPUs
	}
	if tc.WarmupTxns == 0 {
		tc.WarmupTxns = d.WarmupTxns
	}
	if tc.WarmupTxns == 0 {
		tc.WarmupTxns = o.WarmupTxns
	}
	return tc
}

// Session owns the evaluation half of an experiment — memoized measurement
// runs over the profile source's images and layouts. All methods are safe
// for concurrent use except TrainFrom: the memo maps are mutex-guarded and
// in-flight measurement runs are deduplicated, so MeasureBatch can fan
// measurement runs out across a worker pool. Every memo is keyed by the
// training spec as well as the layout name, so layouts trained under
// different configs never collide; layouts themselves are memoized on the
// shared ProfileSource, so sessions of one source never rebuild them.
type Session struct {
	Opt Options

	src      *ProfileSource
	defTrain TrainConfig // resolved default training config

	mu       sync.Mutex // guards the maps below
	measures map[measKey]*Measure
	measErr  map[measKey]error
	inflight map[measKey]chan struct{}

	measHits, measMisses uint64 // measurement memo counters (MemoStats)
}

// MemoCounters reports one memo map's traffic: Hits answered from cache,
// Misses that executed real work (a simulation run, a layout build, a
// training run), and Entries currently memoized. A waiter that blocked on an
// in-flight run counts as a hit — it executed nothing.
type MemoCounters struct {
	Hits, Misses, Entries uint64
}

// MemoStats is the session's memo-layer report card: the measurement memo
// (this session's) plus the layout and training memos (shared with every
// session of the same ProfileSource). Search runs assert on it to prove
// population evaluation actually dedups — executed measurements must stay
// strictly below the requested genome evaluations.
type MemoStats struct {
	Measure MemoCounters
	Layout  MemoCounters
	Train   MemoCounters
}

// MemoStats returns the session's memo counters (see MemoStats type).
func (s *Session) MemoStats() MemoStats {
	train, layout := s.src.memoStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return MemoStats{
		Measure: MemoCounters{Hits: s.measHits, Misses: s.measMisses, Entries: uint64(len(s.measures))},
		Layout:  layout,
		Train:   train,
	}
}

// layoutKey identifies a built layout: the resolved train spec it was
// trained from plus the layout (or kernel-layout) name. Baselines carry an
// empty train spec — they depend on no profile.
type layoutKey struct {
	train string
	name  string
}

type measKey struct {
	train     string
	workload  string
	layout    string
	kern      string
	reclayout string
	cpus      int
	shards    int
	gcWindow  uint64
	perCommit bool
	gcMode    machine.AutoGCMode
	fastPath  bool
	stall     uint64
}

// NewSession builds a private profile source (images and baseline layouts)
// and the session over it.
func NewSession(o Options) (*Session, error) {
	if o.Workload == nil {
		o.Workload = defaultWorkload()
	}
	src, err := NewProfileSource(o)
	if err != nil {
		return nil, err
	}
	return NewSessionFrom(src, o)
}

// NewSessionFrom builds a session that borrows src's images and training
// memo instead of building its own. Sessions sharing one source evaluate
// over one program, so a layout trained by any of them is portable to all
// of them; o's evaluation workload must be covered by the source's image.
// Image-shape fields of o (Seed, LibScale, ColdWords, KernColdWords,
// Workload models) are ignored in favor of the source's.
func NewSessionFrom(src *ProfileSource, o Options) (*Session, error) {
	if o.Workload == nil {
		o.Workload = src.opt.Workload
	}
	if !src.Covers(o.Workload.Name()) {
		return nil, fmt.Errorf("expt: eval workload %q is not modeled in the source image (covers %v); list it in NewProfileSource",
			o.Workload.Name(), src.WorkloadNames())
	}
	switch o.RecordLayout {
	case "", "interleaved", "grouped":
	default:
		return nil, fmt.Errorf("expt: RecordLayout = %q; must be \"interleaved\" or \"grouped\" (empty selects interleaved)", o.RecordLayout)
	}
	if o.PredictFastPath && shardKey(o.Shards) > 1 && src.appImg.Fns["predict_check"] == nil {
		return nil, fmt.Errorf("expt: PredictFastPath needs the predictor models in the source image; build the ProfileSource with Options.PredictFastPath set")
	}
	s := &Session{
		Opt:      o,
		src:      src,
		defTrain: o.resolveTrain(TrainConfig{}),
		measures: make(map[measKey]*Measure),
		measErr:  make(map[measKey]error),
		inflight: make(map[measKey]chan struct{}),
	}
	return s, nil
}

// Source exposes the session's profile source (for sharing with further
// sessions — see NewSessionFrom).
func (s *Session) Source() *ProfileSource { return s.src }

// AppImage exposes the application image (facade and tools).
func (s *Session) AppImage() *codegen.Image { return s.src.appImg }

// AppImageFor returns the app image measurements of the named layout run
// over: the specialized (clone-grown) image for "fusion" once the layout is
// built, the shared image for everything else.
func (s *Session) AppImageFor(name string) *codegen.Image {
	return s.src.appImageFor(s.defTrain, name)
}

// KernelImage exposes the kernel image.
func (s *Session) KernelImage() *codegen.Image { return s.src.kernImg }

// TrainFrom replaces the session's default training configuration: later
// Layout/Measure calls build from the profile trained under tc (zero fields
// inherit as in Options.Train). Memos are keyed by train spec, so switching
// back and forth never mixes results — but TrainFrom itself must not race
// other session calls. It returns s for chaining.
func (s *Session) TrainFrom(tc TrainConfig) *Session {
	s.defTrain = s.Opt.resolveTrain(tc)
	return s
}

// TrainSpec returns the resolved spec string of the session's current
// default training configuration.
func (s *Session) TrainSpec() string { return s.defTrain.Spec() }

// Train runs the default training configuration's profiling run once (Pixie
// instrumentation plus a DCPI-style sampler over the same run) and caches
// the profiles in the source. Concurrent callers block until the single
// training run finishes.
func (s *Session) Train() error {
	_, err := s.src.train(s.defTrain)
	return err
}

// Profile returns the Pixie training profile of the session's default train
// config (training first if needed).
func (s *Session) Profile() (*profile.Profile, error) {
	run, err := s.src.train(s.defTrain)
	if err != nil {
		return nil, err
	}
	return run.app, nil
}

// PipelineSpec returns the resolved pass list of a named layout (for
// reports). "base" has no pipeline and resolves to the empty spec.
func (s *Session) PipelineSpec(name string) (string, error) {
	if name == "base" {
		return "", nil
	}
	pl, _, err := s.src.layoutSpec(s.defTrain, name)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// Layout returns (building if needed) a named app layout trained under the
// session's default train config. Known names: base, porder, chain,
// chain+split, chain+porder, all, hotcold, cfa, dcpi-all, ipchain, fusion.
// "fusion" is special: it runs txfuse over a specialized copy of the app
// image (AppImageFor returns it) so shared procedures can be cloned into
// each transaction kind's fused unit. A name containing pass separators
// (",", ":") is treated as a raw pipeline spec and built through
// core.ParsePipeline — specs containing txfuse take the specialized-image
// path exactly like "fusion". Raw specs flow through Measure and
// MeasureBatch too, which is how the search engine evaluates genome
// populations as one memoized parallel wave.
func (s *Session) Layout(name string) (*program.Layout, error) {
	return s.src.layout(s.defTrain, name)
}

// LayoutFrom is Layout with an explicit training configuration (zero fields
// inherit as in Options.Train): the layout is built from the profile
// trained under tc and memoized under tc's spec in the shared source.
func (s *Session) LayoutFrom(tc TrainConfig, name string) (*program.Layout, error) {
	return s.src.layout(s.Opt.resolveTrain(tc), name)
}

// Report returns the optimizer report for a layout built under the
// session's current default train config.
func (s *Session) Report(name string) *core.Report {
	return s.src.report(s.defTrain, name)
}

// ReportFrom returns the optimizer report for a layout built under tc
// (zero fields inherit as in Options.Train).
func (s *Session) ReportFrom(tc TrainConfig, name string) *core.Report {
	return s.src.report(s.Opt.resolveTrain(tc), name)
}

// KernLayout returns a kernel layout: "kbase" or "kopt" (kernel code laid
// out with the full optimization pipeline over the default train config's
// kernel profile).
func (s *Session) KernLayout(name string) (*program.Layout, error) {
	return s.src.kernLayout(s.defTrain, name)
}

// recordLayout normalizes the session's record-layout setting: the empty
// string is the interleaved default, so both spellings share one memo key.
func (s *Session) recordLayout() string {
	if s.Opt.RecordLayout == "" {
		return "interleaved"
	}
	return s.Opt.RecordLayout
}

// fastPath normalizes the session's fast-path setting: single-shard
// measurements have no router to skip, so the flag is effective only on
// sharded configurations (this also keeps shards=1 memo keys and machine
// configs bit-identical with the flag set).
func (s *Session) fastPath() bool {
	return s.Opt.PredictFastPath && shardKey(s.Opt.Shards) > 1
}

func (s *Session) machineConfig(appImg *codegen.Image, appL, kernL *program.Layout, cpus int) machine.Config {
	return machine.Config{
		CPUs:                   cpus,
		ProcsPerCPU:            s.Opt.ProcsPerCPU,
		Seed:                   s.Opt.Seed,
		Shards:                 s.Opt.Shards,
		GroupCommitWindowInstr: s.Opt.GroupCommitWindowInstr,
		PerCommitLogFlush:      s.Opt.PerCommitLogFlush,
		AutoGroupCommit:        s.Opt.AutoGroupCommit,
		PredictFastPath:        s.fastPath(),
		FetchStallPenaltyInstr: s.Opt.FetchStallPenaltyInstr,
		WarmupTxns:             s.Opt.WarmupTxns,
		Transactions:           s.Opt.Transactions,
		Workload:               s.Opt.Workload,
		AppImage:               appImg,
		AppLayout:              appL,
		KernImage:              s.src.kernImg,
		KernLayout:             kernL,
	}
}

// Measure runs (or returns the memoized run of) the workload under the
// named layout (default train config) with the full measurement battery
// attached.
func (s *Session) Measure(layout string, cpus int) (*Measure, error) {
	return s.measureFor(s.defTrain, layout, "kbase", cpus)
}

// MeasureFrom is Measure with an explicit training configuration: it
// evaluates the layout trained under tc against the session's own
// measurement configuration — the train/eval mismatch experiments.
func (s *Session) MeasureFrom(tc TrainConfig, layout string, cpus int) (*Measure, error) {
	return s.measureFor(s.Opt.resolveTrain(tc), layout, "kbase", cpus)
}

// MeasureKern is Measure with an explicit kernel layout. Concurrent calls
// for the same (train, layout, kernel, cpus) key share one simulation run:
// the first caller runs it, later callers block until the result (or error)
// is memoized.
func (s *Session) MeasureKern(layout, kern string, cpus int) (*Measure, error) {
	return s.measureFor(s.defTrain, layout, kern, cpus)
}

// MeasureKernFrom is MeasureKern with an explicit training configuration.
func (s *Session) MeasureKernFrom(tc TrainConfig, layout, kern string, cpus int) (*Measure, error) {
	return s.measureFor(s.Opt.resolveTrain(tc), layout, kern, cpus)
}

func (s *Session) measureFor(tc TrainConfig, layout, kern string, cpus int) (*Measure, error) {
	key := measKey{
		train:     tc.Spec(),
		workload:  s.Opt.Workload.Name(),
		layout:    layout,
		kern:      kern,
		reclayout: s.recordLayout(),
		cpus:      cpus,
		shards:    shardKey(s.Opt.Shards),
		gcWindow:  s.Opt.GroupCommitWindowInstr,
		perCommit: s.Opt.PerCommitLogFlush,
		gcMode:    s.Opt.AutoGroupCommit,
		fastPath:  s.fastPath(),
		stall:     s.Opt.FetchStallPenaltyInstr,
	}
	for {
		s.mu.Lock()
		if m, ok := s.measures[key]; ok {
			s.measHits++
			s.mu.Unlock()
			return m, nil
		}
		if err, ok := s.measErr[key]; ok {
			s.mu.Unlock()
			return nil, err
		}
		if ch, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-ch // someone else is running this measurement
			continue
		}
		ch := make(chan struct{})
		s.inflight[key] = ch
		s.measMisses++
		s.mu.Unlock()

		meas, err := s.measure(tc, layout, kern, cpus)
		s.mu.Lock()
		if err != nil {
			s.measErr[key] = err
		} else {
			s.measures[key] = meas
		}
		delete(s.inflight, key)
		close(ch)
		s.mu.Unlock()
		return meas, err
	}
}

func (s *Session) measure(tc TrainConfig, layout, kern string, cpus int) (*Measure, error) {
	appL, err := s.src.layout(tc, layout)
	if err != nil {
		return nil, err
	}
	var kernL *program.Layout
	kernL, err = s.src.kernLayout(tc, kern)
	if err != nil {
		return nil, err
	}
	bat := newBattery(cpus)
	// The fusion layout addresses cloned blocks that exist only in its
	// specialized image; every other layout runs over the shared image.
	cfg := s.machineConfig(s.src.appImageFor(tc, layout), appL, kernL, cpus)
	cfg.Sinks = bat.sinks()
	cfg.DataSinks = bat.dataSinks()
	if s.recordLayout() == "grouped" {
		prof, err := s.src.fieldProfile(tc)
		if err != nil {
			return nil, err
		}
		cfg.RecordLayouts, err = reclayout.GroupedDefs(s.Opt.Workload, prof)
		if err != nil {
			return nil, err
		}
	}
	mach, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := mach.Run()
	if err != nil {
		return nil, fmt.Errorf("expt: measuring %s/%s/%dcpu (train %s): %w", layout, kern, cpus, tc.Spec(), err)
	}
	if err := mach.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("expt: measuring %s/%s/%dcpu (train %s): %w", layout, kern, cpus, tc.Spec(), err)
	}
	meas := bat.finish(res)
	meas.Latency = mach.LatencyByKind()
	meas.GCWindows = mach.GroupCommitWindows()
	return meas, nil
}

// MeasureBatch measures every named layout concurrently with a bounded
// worker pool (workers <= 0 picks min(GOMAXPROCS, len(layouts))). Each
// result lands in the memo, so subsequent serial Measure calls are hits. The
// first error is returned after all workers drain.
func (s *Session) MeasureBatch(layouts []string, cpus, workers int) error {
	if len(layouts) == 0 {
		return nil
	}
	// The training run is a shared dependency of every layout build; do it
	// before fanning out so workers start from the same memoized profiles
	// instead of queueing behind the in-flight dedup.
	if err := s.Train(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(layouts) {
		workers = len(layouts)
	}
	jobs := make(chan string)
	errs := make(chan error, len(layouts))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				_, err := s.Measure(name, cpus)
				errs <- err
			}
		}()
	}
	for _, name := range layouts {
		jobs <- name
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
