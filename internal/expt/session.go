// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation from the simulated system. A Session
// owns the built images, the training profile, the optimized layouts, and a
// memo of measured runs, so that the many figures drawing on the same run
// share one simulation.
package expt

import (
	"fmt"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"
)

// Options configures a session.
type Options struct {
	Seed      int64
	TrainSeed int64

	CPUs        int
	ProcsPerCPU int

	Transactions int
	WarmupTxns   int
	TrainTxns    int

	Scale         tpcb.Scale
	LibScale      float64
	ColdWords     int
	KernColdWords int

	// DCPIPeriod is the sampling period for the DCPI-profile ablation.
	DCPIPeriod uint64

	// Quick shrinks the workload and image for fast CI/bench runs while
	// keeping every shape qualitatively intact.
	Quick bool
}

// DefaultOptions returns the paper-scale configuration: 4 processors, 8
// server processes each, 40 branches, 500 measured transactions, profiles
// trained on a separate 2000-transaction run with a different seed.
func DefaultOptions() Options {
	return Options{
		Seed: 2001, TrainSeed: 1998,
		CPUs: 4, ProcsPerCPU: 8,
		Transactions: 500, WarmupTxns: 100, TrainTxns: 2000,
		Scale:    tpcb.DefaultScale(),
		LibScale: 1.0, ColdWords: 6_400_000, KernColdWords: 1_400_000,
		DCPIPeriod: 256,
	}
}

// QuickOptions returns a shrunken configuration for tests and default
// bench runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Quick = true
	o.CPUs = 2
	o.ProcsPerCPU = 6
	o.Transactions = 150
	o.WarmupTxns = 40
	o.TrainTxns = 400
	o.Scale = tpcb.Scale{Branches: 10, TellersPerBranch: 5, AccountsPerBranch: 400}
	o.LibScale = 0.4
	o.ColdWords = 900_000
	o.KernColdWords = 250_000
	return o
}

// Session owns built images, layouts and memoized measurements.
type Session struct {
	Opt Options

	appImg  *codegen.Image
	kernImg *codegen.Image

	layouts  map[string]*program.Layout
	reports  map[string]*core.Report
	kernLay  map[string]*program.Layout
	train    *profile.Profile // Pixie profile of the app under base layout
	trainK   *profile.Profile // kernel profile
	trainDC  *profile.Profile // DCPI sampling profile
	measures map[measKey]*Measure
}

type measKey struct {
	layout string
	kern   string
	cpus   int
}

// NewSession builds the images and baseline layouts.
func NewSession(o Options) (*Session, error) {
	s := &Session{
		Opt:      o,
		layouts:  make(map[string]*program.Layout),
		reports:  make(map[string]*core.Report),
		kernLay:  make(map[string]*program.Layout),
		measures: make(map[measKey]*Measure),
	}
	var err error
	s.appImg, err = appmodel.Build(appmodel.Config{Seed: o.Seed, LibScale: o.LibScale, ColdWords: o.ColdWords})
	if err != nil {
		return nil, fmt.Errorf("expt: app image: %w", err)
	}
	s.kernImg, err = kernel.Build(kernel.Config{Seed: o.Seed + 1, ColdWords: o.KernColdWords})
	if err != nil {
		return nil, fmt.Errorf("expt: kernel image: %w", err)
	}
	base, err := program.BaselineLayout(s.appImg.Prog)
	if err != nil {
		return nil, err
	}
	s.layouts["base"] = base
	kbase, err := program.BaselineLayout(s.kernImg.Prog)
	if err != nil {
		return nil, err
	}
	s.kernLay["kbase"] = kbase
	return s, nil
}

// AppImage exposes the application image (facade and tools).
func (s *Session) AppImage() *codegen.Image { return s.appImg }

// KernelImage exposes the kernel image.
func (s *Session) KernelImage() *codegen.Image { return s.kernImg }

// Train runs the profiling workload once (Pixie instrumentation plus a
// DCPI-style sampler over the same run) and caches the profiles.
func (s *Session) Train() error {
	if s.train != nil {
		return nil
	}
	px := profile.NewPixie(s.appImg.Prog, "pixie-train")
	kx := profile.NewPixie(s.kernImg.Prog, "kprofile")
	dcpi := profile.NewDCPI(s.layouts["base"], s.Opt.DCPIPeriod)
	cfg := s.machineConfig("base", "kbase", s.Opt.CPUs)
	cfg.Seed = s.Opt.TrainSeed
	cfg.Transactions = s.Opt.TrainTxns
	cfg.AppCollector = px
	cfg.KernCollector = kx
	cfg.Sinks = []trace.Sink{trace.AppOnly(dcpi)}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	if _, err := m.Run(); err != nil {
		return err
	}
	s.train = px.Profile
	s.trainK = kx.Profile
	s.trainDC = dcpi.Finish("dcpi-train")
	return nil
}

// Profile returns the Pixie training profile (training the profile first if
// needed).
func (s *Session) Profile() (*profile.Profile, error) {
	if err := s.Train(); err != nil {
		return nil, err
	}
	return s.train, nil
}

// layoutSpecs names every layout the experiments use.
func (s *Session) layoutSpec(name string) (core.Options, *profile.Profile, error) {
	if err := s.Train(); err != nil {
		return core.Options{}, nil, err
	}
	switch name {
	case "porder":
		return core.Options{Order: core.OrderPettisHansen}, s.train, nil
	case "chain":
		return core.Options{Chain: true}, s.train, nil
	case "chain+split":
		return core.Options{Chain: true, Split: core.SplitFine}, s.train, nil
	case "chain+porder":
		return core.Options{Chain: true, Order: core.OrderPettisHansen}, s.train, nil
	case "all":
		return core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}, s.train, nil
	case "hotcold":
		return core.Options{Chain: true, Split: core.SplitHotCold, Order: core.OrderPettisHansen}, s.train, nil
	case "cfa":
		return core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
			CFA: &core.CFAOptions{CacheBytes: 64 << 10, ReservedBytes: 16 << 10}}, s.train, nil
	case "dcpi-all":
		return core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}, s.trainDC, nil
	default:
		return core.Options{}, nil, fmt.Errorf("expt: unknown layout %q", name)
	}
}

// Layout returns (building if needed) a named app layout. Known names:
// base, porder, chain, chain+split, chain+porder, all, hotcold, cfa,
// dcpi-all.
func (s *Session) Layout(name string) (*program.Layout, error) {
	if l, ok := s.layouts[name]; ok {
		return l, nil
	}
	opts, prof, err := s.layoutSpec(name)
	if err != nil {
		return nil, err
	}
	// Copy the profile so EnsureEdges on a sampled profile does not
	// contaminate the shared instance.
	pf := &profile.Profile{Name: prof.Name, BlockCount: prof.BlockCount, EdgeCount: prof.EdgeCount}
	if name == "dcpi-all" {
		pf = &profile.Profile{Name: prof.Name, BlockCount: prof.BlockCount}
	}
	l, rep, err := core.Optimize(s.appImg.Prog, pf, opts)
	if err != nil {
		return nil, fmt.Errorf("expt: layout %q: %w", name, err)
	}
	s.layouts[name] = l
	s.reports[name] = rep
	return l, nil
}

// Report returns the optimizer report for a built layout.
func (s *Session) Report(name string) *core.Report { return s.reports[name] }

// KernLayout returns a kernel layout: "kbase" or "kopt" (kernel code laid
// out with the full optimization pipeline over the kernel profile).
func (s *Session) KernLayout(name string) (*program.Layout, error) {
	if l, ok := s.kernLay[name]; ok {
		return l, nil
	}
	if name != "kopt" {
		return nil, fmt.Errorf("expt: unknown kernel layout %q", name)
	}
	if err := s.Train(); err != nil {
		return nil, err
	}
	l, _, err := core.Optimize(s.kernImg.Prog, s.trainK, core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
	})
	if err != nil {
		return nil, err
	}
	s.kernLay["kopt"] = l
	return l, nil
}

func (s *Session) machineConfig(layout, kern string, cpus int) machine.Config {
	return machine.Config{
		CPUs:         cpus,
		ProcsPerCPU:  s.Opt.ProcsPerCPU,
		Seed:         s.Opt.Seed,
		WarmupTxns:   s.Opt.WarmupTxns,
		Transactions: s.Opt.Transactions,
		Scale:        s.Opt.Scale,
		AppImage:     s.appImg,
		AppLayout:    s.layouts[layout],
		KernImage:    s.kernImg,
		KernLayout:   s.kernLay[kern],
	}
}

// Measure runs (or returns the memoized run of) the workload under the
// named layouts with the full measurement battery attached.
func (s *Session) Measure(layout string, cpus int) (*Measure, error) {
	return s.MeasureKern(layout, "kbase", cpus)
}

// MeasureKern is Measure with an explicit kernel layout.
func (s *Session) MeasureKern(layout, kern string, cpus int) (*Measure, error) {
	key := measKey{layout, kern, cpus}
	if m, ok := s.measures[key]; ok {
		return m, nil
	}
	if _, err := s.Layout(layout); err != nil && layout != "base" {
		return nil, err
	}
	if _, err := s.KernLayout(kern); err != nil && kern != "kbase" {
		return nil, err
	}
	bat := newBattery(cpus)
	cfg := s.machineConfig(layout, kern, cpus)
	cfg.Sinks = bat.sinks()
	cfg.DataSinks = bat.dataSinks()
	mach, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := mach.Run()
	if err != nil {
		return nil, fmt.Errorf("expt: measuring %s/%s/%dcpu: %w", layout, kern, cpus, err)
	}
	meas := bat.finish(res)
	s.measures[key] = meas
	return meas, nil
}
