// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation from the simulated system. A Session
// owns the built images, the training profile, the optimized layouts, and a
// memo of measured runs, so that the many figures drawing on the same run
// share one simulation.
package expt

import (
	"fmt"
	"runtime"
	"sync"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
)

// Options configures a session.
type Options struct {
	Seed      int64
	TrainSeed int64

	CPUs        int
	ProcsPerCPU int

	// Shards is the partitioned-engine count behind the shard router; 0 or
	// 1 runs the single shared engine (see machine.Config.Shards).
	Shards int
	// GroupCommitWindowInstr is the per-shard group-commit batching window
	// (0 = flush as soon as a leader arrives; see machine.Config).
	GroupCommitWindowInstr uint64
	// PerCommitLogFlush disables group commit (the baseline the
	// group-commit comparisons run against).
	PerCommitLogFlush bool

	Transactions int
	WarmupTxns   int
	TrainTxns    int

	// Workload is the transaction mix every run in the session uses; nil
	// defaults to TPC-B at paper scale. Callers replacing the workload
	// choose its scale: QuickOptions quick-scales only its own default, so
	// pass w.QuickScale() (or a custom small scale) for quick sessions.
	Workload      workload.Workload
	LibScale      float64
	ColdWords     int
	KernColdWords int

	// DCPIPeriod is the sampling period for the DCPI-profile ablation.
	DCPIPeriod uint64

	// Quick shrinks the workload and image for fast CI/bench runs while
	// keeping every shape qualitatively intact.
	Quick bool
}

// DefaultOptions returns the paper-scale configuration: 4 processors, 8
// server processes each, 40 branches, 500 measured transactions, profiles
// trained on a separate 2000-transaction run with a different seed.
func DefaultOptions() Options {
	return Options{
		Seed: 2001, TrainSeed: 1998,
		CPUs: 4, ProcsPerCPU: 8,
		Transactions: 500, WarmupTxns: 100, TrainTxns: 2000,
		Workload: tpcb.New(),
		LibScale: 1.0, ColdWords: 6_400_000, KernColdWords: 1_400_000,
		DCPIPeriod: 256,
	}
}

// QuickOptions returns a shrunken configuration for tests and default
// bench runs. The workload shrinks through its own QuickScale, so Quick
// works for any workload.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Quick = true
	o.CPUs = 2
	o.ProcsPerCPU = 6
	o.Transactions = 150
	o.WarmupTxns = 40
	o.TrainTxns = 400
	o.Workload = o.Workload.QuickScale()
	o.LibScale = 0.4
	o.ColdWords = 900_000
	o.KernColdWords = 250_000
	return o
}

// Session owns built images, layouts and memoized measurements. All methods
// are safe for concurrent use: the memo maps are mutex-guarded and in-flight
// measurement runs are deduplicated, so MeasureBatch can fan measurement
// runs out across a worker pool.
type Session struct {
	Opt Options

	appImg  *codegen.Image
	kernImg *codegen.Image

	mu       sync.Mutex // guards the maps below
	layouts  map[string]*program.Layout
	reports  map[string]*core.Report
	kernLay  map[string]*program.Layout
	measures map[measKey]*Measure
	measErr  map[measKey]error
	inflight map[measKey]chan struct{}

	trainOnce sync.Once
	trainErr  error
	train     *profile.Profile // Pixie profile of the app under base layout
	trainK    *profile.Profile // kernel profile
	trainDC   *profile.Profile // DCPI sampling profile
}

type measKey struct {
	workload  string
	layout    string
	kern      string
	cpus      int
	shards    int
	gcWindow  uint64
	perCommit bool
}

// NewSession builds the images and baseline layouts.
func NewSession(o Options) (*Session, error) {
	if o.Workload == nil {
		o.Workload = tpcb.New()
	}
	s := &Session{
		Opt:      o,
		layouts:  make(map[string]*program.Layout),
		reports:  make(map[string]*core.Report),
		kernLay:  make(map[string]*program.Layout),
		measures: make(map[measKey]*Measure),
		measErr:  make(map[measKey]error),
		inflight: make(map[measKey]chan struct{}),
	}
	var err error
	s.appImg, err = appmodel.Build(appmodel.Config{
		Seed: o.Seed, LibScale: o.LibScale, ColdWords: o.ColdWords, Workload: o.Workload,
	})
	if err != nil {
		return nil, fmt.Errorf("expt: app image: %w", err)
	}
	s.kernImg, err = kernel.Build(kernel.Config{Seed: o.Seed + 1, ColdWords: o.KernColdWords})
	if err != nil {
		return nil, fmt.Errorf("expt: kernel image: %w", err)
	}
	base, err := program.BaselineLayout(s.appImg.Prog)
	if err != nil {
		return nil, err
	}
	s.layouts["base"] = base
	kbase, err := program.BaselineLayout(s.kernImg.Prog)
	if err != nil {
		return nil, err
	}
	s.kernLay["kbase"] = kbase
	return s, nil
}

// AppImage exposes the application image (facade and tools).
func (s *Session) AppImage() *codegen.Image { return s.appImg }

// KernelImage exposes the kernel image.
func (s *Session) KernelImage() *codegen.Image { return s.kernImg }

// Train runs the profiling workload once (Pixie instrumentation plus a
// DCPI-style sampler over the same run) and caches the profiles. Concurrent
// callers block until the single training run finishes.
func (s *Session) Train() error {
	s.trainOnce.Do(func() { s.trainErr = s.doTrain() })
	return s.trainErr
}

func (s *Session) doTrain() error {
	px := profile.NewPixie(s.appImg.Prog, "pixie-train")
	kx := profile.NewPixie(s.kernImg.Prog, "kprofile")
	dcpi := profile.NewDCPI(s.layouts["base"], s.Opt.DCPIPeriod)
	cfg := s.machineConfig("base", "kbase", s.Opt.CPUs)
	cfg.Seed = s.Opt.TrainSeed
	cfg.Transactions = s.Opt.TrainTxns
	cfg.AppCollector = px
	cfg.KernCollector = kx
	cfg.Sinks = []trace.Sink{trace.AppOnly(dcpi)}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	if _, err := m.Run(); err != nil {
		return err
	}
	s.train = px.Profile
	s.trainK = kx.Profile
	s.trainDC = dcpi.Finish("dcpi-train")
	return nil
}

// Profile returns the Pixie training profile (training the profile first if
// needed).
func (s *Session) Profile() (*profile.Profile, error) {
	if err := s.Train(); err != nil {
		return nil, err
	}
	return s.train, nil
}

// layoutSpec resolves a layout name to the pass pipeline implementing it and
// the profile it trains on. The paper's combinations assemble their pipeline
// through core.PipelineFor; the extensions name their pass lists directly.
func (s *Session) layoutSpec(name string) (core.Pipeline, *profile.Profile, error) {
	if err := s.Train(); err != nil {
		return nil, nil, err
	}
	var o core.Options
	prof := s.train
	switch name {
	case "porder":
		o = core.Options{Order: core.OrderPettisHansen}
	case "chain":
		o = core.Options{Chain: true}
	case "chain+split":
		o = core.Options{Chain: true, Split: core.SplitFine}
	case "chain+porder":
		o = core.Options{Chain: true, Order: core.OrderPettisHansen}
	case "all":
		o = core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}
	case "hotcold":
		o = core.Options{Chain: true, Split: core.SplitHotCold, Order: core.OrderPettisHansen}
	case "cfa":
		o = core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
			CFA: &core.CFAOptions{CacheBytes: 64 << 10, ReservedBytes: 16 << 10}}
	case "dcpi-all":
		o = core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}
		prof = s.trainDC
	case "ipchain":
		pl, err := core.ComboPipeline("ipchain")
		return pl, s.train, err
	default:
		return nil, nil, fmt.Errorf("expt: unknown layout %q", name)
	}
	pl, err := core.PipelineFor(o)
	return pl, prof, err
}

// PipelineSpec returns the resolved pass list of a named layout (for
// reports). "base" has no pipeline and resolves to the empty spec.
func (s *Session) PipelineSpec(name string) (string, error) {
	if name == "base" {
		return "", nil
	}
	pl, _, err := s.layoutSpec(name)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// Layout returns (building if needed) a named app layout. Known names:
// base, porder, chain, chain+split, chain+porder, all, hotcold, cfa,
// dcpi-all, ipchain.
func (s *Session) Layout(name string) (*program.Layout, error) {
	s.mu.Lock()
	l, ok := s.layouts[name]
	s.mu.Unlock()
	if ok {
		return l, nil
	}
	pl, prof, err := s.layoutSpec(name)
	if err != nil {
		return nil, err
	}
	// Copy the profile so EnsureEdges on a sampled profile does not
	// contaminate the shared instance. When the source carries no measured
	// edges (sampling profiles, or a degenerate training run), drop the
	// shared empty map too: concurrent layout builds would otherwise
	// estimate edges into the same map without a lock.
	pf := &profile.Profile{Name: prof.Name, BlockCount: prof.BlockCount, EdgeCount: prof.EdgeCount}
	if name == "dcpi-all" || !prof.HasEdges() {
		pf = &profile.Profile{Name: prof.Name, BlockCount: prof.BlockCount}
	}
	l, rep, err := pl.Run(s.appImg.Prog, pf)
	if err != nil {
		return nil, fmt.Errorf("expt: layout %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.layouts[name]; ok {
		return prev, nil // another goroutine built it concurrently
	}
	s.layouts[name] = l
	s.reports[name] = rep
	return l, nil
}

// Report returns the optimizer report for a built layout.
func (s *Session) Report(name string) *core.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reports[name]
}

// KernLayout returns a kernel layout: "kbase" or "kopt" (kernel code laid
// out with the full optimization pipeline over the kernel profile).
func (s *Session) KernLayout(name string) (*program.Layout, error) {
	s.mu.Lock()
	l, ok := s.kernLay[name]
	s.mu.Unlock()
	if ok {
		return l, nil
	}
	if name != "kopt" {
		return nil, fmt.Errorf("expt: unknown kernel layout %q", name)
	}
	if err := s.Train(); err != nil {
		return nil, err
	}
	l, _, err := core.Optimize(s.kernImg.Prog, s.trainK, core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.kernLay["kopt"]; ok {
		return prev, nil
	}
	s.kernLay["kopt"] = l
	return l, nil
}

func (s *Session) machineConfig(layout, kern string, cpus int) machine.Config {
	s.mu.Lock()
	appL, kernL := s.layouts[layout], s.kernLay[kern]
	s.mu.Unlock()
	return machine.Config{
		CPUs:                   cpus,
		ProcsPerCPU:            s.Opt.ProcsPerCPU,
		Seed:                   s.Opt.Seed,
		Shards:                 s.Opt.Shards,
		GroupCommitWindowInstr: s.Opt.GroupCommitWindowInstr,
		PerCommitLogFlush:      s.Opt.PerCommitLogFlush,
		WarmupTxns:             s.Opt.WarmupTxns,
		Transactions:           s.Opt.Transactions,
		Workload:               s.Opt.Workload,
		AppImage:               s.appImg,
		AppLayout:              appL,
		KernImage:              s.kernImg,
		KernLayout:             kernL,
	}
}

// shardKey normalizes the configured shard count for memo keys (0 and 1
// are the same single-engine machine).
func (s *Session) shardKey() int {
	if s.Opt.Shards <= 1 {
		return 1
	}
	return s.Opt.Shards
}

// Measure runs (or returns the memoized run of) the workload under the
// named layouts with the full measurement battery attached.
func (s *Session) Measure(layout string, cpus int) (*Measure, error) {
	return s.MeasureKern(layout, "kbase", cpus)
}

// MeasureKern is Measure with an explicit kernel layout. Concurrent calls
// for the same (layout, kernel, cpus) key share one simulation run: the
// first caller runs it, later callers block until the result (or error) is
// memoized.
func (s *Session) MeasureKern(layout, kern string, cpus int) (*Measure, error) {
	key := measKey{s.Opt.Workload.Name(), layout, kern, cpus, s.shardKey(), s.Opt.GroupCommitWindowInstr, s.Opt.PerCommitLogFlush}
	for {
		s.mu.Lock()
		if m, ok := s.measures[key]; ok {
			s.mu.Unlock()
			return m, nil
		}
		if err, ok := s.measErr[key]; ok {
			s.mu.Unlock()
			return nil, err
		}
		if ch, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-ch // someone else is running this measurement
			continue
		}
		ch := make(chan struct{})
		s.inflight[key] = ch
		s.mu.Unlock()

		meas, err := s.measure(layout, kern, cpus)
		s.mu.Lock()
		if err != nil {
			s.measErr[key] = err
		} else {
			s.measures[key] = meas
		}
		delete(s.inflight, key)
		close(ch)
		s.mu.Unlock()
		return meas, err
	}
}

func (s *Session) measure(layout, kern string, cpus int) (*Measure, error) {
	if _, err := s.Layout(layout); err != nil && layout != "base" {
		return nil, err
	}
	if _, err := s.KernLayout(kern); err != nil && kern != "kbase" {
		return nil, err
	}
	bat := newBattery(cpus)
	cfg := s.machineConfig(layout, kern, cpus)
	cfg.Sinks = bat.sinks()
	cfg.DataSinks = bat.dataSinks()
	mach, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := mach.Run()
	if err != nil {
		return nil, fmt.Errorf("expt: measuring %s/%s/%dcpu: %w", layout, kern, cpus, err)
	}
	return bat.finish(res), nil
}

// MeasureBatch measures every named layout concurrently with a bounded
// worker pool (workers <= 0 picks min(GOMAXPROCS, len(layouts))). Each
// result lands in the memo, so subsequent serial Measure calls are hits. The
// first error is returned after all workers drain.
func (s *Session) MeasureBatch(layouts []string, cpus, workers int) error {
	if len(layouts) == 0 {
		return nil
	}
	// The training run is a shared dependency of every layout build; do it
	// before fanning out so workers start from the same memoized profiles
	// instead of queueing behind the sync.Once.
	if err := s.Train(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(layouts) {
		workers = len(layouts)
	}
	jobs := make(chan string)
	errs := make(chan error, len(layouts))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				_, err := s.Measure(name, cpus)
				errs <- err
			}
		}()
	}
	for _, name := range layouts {
		jobs <- name
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
