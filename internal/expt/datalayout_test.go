package expt

import (
	"reflect"
	"strings"
	"testing"
)

// measurePair builds a fresh source over QuickOptions TPC-B and measures the
// base code layout under both record layouts.
func measurePair(t *testing.T) (*Measure, *Measure) {
	t.Helper()
	o := QuickOptions()
	src, err := NewProfileSource(o)
	if err != nil {
		t.Fatalf("NewProfileSource: %v", err)
	}
	oi := o
	oi.RecordLayout = "interleaved"
	sI, err := NewSessionFrom(src, oi)
	if err != nil {
		t.Fatalf("interleaved session: %v", err)
	}
	og := o
	og.RecordLayout = "grouped"
	sG, err := NewSessionFrom(src, og)
	if err != nil {
		t.Fatalf("grouped session: %v", err)
	}
	mI, err := sI.Measure("base", o.CPUs)
	if err != nil {
		t.Fatalf("interleaved measure: %v", err)
	}
	mG, err := sG.Measure("base", o.CPUs)
	if err != nil {
		t.Fatalf("grouped measure: %v", err)
	}
	return mI, mG
}

// TestDataLayoutGroupedBeatsInterleaved pins the record-layout win: on
// TPC-B at the quick scale and fixed seed, grouping hot fields at the record
// head must strictly reduce L1D misses versus the interleaved baseline,
// with equal modeled data references and an identical instruction stream —
// and the whole comparison must be bit-identical across a fresh rebuild.
// Invariants are checked inside Session.measure, so a corrupting layout
// would fail the measure calls themselves.
func TestDataLayoutGroupedBeatsInterleaved(t *testing.T) {
	mI, mG := measurePair(t)

	// Both layouts issue the same modeled data references; the L1D counts
	// line touches, so grouping can only shed the line-crossing ones.
	if mG.Mem.L1DAccesses > mI.Mem.L1DAccesses {
		t.Errorf("grouped layout touches more L1D lines than interleaved: %d > %d",
			mG.Mem.L1DAccesses, mI.Mem.L1DAccesses)
	}
	if mI.Res.AppInstrs != mG.Res.AppInstrs || mI.Res.KernelInstrs != mG.Res.KernelInstrs {
		t.Errorf("instruction streams differ: interleaved app=%d kern=%d, grouped app=%d kern=%d",
			mI.Res.AppInstrs, mI.Res.KernelInstrs, mG.Res.AppInstrs, mG.Res.KernelInstrs)
	}
	if mG.Mem.L1DMisses >= mI.Mem.L1DMisses {
		t.Errorf("grouped layout must strictly reduce L1D misses: interleaved %d, grouped %d",
			mI.Mem.L1DMisses, mG.Mem.L1DMisses)
	}
	t.Logf("L1D misses: interleaved %d, grouped %d (%.1f%% fewer)",
		mI.Mem.L1DMisses, mG.Mem.L1DMisses,
		100*(1-float64(mG.Mem.L1DMisses)/float64(mI.Mem.L1DMisses)))

	// Rebuild everything from scratch: images, training, layouts, runs. The
	// comparison must reproduce bit for bit.
	mI2, mG2 := measurePair(t)
	if !reflect.DeepEqual(mI.Res, mI2.Res) || !reflect.DeepEqual(mI.Mem, mI2.Mem) {
		t.Error("interleaved measurement is not bit-identical across a fresh rebuild")
	}
	if !reflect.DeepEqual(mG.Res, mG2.Res) || !reflect.DeepEqual(mG.Mem, mG2.Mem) {
		t.Error("grouped measurement is not bit-identical across a fresh rebuild")
	}
}

// TestDataLayoutTableQuick exercises the report end to end (uniform regime
// only, to keep CI time down; the skewed regime runs in the layoutlab smoke).
func TestDataLayoutTableQuick(t *testing.T) {
	o := QuickOptions()
	tbl, err := DataLayoutTable(o, DataLayoutSpec{UniformOnly: true})
	if err != nil {
		t.Fatalf("DataLayoutTable: %v", err)
	}
	out := tbl.String()
	for _, want := range []string{"interleaved", "grouped", "L1D misses", "uniform"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestDataLayoutSpecValidation: out-of-range skew knobs fail fast instead of
// silently producing a nonsensical regime.
func TestDataLayoutSpecValidation(t *testing.T) {
	o := QuickOptions()
	if _, err := DataLayoutTable(o, DataLayoutSpec{ZipfTheta: 1.0}); err == nil {
		t.Error("ZipfTheta = 1.0 must be rejected")
	}
	if _, err := DataLayoutTable(o, DataLayoutSpec{HotAccountFrac: -0.1}); err == nil {
		t.Error("HotAccountFrac = -0.1 must be rejected")
	}
}

// TestSessionRejectsUnknownRecordLayout: the Options knob is validated at
// session construction, not at first measure.
func TestSessionRejectsUnknownRecordLayout(t *testing.T) {
	o := QuickOptions()
	o.RecordLayout = "diagonal"
	if _, err := NewSession(o); err == nil || !strings.Contains(err.Error(), "RecordLayout") {
		t.Errorf("RecordLayout=diagonal must fail session construction; got err=%v", err)
	}
}
