package expt

import (
	"fmt"

	"codelayout/internal/stats"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

// DataLayoutSpec configures the record-layout comparison: each regime
// (uniform, plus a skewed variant when the workload has a skew knob) is
// trained once and measured twice — interleaved vs grouped physical record
// layout — so the delta columns isolate what hot/cold field grouping buys
// the data cache.
type DataLayoutSpec struct {
	// CPUs is the measured processor count; 0 uses the options' CPUs.
	CPUs int
	// ZipfTheta is the YCSB skewed regime's Zipfian parameter in (0, 1);
	// 0 selects 0.9 (the YCSB default). Ignored for other workloads.
	ZipfTheta float64
	// HotAccountFrac is the TPC-B skewed regime's hot-account fraction in
	// (0, 1); 0 selects 0.1. Ignored for other workloads.
	HotAccountFrac float64
	// UniformOnly skips the skewed regime even when the workload has a
	// skew knob.
	UniformOnly bool
}

// dataLayoutRegimes returns the regimes the table runs: the workload as
// given, plus its skewed variant when it has a skew knob and is not already
// skewed. Order-entry has no skew knob, so it gets the uniform row only.
func dataLayoutRegimes(o Options, spec DataLayoutSpec) []struct {
	name string
	wl   workload.Workload
} {
	type regime = struct {
		name string
		wl   workload.Workload
	}
	regimes := []regime{{name: "uniform", wl: o.Workload}}
	if spec.UniformOnly {
		return regimes
	}
	switch w := o.Workload.(type) {
	case *tpcb.Workload:
		if w.HotAccountFrac == 0 {
			frac := spec.HotAccountFrac
			if frac == 0 {
				frac = 0.1
			}
			skew := *w
			skew.HotAccountFrac = frac
			regimes = append(regimes, regime{name: fmt.Sprintf("hot %.0f%%", frac*100), wl: &skew})
		}
	case *ycsb.Workload:
		if w.ZipfTheta == 0 {
			theta := spec.ZipfTheta
			if theta == 0 {
				theta = 0.9
			}
			skew := *w
			skew.ZipfTheta = theta
			regimes = append(regimes, regime{name: fmt.Sprintf("zipf %.2f", theta), wl: &skew})
		}
	}
	return regimes
}

// DataLayoutTable measures the profile-guided record layout against the
// interleaved baseline: per regime (uniform key draw, then the skewed draw
// if the workload has a skew knob), one training run feeds two measured
// runs that differ only in the physical record layout the machine installs
// before loading. Code layout is held at "base"/"kbase" throughout so every
// delta is attributable to data layout alone.
func DataLayoutTable(o Options, spec DataLayoutSpec) (*stats.Table, error) {
	if spec.ZipfTheta < 0 || spec.ZipfTheta >= 1 {
		return nil, fmt.Errorf("expt: DataLayoutSpec.ZipfTheta = %v; must be in [0, 1) (0 selects 0.9)", spec.ZipfTheta)
	}
	if spec.HotAccountFrac < 0 || spec.HotAccountFrac >= 1 {
		return nil, fmt.Errorf("expt: DataLayoutSpec.HotAccountFrac = %v; must be in [0, 1) (0 selects 0.1)", spec.HotAccountFrac)
	}
	cpus := spec.CPUs
	if cpus == 0 {
		cpus = o.CPUs
	}
	if o.Workload == nil {
		o.Workload = defaultWorkload()
	}
	regimes := dataLayoutRegimes(o, spec)

	extras := make([]workload.Workload, 0, 1)
	for _, r := range regimes[1:] {
		extras = append(extras, r.wl)
	}
	src, err := NewProfileSource(o, extras...)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Record layout: %s, %d cpus, interleaved vs grouped (code layout held at base)",
			o.Workload.Name(), cpus),
		"regime", "record layout", "L1D refs", "L1D misses", "miss %", "instr/txn", "p50", "p99")

	for _, r := range regimes {
		eo := o
		eo.Workload = r.wl
		eo.RecordLayout = "interleaved"
		sI, err := NewSessionFrom(src, eo)
		if err != nil {
			return nil, err
		}
		og := eo
		og.RecordLayout = "grouped"
		sG, err := NewSessionFrom(src, og)
		if err != nil {
			return nil, err
		}
		mI, err := sI.Measure("base", cpus)
		if err != nil {
			return nil, fmt.Errorf("regime %s interleaved: %w", r.name, err)
		}
		mG, err := sG.Measure("base", cpus)
		if err != nil {
			return nil, fmt.Errorf("regime %s grouped: %w", r.name, err)
		}
		for _, row := range []struct {
			layout string
			m      *Measure
		}{{"interleaved", mI}, {"grouped", mG}} {
			m := row.m
			miss := 0.0
			if m.Mem.L1DAccesses > 0 {
				miss = float64(m.Mem.L1DMisses) / float64(m.Mem.L1DAccesses)
			}
			t.AddRow(r.name, row.layout,
				m.Mem.L1DAccesses, m.Mem.L1DMisses, stats.Pct(miss),
				fmt.Sprintf("%.0f", newSweepRow(m, cpus).perTxn),
				m.Res.Latency.P50, m.Res.Latency.P99)
		}
		t.Notef("%s: grouped Δ L1D misses %s, Δ p99 %s vs interleaved", r.name,
			delta(float64(mI.Mem.L1DMisses), float64(mG.Mem.L1DMisses)),
			delta(float64(mI.Res.Latency.P99), float64(mG.Res.Latency.P99)))
	}
	t.Note("grouped = hot fields (by trained field-access profile) packed contiguously at the record head; same record width, same instruction stream")
	return t, nil
}
