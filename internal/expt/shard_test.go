package expt_test

import (
	"reflect"
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
)

// TestShardsOneMeasureMatchesDefault pins the refactor's compatibility
// contract at the harness level: a session configured with Shards=1 must
// produce a Measure identical to the default (unset) configuration — the
// pre-refactor single-engine path — including every cache simulator in the
// battery.
func TestShardsOneMeasureMatchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	mk := func() workload.Workload {
		return tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 150})
	}
	run := func(shards int) *expt.Measure {
		o := tinyOptions(mk())
		o.Transactions = 40
		o.WarmupTxns = 10
		o.Train.Txns = 100
		o.Shards = shards
		s, err := expt.NewSession(o)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Measure("base", s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	def, one := run(0), run(1)
	if def.Res != one.Res {
		t.Fatalf("Shards=1 machine result diverges from default:\n%+v\n%+v", def.Res, one.Res)
	}
	if !reflect.DeepEqual(def, one) {
		t.Fatal("Shards=1 Measure diverges from the default single-engine path")
	}
}

// TestShardedSessionDeterminism: a sharded session is as reproducible as a
// single-engine one — two sessions with identical options (Shards=2) must
// produce identical Measures, and the sharded run must actually route
// cross-shard transactions.
func TestShardedSessionDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	run := func() *expt.Measure {
		o := tinyOptions(tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 120}))
		o.Transactions = 40
		o.WarmupTxns = 10
		o.Train.Txns = 100
		o.Shards = 2
		s, err := expt.NewSession(o)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Measure("base", s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Res != b.Res {
		t.Fatalf("sharded sessions diverge:\n%+v\n%+v", a.Res, b.Res)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded Measures differ between identical sessions")
	}
	if a.Res.CrossShard == 0 {
		t.Fatal("sharded session routed no cross-shard transactions")
	}
}
