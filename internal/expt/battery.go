package expt

import (
	"codelayout/internal/cache"
	"codelayout/internal/machine"
	"codelayout/internal/mem"
	"codelayout/internal/tlb"
	"codelayout/internal/trace"
)

// The parameter grids of the paper's evaluation.
var (
	// CacheSizesKB is Figure 4/6/7/12's cache-size axis.
	CacheSizesKB = []int{32, 64, 128, 256, 512}
	// LineSizes is Figure 4/5's line-size axis.
	LineSizes = []int{16, 32, 64, 128, 256}
)

// Measure holds everything one simulated run produces.
type Measure struct {
	Res machine.Result

	// Latency is the run's per-transaction latency breakdown per home
	// shard × transaction kind (the run-wide summary is Res.Latency).
	Latency []machine.TxnLatency
	// GCWindows reports the per-shard group-commit windows in force at the
	// end of the run (the tuned values under an AutoGroupCommit mode).
	GCWindows []uint64

	// AppDM[size][line] — application-only, direct-mapped (Figures 4, 5).
	AppDM map[int]map[int]*cache.Stats
	// App4W[size] — application-only, 128B lines, 4-way (Figures 6, 7, 12).
	App4W map[int]*cache.Stats
	// Comb4W[size] — combined app+kernel, 128B, 4-way (Figure 12).
	Comb4W map[int]*cache.Stats
	// Kern4W[size] — kernel-only, 128B, 4-way (Figure 12).
	Kern4W map[int]*cache.Stats

	// Word: application-only 128KB/128B/4-way with word tracking
	// (Figures 9, 10, 11 and the unused-fetch statistic).
	Word *cache.Stats
	// Intf: combined 128KB/128B/4-way for interference attribution
	// (Figure 13).
	Intf *cache.Stats

	// Seq and Foot observe the application stream (Figure 8, footprint).
	Seq  *trace.SeqLen
	Foot *trace.Footprint

	AppRuns trace.Counter
	AllRuns trace.Counter

	// ITLB64/ITLB48: merged iTLB misses (64-entry SimOS config, 48-entry
	// 21164 config).
	ITLB64 uint64
	ITLB48 uint64

	// HW21264/HW21164: the hardware platforms' L1 I-caches (combined
	// stream): 64KB 2-way 64B and 8KB direct-mapped 32B. These are the same
	// simulators that feed the SimOS L2 and the 21164 board cache.
	HW21264 *cache.Stats
	HW21164 *cache.Stats

	// Mem: the SimOS memory system (64KB/64B/2-way L1I+L1D feeding a 1.5MB
	// 6-way unified L2) — Figure 14.
	Mem mem.Stats
	// Board: the 21164-like system (8KB L1s feeding a 2MB direct-mapped
	// board cache).
	Board mem.Stats
}

// battery wires up every sink for one run.
type battery struct {
	cpus int

	appDM  map[int]map[int]*perCPUCache
	app4W  map[int]*perCPUCache
	comb4W map[int]*perCPUCache
	kern4W map[int]*perCPUCache
	word   *perCPUCache
	intf   *perCPUCache

	seq    *trace.SeqLen
	foot   *trace.Footprint
	appCnt *trace.Counter
	allCnt *trace.Counter
	itlb64 *perCPUTLB
	itlb48 *perCPUTLB
	memsys *mem.System
	board  *mem.System

	simosL1I *perCPUCache // 64KB/64B/2-way, feeds memsys (doubles as 21264 L1I)
	boardL1I *perCPUCache // 8KB/32B/direct, feeds board (doubles as 21164 L1I)
}

func newBattery(cpus int) *battery {
	b := &battery{
		cpus:   cpus,
		appDM:  make(map[int]map[int]*perCPUCache),
		app4W:  make(map[int]*perCPUCache),
		comb4W: make(map[int]*perCPUCache),
		kern4W: make(map[int]*perCPUCache),
	}
	for _, size := range CacheSizesKB {
		b.appDM[size] = make(map[int]*perCPUCache)
		for _, line := range LineSizes {
			b.appDM[size][line] = newPerCPUCache(cache.Config{SizeBytes: size << 10, LineBytes: line, Assoc: 1}, cpus)
		}
		b.app4W[size] = newPerCPUCache(cache.Config{SizeBytes: size << 10, LineBytes: 128, Assoc: 4}, cpus)
		b.comb4W[size] = newPerCPUCache(cache.Config{SizeBytes: size << 10, LineBytes: 128, Assoc: 4}, cpus)
		b.kern4W[size] = newPerCPUCache(cache.Config{SizeBytes: size << 10, LineBytes: 128, Assoc: 4}, cpus)
	}
	b.word = newPerCPUCache(cache.Config{SizeBytes: 128 << 10, LineBytes: 128, Assoc: 4, WordStats: true}, cpus)
	b.intf = newPerCPUCache(cache.Config{SizeBytes: 128 << 10, LineBytes: 128, Assoc: 4}, cpus)
	b.seq = trace.NewSeqLen()
	b.foot = trace.NewFootprint(128)
	b.appCnt = &trace.Counter{}
	b.allCnt = &trace.Counter{}
	b.itlb64 = newPerCPUTLB(64, cpus)
	b.itlb48 = newPerCPUTLB(48, cpus)

	b.memsys = mem.NewSystem(mem.DefaultConfig(cpus))
	b.simosL1I = newPerCPUCache(cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2}, cpus)
	for c, ic := range b.simosL1I.sims {
		cc := c
		ic.OnMiss(func(lineAddr uint64, kernel bool) { b.memsys.FetchMiss(lineAddr, cc) })
	}
	b.board = mem.NewSystem(mem.Config{
		CPUs:         cpus,
		L1DSizeBytes: 8 << 10, L1DLineBytes: 32, L1DAssoc: 1,
		L2SizeBytes: 2 << 20, L2LineBytes: 64, L2Assoc: 1,
	})
	b.boardL1I = newPerCPUCache(cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}, cpus)
	for c, ic := range b.boardL1I.sims {
		cc := c
		ic.OnMiss(func(lineAddr uint64, kernel bool) { b.board.FetchMiss(lineAddr, cc) })
	}
	return b
}

func (b *battery) sinks() []trace.Sink {
	var appSinks trace.Tee
	for _, perLine := range b.appDM {
		for _, c := range perLine {
			appSinks = append(appSinks, c)
		}
	}
	for _, c := range b.app4W {
		appSinks = append(appSinks, c)
	}
	appSinks = append(appSinks, b.word, b.seq, b.foot, b.appCnt)

	var kernSinks trace.Tee
	for _, c := range b.kern4W {
		kernSinks = append(kernSinks, c)
	}

	var combined trace.Tee
	for _, c := range b.comb4W {
		combined = append(combined, c)
	}
	combined = append(combined, b.intf, b.allCnt,
		b.itlb64, b.itlb48, b.simosL1I, b.boardL1I)

	return []trace.Sink{
		trace.AppOnly(appSinks),
		trace.KernelOnly(kernSinks),
		combined,
	}
}

func (b *battery) dataSinks() []trace.DataSink {
	return []trace.DataSink{b.memsys, b.board}
}

func (b *battery) finish(res machine.Result) *Measure {
	m := &Measure{
		Res:    res,
		AppDM:  make(map[int]map[int]*cache.Stats),
		App4W:  make(map[int]*cache.Stats),
		Comb4W: make(map[int]*cache.Stats),
		Kern4W: make(map[int]*cache.Stats),
	}
	for size, perLine := range b.appDM {
		m.AppDM[size] = make(map[int]*cache.Stats)
		for line, c := range perLine {
			m.AppDM[size][line] = c.stats()
		}
	}
	for size, c := range b.app4W {
		m.App4W[size] = c.stats()
	}
	for size, c := range b.comb4W {
		m.Comb4W[size] = c.stats()
	}
	for size, c := range b.kern4W {
		m.Kern4W[size] = c.stats()
	}
	m.Word = b.word.stats()
	m.Intf = b.intf.stats()
	b.seq.Flush()
	m.Seq = b.seq
	m.Foot = b.foot
	m.AppRuns = *b.appCnt
	m.AllRuns = *b.allCnt
	m.ITLB64 = b.itlb64.misses()
	m.ITLB48 = b.itlb48.misses()
	m.HW21264 = b.simosL1I.stats()
	m.HW21164 = b.boardL1I.stats()
	m.Mem = b.memsys.Stats
	m.Board = b.board.Stats
	return m
}

// perCPUCache routes runs to one ICache per CPU and merges their stats.
type perCPUCache struct {
	sims []*cache.ICache
	cfg  cache.Config
}

func newPerCPUCache(cfg cache.Config, cpus int) *perCPUCache {
	p := &perCPUCache{cfg: cfg}
	for i := 0; i < cpus; i++ {
		p.sims = append(p.sims, cache.New(cfg))
	}
	return p
}

// Fetch implements trace.Sink.
func (p *perCPUCache) Fetch(r trace.FetchRun) {
	i := int(r.CPU)
	if i >= len(p.sims) {
		i = len(p.sims) - 1
	}
	p.sims[i].Fetch(r)
}

func (p *perCPUCache) stats() *cache.Stats {
	merged := cache.NewStats(p.cfg)
	for _, c := range p.sims {
		c.Finalize()
		merged.Merge(c.Stats())
	}
	return merged
}

// perCPUTLB routes runs to one iTLB per CPU.
type perCPUTLB struct {
	tlbs []*tlb.TLB
}

func newPerCPUTLB(entries, cpus int) *perCPUTLB {
	p := &perCPUTLB{}
	for i := 0; i < cpus; i++ {
		p.tlbs = append(p.tlbs, tlb.New(entries))
	}
	return p
}

// Fetch implements trace.Sink.
func (p *perCPUTLB) Fetch(r trace.FetchRun) {
	i := int(r.CPU)
	if i >= len(p.tlbs) {
		i = len(p.tlbs) - 1
	}
	p.tlbs[i].Fetch(r)
}

func (p *perCPUTLB) misses() uint64 {
	var n uint64
	for _, t := range p.tlbs {
		n += t.Misses
	}
	return n
}
