package expt_test

import (
	"strconv"
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/machine"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
)

// TestMeasureCarriesLatency: measurement memos carry the latency breakdown
// and tuned group-commit windows, and sessions under different auto-tuning
// modes key separate runs over one shared profile source.
func TestMeasureCarriesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := tinyOptions(tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 120}))
	o.Shards = 2
	s, err := expt.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Measure("base", o.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Res.Latency.N == 0 {
		t.Fatal("measure carries no latency summary")
	}
	if len(m.Latency) == 0 {
		t.Fatal("measure carries no per-kind latency breakdown")
	}
	for _, c := range m.Latency {
		if c.Summary.N == 0 || c.Hist == nil || c.Hist.N != c.Summary.N {
			t.Fatalf("inconsistent latency cell %+v", c)
		}
	}
	if len(m.GCWindows) != 2 {
		t.Fatalf("GCWindows = %v, want one per shard", m.GCWindows)
	}

	// A tail-tuned session over the same source must run (and memoize) its
	// own measurement — the memo key includes the auto-GC mode.
	o2 := o
	o2.AutoGroupCommit = machine.AutoGCTargetP99
	s2, err := expt.NewSessionFrom(s.Source(), o2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Measure("base", o.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m {
		t.Fatal("tail-tuned measurement returned the untuned session's memo entry")
	}
	if m2.Res.Latency.N == 0 {
		t.Fatal("tuned measure carries no latency summary")
	}
	// Memo hit on repeat within each session.
	if again, _ := s2.Measure("base", o.CPUs); again != m2 {
		t.Fatal("repeated measurement missed the memo")
	}
}

// TestLatencyTablesQuick runs the latency percentile tables end-to-end on a
// tiny configuration: both tables render, the summary has one row per
// (workload × shard count × layout), and every row's percentiles are
// ordered.
func TestLatencyTablesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 120})
	o := tinyOptions(wl)
	tables, err := expt.LatencyTables(o, expt.LatencySpec{
		Workloads: []workload.Workload{wl},
		Shards:    []int{1, 2},
		Layout:    "all",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	sum := tables[0]
	if len(sum.Rows) != 4 { // 1 workload × 2 shard counts × {orig, all}
		t.Fatalf("summary rows = %d, want 4:\n%+v", len(sum.Rows), sum.Rows)
	}
	col := func(row []string, name string) uint64 {
		for i, c := range sum.Cols {
			if c == name {
				v, err := strconv.ParseUint(row[i], 10, 64)
				if err != nil {
					t.Fatalf("column %s = %q: %v", name, row[i], err)
				}
				return v
			}
		}
		t.Fatalf("no column %s", name)
		return 0
	}
	layouts := map[string]bool{}
	for _, row := range sum.Rows {
		layouts[row[2]] = true
		p50, p95, p99, max := col(row, "p50"), col(row, "p95"), col(row, "p99"), col(row, "max")
		if col(row, "txns") == 0 {
			t.Fatalf("row %v measured no transactions", row)
		}
		if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
			t.Fatalf("row %v percentiles out of order", row)
		}
	}
	if !layouts["orig"] || !layouts["all"] {
		t.Fatalf("summary layouts = %v, want orig and all", layouts)
	}
	if len(tables[1].Rows) < 4 {
		t.Fatalf("per-kind table rows = %d, want >= 4", len(tables[1].Rows))
	}
}
