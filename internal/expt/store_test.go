package expt_test

import (
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/pstore"
	"codelayout/internal/tpcb"
)

// storeOpts is a deliberately small configuration the store tests share; two
// invocations of it must resolve to the same store key.
func storeOpts() expt.Options {
	o := expt.QuickOptions()
	o.Transactions = 50
	o.WarmupTxns = 10
	o.Train.Txns = 120
	o.CPUs = 1
	o.ProcsPerCPU = 4
	o.Workload = tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 200})
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	return o
}

// TestProfileStoreWarmSkipsTraining is the pinned store regression: a second
// identical invocation against the same store directory must execute zero
// training runs (the store serves the profile) and produce bit-identical
// measurements.
func TestProfileStoreWarmSkipsTraining(t *testing.T) {
	dir := t.TempDir()

	// invoke simulates one process: a fresh Store over the shared directory,
	// a fresh session, one measured layout.
	invoke := func() (res interface{}, trained uint64, st pstore.Stats) {
		store, err := pstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := storeOpts()
		o.ProfileStore = store
		s, err := expt.NewSession(o)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Measure("all", 1)
		if err != nil {
			t.Fatal(err)
		}
		return m.Res, s.Source().TrainRunsExecuted(), store.Stats()
	}

	res1, trained1, st1 := invoke()
	if trained1 != 1 {
		t.Fatalf("cold invocation executed %d training runs, want 1", trained1)
	}
	if st1.Misses == 0 || st1.Hits != 0 {
		t.Fatalf("cold invocation store stats: %+v, want a miss and no hits", st1)
	}

	res2, trained2, st2 := invoke()
	if trained2 != 0 {
		t.Fatalf("warm invocation executed %d training runs, want 0 (store hit)", trained2)
	}
	if st2.Hits == 0 {
		t.Fatalf("warm invocation store stats: %+v, want a hit", st2)
	}
	if res1 != res2 {
		t.Fatalf("warm-store measurement diverged from cold:\n cold: %+v\n warm: %+v", res1, res2)
	}
}

// TestProfileStoreHitReported: the source must surface the served entry so
// commands can report its age, and a no-store source must report nothing.
func TestProfileStoreHitReported(t *testing.T) {
	store, err := pstore.Open("") // memory-only
	if err != nil {
		t.Fatal(err)
	}
	o := storeOpts()
	o.ProfileStore = store

	s1, err := expt.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Train(); err != nil {
		t.Fatal(err)
	}
	if s1.Source().LastStoreHit() != nil {
		t.Fatal("cold training reported a store hit")
	}
	if _, ok := s1.Source().StoreStats(); !ok {
		t.Fatal("store-backed source reports no store stats")
	}

	// A second source sharing the same Store (one process, shared LRU).
	s2, err := expt.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Train(); err != nil {
		t.Fatal(err)
	}
	if s2.Source().TrainRunsExecuted() != 0 {
		t.Fatalf("second source retrained despite the shared store (%d runs)", s2.Source().TrainRunsExecuted())
	}
	hit := s2.Source().LastStoreHit()
	if hit == nil {
		t.Fatal("second source served from the store but reports no hit entry")
	}
	if hit.App == nil || hit.Kern == nil || len(hit.KindFreq) == 0 {
		t.Fatalf("hit entry incomplete: %+v", hit)
	}

	noStore, err := expt.NewSession(storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := noStore.Source().StoreStats(); ok {
		t.Fatal("store-less source claims store stats")
	}
}

// TestBlendTableQuick: the aged-profile blend sweep runs end to end on the
// default drift pair and the fresh profile serves the drifted-to mix at
// least as well as the stale one.
func TestBlendTableQuick(t *testing.T) {
	o := storeOpts()
	res, err := expt.BlendTable(o, expt.BlendSpec{Ratios: []float64{0, 0.5, 1}, CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	if res.Table == nil || len(res.Table.Rows) != 3 {
		t.Fatalf("blend table malformed: %+v", res.Table)
	}
	for _, c := range res.Cells {
		if c.P99 == 0 || c.InstrPerTxn == 0 || c.MissRatio <= 0 {
			t.Fatalf("degenerate blend cell: %+v", c)
		}
	}
	stale, fresh := res.Cells[0], res.Cells[len(res.Cells)-1]
	if fresh.MissRatio > stale.MissRatio {
		t.Errorf("fresh-profile layout misses more than the stale one under the drifted mix: %.4f > %.4f",
			fresh.MissRatio, stale.MissRatio)
	}
}

// TestBlendTableRejectsBadSpec: one-sided workload overrides and name
// collisions fail fast.
func TestBlendTableRejectsBadSpec(t *testing.T) {
	o := storeOpts()
	if _, err := expt.BlendTable(o, expt.BlendSpec{Old: tpcb.New()}); err == nil {
		t.Error("one-sided workload override: want error")
	}
	if _, err := expt.BlendTable(o, expt.BlendSpec{Old: tpcb.New(), New: tpcb.New()}); err == nil {
		t.Error("same-name workloads: want error")
	}
}
