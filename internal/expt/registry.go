package expt

import (
	"fmt"
	"io"
	"sort"

	"codelayout/internal/stats"
)

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Paper string // which paper artifact this regenerates
	Title string
	Run   func(*Session) ([]*stats.Table, error)
}

var registry = []Experiment{
	{"fig03", "Figure 3", "Execution profile of the unoptimized binary", fig03},
	{"fig04", "Figure 4", "Application icache misses across cache and line sizes", fig04},
	{"fig05", "Figure 5", "Relative misses, optimized over baseline", fig05},
	{"fig06", "Figure 6", "Associativity impact", fig06},
	{"fig07", "Figure 7", "Impact of each optimization combination", fig07},
	{"fig08", "Figure 8", "Sequentially executed instructions", fig08},
	{"fig09", "Figure 9", "Unique word usage before replacement", fig09},
	{"fig10", "Figure 10", "Word reuse before replacement", fig10},
	{"fig11", "Figure 11", "Cache line lifetimes", fig11},
	{"fig12", "Figure 12", "Combined application and kernel streams", fig12},
	{"fig13", "Figure 13", "Application/kernel interference", fig13},
	{"fig14", "Figure 14", "iTLB and L2 cache behavior", fig14},
	{"fig15", "Figure 15", "Relative execution time per optimization", fig15},
	{"footprint", "§4.1 text", "Code packing: footprint and unused fetches", footprintExp},
	{"hw21164", "§5 text", "21164 hardware-counter results", hw21164Exp},
	{"speedup", "§5 text", "Overall speedups (1P, 4P, SimOS)", speedupExp},
	{"kernopt", "§5 text", "Kernel layout optimization", kernoptExp},
	{"abl-split", "ablation", "Fine-grain vs hot/cold splitting", ablSplit},
	{"abl-cfa", "ablation", "CFA reserved-area negative result", ablCFA},
	{"abl-profile", "ablation", "Pixie vs DCPI profiles", ablProfile},
}

// IDs lists experiment IDs in registry order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q (have %v)", id, IDs())
}

// Run executes one experiment in the session.
func (s *Session) Run(id string) ([]*stats.Table, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(s)
}

// RunAll executes every experiment, rendering tables to w as they finish.
func (s *Session) RunAll(w io.Writer) error {
	for _, e := range registry {
		fmt.Fprintf(w, "\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Paper)
		tables, err := e.Run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Render(w)
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Summary returns a sorted one-line-per-experiment description.
func Summary() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, fmt.Sprintf("%-12s %-10s %s", e.ID, e.Paper, e.Title))
	}
	sort.Strings(out)
	return out
}
