package expt_test

import (
	"reflect"
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/ordere"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
)

// tinyOptions returns the smallest session configuration that still runs
// every pipeline meaningfully for the given workload.
func tinyOptions(wl workload.Workload) expt.Options {
	o := expt.QuickOptions()
	o.Transactions = 60
	o.WarmupTxns = 15
	o.Train.Txns = 150
	o.CPUs = 2
	o.ProcsPerCPU = 4
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	o.Workload = wl
	return o
}

func tinyOrdere() workload.Workload {
	return ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})
}

// TestOrderEntryPipelinesReduceMisses is the cross-workload acceptance
// check: the full pass pipeline (chain,split,porder,cfa,align — the "cfa"
// combo) and the inter-procedural "ipchain" combo both produce a lower
// application miss ratio than baseline on the order-entry workload, i.e.
// the layout wins are not TPC-B artifacts.
func TestOrderEntryPipelinesReduceMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s, err := expt.NewSession(tinyOptions(tinyOrdere()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MeasureBatch([]string{"base", "all", "cfa", "ipchain"}, s.Opt.CPUs, 0); err != nil {
		t.Fatal(err)
	}
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"all", "cfa", "ipchain"} {
		opt, err := s.Measure(name, s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := s.PipelineSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{64, 128} {
			b, o := base.App4W[size].MissRate(), opt.App4W[size].MissRate()
			if o >= b {
				t.Errorf("%s (%s) did not lower the %dKB miss ratio on ordere: %.4f -> %.4f",
					name, spec, size, b, o)
			} else {
				t.Logf("%s @%dKB: miss ratio %.4f -> %.4f (%.1f%% lower)",
					name, size, b, o, 100*(1-o/b))
			}
		}
	}
}

// TestMeasureDeterminism is the regression test for the parallel memo path:
// two sessions with identical options, each measuring through MeasureBatch's
// worker pool, must produce identical Measure results — for both workloads.
func TestMeasureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	workloads := map[string]func() workload.Workload{
		"tpcb": func() workload.Workload {
			return tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 150})
		},
		"ordere": tinyOrdere,
	}
	layouts := []string{"base", "chain"}
	for name, mk := range workloads {
		t.Run(name, func(t *testing.T) {
			run := func() []*expt.Measure {
				o := tinyOptions(mk())
				o.Transactions = 40
				o.WarmupTxns = 10
				o.Train.Txns = 100
				s, err := expt.NewSession(o)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.MeasureBatch(layouts, s.Opt.CPUs, 2); err != nil {
					t.Fatal(err)
				}
				var out []*expt.Measure
				for _, l := range layouts {
					m, err := s.Measure(l, s.Opt.CPUs)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, m)
				}
				return out
			}
			a, b := run(), run()
			for i, l := range layouts {
				if a[i].Res != b[i].Res {
					t.Fatalf("%s: machine results differ:\n%+v\n%+v", l, a[i].Res, b[i].Res)
				}
				if !reflect.DeepEqual(a[i], b[i]) {
					t.Fatalf("%s: measures differ between identical sessions", l)
				}
			}
		})
	}
}
