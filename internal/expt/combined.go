package expt

import (
	"fmt"

	"codelayout/internal/cache"
	"codelayout/internal/perfmodel"
	"codelayout/internal/stats"
)

// fig12 — combined application + operating system instruction streams.
func fig12(s *Session) ([]*stats.Table, error) {
	var out []*stats.Table
	for _, name := range []string{"base", "all"} {
		m, err := s.Measure(name, s.Opt.CPUs)
		if err != nil {
			return nil, err
		}
		title := "Figure 12(a): combined streams, baseline binary (128B, 4-way)"
		if name == "all" {
			title = "Figure 12(b): combined streams, optimized binary (128B, 4-way)"
		}
		t := stats.NewTable(title, append([]string{"stream"}, sizeCols()...)...)
		rows := []struct {
			label string
			get   func(size int) uint64
		}{
			{"all (combined)", func(sz int) uint64 { return m.Comb4W[sz].Misses }},
			{"application (isolated)", func(sz int) uint64 { return m.App4W[sz].Misses }},
			{"kernel (isolated)", func(sz int) uint64 { return m.Kern4W[sz].Misses }},
		}
		for _, r := range rows {
			row := []interface{}{r.label}
			for _, size := range CacheSizesKB {
				row = append(row, r.get(size))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	cmp := stats.NewTable("Figure 12 summary: combined-miss reduction", "size", "combined opt/base", "isolated app opt/base")
	for _, size := range CacheSizesKB {
		cmp.AddRow(fmt.Sprintf("%dKB", size),
			pctOf(opt.Comb4W[size].Misses, base.Comb4W[size].Misses),
			pctOf(opt.App4W[size].Misses, base.App4W[size].Misses))
	}
	cmp.Note("paper: 45-60% combined reduction vs 55-65% app-only at 64-128KB")
	out = append(out, cmp)
	return out, nil
}

// fig13 — interference between application and kernel streams.
func fig13(s *Session) ([]*stats.Table, error) {
	var out []*stats.Table
	for _, name := range []string{"base", "all"} {
		m, err := s.Measure(name, s.Opt.CPUs)
		if err != nil {
			return nil, err
		}
		title := "Figure 13(a): interference, baseline binary (128KB/128B/4-way)"
		if name == "all" {
			title = "Figure 13(b): interference, optimized binary (128KB/128B/4-way)"
		}
		t := stats.NewTable(title,
			"missing process", "on kernel-owned line", "on application-owned line", "cold", "total")
		appRow := m.Intf.VictimBy[cache.OwnerApp]
		kernRow := m.Intf.VictimBy[cache.OwnerKernel]
		t.AddRow("kernel", kernRow[cache.OwnerKernel], kernRow[cache.OwnerApp], kernRow[cache.OwnerNone], m.Intf.MissBy[cache.OwnerKernel])
		t.AddRow("application", appRow[cache.OwnerKernel], appRow[cache.OwnerApp], appRow[cache.OwnerNone], m.Intf.MissBy[cache.OwnerApp])
		t.AddRow("both",
			kernRow[cache.OwnerKernel]+appRow[cache.OwnerKernel],
			kernRow[cache.OwnerApp]+appRow[cache.OwnerApp],
			kernRow[cache.OwnerNone]+appRow[cache.OwnerNone],
			m.Intf.Misses)
		out = append(out, t)
	}
	out[0].Note("paper: application misses are mostly self-interference; kernel misses are mostly app-inflicted")
	return out, nil
}

// fig14 — iTLB and L2 behavior.
func fig14(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 14: iTLB and L2 misses (64-entry iTLB, 1.5MB 6-way L2)",
		"structure", "base", "optimized", "opt/base")
	t.AddRow("iTLB", base.ITLB64, opt.ITLB64, pctOf(opt.ITLB64, base.ITLB64))
	t.AddRow("L2 instruction misses", base.Mem.L2Misses[0], opt.Mem.L2Misses[0],
		pctOf(opt.Mem.L2Misses[0], base.Mem.L2Misses[0]))
	t.AddRow("L2 data misses", base.Mem.L2Misses[1], opt.Mem.L2Misses[1],
		pctOf(opt.Mem.L2Misses[1], base.Mem.L2Misses[1]))
	t.Note("paper: all three drop; L2 data misses drop because packed code displaces fewer data lines")
	return []*stats.Table{t}, nil
}

// countsFor assembles the cycle-model inputs from a measure.
func counts21264(m *Measure) perfmodel.Counts {
	return perfmodel.Counts{
		Instructions: m.Res.BusyInstrs,
		L1IMisses:    m.HW21264.Misses,
		L1DMisses:    m.Mem.L1DMisses,
		L2Misses:     m.Mem.L2Misses[0] + m.Mem.L2Misses[1],
		CommMisses:   m.Mem.CommRead + m.Mem.CommWrite,
		ITLBMisses:   m.ITLB64,
	}
}

func counts21164(m *Measure) perfmodel.Counts {
	return perfmodel.Counts{
		Instructions: m.Res.BusyInstrs,
		L1IMisses:    m.HW21164.Misses,
		L1DMisses:    m.Board.L1DMisses,
		L2Misses:     m.Board.L2Misses[0] + m.Board.L2Misses[1],
		CommMisses:   m.Board.CommRead + m.Board.CommWrite,
		ITLBMisses:   m.ITLB48,
	}
}

// fig15 — relative execution time per optimization combination on the two
// hardware platforms (single-processor runs, as in the paper).
func fig15(s *Session) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 15: relative execution time (non-idle cycles, %, 1 processor)",
		"combo", perfmodel.Alpha21264.Name, perfmodel.Alpha21164.Name)
	base, err := s.Measure("base", 1)
	if err != nil {
		return nil, err
	}
	b264, b164 := counts21264(base), counts21164(base)
	if err := s.MeasureBatch(comboNamesExt, 1, 0); err != nil {
		return nil, err
	}
	for _, name := range comboNamesExt {
		m, err := s.Measure(name, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", 100*perfmodel.Relative(perfmodel.Alpha21264, counts21264(m), b264)),
			fmt.Sprintf("%.1f", 100*perfmodel.Relative(perfmodel.Alpha21164, counts21164(m), b164)))
	}
	t.Note("paper: 'all' lands near 75% on both platforms (1.33x), consistent across generations")
	return []*stats.Table{t}, nil
}

// footprint — the Section 4.1 in-text packing results.
func footprintExp(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Text §4.1: code packing", "metric", "base", "optimized")
	t.AddRow("footprint in 128B lines (KB)", float64(base.Foot.Bytes())/1024, float64(opt.Foot.Bytes())/1024)
	t.AddRow("unique pages touched", base.Foot.Pages(), opt.Foot.Pages())
	t.AddRow("unused fetched instructions", stats.Pct(base.Word.UnusedFetchedFrac()), stats.Pct(opt.Word.UnusedFetchedFrac()))
	t.Note("paper: 500KB -> 315KB (37% smaller); unused fetched instructions 46% -> 21%")
	return []*stats.Table{t}, nil
}

// hw21164 — the Section 5 in-text 21164 hardware-counter results.
func hw21164Exp(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", 1)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", 1)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Text §5: 21164 hardware counters (1 processor)",
		"structure", "base", "optimized", "reduction")
	red := func(o, b uint64) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*(1-float64(o)/float64(b)))
	}
	t.AddRow("icache misses (8KB direct)", base.HW21164.Misses, opt.HW21164.Misses,
		red(opt.HW21164.Misses, base.HW21164.Misses))
	t.AddRow("iTLB misses (48-entry)", base.ITLB48, opt.ITLB48, red(opt.ITLB48, base.ITLB48))
	bBoard := base.Board.L2Misses[0] + base.Board.L2Misses[1]
	oBoard := opt.Board.L2Misses[0] + opt.Board.L2Misses[1]
	t.AddRow("board cache misses (2MB direct)", bBoard, oBoard, red(oBoard, bBoard))
	t.Note("paper: -28% icache, -43% iTLB, -39% board cache")
	return []*stats.Table{t}, nil
}

// speedup — overall execution-time improvements (§5 in-text numbers).
func speedupExp(s *Session) ([]*stats.Table, error) {
	t := stats.NewTable("Text §5: overall speedup of the fully optimized binary",
		"platform", "speedup (x)")
	row := func(label string, plat perfmodel.Platform,
		counts func(*Measure) perfmodel.Counts, cpus int) error {
		base, err := s.Measure("base", cpus)
		if err != nil {
			return err
		}
		opt, err := s.Measure("all", cpus)
		if err != nil {
			return err
		}
		rel := perfmodel.Relative(plat, counts(opt), counts(base))
		t.AddRow(label, fmt.Sprintf("%.2f", 1/rel))
		return nil
	}
	if err := row("21264, 1 processor", perfmodel.Alpha21264, counts21264, 1); err != nil {
		return nil, err
	}
	if err := row("21164, 1 processor", perfmodel.Alpha21164, counts21164, 1); err != nil {
		return nil, err
	}
	if err := row(fmt.Sprintf("21364-sim, %d processors", s.Opt.CPUs), perfmodel.Alpha21364Sim, countsSimos, s.Opt.CPUs); err != nil {
		return nil, err
	}
	if err := row(fmt.Sprintf("21164, %d processors", s.Opt.CPUs), perfmodel.Alpha21164, counts21164, s.Opt.CPUs); err != nil {
		return nil, err
	}
	t.Note("paper: 1.33x on 21264 and 21164 single-processor, 1.37x in SimOS, 1.25x on 4 processors")
	return []*stats.Table{t}, nil
}

func countsSimos(m *Measure) perfmodel.Counts {
	return perfmodel.Counts{
		Instructions: m.Res.BusyInstrs,
		L1IMisses:    m.HW21264.Misses, // 64KB 2-way, the SimOS L1I
		L1DMisses:    m.Mem.L1DMisses,
		L2Misses:     m.Mem.L2Misses[0] + m.Mem.L2Misses[1],
		CommMisses:   m.Mem.CommRead + m.Mem.CommWrite,
		ITLBMisses:   m.ITLB64,
	}
}

// kernopt — optimizing the kernel's layout too (§5: small gains).
func kernoptExp(s *Session) ([]*stats.Table, error) {
	plain, err := s.MeasureKern("all", "kbase", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	kopt, err := s.MeasureKern("all", "kopt", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Text §5: adding kernel layout optimization (app already optimized)",
		"metric", "app-opt only", "app+kernel opt")
	for _, size := range []int{64, 128} {
		t.AddRow(fmt.Sprintf("combined misses %dKB", size),
			plain.Comb4W[size].Misses, kopt.Comb4W[size].Misses)
	}
	cyc := perfmodel.Cycles(perfmodel.Alpha21364Sim, countsSimos(plain))
	cycK := perfmodel.Cycles(perfmodel.Alpha21364Sim, countsSimos(kopt))
	t.AddRow("cycles (21364-sim)", cyc, cycK)
	if cycK < cyc {
		t.AddRow("additional speedup", "-", fmt.Sprintf("%.1f%%", 100*(float64(cyc)/float64(cycK)-1)))
	} else {
		t.AddRow("additional speedup", "-", fmt.Sprintf("%.1f%%", -100*(float64(cycK)/float64(cyc)-1)))
	}
	t.Note("paper: kernel layout optimization adds only ~3.5% (kernel is a small share of time)")
	return []*stats.Table{t}, nil
}
