package expt

import (
	"fmt"

	"codelayout/internal/isa"
	"codelayout/internal/program"
	"codelayout/internal/stats"
)

// combos are the Figure 7 / Figure 15 optimization combinations in paper
// order.
var comboNames = []string{"base", "porder", "chain", "chain+split", "chain+porder", "all"}

// comboNamesExt appends the combinations this reproduction measures next to
// the paper's six: the inter-procedural call-chaining pass and the
// per-transaction-kind program fusion pass.
var comboNamesExt = append(append([]string(nil), comboNames...), "ipchain", "fusion")

func pctOf(opt, base uint64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(opt)/float64(base))
}

// fig03 — execution profile of the unoptimized application binary.
func fig03(s *Session) ([]*stats.Table, error) {
	prof, err := s.Profile()
	if err != nil {
		return nil, err
	}
	base := s.src.baseApp
	prog := s.src.appImg.Prog
	static := make([]int64, prog.NumBlocks())
	dyn := make([]uint64, prog.NumBlocks())
	for i := range prog.Blocks {
		static[i] = int64(base.Occ[i]) * isa.WordBytes
		dyn[i] = prof.Count(program.BlockID(i)) * uint64(base.Occ[i])
	}
	pts := stats.CumulativeProfile(static, dyn)

	t := stats.NewTable("Figure 3: execution profile of the unoptimized binary",
		"coverage", "footprint (KB)")
	for _, frac := range []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1.0} {
		t.AddRow(stats.Pct(frac), float64(stats.CoverageAt(pts, frac))/1024)
	}
	t2 := stats.NewTable("Figure 3 (reference points)", "metric", "value")
	t2.AddRow("fraction captured by 50KB", stats.Pct(stats.FracAtBytes(pts, 50<<10)))
	t2.AddRow("fraction captured by 200KB", stats.Pct(stats.FracAtBytes(pts, 200<<10)))
	if len(pts) > 0 {
		t2.AddRow("total executed footprint (KB)", float64(pts[len(pts)-1].Bytes)/1024)
	}
	t2.AddRow("static binary size (MB)", float64(base.TotalBytes())/(1<<20))
	t2.Note("paper: 50KB captures ~60%, 99% needs ~200KB, footprint ~260KB, binary 27MB")
	return []*stats.Table{t, t2}, nil
}

// fig04 — application icache misses across cache and line sizes.
func fig04(s *Session) ([]*stats.Table, error) {
	var out []*stats.Table
	for _, name := range []string{"base", "all"} {
		m, err := s.Measure(name, s.Opt.CPUs)
		if err != nil {
			return nil, err
		}
		title := "Figure 4(a): application icache misses, baseline binary (direct-mapped)"
		if name == "all" {
			title = "Figure 4(b): application icache misses, optimized binary (direct-mapped)"
		}
		t := stats.NewTable(title, append([]string{"line\\size"}, sizeCols()...)...)
		for _, line := range LineSizes {
			row := []interface{}{fmt.Sprintf("%dB", line)}
			for _, size := range CacheSizesKB {
				row = append(row, m.AppDM[size][line].Misses)
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

func sizeCols() []string {
	cols := make([]string, len(CacheSizesKB))
	for i, s := range CacheSizesKB {
		cols[i] = fmt.Sprintf("%dKB", s)
	}
	return cols
}

// fig05 — relative misses of the optimized binary over the baseline.
func fig05(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 5: optimized/baseline application misses (%), direct-mapped",
		append([]string{"line\\size"}, sizeCols()...)...)
	for _, line := range LineSizes {
		row := []interface{}{fmt.Sprintf("%dB", line)}
		for _, size := range CacheSizesKB {
			row = append(row, pctOf(opt.AppDM[size][line].Misses, base.AppDM[size][line].Misses))
		}
		t.AddRow(row...)
	}
	t.Note("paper: 55-65% reduction (i.e. 35-45% relative) at 64-128KB with 128B lines")
	return []*stats.Table{t}, nil
}

// fig06 — associativity impact at 128-byte lines.
func fig06(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 6: associativity impact (application misses, 128B lines)",
		"size", "base DM", "base 4-way", "opt DM", "opt 4-way")
	for _, size := range CacheSizesKB {
		t.AddRow(fmt.Sprintf("%dKB", size),
			base.AppDM[size][128].Misses, base.App4W[size].Misses,
			opt.AppDM[size][128].Misses, opt.App4W[size].Misses)
	}
	t.Note("paper: associativity gains are small next to layout gains at 32-128KB")
	return []*stats.Table{t}, nil
}

// fig07 — impact of each optimization combination.
func fig07(s *Session) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 7: application icache misses per optimization (128B lines, 4-way)",
		append([]string{"combo"}, sizeCols()...)...)
	if err := s.MeasureBatch(comboNamesExt, s.Opt.CPUs, 0); err != nil {
		return nil, err
	}
	for _, name := range comboNamesExt {
		m, err := s.Measure(name, s.Opt.CPUs)
		if err != nil {
			return nil, err
		}
		row := []interface{}{name}
		for _, size := range CacheSizesKB {
			row = append(row, m.App4W[size].Misses)
		}
		t.AddRow(row...)
	}
	t.Note("paper: porder alone slightly hurts; chain is the largest single win; all is best")
	return []*stats.Table{t}, nil
}

// fig08 — sequentially executed instructions.
func fig08(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	a := stats.NewTable("Figure 8(a): average sequentially executed instructions", "setup", "avg length")
	avgBB := 0.0
	if base.AppRuns.Runs > 0 {
		avgBB = float64(base.AppRuns.Instructions) / float64(base.AppRuns.Runs)
	}
	a.AddRow("dynamic basic block size", avgBB)
	a.AddRow("base", base.Seq.Hist.Mean())
	a.AddRow("optimized", opt.Seq.Hist.Mean())
	a.Note("paper: base 7.3, optimized >10, basic block ~5")

	b := stats.NewTable("Figure 8(b): sequence length distribution (% of sequences)",
		"length", "base", "optimized")
	for l := 1; l <= 33; l++ {
		b.AddRow(l, stats.Pct(base.Seq.Hist.Frac(l)), stats.Pct(opt.Seq.Hist.Frac(l)))
	}
	b.AddRow(">33",
		stats.Pct(base.Seq.Hist.Frac(34)),
		stats.Pct(opt.Seq.Hist.Frac(34)))
	b.Note("paper: optimized cuts 1-instruction sequences from 21% to 15% and spikes near 17")
	return []*stats.Table{a, b}, nil
}

// fig09 — unique words used before replacement.
func fig09(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 9: unique words used before replacement (128KB/128B/4-way, % of replacements)",
		"words", "base", "optimized")
	for w := 1; w <= 32; w++ {
		t.AddRow(w, stats.Pct(base.Word.WordsUsed.Frac(w)), stats.Pct(opt.Word.WordsUsed.Frac(w)))
	}
	t.Note("paper: optimized uses all 32 words in >60% of replaced lines")
	return []*stats.Table{t}, nil
}

// fig10 — times an individual word is used before replacement.
func fig10(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 10: word reuse before replacement (128KB/128B/4-way, % of words loaded)",
		"uses", "base", "optimized")
	for n := 0; n <= 15; n++ {
		t.AddRow(n, stats.Pct(base.Word.WordReuse.Frac(n)), stats.Pct(opt.Word.WordReuse.Frac(n)))
	}
	t.Note("paper: base leaves >half of fetched words unused; optimized raises multi-use words")
	return []*stats.Table{t}, nil
}

// fig11 — cache line lifetimes.
func fig11(s *Session) ([]*stats.Table, error) {
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 11: cache line lifetimes (128KB/128B/4-way, % of replacements)",
		"log2(cache cycles)", "base", "optimized")
	maxB := len(base.Word.Lifetime.Counts)
	if n := len(opt.Word.Lifetime.Counts); n > maxB {
		maxB = n
	}
	for bkt := 0; bkt < maxB; bkt++ {
		bf, of := base.Word.Lifetime.Frac(bkt), opt.Word.Lifetime.Frac(bkt)
		if bf == 0 && of == 0 {
			continue
		}
		t.AddRow(bkt, stats.Pct(bf), stats.Pct(of))
	}
	t.Note("paper: average lifetime improves by over 2x")
	return []*stats.Table{t}, nil
}
