package expt

import (
	"fmt"

	"codelayout/internal/core"
	"codelayout/internal/machine"
	"codelayout/internal/program"
	"codelayout/internal/pstore"
	"codelayout/internal/stats"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

// BlendSpec configures the aged-profile blending sweep: two training mixes
// (the stale profile the store already holds, and the mix traffic has
// drifted to) blended at a range of ratios, each blend built into a layout
// and evaluated under the drifted-to mix. The sweep answers the continuous-
// PGO retention question — how much of a stale profile can be kept before
// the layout built from the blend stops serving the new traffic well.
type BlendSpec struct {
	// Old is the stale training mix (nil: the read-heavy 95/5 key-value
	// mix). New is the drifted-to mix every blend is evaluated under (nil:
	// the same store at 5/95, an update-heavy inversion).
	Old, New workload.Workload
	// Ratios are the new-mix weights swept (each blend is old*(1-r) +
	// new*r); empty means {0, 0.25, 0.5, 0.75, 1}.
	Ratios []float64
	// CPUs overrides the measurement processor count (0 = Options.CPUs).
	CPUs int
}

// BlendCell is one measured ratio of the blending sweep.
type BlendCell struct {
	Ratio       float64
	MissRatio   float64
	InstrPerTxn float64
	P50, P99    uint64
}

// BlendResult is the sweep's cells plus the table rendering them.
type BlendResult struct {
	Cells []BlendCell
	Table *stats.Table
}

// defaultBlendWorkloads is the built-in drift pair: the key-value store's
// read-heavy default mix aging into an update-heavy inversion of itself.
// Both mixes share one Scale so they describe the same database.
func defaultBlendWorkloads(quick bool) (workload.Workload, workload.Workload) {
	old := ycsb.New()
	if quick {
		old = old.QuickScale().(*ycsb.Workload)
	}
	upd := *old
	upd.Label = "ycsb-upd"
	upd.ReadPct = 5
	return old, &upd
}

// BlendTable trains the two mixes once each (through the store when one is
// configured), blends their profiles at every ratio with pstore.Blend,
// builds the full optimization pipeline's layout from each blend, and
// measures all of them under the drifted-to mix.
func BlendTable(o Options, spec BlendSpec) (*BlendResult, error) {
	if (spec.Old == nil) != (spec.New == nil) {
		return nil, fmt.Errorf("expt: blend needs both workloads or neither")
	}
	if spec.Old == nil {
		spec.Old, spec.New = defaultBlendWorkloads(o.Quick)
	}
	if spec.Old.Name() == spec.New.Name() {
		return nil, fmt.Errorf("expt: blend workloads must have distinct names (both %q); set Label on one", spec.Old.Name())
	}
	ratios := spec.Ratios
	if len(ratios) == 0 {
		ratios = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	cpus := spec.CPUs
	if cpus == 0 {
		cpus = o.CPUs
	}
	o.Workload = spec.Old
	src, err := NewProfileSource(o, spec.New)
	if err != nil {
		return nil, err
	}
	eOld, err := src.trainEntry(TrainConfig{Workload: spec.Old})
	if err != nil {
		return nil, fmt.Errorf("expt: blend training %q: %w", spec.Old.Name(), err)
	}
	eNew, err := src.trainEntry(TrainConfig{Workload: spec.New})
	if err != nil {
		return nil, fmt.Errorf("expt: blend training %q: %w", spec.New.Name(), err)
	}

	// Evaluation runs under the drifted-to mix for every ratio.
	eo := o
	eo.Workload = spec.New
	s, err := NewSessionFrom(src, eo)
	if err != nil {
		return nil, err
	}

	res := &BlendResult{}
	t := stats.NewTable(
		fmt.Sprintf("Aged-profile blend: %s → %s, full pipeline, evaluated under %s",
			spec.Old.Name(), spec.New.Name(), spec.New.Name()),
		"new-mix weight", "app miss %", "instr/txn", "p50", "p99")
	for _, r := range ratios {
		blended, err := pstore.Blend([]*pstore.Entry{eOld, eNew}, []float64{1 - r, r})
		if err != nil {
			return nil, fmt.Errorf("expt: blend ratio %v: %w", r, err)
		}
		l, _, err := core.Optimize(src.appImg.Prog, blended.App, core.Options{
			Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
		})
		if err != nil {
			return nil, fmt.Errorf("expt: blend ratio %v layout: %w", r, err)
		}
		m, err := measureLayout(s, l, cpus)
		if err != nil {
			return nil, fmt.Errorf("expt: blend ratio %v: %w", r, err)
		}
		cell := BlendCell{
			Ratio:     r,
			MissRatio: m.App4W[64].MissRate(),
			P50:       m.Res.Latency.P50,
			P99:       m.Res.Latency.P99,
		}
		if m.Res.Committed > 0 {
			cell.InstrPerTxn = float64(m.Res.BusyInstrs) / float64(m.Res.Committed)
		}
		res.Cells = append(res.Cells, cell)
		t.AddRow(fmt.Sprintf("%.2f", r), stats.Pct(cell.MissRatio),
			fmt.Sprintf("%.0f", cell.InstrPerTxn), cell.P50, cell.P99)
	}
	t.Note("weight 0 is the stale profile alone, weight 1 the fresh one; the knee locates how much aged profile a store can keep blending in")
	res.Table = t
	return res, nil
}

// measureLayout runs the session's measurement battery over an ad-hoc layout
// (one built outside the named-layout memo, like a blend).
func measureLayout(s *Session, appL *program.Layout, cpus int) (*Measure, error) {
	bat := newBattery(cpus)
	cfg := s.machineConfig(s.src.appImg, appL, s.src.baseKern, cpus)
	cfg.Sinks = bat.sinks()
	cfg.DataSinks = bat.dataSinks()
	mach, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	r, err := mach.Run()
	if err != nil {
		return nil, err
	}
	m := bat.finish(r)
	m.Latency = mach.LatencyByKind()
	m.GCWindows = mach.GroupCommitWindows()
	return m, nil
}
