package expt_test

import (
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/ordere"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

func tinyMatrixOptions() expt.Options {
	o := expt.QuickOptions()
	o.Transactions = 40
	o.WarmupTxns = 10
	o.Train.Txns = 100
	o.CPUs = 2
	o.ProcsPerCPU = 3
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	return o
}

func tinyMatrixWorkloads() []workload.Workload {
	return []workload.Workload{
		tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 4, AccountsPerBranch: 150}),
		ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120}),
		ycsb.NewScaled(ycsb.Scale{Records: 2500}),
	}
}

// TestRobustnessMatrix is the acceptance test for the train/eval seam: the
// full train×eval matrix over three workloads and two shard counts runs in
// one process, the self-trained diagonal beats the unoptimized baseline in
// every cell, and each diagonal entry is no worse than every transplanted
// layout for its eval cell — or the drift is reported, never silently equal
// by memo collision.
func TestRobustnessMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	spec := expt.RobustnessSpec{
		Workloads: tinyMatrixWorkloads(),
		Shards:    []int{1, 2},
		Layout:    "all",
	}
	res, err := expt.Robustness(tinyMatrixOptions(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cellsPerAxis := len(spec.Workloads) * len(spec.Shards)
	if want := cellsPerAxis * cellsPerAxis; len(res.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(res.Cells), want)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables rendered")
	}
	for _, tb := range res.Tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
	}

	type cellID struct {
		w string
		s int
	}
	var axes []cellID
	for _, w := range spec.Workloads {
		for _, n := range spec.Shards {
			axes = append(axes, cellID{w.Name(), n})
		}
	}
	for _, eval := range axes {
		self := res.Cell(eval.w, eval.s, eval.w, eval.s)
		if self == nil || !self.SelfTrained {
			t.Fatalf("missing self-trained cell for %s/s%d", eval.w, eval.s)
		}
		if self.MissRatio >= self.BaseMissRatio {
			t.Errorf("%s/s%d: self-trained layout did not beat baseline: %.4f vs %.4f",
				eval.w, eval.s, self.MissRatio, self.BaseMissRatio)
		}
		distinct := false
		for _, train := range axes {
			if train == eval {
				continue
			}
			c := res.Cell(train.w, train.s, eval.w, eval.s)
			if c == nil {
				t.Fatalf("missing cell train %s/s%d eval %s/s%d", train.w, train.s, eval.w, eval.s)
			}
			if c.SelfTrained {
				t.Fatalf("off-diagonal cell train %s/s%d eval %s/s%d marked self-trained",
					train.w, train.s, eval.w, eval.s)
			}
			if c.MissRatio != self.MissRatio || c.InstrPerTxn != self.InstrPerTxn {
				distinct = true
			}
			if c.MissRatio < self.MissRatio {
				// The diagonal is allowed to lose at tiny scale, but the
				// drift must be visible, never silently absorbed.
				t.Logf("drift: eval %s/s%d is served better by train %s/s%d (%.4f < %.4f)",
					eval.w, eval.s, train.w, train.s, c.MissRatio, self.MissRatio)
			} else if self.MissRatio > 0 {
				t.Logf("eval %s/s%d ← train %s/s%d: transplant costs %+.1f%% misses",
					eval.w, eval.s, train.w, train.s, 100*(c.MissRatio/self.MissRatio-1))
			}
		}
		if !distinct {
			t.Errorf("%s/s%d: every transplanted measure is identical to the self-trained one — memo collision or dead train/eval seam",
				eval.w, eval.s)
		}
	}
}

// TestShardSweepTable: the shard-count sweep runs the sharded machine at
// each count over one shared image and reports non-degenerate rows.
func TestShardSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := tinyMatrixOptions()
	o.Workload = tpcb.NewScaled(tpcb.Scale{Branches: 8, TellersPerBranch: 4, AccountsPerBranch: 150})
	tb, err := expt.ShardSweep(o, []int{1, 2, 4}, []string{"base"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
}

// TestShardSweepFastPathColumns drives the configurable sweep with the
// fast-path delta columns on: the single-shard row must print the off-side
// numbers with dashes on the on side (no predictor at one shard), and the
// multi-shard rows must carry real on-side measurements.
func TestShardSweepFastPathColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := tinyMatrixOptions()
	o.Workload = tpcb.NewScaled(tpcb.Scale{Branches: 8, TellersPerBranch: 4, AccountsPerBranch: 150})
	tb, err := expt.ShardSweepTable(o, expt.ShardSweepSpec{
		Shards:   []int{1, 2},
		Layouts:  []string{"base"},
		FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Cols) != 12 {
		t.Fatalf("cols = %d (%v), want 12", len(tb.Cols), tb.Cols)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	one, two := tb.Rows[0], tb.Rows[1]
	if one[0] != "1" || two[0] != "2" {
		t.Fatalf("shard column: %q, %q", one[0], two[0])
	}
	if one[3] != "-" || one[9] != "-" {
		t.Fatalf("single-shard row must dash the on-side columns: %v", one)
	}
	if two[3] == "-" || two[9] == "-" || two[9] == "0" {
		t.Fatalf("multi-shard row must carry on-side measurements: %v", two)
	}
}
