package expt_test

import (
	"reflect"
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/ordere"
	"codelayout/internal/tpcb"
)

// pinnedOptions is the exact configuration the pre-refactor harness was
// measured under (see TestSelfTrainedTPCBPinned); the golden numbers below
// were captured at the commit before the train/eval split.
func pinnedOptions() expt.Options {
	o := expt.QuickOptions()
	o.Transactions = 60
	o.WarmupTxns = 15
	o.Train.Txns = 150
	o.CPUs = 2
	o.ProcsPerCPU = 4
	o.Workload = tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 5, AccountsPerBranch: 250})
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	return o
}

// TestSelfTrainedTPCBPinned pins the refactor's compatibility contract: the
// shards=1, self-trained TPC-B path must remain bit-identical to the
// pre-refactor Session — same simulation, same training run, same memo
// semantics. The constants were captured by running the pre-refactor code at
// this exact configuration; any drift here means the profile-source seam
// changed the default path, not just added to it.
func TestSelfTrainedTPCBPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s, err := expt.NewSession(pinnedOptions())
	if err != nil {
		t.Fatal(err)
	}
	type pin struct {
		committed, appInstrs, kernInstrs       uint64
		app4W64, app4W128, comb4W64            uint64
		itlb64, logFlushes, grouped, conflicts uint64
		foot                                   int64
	}
	want := map[string]pin{
		"base": {
			committed: 60, appInstrs: 861729, kernInstrs: 114501,
			app4W64: 15350, app4W128: 3671, comb4W64: 23661,
			itlb64: 894, logFlushes: 36, grouped: 40, conflicts: 73,
			foot: 134528,
		},
		"all": {
			committed: 60, appInstrs: 815984, kernInstrs: 115771,
			app4W64: 2773, app4W128: 1341, comb4W64: 9782,
			itlb64: 130, logFlushes: 36, grouped: 40, conflicts: 73,
			foot: 90624,
		},
	}
	for name, w := range want {
		m, err := s.Measure(name, s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		got := pin{
			committed: m.Res.Committed, appInstrs: m.Res.AppInstrs, kernInstrs: m.Res.KernelInstrs,
			app4W64: m.App4W[64].Misses, app4W128: m.App4W[128].Misses, comb4W64: m.Comb4W[64].Misses,
			itlb64: m.ITLB64, logFlushes: m.Res.LogFlushes, grouped: m.Res.GroupedCommits,
			conflicts: m.Res.LockConflicts, foot: m.Foot.Bytes(),
		}
		if got != w {
			t.Errorf("%s: pre-refactor pin broken:\n got %+v\nwant %+v", name, got, w)
		}
	}
}

// TestTrainEvalMemoSeparation is the regression test for the (train × eval)
// memo keys: layouts trained under different train configs over the same
// eval config must never share memo entries, while equal-spec pairs must
// stay deterministic and alias the same memoized objects.
func TestTrainEvalMemoSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	tiny := func() expt.Options {
		o := pinnedOptions()
		o.Transactions = 40
		o.WarmupTxns = 10
		o.Train.Txns = 100
		return o
	}
	oe := ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})

	o := tiny()
	src, err := expt.NewProfileSource(o, oe)
	if err != nil {
		t.Fatal(err)
	}
	s, err := expt.NewSessionFrom(src, o)
	if err != nil {
		t.Fatal(err)
	}

	self := expt.TrainConfig{}                       // resolves to tpcb, the eval workload
	cross := expt.TrainConfig{Workload: oe}          // trained on order-entry
	crossSeed := expt.TrainConfig{Seed: o.Seed + 99} // same workload, different run

	selfL, err := s.LayoutFrom(self, "all")
	if err != nil {
		t.Fatal(err)
	}
	crossL, err := s.LayoutFrom(cross, "all")
	if err != nil {
		t.Fatal(err)
	}
	seedL, err := s.LayoutFrom(crossSeed, "all")
	if err != nil {
		t.Fatal(err)
	}
	if selfL == crossL || selfL == seedL {
		t.Fatal("layouts trained under different train configs share a memo entry")
	}
	sameAddrs := true
	for b := range selfL.Addr {
		if selfL.Addr[b] != crossL.Addr[b] {
			sameAddrs = false
			break
		}
	}
	if sameAddrs {
		t.Fatal("cross-workload-trained layout is address-identical to self-trained (profile not actually different?)")
	}

	// Equal specs alias: a second resolution of the zero config and an
	// explicit spelling of the same resolved config hit the same entries.
	again, err := s.LayoutFrom(expt.TrainConfig{Workload: s.Opt.Workload}, "all")
	if err != nil {
		t.Fatal(err)
	}
	if again != selfL {
		t.Fatal("equal-spec train configs did not share the layout memo")
	}

	// Measures keyed the same way: self vs cross must be distinct runs with
	// distinct results objects; repeated calls alias.
	mSelf, err := s.MeasureFrom(self, "all", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	mCross, err := s.MeasureFrom(cross, "all", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	if mSelf == mCross {
		t.Fatal("measures for different train specs share a memo entry")
	}
	if reflect.DeepEqual(mSelf, mCross) {
		t.Fatal("transplanted-layout measure is value-identical to self-trained — memo collision or dead seam")
	}
	if m2, _ := s.MeasureFrom(self, "all", s.Opt.CPUs); m2 != mSelf {
		t.Fatal("repeated self-trained measure did not hit the memo")
	}

	// Determinism across sessions: a fresh source+session pair reproduces
	// the transplanted measure bit for bit.
	src2, err := expt.NewProfileSource(tiny(), oe)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := expt.NewSessionFrom(src2, tiny())
	if err != nil {
		t.Fatal(err)
	}
	mCross2, err := s2.MeasureFrom(cross, "all", s2.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	if mCross.Res != mCross2.Res {
		t.Fatalf("transplanted measure not deterministic:\n%+v\n%+v", mCross.Res, mCross2.Res)
	}
	if !reflect.DeepEqual(mCross, mCross2) {
		t.Fatal("transplanted measures differ between identical sessions")
	}
}

// TestTrainFromSwitchesDefault: TrainFrom re-points the session's default
// profile; switching back restores the original memo entries.
func TestTrainFromSwitchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := pinnedOptions()
	o.Transactions = 40
	o.WarmupTxns = 10
	o.Train.Txns = 100
	oe := ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})
	src, err := expt.NewProfileSource(o, oe)
	if err != nil {
		t.Fatal(err)
	}
	s, err := expt.NewSessionFrom(src, o)
	if err != nil {
		t.Fatal(err)
	}
	selfSpec := s.TrainSpec()
	selfL, err := s.Layout("all")
	if err != nil {
		t.Fatal(err)
	}
	selfRep := s.Report("all")
	if selfRep == nil {
		t.Fatal("no report for the self-trained layout")
	}
	s.TrainFrom(expt.TrainConfig{Workload: oe})
	if s.TrainSpec() == selfSpec {
		t.Fatal("TrainFrom did not change the resolved train spec")
	}
	crossL, err := s.Layout("all")
	if err != nil {
		t.Fatal(err)
	}
	if crossL == selfL {
		t.Fatal("default-train layout after TrainFrom aliases the self-trained layout")
	}
	// Report must follow the switched default, like Layout does.
	if rep := s.Report("all"); rep == nil || rep == selfRep {
		t.Fatalf("Report after TrainFrom did not track the switched default (rep=%p self=%p)", rep, selfRep)
	}
	s.TrainFrom(expt.TrainConfig{})
	if s.TrainSpec() != selfSpec {
		t.Fatal("TrainFrom(zero) did not restore the self-trained default")
	}
	back, err := s.Layout("all")
	if err != nil {
		t.Fatal(err)
	}
	if back != selfL {
		t.Fatal("restored default did not hit the original memo entry")
	}
	if rep := s.Report("all"); rep != selfRep {
		t.Fatal("restored default did not restore the original report")
	}
	// Layouts are memoized on the source: a second session over the same
	// source must hit the same entries instead of rebuilding.
	s2, err := expt.NewSessionFrom(src, o)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := s2.Layout("all")
	if err != nil {
		t.Fatal(err)
	}
	if shared != selfL {
		t.Fatal("sessions of one source do not share the layout memo")
	}
}
