package expt_test

import (
	"strings"
	"testing"

	"codelayout/internal/expt"
)

// sharedSession is built once; experiments memoize runs inside it.
var sharedSession *expt.Session

func session(t *testing.T) *expt.Session {
	t.Helper()
	if sharedSession != nil {
		return sharedSession
	}
	o := expt.QuickOptions()
	// Even quicker for unit tests.
	o.Transactions = 60
	o.WarmupTxns = 15
	o.TrainTxns = 150
	o.CPUs = 2
	o.ProcsPerCPU = 4
	o.Scale.Branches = 6
	o.Scale.AccountsPerBranch = 250
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	s, err := expt.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	sharedSession = s
	return s
}

func TestRegistryIsComplete(t *testing.T) {
	ids := expt.IDs()
	want := []string{
		"fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "footprint", "hw21164",
		"speedup", "kernopt", "abl-split", "abl-cfa", "abl-profile",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := expt.Get("fig04"); err != nil {
		t.Fatal(err)
	}
	if _, err := expt.Get("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	s := session(t)
	for _, id := range expt.IDs() {
		tables, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tb := range tables {
			out := tb.String()
			if !strings.Contains(out, "==") || len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table:\n%s", id, out)
			}
		}
	}
}

// TestHeadlineShapes asserts the paper's qualitative results hold in the
// quick configuration: big app-only miss reductions at 64-128KB, smaller
// combined reductions, porder-alone not helping much, sequences lengthening.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s := session(t)
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{64, 128} {
		b, o := base.App4W[size].Misses, opt.App4W[size].Misses
		if o >= b {
			t.Fatalf("no app miss reduction at %dKB: %d -> %d", size, b, o)
		}
		red := 1 - float64(o)/float64(b)
		t.Logf("app-only reduction at %dKB: %.1f%%", size, red*100)
		if red < 0.25 {
			t.Errorf("reduction at %dKB only %.1f%%, paper band is 55-65%%", size, red*100)
		}
		bc, oc := base.Comb4W[size].Misses, opt.Comb4W[size].Misses
		if oc >= bc {
			t.Fatalf("no combined reduction at %dKB", size)
		}
	}
	if opt.Seq.Hist.Mean() <= base.Seq.Hist.Mean() {
		t.Errorf("sequences did not lengthen: %.2f -> %.2f", base.Seq.Hist.Mean(), opt.Seq.Hist.Mean())
	}
	if opt.Foot.Bytes() >= base.Foot.Bytes() {
		t.Errorf("footprint did not shrink: %d -> %d", base.Foot.Bytes(), opt.Foot.Bytes())
	}
	if opt.Word.UnusedFetchedFrac() >= base.Word.UnusedFetchedFrac() {
		t.Errorf("unused fetched fraction did not drop: %.2f -> %.2f",
			base.Word.UnusedFetchedFrac(), opt.Word.UnusedFetchedFrac())
	}
	if opt.ITLB64 >= base.ITLB64 {
		t.Errorf("iTLB misses did not drop: %d -> %d", base.ITLB64, opt.ITLB64)
	}
}
