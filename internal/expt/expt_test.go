package expt_test

import (
	"strings"
	"sync"
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/tpcb"
)

// sharedSession is built once; experiments memoize runs inside it.
var sharedSession *expt.Session

func session(t *testing.T) *expt.Session {
	t.Helper()
	if sharedSession != nil {
		return sharedSession
	}
	o := expt.QuickOptions()
	// Even quicker for unit tests.
	o.Transactions = 60
	o.WarmupTxns = 15
	o.Train.Txns = 150
	o.CPUs = 2
	o.ProcsPerCPU = 4
	o.Workload = tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 5, AccountsPerBranch: 250})
	o.LibScale = 0.3
	o.ColdWords = 400_000
	o.KernColdWords = 100_000
	s, err := expt.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	sharedSession = s
	return s
}

func TestRegistryIsComplete(t *testing.T) {
	ids := expt.IDs()
	want := []string{
		"fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "footprint", "hw21164",
		"speedup", "kernopt", "abl-split", "abl-cfa", "abl-profile",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := expt.Get("fig04"); err != nil {
		t.Fatal(err)
	}
	if _, err := expt.Get("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	s := session(t)
	for _, id := range expt.IDs() {
		tables, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tb := range tables {
			out := tb.String()
			if !strings.Contains(out, "==") || len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table:\n%s", id, out)
			}
		}
	}
}

// TestIPChainLayoutRuns checks that the extension combo resolves through the
// session's pass-pipeline specs and produces a distinct, valid layout.
func TestIPChainLayoutRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s := session(t)
	spec, err := s.PipelineSpec("ipchain")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec, "ipchain") {
		t.Fatalf("ipchain spec = %q", spec)
	}
	if _, err := s.PipelineSpec("ipchian"); err == nil {
		t.Fatal("expected error for misspelled layout name")
	}
	if spec, err := s.PipelineSpec("base"); err != nil || spec != "" {
		t.Fatalf("base spec = %q, %v", spec, err)
	}
	l, err := s.Layout("ipchain")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	ph, err := s.Layout("chain+porder")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for b := range l.Addr {
		if l.Addr[b] != ph.Addr[b] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ipchain layout identical to chain+porder")
	}
	if ipc, php := s.Report("ipchain"), s.Report("chain+porder"); ipc.HotUnits >= php.HotUnits {
		t.Fatalf("ipchain did not merge hot units: %d vs %d", ipc.HotUnits, php.HotUnits)
	}
}

// TestMeasureBatchParallel checks that the bounded worker pool produces the
// same memoized measurements a serial loop would, and that concurrent
// Measure calls for one key share a single run.
func TestMeasureBatchParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s := session(t)
	names := []string{"base", "chain", "porder"}
	if err := s.MeasureBatch(names, s.Opt.CPUs, 2); err != nil {
		t.Fatal(err)
	}
	// Serial calls must now be memo hits returning the identical objects.
	var serial []*expt.Measure
	for _, n := range names {
		m, err := s.Measure(n, s.Opt.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, m)
	}
	// Hammer the same keys concurrently; every result must alias the memo.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Measure(names[i%len(names)], s.Opt.CPUs)
			if err != nil {
				t.Error(err)
				return
			}
			if m != serial[i%len(names)] {
				t.Errorf("concurrent Measure(%s) returned a different object", names[i%len(names)])
			}
		}(i)
	}
	wg.Wait()
}

// TestHeadlineShapes asserts the paper's qualitative results hold in the
// quick configuration: big app-only miss reductions at 64-128KB, smaller
// combined reductions, porder-alone not helping much, sequences lengthening.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	s := session(t)
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{64, 128} {
		b, o := base.App4W[size].Misses, opt.App4W[size].Misses
		if o >= b {
			t.Fatalf("no app miss reduction at %dKB: %d -> %d", size, b, o)
		}
		red := 1 - float64(o)/float64(b)
		t.Logf("app-only reduction at %dKB: %.1f%%", size, red*100)
		if red < 0.25 {
			t.Errorf("reduction at %dKB only %.1f%%, paper band is 55-65%%", size, red*100)
		}
		bc, oc := base.Comb4W[size].Misses, opt.Comb4W[size].Misses
		if oc >= bc {
			t.Fatalf("no combined reduction at %dKB", size)
		}
	}
	if opt.Seq.Hist.Mean() <= base.Seq.Hist.Mean() {
		t.Errorf("sequences did not lengthen: %.2f -> %.2f", base.Seq.Hist.Mean(), opt.Seq.Hist.Mean())
	}
	if opt.Foot.Bytes() >= base.Foot.Bytes() {
		t.Errorf("footprint did not shrink: %d -> %d", base.Foot.Bytes(), opt.Foot.Bytes())
	}
	if opt.Word.UnusedFetchedFrac() >= base.Word.UnusedFetchedFrac() {
		t.Errorf("unused fetched fraction did not drop: %.2f -> %.2f",
			base.Word.UnusedFetchedFrac(), opt.Word.UnusedFetchedFrac())
	}
	if opt.ITLB64 >= base.ITLB64 {
		t.Errorf("iTLB misses did not drop: %d -> %d", base.ITLB64, opt.ITLB64)
	}
}
