package expt

import (
	"fmt"

	"codelayout/internal/stats"
	"codelayout/internal/workload"
)

// LatencySpec configures the latency percentile tables: every listed
// workload × shard count is measured self-trained under the baseline
// (original) layout and under the optimized layout, and the tables report
// p50/p95/p99/max per-transaction latency — the tail-latency view of the
// layout win that whole-run instruction and miss-ratio aggregates hide.
type LatencySpec struct {
	// Workloads are the mixes to measure; at least one. All of them join
	// one union app image, so layouts and measurements share one program.
	Workloads []workload.Workload
	// Shards are the shard counts to measure; empty means {1}.
	Shards []int
	// Layout is the optimized pipeline combo ("all" if empty), compared
	// against the "base" (original) layout.
	Layout string
	// CPUs overrides the measurement processor count (0 = Options.CPUs).
	CPUs int
}

// LatencyTables measures every workload × shard count cell under the
// original and the optimized layout and renders two tables: run-wide
// percentiles per cell, and the per-shard × transaction-kind breakdown.
// Group-commit and auto-tuning settings come from o, so the same tables
// serve fixed windows, AutoGCFlushCount and AutoGCTargetP99 runs.
func LatencyTables(o Options, spec LatencySpec) ([]*stats.Table, error) {
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("expt: latency tables need at least one workload")
	}
	if len(spec.Shards) == 0 {
		spec.Shards = []int{1}
	}
	if spec.Layout == "" {
		spec.Layout = "all"
	}
	cpus := spec.CPUs
	if cpus == 0 {
		cpus = o.CPUs
	}
	o.Workload = spec.Workloads[0]
	src, err := NewProfileSource(o, spec.Workloads[1:]...)
	if err != nil {
		return nil, err
	}

	sum := stats.NewTable(
		fmt.Sprintf("Transaction latency percentiles (instruction-times), orig vs %q layout", spec.Layout),
		"workload", "shards", "layout", "txns", "mean", "p50", "p95", "p99", "max")
	kinds := stats.NewTable(
		fmt.Sprintf("Transaction latency by shard and kind, orig vs %q layout", spec.Layout),
		"workload", "shards", "layout", "shard", "kind", "txns", "p50", "p95", "p99", "max")
	// The fusion layout additionally measures ipchain — its structural
	// sibling (same chain+porder skeleton, per-call-edge merging instead of
	// per-kind fusion) — and reports per-kind deltas against it.
	var fuse *stats.Table
	if spec.Layout == "fusion" {
		fuse = stats.NewTable(
			"Per-kind latency, fusion vs ipchain (negative Δ = fusion faster)",
			"workload", "shards", "kind", "txns", "p50 fuse", "p50 ipc", "Δp50", "p99 fuse", "p99 ipc", "Δp99")
	}

	for _, wl := range spec.Workloads {
		for _, n := range spec.Shards {
			eo := o
			eo.Workload = wl
			eo.Shards = n
			s, err := NewSessionFrom(src, eo)
			if err != nil {
				return nil, err
			}
			layouts := []string{"base"}
			if spec.Layout != "base" {
				layouts = append(layouts, spec.Layout)
			}
			if fuse != nil {
				layouts = append(layouts, "ipchain")
			}
			cell := make(map[string]*Measure, len(layouts))
			for _, layout := range layouts {
				m, err := s.Measure(layout, cpus)
				if err != nil {
					return nil, fmt.Errorf("latency %s/s%d layout=%s: %w", wl.Name(), n, layout, err)
				}
				cell[layout] = m
				name := "orig"
				if layout != "base" {
					name = layout
				}
				l := m.Res.Latency
				sum.AddRow(wl.Name(), shardKey(n), name, l.N,
					fmt.Sprintf("%.0f", l.Mean), l.P50, l.P95, l.P99, l.Max)
				for _, c := range m.Latency {
					kinds.AddRow(wl.Name(), shardKey(n), name, c.Shard, c.Kind,
						c.Summary.N, c.Summary.P50, c.Summary.P95, c.Summary.P99, c.Summary.Max)
				}
			}
			if fuse != nil {
				addFusionRows(fuse, wl.Name(), shardKey(n), cell["fusion"], cell["ipchain"])
			}
		}
	}
	sum.Note("latency = request generation through successful commit on the simulated clock (1 instr-time ≈ 1 ns); deadlock retries and group-commit waits included")
	kinds.Note("cells are keyed by the transaction's home shard and the workload's kind label (_dist kinds commit through 2PC)")
	out := []*stats.Table{sum, kinds}
	if fuse != nil {
		if o.FetchStallPenaltyInstr == 0 {
			fuse.Note("FetchStallPenaltyInstr is 0: the clock charges no miss stalls, so layout locality cannot move latency — set a penalty to see fusion's win")
		} else {
			fuse.Note(fmt.Sprintf("per-kind cells merged across home shards; clock charges %d instr-times per L1I miss", o.FetchStallPenaltyInstr))
		}
		out = append(out, fuse)
	}
	return out, nil
}

// addFusionRows emits one per-kind comparison row per transaction kind,
// merging each layout's latency cells across home shards.
func addFusionRows(t *stats.Table, wl string, shards int, fuse, ipc *Measure) {
	fh, order := kindHists(fuse)
	ih, _ := kindHists(ipc)
	for _, kind := range order {
		f, i := fh[kind], ih[kind]
		if f == nil || i == nil || f.N == 0 || i.N == 0 {
			continue
		}
		f50, f99 := f.Quantile(0.50), f.Quantile(0.99)
		i50, i99 := i.Quantile(0.50), i.Quantile(0.99)
		t.AddRow(wl, shards, kind, f.N, f50, i50, deltaPct(f50, i50), f99, i99, deltaPct(f99, i99))
	}
}

// kindHists merges a measure's latency histograms across shards per kind and
// returns them with the kinds in first-seen (shard-then-kind) order.
func kindHists(m *Measure) (map[string]*stats.Log2Hist, []string) {
	out := make(map[string]*stats.Log2Hist)
	var order []string
	for _, c := range m.Latency {
		h := out[c.Kind]
		if h == nil {
			h = &stats.Log2Hist{}
			out[c.Kind] = h
			order = append(order, c.Kind)
		}
		h.Merge(c.Hist)
	}
	return out, order
}

func deltaPct(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(a)-float64(b))/float64(b))
}
