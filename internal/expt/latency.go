package expt

import (
	"fmt"

	"codelayout/internal/stats"
	"codelayout/internal/workload"
)

// LatencySpec configures the latency percentile tables: every listed
// workload × shard count is measured self-trained under the baseline
// (original) layout and under the optimized layout, and the tables report
// p50/p95/p99/max per-transaction latency — the tail-latency view of the
// layout win that whole-run instruction and miss-ratio aggregates hide.
type LatencySpec struct {
	// Workloads are the mixes to measure; at least one. All of them join
	// one union app image, so layouts and measurements share one program.
	Workloads []workload.Workload
	// Shards are the shard counts to measure; empty means {1}.
	Shards []int
	// Layout is the optimized pipeline combo ("all" if empty), compared
	// against the "base" (original) layout.
	Layout string
	// CPUs overrides the measurement processor count (0 = Options.CPUs).
	CPUs int
}

// LatencyTables measures every workload × shard count cell under the
// original and the optimized layout and renders two tables: run-wide
// percentiles per cell, and the per-shard × transaction-kind breakdown.
// Group-commit and auto-tuning settings come from o, so the same tables
// serve fixed windows, AutoGCFlushCount and AutoGCTargetP99 runs.
func LatencyTables(o Options, spec LatencySpec) ([]*stats.Table, error) {
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("expt: latency tables need at least one workload")
	}
	if len(spec.Shards) == 0 {
		spec.Shards = []int{1}
	}
	if spec.Layout == "" {
		spec.Layout = "all"
	}
	cpus := spec.CPUs
	if cpus == 0 {
		cpus = o.CPUs
	}
	o.Workload = spec.Workloads[0]
	src, err := NewProfileSource(o, spec.Workloads[1:]...)
	if err != nil {
		return nil, err
	}

	sum := stats.NewTable(
		fmt.Sprintf("Transaction latency percentiles (instruction-times), orig vs %q layout", spec.Layout),
		"workload", "shards", "layout", "txns", "mean", "p50", "p95", "p99", "max")
	kinds := stats.NewTable(
		fmt.Sprintf("Transaction latency by shard and kind, orig vs %q layout", spec.Layout),
		"workload", "shards", "layout", "shard", "kind", "txns", "p50", "p95", "p99", "max")

	for _, wl := range spec.Workloads {
		for _, n := range spec.Shards {
			eo := o
			eo.Workload = wl
			eo.Shards = n
			s, err := NewSessionFrom(src, eo)
			if err != nil {
				return nil, err
			}
			layouts := []string{"base"}
			if spec.Layout != "base" {
				layouts = append(layouts, spec.Layout)
			}
			for _, layout := range layouts {
				m, err := s.Measure(layout, cpus)
				if err != nil {
					return nil, fmt.Errorf("latency %s/s%d layout=%s: %w", wl.Name(), n, layout, err)
				}
				name := "orig"
				if layout != "base" {
					name = layout
				}
				l := m.Res.Latency
				sum.AddRow(wl.Name(), shardKey(n), name, l.N,
					fmt.Sprintf("%.0f", l.Mean), l.P50, l.P95, l.P99, l.Max)
				for _, c := range m.Latency {
					kinds.AddRow(wl.Name(), shardKey(n), name, c.Shard, c.Kind,
						c.Summary.N, c.Summary.P50, c.Summary.P95, c.Summary.P99, c.Summary.Max)
				}
			}
		}
	}
	sum.Note("latency = request generation through successful commit on the simulated clock (1 instr-time ≈ 1 ns); deadlock retries and group-commit waits included")
	kinds.Note("cells are keyed by the transaction's home shard and the workload's kind label (_dist kinds commit through 2PC)")
	return []*stats.Table{sum, kinds}, nil
}
