package expt_test

import (
	"testing"

	"codelayout/internal/expt"
	"codelayout/internal/isa"
	"codelayout/internal/machine"
	"codelayout/internal/tpcb"
)

// fusionOptions is the pinned configuration of the fusion regression: quick
// scale, fixed seeds, and a non-zero fetch-stall penalty so instruction-cache
// locality shows up on the latency clock at all.
func fusionOptions(t *testing.T) expt.Options {
	t.Helper()
	o := tinyOptions(tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 120}))
	o.FetchStallPenaltyInstr = 40
	return o
}

// TestFusionBeatsIPChainP50 is the headline pinned regression of the txfuse
// pass: at fixed seed, the per-transaction-kind fused layout must land a
// strictly lower median latency than its structural sibling ipchain for the
// TPC-B and order-entry workloads, while the fused image stays within the
// application text address map and the shared base image is never mutated.
func TestFusionBeatsIPChainP50(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := fusionOptions(t)
	oe := tinyOrdere()
	src, err := expt.NewProfileSource(o, oe)
	if err != nil {
		t.Fatal(err)
	}
	baseProcs := len(src.AppImage().Prog.Procs)
	baseBlocks := src.AppImage().Prog.NumBlocks()

	for _, wl := range []string{"tpcb", "ordere"} {
		eo := o
		if wl == "ordere" {
			eo.Workload = oe
		}
		s, err := expt.NewSessionFrom(src, eo)
		if err != nil {
			t.Fatal(err)
		}
		fuse, err := s.Measure("fusion", eo.CPUs)
		if err != nil {
			t.Fatalf("%s: measure fusion: %v", wl, err)
		}
		ipc, err := s.Measure("ipchain", eo.CPUs)
		if err != nil {
			t.Fatalf("%s: measure ipchain: %v", wl, err)
		}
		f50, i50 := fuse.Res.Latency.P50, ipc.Res.Latency.P50
		t.Logf("%s: p50 fusion=%d ipchain=%d (p99 %d vs %d)", wl,
			f50, i50, fuse.Res.Latency.P99, ipc.Res.Latency.P99)
		if f50 >= i50 {
			t.Errorf("%s: fusion p50 = %d, want strictly below ipchain p50 = %d", wl, f50, i50)
		}
		// Each session self-trains, so its fused layout covers the kinds
		// that actually executed in its training run: one for TPC-B's
		// single-shard mix, two (neworder, payment) for order entry.
		rep := s.Report("fusion")
		if rep == nil {
			t.Fatalf("%s: no fusion report", wl)
		}
		want := 1
		if wl == "ordere" {
			want = 2
		}
		if rep.FusedKinds < want {
			t.Errorf("%s: FusedKinds = %d, want >= %d", wl, rep.FusedKinds, want)
		}
		if fuse.Res.FetchStallInstr == 0 {
			t.Errorf("%s: fusion run charged no fetch stalls; the stall model is not wired", wl)
		}
	}

	// The fused layout stayed within the address map and ran over its own
	// specialized image.
	s, err := expt.NewSessionFrom(src, o)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Layout("fusion")
	if err != nil {
		t.Fatal(err)
	}
	if l.TotalBytes() > isa.AppTextLimitBytes {
		t.Errorf("fused layout = %d bytes, past the %d-byte app text map", l.TotalBytes(), isa.AppTextLimitBytes)
	}
	fimg := s.AppImageFor("fusion")
	if fimg == src.AppImage() {
		t.Error("fusion measured over the shared image, not a specialized one")
	}

	// With the pass off, nothing changed: the shared image (which the
	// FastPath predictor models live in) has exactly its original shape.
	if got := len(src.AppImage().Prog.Procs); got != baseProcs {
		t.Errorf("shared image grew procs %d -> %d; fusion must specialize, not mutate", baseProcs, got)
	}
	if got := src.AppImage().Prog.NumBlocks(); got != baseBlocks {
		t.Errorf("shared image grew blocks %d -> %d; fusion must specialize, not mutate", baseBlocks, got)
	}
}

// TestFusionInvariantsClean replays the fused configuration on a directly
// constructed machine and audits the engine invariants: cloning hot engine
// procedures must not change what the transactions do.
func TestFusionInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := fusionOptions(t)
	o.Shards = 2
	s, err := expt.NewSession(o)
	if err != nil {
		t.Fatal(err)
	}
	appL, err := s.Layout("fusion")
	if err != nil {
		t.Fatal(err)
	}
	kernL, err := s.KernLayout("kbase")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{
		CPUs: o.CPUs, ProcsPerCPU: o.ProcsPerCPU, Seed: o.Seed, Shards: o.Shards,
		FetchStallPenaltyInstr: o.FetchStallPenaltyInstr,
		WarmupTxns:             o.WarmupTxns, Transactions: o.Transactions,
		Workload: o.Workload,
		AppImage: s.AppImageFor("fusion"), AppLayout: appL,
		KernImage: s.KernelImage(), KernLayout: kernL,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed under the fused layout")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated under the fused layout: %v", err)
	}
}
