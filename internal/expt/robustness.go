package expt

import (
	"fmt"

	"codelayout/internal/machine"
	"codelayout/internal/stats"
	"codelayout/internal/workload"
)

// RobustnessSpec configures the train×eval robustness matrix: every listed
// workload × shard count is both a training configuration and an evaluation
// cell, so the matrix's diagonal is the paper's self-trained setup and every
// off-diagonal entry is a transplanted layout — the AI-PROPELLER-style
// profile-drift question asked across workloads and across shard counts at
// once.
type RobustnessSpec struct {
	// Workloads are the mixes spanning both axes; at least one. All of
	// them join one union app image, so their profiles are portable.
	Workloads []workload.Workload
	// Shards are the shard counts spanning both axes; empty means {1}.
	Shards []int
	// Layout is the pipeline combo trained and evaluated ("all" if empty).
	Layout string
	// CPUs overrides the measurement processor count (0 = Options.CPUs).
	CPUs int
}

// RobustnessCell is one matrix entry: the layout trained under Train,
// evaluated under Eval.
type RobustnessCell struct {
	TrainWorkload string
	TrainShards   int
	EvalWorkload  string
	EvalShards    int
	// SelfTrained marks the diagonal (train spec == eval spec).
	SelfTrained bool
	// MissRatio is the application icache miss ratio (64KB/128B/4-way).
	MissRatio float64
	// BaseMissRatio is the unoptimized binary's ratio for the same eval
	// cell (one baseline per cell, shared across its train rows).
	BaseMissRatio float64
	// InstrPerTxn is busy (app+kernel) instructions per committed
	// transaction.
	InstrPerTxn float64
}

// RobustnessResult is the full matrix plus the tables rendering it.
type RobustnessResult struct {
	Cells  []RobustnessCell
	Tables []*stats.Table
}

// Cell returns the matrix entry for a train/eval pair (nil if absent).
func (r *RobustnessResult) Cell(trainW string, trainShards int, evalW string, evalShards int) *RobustnessCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.TrainWorkload == trainW && c.TrainShards == shardKey(trainShards) &&
			c.EvalWorkload == evalW && c.EvalShards == shardKey(evalShards) {
			return c
		}
	}
	return nil
}

// Robustness runs the train×eval matrix in one process over one shared
// ProfileSource: every training run and every transplanted evaluation is
// memoized under its (train spec × eval spec) key, so no pair can collide
// and the whole matrix reuses each training run across eval cells.
func Robustness(o Options, spec RobustnessSpec) (*RobustnessResult, error) {
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("expt: robustness needs at least one workload")
	}
	if len(spec.Shards) == 0 {
		spec.Shards = []int{1}
	}
	if spec.Layout == "" {
		spec.Layout = "all"
	}
	cpus := spec.CPUs
	if cpus == 0 {
		cpus = o.CPUs
	}
	o.Workload = spec.Workloads[0]
	src, err := NewProfileSource(o, spec.Workloads[1:]...)
	if err != nil {
		return nil, err
	}

	type axis struct {
		w      workload.Workload
		shards int
	}
	var cells []axis
	for _, w := range spec.Workloads {
		for _, n := range spec.Shards {
			cells = append(cells, axis{w, shardKey(n)})
		}
	}

	res := &RobustnessResult{}
	for _, eval := range cells {
		eo := o
		eo.Workload = eval.w
		eo.Shards = eval.shards
		s, err := NewSessionFrom(src, eo)
		if err != nil {
			return nil, err
		}
		base, err := s.Measure("base", cpus)
		if err != nil {
			return nil, fmt.Errorf("baseline for eval %s/s%d: %w", eval.w.Name(), eval.shards, err)
		}
		baseMiss := base.App4W[64].MissRate()
		for _, train := range cells {
			tc := TrainConfig{Workload: train.w, Shards: train.shards}
			m, err := s.MeasureFrom(tc, spec.Layout, cpus)
			if err != nil {
				return nil, fmt.Errorf("train %s/s%d eval %s/s%d: %w",
					train.w.Name(), train.shards, eval.w.Name(), eval.shards, err)
			}
			perTxn := 0.0
			if m.Res.Committed > 0 {
				perTxn = float64(m.Res.BusyInstrs) / float64(m.Res.Committed)
			}
			res.Cells = append(res.Cells, RobustnessCell{
				TrainWorkload: train.w.Name(),
				TrainShards:   train.shards,
				EvalWorkload:  eval.w.Name(),
				EvalShards:    eval.shards,
				SelfTrained:   train.w.Name() == eval.w.Name() && train.shards == eval.shards,
				MissRatio:     m.App4W[64].MissRate(),
				BaseMissRatio: baseMiss,
				InstrPerTxn:   perTxn,
			})
		}
	}

	label := func(w string, n int) string { return fmt.Sprintf("%s/s%d", w, n) }
	cols := []string{"train\\eval"}
	for _, c := range cells {
		cols = append(cols, label(c.w.Name(), c.shards))
	}

	miss := stats.NewTable(
		fmt.Sprintf("Robustness matrix: app icache miss ratio %% (64KB/128B/4-way), layout %q (* = self-trained)", spec.Layout),
		cols...)
	txn := stats.NewTable(
		fmt.Sprintf("Robustness matrix: busy instructions per transaction, layout %q (* = self-trained)", spec.Layout),
		cols...)
	for _, train := range cells {
		missRow := []interface{}{label(train.w.Name(), train.shards)}
		txnRow := []interface{}{label(train.w.Name(), train.shards)}
		for _, eval := range cells {
			c := res.Cell(train.w.Name(), train.shards, eval.w.Name(), eval.shards)
			mark := ""
			if c.SelfTrained {
				mark = "*"
			}
			missRow = append(missRow, fmt.Sprintf("%.3f%s", 100*c.MissRatio, mark))
			txnRow = append(txnRow, fmt.Sprintf("%.0f%s", c.InstrPerTxn, mark))
		}
		miss.AddRow(missRow...)
		txn.AddRow(txnRow...)
	}
	miss.Note("off-diagonal entries evaluate a layout trained on a different workload or shard count; baseline ratios and drift in the summary table")

	sum := stats.NewTable("Robustness summary per eval cell",
		"eval cell", "base miss %", "self-trained miss %", "worst transplant miss %", "worst drift", "worst train")
	for _, eval := range cells {
		var self, worst *RobustnessCell
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.EvalWorkload != eval.w.Name() || c.EvalShards != eval.shards {
				continue
			}
			if c.SelfTrained {
				self = c
			} else if worst == nil || c.MissRatio > worst.MissRatio {
				worst = c
			}
		}
		if self == nil {
			continue
		}
		if worst == nil {
			sum.AddRow(label(eval.w.Name(), eval.shards), stats.Pct(self.BaseMissRatio),
				stats.Pct(self.MissRatio), "-", "-", "-")
			continue
		}
		drift := "-"
		if self.MissRatio > 0 {
			drift = fmt.Sprintf("%+.1f%%", 100*(worst.MissRatio/self.MissRatio-1))
		}
		sum.AddRow(label(eval.w.Name(), eval.shards), stats.Pct(self.BaseMissRatio),
			stats.Pct(self.MissRatio), stats.Pct(worst.MissRatio), drift,
			label(worst.TrainWorkload, worst.TrainShards))
	}
	sum.Note("drift = worst transplanted layout's misses over the self-trained layout's; the profile-drift cost of reusing stale layouts")

	res.Tables = []*stats.Table{miss, txn, sum}
	return res, nil
}

// ShardSweepSpec configures the shard-count sweep.
type ShardSweepSpec struct {
	// Shards are the counts to sweep; empty means {1, 2, 4, 8}.
	Shards []int
	// Layouts are the layout names measured at each count; empty means
	// {"base", "all"}.
	Layouts []string
	// FastPath adds the predictive single-shard fast path to the sweep:
	// each sharded count is measured with the fast path off and on over
	// one shared fastpath-capable image, and the table gains the on
	// columns and the on/off deltas. Single-shard rows have no router to
	// skip and report only the off side.
	FastPath bool
	// AutoGC is the group-commit tuning mode the sweep's measurement runs
	// use; the zero value selects the tail-aware machine.AutoGCTargetP99
	// tuner (high shard counts starve fixed windows), unless the options
	// already pin an explicit window, per-commit flushing, or a tuner of
	// their own. NoAutoGC forces fixed windows regardless.
	AutoGC   machine.AutoGCMode
	NoAutoGC bool
	// CPUs overrides the measurement processor count (0 = Options.CPUs).
	CPUs int
}

// resolveGC picks the sweep's group-commit mode: an explicit spec choice
// wins; otherwise options that configure batching themselves are left
// alone, and everything else defaults to the tail-aware p99 tuner.
func (sp ShardSweepSpec) resolveGC(o Options) machine.AutoGCMode {
	switch {
	case sp.NoAutoGC:
		return machine.AutoGCOff
	case sp.AutoGC != machine.AutoGCOff:
		return sp.AutoGC
	case o.AutoGroupCommit != machine.AutoGCOff:
		return o.AutoGroupCommit
	case o.GroupCommitWindowInstr > 0 || o.PerCommitLogFlush:
		return machine.AutoGCOff
	}
	return machine.AutoGCTargetP99
}

// ShardSweep sweeps the shard count over the given workload, self-training
// at each count, and reports the speed levers the router adds: throughput
// (busy instructions per transaction and committed txns per million
// instruction-times of wall clock), blocked-on-log time, and app/kernel
// miss ratios. It is the legacy entry point — ShardSweepTable with a zero
// spec except for the given counts and layouts.
func ShardSweep(o Options, shardCounts []int, layouts []string) (*stats.Table, error) {
	return ShardSweepTable(o, ShardSweepSpec{Shards: shardCounts, Layouts: layouts})
}

// sweepRow aggregates one (shards, layout) measurement for the table.
type sweepRow struct {
	perTxn, perM float64
	m            *Measure
}

func newSweepRow(m *Measure, cpus int) sweepRow {
	r := sweepRow{m: m}
	if m.Res.Committed > 0 {
		r.perTxn = float64(m.Res.BusyInstrs) / float64(m.Res.Committed)
	}
	if wall := m.Res.BusyInstrs + m.Res.IdleInstrs; wall > 0 {
		r.perM = float64(m.Res.Committed) / (float64(wall) / 1e6) * float64(cpus)
	}
	return r
}

// delta renders the relative change from off to on (negative = improvement
// for cost metrics).
func delta(off, on float64) string {
	if off == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(on/off-1))
}

// ShardSweepTable runs the configured shard-count sweep. With spec.FastPath
// every sharded count is measured twice — fast path off and on — over one
// shared image that carries the predictor models, so the off/on pair
// differs only in the runtime toggle and the table's delta columns isolate
// what skipping the router and coordinator buys.
func ShardSweepTable(o Options, spec ShardSweepSpec) (*stats.Table, error) {
	shardCounts := spec.Shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	layouts := spec.Layouts
	if len(layouts) == 0 {
		layouts = []string{"base", "all"}
	}
	cpus := spec.CPUs
	if cpus == 0 {
		cpus = o.CPUs
	}
	o.AutoGroupCommit = spec.resolveGC(o)
	if o.AutoGroupCommit != machine.AutoGCOff {
		o.GroupCommitWindowInstr = 0
		o.PerCommitLogFlush = false
	}
	o.PredictFastPath = spec.FastPath
	src, err := NewProfileSource(o)
	if err != nil {
		return nil, err
	}

	title := fmt.Sprintf("Shard sweep: %s, %d cpus, group commit %s (self-trained per shard count)",
		src.opt.Workload.Name(), cpus, o.AutoGroupCommit)
	cols := []string{"shards", "layout", "instr/txn", "txns/Minstr", "blocked-on-log", "log flushes", "cross-shard", "app miss %", "kern miss %"}
	if spec.FastPath {
		title = fmt.Sprintf("Shard sweep: %s, %d cpus, group commit %s, fast path off vs on (self-trained per shard count)",
			src.opt.Workload.Name(), cpus, o.AutoGroupCommit)
		cols = []string{"shards", "layout",
			"instr/txn off", "instr/txn on", "Δinstr",
			"p99 off", "p99 on", "Δp99",
			"blocked-on-log", "predicted", "mispredicted", "cross-shard"}
	}
	t := stats.NewTable(title, cols...)

	for _, n := range shardCounts {
		eo := o
		eo.Shards = n
		eo.PredictFastPath = false
		off, err := NewSessionFrom(src, eo)
		if err != nil {
			return nil, err
		}
		var on *Session
		if spec.FastPath && shardKey(n) > 1 {
			po := eo
			po.PredictFastPath = true
			if on, err = NewSessionFrom(src, po); err != nil {
				return nil, err
			}
		}
		for _, layout := range layouts {
			mOff, err := off.Measure(layout, cpus)
			if err != nil {
				return nil, fmt.Errorf("shards=%d layout=%s: %w", n, layout, err)
			}
			rOff := newSweepRow(mOff, cpus)
			if !spec.FastPath {
				t.AddRow(shardKey(n), layout,
					fmt.Sprintf("%.0f", rOff.perTxn),
					fmt.Sprintf("%.2f", rOff.perM),
					mOff.Res.LogBlockedInstr, mOff.Res.LogFlushes, mOff.Res.CrossShard,
					stats.Pct(mOff.App4W[64].MissRate()), stats.Pct(mOff.Kern4W[64].MissRate()))
				continue
			}
			if on == nil {
				t.AddRow(shardKey(n), layout,
					fmt.Sprintf("%.0f", rOff.perTxn), "-", "-",
					mOff.Res.Latency.P99, "-", "-",
					mOff.Res.LogBlockedInstr, "-", "-", mOff.Res.CrossShard)
				continue
			}
			mOn, err := on.Measure(layout, cpus)
			if err != nil {
				return nil, fmt.Errorf("shards=%d layout=%s fastpath: %w", n, layout, err)
			}
			rOn := newSweepRow(mOn, cpus)
			t.AddRow(shardKey(n), layout,
				fmt.Sprintf("%.0f", rOff.perTxn), fmt.Sprintf("%.0f", rOn.perTxn),
				delta(rOff.perTxn, rOn.perTxn),
				mOff.Res.Latency.P99, mOn.Res.Latency.P99,
				delta(float64(mOff.Res.Latency.P99), float64(mOn.Res.Latency.P99)),
				mOn.Res.LogBlockedInstr, mOn.Res.Predicted, mOn.Res.Mispredicted, mOn.Res.CrossShard)
		}
	}
	if spec.FastPath {
		t.Note("on-side runs share the off side's image and seed; Δ columns are on/off-1, negative = the fast path wins")
	} else {
		t.Note("per-shard group commit and the router split the log force across engines; blocked-on-log falls as shards rise")
	}
	return t, nil
}
