package expt

import (
	"fmt"

	"codelayout/internal/isa"
	"codelayout/internal/stats"
)

// ablSplit — fine-grain splitting (the paper's contribution) vs the Spike
// distribution's hot/cold splitting vs no splitting, all with chaining and
// Pettis–Hansen ordering.
func ablSplit(s *Session) ([]*stats.Table, error) {
	t := stats.NewTable("Ablation: splitting strategy (application misses, 128B/4-way)",
		"strategy", "64KB", "128KB", "hot text bytes")
	rows := []struct{ label, layout string }{
		{"no split (chain+porder)", "chain+porder"},
		{"hot/cold split", "hotcold"},
		{"fine-grain split (all)", "all"},
	}
	for _, r := range rows {
		m, err := s.Measure(r.layout, s.Opt.CPUs)
		if err != nil {
			return nil, err
		}
		rep := s.Report(r.layout)
		hot := int64(0)
		if rep != nil {
			hot = rep.HotWords * isa.WordBytes
		}
		t.AddRow(r.label, m.App4W[64].Misses, m.App4W[128].Misses, hot)
	}
	t.Note("paper: ordering helps only at fine granularity — it separates hot from cold segments")
	return []*stats.Table{t}, nil
}

// ablCFA — the conflict-free-area (software trace cache) variant the paper
// implemented and discarded: OLTP's hot traces exceed any reasonable
// reserved area.
func ablCFA(s *Session) ([]*stats.Table, error) {
	all, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	cfa, err := s.Measure("cfa", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: CFA reserved area (64KB cache, 16KB reserved)",
		"layout", "64KB DM misses", "64KB 4-way misses", "pad bytes")
	repAll, repCFA := s.Report("all"), s.Report("cfa")
	t.AddRow("all", all.AppDM[64][128].Misses, all.App4W[64].Misses, repAll.PadWords*isa.WordBytes)
	t.AddRow("all+CFA", cfa.AppDM[64][128].Misses, cfa.App4W[64].Misses, repCFA.PadWords*isa.WordBytes)
	t.AddRow("reserved-area code (KB)", "-", "-", repCFA.CFAReservedWords*isa.WordBytes/1024)
	t.Note("paper: the hot-trace footprint is too large for the reserved area; CFA yields no gains on OLTP")
	return []*stats.Table{t}, nil
}

// ablProfile — layout quality when the profile comes from DCPI-style PC
// sampling instead of exact Pixie instrumentation.
func ablProfile(s *Session) ([]*stats.Table, error) {
	px, err := s.Measure("all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	dc, err := s.Measure("dcpi-all", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	base, err := s.Measure("base", s.Opt.CPUs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Ablation: profile source (DCPI period %d)", s.Opt.DCPIPeriod),
		"profile", "64KB misses", "128KB misses", "vs base @128KB")
	t.AddRow("none (base)", base.App4W[64].Misses, base.App4W[128].Misses, "100%")
	t.AddRow("Pixie (exact)", px.App4W[64].Misses, px.App4W[128].Misses,
		pctOf(px.App4W[128].Misses, base.App4W[128].Misses))
	t.AddRow("DCPI (sampled)", dc.App4W[64].Misses, dc.App4W[128].Misses,
		pctOf(dc.App4W[128].Misses, base.App4W[128].Misses))
	t.Note("both profile sources drive Spike in practice; sampling costs little layout quality")
	return []*stats.Table{t}, nil
}
